// Metric-name lint: every instrument registered anywhere in the tree must
// use the [a-z0-9_.] charset. The rule is what makes the Prometheus name
// mangling (telemetry.PromName, "." → "_") injective — a hyphen or uppercase
// letter would either collide after mangling or produce an invalid exposition
// name — so it is enforced here, once, against the live default registry
// rather than restated in every package.
package cpsguard

import (
	"regexp"
	"testing"

	"cpsguard/internal/telemetry"

	// Imported for their init-time instrument registration: the lint can
	// only see names that reached the default registry.
	_ "cpsguard/internal/adversary"
	_ "cpsguard/internal/checkpoint"
	_ "cpsguard/internal/defense"
	_ "cpsguard/internal/experiments"
	_ "cpsguard/internal/lp"
	_ "cpsguard/internal/milp"
	_ "cpsguard/internal/parallel"
	_ "cpsguard/internal/repeated"
	_ "cpsguard/internal/servd"
	_ "cpsguard/internal/shard"
	_ "cpsguard/internal/solvecache"
)

var metricNameRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

func allInstrumentNames() []string {
	counters, hists, timings := telemetry.Default().InstrumentNames()
	names := append(append(counters, hists...), timings...)
	return names
}

func TestMetricNamesWellFormed(t *testing.T) {
	names := allInstrumentNames()
	if len(names) < 30 {
		t.Fatalf("only %d instruments registered — did the side-effect imports break?", len(names))
	}
	for _, n := range names {
		if !metricNameRe.MatchString(n) {
			t.Errorf("metric %q violates ^[a-z0-9_.]+$", n)
		}
	}
}

func TestMetricNamesMangleInjectively(t *testing.T) {
	seen := map[string]string{}
	for _, n := range allInstrumentNames() {
		p := telemetry.PromName(n)
		if prev, dup := seen[p]; dup {
			t.Errorf("metrics %q and %q both mangle to %q", prev, n, p)
		}
		seen[p] = n
	}
}

func TestDefaultRegistryExpositionParses(t *testing.T) {
	// The full default registry — every package's instruments, whatever
	// their current values — must render a strictly parseable exposition.
	if _, _, err := telemetry.ParsePrometheus(telemetry.Default().PrometheusText()); err != nil {
		t.Fatalf("default registry exposition failed the strict parser: %v", err)
	}
}
