// Revised-simplex benchmark report: `make bench-revised` runs
// TestBenchRevised with BENCH_REVISED_OUT set, which times the sparse
// revised simplex against the dense oracle programmatically and writes
// BENCH_revised.json (same cpsguard-bench/v1 envelope as
// BENCH_telemetry.json) pairing each ns/op with the lp.revised.* pivot,
// factorization, and eta-update counters, so the speedup and the work
// profile that produces it live in one file.
package cpsguard

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/flow"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/lp"
	"cpsguard/internal/telemetry"
	"cpsguard/internal/westgrid"
)

// benchNationalDispatch times one full dispatch of a seeded national-tier
// system with the given simplex method. The graph build is outside the
// timed region; every iteration pays the whole standard-form build +
// solve + extraction path, as the impact layer does per perturbation.
func benchNationalDispatch(b *testing.B, regions int, m lp.Method) {
	b.Helper()
	g, err := gridgen.Build(gridgen.Config{
		Regions: regions, Seed: 3, Tier: gridgen.TierNational, Stress: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: m}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevisedSimplex dispatches the stressed six-state evaluation
// model with the revised method — the production small-instance path,
// which the dense crossover delegates to the dense bounded solver.
func BenchmarkRevisedSimplex(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodRevised}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevisedNationalGrid dispatches a 256-region national-tier
// system (~2000 buses, ~3800 assets) with the revised method — the
// sparse-LU regime the method exists for.
func BenchmarkRevisedNationalGrid(b *testing.B) {
	benchNationalDispatch(b, 256, lp.MethodRevised)
}

// The oracle comparison pair shares one 64-region national instance, the
// largest where the dense tableau's quadratic per-pivot cost stays
// benchmarkable (seconds, not minutes, per solve).

// BenchmarkRevisedNationalOracle is the revised half of the pair.
func BenchmarkRevisedNationalOracle(b *testing.B) {
	benchNationalDispatch(b, 64, lp.MethodRevised)
}

// BenchmarkDenseNationalOracle is the dense half. It costs seconds per
// iteration, so it only runs under make bench-revised; the bench-smoke
// one-iteration pass in ci skips it.
func BenchmarkDenseNationalOracle(b *testing.B) {
	if os.Getenv("BENCH_REVISED_OUT") == "" {
		b.Skip("dense national solve costs seconds per op; set BENCH_REVISED_OUT (make bench-revised) to run")
	}
	benchNationalDispatch(b, 64, lp.MethodBounded)
}

// TestBenchRevised is gated by BENCH_REVISED_OUT: unset, it skips; set, it
// runs the revised benchmarks plus the dense oracle on the shared national
// instance, writes the JSON report to that path, and fails unless the
// revised method is at least 5x faster than the dense oracle on it.
func TestBenchRevised(t *testing.T) {
	out := os.Getenv("BENCH_REVISED_OUT")
	if out == "" {
		t.Skip("set BENCH_REVISED_OUT=path to run the revised-simplex benchmark sweep")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"RevisedSimplex", BenchmarkRevisedSimplex},
		{"RevisedNationalGrid", BenchmarkRevisedNationalGrid},
		{"RevisedNationalOracle", BenchmarkRevisedNationalOracle},
		{"DenseNationalOracle", BenchmarkDenseNationalOracle},
	}
	reg := telemetry.Default()
	report := benchTelemetryReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		Platform:   runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: make(map[string]benchTelemetryEntry, len(benches)),
	}
	for _, bench := range benches {
		reg.Reset()
		r := testing.Benchmark(bench.fn)
		snap := reg.Snapshot(telemetry.SnapshotOptions{})
		counters := make(map[string]int64, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != 0 {
				counters[name] = v
			}
		}
		report.Benchmarks[bench.name] = benchTelemetryEntry{
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Counters:    counters,
		}
		t.Logf("%s: %d iter, %d ns/op, %d counters", bench.name, r.N, r.NsPerOp(), len(counters))
	}
	reg.Reset()

	// The pivot work must be attributed: a revised entry without its
	// lp.revised.* counters means the telemetry wiring regressed.
	natl := report.Benchmarks["RevisedNationalGrid"].Counters
	for _, c := range []string{"lp.revised.solves", "lp.revised.factorizations",
		"lp.revised.eta_updates", "lp.revised.ftran_solves", "lp.revised.btran_solves"} {
		if natl[c] == 0 {
			t.Errorf("RevisedNationalGrid recorded no %s counter", c)
		}
	}

	dense := report.Benchmarks["DenseNationalOracle"].NsPerOp
	rev := report.Benchmarks["RevisedNationalOracle"].NsPerOp
	if rev <= 0 || dense < 5*rev {
		t.Errorf("RevisedNationalOracle %d ns/op is not ≥5x faster than DenseNationalOracle %d ns/op", rev, dense)
	} else {
		t.Logf("national-scale speedup: %.1fx (dense %d → revised %d ns/op)",
			float64(dense)/float64(rev), dense, rev)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", out, len(data))
}

// TestBenchRevisedSchema pins BENCH_revised.json to the cpsguard-bench/v1
// envelope and the lp.revised.* counter names downstream trackers key on:
// renaming either is a breaking change that must bump benchSchema.
func TestBenchRevisedSchema(t *testing.T) {
	report := benchTelemetryReport{
		Schema: benchSchema, GoVersion: "go0.0", Platform: "test/none",
		Benchmarks: map[string]benchTelemetryEntry{
			"RevisedNationalGrid": {Iterations: 1, NsPerOp: 2,
				Counters: map[string]int64{"lp.revised.eta_updates": 3}},
		},
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "go_version", "platform", "benchmarks"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("envelope missing key %q", key)
		}
	}
	if len(raw) != 4 {
		t.Errorf("envelope has %d top-level keys, want 4 (schema change requires a version bump)", len(raw))
	}
	var back benchTelemetryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != benchSchema || back.Benchmarks["RevisedNationalGrid"].Counters["lp.revised.eta_updates"] != 3 {
		t.Errorf("round trip mangled report: %+v", back)
	}

	// The counter names themselves: one forced-sparse revised solve must
	// populate every counter family §15 documents.
	reg := telemetry.Default()
	reg.Reset()
	defer reg.Reset()
	g, err := gridgen.Build(gridgen.Config{Regions: 64, Seed: 3, Tier: gridgen.TierNational})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodRevised}}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(telemetry.SnapshotOptions{})
	for _, c := range []string{"lp.revised.solves", "lp.revised.factorizations",
		"lp.revised.eta_updates", "lp.revised.ftran_solves", "lp.revised.btran_solves"} {
		if snap.Counters[c] == 0 {
			t.Errorf("revised dispatch solve left counter %s at zero", c)
		}
	}
}
