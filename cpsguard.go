// Package cpsguard is the public API of a Go reproduction of Wood, Bagchi &
// Hussain, "Optimizing Defensive Investments in Energy-Based Cyber-Physical
// Systems" (IPPS 2015): a toolkit for modeling interdependent energy
// systems as flow graphs, dispatching them to a social-welfare optimum,
// dividing profit among independent actors, measuring the financial impact
// of cyber-attacks, and optimizing both a strategic adversary's target
// selection and the defenders' (possibly collaborative) investments.
//
// # Quick start
//
//	g := cpsguard.NewGraph("demo")
//	g.MustAddVertex(cpsguard.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
//	g.MustAddVertex(cpsguard.Vertex{ID: "load", Demand: 80, Price: 10})
//	g.MustAddEdge(cpsguard.Edge{ID: "line", From: "gen", To: "load", Capacity: 90})
//	res, err := cpsguard.Dispatch(g)            // social-welfare optimum
//	scn := cpsguard.NewScenario(g, 4, seed)     // 4 random actors
//	im, err := scn.Truth()                      // impact matrix IM[a,t]
//	round, err := cpsguard.PlayRound(scn, cfg)  // adversary vs defenders
//
// The heavy lifting lives in internal packages; this package re-exports the
// stable surface: graph modeling (internal/graph), dispatch (internal/flow),
// ownership and profit division (internal/actors), attack impacts
// (internal/impact), the strategic adversary (internal/adversary), defense
// optimization (internal/defense), the end-to-end game (internal/core), the
// paper's six-state western-US model (internal/westgrid), and the
// experiment harness regenerating the paper's Figures 2–7
// (internal/experiments).
package cpsguard

import (
	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/baseline"
	"cpsguard/internal/core"
	"cpsguard/internal/dcopf"
	"cpsguard/internal/defense"
	"cpsguard/internal/experiments"
	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/multiperiod"
	"cpsguard/internal/repeated"
	"cpsguard/internal/rng"
	"cpsguard/internal/secure"
	"cpsguard/internal/stats"
	"cpsguard/internal/westgrid"
)

// Graph modeling (see internal/graph).
type (
	// Graph is a directed energy flow network.
	Graph = graph.Graph
	// Vertex is one hub, generator or load.
	Vertex = graph.Vertex
	// Edge is one physical asset (line, pipeline, conversion, …).
	Edge = graph.Edge
	// Kind classifies an edge's physical asset type.
	Kind = graph.Kind
)

// Edge kinds.
const (
	KindTransmission = graph.KindTransmission
	KindPipeline     = graph.KindPipeline
	KindGeneration   = graph.KindGeneration
	KindDistribution = graph.KindDistribution
	KindConversion   = graph.KindConversion
	KindImport       = graph.KindImport
)

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Dispatch and settlement (see internal/flow, internal/actors).
type (
	// DispatchResult is a solved social-welfare dispatch.
	DispatchResult = flow.Result
	// Ownership maps asset IDs to actor IDs.
	Ownership = actors.Ownership
	// Profits is a per-actor profit statement.
	Profits = actors.Profits
	// ProfitModel divides system welfare among actors.
	ProfitModel = actors.ProfitModel
	// LMPDivision settles at locational marginal prices (default model).
	LMPDivision = actors.LMPDivision
	// IterativeDivision is the paper's literal marginal-cost relaxation.
	IterativeDivision = actors.IterativeDivision
)

// Dispatch solves the social-welfare optimum of g (Eqs. 1–7).
func Dispatch(g *Graph) (*DispatchResult, error) { return flow.Dispatch(g) }

// RandomOwnership assigns each asset of g to one of n actors uniformly at
// random, deterministically from seed.
func RandomOwnership(g *Graph, n int, seed uint64) Ownership {
	return actors.RandomOwnership(g, n, rng.New(seed))
}

// Impact analysis (see internal/impact).
type (
	// ImpactAnalysis measures attack impacts on a system.
	ImpactAnalysis = impact.Analysis
	// ImpactMatrix is IM[a,t], per-actor profit deltas per attacked asset.
	ImpactMatrix = impact.Matrix
	// Perturbation is a parameter override representing an attack.
	Perturbation = impact.Perturbation
)

// Outage is the paper's experimental attack: capacity → 0.
func Outage(edgeID string) Perturbation { return impact.Outage(edgeID) }

// Adversary and defense (see internal/adversary, internal/defense).
type (
	// Target is an attackable asset with cost and success probability.
	Target = adversary.Target
	// AttackPlan is the strategic adversary's chosen targets and actors.
	AttackPlan = adversary.Plan
	// AdversaryConfig states one SA optimization instance.
	AdversaryConfig = adversary.Config
	// Investment is one actor's chosen defense.
	Investment = defense.Investment
	// DefenseCosts maps targets to Cd(t).
	DefenseCosts = defense.Costs
)

// UniformTargets builds a uniform-economics target list (the paper's
// experimental configuration).
func UniformTargets(ids []string, cost, successProb float64) []Target {
	return adversary.UniformTargets(ids, cost, successProb)
}

// SolveAdversary finds the optimal attack (Eq. 8–11), exactly.
func SolveAdversary(cfg AdversaryConfig) (*AttackPlan, error) { return adversary.Solve(cfg) }

// End-to-end game (see internal/core).
type (
	// Scenario fixes a system, its ownership and its economics.
	Scenario = core.Scenario
	// GameConfig fixes one round's knowledge and budget parameters.
	GameConfig = core.GameConfig
	// GameResult reports a settled adversary-vs-defenders round.
	GameResult = core.GameResult
	// NoiseMode selects how noisy agent views are derived.
	NoiseMode = core.NoiseMode
)

// Noise modes.
const (
	// GraphNoise perturbs physical parameters and re-dispatches (paper-
	// faithful).
	GraphNoise = core.GraphNoise
	// MatrixNoise perturbs impact-matrix entries directly (fast).
	MatrixNoise = core.MatrixNoise
)

// NewScenario builds a scenario over g with n random actors.
func NewScenario(g *Graph, n int, seed uint64) *Scenario { return core.NewScenario(g, n, seed) }

// PlayRound runs one full adversary-vs-defenders round.
func PlayRound(s *Scenario, cfg GameConfig) (*GameResult, error) { return core.PlayRound(s, cfg) }

// The paper's evaluation model and experiments (see internal/westgrid,
// internal/experiments).
type (
	// WestgridOptions configures the six-state model build.
	WestgridOptions = westgrid.Options
	// ExperimentConfig parameterizes the figure regenerators.
	ExperimentConfig = experiments.Config
	// Table is a figure-shaped experiment result.
	Table = stats.Table
)

// Westgrid builds the paper's six-state interconnected gas-electric model.
func Westgrid(opts WestgridOptions) *Graph { return westgrid.Build(opts) }

// Experiment runners, one per figure in the paper's evaluation, plus the
// extension experiments documented in DESIGN.md §5.
var (
	Fig2 = experiments.Fig2
	Fig3 = experiments.Fig3
	Fig4 = experiments.Fig4
	Fig5 = experiments.Fig5
	Fig6 = experiments.Fig6
	Fig7 = experiments.Fig7
	// AllExperiments runs every figure.
	AllExperiments = experiments.All
	// ExtBaselineComparison compares economic and topological defense.
	ExtBaselineComparison = experiments.BaselineComparison
	// ExtDeception quantifies the Figure-4 deception defense.
	ExtDeception = experiments.Deception
	// ExtAttackVectors compares outage vs subtle attack families.
	ExtAttackVectors = experiments.AttackVectors
	// ExtSecurityPremium measures the N-1 security/welfare trade-off.
	ExtSecurityPremium = experiments.SecurityPremium
	// ExtHardening compares binary defense with graduated hardening.
	ExtHardening = experiments.HardeningComparison
)

// Extensions beyond the one-shot model (see the respective packages).
type (
	// MultiPeriodConfig states a time-domain dispatch (Section II-D5).
	MultiPeriodConfig = multiperiod.Config
	// Period is one demand/supply snapshot in a horizon.
	Period = multiperiod.Period
	// TimedAttack is a perturbation active over a period range.
	TimedAttack = multiperiod.TimedAttack
	// SecureConfig states a preventive N-1 dispatch (SCUC contrast).
	SecureConfig = secure.Config
	// RepeatedConfig states a multi-round learning game.
	RepeatedConfig = repeated.Config
	// HardeningConfig states a graduated-defense allocation.
	HardeningConfig = defense.HardeningConfig
	// GridgenConfig parameterizes the synthetic system generator.
	GridgenConfig = gridgen.Config
)

// MultiPeriodDispatch solves a coupled multi-period welfare optimum.
func MultiPeriodDispatch(cfg MultiPeriodConfig) (*multiperiod.Result, error) {
	return multiperiod.Dispatch(cfg)
}

// SecureDispatch solves a preventive N-1 security-constrained dispatch.
func SecureDispatch(cfg SecureConfig) (*secure.Result, error) { return secure.Dispatch(cfg) }

// PlayRepeated runs the multi-round adversary-vs-learning-defenders game.
func PlayRepeated(s *Scenario, cfg RepeatedConfig) (*repeated.Result, error) {
	return repeated.Play(s, cfg)
}

// PlanHardening allocates a graduated hardening budget (Section II-E4).
func PlanHardening(cfg HardeningConfig) (*defense.Hardening, error) {
	return defense.PlanHardening(cfg)
}

// GenerateGrid synthesizes an interconnected gas-electric system of
// arbitrary size with the structural grammar of the paper's model.
func GenerateGrid(cfg GridgenConfig) (*Graph, error) { return gridgen.Build(cfg) }

// EdgeBetweenness exposes the topological baseline's criticality metric.
func EdgeBetweenness(g *Graph) map[string]float64 { return baseline.EdgeBetweenness(g) }

// DCOPF solves the classical DC optimal power flow on g — the physics-
// constrained contrast to Dispatch's freely-routed transport model (see
// internal/dcopf).
func DCOPF(g *Graph, opts dcopf.Options) (*dcopf.Result, error) { return dcopf.Solve(g, opts) }

// DCOPFOptions configures DCOPF.
type DCOPFOptions = dcopf.Options
