package cpsguard

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
	"cpsguard/internal/solvecache"
)

// loadTestGrids reads every committed grid fixture under testdata/grids.
// The set spans the stressed six-state model (scarcity: congested lines,
// load shed), the unstressed one (slack everywhere), and a synthetic
// five-region grid — three qualitatively different polytopes for the
// dispatch LP.
func loadTestGrids(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "grids", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no grid fixtures in testdata/grids")
	}
	grids := make(map[string]*graph.Graph, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var g graph.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		name := filepath.Base(p)
		grids[name[:len(name)-len(".json")]] = &g
	}
	return grids
}

// randomPerturbationSet draws 1–4 perturbations over distinct edges with
// values inside each field's valid range: capacity in [0, 1.5·c] (including
// the outage end), cost in [0, 2·a+1], loss in [0, 0.9).
func randomPerturbationSet(g *graph.Graph, rs *rng.Stream) []impact.Perturbation {
	ids := g.AssetIDs()
	k := 1 + rs.Intn(4)
	if k > len(ids) {
		k = len(ids)
	}
	perm := make([]string, len(ids))
	copy(perm, ids)
	for i := 0; i < k; i++ {
		j := i + rs.Intn(len(perm)-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	ps := make([]impact.Perturbation, 0, k)
	for _, id := range perm[:k] {
		e := g.Edge(id)
		var p impact.Perturbation
		switch rs.Intn(3) {
		case 0:
			p = impact.Perturbation{EdgeID: id, Field: impact.Capacity, Value: e.Capacity * 1.5 * rs.Float64()}
		case 1:
			p = impact.Perturbation{EdgeID: id, Field: impact.Cost, Value: (2*e.Cost + 1) * rs.Float64()}
		default:
			p = impact.Perturbation{EdgeID: id, Field: impact.Loss, Value: 0.9 * rs.Float64()}
		}
		ps = append(ps, p)
	}
	return ps
}

// agreeWithin reports |a−b| ≤ tol·max(1,|a|,|b|): absolute at small scale,
// relative once the profits reach the model's $k magnitudes.
func agreeWithin(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func profitsDiff(t *testing.T, label string, cold, got actors.Profits, tol float64) {
	t.Helper()
	keys := map[string]bool{}
	for a := range cold {
		keys[a] = true
	}
	for a := range got {
		keys[a] = true
	}
	sorted := make([]string, 0, len(keys))
	for a := range keys {
		sorted = append(sorted, a)
	}
	sort.Strings(sorted)
	for _, a := range sorted {
		cv, gv := cold[a], got[a]
		if tol == 0 {
			if cv != gv {
				t.Errorf("%s: actor %s profit delta %v != cold %v (want bit-identical)", label, a, gv, cv)
			}
		} else if !agreeWithin(cv, gv, tol) {
			t.Errorf("%s: actor %s profit delta %v vs cold %v exceeds %g", label, a, gv, cv, tol)
		}
	}
}

// TestDifferentialWarmAndCached is the differential harness locking down the
// warm-started solve path and the memo cache against the cold solver. For
// every committed grid and a battery of seeded random perturbation sets it
// requires:
//
//   - warm-started objective (welfare delta) and per-actor profit deltas
//     agree with the cold two-phase solve within 1e-9 (relative at scale);
//   - cached Analysis.Of — both the filling miss and the subsequent hit —
//     is bit-identical to the uncached computation.
func TestDifferentialWarmAndCached(t *testing.T) {
	grids := loadTestGrids(t)
	setsPerGrid := 200 / len(grids)
	if testing.Short() {
		setsPerGrid = 10
	}

	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		g := grids[name]
		t.Run(name, func(t *testing.T) {
			own := actors.RandomOwnership(g, 4, rng.New(42))
			cold := &impact.Analysis{Graph: g, Ownership: own}
			cached := &impact.Analysis{Graph: g, Ownership: own,
				Cache: solvecache.New(4096)}
			warm := &impact.Analysis{Graph: g, Ownership: own,
				Cache: solvecache.New(4096), WarmStart: true}

			rs := rng.New(0xD1FF ^ uint64(len(name)))
			for i := 0; i < setsPerGrid; i++ {
				ps := randomPerturbationSet(g, rs)

				coldP, coldDW, err := cold.Of(ps...)
				if err != nil {
					t.Fatalf("set %d: cold: %v", i, err)
				}

				// Cache fill (miss) must be bit-identical to uncached.
				missP, missDW, err := cached.Of(ps...)
				if err != nil {
					t.Fatalf("set %d: cached miss: %v", i, err)
				}
				if missDW != coldDW {
					t.Errorf("set %d: cached miss welfare %v != cold %v", i, missDW, coldDW)
				}
				profitsDiff(t, "cached miss", coldP, missP, 0)

				// Cache hit must reproduce the same bits again.
				hitP, hitDW, err := cached.Of(ps...)
				if err != nil {
					t.Fatalf("set %d: cached hit: %v", i, err)
				}
				if hitDW != coldDW {
					t.Errorf("set %d: cached hit welfare %v != cold %v", i, hitDW, coldDW)
				}
				profitsDiff(t, "cached hit", coldP, hitP, 0)

				// Warm start may land on an alternate optimal basis; the
				// optimum itself must agree to 1e-9.
				warmP, warmDW, err := warm.Of(ps...)
				if err != nil {
					t.Fatalf("set %d: warm: %v", i, err)
				}
				if !agreeWithin(coldDW, warmDW, 1e-9) {
					t.Errorf("set %d: warm welfare delta %v vs cold %v exceeds 1e-9", i, warmDW, coldDW)
				}
				profitsDiff(t, "warm", coldP, warmP, 1e-9)
			}
		})
	}
}

// TestDifferentialOutageColumns sweeps every single-edge outage (the paper's
// attack model) on every grid — the exact solves the impact matrix is built
// from — comparing warm to cold and cached to uncached.
func TestDifferentialOutageColumns(t *testing.T) {
	grids := loadTestGrids(t)
	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		g := grids[name]
		t.Run(name, func(t *testing.T) {
			ids := g.AssetIDs()
			if testing.Short() && len(ids) > 12 {
				ids = ids[:12]
			}
			own := actors.RandomOwnership(g, 3, rng.New(7))
			cold := &impact.Analysis{Graph: g, Ownership: own}
			warm := &impact.Analysis{Graph: g, Ownership: own,
				Cache: solvecache.New(4096), WarmStart: true}
			for _, id := range ids {
				coldP, coldDW, err := cold.Of(impact.Outage(id))
				if err != nil {
					t.Fatalf("outage %s: cold: %v", id, err)
				}
				warmP, warmDW, err := warm.Of(impact.Outage(id))
				if err != nil {
					t.Fatalf("outage %s: warm: %v", id, err)
				}
				if !agreeWithin(coldDW, warmDW, 1e-9) {
					t.Errorf("outage %s: warm welfare delta %v vs cold %v", id, warmDW, coldDW)
				}
				profitsDiff(t, "outage "+id, coldP, warmP, 1e-9)
			}
		})
	}
}
