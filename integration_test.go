package cpsguard

import (
	"math"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/core"
	"cpsguard/internal/defense"
	"cpsguard/internal/flow"
	"cpsguard/internal/impact"
	"cpsguard/internal/multiperiod"
	"cpsguard/internal/rng"
	"cpsguard/internal/westgrid"
)

// TestFullPipelineOnWestgrid runs the complete paper pipeline on the real
// evaluation model: dispatch → profit division → impact matrix → adversary
// → defense → settlement, checking the cross-module invariants that no
// single package test can see.
func TestFullPipelineOnWestgrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model integration test")
	}
	g := westgrid.Build(westgrid.Options{Stress: true})
	scn := core.NewScenario(g, 6, 99)

	truth, err := scn.Truth()
	if err != nil {
		t.Fatal(err)
	}
	// Invariant: every impact column is zero-sum against welfare delta,
	// and no attack increases welfare.
	for _, target := range truth.Targets {
		sum := 0.0
		for _, a := range truth.Actors {
			sum += truth.Get(a, target)
		}
		dw := truth.WelfareDelta[target]
		if math.Abs(sum-dw) > 1e-4*(1+math.Abs(dw)) {
			t.Fatalf("column %s not zero-sum: %v vs %v", target, sum, dw)
		}
		if dw > 1e-6 {
			t.Fatalf("attack on %s increased welfare by %v", target, dw)
		}
	}

	// Adversary: exact plan must dominate greedy and respect budget.
	cfg := adversary.Config{Matrix: truth, Targets: scn.Targets, Budget: 4}
	exact, err := adversary.Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := adversary.SolveGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Anticipated < greedy.Anticipated-1e-9 {
		t.Fatalf("exact (%v) below greedy (%v)", exact.Anticipated, greedy.Anticipated)
	}
	if len(exact.Targets) > 4 {
		t.Fatalf("budget violated: %v", exact.Targets)
	}
	// Partitioned solver stays within the exact bound on the real model.
	part, err := adversary.SolvePartitioned(cfg,
		adversary.PartitionByPrefix(truth.Targets), adversary.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if part.Anticipated > exact.Anticipated+1e-9 {
		t.Fatalf("partitioned (%v) beat exact (%v)", part.Anticipated, exact.Anticipated)
	}

	// Defense: perfect-knowledge collaborative defense of the known plan
	// must drive the adversary's realized profit to at most the empty-
	// attack level (she still pays costs).
	pa := map[string]float64{}
	for _, tg := range exact.Targets {
		pa[tg] = 1
	}
	budgets := map[string]float64{}
	for _, a := range truth.Actors {
		budgets[a] = 4
	}
	cinv, err := defense.PlanCollaborative(defense.CollaborativeConfig{
		Matrix: truth, Ownership: scn.Ownership,
		AttackProb: defense.SharedAttackProb(truth, pa),
		Costs:      defense.UniformCosts(truth.Targets, 1),
		Budget:     budgets,
	})
	if err != nil {
		t.Fatal(err)
	}
	realized := adversary.Evaluate(exact, truth, scn.Targets,
		adversary.EvaluateOptions{Defended: cinv.Defended})
	undefended := adversary.Evaluate(exact, truth, scn.Targets, adversary.EvaluateOptions{})
	if realized > undefended {
		t.Fatalf("defense helped the adversary: %v > %v", realized, undefended)
	}
}

// TestProfitModelsAgreeOnWestgrid cross-checks the two profit-division
// models on the full evaluation system: totals must match welfare exactly,
// per-actor values approximately (they are different competitive
// estimates, not identical formulas).
func TestProfitModelsAgreeOnWestgrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model integration test")
	}
	g := westgrid.Build(westgrid.Options{Stress: true})
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	o := actors.RandomOwnership(g, 4, rng.New(17))
	lmp, err := actors.LMPDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := actors.IterativeDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-6 * (1 + math.Abs(r.Welfare))
	if math.Abs(lmp.Total()-r.Welfare) > tol {
		t.Fatalf("LMP total %v ≠ welfare %v", lmp.Total(), r.Welfare)
	}
	if math.Abs(iter.Total()-r.Welfare) > tol {
		t.Fatalf("iterative total %v ≠ welfare %v", iter.Total(), r.Welfare)
	}
}

// TestMultiperiodWestgrid runs the time-domain extension over the real
// model: a one-period gas import outage with ramped hydro recovery.
func TestMultiperiodWestgrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model integration test")
	}
	g := westgrid.Build(westgrid.Options{})
	cfg := multiperiod.Config{
		Graph: g,
		Periods: []multiperiod.Period{
			{Name: "offpeak", Weight: 1, DemandScale: 0.9},
			{Name: "peak", Weight: 1, DemandScale: 1.2},
			{Name: "late", Weight: 1, DemandScale: 1.0},
		},
		Ramp: map[string]float64{"gen:WA:hydro": 100},
	}
	base, err := multiperiod.Dispatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Total <= 0 {
		t.Fatalf("multiperiod welfare = %v", base.Total)
	}
	// CA's import is substitutable through neighboring pipelines; its
	// distribution feeder is not.
	delta, err := multiperiod.ImpactOf(cfg, multiperiod.TimedAttack{
		Perturbation: impact.Outage("gasdist:CA"), From: 1, To: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta >= 0 {
		t.Fatalf("peak-hour CA gas distribution outage should hurt: %v", delta)
	}
}

// TestFailureInjection drives broken inputs through every layer and checks
// they surface as errors rather than wrong numbers.
func TestFailureInjection(t *testing.T) {
	// Disconnected demand: dispatch succeeds with zero service.
	g := NewGraph("disconnected")
	g.MustAddVertex(Vertex{ID: "island", Demand: 10, Price: 5})
	g.MustAddVertex(Vertex{ID: "gen", Supply: 10, SupplyCost: 1})
	r, err := Dispatch(g)
	if err != nil {
		t.Fatalf("disconnected dispatch should succeed trivially: %v", err)
	}
	if r.Welfare != 0 {
		t.Fatalf("disconnected welfare = %v, want 0", r.Welfare)
	}

	// Invalid loss caught before the LP.
	bad := NewGraph("bad")
	bad.MustAddVertex(Vertex{ID: "a", Supply: 1})
	bad.MustAddVertex(Vertex{ID: "b", Demand: 1, Price: 1})
	bad.MustAddEdge(Edge{ID: "e", From: "a", To: "b", Capacity: 1})
	bad.Edges[0].Loss = 1.0
	if _, err := Dispatch(bad); err == nil {
		t.Fatal("loss=1 accepted")
	}

	// Attacking a non-existent asset.
	an := &ImpactAnalysis{Graph: g, Ownership: Ownership{}}
	if _, _, err := an.Of(Outage("ghost")); err == nil {
		t.Fatal("ghost target accepted")
	}

	// Adversary with inconsistent target (matrix lacks it) still works —
	// it simply never pays for valueless targets.
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SolveAdversary(AdversaryConfig{
		Matrix:  m,
		Targets: UniformTargets([]string{"ghost"}, 1, 1),
		Budget:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Targets) != 0 {
		t.Fatalf("valueless ghost target attacked: %v", plan.Targets)
	}
}
