// Observability-layer benchmark report: `make bench-obs` runs TestBenchObs
// with BENCH_OBS_OUT set, which times the Prometheus exposition render (the
// per-scrape cost every debug-mux scrape pays) and the fleet trace merge,
// and writes BENCH_obs.json (same cpsguard-bench/v1 envelope as
// BENCH_telemetry.json) so scrape-path and merge-path regressions land in
// one reviewable file.
package cpsguard

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/telemetry"
)

// benchObsRegistry builds a registry shaped like a real sweep's: a few dozen
// counters and a handful of populated histograms/timings.
func benchObsRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	for i := 0; i < 40; i++ {
		r.Counter(fmt.Sprintf("bench.counter_%02d", i)).Add(int64(i * 17))
	}
	for i := 0; i < 4; i++ {
		h := r.Histogram(fmt.Sprintf("bench.hist_%d", i), telemetry.WorkEdges)
		tm := r.Timing(fmt.Sprintf("bench.timing_%d_ns", i))
		for v := int64(1); v < 1_000_000; v *= 3 {
			h.Observe(v)
			tm.Observe(v)
		}
	}
	return r
}

// BenchmarkPromExposition times one full exposition render — snapshot plus
// deterministic text encoding — of a sweep-sized registry.
func BenchmarkPromExposition(b *testing.B) {
	r := benchObsRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.PrometheusText()) == 0 {
			b.Fatal("empty exposition")
		}
	}
}

// benchFleetTraces builds an n-process fleet of linked Chrome traces, each
// with spansPer spans, for the merge benchmark.
func benchFleetTraces(tb testing.TB, n, spansPer int) []*telemetry.ChromeTrace {
	tb.Helper()
	tick := func(r *telemetry.Registry) {
		c := 0
		r.SetClock(func() time.Time {
			c++
			return time.Unix(0, int64(c)*int64(time.Millisecond))
		})
	}
	parent := telemetry.NewRegistry()
	tick(parent)
	parent.EnableTracing(true)
	parent.SetSpanCapacity(spansPer + 8)
	root := parent.StartSpan("shard.supervise", "bench")
	traces := make([]*telemetry.ChromeTrace, 0, n)
	for i := 1; i < n; i++ {
		launch := parent.StartSpan("shard.child", fmt.Sprintf("%d", i))
		tc, ok := parent.ChildTraceContext(launch)
		if !ok {
			tb.Fatal("no child trace context")
		}
		child := telemetry.NewRegistry()
		tick(child)
		child.SetTraceContext(tc)
		child.EnableTracing(true)
		child.SetSpanCapacity(spansPer + 8)
		for k := 0; k < spansPer; k++ {
			child.StartSpan("experiments.trial", fmt.Sprintf("t%d", k)).End()
		}
		launch.End()
		snap := child.Snapshot(telemetry.SnapshotOptions{Spans: true})
		snap.PID = 1000 + i
		traces = append(traces, snap.ChromeTrace())
	}
	root.End()
	snap := parent.Snapshot(telemetry.SnapshotOptions{Spans: true})
	snap.PID = 1000
	return append([]*telemetry.ChromeTrace{snap.ChromeTrace()}, traces...)
}

// BenchmarkTraceMerge times stitching an 8-process fleet (250 spans per
// child) into one timeline, including link validation.
func BenchmarkTraceMerge(b *testing.B) {
	traces := benchFleetTraces(b, 8, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := telemetry.MergeChromeTraces(traces)
		if err != nil {
			b.Fatal(err)
		}
		if stats.UnresolvedParents != 0 {
			b.Fatalf("%d unresolved parents", stats.UnresolvedParents)
		}
	}
}

// TestBenchObs is gated by BENCH_OBS_OUT: unset, it skips; set, it runs the
// observability benchmarks and writes the JSON report to that path.
func TestBenchObs(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=path to run the observability benchmarks")
	}
	report := benchTelemetryReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		Platform:   runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: map[string]benchTelemetryEntry{},
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"PromExposition", BenchmarkPromExposition},
		{"TraceMerge", BenchmarkTraceMerge},
	} {
		r := testing.Benchmark(bench.fn)
		report.Benchmarks[bench.name] = benchTelemetryEntry{
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		t.Logf("%s: %d iter, %d ns/op", bench.name, r.N, r.NsPerOp())
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", out, len(data))
}
