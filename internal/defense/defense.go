// Package defense implements Section II-F: every actor is a defender who
// invests a limited budget MD(a) in protecting its own assets against the
// strategic adversary, and actors with aligned incentives may pool defensive
// costs (Section II-F3).
//
// Independent defense (Eqs. 12–14) reduces, per actor, to a 0/1 knapsack:
// defending target t averts the expected loss Pa(t)·Ps(t)·loss(a,t) at price
// Cd(t), subject to Σ Cd·D ≤ MD(a). Collaborative defense (Eqs. 15–18)
// shares each target's cost across the cooperating set CD(t) — every actor
// harmed by the target — in proportion to their individual losses
// (Eq. 15), and is a multi-dimensional knapsack with one budget row per
// actor, solved exactly.
//
// The attack probabilities Pa come from the defender's model of the
// adversary (Section II-F2): she perturbs her own (already noisy) impact
// matrix I′ with her estimate of the adversary's knowledge to get samples of
// I″, solves the SA for each sample, and uses attack frequencies.
package defense

import (
	"errors"
	"fmt"
	"sort"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/impact"
	"cpsguard/internal/knapsack"
	"cpsguard/internal/noise"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/telemetry"
)

// Costs maps target IDs to their defense cost Cd(t).
type Costs map[string]float64

// UniformCosts assigns the same Cd to every listed target.
func UniformCosts(ids []string, cd float64) Costs {
	c := make(Costs, len(ids))
	for _, id := range ids {
		c[id] = cd
	}
	return c
}

// Investment is one actor's chosen defense.
type Investment struct {
	// Defended is the set of protected asset IDs.
	Defended map[string]bool
	// Spent is the total defense expenditure (shared-cost fractions for
	// collaborative plans).
	Spent float64
	// AvertedExpectedLoss is the objective value: the expected loss the
	// investment prevents under the defender's model.
	AvertedExpectedLoss float64
}

// loss returns the positive loss actor a believes it suffers from target t.
func loss(m *impact.Matrix, a, t string) float64 {
	if v := m.Get(a, t); v < 0 {
		return -v
	}
	return 0
}

// IndependentConfig states one actor's defense problem.
type IndependentConfig struct {
	// Actor is the defending actor.
	Actor string
	// Matrix is the defender's believed impact matrix I′.
	Matrix *impact.Matrix
	// Ownership determines which targets the actor may defend (only its
	// own assets, per Section II-F1).
	Ownership actors.Ownership
	// AttackProb is Pa(t) (zero for absent keys).
	AttackProb map[string]float64
	// SuccessProb is Ps(t) (defaults to 1 for absent keys).
	SuccessProb map[string]float64
	// Costs is Cd(t).
	Costs Costs
	// Budget is MD(actor).
	Budget float64
}

func successProb(m map[string]float64, t string) float64 {
	if m == nil {
		return 1
	}
	if v, ok := m[t]; ok {
		return v
	}
	return 1
}

// PlanIndependent solves Eqs. 12–14 exactly for one actor. A panic in the
// knapsack layer (e.g. poisoned inputs) is recovered and returned as an
// error so a single bad trial cannot crash a Monte-Carlo run.
func PlanIndependent(cfg IndependentConfig) (inv *Investment, err error) {
	defer func() {
		mIndependent.Inc()
		if err != nil {
			mPlanErrors.Inc()
			return
		}
		mDefended.Add(int64(len(inv.Defended)))
		mDefendedHist.Observe(int64(len(inv.Defended)))
	}()
	defer func() {
		if r := recover(); r != nil {
			inv, err = nil, fmt.Errorf("defense: independent plan for %s panicked: %v", cfg.Actor, r)
		}
	}()
	if cfg.Matrix == nil {
		return nil, errors.New("defense: nil impact matrix")
	}
	owned := cfg.Ownership.Assets(cfg.Actor)
	var ids []string
	var values, weights []float64
	for _, t := range owned {
		cd, ok := cfg.Costs[t]
		if !ok {
			continue // cost unknown → not defendable
		}
		avert := cfg.AttackProb[t] * successProb(cfg.SuccessProb, t) * loss(cfg.Matrix, cfg.Actor, t)
		net := avert - cd
		if net <= 0 {
			continue // PsPaI ≤ Cd → never defend (Section II-F)
		}
		ids = append(ids, t)
		values = append(values, net)
		weights = append(weights, cd)
	}
	chosen, val := knapsack.Solve(values, weights, cfg.Budget)
	inv = &Investment{Defended: map[string]bool{}, AvertedExpectedLoss: val}
	for _, i := range chosen {
		inv.Defended[ids[i]] = true
		inv.Spent += weights[i]
	}
	return inv, nil
}

// PlanAllIndependent runs PlanIndependent for every actor in the ownership
// with a uniform per-actor budget, returning investments keyed by actor.
func PlanAllIndependent(m *impact.Matrix, o actors.Ownership, pa map[string]float64,
	costs Costs, budgetPerActor float64) (map[string]*Investment, error) {
	out := map[string]*Investment{}
	for _, a := range o.Actors() {
		inv, err := PlanIndependent(IndependentConfig{
			Actor: a, Matrix: m, Ownership: o,
			AttackProb: pa, Costs: costs, Budget: budgetPerActor,
		})
		if err != nil {
			return nil, fmt.Errorf("defense: actor %s: %w", a, err)
		}
		out[a] = inv
	}
	return out, nil
}

// Union merges per-actor investments into the system-wide defended set.
func Union(invs map[string]*Investment) map[string]bool {
	d := map[string]bool{}
	for _, inv := range invs {
		for t := range inv.Defended {
			d[t] = true
		}
	}
	return d
}

// CollaborativeConfig states the pooled defense problem of Eqs. 15–18.
type CollaborativeConfig struct {
	// Matrix is the shared believed impact matrix. Per-actor attack
	// probabilities (Pa(a,t) in Eq. 16) may differ; see AttackProb.
	Matrix *impact.Matrix
	// Ownership enumerates the actors (any actor harmed by a target may
	// join its defense, regardless of ownership — Section II-F3's
	// example is buyers pooling to defend a supplier they don't own).
	Ownership actors.Ownership
	// AttackProb maps actor → target → Pa(a,t). A nil inner map for an
	// actor means Pa = 0 for all targets; use SharedAttackProb to give
	// every actor the same view.
	AttackProb map[string]map[string]float64
	// SuccessProb is Ps(t) (defaults to 1).
	SuccessProb map[string]float64
	// Costs is Cd(t) — the full cost, shared by Eq. 15 when defended.
	Costs Costs
	// Budget maps actor → MD(a).
	Budget map[string]float64
}

// SharedAttackProb replicates one Pa map for every actor in the matrix.
func SharedAttackProb(m *impact.Matrix, pa map[string]float64) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, a := range m.Actors {
		out[a] = pa
	}
	return out
}

// CollabInvestment is the outcome of collaborative planning.
type CollabInvestment struct {
	// Defended is the set of protected assets.
	Defended map[string]bool
	// Share maps actor → target → the cost share Ccd(a,t) it pays.
	Share map[string]map[string]float64
	// TotalValue is the objective of Eq. 16 restricted to defended
	// targets (expected averted loss minus full costs).
	TotalValue float64
}

// PlanCollaborative solves Eqs. 15–18 exactly as a multi-dimensional
// knapsack (one cost-share budget row per actor). Panics in the knapsack
// layer are recovered and returned as errors.
func PlanCollaborative(cfg CollaborativeConfig) (inv *CollabInvestment, err error) {
	defer func() {
		mCollab.Inc()
		if err != nil {
			mPlanErrors.Inc()
			return
		}
		mDefended.Add(int64(len(inv.Defended)))
		mDefendedHist.Observe(int64(len(inv.Defended)))
	}()
	defer func() {
		if r := recover(); r != nil {
			inv, err = nil, fmt.Errorf("defense: collaborative plan panicked: %v", r)
		}
	}()
	if cfg.Matrix == nil {
		return nil, errors.New("defense: nil impact matrix")
	}
	// The cooperating pool includes every actor harmed by a target, not
	// just asset owners (Section II-F3's buyers defending a supplier), so
	// enumerate the union of matrix actors and owners.
	actSet := map[string]bool{}
	for _, a := range cfg.Matrix.Actors {
		actSet[a] = true
	}
	for _, a := range cfg.Ownership.Actors() {
		actSet[a] = true
	}
	acts := make([]string, 0, len(actSet))
	for a := range actSet {
		acts = append(acts, a)
	}
	sort.Strings(acts)
	targets := make([]string, 0, len(cfg.Costs))
	for t := range cfg.Costs {
		targets = append(targets, t)
	}
	sort.Strings(targets)

	var ids []string
	var values []float64
	shares := map[string]map[string]float64{} // target → actor → share
	weights := make([][]float64, len(acts))
	budgets := make([]float64, len(acts))
	for d, a := range acts {
		budgets[d] = cfg.Budget[a]
		weights[d] = nil // filled per target below
	}

	for _, t := range targets {
		cd := cfg.Costs[t]
		ps := successProb(cfg.SuccessProb, t)
		// CD(t): actors with a loss at t (negative believed impact).
		totalLoss := 0.0
		perLoss := map[string]float64{}
		for _, a := range acts {
			if l := loss(cfg.Matrix, a, t); l > 0 {
				perLoss[a] = l
				totalLoss += l
			}
		}
		if totalLoss == 0 {
			continue // nobody is harmed; no cooperating set
		}
		// Expected averted loss across the cooperating set, with each
		// defender's own perceived attack probability (Eq. 16).
		avert := 0.0
		for a, l := range perLoss {
			pa := 0.0
			if row := cfg.AttackProb[a]; row != nil {
				pa = row[t]
			}
			avert += pa * ps * l
		}
		net := avert - cd
		if net <= 0 {
			continue
		}
		ids = append(ids, t)
		values = append(values, net)
		share := map[string]float64{}
		for a, l := range perLoss {
			share[a] = cd * l / totalLoss // Eq. 15
		}
		shares[t] = share
		for d, a := range acts {
			weights[d] = append(weights[d], share[a])
		}
	}

	chosen, val := knapsack.SolveMulti(values, weights, budgets)
	inv = &CollabInvestment{
		Defended:   map[string]bool{},
		Share:      map[string]map[string]float64{},
		TotalValue: val,
	}
	for _, i := range chosen {
		t := ids[i]
		inv.Defended[t] = true
		for a, s := range shares[t] {
			if inv.Share[a] == nil {
				inv.Share[a] = map[string]float64{}
			}
			inv.Share[a][t] = s
		}
	}
	return inv, nil
}

// EstimateAttackProb implements Section II-F2: the defender perturbs her
// believed impact matrix with her estimate sigmaSpec of the adversary's
// knowledge noise, solves the SA for each of samples draws, and returns the
// attack frequency per target. Sampling fans out across cores.
//
// Each sample uses the resilient adversary chain (exact → greedy → MILP
// oracle), and the pool's context (par.Context) is threaded into every
// solve so cancellation stops in-flight searches.
func EstimateAttackProb(believed *impact.Matrix, targets []adversary.Target,
	budget float64, sigmaSpec float64, samples int, seed uint64,
	par parallel.Options) (map[string]float64, error) {
	return EstimateAttackProbOpts(believed, targets, budget, sigmaSpec, samples, seed, par, PaOptions{})
}

// PaOptions extends Pa estimation with optional accelerators.
type PaOptions struct {
	// Screen, when set, is threaded into every per-sample adversary solve
	// as a candidate-pruning front-end. This is sound under matrix noise
	// because noise.PerturbMatrix keeps exact zeros exactly zero: a
	// certified-zero target stays zero in every perturbed view, and the
	// adversary filter additionally requires a strictly negative
	// standalone impact in the sample's own matrix before dropping a
	// candidate, so each sample's plan is bit-identical to its unscreened
	// twin (see DESIGN.md §17).
	Screen *screen.Ranking
}

// EstimateAttackProbOpts is EstimateAttackProb with options.
func EstimateAttackProbOpts(believed *impact.Matrix, targets []adversary.Target,
	budget float64, sigmaSpec float64, samples int, seed uint64,
	par parallel.Options, opts PaOptions) (map[string]float64, error) {
	if samples <= 0 {
		return nil, errors.New("defense: samples must be positive")
	}
	mPaEstimates.Inc()
	mPaSamples.Add(int64(samples))
	sp, spanCtx := telemetry.Default().StartSpanCtx(par.Context, "defense.pa_estimate", "")
	if sp != nil {
		sp.SetWork(int64(samples))
		par.Context = spanCtx // per-sample adversary solves nest under this span
		defer sp.End()
	}
	plans, err := parallel.Map(samples, par, func(i int) ([]string, error) {
		rs := rng.Derive(seed, uint64(i))
		view := *believed // shallow copy; IM replaced below
		view.IM = noise.PerturbMatrix(believed.IM, sigmaSpec, rs)
		p, err := adversary.SolveResilient(adversary.Config{
			Matrix: &view, Targets: targets, Budget: budget,
			Ctx: par.Context, Screen: opts.Screen,
		})
		if err != nil {
			return nil, err
		}
		return p.Targets, nil
	})
	if err != nil {
		return nil, err
	}
	pa := map[string]float64{}
	for _, ts := range plans {
		for _, t := range ts {
			pa[t] += 1.0 / float64(samples)
		}
	}
	return pa, nil
}
