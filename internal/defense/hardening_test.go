package defense

import (
	"math"
	"testing"

	"cpsguard/internal/adversary"
)

func hardeningFixture() (HardeningConfig, []adversary.Target) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"big": -100, "small": -10, "gain": +5},
	})
	targets := adversary.UniformTargets(m.Targets, 1, 1)
	cfg := HardeningConfig{
		Matrix:     m,
		Targets:    targets,
		AttackProb: map[string]float64{"big": 0.5, "small": 0.5, "gain": 0.5},
		Budget:     4,
		DecayScale: 1,
	}
	return cfg, targets
}

func TestPlanHardeningPrioritizesBigLosses(t *testing.T) {
	cfg, _ := hardeningFixture()
	h, err := PlanHardening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Invest["big"] <= h.Invest["small"] {
		t.Fatalf("big loss should attract more hardening: %v", h.Invest)
	}
	if h.Invest["gain"] != 0 {
		t.Fatalf("gain-producing target hardened: %v", h.Invest)
	}
	// Budget respected (within one step).
	spent := 0.0
	for _, x := range h.Invest {
		spent += x
	}
	if spent > cfg.Budget+1e-9 {
		t.Fatalf("overspent: %v > %v", spent, cfg.Budget)
	}
	// Residual Ps decays with investment.
	if h.ResidualPs["big"] >= 1 {
		t.Fatalf("hardening did not reduce Ps: %v", h.ResidualPs)
	}
	want := math.Exp(-h.Invest["big"])
	if math.Abs(h.ResidualPs["big"]-want) > 1e-9 {
		t.Fatalf("residual Ps = %v, want %v", h.ResidualPs["big"], want)
	}
	if h.ExpectedAverted <= 0 {
		t.Fatal("no averted loss recorded")
	}
}

func TestHardeningEqualizesMarginals(t *testing.T) {
	// With equal losses the greedy allocation must split evenly.
	m := matrixOf(map[string]map[string]float64{
		"A": {"x": -50, "y": -50},
	})
	cfg := HardeningConfig{
		Matrix:     m,
		Targets:    adversary.UniformTargets(m.Targets, 1, 1),
		AttackProb: map[string]float64{"x": 1, "y": 1},
		Budget:     2,
		Step:       0.01,
	}
	h, err := PlanHardening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Invest["x"]-h.Invest["y"]) > 0.02 {
		t.Fatalf("symmetric assets got asymmetric hardening: %v", h.Invest)
	}
}

func TestHardeningZeroBudget(t *testing.T) {
	cfg, targets := hardeningFixture()
	cfg.Budget = 0
	h, err := PlanHardening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Invest) != 0 || h.ExpectedAverted != 0 {
		t.Fatalf("zero budget invested: %+v", h)
	}
	for _, tg := range targets {
		if h.ResidualPs[tg.ID] != tg.SuccessProb {
			t.Fatalf("Ps changed without investment")
		}
	}
}

func TestHardeningValidation(t *testing.T) {
	if _, err := PlanHardening(HardeningConfig{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	cfg, _ := hardeningFixture()
	cfg.Budget = -1
	if _, err := PlanHardening(cfg); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestApplyHardeningChangesAdversaryEconomics(t *testing.T) {
	cfg, targets := hardeningFixture()
	h, err := PlanHardening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hardened := ApplyHardening(targets, h, 2)
	for i, ht := range hardened {
		orig := targets[i]
		if h.Invest[orig.ID] > 0 {
			if ht.SuccessProb >= orig.SuccessProb {
				t.Fatalf("%s: Ps not reduced", orig.ID)
			}
			if ht.Cost <= orig.Cost {
				t.Fatalf("%s: Catk not raised", orig.ID)
			}
		} else if ht != orig {
			t.Fatalf("%s: unhardened target mutated", orig.ID)
		}
	}
	// The hardened economics must reduce the SA's optimum.
	before, err := adversary.Solve(adversary.Config{Matrix: cfg.Matrix, Targets: targets, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := adversary.Solve(adversary.Config{Matrix: cfg.Matrix, Targets: hardened, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if after.Anticipated > before.Anticipated {
		t.Fatalf("hardening increased SA profit: %v > %v", after.Anticipated, before.Anticipated)
	}
}

func TestHardeningActorScoped(t *testing.T) {
	// Actor-scoped hardening only counts that actor's losses.
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -100, "t2": 0},
		"B": {"t1": 0, "t2": -100},
	})
	cfg := HardeningConfig{
		Matrix:     m,
		Targets:    adversary.UniformTargets(m.Targets, 1, 1),
		AttackProb: map[string]float64{"t1": 1, "t2": 1},
		Budget:     2,
		Actor:      "A",
	}
	h, err := PlanHardening(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Invest["t2"] != 0 || h.Invest["t1"] == 0 {
		t.Fatalf("actor scoping wrong: %v", h.Invest)
	}
}
