// Defense as redesign: instead of (or alongside) guarding existing assets,
// the defender spends her capital budget changing the grid's design —
// building new corridors or upgrading capacities — so that the worst-case
// N-k contingency simply hurts less. Candidate interventions come from
// gridgen.CandidateInterventions (or any caller-supplied menu); each is
// valued by the drop in screened worst-case welfare damage it buys, and the
// selection under budget is the same exact 0/1 knapsack the paper's Eq. 12
// planner uses.
package defense

import (
	"errors"
	"fmt"

	"cpsguard/internal/actors"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/knapsack"
	"cpsguard/internal/parallel"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
)

// RedesignConfig states the redesign problem.
type RedesignConfig struct {
	// Graph is the current system design.
	Graph *graph.Graph
	// Ownership partitions the assets (welfare screening is ownership-
	// independent, but the analyses carry it so profit decompositions in
	// shared caches stay scenario-consistent).
	Ownership actors.Ownership
	// Candidates is the redesign menu (see gridgen.CandidateInterventions).
	Candidates []graph.Intervention
	// Budget is the capital budget Σ Cost(chosen) must respect.
	Budget float64
	// ScreenK is the outage depth of the vulnerability screen valuing each
	// candidate (default 2).
	ScreenK int
	// Targets is the outage threat set the screen ranges over; defaults to
	// every asset of Graph. The same set is used before and after each
	// intervention so values compare like with like.
	Targets []string
	// MaxSets bounds each screen's enumeration budget (0 = unbounded).
	MaxSets int
	// Parallel tunes the LP fan-out inside each screen.
	Parallel parallel.Options
}

func (c RedesignConfig) screenK() int {
	if c.ScreenK > 0 {
		return c.ScreenK
	}
	return 2
}

// RedesignPlan is the outcome of PlanRedesign.
type RedesignPlan struct {
	// Baseline is the vulnerability ranking of the un-redesigned grid.
	Baseline *screen.Ranking `json:"baseline"`
	// Chosen is the selected intervention set, in menu order.
	Chosen []graph.Intervention `json:"chosen"`
	// Spent is the capital actually committed.
	Spent float64 `json:"spent"`
	// BaselineWorstDamage and ResidualWorstDamage are the screened
	// worst-case welfare damages (≥ 0) before and after the redesign.
	BaselineWorstDamage float64 `json:"baseline_worst_damage"`
	ResidualWorstDamage float64 `json:"residual_worst_damage"`
	// Values maps candidate ID → standalone averted damage (the knapsack
	// value), including candidates that were not chosen.
	Values map[string]float64 `json:"values"`
	// Graph is the redesigned grid with Chosen built.
	Graph *graph.Graph `json:"-"`
}

// worstDamage extracts the nonnegative damage of a ranking's worst set.
func worstDamage(r *screen.Ranking) float64 {
	if d := -r.Worst.Delta; d > 0 {
		return d
	}
	return 0
}

func (cfg RedesignConfig) screenGraph(g *graph.Graph) (*screen.Ranking, error) {
	an := &impact.Analysis{
		Graph: g, Ownership: cfg.Ownership,
		Cache: solvecache.New(8192), Parallel: cfg.Parallel,
	}
	return screen.Run(screen.Config{
		Analysis: an, Targets: cfg.Targets, K: cfg.screenK(), MaxSets: cfg.MaxSets,
	})
}

// PlanRedesign values every candidate intervention by the reduction in
// screened worst-case damage it achieves alone, selects a set under the
// capital budget with the exact knapsack, and returns the redesigned grid
// with its residual vulnerability. Deterministic for fixed inputs. Panics
// in the knapsack layer are recovered and returned as errors, matching the
// other planners.
func PlanRedesign(cfg RedesignConfig) (plan *RedesignPlan, err error) {
	defer func() {
		mRedesigns.Inc()
		if err != nil {
			mPlanErrors.Inc()
			return
		}
		mBuilt.Add(int64(len(plan.Chosen)))
	}()
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("defense: redesign plan panicked: %v", r)
		}
	}()
	if cfg.Graph == nil {
		return nil, errors.New("defense: nil graph")
	}
	if cfg.Targets == nil {
		cfg.Targets = cfg.Graph.AssetIDs()
	}
	for _, iv := range cfg.Candidates {
		if err := iv.Validate(cfg.Graph); err != nil {
			return nil, err
		}
	}
	mCandidates.Add(int64(len(cfg.Candidates)))

	base, err := cfg.screenGraph(cfg.Graph)
	if err != nil {
		return nil, fmt.Errorf("defense: baseline screen: %w", err)
	}
	baseDamage := worstDamage(base)

	values := make([]float64, len(cfg.Candidates))
	costs := make([]float64, len(cfg.Candidates))
	byID := make(map[string]float64, len(cfg.Candidates))
	for i, iv := range cfg.Candidates {
		gi, err := graph.ApplyInterventions(cfg.Graph, iv)
		if err != nil {
			return nil, fmt.Errorf("defense: candidate %s: %w", iv.ID, err)
		}
		ri, err := cfg.screenGraph(gi)
		if err != nil {
			return nil, fmt.Errorf("defense: screening candidate %s: %w", iv.ID, err)
		}
		values[i] = baseDamage - worstDamage(ri)
		costs[i] = iv.Cost
		byID[iv.ID] = values[i]
	}

	chosen, _ := knapsack.Solve(values, costs, cfg.Budget)
	plan = &RedesignPlan{
		Baseline:            base,
		BaselineWorstDamage: baseDamage,
		Values:              byID,
	}
	ivs := make([]graph.Intervention, 0, len(chosen))
	for _, i := range chosen {
		ivs = append(ivs, cfg.Candidates[i])
		plan.Spent += costs[i]
	}
	plan.Chosen = ivs

	plan.Graph, err = graph.ApplyInterventions(cfg.Graph, ivs...)
	if err != nil {
		return nil, fmt.Errorf("defense: building chosen set: %w", err)
	}
	final, err := cfg.screenGraph(plan.Graph)
	if err != nil {
		return nil, fmt.Errorf("defense: residual screen: %w", err)
	}
	plan.ResidualWorstDamage = worstDamage(final)
	return plan, nil
}
