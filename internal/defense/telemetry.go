// Telemetry instruments for the defender layer: how many plans of each kind
// were solved, how many Pa estimation samples were drawn, and how many
// targets ended up defended. All counts are functions of the seeded inputs.
package defense

import "cpsguard/internal/telemetry"

var (
	mIndependent  = telemetry.NewCounter("defense.independent_plans")
	mCollab       = telemetry.NewCounter("defense.collaborative_plans")
	mPlanErrors   = telemetry.NewCounter("defense.plan_errors")
	mPaEstimates  = telemetry.NewCounter("defense.pa_estimates")
	mPaSamples    = telemetry.NewCounter("defense.pa_samples")
	mDefended     = telemetry.NewCounter("defense.defended_targets")
	mDefendedHist = telemetry.NewHistogram("defense.defended_per_plan", telemetry.DepthEdges)
	// Redesign mode: plans solved, candidates valued, interventions built.
	mRedesigns  = telemetry.NewCounter("defense.redesign_plans")
	mCandidates = telemetry.NewCounter("defense.redesign_candidates")
	mBuilt      = telemetry.NewCounter("defense.interventions_built")
)
