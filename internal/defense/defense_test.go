package defense

import (
	"math"
	"sort"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/impact"
	"cpsguard/internal/parallel"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matrixOf(im map[string]map[string]float64) *impact.Matrix {
	m := &impact.Matrix{IM: map[string]map[string]float64{}, WelfareDelta: map[string]float64{}}
	targetSet := map[string]bool{}
	for a, row := range im {
		m.Actors = append(m.Actors, a)
		m.IM[a] = map[string]float64{}
		for t, v := range row {
			m.IM[a][t] = v
			targetSet[t] = true
		}
	}
	sort.Strings(m.Actors)
	for t := range targetSet {
		m.Targets = append(m.Targets, t)
	}
	sort.Strings(m.Targets)
	return m
}

func TestPlanIndependentBasics(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -10, "t2": -2, "t3": +5},
		"B": {"t1": +10, "t2": -8},
	})
	o := actors.Ownership{"t1": "A", "t2": "A", "t3": "A"}
	inv, err := PlanIndependent(IndependentConfig{
		Actor: "A", Matrix: m, Ownership: o,
		AttackProb: map[string]float64{"t1": 1, "t2": 1, "t3": 1},
		Costs:      UniformCosts([]string{"t1", "t2", "t3"}, 1),
		Budget:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// t1 averts 10 at cost 1 (net 9); t2 averts 2 at cost 1 (net 1);
	// t3 is a gain — never defended. Budget 2 → defend both t1, t2.
	if !inv.Defended["t1"] || !inv.Defended["t2"] || inv.Defended["t3"] {
		t.Fatalf("defended = %v", inv.Defended)
	}
	if !approx(inv.Spent, 2, 1e-12) || !approx(inv.AvertedExpectedLoss, 10, 1e-12) {
		t.Fatalf("spent=%v averted=%v", inv.Spent, inv.AvertedExpectedLoss)
	}
}

func TestDefendOnlyWhenWorthIt(t *testing.T) {
	// Paper rule: defend iff Ps·Pa·I > Cd.
	m := matrixOf(map[string]map[string]float64{"A": {"t1": -10}})
	o := actors.Ownership{"t1": "A"}
	cfg := IndependentConfig{
		Actor: "A", Matrix: m, Ownership: o,
		AttackProb: map[string]float64{"t1": 0.05}, // expected loss 0.5 < Cd 1
		Costs:      UniformCosts([]string{"t1"}, 1),
		Budget:     10,
	}
	inv, err := PlanIndependent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Defended) != 0 {
		t.Fatalf("uneconomic defense chosen: %v", inv.Defended)
	}
	// Raise Pa above break-even.
	cfg.AttackProb = map[string]float64{"t1": 0.2}
	inv, _ = PlanIndependent(cfg)
	if !inv.Defended["t1"] {
		t.Fatal("economic defense skipped")
	}
	// Ps scales the same way.
	cfg.SuccessProb = map[string]float64{"t1": 0.1} // 0.2·0.1·10 = 0.2 < 1
	inv, _ = PlanIndependent(cfg)
	if len(inv.Defended) != 0 {
		t.Fatal("Ps not applied")
	}
}

func TestOwnershipRestrictsIndependentDefense(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -10, "t2": -10},
	})
	o := actors.Ownership{"t1": "A", "t2": "B"} // t2 owned by B
	inv, err := PlanIndependent(IndependentConfig{
		Actor: "A", Matrix: m, Ownership: o,
		AttackProb: map[string]float64{"t1": 1, "t2": 1},
		Costs:      UniformCosts([]string{"t1", "t2"}, 1),
		Budget:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Defended["t2"] {
		t.Fatal("actor defended an asset it does not own")
	}
	if !inv.Defended["t1"] {
		t.Fatal("own asset not defended")
	}
}

func TestBudgetBindsAndPrioritizes(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -10, "t2": -6, "t3": -4},
	})
	o := actors.Ownership{"t1": "A", "t2": "A", "t3": "A"}
	inv, err := PlanIndependent(IndependentConfig{
		Actor: "A", Matrix: m, Ownership: o,
		AttackProb: map[string]float64{"t1": 1, "t2": 1, "t3": 1},
		Costs:      UniformCosts([]string{"t1", "t2", "t3"}, 1),
		Budget:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Defended["t1"] || !inv.Defended["t2"] || inv.Defended["t3"] {
		t.Fatalf("budget prioritization wrong: %v", inv.Defended)
	}
}

func TestPlanAllIndependentAndUnion(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -10, "t2": +3},
		"B": {"t1": +10, "t2": -9},
	})
	o := actors.Ownership{"t1": "A", "t2": "B"}
	invs, err := PlanAllIndependent(m, o,
		map[string]float64{"t1": 1, "t2": 1},
		UniformCosts([]string{"t1", "t2"}, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	u := Union(invs)
	if !u["t1"] || !u["t2"] {
		t.Fatalf("union = %v, want both defended", u)
	}
}

func TestPlanCollaborativeSharesCosts(t *testing.T) {
	// One target harming both actors: individually uneconomic, jointly
	// economic — the paper's pooling motivation.
	m := matrixOf(map[string]map[string]float64{
		"A": {"shared": -6},
		"B": {"shared": -6},
	})
	o := actors.Ownership{"shared": "A"}
	pa := map[string]float64{"shared": 0.5} // each expects 3 averted
	costs := UniformCosts([]string{"shared"}, 5)
	// Independent: A would avert 3 at cost 5 → skip.
	invA, err := PlanIndependent(IndependentConfig{
		Actor: "A", Matrix: m, Ownership: o, AttackProb: pa, Costs: costs, Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(invA.Defended) != 0 {
		t.Fatal("independent defense should be uneconomic")
	}
	// Collaborative: total averted 6 > 5, shares 2.5 each.
	cinv, err := PlanCollaborative(CollaborativeConfig{
		Matrix: m, Ownership: o,
		AttackProb: SharedAttackProb(m, pa),
		Costs:      costs,
		Budget:     map[string]float64{"A": 2.5, "B": 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cinv.Defended["shared"] {
		t.Fatalf("collaboration failed to defend: %+v", cinv)
	}
	if !approx(cinv.Share["A"]["shared"], 2.5, 1e-9) || !approx(cinv.Share["B"]["shared"], 2.5, 1e-9) {
		t.Fatalf("shares = %v, want 2.5 each", cinv.Share)
	}
	if !approx(cinv.TotalValue, 1, 1e-9) { // 6 − 5
		t.Fatalf("total value = %v, want 1", cinv.TotalValue)
	}
}

func TestCollaborativeSharesProportionalToImpact(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"x": -9},
		"B": {"x": -3},
	})
	o := actors.Ownership{"x": "A"}
	cinv, err := PlanCollaborative(CollaborativeConfig{
		Matrix: m, Ownership: o,
		AttackProb: SharedAttackProb(m, map[string]float64{"x": 1}),
		Costs:      UniformCosts([]string{"x"}, 4),
		Budget:     map[string]float64{"A": 3, "B": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shares: A pays 4·9/12 = 3, B pays 4·3/12 = 1 (Eq. 15).
	if !cinv.Defended["x"] {
		t.Fatalf("not defended: %+v", cinv)
	}
	if !approx(cinv.Share["A"]["x"], 3, 1e-9) || !approx(cinv.Share["B"]["x"], 1, 1e-9) {
		t.Fatalf("shares = %v", cinv.Share)
	}
}

func TestCollaborativeRequiresAlignedIncentives(t *testing.T) {
	// B gains from the attack → only A is in CD(t); A alone can't
	// justify cost. (Paper: cooperating defenders must all have negative
	// impacts.)
	m := matrixOf(map[string]map[string]float64{
		"A": {"x": -6},
		"B": {"x": +6},
	})
	o := actors.Ownership{"x": "A"}
	cinv, err := PlanCollaborative(CollaborativeConfig{
		Matrix: m, Ownership: o,
		AttackProb: SharedAttackProb(m, map[string]float64{"x": 0.5}),
		Costs:      UniformCosts([]string{"x"}, 5),
		Budget:     map[string]float64{"A": 5, "B": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cinv.Defended) != 0 {
		t.Fatalf("misaligned target defended: %+v", cinv)
	}
}

func TestCollaborativeBudgetRows(t *testing.T) {
	// Two valuable targets, but actor A's budget only covers one share.
	m := matrixOf(map[string]map[string]float64{
		"A": {"x": -10, "y": -10},
		"B": {"x": -10, "y": -10},
	})
	o := actors.Ownership{"x": "A", "y": "B"}
	cinv, err := PlanCollaborative(CollaborativeConfig{
		Matrix: m, Ownership: o,
		AttackProb: SharedAttackProb(m, map[string]float64{"x": 1, "y": 1}),
		Costs:      UniformCosts([]string{"x", "y"}, 4),
		Budget:     map[string]float64{"A": 2, "B": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each share is 2 per actor per target; A can afford only one.
	if len(cinv.Defended) != 1 {
		t.Fatalf("defended = %v, want exactly 1", cinv.Defended)
	}
}

func TestEstimateAttackProb(t *testing.T) {
	m := matrixOf(map[string]map[string]float64{
		"A": {"big": +100, "small": +1},
		"B": {"big": -50, "small": -1},
	})
	targets := adversary.UniformTargets(m.Targets, 1, 1)
	// With zero speculation noise the SA always picks "big".
	pa, err := EstimateAttackProb(m, targets, 1, 0, 16, 7, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pa["big"], 1, 1e-12) {
		t.Fatalf("Pa(big) = %v, want 1", pa["big"])
	}
	if pa["small"] != 0 {
		t.Fatalf("Pa(small) = %v, want 0", pa["small"])
	}
	// With large noise, probabilities spread out but stay in [0,1] and
	// remain deterministic for a fixed seed.
	pa1, err := EstimateAttackProb(m, targets, 1, 1.0, 64, 7, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa2, _ := EstimateAttackProb(m, targets, 1, 1.0, 64, 7, parallel.Options{})
	for k, v := range pa1 {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("Pa out of range: %v", v)
		}
		if pa2[k] != v {
			t.Fatal("EstimateAttackProb not deterministic")
		}
	}
	if pa1["big"] >= 1 {
		t.Fatalf("heavy noise should sometimes divert the SA, Pa(big)=%v", pa1["big"])
	}
	if _, err := EstimateAttackProb(m, targets, 1, 0, 0, 7, parallel.Options{}); err == nil {
		t.Fatal("samples=0 accepted")
	}
}

func TestNilMatrixRejected(t *testing.T) {
	if _, err := PlanIndependent(IndependentConfig{}); err == nil {
		t.Fatal("nil matrix accepted (independent)")
	}
	if _, err := PlanCollaborative(CollaborativeConfig{}); err == nil {
		t.Fatal("nil matrix accepted (collaborative)")
	}
}
