package defense

import (
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/rng"
)

func TestPlanRedesignReducesWorstCase(t *testing.T) {
	g, err := gridgen.Build(gridgen.Config{Regions: 2, Seed: 4, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	own := actors.RandomOwnership(g, 3, rng.New(1))
	cands := gridgen.CandidateInterventions(g, gridgen.InterventionOptions{Max: 6})
	budget := 0.0
	for _, iv := range cands {
		budget += iv.Cost
	}
	plan, err := PlanRedesign(RedesignConfig{
		Graph: g, Ownership: own, Candidates: cands, Budget: budget / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spent > budget/2+1e-9 {
		t.Errorf("spent %v over budget %v", plan.Spent, budget/2)
	}
	if plan.ResidualWorstDamage > plan.BaselineWorstDamage+1e-9 {
		t.Errorf("redesign made things worse: residual %v > baseline %v",
			plan.ResidualWorstDamage, plan.BaselineWorstDamage)
	}
	if plan.BaselineWorstDamage <= 0 {
		t.Error("stressed 2-region grid should have a damaging worst contingency")
	}
	if len(plan.Values) != len(cands) {
		t.Errorf("valued %d candidates, menu has %d", len(plan.Values), len(cands))
	}
	for _, iv := range plan.Chosen {
		// The chosen set must actually be built into the returned graph.
		if iv.NewEdge != nil {
			if plan.Graph.Edge(iv.NewEdge.ID) == nil {
				t.Errorf("chosen %s not built", iv.ID)
			}
			continue
		}
		want := g.Edge(iv.UpgradeEdge).Capacity + iv.CapacityDelta
		if got := plan.Graph.Edge(iv.UpgradeEdge).Capacity; got != want {
			t.Errorf("chosen %s: capacity %v, want %v", iv.ID, got, want)
		}
	}
}

func TestPlanRedesignDeterministic(t *testing.T) {
	g, err := gridgen.Build(gridgen.Config{Regions: 2, Seed: 9, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	own := actors.RandomOwnership(g, 2, rng.New(2))
	cands := gridgen.CandidateInterventions(g, gridgen.InterventionOptions{Max: 4})
	run := func() *RedesignPlan {
		p, err := PlanRedesign(RedesignConfig{
			Graph: g, Ownership: own, Candidates: cands, Budget: 500, ScreenK: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	if len(a.Chosen) != len(b.Chosen) || a.Spent != b.Spent ||
		a.ResidualWorstDamage != b.ResidualWorstDamage {
		t.Errorf("two identical redesign runs differ: %+v vs %+v", a, b)
	}
	for i := range a.Chosen {
		if a.Chosen[i].ID != b.Chosen[i].ID {
			t.Errorf("chosen[%d] %s != %s", i, a.Chosen[i].ID, b.Chosen[i].ID)
		}
	}
	for id, v := range a.Values {
		if b.Values[id] != v {
			t.Errorf("value %s: %v != %v", id, v, b.Values[id])
		}
	}
}

func TestPlanRedesignRejectsBadCandidates(t *testing.T) {
	g, err := gridgen.Build(gridgen.Config{Regions: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cands := gridgen.CandidateInterventions(g, gridgen.InterventionOptions{Max: 2})
	cands[0].UpgradeEdge = "no-such-edge"
	cands[0].NewEdge = nil
	if _, err := PlanRedesign(RedesignConfig{Graph: g, Candidates: cands, Budget: 100}); err == nil {
		t.Fatal("redesign accepted a candidate referencing a missing edge")
	}
	if _, err := PlanRedesign(RedesignConfig{Budget: 100}); err == nil {
		t.Fatal("redesign accepted a nil graph")
	}
}
