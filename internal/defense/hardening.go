// Graduated hardening (Section II-E4).
//
// The paper's binary defense D(t) ∈ {0,1} nullifies an attack outright; its
// discussion of the adversary model notes the real effect of security
// spending is graduated: "adding layers of security reduces the probability
// of successful attack and increases the cost of an attack." This file
// models that continuum: investing x in asset t scales the attack's success
// probability by exp(−x/DecayScale) and raises its cost by CostSlope·x.
// Marginal returns are therefore decreasing in x, so the optimal allocation
// of a defender's budget across assets is found by greedy marginal
// allocation, which is optimal for separable concave value functions.
package defense

import (
	"errors"
	"math"
	"sort"

	"cpsguard/internal/adversary"
	"cpsguard/internal/impact"
)

// HardeningConfig states a graduated-defense problem.
type HardeningConfig struct {
	// Matrix is the defender's believed impact matrix.
	Matrix *impact.Matrix
	// Targets supplies the baseline Catk and Ps per asset.
	Targets []adversary.Target
	// AttackProb is Pa(t), the believed attack likelihood.
	AttackProb map[string]float64
	// Budget is the total hardening spend available.
	Budget float64
	// DecayScale is the e-folding investment: Ps(x) = Ps0·exp(−x/DecayScale)
	// (default 1).
	DecayScale float64
	// Step is the allocation granularity (default Budget/100).
	Step float64
	// Actor restricts hardening to one actor's losses; empty hardens on
	// behalf of the whole system (pooled view).
	Actor string
}

func (c HardeningConfig) decay() float64 {
	if c.DecayScale > 0 {
		return c.DecayScale
	}
	return 1
}

func (c HardeningConfig) step() float64 {
	if c.Step > 0 {
		return c.Step
	}
	s := c.Budget / 100
	if s <= 0 {
		s = 1
	}
	return s
}

// Hardening is a continuous defense allocation.
type Hardening struct {
	// Invest maps asset → hardening spend.
	Invest map[string]float64
	// ResidualPs maps asset → post-hardening success probability.
	ResidualPs map[string]float64
	// ExpectedAverted is the believed reduction in expected loss.
	ExpectedAverted float64
}

// systemLoss aggregates the believed loss at target t (for one actor, or
// summed across all harmed actors when actor is "").
func systemLoss(m *impact.Matrix, actor, t string) float64 {
	if actor != "" {
		return loss(m, actor, t)
	}
	total := 0.0
	for _, a := range m.Actors {
		total += loss(m, a, t)
	}
	return total
}

// PlanHardening allocates the budget greedily by marginal averted loss.
func PlanHardening(cfg HardeningConfig) (*Hardening, error) {
	if cfg.Matrix == nil {
		return nil, errors.New("defense: nil impact matrix")
	}
	if cfg.Budget < 0 {
		return nil, errors.New("defense: negative hardening budget")
	}
	type asset struct {
		id     string
		ps0    float64
		expect float64 // Pa·loss — expected loss at Ps=1 scale
		invest float64
	}
	var assets []asset
	for _, t := range cfg.Targets {
		l := systemLoss(cfg.Matrix, cfg.Actor, t.ID)
		pa := cfg.AttackProb[t.ID]
		if l <= 0 || pa <= 0 || t.SuccessProb <= 0 {
			continue
		}
		assets = append(assets, asset{id: t.ID, ps0: t.SuccessProb, expect: pa * l})
	}
	sort.Slice(assets, func(i, j int) bool { return assets[i].id < assets[j].id })

	h := &Hardening{Invest: map[string]float64{}, ResidualPs: map[string]float64{}}
	if len(assets) == 0 {
		for _, t := range cfg.Targets {
			h.ResidualPs[t.ID] = t.SuccessProb
		}
		return h, nil
	}
	decay := cfg.decay()
	step := cfg.step()
	remaining := cfg.Budget
	// Greedy: each step goes to the asset with the highest marginal
	// averted loss d/dx [expect·ps0·exp(−x/decay)] = expect·ps0/decay·exp(−x/decay).
	for remaining >= step-1e-12 {
		best := -1
		bestMarginal := 0.0
		for i := range assets {
			m := assets[i].expect * assets[i].ps0 / decay * math.Exp(-assets[i].invest/decay)
			if m > bestMarginal {
				bestMarginal = m
				best = i
			}
		}
		if best < 0 || bestMarginal*step < 1e-15 {
			break
		}
		assets[best].invest += step
		remaining -= step
	}
	for _, a := range assets {
		if a.invest > 0 {
			h.Invest[a.id] = a.invest
		}
		residual := a.ps0 * math.Exp(-a.invest/decay)
		h.ResidualPs[a.id] = residual
		h.ExpectedAverted += a.expect * (a.ps0 - residual)
	}
	for _, t := range cfg.Targets {
		if _, ok := h.ResidualPs[t.ID]; !ok {
			h.ResidualPs[t.ID] = t.SuccessProb
		}
	}
	return h, nil
}

// ApplyHardening returns a copy of targets with success probabilities
// replaced by the hardened residuals and costs raised by costSlope times
// the investment — the adversary now faces the hardened economics.
func ApplyHardening(targets []adversary.Target, h *Hardening, costSlope float64) []adversary.Target {
	out := make([]adversary.Target, len(targets))
	for i, t := range targets {
		nt := t
		if ps, ok := h.ResidualPs[t.ID]; ok {
			nt.SuccessProb = ps
		}
		nt.Cost += costSlope * h.Invest[t.ID]
		out[i] = nt
	}
	return out
}
