package actors

import (
	"math"
	"testing"
	"testing/quick"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// chain builds gen →e1→ hub →e2→ load with optional congestion on e2.
func chain(capE2 float64) *graph.Graph {
	g := graph.New("chain")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "hub"})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 80, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "e1", From: "gen", To: "hub", Capacity: 100})
	g.MustAddEdge(graph.Edge{ID: "e2", From: "hub", To: "load", Capacity: capE2})
	return g
}

func dispatch(t *testing.T, g *graph.Graph) *flow.Result {
	t.Helper()
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOwnershipHelpers(t *testing.T) {
	o := Ownership{"e1": "A00", "e2": "A01", "e3": "A00"}
	if got := o.Actors(); len(got) != 2 || got[0] != "A00" || got[1] != "A01" {
		t.Fatalf("Actors = %v", got)
	}
	if got := o.Assets("A00"); len(got) != 2 || got[0] != "e1" || got[1] != "e3" {
		t.Fatalf("Assets = %v", got)
	}
	if ActorName(3) != "A03" {
		t.Fatalf("ActorName = %q", ActorName(3))
	}
}

func TestRandomOwnershipCoversAllAssets(t *testing.T) {
	g := chain(90)
	o := RandomOwnership(g, 4, rng.New(1))
	if len(o) != 2 {
		t.Fatalf("ownership size = %d, want 2", len(o))
	}
	for _, id := range g.AssetIDs() {
		a, ok := o[id]
		if !ok || a == "" {
			t.Fatalf("asset %s unassigned", id)
		}
	}
}

func TestRandomOwnershipUniform(t *testing.T) {
	g := graph.New("many")
	g.MustAddVertex(graph.Vertex{ID: "a"})
	g.MustAddVertex(graph.Vertex{ID: "b"})
	for i := 0; i < 400; i++ {
		g.MustAddEdge(graph.Edge{ID: "e" + string(rune('A'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i/676)), From: "a", To: "b", Capacity: 1})
	}
	counts := map[string]int{}
	o := RandomOwnership(g, 4, rng.New(2))
	for _, a := range o {
		counts[a]++
	}
	for a, c := range counts {
		if c < 60 || c > 140 {
			t.Fatalf("actor %s owns %d of 400 assets (expect ≈100)", a, c)
		}
	}
}

func TestApplyOwnershipStamps(t *testing.T) {
	g := chain(90)
	o := Ownership{"e1": "A00", "e2": "A01"}
	stamped := ApplyOwnership(g, o)
	if stamped.Edge("e1").Owner != "A00" || stamped.Edge("e2").Owner != "A01" {
		t.Fatal("owners not stamped")
	}
	if g.Edge("e1").Owner != "" {
		t.Fatal("ApplyOwnership mutated input")
	}
}

func TestLMPDivisionSumsToWelfare(t *testing.T) {
	g := chain(70) // congested delivery edge
	r := dispatch(t, g)
	o := Ownership{"e1": "A00", "e2": "A01"}
	p, err := LMPDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Total(), r.Welfare, 1e-6*(1+math.Abs(r.Welfare))) {
		t.Fatalf("profits sum %v ≠ welfare %v (profits %v)", p.Total(), r.Welfare, p)
	}
}

func TestLMPCongestionRentGoesToCongestedEdgeOwner(t *testing.T) {
	// Two generators: cheap behind a 30-unit line, dear unconstrained.
	g := graph.New("cong")
	g.MustAddVertex(graph.Vertex{ID: "cheap", Supply: 100, SupplyCost: 1})
	g.MustAddVertex(graph.Vertex{ID: "dear", Supply: 100, SupplyCost: 5})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 60, Price: 20})
	g.MustAddEdge(graph.Edge{ID: "line", From: "cheap", To: "city", Capacity: 30})
	g.MustAddEdge(graph.Edge{ID: "bigline", From: "dear", To: "city", Capacity: 100})
	r := dispatch(t, g)
	o := Ownership{"line": "L", "bigline": "B"}
	p, err := LMPDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	// λ(city)=5 (marginal dear gen), λ(cheap)=1 → line owner earns
	// 30·(5−1)=120 congestion rent; cheap gen surplus is 0 (λ=cost at
	// its bus); L also owns the cheap generation tie... the line is the
	// only outbound edge of "cheap", so gen surplus (0) goes to L too.
	if !approx(p["L"], 120, 1e-6) {
		t.Fatalf("line owner profit = %v, want 120 (got %v)", p["L"], p)
	}
	// B owns the marginal generator's tie (surplus 0), the uncongested
	// big line (λ differential 0), and the consumer tie at city — the
	// max-capacity inbound edge — which carries the consumer surplus
	// 60·(20−5)=900.
	if !approx(p["B"], 900, 1e-6) {
		t.Fatalf("bigline owner profit = %v, want 900 (consumer surplus)", p["B"])
	}
}

func TestLMPUnownedAssetsSettleToMarket(t *testing.T) {
	g := chain(70)
	r := dispatch(t, g)
	p, err := LMPDivision{}.Divide(g, r, Ownership{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p[MarketActor], r.Welfare, 1e-6*(1+r.Welfare)) {
		t.Fatalf("market should hold all welfare, got %v of %v", p[MarketActor], r.Welfare)
	}
}

func TestIterativeDivisionSumsToWelfare(t *testing.T) {
	g := chain(70)
	r := dispatch(t, g)
	o := Ownership{"e1": "A00", "e2": "A01"}
	p, err := IterativeDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Total(), r.Welfare, 1e-6*(1+math.Abs(r.Welfare))) {
		t.Fatalf("iterative profits sum %v ≠ welfare %v (%v)", p.Total(), r.Welfare, p)
	}
}

func TestSeriesActorsShareRent(t *testing.T) {
	// Three actors in series: gen—A—B—C—load, tight capacity everywhere.
	g := graph.New("series")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 1})
	g.MustAddVertex(graph.Vertex{ID: "h1"})
	g.MustAddVertex(graph.Vertex{ID: "h2"})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 50, Price: 11})
	g.MustAddEdge(graph.Edge{ID: "sA", From: "gen", To: "h1", Capacity: 50})
	g.MustAddEdge(graph.Edge{ID: "sB", From: "h1", To: "h2", Capacity: 50})
	g.MustAddEdge(graph.Edge{ID: "sC", From: "h2", To: "load", Capacity: 50})
	r := dispatch(t, g)
	o := Ownership{"sA": "A", "sB": "B", "sC": "C"}
	p, err := IterativeDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	// Chain rent: each probing actor sees the same downstream marginal
	// cost; after series normalization the three shares should be
	// roughly equal (paper: "roughly equal to 1/N") and sum to welfare.
	if !approx(p.Total(), r.Welfare, 1e-6*(1+r.Welfare)) {
		t.Fatalf("sum %v ≠ welfare %v", p.Total(), r.Welfare)
	}
	pa, pb, pc := p["A"], p["B"], p["C"]
	if pa <= 0 || pb <= 0 || pc <= 0 {
		t.Fatalf("series actors should all profit: %v", p)
	}
	max := math.Max(pa, math.Max(pb, pc))
	min := math.Min(pa, math.Min(pb, pc))
	if max > 3*min {
		t.Fatalf("series split too skewed: %v", p)
	}
}

func TestDivisionModelsAgreeOnTotal(t *testing.T) {
	g := chain(70)
	r := dispatch(t, g)
	o := Ownership{"e1": "X", "e2": "Y"}
	lmp, err := LMPDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := IterativeDivision{}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lmp.Total(), iter.Total(), 1e-6*(1+math.Abs(lmp.Total()))) {
		t.Fatalf("totals differ: lmp %v iter %v", lmp.Total(), iter.Total())
	}
}

func TestModelNames(t *testing.T) {
	if (LMPDivision{}).Name() != "lmp" || (IterativeDivision{}).Name() != "iterative" {
		t.Fatal("model names wrong")
	}
}

// Property: LMP division always sums to welfare, for random graphs and
// random ownership.
func TestQuickLMPSumsToWelfare(t *testing.T) {
	f := func(seed uint64) bool {
		rs := rng.New(seed)
		g := graph.New("q")
		g.MustAddVertex(graph.Vertex{ID: "hub"})
		n := 2 + rs.Intn(3)
		for i := 0; i < n; i++ {
			gid := "g" + string(rune('0'+i))
			lid := "l" + string(rune('0'+i))
			g.MustAddVertex(graph.Vertex{ID: gid, Supply: 20 + rs.Float64()*50, SupplyCost: 1 + rs.Float64()*4})
			g.MustAddVertex(graph.Vertex{ID: lid, Demand: 20 + rs.Float64()*50, Price: 3 + rs.Float64()*9})
			g.MustAddEdge(graph.Edge{ID: "eg" + gid, From: gid, To: "hub",
				Capacity: rs.Float64() * 80, Loss: rs.Float64() * 0.1, Cost: rs.Float64() * 0.5})
			g.MustAddEdge(graph.Edge{ID: "el" + lid, From: "hub", To: lid,
				Capacity: rs.Float64() * 80, Loss: rs.Float64() * 0.1, Cost: rs.Float64() * 0.5})
		}
		r, err := flow.Dispatch(g)
		if err != nil {
			return false
		}
		o := RandomOwnership(g, 1+rs.Intn(5), rs)
		p, err := LMPDivision{}.Divide(g, r, o)
		if err != nil {
			return false
		}
		return approx(p.Total(), r.Welfare, 1e-6*(1+math.Abs(r.Welfare)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeDivisionCustomDelta(t *testing.T) {
	g := chain(70)
	r := dispatch(t, g)
	o := Ownership{"e1": "A00", "e2": "A01"}
	p, err := IterativeDivision{Delta: 5}.Divide(g, r, o)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Total(), r.Welfare, 1e-6*(1+math.Abs(r.Welfare))) {
		t.Fatalf("custom-delta division broke the welfare identity: %v vs %v",
			p.Total(), r.Welfare)
	}
}
