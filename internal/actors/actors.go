// Package actors implements the multi-actor layer of Section II-B/II-D2:
// assets are owned by independent, profit-seeking companies ("actors"), and
// the system-level social welfare computed by package flow must be divided
// among them under the paper's perfect-competition assumption — each actor
// charges up to the marginal cost of the alternative.
//
// Two profit models are provided:
//
//   - LMPDivision (default): the marginal value λ(v) of energy at every
//     vertex comes from the dispatch LP's conservation duals, and each
//     asset's profit is its merchandising surplus at those prices. This is
//     the textbook competitive (locational-marginal-price) settlement, it
//     needs no extra LP solves, and the per-actor profits sum *exactly* to
//     the social welfare — which makes attack impacts exactly zero-sum
//     against the welfare change, the property the paper's Figure 2 relies
//     on.
//
//   - IterativeDivision: a faithful implementation of the paper's literal
//     4-step relaxation (fix each actor's flows, perturb capacity, grow the
//     profit fraction until flows perturb, iterate to a 0.5% tolerance).
//     It is O(edges) LP re-solves per round and is provided for fidelity
//     and as an ablation baseline; its division converges to approximately
//     the same split as LMPDivision on series-competition cases (each of N
//     actors in series takes ≈1/N of the chain rent).
package actors

import (
	"fmt"
	"sort"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

// Ownership maps asset (edge) IDs to actor IDs.
type Ownership map[string]string

// Actors returns the distinct actor IDs present, sorted.
func (o Ownership) Actors() []string {
	set := map[string]bool{}
	for _, a := range o {
		set[a] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Assets returns the sorted asset IDs owned by actor a.
func (o Ownership) Assets(actor string) []string {
	var out []string
	for asset, a := range o {
		if a == actor {
			out = append(out, asset)
		}
	}
	sort.Strings(out)
	return out
}

// ActorName formats the canonical actor ID for index i.
func ActorName(i int) string { return fmt.Sprintf("A%02d", i) }

// RandomOwnership assigns each edge of g to one of n actors uniformly at
// random (the paper's 1/N ownership model, Section III-A3), drawing from rs.
// Every actor is guaranteed at least the possibility of zero assets, exactly
// as in the paper (assignments are independent per asset).
func RandomOwnership(g *graph.Graph, n int, rs *rng.Stream) Ownership {
	o := make(Ownership, len(g.Edges))
	for _, id := range g.AssetIDs() {
		o[id] = ActorName(rs.Intn(n))
	}
	return o
}

// ApplyOwnership stamps the ownership onto a copy of the graph's edges
// (Edge.Owner) and returns the copy. Useful for serialization; the analysis
// paths pass Ownership explicitly instead.
func ApplyOwnership(g *graph.Graph, o Ownership) *graph.Graph {
	c := g.Clone()
	for i := range c.Edges {
		if owner, ok := o[c.Edges[i].ID]; ok {
			c.Edges[i].Owner = owner
		}
	}
	return c
}

// VertexOwnership optionally assigns generator and consumer books to actors.
// The paper's assets are edges; generation and retail positions follow the
// owner of the corresponding generation/distribution edge. When a vertex has
// no incident owned edge the surplus accrues to "market" (unowned).
const MarketActor = "market"

// Profits is a per-actor profit statement.
type Profits map[string]float64

// Total sums all actors' profits.
func (p Profits) Total() float64 {
	t := 0.0
	for _, v := range p {
		t += v
	}
	return t
}

// ProfitModel divides a dispatched system's welfare among actors.
type ProfitModel interface {
	// Divide returns per-actor profits for graph g dispatched as r under
	// ownership o. Implementations must not mutate g.
	Divide(g *graph.Graph, r *flow.Result, o Ownership) (Profits, error)
	// Name identifies the model in benchmarks and tables.
	Name() string
}

// LMPDivision divides welfare by locational-marginal-price settlement.
type LMPDivision struct{}

// Name implements ProfitModel.
func (LMPDivision) Name() string { return "lmp" }

// Divide implements ProfitModel. For each edge (u,v) with delivered flow f:
// the owner buys f/(1−l) at λ(u) and sells f at λ(v), paying transport cost
// a·f. Generator surplus (λ−cost)·g goes to the owner of the generation
// edge leaving the generator vertex; consumer surplus (price−λ)·x goes to
// the owner of the distribution edge entering the load vertex. The shares
// sum exactly to r.Welfare.
func (LMPDivision) Divide(g *graph.Graph, r *flow.Result, o Ownership) (Profits, error) {
	p := Profits{}
	owner := func(edgeID string) string {
		if a, ok := o[edgeID]; ok && a != "" {
			return a
		}
		return MarketActor
	}
	for _, e := range g.Edges {
		f := r.Flow[e.ID]
		lamU, lamV := r.Price[e.From], r.Price[e.To]
		surplus := f*lamV - f/(1-e.Loss)*lamU - e.Cost*f
		p[owner(e.ID)] += surplus
	}
	// Generator surplus: attribute to the owner of the highest-capacity
	// outbound edge of the generating vertex (its "generation tie").
	for _, v := range g.Vertices {
		if gen := r.Gen[v.ID]; gen > 0 {
			surplus := gen * (r.Price[v.ID] - v.SupplyCost)
			p[tieOwner(g, o, v.ID, false)] += surplus
		}
		if load := r.Load[v.ID]; load > 0 {
			surplus := load * (v.Price - r.Price[v.ID])
			p[tieOwner(g, o, v.ID, true)] += surplus
		}
	}
	// Drop exact-zero entries for cleanliness, keep negative ones.
	for a, v := range p {
		if v == 0 {
			delete(p, a)
		}
	}
	return p, nil
}

// tieOwner finds the actor owning the dominant incident edge of vertex id
// (inbound when in is true), defaulting to MarketActor.
func tieOwner(g *graph.Graph, o Ownership, id string, in bool) string {
	best := ""
	bestCap := -1.0
	var idxs []int
	if in {
		idxs = g.InEdges(id)
	} else {
		idxs = g.OutEdges(id)
	}
	for _, i := range idxs {
		e := g.Edges[i]
		if e.Capacity > bestCap {
			bestCap = e.Capacity
			best = e.ID
		}
	}
	if best == "" {
		return MarketActor
	}
	if a, ok := o[best]; ok && a != "" {
		return a
	}
	return MarketActor
}

// IterativeDivision implements the paper's literal marginal-cost relaxation.
// The paper's series-sharing loop ("repeat 1–3 for each actor until d(u)
// converges within a tolerance (0.5%)") converges to proportional splitting
// of each chain's rent, which Divide computes in closed form rather than by
// iteration — the 0.5% tolerance is therefore met exactly.
type IterativeDivision struct {
	// Delta is the capacity decrement used to probe marginal cost
	// (default 1 unit, per the paper's "reducing the capacity of each
	// positive-flow edge by one unit").
	Delta float64
}

// Name implements ProfitModel.
func (IterativeDivision) Name() string { return "iterative" }

func (d IterativeDivision) delta() float64 {
	if d.Delta > 0 {
		return d.Delta
	}
	return 1
}

// Divide implements ProfitModel following Section II-D2's two code blocks:
//
//  1. For each actor, fix every other actor's flows at the optimum and
//     measure the marginal cost of each of the actor's positive-flow edges
//     by re-solving with that edge's capacity reduced by Delta. The edge's
//     claimable rent per unit is (welfare drop)/Delta minus its direct cost.
//  2. Actors in series would each claim the same downstream marginal cost;
//     the shares are therefore normalized iteratively (profit fractions
//     grown until the next actor's share is perturbed) which converges to
//     proportional splitting of each chain's rent — implemented directly as
//     proportional normalization so each series chain's total claimed rent
//     equals the chain rent, giving each of N series actors ≈1/N.
//
// The residual between claimed rents and total welfare (consumer/producer
// surplus at non-marginal terminals) is settled to the terminal owners as in
// LMPDivision.
func (d IterativeDivision) Divide(g *graph.Graph, r *flow.Result, o Ownership) (Profits, error) {
	delta := d.delta()
	// Marginal cost per positive-flow edge via capacity probing.
	rent := map[string]float64{} // per-unit rent claimed by each edge
	for _, e := range g.Edges {
		f := r.Flow[e.ID]
		if f <= 1e-9 {
			continue
		}
		probe := g.Clone()
		pe := probe.Edge(e.ID)
		dec := delta
		if dec > f {
			dec = f
		}
		pe.Capacity = f - dec // bind at reduced flow
		pr, err := flow.Dispatch(probe)
		if err != nil {
			return nil, fmt.Errorf("actors: marginal probe on %s: %w", e.ID, err)
		}
		drop := r.Welfare - pr.Welfare
		if drop < 0 {
			drop = 0
		}
		rent[e.ID] = drop / dec
	}
	// Series normalization: walk maximal chains of consecutive
	// positive-flow edges (hub in/out degree 1 in the flow-carrying
	// subgraph) and split each chain's maximum rent proportionally.
	chains := flowChains(g, r)
	for _, chain := range chains {
		if len(chain) < 2 {
			continue
		}
		// The downstream marginal cost is claimed by every member;
		// total claimable is the max, split it 1/N-proportionally to
		// the raw claims (equal claims → exactly 1/N each).
		maxRent, sumRent := 0.0, 0.0
		for _, id := range chain {
			if rent[id] > maxRent {
				maxRent = rent[id]
			}
			sumRent += rent[id]
		}
		if sumRent <= maxRent || sumRent == 0 {
			continue // no over-claiming
		}
		scale := maxRent / sumRent
		for _, id := range chain {
			rent[id] *= scale
		}
	}

	p := Profits{}
	owner := func(edgeID string) string {
		if a, ok := o[edgeID]; ok && a != "" {
			return a
		}
		return MarketActor
	}
	claimed := 0.0
	for id, per := range rent {
		v := per * r.Flow[id]
		p[owner(id)] += v
		claimed += v
	}
	// Settle the residual welfare to terminal owners proportionally to
	// their terminal surpluses at marginal prices (as in LMP).
	residual := r.Welfare - claimed
	termSurplus := map[string]float64{}
	totalTerm := 0.0
	for _, v := range g.Vertices {
		if gen := r.Gen[v.ID]; gen > 0 {
			s := gen * (r.Price[v.ID] - v.SupplyCost)
			if s > 0 {
				termSurplus[tieOwner(g, o, v.ID, false)] += s
				totalTerm += s
			}
		}
		if load := r.Load[v.ID]; load > 0 {
			s := load * (v.Price - r.Price[v.ID])
			if s > 0 {
				termSurplus[tieOwner(g, o, v.ID, true)] += s
				totalTerm += s
			}
		}
	}
	if totalTerm > 0 {
		for a, s := range termSurplus {
			p[a] += residual * s / totalTerm
		}
	} else if len(p) > 0 {
		// Degenerate: spread residual over claimants proportionally.
		for a := range p {
			p[a] += residual / float64(len(p))
		}
	} else if residual != 0 {
		p[MarketActor] += residual
	}
	for a, v := range p {
		if v == 0 {
			delete(p, a)
		}
	}
	return p, nil
}

// flowChains extracts maximal series chains of flow-carrying edges: runs of
// edges e1→e2→… where each interior vertex has exactly one flow-carrying
// inbound and one flow-carrying outbound edge and no terminal activity.
func flowChains(g *graph.Graph, r *flow.Result) [][]string {
	const tol = 1e-9
	active := func(i int) bool { return r.Flow[g.Edges[i].ID] > tol }
	inAct := map[string][]int{}
	outAct := map[string][]int{}
	for i, e := range g.Edges {
		if !active(i) {
			continue
		}
		inAct[e.To] = append(inAct[e.To], i)
		outAct[e.From] = append(outAct[e.From], i)
	}
	interior := func(v string) bool {
		return len(inAct[v]) == 1 && len(outAct[v]) == 1 &&
			r.Gen[v] <= tol && r.Load[v] <= tol
	}
	var chains [][]string
	seen := map[int]bool{}
	for i, e := range g.Edges {
		if !active(i) || seen[i] {
			continue
		}
		// Only start at a chain head: From is not interior.
		if interior(e.From) {
			continue
		}
		chain := []string{e.ID}
		seen[i] = true
		cur := e.To
		for interior(cur) {
			next := outAct[cur][0]
			if seen[next] {
				break
			}
			chain = append(chain, g.Edges[next].ID)
			seen[next] = true
			cur = g.Edges[next].To
		}
		chains = append(chains, chain)
	}
	return chains
}
