// Package repeated plays the adversary-vs-defenders game over multiple
// rounds, extending the paper's one-shot formulation in the direction its
// Section II-F4 sketches: "traditional dependability models can be
// augmented with probability of failures that include security-oriented
// attack probabilities."
//
// Each round, defenders estimate the attack distribution from *observed
// history* (exponentially-smoothed attack frequencies — fictitious play)
// instead of from a speculative model of the adversary, invest, and then
// the adversary attacks. The adversary may optionally observe which assets
// were defended last round and avoid them (an adaptive attacker). The
// trajectory shows whether the empirical learning loop converges to the
// one-shot model-based defense of the paper, and how much an adaptive
// attacker erodes it.
package repeated

import (
	"errors"
	"fmt"

	"cpsguard/internal/adversary"
	"cpsguard/internal/core"
	"cpsguard/internal/defense"
	"cpsguard/internal/noise"
	"cpsguard/internal/rng"
)

// Config parameterizes a repeated game.
type Config struct {
	// Rounds is the number of iterations (≥ 1).
	Rounds int
	// AttackBudget is the SA's per-round budget MA.
	AttackBudget float64
	// DefenseBudgetPerActor is each defender's per-round budget MD(a).
	DefenseBudgetPerActor float64
	// Smoothing is the exponential smoothing factor α for the defenders'
	// empirical attack frequencies: Pa ← (1−α)·Pa + α·observed.
	// Default 0.3.
	Smoothing float64
	// AttackerSigma is the adversary's per-round knowledge noise; fresh
	// noise is drawn every round (reconnaissance is re-done).
	AttackerSigma float64
	// AdaptiveAttacker makes the SA avoid assets it saw defended in the
	// previous round (it treats their success probability as zero).
	AdaptiveAttacker bool
	// Collaborative selects cost-shared defense.
	Collaborative bool
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) smoothing() float64 {
	if c.Smoothing > 0 {
		return c.Smoothing
	}
	return 0.3
}

// Round is one settled iteration.
type Round struct {
	// Attacked is the SA's target set this round.
	Attacked []string
	// Defended is the union of protected assets this round.
	Defended map[string]bool
	// AdversaryProfit is the SA's realized ground-truth profit.
	AdversaryProfit float64
	// Averted is the profit the defense removed versus no defense.
	Averted float64
}

// Result is a full trajectory.
type Result struct {
	Rounds []Round
	// TotalAdversaryProfit sums realized profit over all rounds.
	TotalAdversaryProfit float64
	// TotalAverted sums averted damage over all rounds.
	TotalAverted float64
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("repeated: invalid config")

// Play runs the repeated game on a scenario.
func Play(s *core.Scenario, cfg Config) (*Result, error) {
	if s == nil || cfg.Rounds < 1 {
		return nil, fmt.Errorf("%w: nil scenario or rounds < 1", ErrBadConfig)
	}
	truth, err := s.Truth()
	if err != nil {
		return nil, err
	}
	targets := s.Targets
	costs := defense.UniformCosts(truth.Targets, 1)

	// Defenders' empirical attack distribution, learned online.
	pa := map[string]float64{}
	var prevDefended map[string]bool

	res := &Result{}
	alpha := cfg.smoothing()
	for round := 0; round < cfg.Rounds; round++ {
		// --- Defenders invest based on history.
		var defended map[string]bool
		if cfg.Collaborative {
			budgets := map[string]float64{}
			for _, a := range truth.Actors {
				budgets[a] = cfg.DefenseBudgetPerActor
			}
			cinv, err := defense.PlanCollaborative(defense.CollaborativeConfig{
				Matrix: truth, Ownership: s.Ownership,
				AttackProb: defense.SharedAttackProb(truth, pa),
				Costs:      costs, Budget: budgets,
			})
			if err != nil {
				return nil, err
			}
			defended = cinv.Defended
		} else {
			invs, err := defense.PlanAllIndependent(truth, s.Ownership, pa,
				costs, cfg.DefenseBudgetPerActor)
			if err != nil {
				return nil, err
			}
			defended = defense.Union(invs)
		}

		// --- Adversary reconnoiters and attacks.
		view := truth
		if cfg.AttackerSigma > 0 {
			v := *truth
			v.IM = noise.PerturbMatrix(truth.IM,
				cfg.AttackerSigma, rng.Derive(cfg.Seed^0x9E9, uint64(round)))
			view = &v
		}
		atkTargets := targets
		if cfg.AdaptiveAttacker && prevDefended != nil {
			atkTargets = make([]adversary.Target, 0, len(targets))
			for _, t := range targets {
				tt := t
				if prevDefended[t.ID] {
					tt.SuccessProb = 0 // known-hardened: not worth hitting
				}
				atkTargets = append(atkTargets, tt)
			}
		}
		plan, err := adversary.Solve(adversary.Config{
			Matrix: view, Targets: atkTargets, Budget: cfg.AttackBudget,
		})
		if err != nil {
			return nil, err
		}

		// --- Settle.
		undef := adversary.Evaluate(plan, truth, targets, adversary.EvaluateOptions{})
		got := adversary.Evaluate(plan, truth, targets,
			adversary.EvaluateOptions{Defended: defended})
		r := Round{
			Attacked:        plan.Targets,
			Defended:        defended,
			AdversaryProfit: got,
			Averted:         undef - got,
		}
		res.Rounds = append(res.Rounds, r)
		res.TotalAdversaryProfit += got
		res.TotalAverted += r.Averted

		// --- Defenders learn.
		attackedSet := map[string]bool{}
		for _, t := range plan.Targets {
			attackedSet[t] = true
		}
		for _, t := range truth.Targets {
			obs := 0.0
			if attackedSet[t] {
				obs = 1
			}
			pa[t] = (1-alpha)*pa[t] + alpha*obs
		}
		prevDefended = defended
	}
	return res, nil
}
