// Package repeated plays the adversary-vs-defenders game over multiple
// rounds, extending the paper's one-shot formulation in the direction its
// Section II-F4 sketches: "traditional dependability models can be
// augmented with probability of failures that include security-oriented
// attack probabilities."
//
// Each round, defenders estimate the attack distribution from *observed
// history* (exponentially-smoothed attack frequencies — fictitious play)
// instead of from a speculative model of the adversary, invest, and then
// the adversary attacks. The adversary may optionally observe which assets
// were defended last round and avoid them (an adaptive attacker). The
// trajectory shows whether the empirical learning loop converges to the
// one-shot model-based defense of the paper, and how much an adaptive
// attacker erodes it.
package repeated

import (
	"context"
	"errors"
	"fmt"

	"cpsguard/internal/adversary"
	"cpsguard/internal/core"
	"cpsguard/internal/defense"
	"cpsguard/internal/noise"
	"cpsguard/internal/obs"
	"cpsguard/internal/rng"
	"cpsguard/internal/telemetry"
)

// Config parameterizes a repeated game.
type Config struct {
	// Rounds is the number of iterations (≥ 1).
	Rounds int
	// AttackBudget is the SA's per-round budget MA.
	AttackBudget float64
	// DefenseBudgetPerActor is each defender's per-round budget MD(a).
	DefenseBudgetPerActor float64
	// Smoothing is the exponential smoothing factor α for the defenders'
	// empirical attack frequencies: Pa ← (1−α)·Pa + α·observed.
	// Default 0.3.
	Smoothing float64
	// AttackerSigma is the adversary's per-round knowledge noise; fresh
	// noise is drawn every round (reconnaissance is re-done).
	AttackerSigma float64
	// AdaptiveAttacker makes the SA avoid assets it saw defended in the
	// previous round (it treats their success probability as zero).
	AdaptiveAttacker bool
	// Collaborative selects cost-shared defense.
	Collaborative bool
	// Seed drives all randomness.
	Seed uint64
	// Ctx, when non-nil, cancels the trajectory between rounds (and
	// in-flight adversary searches); Play returns the context error with
	// the rounds completed so far in Result.
	Ctx context.Context
	// ContinueOnError makes a failed round count and log instead of
	// aborting the trajectory; the round is excluded from totals.
	// Cancellation is never absorbed.
	ContinueOnError bool
	// Hook is an optional fault-injection checkpoint invoked at site
	// "repeated.round" before each round.
	Hook func(site string) error
	// ResumeRounds seeds the trajectory with rounds already played — e.g.
	// replayed from a checkpoint journal after a crash. They are folded
	// into the result totals and the defenders' learning state exactly as
	// if they had just been played, and play continues at round
	// len(ResumeRounds). Because each round's randomness derives from
	// (Seed, round), the resumed trajectory is identical to an
	// uninterrupted one.
	ResumeRounds []Round
	// OnRound, when non-nil, is invoked after each newly played round
	// settles (not for ResumeRounds) — wire it to a checkpoint journal to
	// stream the trajectory to disk as it grows.
	OnRound func(round int, r Round)
	// Log, when non-nil, records each played round (debug) and each
	// failed round (warn) as structured events.
	Log *obs.Logger
}

func (c Config) smoothing() float64 {
	if c.Smoothing > 0 {
		return c.Smoothing
	}
	return 0.3
}

// Round is one settled iteration.
type Round struct {
	// Attacked is the SA's target set this round.
	Attacked []string
	// Defended is the union of protected assets this round.
	Defended map[string]bool
	// AdversaryProfit is the SA's realized ground-truth profit.
	AdversaryProfit float64
	// Averted is the profit the defense removed versus no defense.
	Averted float64
}

// Result is a full trajectory.
type Result struct {
	Rounds []Round
	// TotalAdversaryProfit sums realized profit over all rounds.
	TotalAdversaryProfit float64
	// TotalAverted sums averted damage over all rounds.
	TotalAverted float64
	// FailedRounds counts rounds skipped under Config.ContinueOnError.
	FailedRounds int
	// RoundErrors records the error of each failed round, keyed by round
	// index (nil when no round failed).
	RoundErrors map[int]error
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("repeated: invalid config")

// Play runs the repeated game on a scenario.
func Play(s *core.Scenario, cfg Config) (*Result, error) {
	if s == nil || cfg.Rounds < 1 {
		return nil, fmt.Errorf("%w: nil scenario or rounds < 1", ErrBadConfig)
	}
	truth, err := s.Truth()
	if err != nil {
		return nil, err
	}
	mGames.Inc()
	targets := s.Targets
	costs := defense.UniformCosts(truth.Targets, 1)

	// Defenders' empirical attack distribution, learned online.
	pa := map[string]float64{}
	var prevDefended map[string]bool

	res := &Result{}
	alpha := cfg.smoothing()

	log := cfg.Log.WithStage("repeated")
	// fail records a failed round under ContinueOnError, or aborts.
	fail := func(round int, err error) error {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err // cancellation always aborts
		}
		if !cfg.ContinueOnError {
			return fmt.Errorf("repeated: round %d: %w", round, err)
		}
		res.FailedRounds++
		mRoundsFailed.Inc()
		if res.RoundErrors == nil {
			res.RoundErrors = map[int]error{}
		}
		res.RoundErrors[round] = err
		log.Warn("round failed, continuing", obs.F("round", round), obs.F("err", err))
		return nil
	}

	// playOne runs one round; panics are recovered into errors so a
	// single bad round can be skipped under ContinueOnError. ctx carries
	// the round's trace span (when tracing is on) in addition to
	// cancellation.
	playOne := func(ctx context.Context, round int, pa map[string]float64, prevDefended map[string]bool) (r Round, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("repeated: round %d panicked: %v", round, rec)
			}
		}()
		// --- Defenders invest based on history.
		var defended map[string]bool
		if cfg.Collaborative {
			budgets := map[string]float64{}
			for _, a := range truth.Actors {
				budgets[a] = cfg.DefenseBudgetPerActor
			}
			cinv, cerr := defense.PlanCollaborative(defense.CollaborativeConfig{
				Matrix: truth, Ownership: s.Ownership,
				AttackProb: defense.SharedAttackProb(truth, pa),
				Costs:      costs, Budget: budgets,
			})
			if cerr != nil {
				return Round{}, cerr
			}
			defended = cinv.Defended
		} else {
			invs, ierr := defense.PlanAllIndependent(truth, s.Ownership, pa,
				costs, cfg.DefenseBudgetPerActor)
			if ierr != nil {
				return Round{}, ierr
			}
			defended = defense.Union(invs)
		}

		// --- Adversary reconnoiters and attacks.
		view := truth
		if cfg.AttackerSigma > 0 {
			v := *truth
			v.IM = noise.PerturbMatrix(truth.IM,
				cfg.AttackerSigma, rng.Derive(cfg.Seed^0x9E9, uint64(round)))
			view = &v
		}
		atkTargets := targets
		if cfg.AdaptiveAttacker && prevDefended != nil {
			atkTargets = make([]adversary.Target, 0, len(targets))
			for _, t := range targets {
				tt := t
				if prevDefended[t.ID] {
					tt.SuccessProb = 0 // known-hardened: not worth hitting
				}
				atkTargets = append(atkTargets, tt)
			}
		}
		plan, perr := adversary.SolveResilient(adversary.Config{
			Matrix: view, Targets: atkTargets, Budget: cfg.AttackBudget,
			Ctx: ctx,
		})
		if perr != nil {
			return Round{}, perr
		}

		// --- Settle.
		undef := adversary.Evaluate(plan, truth, targets, adversary.EvaluateOptions{})
		got := adversary.Evaluate(plan, truth, targets,
			adversary.EvaluateOptions{Defended: defended})
		return Round{
			Attacked:        plan.Targets,
			Defended:        defended,
			AdversaryProfit: got,
			Averted:         undef - got,
		}, nil
	}

	// settle folds one played (or replayed) round into the totals and the
	// defenders' learning state.
	settle := func(r Round) {
		res.Rounds = append(res.Rounds, r)
		res.TotalAdversaryProfit += r.AdversaryProfit
		res.TotalAverted += r.Averted

		attackedSet := map[string]bool{}
		for _, t := range r.Attacked {
			attackedSet[t] = true
		}
		for _, t := range truth.Targets {
			obs := 0.0
			if attackedSet[t] {
				obs = 1
			}
			pa[t] = (1-alpha)*pa[t] + alpha*obs
		}
		prevDefended = r.Defended
	}

	// Replay resumed rounds into the learning state before playing on.
	start := len(cfg.ResumeRounds)
	if start > cfg.Rounds {
		start = cfg.Rounds
	}
	for _, r := range cfg.ResumeRounds[:start] {
		mRoundsReplayed.Inc()
		settle(r)
	}

	for round := start; round < cfg.Rounds; round++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return res, err
			}
		}
		if cfg.Hook != nil {
			if err := cfg.Hook("repeated.round"); err != nil {
				if aerr := fail(round, err); aerr != nil {
					return res, aerr
				}
				continue // skipped round: no learning update
			}
		}
		sp, rctx := telemetry.Default().StartSpanCtx(cfg.Ctx, "repeated.round", fmt.Sprintf("r%d", round))
		r, err := playOne(rctx, round, pa, prevDefended)
		sp.End()
		if err != nil {
			if aerr := fail(round, err); aerr != nil {
				return res, aerr
			}
			continue
		}
		mRounds.Inc()
		settle(r)
		log.Debug("round played", obs.F("round", round),
			obs.F("profit", r.AdversaryProfit), obs.F("averted", r.Averted),
			obs.F("attacked", len(r.Attacked)), obs.F("defended", len(r.Defended)))
		if cfg.OnRound != nil {
			cfg.OnRound(round, r)
		}
	}
	return res, nil
}
