package repeated

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"cpsguard/internal/checkpoint"
)

// TestResumeMatchesUninterrupted: playing rounds 0..4, then resuming with
// those five rounds and playing 5..9, must equal playing 0..9 straight
// through — the learning state is rebuilt exactly from the replayed rounds.
func TestResumeMatchesUninterrupted(t *testing.T) {
	cfg := Config{Rounds: 10, AttackBudget: 1, DefenseBudgetPerActor: 2,
		AttackerSigma: 0.3, AdaptiveAttacker: true, Smoothing: 0.5, Seed: 4}

	full, err := Play(arena(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	half := cfg
	half.Rounds = 5
	first, err := Play(arena(), half)
	if err != nil {
		t.Fatal(err)
	}

	resumed := cfg
	resumed.ResumeRounds = first.Rounds
	second, err := Play(arena(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	if len(second.Rounds) != 10 {
		t.Fatalf("resumed trajectory has %d rounds, want 10", len(second.Rounds))
	}
	if second.TotalAdversaryProfit != full.TotalAdversaryProfit ||
		second.TotalAverted != full.TotalAverted {
		t.Fatalf("resumed totals (%v, %v) != uninterrupted (%v, %v)",
			second.TotalAdversaryProfit, second.TotalAverted,
			full.TotalAdversaryProfit, full.TotalAverted)
	}
	if !reflect.DeepEqual(second.Rounds, full.Rounds) {
		t.Fatal("resumed rounds differ from uninterrupted run")
	}
}

// TestOnRoundStreamsNewRoundsOnly: the callback sees each freshly played
// round (with its index) and never the resumed prefix.
func TestOnRoundStreamsNewRoundsOnly(t *testing.T) {
	cfg := Config{Rounds: 6, AttackBudget: 1, DefenseBudgetPerActor: 2, Seed: 3}
	half := cfg
	half.Rounds = 3
	first, err := Play(arena(), half)
	if err != nil {
		t.Fatal(err)
	}

	var seen []int
	resumed := cfg
	resumed.ResumeRounds = first.Rounds
	resumed.OnRound = func(round int, r Round) { seen = append(seen, round) }
	if _, err := Play(arena(), resumed); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{3, 4, 5}) {
		t.Fatalf("OnRound saw %v, want [3 4 5]", seen)
	}
}

// TestRoundsJournalRoundTrip: streaming rounds into a checkpoint journal
// and replaying them through ResumeRounds reproduces the uninterrupted
// trajectory — the crash-safe path for the repeated game.
func TestRoundsJournalRoundTrip(t *testing.T) {
	cfg := Config{Rounds: 8, AttackBudget: 1, DefenseBudgetPerActor: 2,
		Smoothing: 0.5, Seed: 11}
	full, err := Play(arena(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// First process: journal every round, "die" after round 4.
	path := filepath.Join(t.TempDir(), "rounds.journal")
	j, err := checkpoint.Create(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	partial := cfg
	partial.Rounds = 4
	partial.OnRound = func(round int, r Round) {
		if err := j.Append(fmt.Sprintf("round%d", round), true, r, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Play(arena(), partial); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Second process: replay the journal into ResumeRounds.
	j2, rep, err := checkpoint.Resume(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var resumeRounds []Round
	for _, id := range rep.IDs() {
		rec, _ := rep.Lookup(id)
		var r Round
		if err := json.Unmarshal(rec.Value, &r); err != nil {
			t.Fatal(err)
		}
		resumeRounds = append(resumeRounds, r)
	}
	resumed := cfg
	resumed.ResumeRounds = resumeRounds
	second, err := Play(arena(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Rounds, full.Rounds) {
		t.Fatal("journal-resumed trajectory differs from uninterrupted run")
	}
}

// TestResumeLongerThanRounds: a resume prefix at or beyond Rounds plays
// nothing new and folds only the first Rounds entries.
func TestResumeLongerThanRounds(t *testing.T) {
	cfg := Config{Rounds: 4, AttackBudget: 1, DefenseBudgetPerActor: 2, Seed: 3}
	full, err := Play(arena(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	over := cfg
	over.Rounds = 2
	over.ResumeRounds = full.Rounds // 4 rounds into a 2-round game
	res, err := Play(arena(), over)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
}
