// Telemetry instruments for the repeated game: rounds played, replayed, and
// failed per trajectory. Round counts follow directly from the seeded
// configuration, so they are deterministic on clean runs.
package repeated

import "cpsguard/internal/telemetry"

var (
	mGames          = telemetry.NewCounter("repeated.games")
	mRounds         = telemetry.NewCounter("repeated.rounds")
	mRoundsReplayed = telemetry.NewCounter("repeated.rounds_replayed")
	mRoundsFailed   = telemetry.NewCounter("repeated.rounds_failed")
)
