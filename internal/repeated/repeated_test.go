package repeated

import (
	"errors"
	"testing"

	"cpsguard/internal/core"
	"cpsguard/internal/graph"
)

// arena: two rival chains plus a shared distribution spur — enough
// structure for attacks to be worth both mounting and defending.
func arena() *core.Scenario {
	g := graph.New("arena")
	g.MustAddVertex(graph.Vertex{ID: "g1", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "g2", Supply: 100, SupplyCost: 4})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 140, Price: 12})
	g.MustAddEdge(graph.Edge{ID: "c1", From: "g1", To: "city", Capacity: 90})
	g.MustAddEdge(graph.Edge{ID: "c2", From: "g2", To: "city", Capacity: 90})
	return core.NewScenario(g, 2, 5)
}

func TestPlayBasics(t *testing.T) {
	s := arena()
	res, err := Play(s, Config{
		Rounds:                5,
		AttackBudget:          1,
		DefenseBudgetPerActor: 2,
		Seed:                  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	sumProfit, sumAverted := 0.0, 0.0
	for _, r := range res.Rounds {
		sumProfit += r.AdversaryProfit
		sumAverted += r.Averted
		if r.Averted < -1e-9 {
			t.Fatalf("negative averted damage: %+v", r)
		}
	}
	if sumProfit != res.TotalAdversaryProfit || sumAverted != res.TotalAverted {
		t.Fatal("totals inconsistent with rounds")
	}
}

func TestLearningDefenseImproves(t *testing.T) {
	// Round 1 the defenders know nothing (Pa=0 → no defense); once the
	// attacker reveals its target, the defenders cover it and the
	// attacker's profit drops (it is not adaptive here).
	s := arena()
	res, err := Play(s, Config{
		Rounds:                4,
		AttackBudget:          1,
		DefenseBudgetPerActor: 3,
		Smoothing:             1.0, // immediately believe history
		Seed:                  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds[0].Defended) != 0 {
		t.Fatalf("round 0 should be undefended (no history): %v", res.Rounds[0].Defended)
	}
	first := res.Rounds[0].AdversaryProfit
	later := res.Rounds[len(res.Rounds)-1].AdversaryProfit
	if first <= 0 {
		t.Fatalf("attacker should profit initially: %v", first)
	}
	if later >= first {
		t.Fatalf("learning defense failed to cut profit: first %v, later %v", first, later)
	}
}

func TestAdaptiveAttackerEvades(t *testing.T) {
	// With an adaptive attacker, total adversary profit should be at
	// least the non-adaptive attacker's (it only gains information).
	s := arena()
	base, err := Play(s, Config{
		Rounds: 6, AttackBudget: 1, DefenseBudgetPerActor: 3,
		Smoothing: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2 := arena()
	adaptive, err := Play(s2, Config{
		Rounds: 6, AttackBudget: 1, DefenseBudgetPerActor: 3,
		Smoothing: 1.0, AdaptiveAttacker: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.TotalAdversaryProfit < base.TotalAdversaryProfit-1e-9 {
		t.Fatalf("adaptive attacker did worse: %v vs %v",
			adaptive.TotalAdversaryProfit, base.TotalAdversaryProfit)
	}
}

func TestCollaborativeRepeated(t *testing.T) {
	s := arena()
	res, err := Play(s, Config{
		Rounds: 3, AttackBudget: 1, DefenseBudgetPerActor: 1,
		Collaborative: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAverted < 0 {
		t.Fatalf("collaborative averted = %v", res.TotalAverted)
	}
}

func TestNoisyAttackerRepeated(t *testing.T) {
	s := arena()
	res, err := Play(s, Config{
		Rounds: 4, AttackBudget: 1, DefenseBudgetPerActor: 2,
		AttackerSigma: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatal("noisy repeated game truncated")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Rounds: 5, AttackBudget: 1, DefenseBudgetPerActor: 2,
		AttackerSigma: 0.3, AdaptiveAttacker: true, Seed: 9}
	a, err := Play(arena(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Play(arena(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAdversaryProfit != b.TotalAdversaryProfit || a.TotalAverted != b.TotalAverted {
		t.Fatal("repeated game nondeterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Play(nil, Config{Rounds: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil scenario: %v", err)
	}
	if _, err := Play(arena(), Config{Rounds: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("0 rounds: %v", err)
	}
}
