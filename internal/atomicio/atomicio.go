// Package atomicio provides crash-safe file writes: a file written through
// WriteFile is either fully present with its final contents or absent/
// untouched — never half-written. The sequence is the classic temp file in
// the destination directory → write → fsync(file) → close → rename →
// fsync(directory), which is atomic on POSIX filesystems because rename(2)
// within a directory is atomic and the directory fsync persists the name.
//
// Every result artifact in this repository (CSV figures, JSON models, the
// checkpoint journal's compacted segments) goes through this package so a
// crash or SIGKILL mid-write can never leave a torn output that a later
// consumer mistakes for a complete one.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temp file is created in
// path's directory (rename across filesystems is not atomic), fsynced, and
// renamed over path; the directory entry is then fsynced. On any error the
// temp file is removed and path is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		tmpName = ""
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	tmpName = "" // renamed away; nothing to clean up
	return syncDir(dir)
}

// MkdirAllAndWrite is WriteFile preceded by MkdirAll on the destination
// directory, for callers writing into result trees that may not exist yet.
func MkdirAllAndWrite(path string, data []byte, perm os.FileMode) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return WriteFile(path, data, perm)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that refuse to fsync directories (some network mounts) are
// tolerated: the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
