package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteFile(path, []byte("v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileLeavesNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteFileMissingDirErrors(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

func TestMkdirAllAndWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "nested", "fig2.csv")
	if err := MkdirAllAndWrite(path, []byte("x,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFilePerm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", st.Mode().Perm())
	}
}
