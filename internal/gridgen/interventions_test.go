package gridgen

import (
	"strings"
	"testing"

	"cpsguard/internal/graph"
)

func TestCandidateInterventionsDeterministicAndBuildable(t *testing.T) {
	g, err := Build(Config{Regions: 3, Seed: 5, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	a := CandidateInterventions(g, InterventionOptions{})
	b := CandidateInterventions(g, InterventionOptions{})
	if len(a) == 0 {
		t.Fatal("no candidates from a 3-region grid")
	}
	if InterventionSetDigest(a) != InterventionSetDigest(b) {
		t.Error("two generations over the same graph differ")
	}
	// Every candidate must be individually buildable, and the whole menu
	// must be jointly buildable.
	for _, iv := range a {
		if _, err := graph.ApplyInterventions(g, iv); err != nil {
			t.Errorf("candidate %s unbuildable: %v", iv.ID, err)
		}
		if iv.Cost <= 0 {
			t.Errorf("candidate %s has non-positive cost %v", iv.ID, iv.Cost)
		}
		if !strings.HasPrefix(iv.ID, "ivup:") && !strings.HasPrefix(iv.ID, "ivnew:") {
			t.Errorf("candidate %s outside the naming convention", iv.ID)
		}
	}
	if _, err := graph.ApplyInterventions(g, a...); err != nil {
		t.Errorf("joint build of full menu failed: %v", err)
	}
}

func TestCandidateInterventionsMaxCap(t *testing.T) {
	g, err := Build(Config{Regions: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := CandidateInterventions(g, InterventionOptions{})
	capped := CandidateInterventions(g, InterventionOptions{Max: 5})
	if len(capped) != 5 {
		t.Fatalf("Max=5 returned %d candidates", len(capped))
	}
	if len(full) <= 5 {
		t.Fatalf("test needs a menu larger than the cap, got %d", len(full))
	}
	if InterventionSetDigest(full) == InterventionSetDigest(capped) {
		t.Error("digest does not distinguish capped menu from full menu")
	}
	again := CandidateInterventions(g, InterventionOptions{Max: 5})
	if InterventionSetDigest(capped) != InterventionSetDigest(again) {
		t.Error("capped menu is not deterministic")
	}
}

func TestInterventionSetDigestSensitivity(t *testing.T) {
	g, err := Build(Config{Regions: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := CandidateInterventions(g, InterventionOptions{})
	if InterventionSetDigest(nil) != "none" {
		t.Errorf("empty digest = %q, want none", InterventionSetDigest(nil))
	}
	mutated := append([]graph.Intervention(nil), base...)
	mutated[0].Cost++
	if InterventionSetDigest(base) == InterventionSetDigest(mutated) {
		t.Error("digest blind to a cost change")
	}
}
