// Package gridgen synthesizes interconnected gas-electric systems of
// arbitrary size with the same structural grammar as the paper's six-state
// model: one gas hub and one electric hub per region, per-region generation
// suites, gas imports priced below retail, gas→electric conversion, and
// long-haul corridors on a ring-plus-chords topology.
//
// The paper notes (Section II-E4) that the strategic-adversary model "can
// become computationally difficult to solve as the system grows in both
// the number of actors and targets"; this generator provides the scaling
// axis for measuring exactly that (see BenchmarkScaling* in the repository
// root), and stress-tests every solver well beyond the 86-asset evaluation
// model. Generation is deterministic per (regions, seed).
package gridgen

import (
	"fmt"
	"math"

	"cpsguard/internal/geo"
	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

// Tier selects the synthesis scale grammar.
type Tier int8

const (
	// TierRegional is the original ring-plus-chords grammar: every region
	// couples to its two ring neighbors plus a few random chords. The
	// zero value, so existing configurations are unchanged.
	TierRegional Tier = iota
	// TierNational lays the regions out on a sparse planar mesh (a
	// near-square grid with only nearest-neighbor corridors plus a few
	// long-haul chords), the topology of a continent-scale interconnect.
	// Average hub degree stays bounded as Regions grows, so a
	// thousand-region system produces LPs whose constraint matrices are
	// overwhelmingly sparse — the regime the revised simplex
	// (lp.MethodRevised) is built for. A Regions count in the hundreds
	// yields several thousand buses (each region contributes two hubs,
	// two loads, an import terminal, and 2–4 generators).
	TierNational
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierRegional:
		return "regional"
	case TierNational:
		return "national"
	default:
		return fmt.Sprintf("Tier(%d)", int8(t))
	}
}

// Config parameterizes the synthetic system.
type Config struct {
	// Regions is the number of regions (≥ 2).
	Regions int
	// Seed drives all randomized quantities (default 1).
	Seed uint64
	// Chords adds this many long-haul shortcut corridors per network on
	// top of the base topology (default Regions/3 for TierRegional,
	// Regions/16 for TierNational).
	Chords int
	// Stress applies the paper's stress adjustments (capacity −25%,
	// demand +65%).
	Stress bool
	// Tier selects the scale grammar (default TierRegional, the original
	// ring-plus-chords synthesis; generation stays deterministic per
	// (regions, seed, tier)).
	Tier Tier
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) chords() int {
	if c.Chords > 0 {
		return c.Chords
	}
	if c.Tier == TierNational {
		// Long-haul ties are rare in a national mesh; the grid neighbors
		// carry the bulk of the coupling.
		return c.Regions / 16
	}
	return c.Regions / 3
}

// genKinds is the pool of non-gas generation technologies.
var genKinds = []struct {
	name     string
	costLo   float64
	costHi   float64
	capShare float64 // nameplate as a multiple of regional demand
}{
	{"hydro", 5, 9, 1.2},
	{"nuclear", 19, 23, 0.7},
	{"coal", 22, 28, 0.8},
	{"solar", 1, 3, 0.6},
	{"wind", 1, 2, 0.4},
	{"geothermal", 13, 16, 0.3},
}

// Build synthesizes the system.
func Build(cfg Config) (*graph.Graph, error) {
	if cfg.Regions < 2 {
		return nil, fmt.Errorf("gridgen: need ≥ 2 regions, got %d", cfg.Regions)
	}
	rs := rng.New(cfg.seed())
	name := fmt.Sprintf("gridgen-%dr-seed%d", cfg.Regions, cfg.seed())
	if cfg.Tier == TierNational {
		name = fmt.Sprintf("gridgen-national-%dr-seed%d", cfg.Regions, cfg.seed())
	}
	g := graph.New(name)

	demandScale, capScale := 1.0, 1.0
	if cfg.Stress {
		demandScale, capScale = 1.65, 0.75
	}

	region := func(i int) string { return fmt.Sprintf("R%02d", i) }
	// TierRegional regions sit on a ring; TierNational regions on a
	// near-square planar grid. Positions give distance-derived losses.
	// Both layouts draw the same per-region randomness, so the regional
	// tier's output is unchanged by the tier machinery.
	cols := int(math.Ceil(math.Sqrt(float64(cfg.Regions))))
	positions := make([]geo.Point, cfg.Regions)
	for i := range positions {
		if cfg.Tier == TierNational {
			positions[i] = geo.Point{
				Lat: 28 + 0.45*float64(i/cols) + 0.2*rs.Float64(),
				Lon: -125 + 0.55*float64(i%cols) + 0.2*rs.Float64(),
			}
		} else {
			positions[i] = geo.Point{
				Lat: 35 + 10*rs.Float64(),
				Lon: -120 + 2.5*float64(i) + rs.Float64(),
			}
		}
	}

	for i := 0; i < cfg.Regions; i++ {
		r := region(i)
		p := positions[i]
		elecDemand := 80 + rs.Float64()*600
		gasDemand := 60 + rs.Float64()*500
		elecPrice := 85 + rs.Float64()*40
		gasPrice := 28 + rs.Float64()*12

		g.MustAddVertex(graph.Vertex{ID: "gas:" + r, Lat: p.Lat, Lon: p.Lon})
		g.MustAddVertex(graph.Vertex{ID: "elec:" + r, Lat: p.Lat, Lon: p.Lon})
		g.MustAddVertex(graph.Vertex{ID: "gasload:" + r,
			Demand: gasDemand * demandScale, Price: gasPrice})
		g.MustAddVertex(graph.Vertex{ID: "elecload:" + r,
			Demand: elecDemand * demandScale, Price: elecPrice})
		g.MustAddVertex(graph.Vertex{ID: "gasimport:" + r,
			Supply: gasDemand * 4, SupplyCost: gasPrice * 0.75})

		g.MustAddEdge(graph.Edge{ID: "gasimp:" + r, From: "gasimport:" + r,
			To: "gas:" + r, Capacity: gasDemand * 4, Cost: 0.5, Kind: graph.KindImport})
		g.MustAddEdge(graph.Edge{ID: "gasdist:" + r, From: "gas:" + r,
			To: "gasload:" + r, Capacity: gasDemand * demandScale * 1.1,
			Loss: 0.01, Cost: 1, Kind: graph.KindDistribution})
		g.MustAddEdge(graph.Edge{ID: "elecdist:" + r, From: "elec:" + r,
			To: "elecload:" + r, Capacity: elecDemand * demandScale * 1.1,
			Loss: 0.02, Cost: 1.5, Kind: graph.KindDistribution})
		g.MustAddEdge(graph.Edge{ID: "g2e:" + r, From: "gas:" + r,
			To: "elec:" + r, Capacity: elecDemand * 1.2 * capScale,
			Loss: 0.48, Cost: 4, Kind: graph.KindConversion})

		// 2–4 non-gas sources per region.
		nSrc := 2 + rs.Intn(3)
		perm := rs.Perm(len(genKinds))
		for k := 0; k < nSrc; k++ {
			kind := genKinds[perm[k]]
			id := fmt.Sprintf("gen:%s:%s", r, kind.name)
			cap := elecDemand * kind.capShare * (0.6 + 0.8*rs.Float64())
			cost := kind.costLo + rs.Float64()*(kind.costHi-kind.costLo)
			g.MustAddVertex(graph.Vertex{ID: id,
				Supply: cap * capScale, SupplyCost: cost, Lat: p.Lat, Lon: p.Lon})
			g.MustAddEdge(graph.Edge{ID: id, From: id, To: "elec:" + r,
				Capacity: cap * capScale, Cost: 0.2, Kind: graph.KindGeneration})
		}
	}

	addCorridor := func(net string, a, b int, cap float64) {
		km := geo.Distance(positions[a], positions[b])
		var loss float64
		var kind graph.Kind
		prefix := ""
		if net == "gas" {
			loss = geo.PipelineLoss(km)
			kind = graph.KindPipeline
			prefix = "pipe"
		} else {
			loss = geo.TransmissionLoss(km)
			kind = graph.KindTransmission
			prefix = "tx"
		}
		for _, dir := range [2][2]int{{a, b}, {b, a}} {
			id := fmt.Sprintf("%s:%s-%s", prefix, region(dir[0]), region(dir[1]))
			if g.Edge(id) != nil {
				return // chord duplicated a ring corridor
			}
			g.MustAddEdge(graph.Edge{ID: id,
				From: net + ":" + region(dir[0]), To: net + ":" + region(dir[1]),
				Capacity: cap, Loss: loss, Cost: 1.5, Kind: kind})
		}
	}
	if cfg.Tier == TierNational {
		// Sparse planar mesh: only nearest-neighbor grid corridors, so
		// hub degree stays bounded (≤ 4 per network) no matter how large
		// the system grows.
		for i := 0; i < cfg.Regions; i++ {
			if (i+1)%cols != 0 && i+1 < cfg.Regions {
				addCorridor("elec", i, i+1, 80+rs.Float64()*200)
				addCorridor("gas", i, i+1, 100+rs.Float64()*300)
			}
			if i+cols < cfg.Regions {
				addCorridor("elec", i, i+cols, 80+rs.Float64()*200)
				addCorridor("gas", i, i+cols, 100+rs.Float64()*300)
			}
		}
		// A few long-haul interties between random far-apart regions.
		for c := 0; c < cfg.chords(); c++ {
			a, b := rs.Intn(cfg.Regions), rs.Intn(cfg.Regions)
			if a == b {
				continue
			}
			addCorridor("elec", a, b, 60+rs.Float64()*150)
			addCorridor("gas", a, b, 80+rs.Float64()*200)
		}
	} else {
		// Ring corridors for both networks.
		for i := 0; i < cfg.Regions; i++ {
			j := (i + 1) % cfg.Regions
			addCorridor("elec", i, j, 80+rs.Float64()*200)
			addCorridor("gas", i, j, 100+rs.Float64()*300)
		}
		// Chords (need ≥ 4 regions for a non-ring corridor to exist).
		if cfg.Regions >= 4 {
			for c := 0; c < cfg.chords(); c++ {
				a := rs.Intn(cfg.Regions)
				b := (a + 2 + rs.Intn(cfg.Regions-3)) % cfg.Regions
				if a == b {
					continue
				}
				addCorridor("elec", a, b, 60+rs.Float64()*150)
				addCorridor("gas", a, b, 80+rs.Float64()*200)
			}
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gridgen: generated invalid graph: %w", err)
	}
	return g, nil
}
