package gridgen

import (
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
)

func TestBuildValidatesAndScales(t *testing.T) {
	for _, regions := range []int{2, 6, 12, 24} {
		g, err := Build(Config{Regions: regions, Seed: 3})
		if err != nil {
			t.Fatalf("regions=%d: %v", regions, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("regions=%d invalid: %v", regions, err)
		}
		// Structure: 2 hubs per region; edges grow with regions.
		hubs := 0
		for _, v := range g.Vertices {
			if len(v.ID) > 4 && (v.ID[:4] == "gas:" || v.ID[:5] == "elec:") {
				hubs++
			}
		}
		if hubs != 2*regions {
			t.Fatalf("regions=%d: hubs=%d, want %d", regions, hubs, 2*regions)
		}
		if len(g.Edges) < 8*regions {
			t.Fatalf("regions=%d: only %d edges", regions, len(g.Edges))
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Regions: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Regions: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
	c, err := Build(Config{Regions: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same && len(a.Edges) == len(c.Edges) {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestBuildDispatches(t *testing.T) {
	g, err := Build(Config{Regions: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Welfare <= 0 {
		t.Fatalf("welfare = %v", r.Welfare)
	}
	if r.Served() < 0.8*g.TotalDemand() {
		t.Fatalf("generated system serves only %.0f%% of demand",
			100*r.Served()/g.TotalDemand())
	}
}

func TestStressReducesHeadroom(t *testing.T) {
	base, err := Build(Config{Regions: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stressed, err := Build(Config{Regions: 6, Seed: 2, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	if stressed.TotalDemand() <= base.TotalDemand() {
		t.Fatal("stress did not raise demand")
	}
	if stressed.TotalSupply() >= base.TotalSupply() {
		t.Fatal("stress did not cut generation capacity")
	}
}

func TestGeneratedSystemSupportsImpactAnalysis(t *testing.T) {
	g, err := Build(Config{Regions: 6, Seed: 9, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	o := actors.RandomOwnership(g, 4, rng.New(1))
	an := &impact.Analysis{Graph: g, Ownership: o}
	// Subset of targets to keep the test fast.
	targets := g.AssetIDs()[:10]
	m, err := an.ComputeMatrix(targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range m.Targets {
		if m.WelfareDelta[tg] > 1e-6 {
			t.Fatalf("attack on %s increased welfare", tg)
		}
	}
}

func TestBuildRejectsTooFewRegions(t *testing.T) {
	if _, err := Build(Config{Regions: 1}); err == nil {
		t.Fatal("1 region accepted")
	}
}

func TestKindsPresent(t *testing.T) {
	g, err := Build(Config{Regions: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := g.KindCounts()
	for _, k := range []graph.Kind{
		graph.KindTransmission, graph.KindPipeline, graph.KindGeneration,
		graph.KindDistribution, graph.KindConversion, graph.KindImport,
	} {
		if counts[k] == 0 {
			t.Fatalf("no %s edges generated", k)
		}
	}
}

func TestBuildSmallRegionCounts(t *testing.T) {
	// 2 and 3 regions have no valid chords; the build must not panic.
	for _, r := range []int{2, 3} {
		g, err := Build(Config{Regions: r, Seed: 1})
		if err != nil {
			t.Fatalf("regions=%d: %v", r, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("regions=%d invalid: %v", r, err)
		}
	}
}
