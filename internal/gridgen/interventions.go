// Candidate-intervention synthesis: the defender's redesign menu. The
// screening stack (internal/screen) tells the defender where the grid is
// vulnerable; this file generates the design changes she may buy to fix it
// — capacity upgrades on existing corridors and new parallel corridors —
// with costs proportional to the capacity built, so knapsack selection
// under a capital budget is meaningful.
package gridgen

import (
	"fmt"
	"sort"
	"strings"

	"cpsguard/internal/graph"
)

// InterventionOptions tunes candidate generation. The zero value is usable.
type InterventionOptions struct {
	// UpgradeFraction is the capacity added by an upgrade, as a fraction of
	// the edge's current capacity (default 0.5).
	UpgradeFraction float64
	// UpgradeRate is the capital cost per unit of upgraded capacity
	// (default 1). Upgrades reuse the right-of-way, so they are cheap.
	UpgradeRate float64
	// NewEdgeRate is the capital cost per unit of new-build capacity
	// (default 3). New corridors are expensive.
	NewEdgeRate float64
	// Max caps the number of candidates returned (0 = no cap). Candidates
	// are ranked by capacity descending before the cap applies, so the
	// largest corridors survive truncation.
	Max int
}

func (o InterventionOptions) upgradeFraction() float64 {
	if o.UpgradeFraction > 0 {
		return o.UpgradeFraction
	}
	return 0.5
}

func (o InterventionOptions) upgradeRate() float64 {
	if o.UpgradeRate > 0 {
		return o.UpgradeRate
	}
	return 1
}

func (o InterventionOptions) newEdgeRate() float64 {
	if o.NewEdgeRate > 0 {
		return o.NewEdgeRate
	}
	return 3
}

// corridorEdge reports whether e is a long-haul corridor — the only edges
// the redesign menu touches. Conversion edges (g2e) count too: the paper's
// stressed system is conversion-bound, so extra gas→electric capacity is a
// natural defensive investment.
func corridorEdge(e *graph.Edge) bool {
	switch e.Kind {
	case graph.KindTransmission, graph.KindPipeline, graph.KindConversion:
		return true
	}
	return false
}

// CandidateInterventions generates the defender's redesign menu for g: one
// "ivup:<edge>" capacity upgrade per corridor edge, and one "ivnew:<edge>"
// parallel new corridor per transmission/pipeline edge (a duplicate edge on
// the same endpoints at half the original's capacity). Output is
// deterministic: a pure function of the graph, sorted by candidate ID.
func CandidateInterventions(g *graph.Graph, opts InterventionOptions) []graph.Intervention {
	var out []graph.Intervention
	for i := range g.Edges {
		e := &g.Edges[i]
		if !corridorEdge(e) || e.Capacity <= 0 {
			continue
		}
		delta := e.Capacity * opts.upgradeFraction()
		out = append(out, graph.Intervention{
			ID:            "ivup:" + e.ID,
			UpgradeEdge:   e.ID,
			CapacityDelta: delta,
			Cost:          delta * opts.upgradeRate(),
		})
		if e.Kind == graph.KindConversion {
			continue // parallel g2e would just be a second upgrade
		}
		par := *e
		par.ID = "par:" + e.ID
		par.Capacity = e.Capacity * 0.5
		out = append(out, graph.Intervention{
			ID:      "ivnew:" + e.ID,
			NewEdge: &par,
			Cost:    par.Capacity * opts.newEdgeRate(),
		})
	}
	if opts.Max > 0 && len(out) > opts.Max {
		// Keep the largest-capacity candidates; tie-break on ID so the
		// truncated menu is still deterministic.
		sort.Slice(out, func(a, b int) bool {
			ca, cb := candidateCap(out[a]), candidateCap(out[b])
			if ca != cb {
				return ca > cb
			}
			return out[a].ID < out[b].ID
		})
		out = out[:opts.Max]
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func candidateCap(iv graph.Intervention) float64 {
	if iv.NewEdge != nil {
		return iv.NewEdge.Capacity
	}
	return iv.CapacityDelta
}

// InterventionSetDigest is a stable fingerprint of an ordered candidate
// set, used to key sweep checkpoints and shard manifests so results from
// different redesign menus can never be merged into one sweep.
func InterventionSetDigest(ivs []graph.Intervention) string {
	if len(ivs) == 0 {
		return "none"
	}
	var b strings.Builder
	for _, iv := range ivs {
		fmt.Fprintf(&b, "%s|%g|%g;", iv.ID, candidateCap(iv), iv.Cost)
	}
	// FNV-1a, inlined to keep the digest format under this package's
	// control rather than hash/fnv's.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < b.Len(); i++ {
		h ^= uint64(b.String()[i])
		h *= prime64
	}
	return fmt.Sprintf("iv%016x", h)
}
