package baseline

import (
	"math"
	"testing"

	"cpsguard/internal/graph"
	"cpsguard/internal/westgrid"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// diamond: s → a → t and s → b → t, plus a bridge a → b.
func diamond() *graph.Graph {
	g := graph.New("diamond")
	for _, id := range []string{"s", "a", "b", "t"} {
		g.MustAddVertex(graph.Vertex{ID: id})
	}
	g.MustAddEdge(graph.Edge{ID: "sa", From: "s", To: "a", Capacity: 1})
	g.MustAddEdge(graph.Edge{ID: "sb", From: "s", To: "b", Capacity: 5})
	g.MustAddEdge(graph.Edge{ID: "at", From: "a", To: "t", Capacity: 1})
	g.MustAddEdge(graph.Edge{ID: "bt", From: "b", To: "t", Capacity: 1})
	g.MustAddEdge(graph.Edge{ID: "ab", From: "a", To: "b", Capacity: 1})
	return g
}

func TestEdgeBetweennessChain(t *testing.T) {
	g := graph.New("chain")
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddVertex(graph.Vertex{ID: id})
	}
	g.MustAddEdge(graph.Edge{ID: "ab", From: "a", To: "b", Capacity: 1})
	g.MustAddEdge(graph.Edge{ID: "bc", From: "b", To: "c", Capacity: 1})
	b := EdgeBetweenness(g)
	// Shortest paths: a→b (ab), b→c (bc), a→c (ab,bc).
	if !approx(b["ab"], 2, 1e-12) || !approx(b["bc"], 2, 1e-12) {
		t.Fatalf("chain betweenness = %v, want ab=2 bc=2", b)
	}
}

func TestEdgeBetweennessSplitsEqualPaths(t *testing.T) {
	b := EdgeBetweenness(diamond())
	// s→t has two shortest 2-hop paths (via a and via b); each path edge
	// gets 1/2 from that pair.
	// sa: pairs s→a (1), s→t (0.5), s→b? shortest s→b is direct sb, so
	// no. Total sa = 1.5. Check relative ordering instead of absolutes
	// for the rest: sa == sb, at == bt.
	if !approx(b["sa"], b["sb"], 1e-12) {
		t.Fatalf("symmetric edges differ: %v", b)
	}
	if !approx(b["at"], b["bt"], 1e-12) {
		t.Fatalf("symmetric edges differ: %v", b)
	}
	if !approx(b["sa"], 1.5, 1e-12) {
		t.Fatalf("sa = %v, want 1.5", b["sa"])
	}
	// ab carries only a→b: score 1.
	if !approx(b["ab"], 1, 1e-12) {
		t.Fatalf("ab = %v, want 1", b["ab"])
	}
}

func TestCapacityWeighting(t *testing.T) {
	g := diamond()
	plain := EdgeBetweenness(g)
	weighted := CapacityWeightedBetweenness(g)
	if !approx(weighted["sb"], plain["sb"]*5, 1e-12) {
		t.Fatalf("capacity weighting wrong: %v vs %v", weighted["sb"], plain["sb"])
	}
}

func TestRankDeterministic(t *testing.T) {
	scores := map[string]float64{"x": 1, "y": 3, "z": 1}
	r := Rank(scores)
	if r[0] != "y" || r[1] != "x" || r[2] != "z" {
		t.Fatalf("rank = %v", r)
	}
}

func TestDefendBudget(t *testing.T) {
	r := Ranking{"a", "b", "c"}
	costs := map[string]float64{"a": 2, "b": 2, "c": 2}
	d := r.Defend(costs, 4)
	if !d["a"] || !d["b"] || d["c"] {
		t.Fatalf("defend = %v", d)
	}
	// Missing cost → skipped; expensive item skipped but later cheap one
	// still taken.
	costs2 := map[string]float64{"a": 10, "c": 1}
	d2 := r.Defend(costs2, 2)
	if d2["a"] || d2["b"] || !d2["c"] {
		t.Fatalf("defend = %v", d2)
	}
}

func TestWestgridBetweennessPlausible(t *testing.T) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	b := EdgeBetweenness(g)
	if len(b) != len(g.Edges) {
		t.Fatalf("missing scores: %d of %d", len(b), len(g.Edges))
	}
	// Long-haul corridors must outrank leaf edges on average: they carry
	// inter-state shortest paths.
	var corridorSum, leafSum float64
	var corridorN, leafN int
	for _, e := range g.Edges {
		switch e.Kind {
		case graph.KindTransmission, graph.KindPipeline:
			corridorSum += b[e.ID]
			corridorN++
		case graph.KindGeneration, graph.KindImport:
			leafSum += b[e.ID]
			leafN++
		}
	}
	if corridorSum/float64(corridorN) <= leafSum/float64(leafN) {
		t.Fatalf("corridors (%v) should outrank leaf edges (%v)",
			corridorSum/float64(corridorN), leafSum/float64(leafN))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New("empty")
	if len(EdgeBetweenness(g)) != 0 {
		t.Fatal("empty graph should have no scores")
	}
}
