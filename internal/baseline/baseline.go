// Package baseline implements the purely topological defense strategies
// the paper's related work contrasts with (Section IV-B, citing Wang et
// al.'s electrical-betweenness ranking [32] and Hines et al.'s critique
// [33]): rank assets by a graph-structural criticality metric and defend
// the top of the ranking, ignoring market economics entirely.
//
// These baselines exist to quantify the paper's thesis — that physical-flow
// *economics*, not topology, determine which assets matter to a
// profit-seeking adversary. The ablation benchmark and the comparison
// experiment (experiments.BaselineComparison) measure how much attack
// damage each strategy actually averts on the ground-truth model.
package baseline

import (
	"sort"

	"cpsguard/internal/graph"
)

// EdgeBetweenness computes directed edge betweenness centrality with
// Brandes' algorithm over unweighted shortest paths between all vertex
// pairs. Scores are raw path counts (not normalized); only relative order
// matters for ranking.
func EdgeBetweenness(g *graph.Graph) map[string]float64 {
	n := len(g.Vertices)
	idx := make(map[string]int, n)
	for i, v := range g.Vertices {
		idx[v.ID] = i
	}
	// adjacency with edge indices
	type arc struct{ to, edge int }
	adj := make([][]arc, n)
	for ei, e := range g.Edges {
		u, v := idx[e.From], idx[e.To]
		adj[u] = append(adj[u], arc{v, ei})
	}

	score := make([]float64, len(g.Edges))
	// Brandes, per source.
	for s := 0; s < n; s++ {
		// BFS.
		dist := make([]int, n)
		sigma := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		order := []int{s}
		preds := make([][]arc, n) // predecessor arcs into each vertex
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range adj[u] {
				if dist[a.to] < 0 {
					dist[a.to] = dist[u] + 1
					queue = append(queue, a.to)
					order = append(order, a.to)
				}
				if dist[a.to] == dist[u]+1 {
					sigma[a.to] += sigma[u]
					preds[a.to] = append(preds[a.to], arc{u, a.edge})
				}
			}
		}
		// Accumulation in reverse BFS order.
		delta := make([]float64, n)
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, p := range preds[w] {
				c := sigma[p.to] / sigma[w] * (1 + delta[w])
				score[p.edge] += c
				delta[p.to] += c
			}
		}
	}

	out := make(map[string]float64, len(g.Edges))
	for ei, e := range g.Edges {
		out[e.ID] = score[ei]
	}
	return out
}

// CapacityWeightedBetweenness scales each edge's betweenness by its
// capacity — a crude stand-in for the "electrical betweenness" of [32]
// that accounts for how much energy an asset can actually carry.
func CapacityWeightedBetweenness(g *graph.Graph) map[string]float64 {
	b := EdgeBetweenness(g)
	for i := range g.Edges {
		e := &g.Edges[i]
		b[e.ID] *= e.Capacity
	}
	return b
}

// Ranking is a defense-priority order over assets.
type Ranking []string

// Rank orders asset IDs by descending score, breaking ties by ID for
// determinism.
func Rank(scores map[string]float64) Ranking {
	ids := make([]string, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := scores[ids[a]], scores[ids[b]]
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Defend greedily protects assets in ranking order while the budget lasts,
// given per-asset defense costs. Assets missing from costs are skipped.
func (r Ranking) Defend(costs map[string]float64, budget float64) map[string]bool {
	defended := map[string]bool{}
	for _, id := range r {
		cd, ok := costs[id]
		if !ok || cd > budget {
			continue
		}
		defended[id] = true
		budget -= cd
	}
	return defended
}
