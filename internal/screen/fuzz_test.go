// FuzzScreenPrune hammers the soundness contract with hostile inputs:
// seeded grids degraded by fuzz-chosen capacity knockouts (including fully
// disconnected ones), fuzzed ownership maps, and fuzzed perturbation
// fractions that flip runs between the monotone and reorder-only regimes.
// The invariants are absolute: screening never panics, and a pruned
// contingency that would have beaten the reported worst case — checked by
// comparing against the evaluate-everything oracle — is a failure.
package screen_test

import (
	"reflect"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
)

func FuzzScreenPrune(f *testing.F) {
	f.Add(uint8(2), uint64(1), uint8(2), uint64(0xFF), uint64(7), 0.0)
	f.Add(uint8(3), uint64(9), uint8(1), uint64(0xA5A5), uint64(3), 0.5)
	f.Add(uint8(2), uint64(4), uint8(2), uint64(0), uint64(1), 1.5) // >1: non-monotone
	f.Add(uint8(4), uint64(77), uint8(2), uint64(1<<20-1), uint64(99), 0.25)
	f.Fuzz(func(t *testing.T, regions uint8, gseed uint64, k uint8, mask uint64, ownSeed uint64, frac float64) {
		g, err := gridgen.Build(gridgen.Config{
			Regions: 2 + int(regions)%3, Seed: gseed, Stress: gseed%2 == 0,
		})
		if err != nil {
			t.Skip() // hostile generator config, not a screening input
		}
		// Degrade the grid: knock out capacities by mask bits. Zeroed
		// corridors can disconnect whole regions — screening must cope.
		for i := range g.Edges {
			if mask&(1<<(uint(i)%48)) != 0 && i%3 == 0 {
				g.Edges[i].Capacity = 0
			}
		}
		if err := g.Validate(); err != nil {
			t.Skip()
		}
		own := actors.RandomOwnership(g, 1+int(ownSeed%5), rng.New(ownSeed))

		// Candidate targets: a mask-chosen subset, capped to keep the
		// lattice small. Perturbation values scale each edge's capacity by
		// frac — frac ≤ 1 keeps the run monotone, frac > 1 (or NaN, or
		// negative) must flip it to reorder-only, never to unsound pruning.
		var targets []string
		for i := range g.Edges {
			if mask&(1<<((uint(i)+17)%52)) != 0 {
				targets = append(targets, g.Edges[i].ID)
			}
			if len(targets) == 8 {
				break
			}
		}
		if len(targets) == 0 {
			targets = []string{g.Edges[0].ID}
		}
		vector := func(id string) []impact.Perturbation {
			e := g.Edge(id)
			return []impact.Perturbation{{EdgeID: id, Field: impact.Capacity, Value: e.Capacity * frac}}
		}

		an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(4096)}
		depth := 1 + int(k)%2
		pr, prErr := screen.Run(screen.Config{Analysis: an, Targets: targets, K: depth, Vector: vector})
		or, orErr := screen.Run(screen.Config{Analysis: an, Targets: targets, K: depth, Vector: vector, NoPrune: true})
		if (prErr == nil) != (orErr == nil) {
			t.Fatalf("screened err=%v, oracle err=%v — evaluation must be mode-independent", prErr, orErr)
		}
		if prErr != nil {
			return // both rejected the degenerate input gracefully
		}
		if -or.Worst.Delta > -pr.Worst.Delta+1e-9 {
			t.Fatalf("pruned run missed a worse contingency: oracle worst %v (%v) vs screened %v (%v)",
				or.Worst.Targets, or.Worst.Delta, pr.Worst.Targets, pr.Worst.Delta)
		}
		if !reflect.DeepEqual(pr.Worst.Targets, or.Worst.Targets) || pr.Worst.Delta != or.Worst.Delta {
			t.Fatalf("screened worst %v (%v) != oracle %v (%v)",
				pr.Worst.Targets, pr.Worst.Delta, or.Worst.Targets, or.Worst.Delta)
		}
		if pr.Evaluated+pr.Pruned != or.Evaluated {
			t.Fatalf("screened covered %d+%d sets, oracle %d", pr.Evaluated, pr.Pruned, or.Evaluated)
		}
		if !pr.Monotone && pr.Pruned != 0 {
			t.Fatalf("non-monotone run pruned %d sets", pr.Pruned)
		}
	})
}
