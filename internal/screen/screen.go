// Package screen implements N-k contingency screening (ROADMAP item 5,
// after Tönges et al., arXiv:2506.09766): it enumerates outage combinations
// up to depth k over a candidate target list, prices each through the
// impact/solvecache/warm-start evaluation stack, and emits a deterministic
// vulnerability ranking — the worst contingency found, a bounded top list,
// and per-target scores — plus dominance certificates the adversary search
// can use to prune provably irrelevant candidates.
//
// # Dominance rule
//
// The screen's pruning rests on one LP fact. Let S be an outage set whose
// computed optimal dispatch is known, and let t be an additional target
// whose perturbations only *reduce capacities* of edges that carry zero
// flow in that dispatch. Then S's dispatch remains feasible for S∪{t}
// (zero flow satisfies any nonnegative capacity), and since capacity
// reduction only shrinks the feasible region, a point optimal over the
// larger region and feasible in the smaller one is optimal there too.
// S∪{t} therefore inherits S's welfare and flow support exactly — no solve
// needed — and the certificate chains transitively through pruned nodes.
//
// The rule is sound only when every candidate target is a monotone
// capacity reduction (Field == Capacity, 0 ≤ value ≤ base capacity) and no
// two targets touch the same edge (set union must equal sequential
// application). When any target violates this, pruning is disabled for the
// whole run — the screen degrades to reorder-only scoring (every set is
// evaluated; the `screen.reorder_only` counter records the downgrade) and
// no certificates are issued.
//
// # Determinism
//
// Enumeration is lexicographic over target indices and the worst-set
// incumbent only moves on strictly more damage beyond a fixed tolerance,
// so the ranking is a pure function of the inputs. Pruned sets inherit
// their ancestor's exact floats and, being equal in damage to that
// ancestor, can never displace the incumbent — which is why the reported
// Worst is bit-identical between pruned and unpruned runs (the differential
// battery in screen_test.go enforces this).
package screen

import (
	"errors"
	"fmt"
	"sort"

	"cpsguard/internal/impact"
	"cpsguard/internal/parallel"
)

// damageTol is the strict-improvement margin for the worst-set incumbent.
// It sits three orders of magnitude above the solver agreement tolerance
// (1e-9), so a re-solved dominated set — mathematically equal to its
// ancestor, numerically within solver noise — can never displace it.
const damageTol = 1e-6

// Config states one screening run.
type Config struct {
	// Analysis is the evaluation stack: graph, profit model, cache, warm
	// start, and LP method. Its Parallel options drive the per-level
	// fan-out.
	Analysis *impact.Analysis
	// Targets lists the candidate target IDs (default: every asset edge).
	Targets []string
	// Vector maps a target ID to the perturbations its attack applies
	// (default: the paper's capacity-zero outage).
	Vector func(id string) []impact.Perturbation
	// K is the maximum outage depth (minimum 1).
	K int
	// NoPrune disables dominance pruning: every enumerated set is
	// evaluated. Results are equivalent; this is the oracle mode the
	// differential tests compare against.
	NoPrune bool
	// Top bounds the retained worst-contingency list (default 10).
	Top int
	// MaxSets caps the total number of enumerated sets (evaluated +
	// pruned); 0 means unlimited. Truncation is lexicographic and
	// deterministic, and is reported via Ranking.Truncated.
	MaxSets int
}

// TargetScore is one target's depth-1 vulnerability score.
type TargetScore struct {
	ID string `json:"id"`
	// Delta is the welfare change of attacking this target alone (≤ 0 up
	// to LP tolerance).
	Delta float64 `json:"welfare_delta"`
	// CertifiedZero reports that the dominance rule proves this target's
	// perturbations cannot change the baseline optimum: monotone run, and
	// the target only touches edges with zero baseline flow. Certification
	// is independent of NoPrune, so screened and oracle runs agree on it.
	CertifiedZero bool `json:"certified_zero"`
}

// Contingency is one scored outage set.
type Contingency struct {
	// Targets holds the set's target IDs in candidate-index order.
	Targets []string `json:"targets"`
	// Delta is the set's welfare change against the baseline.
	Delta float64 `json:"welfare_delta"`
	// Inherited reports the value came from a dominating ancestor via the
	// pruning rule rather than a solve.
	Inherited bool `json:"inherited,omitempty"`
}

// Ranking is the screen's deterministic output.
type Ranking struct {
	K               int     `json:"k"`
	BaselineWelfare float64 `json:"baseline_welfare"`
	// Monotone reports whether the dominance rule applied; false means the
	// run degraded to reorder-only scoring and issued no certificates.
	Monotone bool `json:"monotone"`
	// Worst is the most damaging contingency found (always a genuinely
	// solved set; the empty set when nothing beats the baseline by more
	// than the tolerance).
	Worst Contingency `json:"worst"`
	// Top lists the worst contingencies, most damaging first (ties broken
	// lexicographically), bounded by Config.Top.
	Top []Contingency `json:"top"`
	// Targets holds every candidate's depth-1 score, most damaging first.
	Targets []TargetScore `json:"targets"`
	// Evaluated and Pruned count solved vs dominance-skipped sets.
	Evaluated int64 `json:"evaluated"`
	Pruned    int64 `json:"pruned"`
	// Truncated reports the MaxSets cap cut enumeration short.
	Truncated bool `json:"truncated,omitempty"`

	certified map[string]bool
}

// CertifiedZero reports whether the screen certified the target as unable
// to change the baseline optimum. Safe for concurrent use; a ranking
// decoded from JSON falls back to scanning the score list.
func (r *Ranking) CertifiedZero(id string) bool {
	if r == nil {
		return false
	}
	if r.certified != nil {
		return r.certified[id]
	}
	for i := range r.Targets {
		if r.Targets[i].ID == id {
			return r.Targets[i].CertifiedZero
		}
	}
	return false
}

// Order returns the candidate target IDs most damaging first — the
// vulnerability ordering consumers may use to prioritize hardening or
// heuristic search. The exact adversary search deliberately does not
// reorder by it (see DESIGN.md §17): it only drops certified-zero targets,
// because reordering equal-value candidates would change tie resolution.
func (r *Ranking) Order() []string {
	out := make([]string, len(r.Targets))
	for i := range r.Targets {
		out[i] = r.Targets[i].ID
	}
	return out
}

// node is one enumerated outage set, stored as (parent, appended target)
// against the previous level.
type node struct {
	last    int // candidate index appended at this level (-1 for the root)
	parent  int // index into the previous level (-1 for the root)
	delta   float64
	support []string // flow support of the set's optimal dispatch (nil = no certificate)
	inherit bool
}

// Run screens the configured scenario and returns its vulnerability
// ranking. Degenerate inputs (unknown edges, empty target lists, broken
// grids) return errors, never panic.
func Run(cfg Config) (*Ranking, error) {
	mRuns.Inc()
	if cfg.Analysis == nil {
		return nil, errors.New("screen: nil analysis")
	}
	k := cfg.K
	if k < 1 {
		k = 1
	}
	topN := cfg.Top
	if topN <= 0 {
		topN = 10
	}
	targets := cfg.Targets
	if targets == nil {
		targets = cfg.Analysis.Graph.AssetIDs()
	}
	if len(targets) == 0 {
		return nil, errors.New("screen: no candidate targets")
	}
	vector := cfg.Vector
	if vector == nil {
		vector = func(id string) []impact.Perturbation {
			return []impact.Perturbation{impact.Outage(id)}
		}
	}

	// Resolve each candidate's perturbation vector and edge footprint, and
	// decide monotonicity for the whole run: every perturbation must be a
	// capacity reduction within [0, base], and no edge may be shared
	// between two candidates.
	vecs := make([][]impact.Perturbation, len(targets))
	edges := make([]map[string]bool, len(targets))
	monotone := true
	edgeOwner := map[string]int{}
	for i, id := range targets {
		vecs[i] = vector(id)
		edges[i] = make(map[string]bool, len(vecs[i]))
		for _, p := range vecs[i] {
			e := cfg.Analysis.Graph.Edge(p.EdgeID)
			if e == nil {
				return nil, fmt.Errorf("screen: target %s perturbs unknown edge %q", id, p.EdgeID)
			}
			if p.Field != impact.Capacity || !(p.Value >= 0) || p.Value > e.Capacity {
				monotone = false
			}
			if prev, ok := edgeOwner[p.EdgeID]; ok && prev != i {
				monotone = false
			}
			edgeOwner[p.EdgeID] = i
			edges[i][p.EdgeID] = true
		}
	}

	ev, err := cfg.Analysis.NewEvaluator()
	if err != nil {
		return nil, err
	}
	prune := monotone && !cfg.NoPrune
	if !monotone {
		mReorderOnly.Inc()
	}

	r := &Ranking{
		K:               k,
		BaselineWelfare: ev.BaselineWelfare(),
		Monotone:        monotone,
		Worst:           Contingency{Targets: []string{}},
		certified:       make(map[string]bool, len(targets)),
	}
	baseSupport := ev.BaselineSupport()
	for i, id := range targets {
		r.certified[id] = monotone && baseSupport != nil && disjoint(edges[i], baseSupport)
	}

	worstDamage := 0.0
	var top topAcc

	prev := []node{{last: -1, parent: -1, delta: 0, support: baseSupport}}
	levels := [][]node{prev}
	for level := 1; level <= k && len(prev) > 0; level++ {
		var children []node
		for pi := range prev {
			for j := prev[pi].last + 1; j < len(targets); j++ {
				children = append(children, node{last: j, parent: pi})
			}
		}
		if cfg.MaxSets > 0 {
			budget := int64(cfg.MaxSets) - r.Evaluated - r.Pruned
			if budget < int64(len(children)) {
				if budget < 0 {
					budget = 0
				}
				children = children[:budget]
				r.Truncated = true
			}
		}
		if len(children) == 0 {
			break
		}

		// Prune decisions are sequential and cheap: a child inherits when
		// its appended target's edges are disjoint from the parent set's
		// flow support. Parent membership maps are built once per parent.
		supMaps := make([]map[string]bool, len(prev))
		pruned := make([]bool, len(children))
		for ci := range children {
			p := prev[children[ci].parent]
			if !prune || p.support == nil {
				continue
			}
			if supMaps[children[ci].parent] == nil {
				supMaps[children[ci].parent] = toSet(p.support)
			}
			pruned[ci] = disjointSet(edges[children[ci].last], supMaps[children[ci].parent])
		}

		solved, err := parallel.Map(len(children), cfg.Analysis.Parallel, func(ci int) (node, error) {
			c := children[ci]
			p := prev[c.parent]
			if pruned[ci] {
				return node{last: c.last, parent: c.parent, delta: p.delta, support: p.support, inherit: true}, nil
			}
			ps := setPerturbations(levels, level, c, vecs)
			dw, sup, err := ev.OfSupport(ps...)
			if err != nil {
				return node{}, fmt.Errorf("screen: set %v: %w", setIDs(levels, level, c, targets), err)
			}
			return node{last: c.last, parent: c.parent, delta: dw, support: sup}, nil
		})
		if err != nil {
			return nil, err
		}

		// Sequential, lexicographic accounting: counters, the worst-set
		// incumbent, the bounded top list, and depth-1 scores.
		for ci := range solved {
			n := solved[ci]
			if n.inherit {
				r.Pruned++
				mPruned.Inc()
			} else {
				r.Evaluated++
				mEvaluated.Inc()
			}
			ids := setIDs(levels, level, n, targets)
			damage := -n.delta
			if !n.inherit && damage > worstDamage+damageTol {
				worstDamage = damage
				r.Worst = Contingency{Targets: ids, Delta: n.delta}
			}
			top.add(Contingency{Targets: ids, Delta: n.delta, Inherited: n.inherit}, topN)
			if level == 1 {
				r.Targets = append(r.Targets, TargetScore{
					ID: targets[n.last], Delta: n.delta, CertifiedZero: r.certified[targets[n.last]],
				})
			}
		}
		levels = append(levels, solved)
		prev = solved
	}

	r.Top = top.list
	sort.SliceStable(r.Targets, func(a, b int) bool {
		da, db := -r.Targets[a].Delta, -r.Targets[b].Delta
		if da != db {
			return da > db
		}
		return r.Targets[a].ID < r.Targets[b].ID
	})
	return r, nil
}

// setIDs reconstructs a node's target IDs (candidate-index order) by
// walking the parent chain through the level table.
func setIDs(levels [][]node, level int, n node, targets []string) []string {
	idx := setIndices(levels, level, n)
	out := make([]string, len(idx))
	for i, t := range idx {
		out[i] = targets[t]
	}
	return out
}

func setIndices(levels [][]node, level int, n node) []int {
	idx := make([]int, level)
	cur := n
	for l := level; l >= 1; l-- {
		idx[l-1] = cur.last
		cur = levels[l-1][cur.parent]
	}
	return idx
}

func setPerturbations(levels [][]node, level int, n node, vecs [][]impact.Perturbation) []impact.Perturbation {
	var ps []impact.Perturbation
	for _, t := range setIndices(levels, level, n) {
		ps = append(ps, vecs[t]...)
	}
	return ps
}

func toSet(ids []string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func disjoint(set map[string]bool, list []string) bool {
	for _, id := range list {
		if set[id] {
			return false
		}
	}
	return true
}

func disjointSet(a, b map[string]bool) bool {
	for id := range a {
		if b[id] {
			return false
		}
	}
	return true
}

// topAcc maintains the bounded worst-contingency list, ordered by damage
// descending with lexicographic tie-breaks, so its contents are a pure
// function of the enumerated sets.
type topAcc struct {
	list []Contingency
}

func (t *topAcc) add(c Contingency, n int) {
	pos := sort.Search(len(t.list), func(i int) bool { return contingencyLess(c, t.list[i]) })
	if pos >= n {
		return
	}
	t.list = append(t.list, Contingency{})
	copy(t.list[pos+1:], t.list[pos:])
	t.list[pos] = c
	if len(t.list) > n {
		t.list = t.list[:n]
	}
}

// contingencyLess orders a before b: more damage first, then shorter sets,
// then lexicographic target IDs.
func contingencyLess(a, b Contingency) bool {
	if a.Delta != b.Delta {
		return a.Delta < b.Delta
	}
	if len(a.Targets) != len(b.Targets) {
		return len(a.Targets) < len(b.Targets)
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return a.Targets[i] < b.Targets[i]
		}
	}
	return false
}
