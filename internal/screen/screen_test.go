// The screen's correctness battery. Pruning soundness is the whole game,
// so the center of gravity is differential: every screened result is
// compared against an oracle that evaluates the full outage lattice
// (NoPrune), and the screened adversary search is compared bit-for-bit
// against the unscreened one.
package screen_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/graph"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
)

func loadGrids(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "grids", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no grid fixtures in testdata/grids")
	}
	grids := make(map[string]*graph.Graph, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var g graph.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		name := filepath.Base(p)
		grids[name[:len(name)-len(".json")]] = &g
	}
	return grids
}

// checkAdversaryBitIdentical runs the exact adversary search with and
// without the screen front-end for attack budgets covering 1–3 targets and
// requires bit-identical plans: same target set, same captured actors, same
// anticipated profit to the last bit.
func checkAdversaryBitIdentical(t *testing.T, label string, g *graph.Graph, own actors.Ownership, rank *screen.Ranking) {
	t.Helper()
	an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(4096)}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatalf("%s: matrix: %v", label, err)
	}
	targets := adversary.UniformTargets(g.AssetIDs(), 1, 1)
	for k := 1; k <= 3; k++ {
		base, err := adversary.Solve(adversary.Config{Matrix: m, Targets: targets, Budget: float64(k)})
		if err != nil {
			t.Fatalf("%s k=%d: unscreened: %v", label, k, err)
		}
		scr, err := adversary.Solve(adversary.Config{Matrix: m, Targets: targets, Budget: float64(k), Screen: rank})
		if err != nil {
			t.Fatalf("%s k=%d: screened: %v", label, k, err)
		}
		if !reflect.DeepEqual(base.Targets, scr.Targets) {
			t.Errorf("%s k=%d: screened targets %v != unscreened %v", label, k, scr.Targets, base.Targets)
		}
		if !reflect.DeepEqual(base.Actors, scr.Actors) {
			t.Errorf("%s k=%d: screened actors %v != unscreened %v", label, k, scr.Actors, base.Actors)
		}
		if base.Anticipated != scr.Anticipated {
			t.Errorf("%s k=%d: screened anticipated %v != unscreened %v (want bit-identical)",
				label, k, scr.Anticipated, base.Anticipated)
		}
	}
}

// checkScreenOracle runs the screen with pruning and against the NoPrune
// oracle (which evaluates every enumerated set) and requires: the reported
// worst contingency is bit-identical, and pruned + evaluated covers exactly
// the oracle's universe — no set silently vanishes.
func checkScreenOracle(t *testing.T, label string, an *impact.Analysis, targets []string, k int) *screen.Ranking {
	t.Helper()
	pr, err := screen.Run(screen.Config{Analysis: an, Targets: targets, K: k})
	if err != nil {
		t.Fatalf("%s k=%d: screened: %v", label, k, err)
	}
	or, err := screen.Run(screen.Config{Analysis: an, Targets: targets, K: k, NoPrune: true})
	if err != nil {
		t.Fatalf("%s k=%d: oracle: %v", label, k, err)
	}
	if !reflect.DeepEqual(pr.Worst.Targets, or.Worst.Targets) {
		t.Errorf("%s k=%d: screened worst %v != oracle %v", label, k, pr.Worst.Targets, or.Worst.Targets)
	}
	if pr.Worst.Delta != or.Worst.Delta {
		t.Errorf("%s k=%d: screened worst delta %v != oracle %v (want bit-identical)",
			label, k, pr.Worst.Delta, or.Worst.Delta)
	}
	if pr.BaselineWelfare != or.BaselineWelfare {
		t.Errorf("%s k=%d: baselines differ: %v vs %v", label, k, pr.BaselineWelfare, or.BaselineWelfare)
	}
	if or.Pruned != 0 {
		t.Errorf("%s k=%d: oracle pruned %d sets, want 0", label, k, or.Pruned)
	}
	if pr.Evaluated+pr.Pruned != or.Evaluated {
		t.Errorf("%s k=%d: screened covered %d+%d sets, oracle evaluated %d — enumeration universe differs",
			label, k, pr.Evaluated, pr.Pruned, or.Evaluated)
	}
	return pr
}

// TestScreenVsBruteForce is the differential proof: over every committed
// fixture grid and hundreds of seeded gridgen grids, (a) the screen with
// pruning reports the same worst contingency as the evaluate-everything
// oracle, and (b) the screened adversary search is bit-identical to
// exhaustive unscreened search for attack budgets k ∈ {1,2,3}.
func TestScreenVsBruteForce(t *testing.T) {
	pruneFired := telemetry.Default().Counter("adversary.screen_pruned").Value()

	grids := loadGrids(t)
	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	for _, name := range names {
		g := grids[name]
		t.Run("fixture/"+name, func(t *testing.T) {
			own := actors.RandomOwnership(g, 4, rng.New(42))
			an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(8192)}
			ids := g.AssetIDs()
			sub := ids
			if len(sub) > 10 {
				sub = sub[:10]
			}
			checkScreenOracle(t, name, an, sub, 2)
			rank := checkScreenOracle(t, name, an, nil, 1)
			checkAdversaryBitIdentical(t, name, g, own, rank)
		})
	}

	nGrids := 200
	if testing.Short() {
		nGrids = 25
	}
	t.Run("seeded", func(t *testing.T) {
		for i := 0; i < nGrids; i++ {
			seed := uint64(i + 1)
			g, err := gridgen.Build(gridgen.Config{
				Regions: 2 + i%3, Seed: seed, Stress: i%2 == 0,
			})
			if err != nil {
				t.Fatalf("grid %d: %v", i, err)
			}
			label := fmt.Sprintf("grid%03d", i)
			own := actors.RandomOwnership(g, 2+i%4, rng.New(seed^0x5C12EE))
			an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(8192)}
			rank := checkScreenOracle(t, label, an, nil, 1)
			if i%10 == 0 {
				ids := g.AssetIDs()
				sub := ids
				if len(sub) > 9 {
					sub = sub[:9]
				}
				checkScreenOracle(t, label, an, sub, 2)
				checkScreenOracle(t, label, an, sub[:min(len(sub), 7)], 3)
			}
			checkAdversaryBitIdentical(t, label, g, own, rank)
		}
	})

	// The filter front-end must have actually dropped candidates somewhere
	// in the battery — otherwise the bit-identity checks proved nothing
	// about pruning.
	if got := telemetry.Default().Counter("adversary.screen_pruned").Value(); got <= pruneFired {
		t.Errorf("adversary.screen_pruned did not advance over the battery (was %d, now %d)", pruneFired, got)
	}
}

// TestScreenNationalTierPrunes requires nonzero dominance pruning on a
// national-tier grid: the corridor families are generated as directed
// pairs, so at most one direction of each carries flow in an optimum and
// supersets of the idle direction are skipped.
func TestScreenNationalTierPrunes(t *testing.T) {
	if testing.Short() {
		t.Skip("national-tier screen is a long differential; run without -short")
	}
	g, err := gridgen.Build(gridgen.Config{Regions: 16, Seed: 3, Tier: gridgen.TierNational, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	var corridors []string
	for i := range g.Edges {
		id := g.Edges[i].ID
		if strings.HasPrefix(id, "tx:") || strings.HasPrefix(id, "pipe:") {
			corridors = append(corridors, id)
		}
		if len(corridors) == 24 {
			break
		}
	}
	if len(corridors) < 4 {
		t.Fatalf("national grid yielded only %d corridor edges", len(corridors))
	}
	own := actors.RandomOwnership(g, 6, rng.New(11))
	an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(8192)}
	rank := checkScreenOracle(t, "national", an, corridors, 2)
	if rank.Pruned == 0 {
		t.Errorf("national tier: screen.pruned is zero over %d corridor targets (evaluated %d)",
			len(corridors), rank.Evaluated)
	}
	if !rank.Monotone {
		t.Error("national tier: outage screening should be monotone")
	}
}

// TestScreenReorderOnlyOnNonMonotone locks the degradation contract: a
// candidate whose perturbation is not a capacity reduction disables pruning
// for the whole run (no certificates, nothing skipped) instead of pruning
// unsoundly.
func TestScreenReorderOnlyOnNonMonotone(t *testing.T) {
	grids := loadGrids(t)
	g := grids["westgrid_stressed"]
	if g == nil {
		t.Fatal("westgrid_stressed fixture missing")
	}
	own := actors.RandomOwnership(g, 3, rng.New(7))
	an := &impact.Analysis{Graph: g, Ownership: own}
	ids := g.AssetIDs()[:6]
	costly := ids[len(ids)-1]
	rank, err := screen.Run(screen.Config{
		Analysis: an, Targets: ids, K: 2,
		Vector: func(id string) []impact.Perturbation {
			if id == costly { // a cost manipulation is not a monotone capacity cut
				return []impact.Perturbation{{EdgeID: id, Field: impact.Cost, Value: 99}}
			}
			return []impact.Perturbation{impact.Outage(id)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rank.Monotone {
		t.Error("run with a cost perturbation reported Monotone=true")
	}
	if rank.Pruned != 0 {
		t.Errorf("non-monotone run pruned %d sets, want 0 (reorder-only)", rank.Pruned)
	}
	for _, s := range rank.Targets {
		if s.CertifiedZero {
			t.Errorf("non-monotone run certified %s as zero", s.ID)
		}
	}
}

// TestScreenDeterminism: two runs over fresh caches must produce deeply
// equal rankings — the ranking is a pure function of the inputs.
func TestScreenDeterminism(t *testing.T) {
	g, err := gridgen.Build(gridgen.Config{Regions: 3, Seed: 9, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	own := actors.RandomOwnership(g, 4, rng.New(3))
	run := func() *screen.Ranking {
		an := &impact.Analysis{Graph: g, Ownership: own, Cache: solvecache.New(4096)}
		r, err := screen.Run(screen.Config{Analysis: an, K: 2, Targets: g.AssetIDs()[:12]})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("two identical screen runs differ:\n%s\n%s", aj, bj)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
