// Telemetry instruments for the N-k screen. Evaluated vs pruned is the
// screen's effectiveness ratio: (evaluated+pruned)/evaluated is the
// candidate-reduction factor the bench report tracks.
package screen

import "cpsguard/internal/telemetry"

var (
	mRuns        = telemetry.NewCounter("screen.runs")
	mEvaluated   = telemetry.NewCounter("screen.evaluated")
	mPruned      = telemetry.NewCounter("screen.pruned")
	mReorderOnly = telemetry.NewCounter("screen.reorder_only")
)
