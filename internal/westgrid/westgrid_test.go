package westgrid

import (
	"math"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
)

func TestStructureMatchesPaper(t *testing.T) {
	g := Build(Options{})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(Hubs()); got != 12 {
		t.Fatalf("hubs = %d, want 12 (paper: 12 vertices)", got)
	}
	for _, h := range Hubs() {
		if g.Vertex(h) == nil {
			t.Fatalf("missing hub %s", h)
		}
	}
	// 18 corridors as directed pairs = 36 long-haul edges.
	if got := len(LongHaulAssets(g)); got != 36 {
		t.Fatalf("long-haul edges = %d, want 36 (18 corridors × 2 directions)", got)
	}
	// Paper: "12 actors ... 96 assets". Structure-level match: ~90±10.
	if n := len(g.Edges); n < 80 || n > 105 {
		t.Fatalf("asset count = %d, want ≈96", n)
	}
}

func TestUnstressedDispatchServesEverything(t *testing.T) {
	g := Build(Options{})
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Welfare <= 0 {
		t.Fatalf("welfare = %v, want positive", r.Welfare)
	}
	// With full capacity and average demand, nearly all demand is
	// profitable to serve.
	served := r.Served()
	total := g.TotalDemand()
	if served < 0.97*total {
		t.Fatalf("served %v of %v demand (%.1f%%)", served, total, 100*served/total)
	}
}

func TestStressedSpareCapacity(t *testing.T) {
	g := Build(Options{Stress: true})
	cap := ElectricCapacity(g)
	dem := ElectricDemand(g)
	spare := 1 - dem/cap
	// Paper: "about 15% spare capacity". Allow a generous band; the
	// point is scarcity without infeasibility.
	if spare < 0.05 || spare > 0.30 {
		t.Fatalf("stressed electric spare capacity = %.1f%%, want ≈15%%", 100*spare)
	}
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Welfare <= 0 {
		t.Fatalf("stressed welfare = %v", r.Welfare)
	}
	// Stressed system still serves the large majority of demand.
	if r.Served() < 0.85*g.TotalDemand() {
		t.Fatalf("stressed system serves only %.1f%%", 100*r.Served()/g.TotalDemand())
	}
}

func TestStressFactorsApplied(t *testing.T) {
	base := Build(Options{})
	stressed := Build(Options{Stress: true})
	if got := ElectricCapacity(stressed) / ElectricCapacity(base); math.Abs(got-StressCapacityFactor) > 1e-9 {
		t.Fatalf("capacity factor = %v, want %v", got, StressCapacityFactor)
	}
	if got := ElectricDemand(stressed) / ElectricDemand(base); math.Abs(got-StressDemandFactor) > 1e-9 {
		t.Fatalf("demand factor = %v, want %v", got, StressDemandFactor)
	}
}

func TestGasElectricCoupling(t *testing.T) {
	// Cutting all gas into CA must reduce CA's electric service or raise
	// system cost: the interdependency the paper models.
	g := Build(Options{Stress: true})
	r, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flow["g2e:CA"] <= 0 {
		t.Fatal("stressed CA should burn gas for power")
	}
	cut, err := impact.Apply(g, impact.Outage("g2e:CA"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := flow.Dispatch(cut)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Welfare >= r.Welfare {
		t.Fatalf("gas-electric decoupling should hurt welfare: %v vs %v", r2.Welfare, r.Welfare)
	}
}

func TestImportPricing(t *testing.T) {
	g := Build(Options{})
	for _, s := range []string{"WA", "CA", "UT"} {
		v := g.Vertex("gasimport:" + s)
		if v == nil {
			t.Fatalf("missing import vertex for %s", s)
		}
		want := data[s].gasPrice * (1 - ImportDiscount)
		if math.Abs(v.SupplyCost-want) > 1e-9 {
			t.Fatalf("%s import cost = %v, want %v (25%% below retail)", s, v.SupplyCost, want)
		}
	}
}

func TestLossesDistanceDerived(t *testing.T) {
	g := Build(Options{})
	// WA-OR is short; WA-UT is long. Losses must order accordingly for
	// both networks.
	short := g.Edge("pipe:WA-OR")
	long := g.Edge("pipe:WA-UT")
	if short == nil || long == nil {
		t.Fatal("missing pipeline edges")
	}
	if short.Loss >= long.Loss {
		t.Fatalf("pipeline losses not distance-ordered: %v vs %v", short.Loss, long.Loss)
	}
	if short.Loss <= 0 || long.Loss >= 0.2 {
		t.Fatalf("pipeline losses implausible: %v, %v", short.Loss, long.Loss)
	}
	ts, tl := g.Edge("tx:WA-OR"), g.Edge("tx:WA-UT")
	if ts.Loss >= tl.Loss {
		t.Fatalf("transmission losses not distance-ordered: %v vs %v", ts.Loss, tl.Loss)
	}
}

func TestCorridorsBidirectional(t *testing.T) {
	g := Build(Options{})
	for _, c := range elecCorridors {
		f := g.Edge("tx:" + c.a + "-" + c.b)
		b := g.Edge("tx:" + c.b + "-" + c.a)
		if f == nil || b == nil {
			t.Fatalf("corridor %s-%s missing a direction", c.a, c.b)
		}
		if f.Capacity != b.Capacity || f.Loss != b.Loss {
			t.Fatalf("corridor %s-%s asymmetric", c.a, c.b)
		}
	}
}

func TestAttacksCreateWinnersUnderCompetition(t *testing.T) {
	// End-to-end sanity on the real model: with several actors, some
	// single-asset outage produces a positive impact for someone.
	g := Build(Options{Stress: true})
	o := actors.RandomOwnership(g, 6, rng.New(42))
	an := &impact.Analysis{Graph: g, Ownership: o}
	m, err := an.ComputeMatrix(LongHaulAssets(g))
	if err != nil {
		t.Fatal(err)
	}
	gain, loss := m.GainLoss()
	if gain <= 0 {
		t.Fatalf("no attack gains found (gain=%v, loss=%v)", gain, loss)
	}
	if loss >= 0 {
		t.Fatalf("no attack losses found (loss=%v)", loss)
	}
	// Zero-sum column check on the real model.
	for _, target := range m.Targets {
		sum := 0.0
		for _, a := range m.Actors {
			sum += m.Get(a, target)
		}
		if math.Abs(sum-m.WelfareDelta[target]) > 1e-5*(1+math.Abs(m.WelfareDelta[target])) {
			t.Fatalf("target %s: Σ impacts %v ≠ Δwelfare %v", target, sum, m.WelfareDelta[target])
		}
	}
}

func TestAllKindsPresent(t *testing.T) {
	g := Build(Options{})
	kinds := map[graph.Kind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	for _, k := range []graph.Kind{
		graph.KindTransmission, graph.KindPipeline, graph.KindGeneration,
		graph.KindDistribution, graph.KindConversion, graph.KindImport,
	} {
		if kinds[k] == 0 {
			t.Fatalf("no edges of kind %s", k)
		}
	}
}
