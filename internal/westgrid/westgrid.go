// Package westgrid builds the experimental model of Section III-A: an
// interdependent natural-gas + electric system covering six western US
// states (WA, OR, CA, NV, AZ, UT), with one gas hub and one electric hub per
// state (the paper's 12 vertices), 18 long-haul interstate corridors (9 gas
// pipeline corridors + 9 electric transmission corridors, each modelled as a
// directed edge pair), per-state generation suites (nuclear, coal, hydro,
// solar, wind, geothermal), gas-fired generation as gas→electric conversion
// edges, out-of-model gas imports priced 25% below retail (the paper's
// transportation-cost allowance), and distance-derived losses (1% per 400 km
// for gas per FERC; ≈5% per 1000 km for electric transmission).
//
// The paper sources its numbers from EIA datasets we cannot redistribute;
// the quantities here are synthetic but proportioned from public knowledge
// of the region (California dominates demand; the Northwest is hydro-heavy;
// Utah exports coal power and produces gas; Arizona hosts the region's
// largest nuclear plant). Every experiment in the paper depends on the
// model's *structure* — hub count, corridor topology, asset count (~96),
// and the ~15% spare-capacity stress point — all of which are reproduced
// and asserted by tests.
//
// Units: energy in GWh/day (gas measured thermal-equivalent), prices and
// costs in $k/GWh (numerically equal to $/MWh).
package westgrid

import (
	"fmt"

	"cpsguard/internal/geo"
	"cpsguard/internal/graph"
)

// Options configures the build.
type Options struct {
	// Stress applies the paper's challenge adjustments: installed
	// electric generating capacity −25%, demand +65% (winter peak),
	// leaving ≈15% spare electric capacity.
	Stress bool
}

// StressCapacityFactor is the paper's 25% reduction of installed electric
// capacity ("to account for inoperable generators due to maintenance and
// climate").
const StressCapacityFactor = 0.75

// StressDemandFactor is the paper's 65% winter-peak demand increase.
const StressDemandFactor = 1.65

// genSource is one non-gas electric generation source in a state.
type genSource struct {
	name string
	cap  float64 // nameplate output, GWh/day
	cost float64 // marginal cost, $/MWh
}

// stateData holds the synthetic per-state quantities.
type stateData struct {
	elecDemand float64 // average daily demand, GWh/day
	elecPrice  float64 // retail electric price, $/MWh
	gasDemand  float64 // direct (non-power) gas demand, GWh-thermal/day
	gasPrice   float64 // retail gas price, $/MWh-thermal
	gasProd    float64 // in-state gas production capacity
	gasCost    float64 // in-state production cost
	gasImport  float64 // out-of-model import capacity
	gasFired   float64 // gas-fired electric generation capacity (output)
	gen        []genSource
}

// data is proportioned from EIA state profiles (see package comment).
var data = map[string]stateData{
	"WA": {
		elecDemand: 250, elecPrice: 90,
		gasDemand: 90, gasPrice: 32,
		gasImport: 750, gasFired: 105,
		gen: []genSource{
			{"hydro", 560, 6}, {"nuclear", 52, 22}, {"coal", 52, 26}, {"wind", 44, 1},
		},
	},
	"OR": {
		elecDemand: 130, elecPrice: 92,
		gasDemand: 70, gasPrice: 33,
		gasImport: 500, gasFired: 88,
		gen: []genSource{
			{"hydro", 315, 7}, {"wind", 52, 1}, {"coal", 26, 27}, {"solar", 14, 2},
		},
	},
	"CA": {
		elecDemand: 700, elecPrice: 120,
		gasDemand: 600, gasPrice: 38,
		gasProd: 105, gasCost: 18, gasImport: 1750, gasFired: 665,
		gen: []genSource{
			{"hydro", 140, 9}, {"nuclear", 192, 21}, {"solar", 210, 1},
			{"wind", 70, 2}, {"geothermal", 61, 15},
		},
	},
	"NV": {
		elecDemand: 100, elecPrice: 95,
		gasDemand: 80, gasPrice: 34,
		gasImport: 375, gasFired: 158,
		gen: []genSource{
			{"solar", 79, 1}, {"geothermal", 35, 14}, {"coal", 44, 28}, {"wind", 18, 1.5},
		},
	},
	"AZ": {
		elecDemand: 220, elecPrice: 98,
		gasDemand: 100, gasPrice: 35,
		gasImport: 500, gasFired: 193,
		gen: []genSource{
			{"nuclear", 158, 20}, {"coal", 140, 25}, {"solar", 105, 1},
		},
	},
	"UT": {
		elecDemand: 90, elecPrice: 88,
		gasDemand: 90, gasPrice: 30,
		gasProd: 210, gasCost: 16, gasImport: 250, gasFired: 70,
		gen: []genSource{
			{"coal", 175, 23}, {"solar", 26, 1}, {"hydro", 14, 8}, {"wind", 14, 1.5},
		},
	},
}

// corridor is one interstate link (built as a directed edge pair).
type corridor struct {
	a, b string
	cap  float64 // per-direction capacity, GWh/day
}

// elecCorridors are the 9 long-haul transmission corridors.
var elecCorridors = []corridor{
	{"WA", "OR", 220}, {"OR", "CA", 280}, {"CA", "NV", 160},
	{"CA", "AZ", 200}, {"NV", "AZ", 120}, {"NV", "UT", 110},
	{"UT", "AZ", 130}, {"OR", "NV", 90}, {"WA", "UT", 70},
}

// gasCorridors are the 9 long-haul pipeline corridors.
var gasCorridors = []corridor{
	{"WA", "OR", 300}, {"OR", "CA", 500}, {"UT", "NV", 350},
	{"NV", "CA", 450}, {"UT", "AZ", 300}, {"AZ", "CA", 500},
	{"AZ", "NV", 200}, {"OR", "NV", 150}, {"WA", "UT", 120},
}

// Conversion efficiency of gas-fired generation (thermal → electric): a
// combined-cycle heat-rate equivalent.
const gasToElecEfficiency = 0.52

// ImportDiscount prices imports 25% below the state's retail gas price,
// "allowing for transportation costs" (Section III-A2).
const ImportDiscount = 0.25

// Build constructs the model.
func Build(opts Options) *graph.Graph {
	g := graph.New("westgrid-6state")
	demandScale := 1.0
	capScale := 1.0
	if opts.Stress {
		demandScale = StressDemandFactor
		capScale = StressCapacityFactor
	}

	// Hubs and terminals.
	for _, s := range geo.States {
		d := data[s]
		c := geo.StateCentroids[s]
		g.MustAddVertex(graph.Vertex{ID: gasHub(s), Lat: c.Lat, Lon: c.Lon})
		g.MustAddVertex(graph.Vertex{ID: elecHub(s), Lat: c.Lat, Lon: c.Lon})
		g.MustAddVertex(graph.Vertex{
			ID: "gasload:" + s, Demand: d.gasDemand * demandScale, Price: d.gasPrice,
			Lat: c.Lat, Lon: c.Lon,
		})
		g.MustAddVertex(graph.Vertex{
			ID: "elecload:" + s, Demand: d.elecDemand * demandScale, Price: d.elecPrice,
			Lat: c.Lat, Lon: c.Lon,
		})
		g.MustAddVertex(graph.Vertex{
			ID: "gasimport:" + s, Supply: d.gasImport,
			SupplyCost: d.gasPrice * (1 - ImportDiscount),
			Lat:        c.Lat, Lon: c.Lon,
		})
		if d.gasProd > 0 {
			g.MustAddVertex(graph.Vertex{
				ID: "gaswell:" + s, Supply: d.gasProd, SupplyCost: d.gasCost,
				Lat: c.Lat, Lon: c.Lon,
			})
		}
		for _, src := range d.gen {
			g.MustAddVertex(graph.Vertex{
				ID:     "gen:" + s + ":" + src.name,
				Supply: src.cap * capScale, SupplyCost: src.cost,
				Lat: c.Lat, Lon: c.Lon,
			})
		}
	}

	// Terminal edges.
	for _, s := range geo.States {
		d := data[s]
		g.MustAddEdge(graph.Edge{
			ID: "gasimp:" + s, From: "gasimport:" + s, To: gasHub(s),
			Capacity: d.gasImport, Cost: 0.5, Kind: graph.KindImport,
		})
		if d.gasProd > 0 {
			g.MustAddEdge(graph.Edge{
				ID: "gasprod:" + s, From: "gaswell:" + s, To: gasHub(s),
				Capacity: d.gasProd, Cost: 0.3, Kind: graph.KindGeneration,
			})
		}
		g.MustAddEdge(graph.Edge{
			ID: "gasdist:" + s, From: gasHub(s), To: "gasload:" + s,
			Capacity: d.gasDemand * demandScale * 1.1, Loss: 0.01, Cost: 1,
			Kind: graph.KindDistribution,
		})
		g.MustAddEdge(graph.Edge{
			ID: "elecdist:" + s, From: elecHub(s), To: "elecload:" + s,
			Capacity: d.elecDemand * demandScale * 1.1, Loss: 0.02, Cost: 1.5,
			Kind: graph.KindDistribution,
		})
		// Gas-fired generation couples the systems: the conversion edge
		// draws thermal gas at the gas hub and delivers electricity.
		g.MustAddEdge(graph.Edge{
			ID: "g2e:" + s, From: gasHub(s), To: elecHub(s),
			Capacity: d.gasFired * capScale,
			Loss:     1 - gasToElecEfficiency,
			Cost:     4, Kind: graph.KindConversion,
		})
		for _, src := range d.gen {
			g.MustAddEdge(graph.Edge{
				ID:   "gen:" + s + ":" + src.name,
				From: "gen:" + s + ":" + src.name, To: elecHub(s),
				Capacity: src.cap * capScale, Cost: 0.2,
				Kind: graph.KindGeneration,
			})
		}
	}

	// Long-haul corridors (directed pairs) with distance-derived losses.
	for _, c := range elecCorridors {
		km := geo.Distance(geo.StateCentroids[c.a], geo.StateCentroids[c.b])
		loss := geo.TransmissionLoss(km)
		for _, dir := range [2][2]string{{c.a, c.b}, {c.b, c.a}} {
			g.MustAddEdge(graph.Edge{
				ID:   fmt.Sprintf("tx:%s-%s", dir[0], dir[1]),
				From: elecHub(dir[0]), To: elecHub(dir[1]),
				Capacity: c.cap, Loss: loss, Cost: 2,
				Kind: graph.KindTransmission,
			})
		}
	}
	for _, c := range gasCorridors {
		km := geo.Distance(geo.StateCentroids[c.a], geo.StateCentroids[c.b])
		loss := geo.PipelineLoss(km)
		for _, dir := range [2][2]string{{c.a, c.b}, {c.b, c.a}} {
			g.MustAddEdge(graph.Edge{
				ID:   fmt.Sprintf("pipe:%s-%s", dir[0], dir[1]),
				From: gasHub(dir[0]), To: gasHub(dir[1]),
				Capacity: c.cap, Loss: loss, Cost: 1,
				Kind: graph.KindPipeline,
			})
		}
	}
	return g
}

func gasHub(s string) string  { return "gas:" + s }
func elecHub(s string) string { return "elec:" + s }

// Hubs returns the 12 hub vertex IDs (the paper's 12 "points of
// competition").
func Hubs() []string {
	var out []string
	for _, s := range geo.States {
		out = append(out, gasHub(s), elecHub(s))
	}
	return out
}

// ElectricCapacity sums installed electric generating capacity (including
// gas-fired conversion capacity) in the built graph.
func ElectricCapacity(g *graph.Graph) float64 {
	t := 0.0
	for _, e := range g.Edges {
		if e.Kind == graph.KindGeneration && len(e.From) > 4 && e.From[:4] == "gen:" {
			t += e.Capacity
		}
		if e.Kind == graph.KindConversion {
			t += e.Capacity
		}
	}
	return t
}

// ElectricDemand sums electric consumer demand in the built graph.
func ElectricDemand(g *graph.Graph) float64 {
	t := 0.0
	for _, v := range g.Vertices {
		if len(v.ID) > 9 && v.ID[:9] == "elecload:" {
			t += v.Demand
		}
	}
	return t
}

// LongHaulAssets returns the IDs of the long-haul transmission and pipeline
// edges — the corridor assets depicted in the paper's Figure 1.
func LongHaulAssets(g *graph.Graph) []string {
	var out []string
	for _, e := range g.Edges {
		if e.Kind == graph.KindTransmission || e.Kind == graph.KindPipeline {
			out = append(out, e.ID)
		}
	}
	return out
}
