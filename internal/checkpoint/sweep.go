// Sweep: the bundle the experiment runners thread through every trial.
// Each trial flows replay → (watchdog ∘ retry ∘ run) → record, so a resumed
// sweep replays journaled trials instantly and re-runs only the remainder.
package checkpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"cpsguard/internal/obs"
	"cpsguard/internal/telemetry"
)

// TrialID keys a trial deterministically by (seed, experiment point, trial
// index). The point label already encodes the figure and parameter
// coordinates ("fig5 n=4 σ=0.2"), so the ID is stable across runs and
// human-greppable in the journal.
func TrialID(seed uint64, point string, trial int) string {
	return fmt.Sprintf("s%x|%s|t%d", seed, point, trial)
}

// TrialIndex recovers the trial index from an ID built by TrialID. The
// shard layer partitions and audits journals by this index, so the parse is
// strict: a malformed ID is an error, never a silent index 0.
func TrialIndex(id string) (int, error) {
	cut := strings.LastIndex(id, "|t")
	if cut < 0 {
		return 0, fmt.Errorf("checkpoint: trial ID %q has no |t<index> suffix", id)
	}
	idx, err := strconv.Atoi(id[cut+2:])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("checkpoint: trial ID %q has a malformed index", id)
	}
	return idx, nil
}

// Watchdog flags trials that exceed a per-trial wall-clock deadline and
// requeues them (default once) with a fresh deadline before they are
// recorded as failures. The zero value is disabled.
type Watchdog struct {
	// Deadline is the per-attempt wall-clock budget (0 = no watchdog).
	Deadline time.Duration
	// Requeues is the number of fresh-deadline re-runs after a flagged
	// timeout (default 1 when Deadline > 0).
	Requeues int
}

func (w Watchdog) requeues() int {
	if w.Requeues > 0 {
		return w.Requeues
	}
	return 1
}

// ReplayedFailure is the error returned for a trial whose failure was
// journaled in a previous run: the original error type is gone (only its
// message survives serialization), so resumed accounting wraps it here.
type ReplayedFailure struct {
	ID  string
	Msg string
}

// Error implements error.
func (e *ReplayedFailure) Error() string {
	return fmt.Sprintf("checkpoint: replayed failure %s: %s", e.ID, e.Msg)
}

// MissingTrialError is returned by RunTrial under RequireReplay for a trial
// no journal recorded — in a shard merge it means a seed-range gap (a shard
// never ran, or its journal lost the trial to a torn tail).
type MissingTrialError struct {
	ID string
}

// Error implements error.
func (e *MissingTrialError) Error() string {
	return fmt.Sprintf("checkpoint: trial %s not journaled (seed-range gap: no shard recorded it)", e.ID)
}

// Sweep couples a journal and its replay with the per-trial retry and
// watchdog policies. A nil Sweep is valid everywhere and means "run the
// trial directly" — callers thread it unconditionally.
type Sweep struct {
	// Journal, when non-nil, records every trial outcome as it settles.
	Journal *Journal
	// Replay, when non-nil, short-circuits trials journaled by a
	// previous run.
	Replay *Replay
	// RequireReplay, when set, fails any trial absent from Replay with a
	// *MissingTrialError instead of executing it. The shard-merge proof
	// runs in this mode: every trial must come from a shard journal, so a
	// seed-range gap surfaces as a hard error rather than a silent
	// re-computation that would mask lost work.
	RequireReplay bool
	// Retry re-attempts transient trial errors before they are recorded.
	Retry Retrier
	// Watchdog bounds per-trial wall-clock time.
	Watchdog Watchdog
	// Log, when non-nil, records replayed trials (debug) and watchdog
	// flags (warn) as structured events.
	Log *obs.Logger

	mu       sync.Mutex
	replayed int
	executed int
	flagged  []string
}

// Replayed reports how many trials were satisfied from the journal.
func (s *Sweep) Replayed() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// Executed reports how many trials actually ran (were not replayed).
func (s *Sweep) Executed() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed
}

// Flagged returns the IDs of trials the watchdog flagged for exceeding
// their deadline (each was requeued before being allowed to fail).
func (s *Sweep) Flagged() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.flagged...)
}

func (s *Sweep) noteReplayed(id string) {
	mReplayed.Inc()
	s.mu.Lock()
	s.replayed++
	s.mu.Unlock()
	s.Log.WithTrial(id).Debug("trial replayed from journal")
}

func (s *Sweep) noteExecuted() {
	mExecuted.Inc()
	s.mu.Lock()
	s.executed++
	s.mu.Unlock()
}

func (s *Sweep) noteFlagged(id string) {
	mWatchdogFlags.Inc()
	s.mu.Lock()
	s.flagged = append(s.flagged, id)
	s.mu.Unlock()
	s.Log.WithTrial(id).Warn("watchdog flagged trial, requeueing",
		obs.F("deadline", s.Watchdog.Deadline))
}

// RunTrial executes one trial under the sweep's policies:
//
//  1. A trial journaled by a previous run is replayed: its value decoded
//     (or its failure rewrapped as *ReplayedFailure) without running fn.
//  2. Otherwise fn runs under the watchdog deadline, transient errors
//     retried per the Retrier; a deadline trip that was the watchdog's
//     (not the parent context's) flags the trial and requeues it once
//     with a fresh deadline.
//  3. The outcome — success or post-retry failure — is appended to the
//     journal before being returned, so a kill after this point never
//     loses the trial. Cancellation is never journaled: an aborted trial
//     must re-run on resume.
//
// A nil Sweep runs fn(ctx) directly.
func RunTrial[T any](s *Sweep, ctx context.Context, id string, fn func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	if s == nil {
		return fn(ctx)
	}
	if rec, ok := s.Replay.Lookup(id); ok {
		s.noteReplayed(id)
		if !rec.OK {
			return zero, &ReplayedFailure{ID: id, Msg: rec.Error}
		}
		var v T
		if err := json.Unmarshal(rec.Value, &v); err != nil {
			return zero, fmt.Errorf("checkpoint: decode replayed trial %s: %w", id, err)
		}
		return v, nil
	}
	if s.RequireReplay {
		return zero, &MissingTrialError{ID: id}
	}
	s.noteExecuted()

	if ctx == nil {
		ctx = context.Background()
	}
	attempts := 1
	if s.Watchdog.Deadline > 0 {
		attempts = 1 + s.Watchdog.requeues()
	}
	var v T
	var err error
	for a := 0; a < attempts; a++ {
		v, err = Do(ctx, s.Retry, id, func() (T, error) {
			actx := ctx
			cancel := context.CancelFunc(func() {})
			if s.Watchdog.Deadline > 0 {
				actx, cancel = context.WithTimeout(ctx, s.Watchdog.Deadline)
			}
			defer cancel()
			return fn(actx)
		})
		if err != nil && errors.Is(err, context.DeadlineExceeded) &&
			ctx.Err() == nil && a < attempts-1 {
			s.noteFlagged(id) // watchdog trip, not the caller's deadline
			telemetry.SpanFromContext(ctx).AddDegradations("watchdog: deadline exceeded, requeued")
			continue
		}
		break
	}

	// Never journal a cancellation: those trials must re-run on resume.
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return zero, err
	}
	if err != nil {
		if jerr := s.Journal.Append(id, false, nil, err.Error()); jerr != nil {
			return zero, jerr
		}
		return zero, err
	}
	if jerr := s.Journal.Append(id, true, v, ""); jerr != nil {
		return zero, jerr
	}
	return v, nil
}
