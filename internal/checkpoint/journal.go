// Package checkpoint makes long Monte-Carlo sweeps crash-safe. It has three
// cooperating pieces:
//
//   - Journal: an append-only JSONL trial journal. Every completed (or
//     failed) trial of a sweep is appended as one line carrying a sequence
//     number and a CRC-32 so a process killed mid-write can never corrupt
//     earlier records — at worst the final line is torn, and Resume
//     truncates it away (via an atomic temp-file + fsync + rename rewrite)
//     before replaying the valid prefix.
//   - Retrier: capped exponential backoff with deterministic jitter and an
//     injectable sleeper, so transient solve errors are retried per-trial
//     before they count as failures.
//   - Watchdog/Sweep: a per-trial deadline that flags overlong trials and
//     requeues them once, and the Sweep bundle that the experiment runners
//     thread through every trial (replay → retry → record).
//
// Trials are keyed by a deterministic TrialID (seed, experiment point,
// trial index), and all trial randomness in this repository already derives
// from those same coordinates, so a resumed sweep — replaying journaled
// trials and re-running only the remainder — produces byte-identical output
// to an uninterrupted run.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"cpsguard/internal/atomicio"
)

// Record is one journaled trial outcome.
type Record struct {
	// Seq is the 1-based sequence number; Resume rejects (truncates at)
	// any record whose Seq breaks the run 1,2,3,...
	Seq uint64 `json:"seq"`
	// ID is the deterministic trial ID (see TrialID).
	ID string `json:"id"`
	// OK distinguishes a completed trial from one that failed after
	// exhausting its retries.
	OK bool `json:"ok"`
	// Value is the JSON-encoded trial result (nil for failed trials).
	// Go's float64 encoding uses the shortest representation that parses
	// back exactly, so numeric results round-trip bit-for-bit.
	Value json.RawMessage `json:"value,omitempty"`
	// Error is the failure message of a failed trial.
	Error string `json:"error,omitempty"`
}

// envelope is the on-disk line format: the CRC-32 (IEEE) of the verbatim
// Rec bytes, then the record itself. json.RawMessage preserves the exact
// bytes on decode, so verification needs no re-marshalling.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Options configures a Journal.
type Options struct {
	// NoSync skips the per-append fsync. A kill can then lose recently
	// appended records (they are re-run on resume) but still never
	// corrupts the journal. Benchmarks and tests use it.
	NoSync bool
	// Hook, when non-nil, is consulted at sites "checkpoint.append" and
	// "checkpoint.sync"; a returned error fails the operation.
	// Fault-injection tests arm this.
	Hook func(site string) error
}

// Journal is an append-only JSONL trial journal. Safe for concurrent use:
// trials finishing on parallel workers append under an internal lock, each
// record in a single write syscall followed (by default) by fsync.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
	opts Options
}

// Create starts a fresh journal at path, truncating any existing file and
// creating parent directories as needed.
func Create(path string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Journal{f: f, path: path, opts: opts}, nil
}

// Resume opens an existing journal for appending after replaying its valid
// prefix. A torn or corrupt tail — bad JSON, CRC mismatch, broken sequence
// run, or a final line without a newline — is truncated away by atomically
// rewriting the valid prefix (temp file + fsync + rename), never an error.
// A missing file starts an empty journal, so `-resume` is safe on first
// runs. The returned Replay answers "has this trial already run?".
func Resume(path string, opts Options) (*Journal, *Replay, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := Create(path, opts)
		if cerr == nil {
			mResumes.Inc()
		}
		return j, &Replay{records: map[string]Record{}}, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	rep, validLen := scan(data)
	if validLen < len(data) {
		rep.TruncatedBytes = len(data) - validLen
		mTruncatedB.Add(int64(rep.TruncatedBytes))
		if err := atomicio.WriteFile(path, data[:validLen], 0o644); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	mResumes.Inc()
	return &Journal{f: f, path: path, seq: rep.lastSeq, opts: opts}, rep, nil
}

// Load replays a journal read-only (no truncation, no writer): the valid
// prefix is returned and the corrupt tail, if any, only reported. Tools use
// it to inspect a journal without mutating it.
func Load(path string) (*Replay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	rep, validLen := scan(data)
	rep.TruncatedBytes = len(data) - validLen
	return rep, nil
}

// scan parses the longest valid prefix of data and returns its replay plus
// the prefix length in bytes.
func scan(data []byte) (*Replay, int) {
	rep := &Replay{records: map[string]Record{}}
	valid := 0
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 || nl > maxLine {
			break // torn final line (no newline made it to disk) or garbage
		}
		line := data[offset : offset+nl]
		rec, ok := decodeLine(line, rep.lastSeq+1)
		if !ok {
			break
		}
		rep.lastSeq = rec.Seq
		if _, dup := rep.records[rec.ID]; !dup {
			rep.order = append(rep.order, rec.ID)
		}
		rep.records[rec.ID] = rec
		offset += nl + 1
		valid = offset
	}
	return rep, valid
}

// decodeLine validates one journal line: JSON envelope, CRC over the
// verbatim record bytes, record JSON, and the expected sequence number.
func decodeLine(line []byte, wantSeq uint64) (Record, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, false
	}
	if rec.Seq != wantSeq || rec.ID == "" {
		return Record{}, false
	}
	return rec, true
}

// maxLine bounds a single journal line (1 MiB — trial values here are a
// handful of floats; anything bigger is corruption).
const maxLine = 1 << 20

// Append journals one trial outcome: value is JSON-encoded (pass nil for a
// failed trial), the record gets the next sequence number and its CRC, and
// the line is written in a single syscall then fsynced (unless NoSync).
func (j *Journal) Append(id string, ok bool, value any, errMsg string) (err error) {
	if j == nil {
		return nil
	}
	defer func() {
		if err != nil {
			mAppendErrors.Inc()
		} else {
			mAppends.Inc()
		}
	}()
	var raw json.RawMessage
	if ok {
		b, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("checkpoint: encode trial %s: %w", id, err)
		}
		raw = b
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.opts.Hook != nil {
		if err := j.opts.Hook("checkpoint.append"); err != nil {
			return fmt.Errorf("checkpoint: append %s: %w", id, err)
		}
	}
	rec := Record{Seq: j.seq + 1, ID: id, OK: ok, Value: raw, Error: errMsg}
	recBytes, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: encode record %s: %w", id, err)
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(recBytes), Rec: recBytes})
	if err != nil {
		return fmt.Errorf("checkpoint: encode envelope %s: %w", id, err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: append %s: %w", id, err)
	}
	if !j.opts.NoSync {
		if j.opts.Hook != nil {
			if err := j.opts.Hook("checkpoint.sync"); err != nil {
				return fmt.Errorf("checkpoint: sync %s: %w", id, err)
			}
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: sync %s: %w", id, err)
		}
	}
	j.seq = rec.Seq
	return nil
}

// Seq reports the sequence number of the last appended record.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Path reports the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close fsyncs and closes the journal file. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if !j.opts.NoSync {
		j.f.Sync()
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Replay is the valid prefix of a resumed journal, indexed by trial ID.
type Replay struct {
	records map[string]Record
	order   []string
	lastSeq uint64
	// TruncatedBytes counts the torn/corrupt tail bytes dropped by Resume
	// (0 for a cleanly closed journal).
	TruncatedBytes int
}

// Lookup returns the journaled record for a trial ID. Nil-safe.
func (r *Replay) Lookup(id string) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	rec, ok := r.records[id]
	return rec, ok
}

// Len reports the number of distinct journaled trials.
func (r *Replay) Len() int {
	if r == nil {
		return 0
	}
	return len(r.records)
}

// IDs returns the journaled trial IDs in first-appearance order.
func (r *Replay) IDs() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.order...)
}

// MergeReplays unions independent shard replays into one. A trial ID
// present in more than one replay is an error — shards partition the trial
// space, so a duplicate means two shards ran overlapping seed ranges and
// one of them must be discarded, a decision no merge should make silently.
// Order within each replay is preserved; replays are concatenated in
// argument order. Sequence numbers are per-shard coordinates and carry no
// meaning in the union.
func MergeReplays(reps ...*Replay) (*Replay, error) {
	merged := &Replay{records: map[string]Record{}}
	for ri, rep := range reps {
		if rep == nil {
			continue
		}
		for _, id := range rep.order {
			if _, dup := merged.records[id]; dup {
				return nil, fmt.Errorf("checkpoint: trial %s journaled by more than one shard (overlapping seed ranges, duplicate found in replay %d)", id, ri)
			}
			merged.records[id] = rep.records[id]
			merged.order = append(merged.order, id)
		}
	}
	return merged, nil
}
