package checkpoint

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestRunTrialNilSweep(t *testing.T) {
	v, err := RunTrial(nil, context.Background(), "id", func(ctx context.Context) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("RunTrial(nil) = %v, %v", v, err)
	}
}

func TestRunTrialRecordsAndReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := &Sweep{Journal: j}
	type out struct{ A, B float64 }
	want := out{A: 1.0 / 3.0, B: -0.7}
	ran := 0
	run := func(s *Sweep) (out, error) {
		return RunTrial(s, context.Background(), "t0", func(ctx context.Context) (out, error) {
			ran++
			return want, nil
		})
	}
	if v, err := run(s); err != nil || v != want {
		t.Fatalf("first run = %v, %v", v, err)
	}
	if _, err := RunTrial(s, context.Background(), "t1", func(ctx context.Context) (out, error) {
		ran++
		return out{}, errors.New("organic failure")
	}); err == nil {
		t.Fatal("failed trial returned nil error")
	}
	j.Close()
	if ran != 2 || s.Executed() != 2 || s.Replayed() != 0 {
		t.Fatalf("ran=%d executed=%d replayed=%d", ran, s.Executed(), s.Replayed())
	}

	// Resume: both trials replay without executing.
	j2, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := &Sweep{Journal: j2, Replay: rep}
	v, err := run(s2)
	if err != nil || v != want {
		t.Fatalf("replayed run = %v, %v", v, err)
	}
	_, err = RunTrial(s2, context.Background(), "t1", func(ctx context.Context) (out, error) {
		ran++
		return out{}, nil
	})
	var rf *ReplayedFailure
	if !errors.As(err, &rf) || rf.Msg != "organic failure" {
		t.Fatalf("replayed failure = %v", err)
	}
	if ran != 2 || s2.Replayed() != 2 || s2.Executed() != 0 {
		t.Fatalf("after replay: ran=%d replayed=%d executed=%d", ran, s2.Replayed(), s2.Executed())
	}
}

func TestRunTrialRetriesTransientBeforeFailing(t *testing.T) {
	s := &Sweep{Retry: Retrier{MaxRetries: 3, Sleep: (&fakeClock{}).sleep}}
	attempts := 0
	v, err := RunTrial(s, context.Background(), "t", func(ctx context.Context) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, errFlaky
		}
		return 9, nil
	})
	if err != nil || v != 9 || attempts != 3 {
		t.Fatalf("v=%v err=%v attempts=%d", v, err, attempts)
	}
}

func TestRunTrialWatchdogFlagsAndRequeues(t *testing.T) {
	s := &Sweep{Watchdog: Watchdog{Deadline: 20 * time.Millisecond}}
	attempt := 0
	v, err := RunTrial(s, context.Background(), "slow", func(ctx context.Context) (int, error) {
		attempt++
		if attempt == 1 {
			<-ctx.Done() // overruns the per-trial deadline
			return 0, ctx.Err()
		}
		return 5, nil
	})
	if err != nil || v != 5 {
		t.Fatalf("requeued trial = %v, %v", v, err)
	}
	if got := s.Flagged(); len(got) != 1 || got[0] != "slow" {
		t.Fatalf("Flagged() = %v, want [slow]", got)
	}
}

func TestRunTrialWatchdogRespectsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Sweep{Watchdog: Watchdog{Deadline: time.Minute}}
	attempt := 0
	_, err := RunTrial(s, ctx, "t", func(tctx context.Context) (int, error) {
		attempt++
		cancel()
		<-tctx.Done()
		return 0, tctx.Err()
	})
	if attempt != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempt=%d err=%v — parent cancellation was requeued", attempt, err)
	}
}

func TestRunTrialNeverJournalsCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := &Sweep{Journal: j}
	_, err = RunTrial(s, context.Background(), "c", func(ctx context.Context) (int, error) {
		return 0, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	j.Close()
	rep, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("canceled trial was journaled: %v", rep.IDs())
	}
}

func TestTrialIDDeterministic(t *testing.T) {
	a := TrialID(1, "fig5 n=4 σ=0.2", 3)
	if b := TrialID(1, "fig5 n=4 σ=0.2", 3); a != b {
		t.Fatalf("TrialID not deterministic: %q vs %q", a, b)
	}
	if TrialID(2, "fig5 n=4 σ=0.2", 3) == a || TrialID(1, "fig5 n=4 σ=0.2", 4) == a {
		t.Fatal("TrialID does not separate seed/trial coordinates")
	}
}
