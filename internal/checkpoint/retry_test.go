package checkpoint

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock records requested sleeps without sleeping.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.slept = append(c.slept, d)
	return ctx.Err()
}

var errFlaky = errors.New("flaky")

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	clock := &fakeClock{}
	r := Retrier{MaxRetries: 5, BaseDelay: 10 * time.Millisecond, Jitter: -1, Sleep: clock.sleep}
	attempts := 0
	v, err := Do(context.Background(), r, "trial", func() (int, error) {
		attempts++
		if attempts < 4 {
			return 0, errFlaky
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	// Backoff schedule without jitter: base, 2·base, 4·base.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i := range want {
		if clock.slept[i] != want[i] {
			t.Fatalf("slept[%d] = %v, want %v", i, clock.slept[i], want[i])
		}
	}
}

func TestRetryBackoffCap(t *testing.T) {
	r := Retrier{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond,
		35 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond,
	}
	for a, w := range want {
		if got := r.Backoff("k", a); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", a, got, w)
		}
	}
}

func TestRetryJitterBoundsAndDeterminism(t *testing.T) {
	r := Retrier{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Hour, Jitter: 0.5, Seed: 11}
	for a := 0; a < 8; a++ {
		raw := 100 * time.Millisecond << uint(a)
		d := r.Backoff("trial-x", a)
		lo, hi := time.Duration(float64(raw)*0.75), time.Duration(float64(raw)*1.25)
		if d < lo || d >= hi {
			t.Fatalf("Backoff(%d) = %v outside jitter bounds [%v, %v)", a, d, lo, hi)
		}
		if d2 := r.Backoff("trial-x", a); d2 != d {
			t.Fatalf("jitter not deterministic: %v vs %v", d, d2)
		}
	}
	// Different keys decorrelate the schedule.
	same := 0
	for a := 0; a < 8; a++ {
		if r.Backoff("trial-x", a) == r.Backoff("trial-y", a) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("jitter identical across keys; per-trial decorrelation is vacuous")
	}
}

func TestRetryDefaultJitterOn(t *testing.T) {
	r := Retrier{BaseDelay: 100 * time.Millisecond, Seed: 3}
	varied := false
	for a := 0; a < 4; a++ {
		raw := 100 * time.Millisecond << uint(a)
		if raw > r.maxDelay() {
			raw = r.maxDelay()
		}
		if r.Backoff("k", a) != raw {
			varied = true
		}
	}
	if !varied {
		t.Fatal("zero-value Jitter produced an unjittered schedule")
	}
}

func TestRetryNeverRetriesCancellation(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		clock := &fakeClock{}
		r := Retrier{MaxRetries: 5, Sleep: clock.sleep}
		attempts := 0
		_, err := Do(context.Background(), r, "t", func() (int, error) {
			attempts++
			return 0, cause
		})
		if !errors.Is(err, cause) {
			t.Fatalf("err = %v, want %v", err, cause)
		}
		if attempts != 1 || len(clock.slept) != 0 {
			t.Fatalf("%v: attempts=%d slept=%v — cancellation was retried", cause, attempts, clock.slept)
		}
	}
}

func TestRetryWrappedCancellationNotRetried(t *testing.T) {
	attempts := 0
	r := Retrier{MaxRetries: 3, Sleep: (&fakeClock{}).sleep}
	wrapped := errors.Join(errors.New("solve aborted"), context.Canceled)
	_, err := Do(context.Background(), r, "t", func() (int, error) {
		attempts++
		return 0, wrapped
	})
	if attempts != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempts=%d err=%v — wrapped cancellation was retried", attempts, err)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	clock := &fakeClock{}
	r := Retrier{MaxRetries: 2, Sleep: clock.sleep}
	attempts := 0
	_, err := Do(context.Background(), r, "t", func() (int, error) {
		attempts++
		return 0, errFlaky
	})
	if !errors.Is(err, errFlaky) || attempts != 3 {
		t.Fatalf("attempts=%d err=%v, want 3 attempts ending in errFlaky", attempts, err)
	}
}

func TestRetryContextCanceledBeforeAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Retrier{MaxRetries: 5, Sleep: (&fakeClock{}).sleep}
	attempts := 0
	_, err := Do(ctx, r, "t", func() (int, error) {
		attempts++
		return 0, errFlaky
	})
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempts=%d err=%v, want 0 attempts and Canceled", attempts, err)
	}
}

func TestRetryCanceledMidBackoffSurfacesTrialError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retrier{MaxRetries: 5, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	attempts := 0
	_, err := Do(ctx, r, "t", func() (int, error) {
		attempts++
		return 0, errFlaky
	})
	if attempts != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestRetryZeroValueSingleAttempt(t *testing.T) {
	attempts := 0
	var r Retrier
	_, err := Do(context.Background(), r, "t", func() (int, error) {
		attempts++
		return 0, errFlaky
	})
	if attempts != 1 || !errors.Is(err, errFlaky) {
		t.Fatalf("zero-value Retrier: attempts=%d err=%v", attempts, err)
	}
}
