package checkpoint

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// journalBytes builds a valid journal of n records for seeding the fuzzer.
func journalBytes(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		rec := Record{Seq: uint64(i + 1), ID: TrialID(1, "fuzz", i), OK: i%2 == 0,
			Value: json.RawMessage(`{"v":1.5}`)}
		if !rec.OK {
			rec.Value, rec.Error = nil, "boom"
		}
		recBytes, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(recBytes), Rec: recBytes})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// FuzzReadJournal hammers the journal scanner with arbitrary bytes — torn
// tails, flipped CRCs, sequence gaps, binary garbage — and checks the
// crash-safety contract: never panic, never claim more valid bytes than
// exist, never accept a record that fails re-validation, and always accept
// exactly the longest valid prefix (re-scanning the reported prefix must
// reproduce the same replay).
func FuzzReadJournal(f *testing.F) {
	valid := journalBytes(f, 3)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage\n"))
	// Torn tail: valid prefix plus a half-written line with no newline.
	f.Add(append(append([]byte{}, valid...), []byte(`{"crc":123,"rec":{"seq`)...))
	// CRC flip: corrupt one byte inside the second record.
	flipped := append([]byte{}, valid...)
	if i := bytes.Index(flipped[1:], []byte(`"id"`)); i > 0 {
		flipped[i+len(flipped)/2] ^= 0x40
	}
	f.Add(flipped)
	// Sequence gap: records 1 then 3.
	one := journalBytes(f, 1)
	three := journalBytes(f, 3)
	gap := append(append([]byte{}, one...), three[2*len(three)/3:]...)
	f.Add(gap)

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, validLen := scan(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if validLen > 0 && data[validLen-1] != '\n' {
			t.Fatalf("valid prefix does not end at a line boundary (byte %q)", data[validLen-1])
		}
		// Idempotence: scanning the accepted prefix accepts all of it and
		// reproduces the same records.
		rep2, validLen2 := scan(data[:validLen])
		if validLen2 != validLen {
			t.Fatalf("re-scan of valid prefix kept %d of %d bytes", validLen2, validLen)
		}
		if rep2.Len() != rep.Len() || rep2.lastSeq != rep.lastSeq {
			t.Fatalf("re-scan diverged: %d/%d records, seq %d/%d",
				rep2.Len(), rep.Len(), rep2.lastSeq, rep.lastSeq)
		}
		// Every accepted record must re-validate: sequence run 1..lastSeq
		// over the lines of the prefix, CRC intact, non-empty ID.
		lines := bytes.Split(data[:validLen], []byte("\n"))
		lines = lines[:len(lines)-1] // trailing empty split after final \n
		if uint64(len(lines)) != rep.lastSeq {
			t.Fatalf("%d accepted lines but lastSeq %d", len(lines), rep.lastSeq)
		}
		for i, line := range lines {
			rec, ok := decodeLine(line, uint64(i+1))
			if !ok {
				t.Fatalf("accepted line %d fails re-validation: %q", i, line)
			}
			if rec.ID == "" {
				t.Fatalf("accepted record %d has empty ID", i)
			}
		}
	})
}
