// Retrier: capped exponential backoff with deterministic jitter for
// transient per-trial failures. Cancellation is never retried — a fired
// context must abort a sweep immediately, not after a backoff schedule.
package checkpoint

import (
	"context"
	"errors"
	"hash/fnv"
	"time"

	"cpsguard/internal/obs"
	"cpsguard/internal/rng"
	"cpsguard/internal/telemetry"
)

// Retrier retries transient errors with capped exponential backoff. The
// zero value performs no retries (one attempt, no sleeping), so it can be
// embedded unconditionally.
type Retrier struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (total attempts = MaxRetries+1). 0 disables retrying.
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay multiplicatively: the slept duration is
	// delay·(1 − Jitter/2 + Jitter·u) for a deterministic u ∈ [0,1), so
	// the mean is unchanged and the bounds are ±Jitter/2. Default 0.5;
	// set negative to disable jitter entirely.
	Jitter float64
	// Seed drives the jitter deterministically: the u for (key, attempt)
	// is a pure function of (Seed, key, attempt), so a replayed sweep
	// backs off identically.
	Seed uint64
	// Retryable decides whether an error is transient. The default
	// retries everything except context.Canceled/DeadlineExceeded;
	// cancellation is never retried even if a custom Retryable says yes.
	Retryable func(error) bool
	// Sleep is the injectable sleeper (default: timer that aborts early
	// when ctx fires). Tests install a fake clock here.
	Sleep func(ctx context.Context, d time.Duration) error
	// Log, when non-nil, records every granted retry as a structured
	// warn event keyed by the trial ID.
	Log *obs.Logger
}

func (r Retrier) baseDelay() time.Duration {
	if r.BaseDelay > 0 {
		return r.BaseDelay
	}
	return 10 * time.Millisecond
}

func (r Retrier) maxDelay() time.Duration {
	if r.MaxDelay > 0 {
		return r.MaxDelay
	}
	return 2 * time.Second
}

func (r Retrier) jitter() float64 {
	switch {
	case r.Jitter < 0:
		return 0
	case r.Jitter == 0:
		return 0.5
	default:
		return r.Jitter
	}
}

func (r Retrier) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if r.Retryable != nil {
		return r.Retryable(err)
	}
	return true
}

func (r Retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.Sleep != nil {
		return r.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Backoff returns the delay slept before retry attempt (0-based): the
// capped exponential BaseDelay·2^attempt, jittered deterministically from
// (Seed, key, attempt). Exported so tests and operators can inspect the
// exact schedule a trial will follow.
func (r Retrier) Backoff(key string, attempt int) time.Duration {
	raw := r.baseDelay()
	max := r.maxDelay()
	for i := 0; i < attempt && raw < max; i++ {
		raw *= 2
	}
	if raw > max {
		raw = max
	}
	j := r.jitter()
	if j == 0 {
		return raw
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	u := rng.Derive(r.Seed^h.Sum64()^0xB0FF, uint64(attempt)).Float64()
	return time.Duration(float64(raw) * (1 - j/2 + j*u))
}

// Do runs fn under the retry policy: up to MaxRetries re-attempts, backing
// off between attempts, keyed so distinct trials jitter independently. The
// context is checked before every attempt; cancellation (from the context
// or reported by fn) is returned immediately and never retried. The error
// of the final attempt is returned.
func Do[T any](ctx context.Context, r Retrier, key string, fn func() (T, error)) (T, error) {
	var zero T
	var lastErr error
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if lastErr != nil {
					return zero, lastErr
				}
				return zero, err
			}
		}
		v, err := fn()
		if err == nil {
			return v, nil
		}
		lastErr = err
		if attempt >= r.MaxRetries || !r.retryable(err) {
			return zero, err
		}
		sctx := ctx
		if sctx == nil {
			sctx = context.Background()
		}
		backoff := r.Backoff(key, attempt)
		if serr := r.sleep(sctx, backoff); serr != nil {
			return zero, err // canceled mid-backoff: surface the trial error
		}
		mRetries.Inc()
		// The active trial span (threaded via ctx) accounts the retry.
		telemetry.SpanFromContext(ctx).AddRetries(1)
		r.Log.WithTrial(key).Warn("retrying after transient failure",
			obs.F("attempt", attempt+1), obs.F("backoff", backoff), obs.F("err", err))
	}
}

// DoErr is Do for value-less operations.
func (r Retrier) DoErr(ctx context.Context, key string, fn func() error) error {
	_, err := Do(ctx, r, key, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}
