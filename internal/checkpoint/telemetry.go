// Telemetry instruments for the crash-safety layer: journal traffic, resume
// replays, retry/watchdog activity. On a clean seeded sweep every one of
// these is a pure function of the configuration, so they belong to the
// deterministic snapshot sections.
package checkpoint

import "cpsguard/internal/telemetry"

var (
	mAppends       = telemetry.NewCounter("checkpoint.journal_appends")
	mAppendErrors  = telemetry.NewCounter("checkpoint.journal_append_errors")
	mResumes       = telemetry.NewCounter("checkpoint.resumes")
	mTruncatedB    = telemetry.NewCounter("checkpoint.truncated_bytes")
	mReplayed      = telemetry.NewCounter("checkpoint.trials_replayed")
	mExecuted      = telemetry.NewCounter("checkpoint.trials_executed")
	mRetries       = telemetry.NewCounter("checkpoint.retries")
	mWatchdogFlags = telemetry.NewCounter("checkpoint.watchdog_flags")
)
