package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cpsguard/internal/faultinject"
)

type val struct {
	Gain float64 `json:"gain"`
	Loss float64 `json:"loss"`
}

func writeJournal(t *testing.T, path string, n int) {
	t.Helper()
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := TrialID(1, "fig2 n=4", i)
		if err := j.Append(id, true, val{Gain: float64(i) + 0.125, Loss: -float64(i)}, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	writeJournal(t, path, 5)

	j, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rep.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", rep.TruncatedBytes)
	}
	if rep.Len() != 5 {
		t.Fatalf("replayed %d records, want 5", rep.Len())
	}
	for i := 0; i < 5; i++ {
		rec, ok := rep.Lookup(TrialID(1, "fig2 n=4", i))
		if !ok || !rec.OK {
			t.Fatalf("trial %d missing or failed: %+v", i, rec)
		}
		var v val
		if err := json.Unmarshal(rec.Value, &v); err != nil {
			t.Fatal(err)
		}
		if v.Gain != float64(i)+0.125 || v.Loss != -float64(i) {
			t.Fatalf("trial %d decoded %+v", i, v)
		}
	}
	// Appends after resume continue the sequence.
	if err := j.Append("extra", true, val{}, ""); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 6 {
		t.Fatalf("seq after resume+append = %d, want 6", j.Seq())
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	writeJournal(t, path, 4)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn record with no trailing newline.
	in := faultinject.New(42)
	torn := in.Tear("tail", []byte(`{"crc":123,"rec":{"seq":5,"id":"x","ok":true}}`+"\n"))
	if err := os.WriteFile(path, append(append([]byte{}, clean...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	j, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatalf("torn tail must not fail resume: %v", err)
	}
	defer j.Close()
	if rep.TruncatedBytes != len(torn) {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(torn))
	}
	if rep.Len() != 4 {
		t.Fatalf("replayed %d records, want 4", rep.Len())
	}
	// The file itself was rewritten back to the valid prefix.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(clean) {
		t.Fatalf("file not truncated to valid prefix: %d vs %d bytes", len(got), len(clean))
	}
}

func TestJournalCorruptMiddleTruncatesFromThere(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	writeJournal(t, path, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside record 3's payload: its CRC no longer matches.
	bad := []byte(lines[2])
	bad[len(bad)/2] ^= 0x20
	lines[2] = string(bad)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	j, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rep.Len() != 2 {
		t.Fatalf("replayed %d records, want 2 (everything after the corrupt record dropped)", rep.Len())
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
}

func TestJournalSequenceBreakTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	writeJournal(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Drop line 2: line 3 now carries seq 3 after seq 1 — a broken run.
	mangled := lines[0] + lines[2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 1 {
		t.Fatalf("replayed %d records, want 1", rep.Len())
	}
}

func TestResumeMissingFileStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "dir", "sweep.journal")
	j, rep, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rep.Len() != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh resume replay = %d records, %d truncated", rep.Len(), rep.TruncatedBytes)
	}
	if err := j.Append("a", true, 1.5, ""); err != nil {
		t.Fatal(err)
	}
}

func TestJournalFailedTrialRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("bad", false, nil, "solver exploded"); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := rep.Lookup("bad")
	if !ok || rec.OK || rec.Error != "solver exploded" {
		t.Fatalf("failed record = %+v", rec)
	}
}

func TestJournalAppendHookFault(t *testing.T) {
	in := faultinject.New(7).Arm("checkpoint.append", faultinject.Error, 1)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, Options{Hook: in.Hook})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append("a", true, 1.0, ""); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(TrialID(9, "concurrent", i), true, float64(i), ""); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	rep, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 32 || rep.TruncatedBytes != 0 {
		t.Fatalf("replayed %d records (%d truncated), want 32 clean", rep.Len(), rep.TruncatedBytes)
	}
}
