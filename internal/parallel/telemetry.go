// Telemetry instruments for the worker pool. Task and pool counts are
// deterministic; queue waits and task/pool durations are wall-clock and land
// in the snapshot's separate "timings" section. Worker utilisation is derived
// from them as sum(task_ns) / (workers × pool_ns).
package parallel

import "cpsguard/internal/telemetry"

var (
	mPools      = telemetry.NewCounter("parallel.pools")
	mTasks      = telemetry.NewCounter("parallel.tasks")
	mTaskErrors = telemetry.NewCounter("parallel.task_errors")
	mTaskPanics = telemetry.NewCounter("parallel.task_panics")
	mSkipped    = telemetry.NewCounter("parallel.tasks_skipped")
	mWorkers    = telemetry.NewCounter("parallel.worker_starts")

	tQueueWait = telemetry.NewTiming("parallel.queue_wait_ns")
	tTask      = telemetry.NewTiming("parallel.task_ns")
	tPool      = telemetry.NewTiming("parallel.pool_ns")
)
