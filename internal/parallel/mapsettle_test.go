package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestMapSettleNoFailFast(t *testing.T) {
	bad := errors.New("bad trial")
	results, errs, ctxErr := MapSettle(10, Options{Workers: 3},
		func(ctx context.Context, i int) (int, error) {
			if i%3 == 0 {
				return 0, bad
			}
			return i * i, nil
		})
	if ctxErr != nil {
		t.Fatalf("ctxErr = %v", ctxErr)
	}
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			if !errors.Is(errs[i], bad) {
				t.Errorf("errs[%d] = %v, want bad", i, errs[i])
			}
		} else {
			if errs[i] != nil || results[i] != i*i {
				t.Errorf("task %d: result %d err %v, want %d nil", i, results[i], errs[i], i*i)
			}
		}
	}
}

func TestMapSettlePanicsBecomeErrors(t *testing.T) {
	_, errs, ctxErr := MapSettle(4, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
	if ctxErr != nil {
		t.Fatalf("ctxErr = %v", ctxErr)
	}
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "kaboom") {
		t.Fatalf("errs[2] = %v, want recovered panic", errs[2])
	}
	for i := range errs {
		if i != 2 && errs[i] != nil {
			t.Errorf("sibling %d failed: %v", i, errs[i])
		}
	}
}

func TestMapSettleCancellationSkipsUnscheduled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	_, errs, ctxErr := MapSettle(100, Options{Workers: 1, Context: ctx},
		func(c context.Context, i int) (int, error) {
			select {
			case started <- struct{}{}:
				cancel()
			default:
			}
			return i, nil
		})
	if !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("ctxErr = %v, want Canceled", ctxErr)
	}
	skipped := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no unscheduled task carries the context error")
	}
}

func TestMapSettleEmpty(t *testing.T) {
	results, errs, ctxErr := MapSettle(0, Options{},
		func(ctx context.Context, i int) (int, error) { return 0, fmt.Errorf("never") })
	if len(results) != 0 || len(errs) != 0 || ctxErr != nil {
		t.Fatalf("empty settle: %v %v %v", results, errs, ctxErr)
	}
}
