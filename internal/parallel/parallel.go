// Package parallel provides the worker-pool primitives used to fan
// Monte-Carlo trials (random ownership draws × noise draws) across CPU
// cores. Results are written into order-preserving slices so parallel runs
// are bit-identical to sequential ones.
package parallel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"cpsguard/internal/obs"
	"cpsguard/internal/telemetry"
)

// DefaultWorkers is the worker count used when Options.Workers is zero:
// GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options configures a parallel map.
type Options struct {
	// Workers is the number of concurrent workers (default GOMAXPROCS).
	Workers int
	// Context cancels outstanding work early (default background).
	Context context.Context
	// OnSettle, when non-nil, is invoked by MapSettle from the worker
	// goroutine as each executed task settles — before the full result
	// slices are returned — so callers can stream results to durable
	// storage or progress logs while later tasks are still running. It
	// must be safe for concurrent invocation. Tasks skipped because the
	// context fired before they were scheduled are not reported.
	OnSettle func(i int, err error)
	// Log, when non-nil, records pool lifecycle (start/drain, with worker
	// and task counts) as debug events.
	Log *obs.Logger
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultWorkers()
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Map runs fn(i) for i in [0,n) across a worker pool and returns the results
// in index order. The first error cancels remaining work and is returned
// (results computed so far are still returned). fn must be safe for
// concurrent invocation; panics inside fn are converted to errors.
func Map[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	ctx, cancel := context.WithCancel(opts.ctx())
	defer cancel()

	workers := opts.workers()
	if workers > n {
		workers = n
	}

	reg := telemetry.Default()
	mPools.Inc()
	mWorkers.Add(int64(workers))
	poolStart := reg.Now()
	defer func() { tPool.Observe(reg.Now().Sub(poolStart).Nanoseconds()) }()
	// enqueued[i] is written by the feeder before sending i; the channel send
	// is the happens-before edge that publishes it to the receiving worker.
	enqueued := make([]time.Time, n)

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := reg.Now()
				tQueueWait.Observe(start.Sub(enqueued[i]).Nanoseconds())
				mTasks.Inc()
				func() {
					defer func() {
						if r := recover(); r != nil {
							mTaskPanics.Inc()
							setErr(fmt.Errorf("parallel: task %d panicked: %v", i, r))
						}
					}()
					v, err := fn(i)
					if err != nil {
						mTaskErrors.Inc()
						setErr(fmt.Errorf("parallel: task %d: %w", i, err))
						return
					}
					results[i] = v
				}()
				tTask.Observe(reg.Now().Sub(start).Nanoseconds())
			}
		}()
	}

	sent := 0
feed:
	for i := 0; i < n; i++ {
		enqueued[i] = reg.Now()
		select {
		case idx <- i:
			sent++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	mSkipped.Add(int64(n - sent))

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil && opts.ctx().Err() != nil {
		err = opts.ctx().Err()
	}
	return results, err
}

// MapSettle runs fn(ctx, i) for i in [0,n) across a worker pool without the
// fail-fast semantics of Map: one task's error (or panic, converted to an
// error) does not cancel its siblings. Results and per-index errors are
// returned in index order — errs[i] is non-nil iff task i failed — so
// callers can count, log, and exclude failed trials instead of aborting a
// whole Monte-Carlo run.
//
// The passed ctx is the pool's context: fn should thread it into solver
// options so cancellation stops in-flight solves. When the context is
// canceled, unscheduled tasks are skipped (their errs entry is the context
// error) and the context error is also returned as ctxErr.
func MapSettle[T any](n int, opts Options, fn func(ctx context.Context, i int) (T, error)) (results []T, errs []error, ctxErr error) {
	results = make([]T, n)
	errs = make([]error, n)
	if n == 0 {
		return results, errs, opts.ctx().Err()
	}
	ctx := opts.ctx()

	workers := opts.workers()
	if workers > n {
		workers = n
	}

	reg := telemetry.Default()
	mPools.Inc()
	mWorkers.Add(int64(workers))
	opts.Log.Debug("pool started", obs.F("workers", workers), obs.F("tasks", n))
	poolStart := reg.Now()
	defer func() {
		tPool.Observe(reg.Now().Sub(poolStart).Nanoseconds())
		opts.Log.Debug("pool drained", obs.F("tasks", n))
	}()
	// enqueued[i] is written by the feeder before sending i; the channel send
	// publishes it to the receiving worker.
	enqueued := make([]time.Time, n)

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := reg.Now()
				tQueueWait.Observe(start.Sub(enqueued[i]).Nanoseconds())
				mTasks.Inc()
				func() {
					defer func() {
						if r := recover(); r != nil {
							mTaskPanics.Inc()
							errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, r)
						}
					}()
					v, err := fn(ctx, i)
					if err != nil {
						mTaskErrors.Inc()
						errs[i] = err
						return
					}
					results[i] = v
				}()
				tTask.Observe(reg.Now().Sub(start).Nanoseconds())
				if opts.OnSettle != nil {
					opts.OnSettle(i, errs[i])
				}
			}
		}()
	}

	next := 0
feed:
	for ; next < n; next++ {
		enqueued[next] = reg.Now()
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	mSkipped.Add(int64(n - next))

	if err := ctx.Err(); err != nil {
		for i := next; i < n; i++ {
			if errs[i] == nil {
				errs[i] = err
			}
		}
		return results, errs, err
	}
	return results, errs, nil
}

// ForEach is Map without per-task results.
func ForEach(n int, opts Options, fn func(i int) error) error {
	_, err := Map(n, opts, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// MeanOf runs fn(i) for i in [0,n) in parallel and returns the mean and
// standard error of the returned values — the inner loop of every
// Monte-Carlo experiment in this repository.
func MeanOf(n int, opts Options, fn func(i int) (float64, error)) (mean, stderr float64, err error) {
	vals, err := Map(n, opts, fn)
	if err != nil {
		return 0, 0, err
	}
	var sum, sumSq float64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	fn2 := float64(n)
	mean = sum / fn2
	if n > 1 {
		variance := (sumSq - sum*sum/fn2) / (fn2 - 1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / fn2)
	}
	return mean, stderr, nil
}
