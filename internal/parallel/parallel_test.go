package parallel

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	got, err := Map(100, Options{}, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapSingleWorkerSequentialEquivalence(t *testing.T) {
	seq, _ := Map(50, Options{Workers: 1}, func(i int) (int, error) { return 3 * i, nil })
	par, _ := Map(50, Options{Workers: 8}, func(i int) (int, error) { return 3 * i, nil })
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sequential/parallel mismatch at %d", i)
		}
	}
}

func TestMapErrorCancels(t *testing.T) {
	var calls int32
	boom := errors.New("boom")
	_, err := Map(10000, Options{Workers: 4}, func(i int) (int, error) {
		atomic.AddInt32(&calls, 1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&calls); n == 10000 {
		t.Fatal("error did not cancel remaining work")
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(10, Options{Workers: 2}, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(1000, Options{Context: ctx}, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	err := ForEach(100, Options{}, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	})
	if err != nil || sum != 4950 {
		t.Fatalf("sum = %d err = %v", sum, err)
	}
}

func TestMeanOf(t *testing.T) {
	mean, stderr, err := MeanOf(5, Options{}, func(i int) (float64, error) {
		return float64(i), nil // 0..4, mean 2, variance 2.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	wantSE := math.Sqrt(2.5 / 5)
	if math.Abs(stderr-wantSE) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", stderr, wantSE)
	}
}

func TestMeanOfSingle(t *testing.T) {
	mean, stderr, err := MeanOf(1, Options{}, func(i int) (float64, error) { return 7, nil })
	if err != nil || mean != 7 || stderr != 0 {
		t.Fatalf("mean=%v stderr=%v err=%v", mean, stderr, err)
	}
}

func TestMeanOfError(t *testing.T) {
	_, _, err := MeanOf(3, Options{}, func(i int) (float64, error) {
		return 0, errors.New("nope")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
