package faultinject

import (
	"context"
	"errors"
	"math"
	"testing"

	"cpsguard/internal/lp"
)

func TestDeterministicFiring(t *testing.T) {
	pattern := func() []Fault {
		in := New(42).Arm("lp.pivot", Error, 0.3)
		for i := 0; i < 200; i++ {
			_ = in.Hook("lp.pivot")
		}
		return in.Fired()
	}
	a, b := pattern(), pattern()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 200 calls fired nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesPattern(t *testing.T) {
	fired := func(seed uint64) []int {
		in := New(seed).Arm("s", Error, 0.2)
		var calls []int
		for i := 0; i < 300; i++ {
			if in.Hook("s") != nil {
				calls = append(calls, i)
			}
		}
		return calls
	}
	a, b := fired(1), fired(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestKindsMapToErrors(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{Cancel, context.Canceled},
		{Timeout, context.DeadlineExceeded},
		{Error, ErrInjected},
	}
	for _, c := range cases {
		in := New(7).Arm("site", c.kind, 1)
		err := in.Hook("site")
		if !errors.Is(err, c.want) {
			t.Errorf("kind %v: got %v, want errors.Is(..., %v)", c.kind, err, c.want)
		}
		var f *Fault
		if !errors.As(err, &f) || f.Kind != c.kind || f.Call != 1 {
			t.Errorf("kind %v: fault metadata wrong: %+v", c.kind, f)
		}
	}
}

func TestPanicKind(t *testing.T) {
	in := New(7).Arm("site", Panic, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Panic kind did not panic")
		}
		if f, ok := r.(*Fault); !ok || f.Kind != Panic {
			t.Fatalf("panic value = %v, want *Fault{Kind: Panic}", r)
		}
	}()
	_ = in.Hook("site")
}

func TestSiteIsolationAndWildcard(t *testing.T) {
	in := New(9).Arm("a", Error, 1)
	if err := in.Hook("b"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := in.Hook("a"); err == nil {
		t.Fatal("armed site did not fire at rate 1")
	}
	if got := in.Calls("b"); got != 1 {
		t.Fatalf("Calls(b) = %d, want 1", got)
	}

	w := New(9).Arm("*", Error, 1)
	if err := w.Hook("anything"); err == nil {
		t.Fatal("wildcard rule did not fire")
	}
	if got := w.FiredAt("*"); got != 1 {
		t.Fatalf("FiredAt(*) = %d, want 1", got)
	}
}

func TestUnarmedInjectorNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if err := in.Hook("x"); err != nil {
			t.Fatalf("unarmed injector fired: %v", err)
		}
	}
	if n := in.FiredAt("*"); n != 0 {
		t.Fatalf("fired %d faults with no rules", n)
	}
}

func TestClampLP(t *testing.T) {
	o := ClampLP(lp.Options{}, 3)
	if o.MaxIter != 3 {
		t.Fatalf("MaxIter = %d, want 3", o.MaxIter)
	}
	o = ClampLP(lp.Options{MaxIter: 2}, 3)
	if o.MaxIter != 2 {
		t.Fatalf("tighter caller budget overridden: MaxIter = %d, want 2", o.MaxIter)
	}
}

func TestPoison(t *testing.T) {
	vals := make([]float64, 500)
	n := New(11).Poison("obj", vals, 0.1)
	if n == 0 {
		t.Fatal("rate 0.1 over 500 entries poisoned nothing")
	}
	bad := 0
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad++
		}
	}
	if bad != n {
		t.Fatalf("reported %d poisoned, found %d", n, bad)
	}
	// Deterministic replay.
	vals2 := make([]float64, 500)
	if n2 := New(11).Poison("obj", vals2, 0.1); n2 != n {
		t.Fatalf("replay poisoned %d, want %d", n2, n)
	}
}

// TestInjectorDrivesLPSolver closes the loop: the hook wired into
// lp.Options aborts a real solve with the injected error.
func TestInjectorDrivesLPSolver(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable("x", -1, 10)
	y := p.AddVariable("y", -1, 10)
	p.AddConstraint(lp.Constraint{
		Coefs: []lp.Coef{{Var: x, Value: 1}, {Var: y, Value: 1}},
		Sense: lp.LE, RHS: 5,
	})

	in := New(3).Arm("lp.enter", Error, 1)
	_, err := p.SolveOpts(lp.Options{Hook: in.Hook, CheckEvery: 1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var se *lp.SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *lp.SolveError", err)
	}

	// Cancel kind surfaces as a cancellation status, not an error.
	in2 := New(3).Arm("lp.enter", Cancel, 1)
	sol, err := p.SolveOpts(lp.Options{Hook: in2.Hook, CheckEvery: 1})
	if err != nil || sol.Status != lp.Canceled {
		t.Fatalf("cancel injection: sol=%+v err=%v, want status Canceled", sol, err)
	}
}

func TestTearDeterministicStrictPrefix(t *testing.T) {
	in := New(5)
	data := []byte("0123456789abcdef")
	torn := in.Tear("tag", data)
	if len(torn) == 0 || len(torn) >= len(data) {
		t.Fatalf("Tear returned %d bytes of %d, want a non-empty strict prefix", len(torn), len(data))
	}
	if string(torn) != string(data[:len(torn)]) {
		t.Fatal("Tear result is not a prefix")
	}
	if again := New(5).Tear("tag", data); string(again) != string(torn) {
		t.Fatal("Tear not deterministic across injectors with the same seed")
	}
	if other := New(5).Tear("other", data); len(other) == len(torn) {
		// Different tags may collide by chance, but the cut point must
		// be a function of the tag; verify at least one differing tag.
		if len(New(5).Tear("third", data)) == len(torn) {
			t.Log("tags collided twice; suspicious but not fatal")
		}
	}
	if got := in.Tear("empty", nil); got != nil {
		t.Fatalf("Tear(nil) = %v", got)
	}
}
