// Package faultinject is a deterministic fault-injection harness for
// chaos-style testing of the solve pipeline. An Injector is armed with
// (site, kind, rate) rules; solver layers expose named sites ("lp.pivot",
// "milp.node", "adversary.node", "experiments.trial", ...) through their
// Hook options, and the injector decides — reproducibly, from a seed —
// whether each call fires a fault.
//
// Determinism: whether call n at site s fires is a pure function of
// (seed, s, n), so a chaos test that fails replays identically under the
// same seed regardless of goroutine scheduling. Per-site call counters are
// independent, so adding instrumentation at one site does not shift the
// fault pattern at another.
//
// The injector can produce every failure class the resilience layer is
// built to absorb:
//
//   - Cancel / Timeout: returns context.Canceled / context.DeadlineExceeded
//     from the hook, which the lp/milp solvers surface as their
//     cancellation statuses.
//   - Error: returns ErrInjected, surfaced by solvers as an abort
//     (lp.SolveError wrapping ErrInjected).
//   - Panic: panics at the site, exercising the recover paths.
//   - Iteration-limit exhaustion: not a hook fault — use ClampLP to shrink
//     a solve's pivot budget so it terminates with lp.IterationLimit.
//   - NaN/Inf poisoning: use Poison to corrupt numeric inputs before
//     model ingestion, exercising validation and recovery.
//   - Torn writes: use Tear to keep only a deterministic prefix of a
//     record about to hit disk, simulating a crash mid-append; the
//     checkpoint journal exposes sites "checkpoint.append" and
//     "checkpoint.sync" for error injection on the write path itself.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"cpsguard/internal/lp"
	"cpsguard/internal/rng"
)

// Kind is a failure class the injector can produce at a site.
type Kind int8

const (
	// Cancel makes the hook return context.Canceled.
	Cancel Kind = iota
	// Timeout makes the hook return context.DeadlineExceeded.
	Timeout
	// Error makes the hook return ErrInjected.
	Error
	// Panic makes the hook panic with a *Fault value.
	Panic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Cancel:
		return "cancel"
	case Timeout:
		return "timeout"
	case Error:
		return "error"
	case Panic:
		return "panic"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// ErrInjected is the cause of every Error-kind fault; test assertions use
// errors.Is against it to tell injected failures from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes one fired fault. It is the hook's error (wrapped around
// ErrInjected or a context error) and, for Panic kind, the panic value.
type Fault struct {
	Site string
	Kind Kind
	Call int // 1-based call index at the site
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s at %s (call %d)", f.Kind, f.Site, f.Call)
}

// Unwrap lets errors.Is see through to ErrInjected or the context error.
func (f *Fault) Unwrap() error {
	switch f.Kind {
	case Cancel:
		return context.Canceled
	case Timeout:
		return context.DeadlineExceeded
	default:
		return ErrInjected
	}
}

// rule is one armed (kind, rate) pair for a site pattern.
type rule struct {
	kind Kind
	rate float64
}

// Injector decides deterministically whether hooked call sites fail. It is
// safe for concurrent use; per-site call ordering under concurrency is
// resolved by the per-site atomic counter, so the *set* of fired calls is
// deterministic even when goroutine interleaving is not.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules map[string][]rule // site (or "*") → rules
	calls map[string]int    // site → hook invocations
	fired []Fault           // log of fired faults, in firing order
}

// New returns an injector whose decisions derive from seed. An injector
// with no armed rules never fires.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		rules: map[string][]rule{},
		calls: map[string]int{},
	}
}

// Arm makes kind fire at sites matching pattern with the given probability
// per call. Pattern is an exact site name or "*" for every site. Multiple
// rules may be armed; the first that fires (exact-match rules before
// wildcards, in arming order) wins for a given call.
func (in *Injector) Arm(pattern string, kind Kind, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[pattern] = append(in.rules[pattern], rule{kind: kind, rate: rate})
	return in
}

// Hook is the lp.Hook-compatible checkpoint. Wire it into lp.Options.Hook,
// milp.Options.Hook, adversary.Config.Hook, or an experiment FaultPolicy.
func (in *Injector) Hook(site string) error {
	f := in.fire(site)
	if f == nil {
		return nil
	}
	if f.Kind == Panic {
		panic(f)
	}
	return f
}

// fire advances the site's call counter and returns the fault for this
// call, or nil.
func (in *Injector) fire(site string) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[site]++
	n := in.calls[site]
	for _, pattern := range []string{site, "*"} {
		for ri, r := range in.rules[pattern] {
			if decide(in.seed, site, ri, n, r.rate) {
				f := Fault{Site: site, Kind: r.kind, Call: n}
				in.fired = append(in.fired, f)
				return &f
			}
		}
	}
	return nil
}

// decide is the pure firing function: one rng draw keyed on
// (seed, site, rule, call).
func decide(seed uint64, site string, ruleIdx, call int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	key := seed ^ h.Sum64() ^ (uint64(ruleIdx) << 56)
	return rng.Derive(key, uint64(call)).Float64() < rate
}

// Calls reports how many times the site's hook has been consulted.
func (in *Injector) Calls(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Fired returns a copy of the log of fired faults, in firing order.
func (in *Injector) Fired() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.fired...)
}

// FiredAt counts fired faults at the given site ("*" for all sites).
func (in *Injector) FiredAt(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.fired {
		if site == "*" || f.Site == site {
			n++
		}
	}
	return n
}

// ClampLP returns opts with MaxIter clamped to at most maxIter, simulating
// iteration-limit exhaustion: the solve terminates with lp.IterationLimit
// (carrying its partial state) once the shrunken budget is spent.
func ClampLP(opts lp.Options, maxIter int) lp.Options {
	if opts.MaxIter == 0 || opts.MaxIter > maxIter {
		opts.MaxIter = maxIter
	}
	return opts
}

// Tear returns a deterministically chosen strict prefix of data — a torn
// write. At least one trailing byte is dropped, so appending the result to
// a file reproduces exactly what a crash between write(2) and completion
// leaves behind. The cut point is a pure function of (seed, tag).
func (in *Injector) Tear(tag string, data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte("tear:" + tag))
	cut := 1 + rng.Derive(in.seed^h.Sum64(), 0).Intn(len(data))
	if cut >= len(data) {
		cut = len(data) - 1
	}
	return data[:cut]
}

// Poison corrupts values[i] to NaN or ±Inf with probability rate per entry,
// deterministically from the injector's seed and the given tag. It returns
// the number of entries poisoned. Use it on objective/bound/RHS slices
// before model construction to exercise ingestion validation.
func (in *Injector) Poison(tag string, values []float64, rate float64) int {
	h := fnv.New64a()
	h.Write([]byte("poison:" + tag))
	key := in.seed ^ h.Sum64()
	poisons := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	n := 0
	for i := range values {
		rs := rng.Derive(key, uint64(i))
		if rs.Float64() < rate {
			values[i] = poisons[rs.Intn(3)]
			n++
		}
	}
	return n
}
