package servd

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"cpsguard/internal/telemetry"
)

// The RED instruments live on the process-wide default registry (that is
// what a scrape of the live binary sees), so these tests assert deltas, not
// absolute values — other tests in the package share the same counters.

func counterDelta(t *testing.T, name string, fn func()) int64 {
	t.Helper()
	c := telemetry.Default().Counter(name)
	before := c.Value()
	fn()
	return c.Value() - before
}

func TestREDRouteCounters(t *testing.T) {
	stub := &stubRunner{payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, nil)

	// A successful submit increments requests but not errors.
	errBefore := telemetry.Default().Counter("servd.route.submit.errors").Value()
	d := counterDelta(t, "servd.route.submit.requests", func() {
		if code, _, _ := ts.post(`{"figure":"5","quick":true}`, true); code != http.StatusOK {
			t.Fatalf("submit code %d", code)
		}
	})
	if d != 1 {
		t.Fatalf("submit requests delta = %d, want 1", d)
	}
	if got := telemetry.Default().Counter("servd.route.submit.errors").Value() - errBefore; got != 0 {
		t.Fatalf("successful submit counted %d errors", got)
	}

	// A malformed submit increments both.
	d = counterDelta(t, "servd.route.submit.errors", func() {
		if code, _, _ := ts.post(`{not json`, false); code != http.StatusBadRequest {
			t.Fatalf("bad submit code %d", code)
		}
	})
	if d != 1 {
		t.Fatalf("bad submit errors delta = %d, want 1", d)
	}

	// A 404 on the run route is an error for the "run" route, not "submit".
	d = counterDelta(t, "servd.route.run.errors", func() {
		if code, _ := ts.get("/runs/doesnotexist"); code != http.StatusNotFound {
			t.Fatalf("unknown run code %d", code)
		}
	})
	if d != 1 {
		t.Fatalf("run errors delta = %d, want 1", d)
	}

	// Health probes are counted on their own route.
	d = counterDelta(t, "servd.route.healthz.requests", func() {
		if code, _ := ts.get("/healthz"); code != http.StatusOK {
			t.Fatalf("healthz code %d", code)
		}
	})
	if d != 1 {
		t.Fatalf("healthz requests delta = %d, want 1", d)
	}
}

func TestREDTimingsObserved(t *testing.T) {
	// A step clock: every reading advances 1ms, so any two reads bracketing
	// work yield a strictly positive duration without real sleeping.
	var ticks atomic.Int64
	clock := func() time.Time {
		return time.Unix(0, ticks.Add(int64(time.Millisecond)))
	}
	stub := &stubRunner{payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, func(o *Options) { o.Clock = clock })

	lat := telemetry.Default().Timing("servd.request_latency_ns")
	qw := telemetry.Default().Timing("servd.queue_wait_ns")
	sd := telemetry.Default().Timing("servd.solve_duration_ns")
	latN, qwN, sdN := lat.Count(), qw.Count(), sd.Count()
	latS, qwS, sdS := lat.Sum(), qw.Sum(), sd.Sum()

	if code, _, st := ts.post(`{"figure":"5","quick":true}`, true); code != http.StatusOK || st.Status != "done" {
		t.Fatalf("submit: code %d status %+v", code, st)
	}

	if n := lat.Count() - latN; n < 1 {
		t.Fatalf("request latency observations = %d, want >= 1", n)
	}
	if s := lat.Sum() - latS; s <= 0 {
		t.Fatalf("request latency sum delta = %d, want > 0 (step clock)", s)
	}
	if n := qw.Count() - qwN; n != 1 {
		t.Fatalf("queue wait observations = %d, want 1", n)
	}
	if s := qw.Sum() - qwS; s <= 0 {
		t.Fatalf("queue wait sum delta = %d, want > 0", s)
	}
	if n := sd.Count() - sdN; n != 1 {
		t.Fatalf("solve duration observations = %d, want 1", n)
	}
	if s := sd.Sum() - sdS; s <= 0 {
		t.Fatalf("solve duration sum delta = %d, want > 0", s)
	}
}

func TestTraceparentAcceptAndEmit(t *testing.T) {
	reg := telemetry.Default()
	reg.EnableTracing(true)
	defer reg.EnableTracing(false)

	stub := &stubRunner{payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, nil)

	// Without an inbound header the server starts its own trace and still
	// names the request span on the way out.
	req, _ := http.NewRequest("GET", ts.http.URL+"/healthz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	own, err := telemetry.ParseTraceParent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("server-minted traceparent invalid: %v (%q)", err,
			resp.Header.Get("Traceparent"))
	}

	// With an inbound header the server joins the caller's trace: same
	// trace ID out, but a fresh span ID (the request span, not an echo).
	inbound := telemetry.TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
	}
	req, _ = http.NewRequest("GET", ts.http.URL+"/healthz", nil)
	req.Header.Set("traceparent", inbound.TraceParent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	joined, err := telemetry.ParseTraceParent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("joined traceparent invalid: %v", err)
	}
	if joined.TraceID != inbound.TraceID {
		t.Fatalf("server did not join caller trace: got %s, want %s",
			joined.TraceID, inbound.TraceID)
	}
	if joined.SpanID == inbound.SpanID {
		t.Fatal("server echoed the caller span ID instead of minting its own")
	}
	if joined.TraceID == own.TraceID {
		t.Fatal("joined response reused the server's own trace ID")
	}

	// The request span records the caller's span as its remote parent.
	snap := reg.Snapshot(telemetry.SnapshotOptions{Spans: true})
	found := false
	for _, sp := range snap.Spans {
		if sp.Stage == "servd.http.healthz" && sp.RemoteParent == inbound.SpanID {
			found = true
		}
	}
	if !found {
		t.Fatal("no servd.http.healthz span carries the caller's span as remote parent")
	}
}

func TestRunIDHeaderOnSubmitAndRefusals(t *testing.T) {
	// One worker, queue depth 1, stub blocked: the first submit occupies the
	// worker, the second fills the queue, the third is refused 429 — and all
	// three name their run in the header.
	block := make(chan struct{})
	started := make(chan string, 4)
	stub := &stubRunner{block: block, started: started, payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
	})

	bodies := []string{
		`{"figure":"5","quick":true,"seed":1}`,
		`{"figure":"5","quick":true,"seed":2}`,
		`{"figure":"5","quick":true,"seed":3}`,
	}
	code, hdr, st := ts.post(bodies[0], false)
	if code != http.StatusAccepted {
		t.Fatalf("first submit code %d", code)
	}
	if got := hdr.Get(RunIDHeader); got == "" || got != st.RunID {
		t.Fatalf("202 %s = %q, body run_id %q", RunIDHeader, got, st.RunID)
	}
	<-started // the worker holds job 1; job 2 will sit in the queue

	if code, hdr, _ = ts.post(bodies[1], false); code != http.StatusAccepted {
		t.Fatalf("second submit code %d", code)
	} else if hdr.Get(RunIDHeader) == "" {
		t.Fatalf("queued 202 missing %s", RunIDHeader)
	}

	code, hdr, st = ts.post(bodies[2], false)
	if code != http.StatusTooManyRequests || st.Error == nil || st.Error.Kind != "queue_full" {
		t.Fatalf("third submit: code %d status %+v", code, st)
	}
	if hdr.Get(RunIDHeader) == "" {
		t.Fatalf("429 queue_full missing %s — refusals must still name the run", RunIDHeader)
	}

	close(block) // let the held runs finish so Cleanup can drain
}

func TestRunIDHeaderOnRunsFamily(t *testing.T) {
	stub := &stubRunner{payload: []byte("col\n9\n")}
	ts := newTestServer(t, stub, nil)

	code, _, st := ts.post(`{"figure":"5","quick":true}`, true)
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("submit: code %d status %+v", code, st)
	}

	for _, path := range []string{
		"/runs/" + st.RunID,
		"/runs/" + st.RunID + "/artifacts/fig5.csv",
		"/runs/" + st.RunID + "/events",
	} {
		resp, err := http.Get(ts.http.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: code %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get(RunIDHeader); got != st.RunID {
			t.Fatalf("%s: %s = %q, want %q", path, RunIDHeader, got, st.RunID)
		}
	}

	// Unknown IDs resolve to no run: 404 with no header to mislead.
	resp, err := http.Get(ts.http.URL + "/runs/0000deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run code %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RunIDHeader); got != "" {
		t.Fatalf("404 carries %s = %q for a run that does not exist", RunIDHeader, got)
	}
}

func TestRunIDHeaderOnDraining(t *testing.T) {
	stub := &stubRunner{payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, nil)
	if err := ts.srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	code, hdr, st := ts.post(`{"figure":"5","quick":true}`, false)
	if code != http.StatusServiceUnavailable || st.Error == nil || st.Error.Kind != "draining" {
		t.Fatalf("draining submit: code %d status %+v", code, st)
	}
	if hdr.Get(RunIDHeader) == "" {
		t.Fatalf("503 draining missing %s", RunIDHeader)
	}
}

func TestRunSpanParentedUnderSubmit(t *testing.T) {
	reg := telemetry.Default()
	reg.EnableTracing(true)
	defer reg.EnableTracing(false)

	stub := &stubRunner{payload: []byte("col\n1\n")}
	ts := newTestServer(t, stub, nil)
	code, _, st := ts.post(`{"figure":"5","quick":true,"seed":77}`, true)
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("submit: code %d status %+v", code, st)
	}

	// The async run span must link back to the submit request span through
	// the global-ID remote parent, surviving the queue hop where the local
	// parent pointer cannot.
	snap := reg.Snapshot(telemetry.SnapshotOptions{Spans: true})
	var runSpan *telemetry.SpanRecord
	for i := range snap.Spans {
		sp := &snap.Spans[i]
		if sp.Stage == "servd.run" && sp.Problem == st.RunID {
			runSpan = sp
		}
	}
	if runSpan == nil {
		t.Fatal("no servd.run span for the settled run")
	}
	if runSpan.RemoteParent == "" {
		t.Fatal("servd.run span has no remote parent; the queue hop broke the trace")
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Stage == "servd.http.submit" &&
			reg.GlobalSpanID(sp.ID) == runSpan.RemoteParent {
			found = true
		}
	}
	if !found {
		t.Fatalf("servd.run remote parent %s matches no submit request span",
			runSpan.RemoteParent)
	}
}
