// The runner executes one admitted scenario into a staging directory as a
// full run bundle — the same artifact set cpsexp -obs -csv writes, produced
// by the same experiment runners, so a served result is byte-identical to a
// CLI run of the same configuration. The bundle's manifest carries
// ConfigSHA256 == the scenario's content key (SetConfig over the identical
// flag map), which is what lets the store verify that an entry really is
// the scenario it is addressed as.
package servd

import (
	"context"
	"fmt"
	"path/filepath"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/experiments"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/stats"
)

// A Runner executes one scenario into dir as a complete run bundle whose
// manifest.json is written last and carries ConfigSHA256 == sc.Key().
// Implementations must honor ctx cancellation. Tests substitute stubs;
// production uses ExperimentRunner.
type Runner interface {
	Run(ctx context.Context, sc ScenarioConfig, dir string) error
}

// figureRunners maps ScenarioConfig.Figure to the experiment runner,
// mirroring cpsexp's -fig table.
var figureRunners = map[string]func(experiments.Config) (*stats.Table, error){
	"2": experiments.Fig2, "3": experiments.Fig3, "4": experiments.Fig4,
	"5": experiments.Fig5, "6": experiments.Fig6, "7": experiments.Fig7,
	"baseline":  experiments.BaselineComparison,
	"deception": experiments.Deception,
	"vectors":   experiments.AttackVectors,
	"security":  experiments.SecurityPremium,
	"hardening": experiments.HardeningComparison,
}

// ExperimentRunner is the production Runner: it runs the figure through
// internal/experiments with the service's shared accelerators and streams
// the run's observability bundle live into the staging directory.
type ExperimentRunner struct {
	// Cache is the process-wide dispatch-solve memo shared across every
	// request, so overlapping scenarios (same grid, same ownership draws)
	// stay hot between runs. Nil disables memoization.
	Cache *solvecache.Cache
	// WarmStart re-enters perturbed dispatch solves from baseline bases.
	WarmStart bool
	// LPMethod selects the dispatch simplex implementation for every run
	// (zero value lp.MethodAuto keeps the solver's own choice). Like
	// WarmStart it is server configuration, not scenario content: it does
	// not enter the scenario key, and the dispatch-solve cache salts its
	// entries per method so mixed-method processes never alias.
	LPMethod lp.Method
	// Hook, when non-nil, is the fault-injection site consulted before
	// every trial ("experiments.trial") — the chaos path through the
	// HTTP API.
	Hook func(site string) error
	// StderrLevel is the minimum level echoed to the server's stderr;
	// the run's own events.jsonl always captures debug.
	StderrLevel obs.Level
	// Workers bounds trial fan-out per run (0 = GOMAXPROCS). A server
	// running several scenarios concurrently should set this below the
	// core count so runs do not trample each other.
	Workers int
}

// Run implements Runner.
func (r *ExperimentRunner) Run(ctx context.Context, sc ScenarioConfig, dir string) error {
	figRunner, ok := figureRunners[sc.Figure]
	if !ok {
		return fmt.Errorf("servd: unknown figure %q", sc.Figure)
	}
	run := cli.StartRun(cli.RunOptions{
		Tool: "cpsservd", Seed: int64(sc.Seed), Dir: dir,
		StderrLevel: r.StderrLevel,
	})
	run.Manifest.SetConfig(sc.FlagMap())
	cfg := experiments.Config{
		Trials:              sc.Trials,
		Seed:                sc.Seed,
		Parallel:            parallel.Options{Context: ctx, Log: run.Log, Workers: r.Workers},
		NoiseMode:           sc.mode(),
		ActorGrid:           sc.ActorGrid,
		SigmaGrid:           sc.SigmaGrid,
		AttackBudget:        sc.AttackBudget,
		SystemDefenseBudget: sc.DefenseBudget,
		PaSamples:           sc.PaSamples,
		Faults:              experiments.FaultPolicy{Hook: r.Hook},
		Log:                 run.Log,
		Cache:               r.Cache,
		WarmStart:           r.WarmStart,
		LPMethod:            r.LPMethod,
	}
	if sc.Quick {
		// Identical to cpsexp -quick, so quick scenarios served here are
		// byte-identical to quick CLI runs.
		cfg.Trials = 2
		cfg.ActorGrid = []int{2, 6}
		cfg.SigmaGrid = []float64{0, 0.3}
		cfg.PaSamples = 6
		cfg.NoiseMode = core.MatrixNoise
	}
	tb, err := figRunner(cfg)
	if err != nil {
		run.Manifest.Note("run failed: %v", err)
		run.Close() // keep the bundle diagnosable; the caller discards the dir
		return err
	}
	path := filepath.Join(dir, sc.ArtifactName())
	if err := atomicio.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
		run.Close()
		return err
	}
	run.AddOutput(path)
	return run.Close()
}
