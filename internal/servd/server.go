// The HTTP service: bounded admission onto a worker pool, single-flight
// coalescing of identical scenarios, store-backed dedup, per-key circuit
// breaking, and graceful drain.
//
//	POST /scenarios                  submit a ScenarioConfig (?wait=1 blocks)
//	GET  /scenarios                  list committed entries
//	GET  /runs/{id}                  status + artifact digests
//	GET  /runs/{id}/artifacts/{name} one artifact, digest-checked
//	GET  /runs/{id}/events           JSONL event stream (follows live runs)
//	GET  /healthz                    liveness + queue/breaker introspection
//	GET  /readyz                     503 while draining or saturated
//
// Every refusal is a typed JSON error: 429 queue_full with Retry-After when
// the admission queue is full, 503 breaker_open carrying the structured
// solve taxonomy of the failure that opened the circuit, 503 draining
// during shutdown. The server never serves an artifact whose bytes do not
// match the manifest digest recorded at commit time.
package servd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/telemetry"
)

// Options configures New. Store and Runner are required.
type Options struct {
	// Store is the content-addressed result store.
	Store *Store
	// Runner executes admitted scenarios.
	Runner Runner
	// Workers is the solve worker pool size (default 2).
	Workers int
	// QueueDepth bounds the admission queue (default 8). A submit that
	// finds the queue full is refused with 429 + Retry-After.
	QueueDepth int
	// DefaultDeadline bounds each run's wall clock when the request does
	// not set deadline_ms (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxDeadline caps request-supplied deadlines (default 10m).
	MaxDeadline time.Duration
	// Retries re-attempts failed runs with capped backoff before the
	// failure is recorded (checkpoint.Retrier semantics: cancellation is
	// never retried).
	Retries int
	// RetrySeed drives deterministic backoff jitter.
	RetrySeed uint64
	// BreakerThreshold is the consecutive-failure count that opens a
	// scenario's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses before
	// admitting a probe (default 15s).
	BreakerCooldown time.Duration
	// RetryAfterHint is the Retry-After returned with 429s (default 2s).
	RetryAfterHint time.Duration
	// Log receives server lifecycle and per-run events (nil = silent).
	Log *obs.Logger
	// Clock is the injectable time source for the breaker and failure
	// records (tests). Nil means time.Now.
	Clock func() time.Time
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 8
}

func (o Options) maxDeadline() time.Duration {
	if o.MaxDeadline > 0 {
		return o.MaxDeadline
	}
	return 10 * time.Minute
}

func (o Options) retryAfterHint() time.Duration {
	if o.RetryAfterHint > 0 {
		return o.RetryAfterHint
	}
	return 2 * time.Second
}

// maxFailureRecords bounds the in-memory failed-run table.
const maxFailureRecords = 512

// job is one admitted scenario flowing through the single-flight map and
// the worker pool.
type job struct {
	key   string
	runID string
	cfg   ScenarioConfig
	ddl   time.Duration
	done  chan struct{} // closed when the job settles (done or failed)
	probe bool          // this job is a breaker half-open probe

	// enqueuedAt (server clock) feeds the servd.queue_wait_ns timing;
	// parentGID is the submitting request span's global ID, so the
	// asynchronous run span can parent under it across the queue boundary.
	enqueuedAt time.Time
	parentGID  string

	// The fields below are guarded by Server.mu.
	status   string // "queued", "running", "done", "failed"
	dir      string // staging directory while running
	attempts int
	err      error
}

// failRecord remembers a settled failure for status queries.
type failRecord struct {
	err      error
	at       time.Time
	attempts int
}

// Server is the scenario-analysis service. Create with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	opts    Options
	store   *Store
	runner  Runner
	log     *obs.Logger
	breaker *breaker
	queue   chan *job
	now     func() time.Time

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job        // key → in-flight job (the single-flight table)
	runKeys  map[string]string      // run ID → key
	failures map[string]*failRecord // key → last settled failure
}

// New builds the server and starts its worker pool. Callers must Drain (or
// Close) it before discarding.
func New(opts Options) (*Server, error) {
	if opts.Store == nil || opts.Runner == nil {
		return nil, fmt.Errorf("servd: Options.Store and Options.Runner are required")
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		store:    opts.Store,
		runner:   opts.Runner,
		log:      opts.Log,
		breaker:  newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, now),
		queue:    make(chan *job, opts.queueDepth()),
		now:      now,
		baseCtx:  ctx,
		cancel:   cancel,
		jobs:     map[string]*job{},
		runKeys:  map[string]string{},
		failures: map[string]*failRecord{},
	}
	for _, key := range s.store.Keys() {
		s.runKeys[RunIDForKey(key)] = key
	}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler. Every route runs inside the
// RED middleware (red.go): per-route request/error counters, wall-clock
// latency, and traceparent accept/emit.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scenarios", s.instrumented("submit", s.handleSubmit))
	mux.HandleFunc("GET /scenarios", s.instrumented("list", s.handleList))
	mux.HandleFunc("GET /runs/{id}", s.instrumented("run", s.handleRun))
	mux.HandleFunc("GET /runs/{id}/artifacts/{name}", s.instrumented("artifact", s.handleArtifact))
	mux.HandleFunc("GET /runs/{id}/events", s.instrumented("events", s.handleEvents))
	mux.HandleFunc("GET /healthz", s.instrumented("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrumented("readyz", s.handleReadyz))
	return mux
}

// Drain performs the graceful-shutdown protocol: stop admitting (submits
// get 503 draining, /readyz goes unready), let queued and in-flight runs
// finish and commit, then fsync the store index. If ctx fires first, the
// remaining runs are canceled — their scenarios stay uncommitted and will
// be recomputed on resubmit; nothing half-written becomes addressable.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	if !already {
		mDrains.Inc()
		s.log.Info("drain started", obs.F("inflight", s.inflightCount()))
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		<-done
		err = fmt.Errorf("servd: drain deadline hit; in-flight runs canceled: %w", ctx.Err())
	}
	if serr := s.store.Sync(); serr != nil && err == nil {
		err = serr
	}
	s.log.Info("drain finished", obs.F("forced", err != nil))
	return err
}

// Close shuts the server down immediately: admission stops, in-flight runs
// are canceled, workers join. Intended for tests and fatal paths; use
// Drain for graceful shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

func (s *Server) inflightCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// --- worker pool ---

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	ctx := s.baseCtx
	cancel := func() {}
	if j.ddl > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.ddl)
	}
	defer cancel()
	s.mu.Lock()
	j.status = "running"
	s.mu.Unlock()
	if !j.enqueuedAt.IsZero() {
		tQueueWait.Observe(s.now().Sub(j.enqueuedAt).Nanoseconds())
	}
	// The run span parents under the submitting request's span (captured as
	// a global ID, since the request handler returned long ago) and encloses
	// every solve attempt, so experiment spans nest under it via ctx.
	runSpan := telemetry.Default().StartSpan("servd.run", j.runID)
	runSpan.SetRemoteParent(j.parentGID)
	ctx = telemetry.ContextWithSpan(ctx, runSpan)
	log := s.log.WithStage("servd " + j.runID)
	log.Debug("run started", obs.F("key", j.key), obs.F("config", j.cfg.String()))

	retrier := checkpoint.Retrier{
		MaxRetries: s.opts.Retries, Seed: s.opts.RetrySeed, Log: s.log,
	}
	ent, err := checkpoint.Do(ctx, retrier, j.runID, func() (*Entry, error) {
		s.mu.Lock()
		j.attempts++
		s.mu.Unlock()
		stage, err := s.store.StageDir(j.runID)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		j.dir = stage
		s.mu.Unlock()
		solveStart := s.now()
		err = s.runner.Run(ctx, j.cfg, stage)
		tSolveDuration.Observe(s.now().Sub(solveStart).Nanoseconds())
		if err != nil {
			s.mu.Lock()
			j.dir = ""
			s.mu.Unlock()
			s.store.DiscardStage(stage)
			return nil, err
		}
		ent, err := s.store.Commit(j.key, j.runID, stage)
		if err != nil {
			s.store.DiscardStage(stage)
			return nil, err
		}
		return ent, nil
	})

	s.mu.Lock()
	delete(s.jobs, j.key)
	if err != nil {
		j.status = "failed"
		j.err = err
		if len(s.failures) >= maxFailureRecords {
			for k := range s.failures {
				delete(s.failures, k)
				break
			}
		}
		s.failures[j.key] = &failRecord{err: err, at: s.now(), attempts: j.attempts}
	} else {
		j.status = "done"
		delete(s.failures, j.key)
	}
	s.mu.Unlock()

	if j.attempts > 1 {
		runSpan.SetRetries(j.attempts - 1)
	}
	runSpan.End()
	if err != nil {
		mRunsFailed.Inc()
		// Operator shutdown (drain cancel) is not evidence against the
		// scenario; every other failure — including a blown per-request
		// deadline — counts toward opening its circuit.
		if !errors.Is(err, context.Canceled) {
			s.breaker.Failure(j.key, err)
		}
		log.Warn("run failed", obs.F("attempts", j.attempts), obs.F("err", err))
	} else {
		mRunsOK.Inc()
		s.breaker.Success(j.key)
		log.Info("run committed", obs.F("attempts", j.attempts),
			obs.F("dir", ent.Dir), obs.F("outputs", len(ent.Manifest.Outputs)))
	}
	close(j.done)
}

// --- response types ---

// SolveErrorBody surfaces the lp.SolveError taxonomy in error responses.
type SolveErrorBody struct {
	Problem    string `json:"problem,omitempty"`
	Stage      string `json:"stage"`
	Status     string `json:"status"`
	Iterations int    `json:"iterations"`
}

// ErrorBody is the typed JSON error envelope of every non-2xx response.
type ErrorBody struct {
	// Kind is machine-matchable: "bad_request", "not_found", "queue_full",
	// "breaker_open", "draining", "run_failed", "corrupt_evicted",
	// "not_ready".
	Kind         string          `json:"kind"`
	Message      string          `json:"message"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Solve        *SolveErrorBody `json:"solve,omitempty"`
}

// ArtifactInfo describes one downloadable artifact.
type ArtifactInfo struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
	URL    string `json:"url"`
}

// RunStatus is the status document for POST /scenarios and GET /runs/{id}.
type RunStatus struct {
	RunID        string         `json:"run_id"`
	ConfigSHA256 string         `json:"config_sha256"`
	Status       string         `json:"status"`
	Cached       bool           `json:"cached,omitempty"`
	Coalesced    bool           `json:"coalesced,omitempty"`
	Attempts     int            `json:"attempts,omitempty"`
	Error        *ErrorBody     `json:"error,omitempty"`
	Artifacts    []ArtifactInfo `json:"artifacts,omitempty"`
	EventsURL    string         `json:"events_url,omitempty"`
}

func sha256hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func solveBody(err error) *SolveErrorBody {
	var se *lp.SolveError
	if !errors.As(err, &se) {
		return nil
	}
	return &SolveErrorBody{
		Problem:    se.Problem,
		Stage:      se.Stage,
		Status:     fmt.Sprint(se.Status),
		Iterations: se.Iterations,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, kind, msg string,
	retryAfter time.Duration, cause error) {
	body := ErrorBody{Kind: kind, Message: msg, Solve: solveBody(cause)}
	if retryAfter > 0 {
		body.RetryAfterMS = retryAfter.Milliseconds()
		secs := int64(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, struct {
		Error ErrorBody `json:"error"`
	}{body})
}

// --- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	mSubmits.Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0, nil)
		return
	}
	sc, err := ParseScenarioConfig(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0, nil)
		return
	}
	key := sc.Key()
	runID := RunIDForKey(key)
	// Every response about this scenario — acceptance, cache hit, 429
	// queue_full, 503 breaker_open/draining — names the run it concerns.
	w.Header().Set(RunIDHeader, runID)
	wait := r.URL.Query().Get("wait") != ""

	// Completed and verified → instant hit, no admission control involved.
	if ent, err := s.store.Get(key); err == nil && ent != nil {
		mCacheHits.Inc()
		st := s.entryStatus(ent)
		st.Cached = true
		writeJSON(w, http.StatusOK, st)
		return
	} else if err != nil {
		// Corrupt entry: evicted just now; fall through and recompute.
		s.log.Warn("corrupt entry evicted on submit", obs.F("key", key), obs.F("err", err))
	}

	allowed, probe, retryAfter, lastErr := s.breaker.Allow(key)
	if !allowed {
		mRejectBreaker.Inc()
		writeError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("scenario %s is failing repeatedly; circuit open", runID),
			retryAfter, lastErr)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		if probe {
			s.breaker.ProbeAbort(key)
		}
		mRejectDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; resubmit elsewhere or after restart", s.opts.retryAfterHint(), nil)
		return
	}
	if existing := s.jobs[key]; existing != nil {
		s.mu.Unlock()
		if probe {
			s.breaker.ProbeAbort(key)
		}
		mCoalesced.Inc()
		st := s.jobStatusLocked(existing)
		st.Coalesced = true
		if wait {
			s.waitAndRespond(w, r, existing)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	j := &job{
		key: key, runID: runID, cfg: sc, done: make(chan struct{}),
		status: "queued", probe: probe,
		ddl:        s.effectiveDeadline(sc.DeadlineMS),
		enqueuedAt: s.now(),
	}
	if sp := telemetry.SpanFromContext(r.Context()); sp != nil {
		j.parentGID = telemetry.Default().GlobalSpanID(sp.ID())
	}
	select {
	case s.queue <- j:
		s.jobs[key] = j
		s.runKeys[runID] = key
		s.mu.Unlock()
		mEnqueued.Inc()
	default:
		s.mu.Unlock()
		if probe {
			s.breaker.ProbeAbort(key)
		}
		mRejectQueueFull.Inc()
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("admission queue full (%d deep); retry shortly", s.opts.queueDepth()),
			s.opts.retryAfterHint(), nil)
		return
	}
	if wait {
		s.waitAndRespond(w, r, j)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobStatusLocked(j))
}

func (s *Server) effectiveDeadline(ms int64) time.Duration {
	d := s.opts.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if max := s.opts.maxDeadline(); d > max {
		d = max
	}
	return d
}

// waitAndRespond blocks until the job settles (or the client goes away)
// and renders its final status.
func (s *Server) waitAndRespond(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "client_gone",
			"request canceled while waiting; the run continues — poll GET /runs/"+j.runID, 0, nil)
		return
	}
	s.respondSettled(w, j.key, j.runID)
}

// respondSettled renders a settled scenario: committed → 200 with artifact
// digests, failed → 502 run_failed with the solve taxonomy.
func (s *Server) respondSettled(w http.ResponseWriter, key, runID string) {
	if ent, err := s.store.Get(key); err == nil && ent != nil {
		writeJSON(w, http.StatusOK, s.entryStatus(ent))
		return
	}
	s.mu.Lock()
	rec := s.failures[key]
	s.mu.Unlock()
	if rec != nil {
		st := RunStatus{RunID: runID, ConfigSHA256: key, Status: "failed",
			Attempts: rec.attempts,
			Error: &ErrorBody{Kind: "run_failed", Message: rec.err.Error(),
				Solve: solveBody(rec.err)}}
		writeJSON(w, http.StatusBadGateway, st)
		return
	}
	writeError(w, http.StatusNotFound, "not_found",
		"run settled but left no record (evicted?) — resubmit", 0, nil)
}

func (s *Server) entryStatus(ent *Entry) RunStatus {
	st := RunStatus{
		RunID:        ent.RunID,
		ConfigSHA256: ent.Key,
		Status:       "done",
		EventsURL:    "/runs/" + ent.RunID + "/events",
	}
	for _, out := range ent.Manifest.Outputs {
		name := filepath.Base(out.Path)
		st.Artifacts = append(st.Artifacts, ArtifactInfo{
			Name: name, SHA256: out.SHA256, Bytes: out.Bytes,
			URL: "/runs/" + ent.RunID + "/artifacts/" + name,
		})
	}
	return st
}

func (s *Server) jobStatusLocked(j *job) RunStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RunStatus{
		RunID:        j.runID,
		ConfigSHA256: j.key,
		Status:       j.status,
		Attempts:     j.attempts,
		EventsURL:    "/runs/" + j.runID + "/events",
	}
}

// resolveKey maps a {id} path element to a content key: a known run ID, or
// a full 64-hex key used directly.
func (s *Server) resolveKey(id string) (string, bool) {
	s.mu.Lock()
	key, ok := s.runKeys[id]
	s.mu.Unlock()
	if ok {
		return key, true
	}
	if keyPattern.MatchString(id) {
		return id, true
	}
	return "", false
}

// resolveRun is resolveKey plus the RunIDHeader contract: every /runs/{id}
// response that resolves to a run — success or typed refusal — carries the
// canonical run ID so clients can correlate it with traces and submits.
func (s *Server) resolveRun(w http.ResponseWriter, id string) (string, bool) {
	key, ok := s.resolveKey(id)
	if ok {
		w.Header().Set(RunIDHeader, RunIDForKey(key))
	}
	return key, ok
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	key, ok := s.resolveRun(w, r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown run ID", 0, nil)
		return
	}
	s.mu.Lock()
	j := s.jobs[key]
	s.mu.Unlock()
	if j != nil {
		writeJSON(w, http.StatusOK, s.jobStatusLocked(j))
		return
	}
	if _, ok := s.store.Lookup(key); ok {
		if ent, err := s.store.Get(key); err == nil && ent != nil {
			writeJSON(w, http.StatusOK, s.entryStatus(ent))
			return
		}
		writeError(w, http.StatusServiceUnavailable, "corrupt_evicted",
			"stored result failed integrity verification and was evicted; resubmit the scenario",
			s.opts.retryAfterHint(), nil)
		return
	}
	s.mu.Lock()
	rec := s.failures[key]
	s.mu.Unlock()
	if rec != nil {
		st := RunStatus{RunID: RunIDForKey(key), ConfigSHA256: key, Status: "failed",
			Attempts: rec.attempts,
			Error: &ErrorBody{Kind: "run_failed", Message: rec.err.Error(),
				Solve: solveBody(rec.err)}}
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeError(w, http.StatusNotFound, "not_found", "unknown run", 0, nil)
}

// artifactContentTypes maps artifact extensions to media types.
var artifactContentTypes = map[string]string{
	".csv":   "text/csv; charset=utf-8",
	".json":  "application/json",
	".jsonl": "application/x-ndjson",
}

// bundleFiles are the run-bundle artifacts servable without a manifest
// digest (the manifest deliberately does not digest its own file or the
// live event stream).
var bundleFiles = map[string]bool{
	"events.jsonl": true, "metrics.json": true,
	"trace.json": true, "manifest.json": true,
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	key, ok := s.resolveRun(w, r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown run ID", 0, nil)
		return
	}
	name := r.PathValue("name")
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed artifact name", 0, nil)
		return
	}
	s.mu.Lock()
	inflight := s.jobs[key] != nil
	s.mu.Unlock()
	if inflight {
		writeError(w, http.StatusConflict, "not_ready",
			"run still in flight; stream /events or poll /runs/{id}", 0, nil)
		return
	}
	ent, err := s.store.Get(key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "corrupt_evicted",
			"stored result failed integrity verification and was evicted; resubmit the scenario",
			s.opts.retryAfterHint(), err)
		return
	}
	if ent == nil {
		writeError(w, http.StatusNotFound, "not_found", "no committed run for this ID", 0, nil)
		return
	}
	var want string // digest the served bytes must match ("" for bundle files)
	for _, out := range ent.Manifest.Outputs {
		if filepath.Base(out.Path) == name {
			want = out.SHA256
			break
		}
	}
	if want == "" && !bundleFiles[name] {
		writeError(w, http.StatusNotFound, "not_found", "unknown artifact "+name, 0, nil)
		return
	}
	data, err := os.ReadFile(filepath.Join(ent.Dir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", err.Error(), 0, nil)
		return
	}
	if want != "" && sha256hex(data) != want {
		// Corrupted between Get's verification and this read — evict so
		// the next submit recomputes, and never serve the bytes.
		s.store.Evict(key)
		mEvictionsCorrupt.Inc()
		writeError(w, http.StatusServiceUnavailable, "corrupt_evicted",
			"artifact bytes do not match the committed digest; entry evicted", 0, nil)
		return
	}
	ct := artifactContentTypes[filepath.Ext(name)]
	if ct == "" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if want != "" {
		w.Header().Set("X-Content-SHA256", want)
	}
	w.Write(data)
}

// handleEvents streams a run's events.jsonl. For a completed run it serves
// the committed stream; for an in-flight run it follows the live file,
// flushing as lines land, until the run settles or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	key, ok := s.resolveRun(w, r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "unknown run ID", 0, nil)
		return
	}
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	flusher, _ := w.(http.Flusher)
	headerSent := false
	for {
		path, inflight, known := s.eventsSource(key)
		if !known {
			if !headerSent {
				writeError(w, http.StatusNotFound, "not_found", "unknown run", 0, nil)
			}
			return
		}
		if f == nil && path != "" {
			if file, err := os.Open(path); err == nil {
				f = file
			}
		}
		if f != nil {
			if !headerSent {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				headerSent = true
			}
			if n, _ := io.Copy(w, f); n > 0 && flusher != nil {
				flusher.Flush()
			}
		}
		if !inflight {
			if !headerSent {
				writeError(w, http.StatusNotFound, "not_found",
					"run settled without an event stream", 0, nil)
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// eventsSource locates the current events.jsonl for key: the in-flight
// staging directory while running, the committed entry afterward.
func (s *Server) eventsSource(key string) (path string, inflight, known bool) {
	s.mu.Lock()
	if j := s.jobs[key]; j != nil {
		dir := j.dir
		s.mu.Unlock()
		if dir == "" {
			return "", true, true // queued or between attempts: poll again
		}
		return filepath.Join(dir, "events.jsonl"), true, true
	}
	_, failed := s.failures[key]
	s.mu.Unlock()
	if ie, ok := s.store.Lookup(key); ok {
		return filepath.Join(s.store.root, ie.Dir, "events.jsonl"), false, true
	}
	if failed {
		return "", false, true
	}
	return "", false, false
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	type item struct {
		RunID        string    `json:"run_id"`
		ConfigSHA256 string    `json:"config_sha256"`
		Committed    time.Time `json:"committed"`
		Bytes        int64     `json:"bytes"`
	}
	var items []item
	for _, key := range s.store.Keys() {
		if ie, ok := s.store.Lookup(key); ok {
			items = append(items, item{RunID: ie.RunID, ConfigSHA256: key,
				Committed: ie.Committed, Bytes: ie.Bytes})
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Entries []item `json:"entries"`
		Count   int    `json:"count"`
	}{items, len(items)})
}

// Health is the /healthz document.
type Health struct {
	Status       string `json:"status"`
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	Inflight     int    `json:"inflight"`
	BreakersOpen int    `json:"breakers_open"`
	StoreEntries int    `json:"store_entries"`
}

func (s *Server) health() Health {
	s.mu.Lock()
	draining := s.draining
	inflight := len(s.jobs)
	s.mu.Unlock()
	h := Health{
		Status:       "ok",
		Draining:     draining,
		QueueDepth:   len(s.queue),
		QueueCap:     s.opts.queueDepth(),
		Inflight:     inflight,
		BreakersOpen: s.breaker.OpenCount(),
		StoreEntries: len(s.store.Keys()),
	}
	if draining {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz reports readiness: unready (503) while draining or while
// the admission queue is saturated, so load balancers steer traffic away
// before clients start eating 429s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if h.Draining || h.QueueDepth >= h.QueueCap {
		h.Status = "unready"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}
