package servd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cpsguard/internal/lp"
	"cpsguard/internal/manifest"
)

// stubRunner is a Runner that writes a deterministic minimal bundle. It can
// block (to hold a worker), fail its first N calls, and signal run starts.
type stubRunner struct {
	mu       sync.Mutex
	calls    int
	failures int           // fail this many calls before succeeding
	block    chan struct{} // when non-nil, Run waits on it (or ctx)
	started  chan string   // when non-nil, receives the staging dir per call
	payload  []byte        // CSV bytes (default deterministic per config)
}

func (r *stubRunner) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func (r *stubRunner) Run(ctx context.Context, sc ScenarioConfig, dir string) error {
	r.mu.Lock()
	r.calls++
	fail := r.calls <= r.failures
	payload := r.payload
	r.mu.Unlock()
	if r.started != nil {
		r.started <- dir
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fail {
		return &lp.SolveError{Problem: "stub", Stage: "stub.solve",
			Err: errors.New("injected stub failure")}
	}
	if payload == nil {
		payload = []byte("point,value\n" + sc.String() + ",1\n")
	}
	return writeStubBundle(sc, dir, payload)
}

// writeStubBundle produces the minimal valid run bundle: the CSV artifact,
// an event stream, and a manifest whose ConfigSHA256 is the scenario key
// and whose output digest matches the CSV — enough for Store.Commit's
// verification to pass, like a real cli run bundle would.
func writeStubBundle(sc ScenarioConfig, dir string, csv []byte) error {
	path := filepath.Join(dir, sc.ArtifactName())
	if err := os.WriteFile(path, csv, 0o644); err != nil {
		return err
	}
	// Append like the real bundle writer does — a live stream is only ever
	// appended to, never truncated.
	ev := `{"level":"info","msg":"stub run","fields":{}}` + "\n"
	ef, err := os.OpenFile(filepath.Join(dir, "events.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := ef.WriteString(ev); err != nil {
		ef.Close()
		return err
	}
	if err := ef.Close(); err != nil {
		return err
	}
	m := manifest.New("cpsservd", int64(sc.Seed))
	m.SetConfig(sc.FlagMap())
	m.AddOutput(path)
	m.Finish()
	return m.Write(dir)
}

// testServer wires a Store + stub + Server + httptest listener.
type testServer struct {
	t     *testing.T
	srv   *Server
	store *Store
	stub  *stubRunner
	http  *httptest.Server
}

func newTestServer(t *testing.T, stub *stubRunner, mutate func(*Options)) *testServer {
	t.Helper()
	store, _, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Store: store, Runner: stub, Workers: 2, QueueDepth: 4}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &testServer{t: t, srv: srv, store: store, stub: stub, http: hs}
}

// post submits a scenario body and decodes the response.
func (ts *testServer) post(body string, wait bool) (int, http.Header, RunStatus) {
	ts.t.Helper()
	url := ts.http.URL + "/scenarios"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var st RunStatus
	if resp.StatusCode < 300 || resp.StatusCode == http.StatusBadGateway {
		if err := json.Unmarshal(data, &st); err != nil {
			ts.t.Fatalf("bad status body (%d): %v: %s", resp.StatusCode, err, data)
		}
	} else {
		var eb struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(data, &eb); err != nil {
			ts.t.Fatalf("bad error body (%d): %v: %s", resp.StatusCode, err, data)
		}
		st.Error = &eb.Error
	}
	return resp.StatusCode, resp.Header, st
}

func (ts *testServer) get(path string) (int, []byte) {
	ts.t.Helper()
	resp, err := http.Get(ts.http.URL + path)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func TestSubmitDedupSequential(t *testing.T) {
	stub := &stubRunner{payload: []byte("col\n42\n")}
	ts := newTestServer(t, stub, nil)

	code, _, st := ts.post(`{"figure":"5","quick":true}`, true)
	if code != http.StatusOK || st.Status != "done" || st.Cached {
		t.Fatalf("first submit: code %d status %+v", code, st)
	}
	if stub.Calls() != 1 {
		t.Fatalf("first submit ran %d times", stub.Calls())
	}
	if len(st.Artifacts) != 1 || st.Artifacts[0].Name != "fig5.csv" {
		t.Fatalf("artifacts = %+v", st.Artifacts)
	}

	// Identical request: served from the store, no new run.
	code, _, st2 := ts.post(`{"figure":"5","quick":true}`, false)
	if code != http.StatusOK || !st2.Cached || st2.Status != "done" {
		t.Fatalf("dedup hit: code %d status %+v", code, st2)
	}
	// Same effective config with the defaults spelled out and fields
	// reordered: the canonical key collapses it onto the same entry.
	code, _, st3 := ts.post(`{"seed":1,"trials":5,"mode":"graph","figure":"5","quick":true}`, false)
	if code != http.StatusOK || !st3.Cached {
		t.Fatalf("canonicalized dedup hit: code %d status %+v", code, st3)
	}
	if stub.Calls() != 1 {
		t.Fatalf("dedup hits re-ran the scenario: %d calls", stub.Calls())
	}
	if st2.RunID != st.RunID || st3.RunID != st.RunID {
		t.Fatalf("run IDs diverged: %s %s %s", st.RunID, st2.RunID, st3.RunID)
	}

	// The served artifact is byte-identical across hits and digest-labeled.
	code, body := ts.get("/runs/" + st.RunID + "/artifacts/fig5.csv")
	if code != http.StatusOK || !bytes.Equal(body, stub.payload) {
		t.Fatalf("artifact: code %d body %q", code, body)
	}
	if got := sha256hex(body); got != st.Artifacts[0].SHA256 {
		t.Fatalf("artifact digest %s, manifest says %s", got, st.Artifacts[0].SHA256)
	}
}

func TestConcurrentSubmitsCoalesce(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	ts := newTestServer(t, stub, nil)
	body := `{"figure":"3","quick":true}`

	type result struct {
		code int
		st   RunStatus
	}
	results := make(chan result, 1)
	go func() {
		code, _, st := ts.post(body, true)
		results <- result{code, st}
	}()
	<-stub.started // the run is on a worker, holding the single-flight slot

	// A concurrent duplicate coalesces onto the in-flight run.
	code, _, st := ts.post(body, false)
	if code != http.StatusAccepted || !st.Coalesced {
		t.Fatalf("duplicate: code %d status %+v", code, st)
	}
	close(stub.block)
	r := <-results
	if r.code != http.StatusOK || r.st.Status != "done" {
		t.Fatalf("waiter: code %d status %+v", r.code, r.st)
	}
	if stub.Calls() != 1 {
		t.Fatalf("coalesced submits ran %d times", stub.Calls())
	}
}

func TestQueueSaturationReturns429(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 8)}
	ts := newTestServer(t, stub, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
	})

	// First scenario occupies the only worker...
	if code, _, _ := ts.post(`{"figure":"2","seed":11}`, false); code != http.StatusAccepted {
		t.Fatalf("submit A: code %d", code)
	}
	<-stub.started
	// ...second fills the queue...
	if code, _, _ := ts.post(`{"figure":"2","seed":12}`, false); code != http.StatusAccepted {
		t.Fatalf("submit B: code %d", code)
	}
	// ...third distinct scenario is refused with a typed 429 + Retry-After.
	code, hdr, st := ts.post(`{"figure":"2","seed":13}`, false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: code %d (%+v)", code, st)
	}
	if st.Error == nil || st.Error.Kind != "queue_full" || st.Error.RetryAfterMS <= 0 {
		t.Fatalf("saturated submit error = %+v", st.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// readyz reflects the saturation.
	if code, _ := ts.get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while saturated: %d", code)
	}

	close(stub.block) // the backlog drains; the refused scenario resubmits fine
	waitSettled(t, ts, RunIDForKey(ScenarioConfig{Figure: "2", Seed: 12}.Key()))
	if code, _, _ := ts.post(`{"figure":"2","seed":13}`, true); code != http.StatusOK {
		t.Fatalf("post-drain resubmit: code %d", code)
	}
}

// waitSettled polls GET /runs/{id} until it reports done (or times out).
func waitSettled(t *testing.T, ts *testServer, runID string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, body := ts.get("/runs/" + runID)
		if code == http.StatusOK && bytes.Contains(body, []byte(`"status": "done"`)) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s did not settle", runID)
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	stub := &stubRunner{failures: 2}
	ts := newTestServer(t, stub, func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Minute
		o.Clock = clock
	})
	body := `{"figure":"4","quick":true}`

	// Two failing runs: typed 502s carrying the solve taxonomy, then the
	// circuit opens.
	for i := 0; i < 2; i++ {
		code, _, st := ts.post(body, true)
		if code != http.StatusBadGateway || st.Error == nil || st.Error.Kind != "run_failed" {
			t.Fatalf("failing run %d: code %d status %+v", i, code, st)
		}
		if st.Error.Solve == nil || st.Error.Solve.Stage != "stub.solve" {
			t.Fatalf("failing run %d lost the solve taxonomy: %+v", i, st.Error)
		}
	}
	// Open circuit: fast 503, no solver work, taxonomy preserved.
	code, hdr, st := ts.post(body, false)
	if code != http.StatusServiceUnavailable || st.Error == nil || st.Error.Kind != "breaker_open" {
		t.Fatalf("open circuit: code %d status %+v", code, st)
	}
	if hdr.Get("Retry-After") == "" || st.Error.Solve == nil {
		t.Fatalf("open-circuit response incomplete: hdr %v err %+v", hdr, st.Error)
	}
	if stub.Calls() != 2 {
		t.Fatalf("open circuit still reached the runner: %d calls", stub.Calls())
	}

	// Cooldown passes: one probe is admitted, succeeds, circuit closes.
	advance(2 * time.Minute)
	code, _, st = ts.post(body, true)
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("probe run: code %d status %+v", code, st)
	}
	if n := ts.srv.breaker.OpenCount(); n != 0 {
		t.Fatalf("circuit still open after successful probe: %d", n)
	}
	// And the result is now served from the store.
	if code, _, st := ts.post(body, false); code != http.StatusOK || !st.Cached {
		t.Fatalf("post-recovery hit: code %d status %+v", code, st)
	}
}

func TestCorruptEntryEvictedNeverServed(t *testing.T) {
	stub := &stubRunner{payload: []byte("col\ntruth\n")}
	ts := newTestServer(t, stub, nil)
	body := `{"figure":"6","quick":true}`

	_, _, st := ts.post(body, true)
	if st.Status != "done" {
		t.Fatalf("seed run: %+v", st)
	}
	// Flip bits in the committed artifact behind the store's back.
	key := ScenarioConfig{Figure: "6", Quick: true}.Key()
	entryCSV := filepath.Join(ts.store.root, "entries", key, "fig6.csv")
	if err := os.WriteFile(entryCSV, []byte("col\nlies!\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reads re-verify: the corrupt entry is refused and evicted, its bytes
	// never leave the process.
	code, data := ts.get("/runs/" + st.RunID + "/artifacts/fig6.csv")
	if code != http.StatusServiceUnavailable || bytes.Contains(data, []byte("lies!")) {
		t.Fatalf("corrupt read: code %d body %q", code, data)
	}
	if q, _ := os.ReadDir(filepath.Join(ts.store.root, "quarantine")); len(q) == 0 {
		t.Fatal("corrupt entry was not quarantined")
	}

	// Resubmission recomputes and heals the store.
	code, _, st2 := ts.post(body, true)
	if code != http.StatusOK || st2.Cached || stub.Calls() != 2 {
		t.Fatalf("healing run: code %d cached %v calls %d", code, st2.Cached, stub.Calls())
	}
	code, data = ts.get("/runs/" + st2.RunID + "/artifacts/fig6.csv")
	if code != http.StatusOK || !bytes.Equal(data, stub.payload) {
		t.Fatalf("healed artifact: code %d body %q", code, data)
	}
}

func TestGracefulDrainMidRun(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	ts := newTestServer(t, stub, nil)

	if code, _, _ := ts.post(`{"figure":"7","quick":true}`, false); code != http.StatusAccepted {
		t.Fatal("submit did not queue")
	}
	<-stub.started

	drained := make(chan error, 1)
	go func() { drained <- ts.srv.Drain(context.Background()) }()
	// Admission closes while the in-flight run keeps going.
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body := ts.get("/healthz")
		if code == http.StatusOK && bytes.Contains(body, []byte(`"draining": true`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never flipped /healthz")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, _, st := ts.post(`{"figure":"2","quick":true}`, false)
	if code != http.StatusServiceUnavailable || st.Error == nil || st.Error.Kind != "draining" {
		t.Fatalf("submit while draining: code %d status %+v", code, st)
	}
	if code, _ := ts.get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("readyz still ready while draining")
	}

	// The in-flight run finishes and commits: zero lost runs.
	close(stub.block)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	key := ScenarioConfig{Figure: "7", Quick: true}.Key()
	ent, err := ts.store.Get(key)
	if err != nil || ent == nil {
		t.Fatalf("in-flight run lost across drain: ent %v err %v", ent, err)
	}
	// And the on-disk index already reflects it (fsynced by Drain).
	ix, err := manifest.LoadIndex(filepath.Join(ts.store.root, manifest.IndexFilename))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Entries[key]; !ok {
		t.Fatal("drained index does not record the committed run")
	}
}

func TestDrainCancelsStuckRunsAtDeadline(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	ts := newTestServer(t, stub, nil)
	defer close(stub.block)

	ts.post(`{"figure":"3","seed":9}`, false)
	<-stub.started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := ts.srv.Drain(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	// The canceled run committed nothing — no torn entry became addressable.
	if ent, _ := ts.store.Get(ScenarioConfig{Figure: "3", Seed: 9}.Key()); ent != nil {
		t.Fatal("canceled run left a committed entry")
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := newTestServer(t, &stubRunner{}, nil)
	for _, body := range []string{
		`{"figure":"99"}`,
		`{"figure":"5","trials":100000}`,
		`{"figure":"5","unknown_field":1}`,
		`not json`,
	} {
		code, _, st := ts.post(body, false)
		if code != http.StatusBadRequest || st.Error == nil || st.Error.Kind != "bad_request" {
			t.Errorf("body %q: code %d error %+v", body, code, st.Error)
		}
	}
	if code, _ := ts.get("/runs/nope"); code != http.StatusNotFound {
		t.Error("unknown run ID not 404")
	}
	if code, _ := ts.get("/runs/r-x/artifacts/..%2Fescape"); code == http.StatusOK {
		t.Error("path traversal served something")
	}
}

func TestRunStatusEventsAndList(t *testing.T) {
	ts := newTestServer(t, &stubRunner{}, nil)
	_, _, st := ts.post(`{"figure":"5"}`, true)
	if st.Status != "done" {
		t.Fatalf("seed run: %+v", st)
	}
	// Status by run ID and by full content key.
	for _, id := range []string{st.RunID, st.ConfigSHA256} {
		code, body := ts.get("/runs/" + id)
		if code != http.StatusOK || !bytes.Contains(body, []byte(`"status": "done"`)) {
			t.Fatalf("status via %q: code %d body %s", id, code, body)
		}
	}
	code, body := ts.get("/runs/" + st.RunID + "/events")
	if code != http.StatusOK || !bytes.Contains(body, []byte("stub run")) {
		t.Fatalf("events: code %d body %s", code, body)
	}
	code, body = ts.get("/scenarios")
	if code != http.StatusOK || !bytes.Contains(body, []byte(st.RunID)) {
		t.Fatalf("list: code %d body %s", code, body)
	}
}

func TestEventsStreamFollowsLiveRun(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	ts := newTestServer(t, stub, nil)

	ts.post(`{"figure":"2"}`, false)
	dir := <-stub.started
	line := `{"level":"info","msg":"live line"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	runID := RunIDForKey(ScenarioConfig{Figure: "2"}.Key())
	resp, err := http.Get(ts.http.URL + "/runs/" + runID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	got, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(got, "live line") {
		t.Fatalf("live stream first line: %q err %v", got, err)
	}
	close(stub.block) // run settles; the stream drains to EOF
	rest, _ := io.ReadAll(rd)
	if !strings.Contains(string(rest), "stub run") {
		t.Fatalf("stream missed post-release events: %q", rest)
	}
}

func TestStoreRecoveryQuarantinesTornEntries(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	store, _, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	// One good committed entry...
	sc := ScenarioConfig{Figure: "5", Quick: true}
	stage, err := store.StageDir("r-test")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeStubBundle(sc, stage, []byte("a\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Commit(sc.Key(), "r-test", stage); err != nil {
		t.Fatal(err)
	}
	// ...one torn entry (manifest is garbage), one crash leftover in flight.
	torn := filepath.Join(root, "entries", strings.Repeat("ab", 32))
	os.MkdirAll(torn, 0o755)
	os.WriteFile(filepath.Join(torn, "manifest.json"), []byte("{torn"), 0o644)
	os.MkdirAll(filepath.Join(root, "inflight", "r-dead.1"), 0o755)

	store2, rep, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || len(rep.Quarantined) != 1 || rep.RemovedInflight != 1 {
		t.Fatalf("recovery report = %+v", rep)
	}
	if ent, err := store2.Get(sc.Key()); err != nil || ent == nil {
		t.Fatalf("good entry lost in recovery: %v %v", ent, err)
	}
	if ent, _ := store2.Get(strings.Repeat("ab", 32)); ent != nil {
		t.Fatal("torn entry still addressable")
	}
	if _, err := os.Stat(filepath.Join(root, "inflight", "r-dead.1")); !os.IsNotExist(err) {
		t.Fatal("crash leftover survived recovery")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, &stubRunner{}, nil)
	code, body := ts.get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.QueueCap != 4 {
		t.Fatalf("health = %+v", h)
	}
	if code, _ := ts.get("/readyz"); code != http.StatusOK {
		t.Fatal("fresh server not ready")
	}
}

func TestRunIDStableAcrossRestart(t *testing.T) {
	sc := ScenarioConfig{Figure: "5", Quick: true}
	root := filepath.Join(t.TempDir(), "store")
	store, _, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Store: store, Runner: &stubRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	resp, err := http.Post(hs.URL+"/scenarios?wait=1", "application/json",
		strings.NewReader(`{"figure":"5","quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	hs.Close()
	srv.Close()

	// A new process over the same store serves the old run ID instantly.
	store2, rep, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 {
		t.Fatalf("restart recovery = %+v", rep)
	}
	stub2 := &stubRunner{}
	srv2, err := New(Options{Store: store2, Runner: stub2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	resp, err = http.Get(hs2.URL + "/runs/" + RunIDForKey(sc.Key()))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"status": "done"`)) {
		t.Fatalf("restarted status: %d %s", resp.StatusCode, data)
	}
	resp, err = http.Post(hs2.URL+"/scenarios", "application/json",
		strings.NewReader(`{"figure":"5","quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(data, []byte(`"cached": true`)) || stub2.Calls() != 0 {
		t.Fatalf("restarted dedup miss (calls %d): %s", stub2.Calls(), data)
	}
}

func TestConfigKeyProperties(t *testing.T) {
	a := ScenarioConfig{Figure: "5"}
	b := ScenarioConfig{Figure: "5", Trials: 5, Seed: 1, Mode: "graph"}
	if a.Key() != b.Key() {
		t.Fatal("defaults spelled out changed the key")
	}
	c := ScenarioConfig{Figure: "5", Seed: 2}
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a key")
	}
	d := ScenarioConfig{Figure: "5", DeadlineMS: 30000}
	if a.Key() != d.Key() {
		t.Fatal("deadline (admission parameter) leaked into the content key")
	}
	if RunIDForKey(a.Key()) != "r-"+a.Key()[:16] {
		t.Fatalf("run ID scheme changed: %s", RunIDForKey(a.Key()))
	}
}

func TestBreakerProbeAbortReleasesSlot(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Minute, func() time.Time { return now })
	b.Failure("k", fmt.Errorf("boom"))
	if ok, _, _, _ := b.Allow("k"); ok {
		t.Fatal("open circuit allowed")
	}
	now = now.Add(2 * time.Minute)
	ok, probe, _, _ := b.Allow("k")
	if !ok || !probe {
		t.Fatal("cooldown did not admit a probe")
	}
	if ok, _, _, _ := b.Allow("k"); ok {
		t.Fatal("second probe admitted while first in flight")
	}
	b.ProbeAbort("k")
	if ok, probe, _, _ := b.Allow("k"); !ok || !probe {
		t.Fatal("aborted probe slot not released")
	}
}
