// Per-key circuit breaker: repeated failures of one scenario key stop
// hitting the solver and turn into fast typed 503s until a cooldown
// passes, after which a single probe request is admitted (half-open). A
// probe success closes the circuit; a probe failure re-opens it for a
// fresh cooldown. Keys are independent — one pathological configuration
// cannot take down service for every other scenario.
package servd

import (
	"sync"
	"time"
)

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerEntry is one key's circuit state.
type breakerEntry struct {
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	lastErr  error     // the failure that opened (or last re-opened) it
	probing  bool      // a half-open probe is in flight
}

// breaker tracks per-key circuits. Safe for concurrent use.
type breaker struct {
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open duration before half-open
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now,
		entries: map[string]*breakerEntry{}}
}

// Allow reports whether a request for key may proceed. When refused, it
// returns the remaining cooldown (the Retry-After) and the error that
// opened the circuit. An expired cooldown admits exactly one probe (probe
// is true for it); further requests stay refused until the probe settles.
// A granted probe that never reaches the runner — queue full, draining,
// coalesced — must be released with ProbeAbort or the circuit wedges.
func (b *breaker) Allow(key string) (ok, probe bool, retryAfter time.Duration, lastErr error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.state == breakerClosed {
		return true, false, 0, nil
	}
	remaining := e.openedAt.Add(b.cooldown).Sub(b.now())
	if e.state == breakerOpen && remaining <= 0 {
		e.state = breakerHalfOpen
	}
	if e.state == breakerHalfOpen {
		if e.probing {
			return false, false, b.cooldown, e.lastErr
		}
		e.probing = true
		return true, true, 0, nil
	}
	return false, false, remaining, e.lastErr
}

// ProbeAbort releases a half-open probe slot that was granted by Allow but
// never executed, so the next request can probe instead.
func (b *breaker) ProbeAbort(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[key]; e != nil && e.state == breakerHalfOpen {
		e.probing = false
	}
}

// Success records a completed run for key and closes its circuit.
func (b *breaker) Success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, key)
}

// Failure records a failed run for key. It opens the circuit after
// `threshold` consecutive failures, and immediately re-opens a half-open
// circuit whose probe failed.
func (b *breaker) Failure(key string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		e = &breakerEntry{}
		b.entries[key] = e
	}
	e.lastErr = err
	switch e.state {
	case breakerHalfOpen:
		e.state = breakerOpen
		e.probing = false
		e.openedAt = b.now()
		mBreakerReopens.Inc()
	default:
		e.failures++
		if e.failures >= b.threshold {
			e.state = breakerOpen
			e.openedAt = b.now()
			mBreakerOpens.Inc()
		}
	}
}

// OpenCount reports how many circuits are currently open or half-open
// (for /healthz and readiness accounting).
func (b *breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.entries {
		if e.state != breakerClosed {
			n++
		}
	}
	return n
}
