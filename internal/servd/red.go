// Service RED metrics and per-request trace plumbing: every route is
// wrapped in one middleware that counts requests and error responses per
// route, observes wall-clock request latency, accepts an inbound W3C
// traceparent header (parenting this server's request span under the
// caller's span), and emits an outbound traceparent naming the request span
// so clients can stitch the service into their own traces.
//
// Everything here is wall-clock and traffic-shaped, so it lives strictly on
// the nondeterministic side of the telemetry contract: per-route counts in
// the counters section vary with traffic (like servd.requests always has),
// and the latency/queue-wait/solve-duration distributions are Timings —
// excluded from deterministic snapshots, so golden byte-locks never see
// them. Durations come from the server's injectable clock (Options.Clock),
// so tests pin them exactly.
package servd

import (
	"net/http"

	"cpsguard/internal/telemetry"
)

// RunIDHeader is set on every response that concerns a resolvable run —
// submits (including 429 queue_full and 503 breaker_open/draining
// envelopes) and the /runs/{id} family — so a client can correlate a
// refusal with the run it was about without parsing the body.
const RunIDHeader = "X-Cpsguard-Run-Id"

// redRoutes names the instrumented routes; one requests/errors counter pair
// per route is registered at init so the metric families exist (zero-valued)
// from the first scrape, not on first traffic.
var redRoutes = []string{"submit", "list", "run", "artifact", "events", "healthz", "readyz"}

var (
	mRouteRequests = map[string]*telemetry.Counter{}
	mRouteErrors   = map[string]*telemetry.Counter{}

	// tRequestLatency is full wall-clock request handling time per request,
	// across all routes (nanoseconds).
	tRequestLatency = telemetry.NewTiming("servd.request_latency_ns")
	// tQueueWait is how long an admitted job sat in the admission queue
	// before a worker picked it up (nanoseconds).
	tQueueWait = telemetry.NewTiming("servd.queue_wait_ns")
	// tSolveDuration is the wall-clock duration of each solve attempt
	// (runner execution only — staging and commit excluded; nanoseconds).
	tSolveDuration = telemetry.NewTiming("servd.solve_duration_ns")
)

func init() {
	for _, route := range redRoutes {
		mRouteRequests[route] = telemetry.NewCounter("servd.route." + route + ".requests")
		mRouteErrors[route] = telemetry.NewCounter("servd.route." + route + ".errors")
	}
}

// statusWriter captures the response status code for error classification
// while passing flushes through (the events route streams).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumented wraps a route handler with the RED middleware. The request
// span (when tracing is on) is threaded through the request context, so
// handleSubmit can parent the asynchronous run under it.
func (s *Server) instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRouteRequests[route].Inc()
		start := s.now()
		reg := telemetry.Default()
		sp := reg.StartSpan("servd.http."+route, r.Method+" "+r.URL.Path)
		if sp != nil {
			traceID := reg.TraceID()
			if tc, err := telemetry.ParseTraceParent(r.Header.Get("traceparent")); err == nil {
				// The caller is tracing: join its trace rather than starting
				// our own, and parent this request under its span.
				sp.SetRemoteParent(tc.SpanID)
				traceID = tc.TraceID
			}
			out := telemetry.TraceContext{TraceID: traceID, SpanID: reg.GlobalSpanID(sp.ID())}
			if out.Valid() {
				w.Header().Set("Traceparent", out.TraceParent())
			}
			r = r.WithContext(telemetry.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		sp.End()
		tRequestLatency.Observe(s.now().Sub(start).Nanoseconds())
		if sw.code >= 400 {
			mRouteErrors[route].Inc()
		}
	}
}
