// Package servd is the long-lived scenario-analysis service behind
// cmd/cpsservd: an HTTP API over the same experiment runners the CLI tools
// use, backed by a content-addressed on-disk result store keyed by the
// manifest config checksum. Identical requests dedupe — concurrent
// duplicates coalesce onto one in-flight run via single-flight, completed
// ones are served from the store with their artifact digests re-verified —
// and the robustness stack (bounded admission, per-key circuit breaker,
// capped-backoff retries, graceful drain) keeps the process serving typed
// errors instead of crashing when solves fail or load spikes.
//
// The package splits along its failure domains:
//
//	config.go      ScenarioConfig: request validation + canonical key
//	store.go       content-addressed store, recovery, quarantine
//	runner.go      one scenario → one run-bundle directory
//	breaker.go     per-key circuit breaker
//	server.go      HTTP API, worker pool, single-flight, drain
package servd

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cpsguard/internal/core"
	"cpsguard/internal/manifest"
)

// Figures lists the accepted scenario figures, matching cpsexp -fig.
var Figures = []string{"2", "3", "4", "5", "6", "7",
	"baseline", "deception", "vectors", "security", "hardening"}

// Limits that keep one request from monopolizing the service. Operators
// running genuinely bigger scenarios should use the CLI/shard path — the
// service is sized for interactive, heavily-deduped traffic.
const (
	// MaxTrials bounds per-request trial counts.
	MaxTrials = 200
	// MaxGridPoints bounds each axis override.
	MaxGridPoints = 32
	// maxBodyBytes bounds one POST /scenarios body.
	maxBodyBytes = 1 << 20
)

// ScenarioConfig is the body of POST /scenarios: one experiment figure plus
// the sweep parameters cpsexp would take as flags. The zero value of every
// field means "the tool default", exactly as an unset flag would, so the
// canonical key of {"figure":"5"} equals the key of the same request with
// the defaults spelled out.
type ScenarioConfig struct {
	// Figure selects the experiment ("2".."7", "baseline", "deception",
	// "vectors", "security", "hardening"). Required.
	Figure string `json:"figure"`
	// Trials is the number of random ownership draws per point (default 5).
	Trials int `json:"trials,omitempty"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Mode is the noise mode: "graph" (default) or "matrix".
	Mode string `json:"mode,omitempty"`
	// Quick shrinks grids and trial counts like cpsexp -quick.
	Quick bool `json:"quick,omitempty"`
	// ActorGrid overrides the actor-count axis.
	ActorGrid []int `json:"actor_grid,omitempty"`
	// SigmaGrid overrides the knowledge-noise axis.
	SigmaGrid []float64 `json:"sigma_grid,omitempty"`
	// AttackBudget is the SA's budget (default 6).
	AttackBudget float64 `json:"attack_budget,omitempty"`
	// DefenseBudget is the system-wide defense budget (default 12).
	DefenseBudget float64 `json:"defense_budget,omitempty"`
	// PaSamples is the attack-probability sample count (default 16).
	PaSamples int `json:"pa_samples,omitempty"`
	// DeadlineMS is a per-request solve deadline in milliseconds,
	// clamped to the server's maximum. 0 uses the server default. The
	// deadline is an admission parameter, not part of the result — it is
	// excluded from the content-address key.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ParseScenarioConfig decodes and validates one request body.
func ParseScenarioConfig(data []byte) (ScenarioConfig, error) {
	var sc ScenarioConfig
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("servd: bad scenario config: %w", err)
	}
	return sc, sc.Validate()
}

// Validate checks ranges and enumerations. It never mutates sc: defaults
// are applied by FlagMap/Experiment so the stored config stays minimal.
func (sc ScenarioConfig) Validate() error {
	found := false
	for _, f := range Figures {
		if sc.Figure == f {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("servd: unknown figure %q (want one of %s)",
			sc.Figure, strings.Join(Figures, ", "))
	}
	switch sc.Mode {
	case "", "graph", "matrix":
	default:
		return fmt.Errorf("servd: unknown mode %q (want graph or matrix)", sc.Mode)
	}
	if sc.Trials < 0 || sc.Trials > MaxTrials {
		return fmt.Errorf("servd: trials %d out of range [0,%d]", sc.Trials, MaxTrials)
	}
	if len(sc.ActorGrid) > MaxGridPoints || len(sc.SigmaGrid) > MaxGridPoints {
		return fmt.Errorf("servd: grid overrides capped at %d points", MaxGridPoints)
	}
	for _, n := range sc.ActorGrid {
		if n < 1 || n > 64 {
			return fmt.Errorf("servd: actor count %d out of range [1,64]", n)
		}
	}
	for _, s := range sc.SigmaGrid {
		if s < 0 || s > 1 {
			return fmt.Errorf("servd: sigma %v out of range [0,1]", s)
		}
	}
	if sc.AttackBudget < 0 || sc.DefenseBudget < 0 {
		return fmt.Errorf("servd: budgets must be non-negative")
	}
	if sc.PaSamples < 0 || sc.PaSamples > 256 {
		return fmt.Errorf("servd: pa_samples %d out of range [0,256]", sc.PaSamples)
	}
	if sc.DeadlineMS < 0 {
		return fmt.Errorf("servd: deadline_ms must be non-negative")
	}
	return nil
}

// mode resolves the effective noise mode.
func (sc ScenarioConfig) mode() core.NoiseMode {
	if sc.Mode == "matrix" {
		return core.MatrixNoise
	}
	return core.GraphNoise
}

// FlagMap renders the effective configuration — defaults applied — as the
// flag-style name→value map whose manifest.ConfigChecksum is the scenario's
// content address. The rendering deliberately mirrors how cpsexp's flags
// stringify, so equal effective configurations collapse to one key no
// matter which fields the client spelled out. DeadlineMS is excluded: it
// changes how long we are willing to wait, not what is computed.
func (sc ScenarioConfig) FlagMap() map[string]string {
	trials := sc.Trials
	if trials == 0 {
		trials = 5
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	mode := sc.Mode
	if mode == "" {
		mode = "graph"
	}
	m := map[string]string{
		"figure": sc.Figure,
		"trials": strconv.Itoa(trials),
		"seed":   strconv.FormatUint(seed, 10),
		"mode":   mode,
		"quick":  strconv.FormatBool(sc.Quick),
	}
	if len(sc.ActorGrid) > 0 {
		parts := make([]string, len(sc.ActorGrid))
		for i, n := range sc.ActorGrid {
			parts[i] = strconv.Itoa(n)
		}
		m["actor-grid"] = strings.Join(parts, ",")
	}
	if len(sc.SigmaGrid) > 0 {
		parts := make([]string, len(sc.SigmaGrid))
		for i, s := range sc.SigmaGrid {
			parts[i] = strconv.FormatFloat(s, 'g', -1, 64)
		}
		m["sigma-grid"] = strings.Join(parts, ",")
	}
	if sc.AttackBudget > 0 {
		m["attack-budget"] = strconv.FormatFloat(sc.AttackBudget, 'g', -1, 64)
	}
	if sc.DefenseBudget > 0 {
		m["defense-budget"] = strconv.FormatFloat(sc.DefenseBudget, 'g', -1, 64)
	}
	if sc.PaSamples > 0 {
		m["pa-samples"] = strconv.Itoa(sc.PaSamples)
	}
	return m
}

// Key is the scenario's content address: the order-insensitive SHA-256 of
// its effective configuration, identical to the ConfigSHA256 the run's
// manifest will carry.
func (sc ScenarioConfig) Key() string {
	return manifest.ConfigChecksum(sc.FlagMap())
}

// RunIDForKey derives the client-facing run ID from a content key. It is a
// pure function of the key so the same scenario always has the same run ID,
// across restarts and across the processes of a fleet.
func RunIDForKey(key string) string {
	if len(key) > 16 {
		key = key[:16]
	}
	return "r-" + key
}

// ArtifactName returns the scenario's primary CSV artifact name.
func (sc ScenarioConfig) ArtifactName() string { return "fig" + sc.Figure + ".csv" }

// String renders a compact human label for logs.
func (sc ScenarioConfig) String() string {
	m := sc.FlagMap()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+m[k])
	}
	return strings.Join(parts, " ")
}
