package servd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cpsguard/internal/core"
	"cpsguard/internal/experiments"
	"cpsguard/internal/faultinject"
	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
)

// TestChaosThroughHTTP drives the production ExperimentRunner through the
// full HTTP path with fault injection armed at the trial layer (the same
// "experiments.trial" site cpsexp -chaos uses): the server must survive the
// failures as typed errors, open the scenario's circuit, recover once the
// faults stop, and then serve a CSV byte-identical to what the experiment
// layer produces directly — the dedup/byte-identity proof against the CLI,
// since cpsexp writes exactly figRunner(cfg).CSV().
func TestChaosThroughHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real solver runs; skipped in -short")
	}
	store, _, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	// Faults are armed through an atomic gate so "disarm" needs no server
	// restart — exactly like a transient infrastructure failure clearing.
	var armed atomic.Bool
	armed.Store(true)
	inj := faultinject.New(1).Arm("experiments.trial", faultinject.Error, 1.0)
	hook := func(site string) error {
		if armed.Load() {
			return inj.Hook(site)
		}
		return nil
	}
	var mu atomic.Int64 // fake clock, ns
	mu.Store(time.Unix(1000, 0).UnixNano())
	runner := &ExperimentRunner{Hook: hook, StderrLevel: obs.LevelError}
	srv, err := New(Options{
		Store: store, Runner: runner, Workers: 1, QueueDepth: 2,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
		Clock: func() time.Time { return time.Unix(0, mu.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := `{"figure":"5","quick":true}`
	post := func() (int, RunStatus) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/scenarios?wait=1", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var st RunStatus
		if resp.StatusCode < 300 || resp.StatusCode == http.StatusBadGateway {
			json.Unmarshal(data, &st)
		} else {
			var eb struct {
				Error ErrorBody `json:"error"`
			}
			json.Unmarshal(data, &eb)
			st.Error = &eb.Error
		}
		return resp.StatusCode, st
	}

	// Every trial fails while armed: typed run_failed responses, never a
	// crash, never a committed entry.
	for i := 0; i < 2; i++ {
		code, st := post()
		if code != http.StatusBadGateway || st.Error == nil || st.Error.Kind != "run_failed" {
			t.Fatalf("chaos run %d: code %d status %+v", i, code, st)
		}
	}
	if ent, _ := store.Get(ScenarioConfig{Figure: "5", Quick: true}.Key()); ent != nil {
		t.Fatal("a failed chaos run committed an entry")
	}
	// The circuit is open now: fast 503 without touching the solver.
	if code, st := post(); code != http.StatusServiceUnavailable ||
		st.Error == nil || st.Error.Kind != "breaker_open" {
		t.Fatalf("open circuit: code %d status %+v", code, st)
	}

	// Faults clear; the cooldown passes; the probe succeeds end to end.
	armed.Store(false)
	mu.Add(int64(2 * time.Minute))
	code, st := post()
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("recovery run: code %d status %+v", code, st)
	}

	// Byte-identity proof: the served artifact equals the experiment layer's
	// direct output for the same configuration (what cpsexp -fig 5 -quick
	// -csv writes), and its digest matches the manifest.
	resp, err := http.Get(hs.URL + "/runs/" + st.RunID + "/artifacts/fig5.csv")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: %d", resp.StatusCode)
	}
	tb, err := experiments.Fig5(experiments.Config{
		Trials: 2, Seed: 1, ActorGrid: []int{2, 6}, SigmaGrid: []float64{0, 0.3},
		PaSamples: 6, NoiseMode: core.MatrixNoise,
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct := []byte(tb.CSV()); !bytes.Equal(served, direct) {
		t.Fatalf("served CSV diverges from the direct experiment run:\nserved:\n%s\ndirect:\n%s",
			served, direct)
	}
	ent, err := store.Get(ScenarioConfig{Figure: "5", Quick: true}.Key())
	if err != nil || ent == nil {
		t.Fatalf("recovered run not committed: %v %v", ent, err)
	}
	if got := sha256hex(served); got != ent.Manifest.Outputs[0].SHA256 {
		t.Fatalf("served digest %s, manifest records %s", got, ent.Manifest.Outputs[0].SHA256)
	}
	if ent.Manifest.ConfigSHA256 != ent.Key {
		t.Fatalf("manifest config %s != content key %s", ent.Manifest.ConfigSHA256, ent.Key)
	}
	// The bundle is a full cpsreport-able run directory.
	if _, err := manifest.Load(ent.Dir); err != nil {
		t.Fatalf("committed bundle has no loadable manifest: %v", err)
	}
}
