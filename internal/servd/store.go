// The content-addressed result store. Layout under one root directory:
//
//	<root>/index.json            durable key → entry table (manifest.Index)
//	<root>/entries/<key>/        committed run bundles (fig CSV, events,
//	                             metrics, trace, manifest.json)
//	<root>/inflight/<run>.<n>/   staging directories for running scenarios
//	<root>/quarantine/<key>.<n>/ evicted entries kept for post-mortem
//
// Commit is crash-safe: a run is staged under inflight/, its manifest is
// written last (through internal/atomicio), and the whole directory is
// renamed into entries/ — a single atomic step on POSIX — before the index
// is rewritten (also atomically). A crash at any point leaves either a
// complete committed entry or debris that startup recovery removes
// (inflight leftovers) or quarantines (entries that fail verification).
//
// Integrity is re-checked on every read path: Get re-hashes the entry's
// artifacts against its manifest before reporting a hit, and a corrupt
// entry is quarantined and reported as a miss so it is recomputed, never
// served.
package servd

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"cpsguard/internal/manifest"
)

// keyPattern guards directory names derived from client-influenced keys.
// Keys are hex SHA-256 strings; anything else never touches the filesystem.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// An Entry is one committed, verified result.
type Entry struct {
	// Key is the scenario's content address (hex SHA-256).
	Key string
	// RunID is the client-facing run identifier.
	RunID string
	// Dir is the absolute entry directory.
	Dir string
	// Manifest is the entry's loaded manifest.
	Manifest *manifest.Manifest
}

// RecoveryReport summarizes what Open found on disk.
type RecoveryReport struct {
	// Entries is the number of verified committed entries.
	Entries int
	// Quarantined lists entry keys moved to quarantine/ (torn or corrupt).
	Quarantined []string
	// RemovedInflight counts leftover staging directories from a crash.
	RemovedInflight int
}

// Store is the on-disk content-addressed result store. Safe for concurrent
// use.
type Store struct {
	root string

	mu    sync.Mutex
	index *manifest.Index
	nonce int // staging/quarantine uniquifier
	now   func() time.Time
}

// Open opens (creating if needed) the store rooted at root and runs
// startup recovery: leftover inflight staging directories are removed,
// every committed entry is re-verified against its manifest, and entries
// that fail — torn writes, flipped bits, key/manifest mismatches — are
// quarantined. The returned index reflects only entries that verified.
func Open(root string) (*Store, RecoveryReport, error) {
	var rep RecoveryReport
	for _, sub := range []string{"entries", "inflight", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, rep, fmt.Errorf("servd: store: %w", err)
		}
	}
	s := &Store{root: root, now: time.Now}

	// Remove crash debris: anything under inflight/ was mid-run when the
	// previous process died and is incomplete by construction.
	inflight, err := os.ReadDir(filepath.Join(root, "inflight"))
	if err != nil {
		return nil, rep, fmt.Errorf("servd: store: %w", err)
	}
	for _, d := range inflight {
		os.RemoveAll(filepath.Join(root, "inflight", d.Name()))
		rep.RemovedInflight++
	}

	// Rebuild the index from the entries that actually verify. The
	// persisted index seeds run IDs but is never trusted over the disk.
	prior, err := manifest.LoadIndex(filepath.Join(root, manifest.IndexFilename))
	if err != nil {
		prior = manifest.NewIndex() // corrupt index: rebuild from entries
	}
	ix := manifest.NewIndex()
	dirs, err := os.ReadDir(filepath.Join(root, "entries"))
	if err != nil {
		return nil, rep, fmt.Errorf("servd: store: %w", err)
	}
	for _, d := range dirs {
		key := d.Name()
		dir := filepath.Join(root, "entries", key)
		if !d.IsDir() || !keyPattern.MatchString(key) {
			s.quarantineLocked(key, dir)
			rep.Quarantined = append(rep.Quarantined, key)
			continue
		}
		ent, err := verifyEntry(key, dir)
		if err != nil {
			s.quarantineLocked(key, dir)
			rep.Quarantined = append(rep.Quarantined, key)
			mQuarantined.Inc()
			continue
		}
		ie := prior.Entries[key]
		ie.RunID = RunIDForKey(key)
		ie.Dir = filepath.Join("entries", key)
		ie.Tool = ent.Manifest.Tool
		if ie.Committed.IsZero() {
			ie.Committed = ent.Manifest.Finished
		}
		ie.Outputs = len(ent.Manifest.Outputs)
		ie.Bytes = outputBytes(ent.Manifest)
		ix.Add(key, ie)
		rep.Entries++
	}
	sort.Strings(rep.Quarantined)
	s.index = ix
	if err := s.Sync(); err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

// verifyEntry loads an entry's manifest and proves the directory matches
// it: the manifest's config checksum must equal the key (the address really
// addresses this content) and every recorded artifact digest must match the
// bytes on disk.
func verifyEntry(key, dir string) (*Entry, error) {
	m, err := manifest.Load(dir)
	if err != nil {
		return nil, err
	}
	if m.ConfigSHA256 != key {
		return nil, fmt.Errorf("servd: entry %s manifest has config %s", key, m.ConfigSHA256)
	}
	if len(m.Outputs) == 0 {
		return nil, fmt.Errorf("servd: entry %s has no recorded outputs", key)
	}
	if err := m.VerifyDir(dir); err != nil {
		return nil, err
	}
	return &Entry{Key: key, RunID: RunIDForKey(key), Dir: dir, Manifest: m}, nil
}

func outputBytes(m *manifest.Manifest) int64 {
	var n int64
	for _, o := range m.Outputs {
		n += o.Bytes
	}
	return n
}

// Get returns the verified entry for key, or nil on a miss. A committed
// entry that fails verification — corrupted since commit — is quarantined,
// dropped from the index, and reported as a miss: the caller recomputes,
// and the corrupt bytes are never served.
func (s *Store) Get(key string) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ie, ok := s.index.Entries[key]
	if !ok {
		return nil, nil
	}
	dir := filepath.Join(s.root, ie.Dir)
	ent, err := verifyEntry(key, dir)
	if err != nil {
		mEvictionsCorrupt.Inc()
		s.quarantineLocked(key, dir)
		s.index.Remove(key)
		if serr := s.syncLocked(); serr != nil {
			return nil, fmt.Errorf("servd: evict %s: %w", key, serr)
		}
		return nil, fmt.Errorf("servd: entry %s failed verification (quarantined): %w", key, err)
	}
	return ent, nil
}

// Keys returns the sorted committed keys.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index.Entries))
	for k := range s.index.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Lookup returns the index entry for key without verification (status
// queries). The boolean reports presence.
func (s *Store) Lookup(key string) (manifest.IndexEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ie, ok := s.index.Entries[key]
	return ie, ok
}

// StageDir creates a fresh staging directory under inflight/ for one run
// attempt. The caller must either Commit it or DiscardStage it.
func (s *Store) StageDir(runID string) (string, error) {
	s.mu.Lock()
	s.nonce++
	n := s.nonce
	s.mu.Unlock()
	dir := filepath.Join(s.root, "inflight", fmt.Sprintf("%s.%d", runID, n))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("servd: stage: %w", err)
	}
	return dir, nil
}

// DiscardStage removes a failed attempt's staging directory.
func (s *Store) DiscardStage(dir string) {
	if dir != "" && filepath.Dir(dir) == filepath.Join(s.root, "inflight") {
		os.RemoveAll(dir)
	}
}

// Commit verifies a fully-staged run bundle and moves it into entries/ in
// one rename, then rewrites the index. The staged manifest must carry
// ConfigSHA256 == key — committing under a different address than the run
// actually computed is refused. Committing over an existing entry replaces
// it (last writer wins; both sides verified the same key, so contents are
// equivalent by construction).
func (s *Store) Commit(key, runID, stagedDir string) (*Entry, error) {
	if !keyPattern.MatchString(key) {
		return nil, fmt.Errorf("servd: commit: malformed key %q", key)
	}
	if _, err := verifyEntry(key, stagedDir); err != nil {
		return nil, fmt.Errorf("servd: commit: staged bundle invalid: %w", err)
	}
	dest := filepath.Join(s.root, "entries", key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index.Entries[key]; ok {
		// A concurrent duplicate already landed (two processes sharing a
		// store root). Keep the incumbent; this attempt becomes debris.
		os.RemoveAll(stagedDir)
	} else {
		os.RemoveAll(dest) // unindexed leftover, e.g. replaced after evict
		if err := os.Rename(stagedDir, dest); err != nil {
			return nil, fmt.Errorf("servd: commit %s: %w", key, err)
		}
		syncDir(filepath.Dir(dest))
	}
	ent, err := verifyEntry(key, dest)
	if err != nil {
		return nil, fmt.Errorf("servd: commit %s: post-rename verification: %w", key, err)
	}
	s.index.Add(key, manifest.IndexEntry{
		RunID:     runID,
		Dir:       filepath.Join("entries", key),
		Tool:      ent.Manifest.Tool,
		Committed: s.now().UTC(),
		Outputs:   len(ent.Manifest.Outputs),
		Bytes:     outputBytes(ent.Manifest),
	})
	if err := s.syncLocked(); err != nil {
		return nil, err
	}
	mCommits.Inc()
	return ent, nil
}

// Evict quarantines the entry for key (operator-initiated or corruption
// detected downstream) and drops it from the index.
func (s *Store) Evict(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ie, ok := s.index.Entries[key]
	if !ok {
		return nil
	}
	s.quarantineLocked(key, filepath.Join(s.root, ie.Dir))
	s.index.Remove(key)
	return s.syncLocked()
}

// Sync rewrites index.json atomically (fsynced). Called on every commit and
// eviction, and once more during drain so the index on disk always reflects
// the final committed set.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	return s.index.Write(filepath.Join(s.root, manifest.IndexFilename))
}

// quarantineLocked moves a broken directory under quarantine/ with a unique
// suffix; if the move fails (cross-device debris, permissions) the
// directory is removed instead — a broken entry must never stay addressable.
func (s *Store) quarantineLocked(key, dir string) {
	s.nonce++
	dest := filepath.Join(s.root, "quarantine", fmt.Sprintf("%s.%d", filepath.Base(key), s.nonce))
	if err := os.Rename(dir, dest); err != nil {
		os.RemoveAll(dir)
	}
}

// syncDir fsyncs a directory (best-effort, mirroring internal/atomicio).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
