// Telemetry instruments for the service layer, visible on the existing
// -debug-addr mux (/metrics, /debug/vars) like every other subsystem's.
// Request counters depend on traffic and are diagnostic; store counters
// (commits, evictions) are deterministic for a fixed request sequence.
package servd

import "cpsguard/internal/telemetry"

var (
	mRequests  = telemetry.NewCounter("servd.requests")
	mSubmits   = telemetry.NewCounter("servd.submits")
	mCacheHits = telemetry.NewCounter("servd.cache_hits")
	mCoalesced = telemetry.NewCounter("servd.coalesced")
	mEnqueued  = telemetry.NewCounter("servd.enqueued")

	mRejectQueueFull = telemetry.NewCounter("servd.rejected_queue_full")
	mRejectBreaker   = telemetry.NewCounter("servd.rejected_breaker_open")
	mRejectDraining  = telemetry.NewCounter("servd.rejected_draining")

	mRunsOK     = telemetry.NewCounter("servd.runs_ok")
	mRunsFailed = telemetry.NewCounter("servd.runs_failed")

	mCommits          = telemetry.NewCounter("servd.store_commits")
	mEvictionsCorrupt = telemetry.NewCounter("servd.store_evictions_corrupt")
	mQuarantined      = telemetry.NewCounter("servd.store_quarantined")

	mBreakerOpens   = telemetry.NewCounter("servd.breaker_opens")
	mBreakerReopens = telemetry.NewCounter("servd.breaker_reopens")

	mDrains = telemetry.NewCounter("servd.drains")
)
