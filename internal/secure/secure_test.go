package secure

import (
	"math"
	"testing"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/westgrid"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// twoPath: a city fed by a cheap line and an expensive detour.
func twoPath() *graph.Graph {
	g := graph.New("twopath")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 200, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "mid"})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 100, Price: 20})
	g.MustAddEdge(graph.Edge{ID: "direct", From: "gen", To: "city", Capacity: 120, Cost: 0.5})
	g.MustAddEdge(graph.Edge{ID: "via1", From: "gen", To: "mid", Capacity: 120, Cost: 2})
	g.MustAddEdge(graph.Edge{ID: "via2", From: "mid", To: "city", Capacity: 120, Cost: 2})
	return g
}

func TestSecureDispatchSurvivesContingency(t *testing.T) {
	g := twoPath()
	res, err := Dispatch(Config{Graph: g, Contingencies: []string{"direct"}})
	if err != nil {
		t.Fatal(err)
	}
	// Base case still serves everything (the detour covers the outage).
	if !approx(res.Load["city"], 100, 1e-6) {
		t.Fatalf("base load = %v, want 100", res.Load["city"])
	}
	plan := res.Contingency["direct"]
	if plan == nil {
		t.Fatal("missing contingency plan")
	}
	if plan.Flow["direct"] != 0 {
		t.Fatalf("outaged line still flows in contingency: %v", plan.Flow["direct"])
	}
	if plan.Load["city"] < 100-1e-6 {
		t.Fatalf("contingency sheds load: %v", plan.Load["city"])
	}
	// Detour carries the contingency flow.
	if plan.Flow["via2"] < 100-1e-6 {
		t.Fatalf("detour unused in contingency: %v", plan.Flow["via2"])
	}
}

func TestSecurityPremiumNonNegative(t *testing.T) {
	g := twoPath()
	res, err := Dispatch(Config{Graph: g, Contingencies: []string{"direct"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecurityPremium < 0 {
		t.Fatalf("premium = %v", res.SecurityPremium)
	}
	plain, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(plain.Welfare-res.Welfare, res.SecurityPremium, 1e-6*(1+plain.Welfare)) {
		t.Fatalf("premium inconsistent: %v vs %v", plain.Welfare-res.Welfare, res.SecurityPremium)
	}
	// Here the preventive constraint costs nothing in the base case
	// (generation is shared and ample) — premium should be ~0 since the
	// base dispatch is unchanged; the detour only runs post-contingency.
	if res.SecurityPremium > 1e-6 {
		t.Logf("note: premium = %v (> 0 is acceptable but unexpected here)", res.SecurityPremium)
	}
}

func TestRadialSystemShedsToZero(t *testing.T) {
	// A single radial line has no reroute: the preventive model is still
	// feasible, but only by serving nothing in the base case (x_k ≥ γ·x_0
	// is vacuous at x_0 = 0) — the security constraint wipes out all
	// welfare, which is the economically honest answer.
	g := graph.New("radial")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 1})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 50, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "only", From: "gen", To: "city", Capacity: 60})
	for _, gamma := range []float64{1, 0.5} {
		res, err := Dispatch(Config{Graph: g, Contingencies: []string{"only"}, MinService: gamma})
		if err != nil {
			t.Fatalf("γ=%v: %v", gamma, err)
		}
		if res.Load["city"] > 1e-6 {
			t.Fatalf("γ=%v: radial system cannot be N-1 secure, load=%v", gamma, res.Load["city"])
		}
		if !approx(res.Welfare, 0, 1e-9) {
			t.Fatalf("γ=%v: welfare = %v, want 0", gamma, res.Welfare)
		}
	}
}

func TestSecurityPremiumWhenCapacityScarce(t *testing.T) {
	// Make the detour capacity-limited so N-1 security forces the base
	// case to serve less than the welfare optimum.
	g := twoPath()
	g.Edge("via1").Capacity = 40
	g.Edge("via2").Capacity = 40
	res, err := Dispatch(Config{Graph: g, Contingencies: []string{"direct"}})
	if err != nil {
		t.Fatal(err)
	}
	// Post-outage only ~40 units can reach the city, so base service is
	// capped at 40 too (γ=1).
	if res.Load["city"] > 40+1e-6 {
		t.Fatalf("base load %v exceeds securable 40", res.Load["city"])
	}
	if res.SecurityPremium <= 0 {
		t.Fatalf("scarce detour must cost welfare: premium=%v", res.SecurityPremium)
	}
}

func TestWestgridSecureDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model test")
	}
	g := westgrid.Build(westgrid.Options{}) // unstressed: slack available
	res, err := Dispatch(Config{
		Graph:         g,
		Contingencies: []string{"tx:OR-CA", "pipe:NV-CA"},
		MinService:    0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare <= 0 {
		t.Fatalf("secure welfare = %v", res.Welfare)
	}
	if res.SecurityPremium < -1e-6 {
		t.Fatalf("negative premium: %v", res.SecurityPremium)
	}
	for _, c := range []string{"tx:OR-CA", "pipe:NV-CA"} {
		plan := res.Contingency[c]
		if plan == nil || plan.Flow[c] != 0 {
			t.Fatalf("contingency %s not honored", c)
		}
		for v, base := range res.Load {
			if plan.Load[v] < 0.9*base-1e-6 {
				t.Fatalf("contingency %s sheds %s below 90%%: %v < %v", c, v, plan.Load[v], 0.9*base)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Dispatch(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := twoPath()
	if _, err := Dispatch(Config{Graph: g, Contingencies: []string{"ghost"}}); err == nil {
		t.Fatal("unknown contingency accepted")
	}
	g.Edges[0].Loss = 1.5
	if _, err := Dispatch(Config{Graph: g}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
