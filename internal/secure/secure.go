// Package secure implements a simplified security-constrained dispatch —
// the SCUC-style planning the paper positions itself against (Section
// IV-A, citing [5–9]): instead of optimizing pure market welfare, the
// operator requires that for every listed contingency (single-asset
// outage) the system could still serve a required fraction of the
// dispatched load without re-dispatching generation.
//
// The formulation is the classic *preventive* model: one base case plus
// one network copy per contingency; generator injections are shared across
// all cases (units cannot instantly re-dispatch when a line trips), flows
// re-route freely, and per-vertex service in every contingency case must
// reach at least MinService × the base-case service. The objective is
// base-case social welfare, so the welfare gap to the unconstrained
// dispatch is the system's *security premium* — the price of N-1
// robustness the paper's market-focused model deliberately omits.
//
// The package exists as a substrate contrast: experiments can compare how
// attack impacts (package impact) shrink when the dispatch is
// security-constrained, quantifying how much of the strategic adversary's
// profit depends on the operator running a welfare-maximal but fragile
// schedule.
package secure

import (
	"errors"
	"fmt"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
)

// Config states a security-constrained dispatch.
type Config struct {
	// Graph is the system.
	Graph *graph.Graph
	// Contingencies lists edge IDs whose single outage the dispatch must
	// survive.
	Contingencies []string
	// MinService is the per-vertex fraction of base-case load that must
	// remain servable in every contingency (default 1 = no shedding).
	MinService float64
	// LP forwards solver options.
	LP lp.Options
}

func (c Config) minService() float64 {
	if c.MinService > 0 {
		return c.MinService
	}
	return 1
}

// ContingencyPlan is the post-outage routing for one contingency.
type ContingencyPlan struct {
	Flow map[string]float64
	Load map[string]float64
	// Welfare is the system welfare while operating this plan (with the
	// base case's generation, which preventive dispatch cannot change).
	Welfare float64
}

// Result is a solved security-constrained dispatch.
type Result struct {
	// Welfare is the base-case social welfare under the security
	// constraints.
	Welfare float64
	// Flow, Gen, Load describe the base case.
	Flow map[string]float64
	Gen  map[string]float64
	Load map[string]float64
	// SecurityPremium is unconstrained welfare − Welfare (≥ 0).
	SecurityPremium float64
	// Contingency maps each protected edge to its recovery plan.
	Contingency map[string]*ContingencyPlan
	// Iterations counts simplex pivots.
	Iterations int
}

// ErrInsecure is returned when no dispatch can satisfy the contingency
// service requirements.
var ErrInsecure = errors.New("secure: no feasible security-constrained dispatch")

// Dispatch solves the preventive security-constrained welfare optimum.
func Dispatch(cfg Config) (*Result, error) {
	g := cfg.Graph
	if g == nil {
		return nil, errors.New("secure: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, id := range cfg.Contingencies {
		if g.Edge(id) == nil {
			return nil, fmt.Errorf("secure: unknown contingency edge %q", id)
		}
	}
	base, err := flow.DispatchOpts(g, flow.Options{LP: cfg.LP})
	if err != nil {
		return nil, err
	}

	nE, nV := len(g.Edges), len(g.Vertices)
	nK := len(cfg.Contingencies)
	p := lp.NewProblem()

	// Case 0 = base; cases 1..nK = contingencies. Gen variables are
	// shared (preventive dispatch); flows and loads are per-case.
	gVar := make([]int, nV)
	fVar := make([][]int, nK+1)
	xVar := make([][]int, nK+1)
	for i, v := range g.Vertices {
		if v.Supply > 0 {
			gVar[i] = p.AddVariable("g:"+v.ID, v.SupplyCost, v.Supply)
		} else {
			gVar[i] = -1
		}
	}
	for k := 0; k <= nK; k++ {
		fVar[k] = make([]int, nE)
		xVar[k] = make([]int, nV)
		outaged := ""
		if k > 0 {
			outaged = cfg.Contingencies[k-1]
		}
		for j, e := range g.Edges {
			cap := e.Capacity
			if e.ID == outaged {
				cap = 0
			}
			cost := 0.0
			if k == 0 {
				cost = e.Cost // only the base case enters the objective
			}
			fVar[k][j] = p.AddVariable(fmt.Sprintf("f%d:%s", k, e.ID), cost, cap)
		}
		for i, v := range g.Vertices {
			if v.Demand > 0 {
				cost := 0.0
				if k == 0 {
					cost = -v.Price
				}
				xVar[k][i] = p.AddVariable(fmt.Sprintf("x%d:%s", k, v.ID), cost, v.Demand)
			} else {
				xVar[k][i] = -1
			}
		}
		// Conservation in case k. Generation is the shared gVar.
		for i, v := range g.Vertices {
			var coefs []lp.Coef
			for j, e := range g.Edges {
				if e.To == v.ID {
					coefs = append(coefs, lp.Coef{Var: fVar[k][j], Value: 1})
				}
				if e.From == v.ID {
					coefs = append(coefs, lp.Coef{Var: fVar[k][j], Value: -1 / (1 - e.Loss)})
				}
			}
			if gVar[i] >= 0 {
				coefs = append(coefs, lp.Coef{Var: gVar[i], Value: 1})
			}
			if xVar[k][i] >= 0 {
				coefs = append(coefs, lp.Coef{Var: xVar[k][i], Value: -1})
			}
			if len(coefs) == 0 {
				continue
			}
			p.AddConstraint(lp.Constraint{
				Coefs: coefs, Sense: lp.EQ, RHS: 0,
				Name: fmt.Sprintf("cons%d:%s", k, v.ID),
			})
		}
	}
	// Service coupling: x_k(v) ≥ MinService · x_0(v).
	gamma := cfg.minService()
	for k := 1; k <= nK; k++ {
		for i, v := range g.Vertices {
			if v.Demand <= 0 {
				continue
			}
			p.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{
					{Var: xVar[k][i], Value: 1},
					{Var: xVar[0][i], Value: -gamma},
				},
				Sense: lp.GE, RHS: 0,
				Name: fmt.Sprintf("svc%d:%s", k, v.ID),
			})
		}
	}

	sol, err := p.SolveOpts(cfg.LP)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, ErrInsecure
	default:
		return nil, fmt.Errorf("secure: LP status %v", sol.Status)
	}

	res := &Result{
		Flow:        make(map[string]float64, nE),
		Gen:         map[string]float64{},
		Load:        map[string]float64{},
		Contingency: map[string]*ContingencyPlan{},
		Iterations:  sol.Iterations,
	}
	for j, e := range g.Edges {
		res.Flow[e.ID] = sol.X[fVar[0][j]]
		res.Welfare -= e.Cost * res.Flow[e.ID]
	}
	for i, v := range g.Vertices {
		if gVar[i] >= 0 {
			res.Gen[v.ID] = sol.X[gVar[i]]
			res.Welfare -= v.SupplyCost * res.Gen[v.ID]
		}
		if xVar[0][i] >= 0 {
			res.Load[v.ID] = sol.X[xVar[0][i]]
			res.Welfare += v.Price * res.Load[v.ID]
		}
	}
	for k := 1; k <= nK; k++ {
		plan := &ContingencyPlan{Flow: map[string]float64{}, Load: map[string]float64{}}
		for j, e := range g.Edges {
			plan.Flow[e.ID] = sol.X[fVar[k][j]]
			plan.Welfare -= e.Cost * plan.Flow[e.ID]
		}
		for i, v := range g.Vertices {
			if xVar[k][i] >= 0 {
				plan.Load[v.ID] = sol.X[xVar[k][i]]
				plan.Welfare += v.Price * plan.Load[v.ID]
			}
			if gVar[i] >= 0 {
				plan.Welfare -= v.SupplyCost * sol.X[gVar[i]]
			}
		}
		res.Contingency[cfg.Contingencies[k-1]] = plan
	}
	res.SecurityPremium = base.Welfare - res.Welfare
	if res.SecurityPremium < 0 && res.SecurityPremium > -1e-6 {
		res.SecurityPremium = 0
	}
	return res, nil
}
