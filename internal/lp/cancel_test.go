package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// trivialLP builds a small feasible LP with a few pivots of work.
func trivialLP() *Problem {
	p := NewProblem()
	x := p.AddVariable("x", -3, 10)
	y := p.AddVariable("y", -2, 10)
	z := p.AddVariable("z", -1, 10)
	p.AddConstraint(Constraint{
		Coefs: []Coef{{x, 1}, {y, 2}, {z, 1}}, Sense: LE, RHS: 12,
	})
	p.AddConstraint(Constraint{
		Coefs: []Coef{{x, 2}, {y, 1}}, Sense: LE, RHS: 9,
	})
	return p
}

// TestExpiredContextReturnsFast is the acceptance check: a solve handed an
// already-expired context returns a cancellation status well inside 100ms.
func TestExpiredContextReturnsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()

	cases := []struct {
		name string
		ctx  context.Context
		want Status
	}{
		{"canceled", ctx, Canceled},
		{"deadline", dctx, DeadlineExceeded},
	}
	for _, method := range []Method{MethodRows, MethodBounded} {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%v/%s", method, c.name), func(t *testing.T) {
				start := time.Now()
				sol, err := trivialLP().SolveOpts(Options{Method: method, Ctx: c.ctx, CheckEvery: 1})
				if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
					t.Fatalf("expired-context solve took %v, want <100ms", elapsed)
				}
				if err != nil {
					t.Fatalf("err = %v, want nil (cancellation travels on status)", err)
				}
				if sol.Status != c.want {
					t.Fatalf("status = %v, want %v", sol.Status, c.want)
				}
			})
		}
	}
}

// TestMidSolveCancellation cancels during the pivot loop via a hook-driven
// context and checks the partial solution carries the iteration count.
func TestMidSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	hook := func(site string) error {
		if site == "lp.pivot" {
			calls++
			if calls >= 2 {
				cancel()
			}
		}
		return nil
	}
	sol, err := trivialLP().SolveOpts(Options{Ctx: ctx, Hook: hook, CheckEvery: 1})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	// The problem is tiny; it may finish before the checkpoint fires. What
	// must hold: a cancellation status implies a recorded iteration count.
	if sol.Status == Canceled && sol.Iterations == 0 {
		t.Fatalf("canceled mid-solve with Iterations=0: %+v", sol)
	}
}

func TestIterationLimitPartialSolution(t *testing.T) {
	for _, method := range []Method{MethodRows, MethodBounded} {
		sol, err := trivialLP().SolveOpts(Options{Method: method, MaxIter: 1})
		if err != nil {
			t.Fatalf("method %v: err = %v", method, err)
		}
		if sol.Status != IterationLimit {
			t.Fatalf("method %v: status = %v, want IterationLimit", method, sol.Status)
		}
		if sol.Iterations < 1 {
			t.Fatalf("method %v: Iterations = %d, want ≥1", method, sol.Iterations)
		}
	}
}

func TestSolveResilientBlandRestart(t *testing.T) {
	p := trivialLP()
	p.SetName("restart-test")
	// MaxIter 1 exhausts immediately; SolveResilient must restart under
	// Bland with a doubled default budget and succeed.
	sol, err := SolveResilient(p, Options{MaxIter: 1})
	if err != nil {
		t.Fatalf("SolveResilient: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want Optimal after restart", sol.Status)
	}
	if len(sol.Fallbacks) != 1 {
		t.Fatalf("Fallbacks = %v, want one bland-restart record", sol.Fallbacks)
	}
}

func TestSolveResilientDoesNotRetryCleanAnswers(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: GE, RHS: 1})
	sol, err := SolveResilient(p, Options{})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if sol.Status != Unbounded || len(sol.Fallbacks) != 0 {
		t.Fatalf("unbounded answer retried: %+v", sol)
	}
}

func TestSolveResilientNeverMasksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveResilient(trivialLP(), Options{Ctx: ctx, CheckEvery: 1})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if sol.Status != Canceled || len(sol.Fallbacks) != 0 {
		t.Fatalf("cancellation degraded into a retry: %+v", sol)
	}
}

func TestSolveErrorCarriesProblemContext(t *testing.T) {
	p := trivialLP()
	p.SetName("ctx-carrier")
	boom := errors.New("boom")
	_, err := p.SolveOpts(Options{Hook: func(string) error { return boom }, CheckEvery: 1})
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T (%v), want *SolveError", err, err)
	}
	if se.Problem != "ctx-carrier" || !errors.Is(err, boom) {
		t.Fatalf("SolveError = %+v, want Problem=ctx-carrier wrapping boom", se)
	}
}

func TestValidateRejectsHostileNumbers(t *testing.T) {
	build := func(mutate func(p *Problem)) error {
		p := trivialLP()
		mutate(p)
		_, err := p.SolveOpts(Options{})
		return err
	}
	cases := map[string]func(p *Problem){
		"nan-objective": func(p *Problem) { p.AddVariable("bad", math.NaN(), 1) },
		"inf-objective": func(p *Problem) { p.AddVariable("bad", math.Inf(1), 1) },
		"nan-upper":     func(p *Problem) { p.AddVariable("bad", 1, math.NaN()) },
		"nan-rhs": func(p *Problem) {
			p.AddConstraint(Constraint{Coefs: []Coef{{0, 1}}, Sense: LE, RHS: math.NaN()})
		},
		"inf-coef": func(p *Problem) {
			p.AddConstraint(Constraint{Coefs: []Coef{{0, math.Inf(-1)}}, Sense: LE, RHS: 1})
		},
	}
	for name, mutate := range cases {
		if err := build(mutate); !errors.Is(err, ErrBadProblem) {
			t.Errorf("%s: err = %v, want ErrBadProblem", name, err)
		}
	}
}
