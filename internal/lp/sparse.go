// Sparse column storage for the revised simplex.
//
// The revised method (revised.go) never materializes the dense B⁻¹A tableau;
// it works from the original standard-form constraint matrix held here in
// compressed sparse column (CSC) form, plus a factorization of the current
// basis (lu.go). The column layout is byte-for-byte the same as the dense
// bounded tableau's (bounded.go): structural variables first, then per
// constraint row a slack (LE), surplus+artificial (GE), or artificial (EQ)
// column, with the same RHS-sign normalization. Identical layout is what
// makes a Basis captured by one method directly applicable to the other —
// the warm-start and solve-cache machinery of warmstart.go carries over
// unchanged.
package lp

import "math"

// cscMatrix is an m-row sparse matrix in compressed sparse column form.
// Row indices within each column are strictly ascending.
type cscMatrix struct {
	m      int
	colPtr []int32 // len = cols+1
	rowIdx []int32 // len = nnz
	val    []float64
}

// cols reports the number of columns.
func (a *cscMatrix) cols() int { return len(a.colPtr) - 1 }

// col returns the row indices and values of column j.
func (a *cscMatrix) col(j int) ([]int32, []float64) {
	lo, hi := a.colPtr[j], a.colPtr[j+1]
	return a.rowIdx[lo:hi], a.val[lo:hi]
}

// colNNZ reports the number of stored entries in column j.
func (a *cscMatrix) colNNZ(j int) int { return int(a.colPtr[j+1] - a.colPtr[j]) }

// standardForm is the bounded-variable standard form of a Problem in sparse
// column storage: minimize cost·x subject to A·x = rhs, 0 ≤ x ≤ upper, with
// slack/surplus/artificial columns appended exactly as newBoundedTableau
// lays them out.
type standardForm struct {
	n      int // structural variables
	m      int // constraint rows
	nTotal int // total columns

	a     *cscMatrix
	rhs   []float64 // normalized b ≥ 0
	upper []float64 // per column
	cost  []float64 // phase-2 cost per column
	art   []bool    // per column: is artificial
	// startBasis[i] is the column initially basic in row i (its slack or
	// artificial), mirroring the bounded tableau's starting basis.
	startBasis []int
}

// newStandardForm lowers p into sparse standard form. The normalization
// (flip rows with negative RHS, aggregate duplicate coefficients in
// encounter order) replicates newBoundedTableau exactly so that both
// methods price the same matrix.
func newStandardForm(p *Problem) *standardForm {
	s := &standardForm{n: len(p.obj), m: len(p.rows)}

	// Pass 1: structural column counts (duplicate (row, var) coefficients
	// aggregate, so count distinct slots conservatively by occurrences —
	// duplicates are merged in pass 2).
	counts := make([]int32, s.n)
	for _, row := range p.rows {
		for _, co := range row.Coefs {
			counts[co.Var]++
		}
	}
	// Extra columns: one slack or surplus per non-EQ row plus one
	// artificial per GE/EQ row. Sized exactly below; allocate the column
	// pointer for the worst case (2 per row) and trim.
	maxCols := s.n + 2*s.m
	colPtr := make([]int32, maxCols+1)
	nnzStruct := int32(0)
	for j := 0; j < s.n; j++ {
		colPtr[j] = nnzStruct
		nnzStruct += counts[j]
	}
	rowIdx := make([]int32, nnzStruct, nnzStruct+int32(2*s.m))
	val := make([]float64, nnzStruct, nnzStruct+int32(2*s.m))

	// Pass 2: fill structural entries row-by-row; within each column,
	// entries arrive in ascending row order because rows are visited in
	// order. Duplicate (row, var) pairs within one row aggregate in place,
	// matching the dense builder's `a[i][v] += value`.
	fill := make([]int32, s.n)
	copy(fill, colPtr[:s.n])
	s.rhs = make([]float64, s.m)
	senses := make([]Sense, s.m)
	for i, row := range p.rows {
		sense, rhs := row.Sense, row.RHS
		flip := rhs < 0
		if flip {
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for _, co := range row.Coefs {
			v := co.Value
			if flip {
				v = -v
			}
			j := co.Var
			// Aggregate a duplicate of the same row within this column.
			if fill[j] > colPtr[j] && rowIdx[fill[j]-1] == int32(i) {
				val[fill[j]-1] += v
				continue
			}
			rowIdx[fill[j]] = int32(i)
			val[fill[j]] = v
			fill[j]++
		}
		s.rhs[i] = rhs
		senses[i] = sense
	}
	// Compact out the slots freed by duplicate aggregation.
	w := int32(0)
	for j := 0; j < s.n; j++ {
		lo := colPtr[j]
		colPtr[j] = w
		for k := lo; k < fill[j]; k++ {
			rowIdx[w] = rowIdx[k]
			val[w] = val[k]
			w++
		}
	}
	rowIdx = rowIdx[:w]
	val = val[:w]

	// Column metadata for structural variables.
	s.upper = make([]float64, 0, maxCols)
	s.cost = make([]float64, 0, maxCols)
	s.art = make([]bool, 0, maxCols)
	for j := 0; j < s.n; j++ {
		s.upper = append(s.upper, p.upper[j])
		s.cost = append(s.cost, p.obj[j])
		s.art = append(s.art, false)
	}

	// Slack / surplus / artificial columns in the bounded tableau's order.
	s.startBasis = make([]int, s.m)
	col := s.n
	addUnit := func(rowI int, coef float64, isArt bool) int {
		colPtr[col] = int32(len(rowIdx))
		rowIdx = append(rowIdx, int32(rowI))
		val = append(val, coef)
		s.upper = append(s.upper, math.Inf(1))
		s.cost = append(s.cost, 0)
		s.art = append(s.art, isArt)
		col++
		return col - 1
	}
	for i := 0; i < s.m; i++ {
		switch senses[i] {
		case LE:
			s.startBasis[i] = addUnit(i, 1, false)
		case GE:
			addUnit(i, -1, false) // surplus
			s.startBasis[i] = addUnit(i, 1, true)
		case EQ:
			s.startBasis[i] = addUnit(i, 1, true)
		}
	}
	s.nTotal = col
	colPtr[col] = int32(len(rowIdx))
	s.a = &cscMatrix{m: s.m, colPtr: colPtr[:col+1], rowIdx: rowIdx, val: val}
	return s
}
