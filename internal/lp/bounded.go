// Bounded-variable primal simplex.
//
// The default solver (lp.go) lowers every finite upper bound onto an
// explicit ≤ row, which keeps the pivot logic textbook-simple but grows the
// basis by one row per bound. Energy dispatch LPs are bound-dominated —
// every flow, generation and load variable is boxed — so this file provides
// the classic bounded-variable simplex in which nonbasic variables may sit
// at either bound and bound-to-bound "flips" avoid pivots entirely. On the
// six-state model it shrinks the basis from ~150 rows to ~50 and the
// speedup is measured by BenchmarkLPMethods (ablation in DESIGN.md §6).
//
// Select it with Options{Method: MethodBounded}. Results (objective,
// primal values, row duals, bound duals) agree with the default method to
// solver tolerance; the cross-check is TestMethodsAgree in bounded_test.go.
package lp

import (
	"fmt"
	"math"
)

// Method selects the simplex implementation.
type Method int8

const (
	// MethodAuto (the zero value) picks MethodBounded for bound-dominated
	// problems (at least 8 finite upper bounds and more bounds than
	// constraint rows) and MethodRows otherwise.
	MethodAuto Method = iota
	// MethodRows lowers upper bounds onto explicit rows (the most
	// battle-tested path; quadratically slower when bounds dominate).
	MethodRows
	// MethodBounded keeps upper bounds implicit in the pivot rules
	// (smaller basis; ~7× faster on the westgrid dispatch LP).
	MethodBounded
	// MethodRevised is the sparse revised simplex (revised.go): CSC column
	// storage, LU-factorized basis with product-form eta updates, sparse
	// FTRAN/BTRAN and partial pricing. Same standard form and pivot rules
	// as MethodBounded, O(nnz) per pivot instead of O(m·nTotal) — the only
	// method that scales to the national gridgen tier.
	MethodRevised
)

// MethodDense is an alias for MethodAuto: the dense solver family (rows or
// bounded tableau, auto-selected). It names the differential oracle the
// revised method is tested against.
const MethodDense = MethodAuto

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodRows:
		return "rows"
	case MethodBounded:
		return "bounded"
	case MethodRevised:
		return "revised"
	default:
		return "Method(?)"
	}
}

// ParseMethod maps a CLI flag value to a Method. The empty string, "auto"
// and "dense" all select the dense auto-picked family.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "auto", "dense":
		return MethodAuto, nil
	case "rows":
		return MethodRows, nil
	case "bounded":
		return MethodBounded, nil
	case "revised":
		return MethodRevised, nil
	}
	return MethodAuto, fmt.Errorf("lp: unknown method %q (want auto|dense|rows|bounded|revised)", s)
}

// resolve maps MethodAuto to a concrete method for problem p.
func (m Method) resolve(p *Problem) Method {
	if m != MethodAuto {
		return m
	}
	if p.bounds >= 8 && p.bounds > len(p.rows) {
		return MethodBounded
	}
	return MethodRows
}

// nonbasic status markers.
const (
	atLower int8 = iota
	atUpper
	inBasis
)

// boundedTableau is the working state of the bounded-variable simplex in
// dense tableau form: a holds B⁻¹A for all columns, rhs holds the basic
// variable *values* (already adjusted for nonbasic-at-upper offsets).
type boundedTableau struct {
	tol        float64
	skipDuals  bool
	forceBland bool
	g          *guard
	p          *Problem

	n      int // structural variables
	m      int // rows (user constraints only)
	nTotal int // structural + slack/artificial columns

	a     [][]float64
	rhs   []float64
	upper []float64 // per column (slacks: +Inf, artificials: 0 after phase 1)
	cost  []float64 // phase-2 cost per column

	basis  []int  // column basic in each row
	status []int8 // per column
	art    []bool // per column: is artificial

	iters int
	max   int
}

// solveBounded is the entry point used by Problem.SolveOpts for
// MethodBounded.
func solveBounded(p *Problem, opts Options, g *guard) (*Solution, error) {
	if opts.WarmStart != nil {
		if sol, err, ok := solveBoundedWarm(p, opts, g); ok {
			return sol, err
		}
		mWarmFallbacks.Inc()
	}
	t := newBoundedTableau(p, opts)
	t.g = g
	st := t.run()
	switch st {
	case statusAborted:
		return nil, p.solveErr("lp.pivot", Optimal, t.iters, g.err)
	case Infeasible, Unbounded, IterationLimit, Canceled, DeadlineExceeded:
		return &Solution{Status: st, Iterations: t.iters}, nil
	}
	return t.extract(p)
}

func newBoundedTableau(p *Problem, opts Options) *boundedTableau {
	t := &boundedTableau{tol: opts.tol(), skipDuals: opts.SkipDuals, forceBland: opts.ForceBland, p: p}
	t.n = len(p.obj)
	t.m = len(p.rows)

	maxCols := t.n + 2*t.m
	t.a = make([][]float64, t.m)
	backing := make([]float64, t.m*maxCols)
	for i := range t.a {
		t.a[i] = backing[i*maxCols : (i+1)*maxCols]
	}
	t.rhs = make([]float64, t.m)
	t.upper = make([]float64, 0, maxCols)
	t.cost = make([]float64, 0, maxCols)
	t.basis = make([]int, t.m)
	t.status = make([]int8, 0, maxCols)
	t.art = make([]bool, 0, maxCols)

	for j := 0; j < t.n; j++ {
		t.upper = append(t.upper, p.upper[j])
		t.cost = append(t.cost, p.obj[j])
		t.status = append(t.status, atLower)
		t.art = append(t.art, false)
	}

	// Normalize rows to b ≥ 0 and add slack/artificial columns.
	type rowInfo struct {
		sense Sense
		rhs   float64
	}
	infos := make([]rowInfo, t.m)
	for i, row := range p.rows {
		s, rhs := row.Sense, row.RHS
		flip := rhs < 0
		if flip {
			rhs = -rhs
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		for _, co := range row.Coefs {
			v := co.Value
			if flip {
				v = -v
			}
			t.a[i][co.Var] += v
		}
		infos[i] = rowInfo{s, rhs}
		t.rhs[i] = rhs
	}
	col := t.n
	addCol := func(rowIdx int, coef float64, upper float64, isArt bool) int {
		t.a[rowIdx][col] = coef
		t.upper = append(t.upper, upper)
		t.cost = append(t.cost, 0)
		t.status = append(t.status, atLower)
		t.art = append(t.art, isArt)
		col++
		return col - 1
	}
	for i, info := range infos {
		switch info.sense {
		case LE:
			c := addCol(i, 1, math.Inf(1), false)
			t.basis[i] = c
			t.status[c] = inBasis
		case GE:
			addCol(i, -1, math.Inf(1), false) // surplus
			c := addCol(i, 1, math.Inf(1), true)
			t.basis[i] = c
			t.status[c] = inBasis
		case EQ:
			c := addCol(i, 1, math.Inf(1), true)
			t.basis[i] = c
			t.status[c] = inBasis
		}
	}
	t.nTotal = col
	t.max = opts.maxIter(t.m, t.nTotal)
	return t
}

// run executes both phases. Returns Optimal on success.
func (t *boundedTableau) run() Status {
	hasArt := false
	for _, isArt := range t.art {
		if isArt {
			hasArt = true
			break
		}
	}
	if hasArt {
		c1 := make([]float64, t.nTotal)
		for j, isArt := range t.art {
			if isArt {
				c1[j] = 1
			}
		}
		if st := t.simplex(c1); st != Optimal {
			return st
		}
		// Infeasible if any artificial remains positive.
		artSum := 0.0
		for i, bc := range t.basis {
			if t.art[bc] {
				artSum += t.rhs[i]
			}
		}
		scale := 1.0
		for _, v := range t.rhs {
			if v > scale {
				scale = v
			}
		}
		if artSum > t.tol*scale*float64(t.m+1)*100 {
			return Infeasible
		}
		// Clamp artificials to zero: cap their bounds so they cannot
		// re-enter at positive value in phase 2.
		for j, isArt := range t.art {
			if isArt {
				t.upper[j] = 0
			}
		}
	}
	return t.simplex(t.cost)
}

// value returns the current value of column j.
func (t *boundedTableau) value(j int) float64 {
	switch t.status[j] {
	case atUpper:
		return t.upper[j]
	case inBasis:
		for i, bc := range t.basis {
			if bc == j {
				return t.rhs[i]
			}
		}
	}
	return 0
}

// simplex runs bounded-variable pivots minimizing c over the current state.
func (t *boundedTableau) simplex(c []float64) Status {
	bland := t.forceBland
	noProgress := 0
	lastObj := math.Inf(1)
	for t.iters < t.max {
		if t.g.due(t.iters) {
			if st, stop := t.g.at("lp.pivot"); stop {
				return st
			}
		}
		// Objective for progress tracking.
		obj := 0.0
		for j := 0; j < t.nTotal; j++ {
			if t.status[j] == atUpper {
				obj += c[j] * t.upper[j]
			}
		}
		for i, bc := range t.basis {
			obj += c[bc] * t.rhs[i]
		}
		if obj < lastObj-t.tol {
			lastObj = obj
			noProgress = 0
		} else if noProgress++; noProgress > 2*(t.m+10) {
			if !bland {
				mBlandSwitch.Inc()
			}
			bland = true
		}

		// Reduced costs: r_j = c_j − c_Bᵀ (B⁻¹A)_j. Entering candidates:
		// at lower with r < −tol (increase), at upper with r > tol
		// (decrease).
		enter := -1
		enterDir := 1.0 // +1 increasing from lower, −1 decreasing from upper
		best := t.tol
		for j := 0; j < t.nTotal; j++ {
			if t.status[j] == inBasis {
				continue
			}
			if t.upper[j] == 0 && t.status[j] == atLower {
				continue // fixed at zero (clamped artificials)
			}
			r := c[j]
			for i, bc := range t.basis {
				if cb := c[bc]; cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			var imp float64
			var dir float64
			if t.status[j] == atLower && r < 0 {
				imp, dir = -r, 1
			} else if t.status[j] == atUpper && r > 0 {
				imp, dir = r, -1
			} else {
				continue
			}
			if imp > best {
				best = imp
				enter = j
				enterDir = dir
				if bland {
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Ratio test: moving x_enter by Δ·enterDir changes basic values
		// by −Δ·enterDir·column. Find the first limit among:
		//   (a) a basic variable reaching 0,
		//   (b) a basic variable reaching its upper bound,
		//   (c) x_enter reaching its own opposite bound.
		limit := math.Inf(1)
		if u := t.upper[enter]; !math.IsInf(u, 1) {
			limit = u // case (c): full flip distance
		}
		leave := -1
		leaveToUpper := false
		for i := 0; i < t.m; i++ {
			coef := enterDir * t.a[i][enter]
			bc := t.basis[i]
			if coef > t.tol {
				// Basic value decreases toward 0.
				ratio := t.rhs[i] / coef
				if ratio < limit-t.tol ||
					(ratio < limit+t.tol && leave >= 0 && bc < t.basis[leave]) {
					limit = ratio
					leave = i
					leaveToUpper = false
				}
			} else if coef < -t.tol {
				// Basic value increases toward its upper bound.
				if ub := t.upper[bc]; !math.IsInf(ub, 1) {
					ratio := (ub - t.rhs[i]) / -coef
					if ratio < limit-t.tol ||
						(ratio < limit+t.tol && leave >= 0 && bc < t.basis[leave]) {
						limit = ratio
						leave = i
						leaveToUpper = true
					}
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		t.iters++
		if leave < 0 {
			// Bound flip: x_enter runs to its opposite bound.
			t.flip(enter, enterDir, limit)
			continue
		}
		// Pivot: shift basic values for the move, then swap basis.
		t.move(enter, enterDir, limit)
		var enterValue float64
		if enterDir > 0 {
			enterValue = limit // rose from its lower bound (0)
		} else {
			enterValue = t.upper[enter] - limit // fell from its upper bound
		}
		outCol := t.basis[leave]
		if leaveToUpper {
			t.status[outCol] = atUpper
		} else {
			t.status[outCol] = atLower
		}
		t.pivot(leave, enter, enterValue)
		t.status[enter] = inBasis
	}
	return IterationLimit
}

// flip moves a nonbasic column across to its other bound, adjusting basic
// values.
func (t *boundedTableau) flip(j int, dir, delta float64) {
	t.move(j, dir, delta)
	if dir > 0 {
		t.status[j] = atUpper
	} else {
		t.status[j] = atLower
	}
}

// move shifts nonbasic column j by delta in direction dir and updates the
// basic variable values accordingly.
func (t *boundedTableau) move(j int, dir, delta float64) {
	if delta == 0 {
		return
	}
	for i := 0; i < t.m; i++ {
		t.rhs[i] -= dir * delta * t.a[i][j]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
}

// pivot performs the Gauss-Jordan elimination making column col basic in
// row `row`. Unlike the rows-method tableau, rhs stores basic-variable
// *values*, which are unchanged for rows other than `row` by a basis swap;
// only row `row` is rewritten to the entering variable's value (enterValue,
// computed by the caller from the ratio-test limit).
func (t *boundedTableau) pivot(row, col int, enterValue float64) {
	piv := t.a[row][col]
	inv := 1 / piv
	ar := t.a[row]
	for j := 0; j < t.nTotal; j++ {
		ar[j] *= inv
	}
	t.rhs[row] = enterValue
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			ai[j] -= f * ar[j]
		}
	}
	t.basis[row] = col
}

// extract reads out the solution and recovers duals by solving Bᵀy = c_B
// against the original (pre-pivot) standard-form matrix.
func (t *boundedTableau) extract(p *Problem) (*Solution, error) {
	sol := &Solution{
		Status:     Optimal,
		X:          make([]float64, t.n),
		Duals:      make([]float64, t.m),
		BoundDuals: make([]float64, t.n),
		Iterations: t.iters,
	}
	for j := 0; j < t.n; j++ {
		v := t.value(j)
		if math.Abs(v) < 1e-12 {
			v = 0
		}
		sol.X[j] = v
	}
	obj := 0.0
	for j, x := range sol.X {
		obj += p.obj[j] * x
	}
	sol.Objective = obj
	sol.basis = t.captureBasis()

	if t.skipDuals {
		return sol, nil
	}
	// Rebuild original standard-form columns.
	orig := t.originalMatrix(p)
	bt := make([][]float64, t.m)
	for i := range bt {
		bt[i] = make([]float64, t.m+1)
	}
	for k, bc := range t.basis {
		for i := 0; i < t.m; i++ {
			bt[k][i] = orig[i][bc]
		}
		bt[k][t.m] = t.cost[bc]
	}
	y, ok := solveDense(bt)
	if !ok {
		return nil, p.solveErr("dual-extraction", Optimal, t.iters, ErrSingularBasis)
	}
	for i, row := range p.rows {
		d := y[i]
		if row.RHS < 0 {
			d = -d
		}
		sol.Duals[i] = d
	}
	// Bound duals: reduced cost of structural variables nonbasic at their
	// upper bound (relaxing u_j by δ changes the optimum by r_j·δ ≤ 0).
	for j := 0; j < t.n; j++ {
		if t.status[j] != atUpper {
			continue
		}
		r := t.cost[j]
		for i := 0; i < t.m; i++ {
			r -= y[i] * orig[i][j]
		}
		sol.BoundDuals[j] = r
	}
	return sol, nil
}

// originalMatrix reconstructs the pre-pivot standard-form matrix (structural
// + slack/surplus/artificial columns) for dual extraction.
func (t *boundedTableau) originalMatrix(p *Problem) [][]float64 {
	orig := make([][]float64, t.m)
	backing := make([]float64, t.m*t.nTotal)
	for i := range orig {
		orig[i] = backing[i*t.nTotal : (i+1)*t.nTotal]
	}
	for i, row := range p.rows {
		flip := row.RHS < 0
		for _, co := range row.Coefs {
			v := co.Value
			if flip {
				v = -v
			}
			orig[i][co.Var] += v
		}
	}
	// Replay the slack/artificial column layout of newBoundedTableau.
	col := t.n
	for i, row := range p.rows {
		s := row.Sense
		if row.RHS < 0 {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		switch s {
		case LE:
			orig[i][col] = 1
			col++
		case GE:
			orig[i][col] = -1
			col++
			orig[i][col] = 1
			col++
		case EQ:
			orig[i][col] = 1
			col++
		}
	}
	return orig
}
