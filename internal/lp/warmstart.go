// Warm-start support for the bounded-variable simplex.
//
// The evaluation workloads of this repository solve thousands of dispatch
// LPs that differ from a baseline by a handful of edge perturbations
// (capacity outages, cost or loss tweaks). Structure — variables, rows,
// column layout — is identical across the family; only objective
// coefficients, bounds, and constraint entries move. Solution.Basis()
// exports the optimal basis of a solved problem, and Options.WarmStart
// re-enters phase 2 of a later solve directly from that basis:
//
//	base, _ := p.SolveOpts(lp.Options{})
//	perturbed.SolveOpts(lp.Options{WarmStart: base.Basis()})
//
// The warm path refactorizes the basis against the perturbed matrix
// (Gauss-Jordan with partial pivoting), recomputes the basic values, and
// verifies primal feasibility under the perturbed bounds. When the stale
// basis is singular, dimensionally incompatible, or primal infeasible for
// the new problem, the solver falls back to the cold two-phase method, so a
// warm-started solve is never less correct than a cold one — only cheaper
// when the basis survives. Solution.WarmStarted reports which path produced
// the result, and the lp.warm_*/lp.cold_pivots counters attribute pivot
// work to each path.
//
// Only the bounded-layout methods — MethodBounded and MethodRevised, which
// share the standard-form column layout by construction — export a reusable
// basis (the rows method lowers bounds onto rows, so its basis does not
// transfer across bound changes). Bases transfer freely between the two
// bounded-layout methods; a basis from another method or with mismatched
// dimensions is rejected into the cold path rather than erroring.
package lp

import "math"

// Basis is an exported simplex basis: which columns are basic and, for the
// bounded-variable method, at which bound every nonbasic column rests. It is
// immutable after creation and safe to share across concurrent solves.
type Basis struct {
	method Method
	n      int // structural variables
	m      int // constraint rows
	nTotal int // total columns incl. slack/artificial
	rows   []int
	status []int8
}

// Method reports which simplex implementation produced the basis.
func (b *Basis) Method() Method { return b.method }

// Size returns the (rows, columns) dimensions the basis was extracted from.
func (b *Basis) Size() (rows, cols int) { return b.m, b.nTotal }

// Basis returns the optimal basis of a solved problem, or nil when the
// solve did not finish at an optimal basis or used a method that does not
// export one (MethodRows). The result is immutable; reuse it freely across
// concurrent warm-started solves.
func (s *Solution) Basis() *Basis { return s.basis }

// captureBasis snapshots the bounded tableau's final basis for reuse.
func (t *boundedTableau) captureBasis() *Basis {
	return &Basis{
		method: MethodBounded,
		n:      t.n,
		m:      t.m,
		nTotal: t.nTotal,
		rows:   append([]int(nil), t.basis...),
		status: append([]int8(nil), t.status...),
	}
}

// solveBoundedWarm attempts a phase-2-only solve from the supplied basis.
// The boolean reports whether the warm attempt produced a usable outcome;
// false sends the caller down the cold path (the tableau it mutated is
// discarded, so a failed warm attempt leaves no residue).
func solveBoundedWarm(p *Problem, opts Options, g *guard) (*Solution, error, bool) {
	mWarmAttempts.Inc()
	t := newBoundedTableau(p, opts)
	t.g = g
	if !t.applyWarmBasis(opts.WarmStart) {
		return nil, nil, false
	}
	st := t.simplex(t.cost)
	switch st {
	case statusAborted:
		return nil, p.solveErr("lp.pivot", Optimal, t.iters, g.err), true
	case Canceled, DeadlineExceeded:
		sol := &Solution{Status: st, Iterations: t.iters, WarmStarted: true}
		return sol, nil, true
	case Optimal:
		// Proceed to extraction below.
	default:
		// Unbounded or IterationLimit from a stale basis: distrust it and
		// re-derive from a cold start (a genuinely unbounded problem is
		// unbounded from any start, so correctness is unaffected).
		mWarmPivots.Add(int64(t.iters))
		return nil, nil, false
	}
	sol, err := t.extract(p)
	if err != nil {
		// e.g. a singular basis during dual extraction; the cold path may
		// land on a better-conditioned optimal basis.
		mWarmPivots.Add(int64(t.iters))
		return nil, nil, false
	}
	mWarmSolves.Inc()
	sol.WarmStarted = true
	return sol, nil, true
}

// applyWarmBasis reconstitutes the tableau at the supplied basis: statuses
// are restored, the basis is refactorized against the (possibly perturbed)
// matrix, and the basic values are recomputed and checked for primal
// feasibility under the current bounds. Returns false when the basis cannot
// be applied; the tableau must then be discarded.
func (t *boundedTableau) applyWarmBasis(b *Basis) bool {
	if b == nil || (b.method != MethodBounded && b.method != MethodRevised) ||
		b.n != t.n || b.m != t.m || b.nTotal != t.nTotal ||
		len(b.rows) != t.m || len(b.status) != t.nTotal {
		return false
	}
	inBasisCount := 0
	for j, st := range b.status {
		switch st {
		case inBasis:
			// A basic artificial is fine: degenerate dispatch optima
			// legitimately finish with an artificial basic at value zero,
			// and the upper clamp below plus the primal feasibility check
			// pin it there. Rejecting such bases made nearly half of all
			// structurally identical re-solves fall back to the cold path
			// (the lp.warm_fallbacks regression; see
			// TestWarmStartDegenerateArtificialBasis).
			inBasisCount++
		case atUpper:
			if math.IsInf(t.upper[j], 1) {
				return false // bound vanished; the status is meaningless
			}
		case atLower:
			// Always valid (lower bounds are fixed at zero).
		default:
			return false
		}
	}
	if inBasisCount != t.m {
		return false
	}
	seen := make([]bool, t.nTotal)
	for _, col := range b.rows {
		if col < 0 || col >= t.nTotal || b.status[col] != inBasis || seen[col] {
			return false
		}
		seen[col] = true
	}

	// Refactorize: Gauss-Jordan the basis columns to unit vectors with
	// partial (largest-entry) pivoting over the not-yet-assigned rows. On
	// exit a = B⁻¹A and rhs = B⁻¹b. A pivot smaller than tolerance means
	// the basis is singular for the perturbed matrix.
	assigned := make([]bool, t.m)
	for _, col := range b.rows {
		row, rowAbs := -1, t.tol
		for i := 0; i < t.m; i++ {
			if assigned[i] {
				continue
			}
			if ab := math.Abs(t.a[i][col]); ab > rowAbs {
				row, rowAbs = i, ab
			}
		}
		if row < 0 {
			return false
		}
		t.refactorPivot(row, col)
		t.basis[row] = col
		assigned[row] = true
	}

	copy(t.status, b.status)
	// Artificials never re-enter a warm phase 2.
	for j, isArt := range t.art {
		if isArt {
			t.upper[j] = 0
		}
	}
	// Nonbasic-at-upper columns contribute their (current) bound value.
	for j, st := range t.status {
		if st != atUpper {
			continue
		}
		if u := t.upper[j]; u != 0 {
			for i := 0; i < t.m; i++ {
				t.rhs[i] -= t.a[i][j] * u
			}
		}
	}

	// Primal feasibility under the perturbed bounds, with the same
	// scale-aware tolerance the cold phase 1 uses.
	scale := 1.0
	for _, v := range t.rhs {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	eps := t.tol * scale * float64(t.m+1) * 100
	for i := 0; i < t.m; i++ {
		v := t.rhs[i]
		if v < -eps {
			return false
		}
		u := t.upper[t.basis[i]]
		if !math.IsInf(u, 1) && v > u+eps {
			return false
		}
		if v < 0 {
			t.rhs[i] = 0
		} else if v > u {
			t.rhs[i] = u
		}
	}
	return true
}

// refactorPivot performs a Gauss-Jordan elimination step on both the matrix
// and the rhs (which therefore tracks B⁻¹b, unlike boundedTableau.pivot,
// whose rhs stores basic values).
func (t *boundedTableau) refactorPivot(row, col int) {
	inv := 1 / t.a[row][col]
	ar := t.a[row]
	for j := 0; j < t.nTotal; j++ {
		ar[j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			ai[j] -= f * ar[j]
		}
		t.rhs[i] -= f * t.rhs[row]
	}
}
