// The dense-oracle differential battery for the revised simplex.
//
// External test package: it drives the revised method through the real
// dispatch pipeline (graph fixtures → flow LPs) as well as seeded random
// LPs, comparing every observable — status, objective, primal values, duals
// — against the dense bounded method, with the sparse extraction path
// forced via the export_test hook so the battery exercises the code the
// national-scale tier runs, not the dense-finish shortcut.
package lp_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
)

// diffTol is the agreement tolerance the battery asserts: absolute at small
// scale, relative once values reach the model's magnitudes.
const diffTol = 1e-9

func agree(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= diffTol*scale
}

func loadGrids(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "grids", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no grid fixtures in testdata/grids")
	}
	grids := make(map[string]*graph.Graph, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var g graph.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		name := filepath.Base(p)
		grids[name[:len(name)-len(".json")]] = &g
	}
	return grids
}

func sortedNames(grids map[string]*graph.Graph) []string {
	names := make([]string, 0, len(grids))
	for n := range grids {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// compareDispatch solves g with the dense oracle and the revised method and
// asserts full agreement of the dispatch observables.
func compareDispatch(t *testing.T, label string, g *graph.Graph) {
	t.Helper()
	dense, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodDense}})
	if err != nil {
		t.Fatalf("%s: dense: %v", label, err)
	}
	rev, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodRevised}})
	if err != nil {
		t.Fatalf("%s: revised: %v", label, err)
	}
	if !agree(dense.Welfare, rev.Welfare) {
		t.Errorf("%s: welfare %v (dense) vs %v (revised)", label, dense.Welfare, rev.Welfare)
	}
	for id, v := range dense.Flow {
		if !agree(v, rev.Flow[id]) {
			t.Errorf("%s: flow[%s] %v vs %v", label, id, v, rev.Flow[id])
		}
	}
	for id, v := range dense.Gen {
		if !agree(v, rev.Gen[id]) {
			t.Errorf("%s: gen[%s] %v vs %v", label, id, v, rev.Gen[id])
		}
	}
	for id, v := range dense.Load {
		if !agree(v, rev.Load[id]) {
			t.Errorf("%s: load[%s] %v vs %v", label, id, v, rev.Load[id])
		}
	}
	for id, v := range dense.Price {
		if !agree(v, rev.Price[id]) {
			t.Errorf("%s: price[%s] %v vs %v", label, id, v, rev.Price[id])
		}
	}
}

// TestRevisedVsDenseDifferential is the acceptance battery: grid fixtures,
// full single-edge outage sweeps, ≥200 seeded random LPs, and the
// SolveError/status taxonomy, all under the forced sparse extraction path.
func TestRevisedVsDenseDifferential(t *testing.T) {
	old := lp.SetRevisedFinishMaxRows(-1)
	defer lp.SetRevisedFinishMaxRows(old)

	t.Run("fixtures", func(t *testing.T) {
		grids := loadGrids(t)
		for _, name := range sortedNames(grids) {
			compareDispatch(t, name, grids[name])
		}
	})

	t.Run("outage-sweep", func(t *testing.T) {
		grids := loadGrids(t)
		for _, name := range sortedNames(grids) {
			g := grids[name]
			ids := g.AssetIDs()
			if testing.Short() && len(ids) > 8 {
				ids = ids[:8]
			}
			for _, id := range ids {
				out := g.Clone()
				out.Edge(id).Capacity = 0
				compareDispatch(t, name+"/outage:"+id, out)
			}
		}
	})

	t.Run("random-lps", func(t *testing.T) {
		optimal, other := 0, 0
		for seed := uint64(0); seed < 250; seed++ {
			p := lp.GenRandomProblem(seed)
			dense, errD := p.SolveOpts(lp.Options{Method: lp.MethodDense})
			rev, errR := lp.GenRandomProblem(seed).SolveOpts(lp.Options{Method: lp.MethodRevised})
			if (errD == nil) != (errR == nil) {
				// Dual-extraction singularities may be basis-dependent;
				// only a one-sided *solve* failure is a bug.
				if errD == nil && dense.Status == lp.Optimal ||
					errR == nil && rev.Status == lp.Optimal {
					t.Errorf("seed %d: one-sided error: dense=%v revised=%v", seed, errD, errR)
				}
				continue
			}
			if errD != nil {
				continue
			}
			if dense.Status != rev.Status {
				t.Errorf("seed %d: status %v (dense) vs %v (revised)", seed, dense.Status, rev.Status)
				continue
			}
			if dense.Status != lp.Optimal {
				other++
				continue
			}
			optimal++
			if !agree(dense.Objective, rev.Objective) {
				t.Errorf("seed %d: objective %v vs %v", seed, dense.Objective, rev.Objective)
			}
			for j := range dense.X {
				if !agree(dense.X[j], rev.X[j]) {
					t.Errorf("seed %d: X[%d] %v vs %v", seed, j, dense.X[j], rev.X[j])
				}
			}
		}
		if optimal < 100 {
			t.Fatalf("battery too weak: only %d optimal instances (want ≥100; %d non-optimal)", optimal, other)
		}
	})

	t.Run("taxonomy", func(t *testing.T) {
		methods := []lp.Method{lp.MethodDense, lp.MethodRevised}

		// Infeasible: upper bound 1 vs a ≥ 2 row.
		infeasible := func() *lp.Problem {
			p := lp.NewProblem()
			x := p.AddVariable("x", 1, 1)
			p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: x, Value: 1}}, Sense: lp.GE, RHS: 2})
			return p
		}
		// Unbounded: minimize −x−y with no cap in the improving direction.
		unbounded := func() *lp.Problem {
			p := lp.NewProblem()
			x := p.AddVariable("x", -1, math.Inf(1))
			y := p.AddVariable("y", -1, math.Inf(1))
			p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: x, Value: 1}, {Var: y, Value: -1}}, Sense: lp.LE, RHS: 3})
			return p
		}
		for _, m := range methods {
			if sol, err := infeasible().SolveOpts(lp.Options{Method: m}); err != nil || sol.Status != lp.Infeasible {
				t.Errorf("method %v: infeasible LP → status=%v err=%v", m, statusOf(sol), err)
			}
			if sol, err := unbounded().SolveOpts(lp.Options{Method: m}); err != nil || sol.Status != lp.Unbounded {
				t.Errorf("method %v: unbounded LP → status=%v err=%v", m, statusOf(sol), err)
			}
			// Canceled context surfaces as a Canceled status, not an error.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			p := lp.GenRandomProblem(11)
			if sol, err := p.SolveOpts(lp.Options{Method: m, Ctx: ctx}); err != nil || sol.Status != lp.Canceled {
				t.Errorf("method %v: canceled ctx → status=%v err=%v", m, statusOf(sol), err)
			}
		}
	})
}

func statusOf(sol *lp.Solution) lp.Status {
	if sol == nil {
		return lp.Status(-99)
	}
	return sol.Status
}

// TestRevisedWarmAcrossMethods checks factorization reuse across the method
// boundary: a basis captured by one bounded-layout method warm-starts the
// other, in both directions, with the optimum agreeing to battery tolerance.
func TestRevisedWarmAcrossMethods(t *testing.T) {
	old := lp.SetRevisedFinishMaxRows(-1)
	defer lp.SetRevisedFinishMaxRows(old)

	grids := loadGrids(t)
	for _, name := range sortedNames(grids) {
		g := grids[name]
		dense, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodDense}})
		if err != nil {
			t.Fatal(err)
		}
		rev, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodRevised}})
		if err != nil {
			t.Fatal(err)
		}
		if dense.Basis == nil || rev.Basis == nil {
			t.Fatalf("%s: missing exported basis (dense=%v revised=%v)", name, dense.Basis != nil, rev.Basis != nil)
		}
		// Dense basis → revised warm solve; revised basis → dense warm.
		rw, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodRevised, WarmStart: dense.Basis}})
		if err != nil {
			t.Fatalf("%s: revised warm from dense basis: %v", name, err)
		}
		if !rw.WarmStarted {
			t.Errorf("%s: revised solve from dense basis fell back to cold", name)
		}
		if !agree(dense.Welfare, rw.Welfare) {
			t.Errorf("%s: revised-warm welfare %v vs %v", name, rw.Welfare, dense.Welfare)
		}
		dw, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: lp.MethodBounded, WarmStart: rev.Basis}})
		if err != nil {
			t.Fatalf("%s: dense warm from revised basis: %v", name, err)
		}
		if !dw.WarmStarted {
			t.Errorf("%s: dense solve from revised basis fell back to cold", name)
		}
		if !agree(dense.Welfare, dw.Welfare) {
			t.Errorf("%s: dense-warm welfare %v vs %v", name, dw.Welfare, dense.Welfare)
		}
	}
}
