package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func boundedOpts() Options { return Options{Method: MethodBounded} }

func TestBoundedSimpleMaximization(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -3, math.Inf(1))
	y := p.AddVariable("y", -2, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: LE, RHS: 4})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 3}}, Sense: LE, RHS: 6})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -12, eps) {
		t.Fatalf("status=%v obj=%v, want optimal -12", sol.Status, sol.Objective)
	}
}

func TestBoundedUpperBoundsImplicit(t *testing.T) {
	// min -x - y s.t. x ≤ 2, y ≤ 3 (as bounds), x + y ≤ 4 → -4.
	p := NewProblem()
	x := p.AddVariable("x", -1, 2)
	y := p.AddVariable("y", -1, 3)
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: LE, RHS: 4})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -4, eps) {
		t.Fatalf("objective = %v, want -4", sol.Objective)
	}
	if sol.X[x] > 2+eps || sol.X[y] > 3+eps {
		t.Fatalf("bounds violated: %v %v", sol.X[x], sol.X[y])
	}
}

func TestBoundedPureBoundFlip(t *testing.T) {
	// No constraints at all: min -x with x ≤ 5 → pure bound flip, x=5.
	p := NewProblem()
	x := p.AddVariable("x", -1, 5)
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[x], 5, eps) || !approx(sol.Objective, -5, eps) {
		t.Fatalf("x=%v obj=%v, want 5,-5", sol.X[x], sol.Objective)
	}
	if !approx(sol.BoundDuals[x], -1, eps) {
		t.Fatalf("bound dual = %v, want -1", sol.BoundDuals[x])
	}
}

func TestBoundedInfeasibleAndUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, 1)
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: GE, RHS: 2})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	p2 := NewProblem()
	y := p2.AddVariable("y", -1, math.Inf(1))
	p2.AddConstraint(Constraint{Coefs: []Coef{{y, 1}}, Sense: GE, RHS: 1})
	sol2, err := p2.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol2.Status)
	}
}

func TestBoundedEqualityAndGE(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, math.Inf(1))
	y := p.AddVariable("y", 2, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 3})
	p.AddConstraint(Constraint{Coefs: []Coef{{y, 1}}, Sense: GE, RHS: 1})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 4, eps) {
		t.Fatalf("status=%v obj=%v, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestBoundedDualsTransportation(t *testing.T) {
	p := NewProblem()
	a := p.AddVariable("a", 2, 6)
	b := p.AddVariable("b", 3, math.Inf(1))
	demand := p.AddConstraint(Constraint{Coefs: []Coef{{a, 1}, {b, 1}}, Sense: GE, RHS: 10})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 24, eps) {
		t.Fatalf("objective = %v, want 24", sol.Objective)
	}
	if !approx(sol.Duals[demand], 3, eps) {
		t.Fatalf("demand dual = %v, want 3", sol.Duals[demand])
	}
	if !approx(sol.BoundDuals[a], -1, eps) {
		t.Fatalf("bound dual of a = %v, want -1", sol.BoundDuals[a])
	}
}

// TestMethodsAgree is the central cross-check: both simplex implementations
// must produce identical objectives (and equally feasible solutions) on
// randomized bound-rich problems.
func TestMethodsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(7)
		nc := rng.Intn(6)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			u := math.Inf(1)
			if rng.Intn(3) > 0 { // bounds dominate
				u = rng.Float64() * 10
			}
			p.AddVariable("v", rng.NormFloat64()*3, u)
		}
		for i := 0; i < nc; i++ {
			var coefs []Coef
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, rng.NormFloat64() * 2})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			p.AddConstraint(Constraint{
				Coefs: coefs,
				Sense: Sense(rng.Intn(3)),
				RHS:   rng.NormFloat64() * 5,
			})
		}
		rows, err1 := p.SolveOpts(Options{Method: MethodRows})
		bounded, err2 := p.SolveOpts(Options{Method: MethodBounded})
		if (err1 == nil) != (err2 == nil) {
			// Dual extraction may fail on redundant rows in one method
			// but not the other; tolerate only that asymmetry.
			return errors.Is(err1, ErrSingularBasis) || errors.Is(err2, ErrSingularBasis)
		}
		if err1 != nil {
			return true
		}
		if rows.Status != bounded.Status {
			return false
		}
		if rows.Status != Optimal {
			return true
		}
		scale := 1 + math.Abs(rows.Objective)
		if math.Abs(rows.Objective-bounded.Objective) > 1e-6*scale {
			return false
		}
		// Bounded solution must satisfy all constraints and bounds.
		for j, x := range bounded.X {
			if x < -1e-7 || x > p.upper[j]+1e-7 {
				return false
			}
		}
		for _, row := range p.rows {
			lhs := 0.0
			for _, co := range row.Coefs {
				lhs += co.Value * bounded.X[co.Var]
			}
			tol := 1e-6 * (1 + math.Abs(row.RHS))
			switch row.Sense {
			case LE:
				if lhs > row.RHS+tol {
					return false
				}
			case GE:
				if lhs < row.RHS-tol {
					return false
				}
			case EQ:
				if math.Abs(lhs-row.RHS) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedDualsAgree compares dual values between methods on problems
// with unique optima.
func TestBoundedDualsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(4)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			p.AddVariable("v", 0.5+rng.Float64()*4, 1+rng.Float64()*9)
		}
		nc := 1 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			coefs := make([]Coef, nv)
			for j := 0; j < nv; j++ {
				coefs[j] = Coef{j, 0.2 + rng.Float64()}
			}
			p.AddConstraint(Constraint{Coefs: coefs, Sense: GE, RHS: 1 + rng.Float64()*3})
		}
		r1, err1 := p.SolveOpts(Options{Method: MethodRows})
		r2, err2 := p.SolveOpts(Options{Method: MethodBounded})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: err1=%v err2=%v", trial, err1, err2)
		}
		if r1.Status != Optimal || r2.Status != Optimal {
			continue
		}
		// Strong duality must hold for the bounded method too.
		dualObj := 0.0
		for i, row := range p.rows {
			dualObj += r2.Duals[i] * row.RHS
		}
		for j := 0; j < nv; j++ {
			dualObj += r2.BoundDuals[j] * p.upper[j]
		}
		if math.Abs(dualObj-r2.Objective) > 1e-6*(1+math.Abs(r2.Objective)) {
			t.Fatalf("trial %d: bounded strong duality violated: primal %v dual %v",
				trial, r2.Objective, dualObj)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodAuto.String() != "auto" || MethodRows.String() != "rows" || MethodBounded.String() != "bounded" {
		t.Fatal("method strings wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should render")
	}
}

func TestBoundedDegenerateBeale(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -0.75, math.Inf(1))
	y := p.AddVariable("y", 150, math.Inf(1))
	z := p.AddVariable("z", -0.02, math.Inf(1))
	w := p.AddVariable("w", 6, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coefs: []Coef{{z, 1}}, Sense: LE, RHS: 1})
	sol, err := p.SolveOpts(boundedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -0.05, eps) {
		t.Fatalf("Beale: status=%v obj=%v, want optimal -0.05", sol.Status, sol.Objective)
	}
}
