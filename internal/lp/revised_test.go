package lp

import (
	"errors"
	"math"
	"testing"

	"cpsguard/internal/rng"
)

// forceSparseExtract makes the revised method run its sparse solver on
// instances of every size for the duration of one test.
func forceSparseExtract(t *testing.T) {
	t.Helper()
	old := revisedFinishMaxRows
	revisedFinishMaxRows = -1
	t.Cleanup(func() { revisedFinishMaxRows = old })
}

// TestWarmStartDegenerateArtificialBasis is the lp.warm_fallbacks
// regression: degenerate dispatch optima legitimately finish with an
// artificial basic at value zero (a redundant conservation row, say), and
// the warm path used to reject every such basis — so a structurally
// identical re-solve permanently fell back to the cold two-phase method
// (164 of 344 warm attempts in BENCH_warmstart.json). The tightened check
// accepts a basic artificial (its bound is clamped to zero and the primal
// feasibility check pins it there) and the re-solve must stay warm with a
// bit-identical optimum.
func TestWarmStartDegenerateArtificialBasis(t *testing.T) {
	// A redundant EQ pair: after phase 1 drives one artificial out, the
	// dependent row's artificial has no pivot to leave on and stays basic
	// at zero.
	build := func() *Problem {
		p := NewProblem()
		x := p.AddVariable("x", -1, 4)
		y := p.AddVariable("y", -2, 4)
		p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 3})
		p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 3})
		return p
	}
	for _, m := range []Method{MethodBounded, MethodRevised} {
		t.Run(m.String(), func(t *testing.T) {
			cold, err := build().SolveOpts(Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if cold.Status != Optimal {
				t.Fatalf("cold status %v", cold.Status)
			}
			b := cold.Basis()
			if b == nil {
				t.Fatal("no basis exported")
			}
			// The regression is only meaningful if the captured basis
			// really contains an artificial column.
			tab := newBoundedTableau(build(), Options{})
			hasArt := false
			for _, col := range b.rows {
				if tab.art[col] {
					hasArt = true
				}
			}
			if !hasArt {
				t.Fatal("fixture no longer produces a basic artificial; regression test is vacuous")
			}
			warm, err := build().SolveOpts(Options{Method: m, WarmStart: b})
			if err != nil {
				t.Fatal(err)
			}
			if !warm.WarmStarted {
				t.Fatal("structurally identical re-solve fell back to the cold path")
			}
			if warm.Objective != cold.Objective {
				t.Fatalf("warm objective %v != cold %v (want bit-identical)", warm.Objective, cold.Objective)
			}
			for j := range cold.X {
				if warm.X[j] != cold.X[j] {
					t.Fatalf("warm X[%d]=%v != cold %v (want bit-identical)", j, warm.X[j], cold.X[j])
				}
			}
		})
	}
}

// TestWarmStartIdenticalResolveNeverFallsBack is the tightened stale-basis
// property: re-solving the exact same problem from its own optimal basis
// must take the warm path, for every problem in the seeded battery and for
// both bounded-layout methods.
func TestWarmStartIdenticalResolveNeverFallsBack(t *testing.T) {
	for _, m := range []Method{MethodBounded, MethodRevised} {
		t.Run(m.String(), func(t *testing.T) {
			fellBack := 0
			for seed := uint64(0); seed < 120; seed++ {
				p := GenRandomProblem(seed)
				cold, err := p.SolveOpts(Options{Method: m})
				if err != nil || cold.Status != Optimal || cold.Basis() == nil {
					continue
				}
				warm, err := GenRandomProblem(seed).SolveOpts(Options{Method: m, WarmStart: cold.Basis()})
				if err != nil {
					t.Fatalf("seed %d: warm re-solve error: %v", seed, err)
				}
				if !warm.WarmStarted {
					fellBack++
					t.Errorf("seed %d: identical re-solve fell back", seed)
				}
			}
			if fellBack > 0 {
				t.Fatalf("%d identical re-solves fell back", fellBack)
			}
		})
	}
}

// TestRevisedCyclingBland pins anti-cycling behavior on Beale's classic
// cycling example, which loops forever under naive Dantzig pivoting. Both
// the automatic no-progress Bland switch and ForceBland must terminate at
// the known optimum (−1/20), on the dense oracle and the revised method
// alike — including the revised method's sparse extraction path.
func TestRevisedCyclingBland(t *testing.T) {
	forceSparseExtract(t)
	build := func() *Problem {
		p := NewProblem()
		x1 := p.AddVariable("x1", -0.75, math.Inf(1))
		x2 := p.AddVariable("x2", 150, math.Inf(1))
		x3 := p.AddVariable("x3", -0.02, 1)
		x4 := p.AddVariable("x4", 6, math.Inf(1))
		p.AddConstraint(Constraint{Coefs: []Coef{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, Sense: LE, RHS: 0})
		p.AddConstraint(Constraint{Coefs: []Coef{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, Sense: LE, RHS: 0})
		return p
	}
	for _, m := range []Method{MethodBounded, MethodRevised} {
		for _, bland := range []bool{false, true} {
			sol, err := build().SolveOpts(Options{Method: m, ForceBland: bland})
			if err != nil {
				t.Fatalf("%v bland=%v: %v", m, bland, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("%v bland=%v: status %v", m, bland, sol.Status)
			}
			if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
				t.Fatalf("%v bland=%v: objective %v, want -0.05", m, bland, sol.Objective)
			}
		}
	}
}

// TestRevisedDegeneratePivots drives the revised method through a heavily
// degenerate vertex (many ties at zero) and cross-checks the dense oracle.
func TestRevisedDegeneratePivots(t *testing.T) {
	forceSparseExtract(t)
	p := func() *Problem {
		p := NewProblem()
		x := p.AddVariable("x", -1, 10)
		y := p.AddVariable("y", -1, 10)
		z := p.AddVariable("z", -1, 10)
		// All three constraints intersect at the origin-adjacent vertex.
		p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: LE, RHS: 0})
		p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {z, 1}}, Sense: LE, RHS: 0})
		p.AddConstraint(Constraint{Coefs: []Coef{{y, 1}, {z, 1}}, Sense: LE, RHS: 0})
		return p
	}
	dense, err := p().SolveOpts(Options{Method: MethodBounded})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := p().SolveOpts(Options{Method: MethodRevised})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Status != rev.Status {
		t.Fatalf("status mismatch: dense %v revised %v", dense.Status, rev.Status)
	}
	if math.Abs(dense.Objective-rev.Objective) > 1e-9 {
		t.Fatalf("objective mismatch: dense %v revised %v", dense.Objective, rev.Objective)
	}
}

// FuzzRevisedSimplex cross-checks the revised method against the dense
// oracle on fuzzer-evolved random LPs, with the sparse extraction path
// forced, and verifies hostile NaN/Inf inputs are rejected with
// ErrBadProblem rather than panicking — the revised analogue of
// FuzzSolveAgreement + FuzzHostileInputs.
func FuzzRevisedSimplex(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(7), uint8(0b1010))
	f.Add(uint64(42), uint8(0xFF))
	f.Add(uint64(1234567), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, poison uint8) {
		old := revisedFinishMaxRows
		revisedFinishMaxRows = -1
		defer func() { revisedFinishMaxRows = old }()

		p := GenRandomProblem(seed)
		if poison != 0 {
			// Corrupt one numeric field with NaN/±Inf; validation must
			// reject identically on both methods, without panicking.
			rs := rng.New(seed ^ uint64(poison))
			hostile := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
			v := hostile[rs.Intn(3)]
			q := NewProblem()
			field := rs.Intn(3)
			corrupted := false
			for j := range p.obj {
				c, u := p.obj[j], p.upper[j]
				if field == 0 && poison&1 != 0 {
					c = v
					corrupted = true
				}
				if field == 1 && poison&2 != 0 {
					u = v
					// +Inf is a legal (unbounded-above) upper bound.
					corrupted = corrupted || !math.IsInf(v, 1)
				}
				q.AddVariable("v", c, u)
			}
			for _, row := range p.rows {
				rhs := row.RHS
				if field == 2 && poison&4 != 0 && len(p.rows) > 0 {
					rhs = v
					corrupted = true
				}
				q.AddConstraint(Constraint{Coefs: row.Coefs, Sense: row.Sense, RHS: rhs})
			}
			if corrupted {
				_, errD := q.SolveOpts(Options{Method: MethodBounded})
				_, errR := q.SolveOpts(Options{Method: MethodRevised})
				if !errors.Is(errD, ErrBadProblem) || !errors.Is(errR, ErrBadProblem) {
					t.Fatalf("corrupted problem accepted: dense err=%v revised err=%v", errD, errR)
				}
				return
			}
			p = q
		}

		dense, errD := p.SolveOpts(Options{Method: MethodBounded})
		rev, errR := p.SolveOpts(Options{Method: MethodRevised})
		if errD != nil || errR != nil {
			// Reported errors (e.g. singular dual extraction on degenerate
			// bases) are tolerated; panics are not, and the harness catches
			// those.
			return
		}
		if dense.Status != rev.Status {
			t.Fatalf("status mismatch: dense %v revised %v", dense.Status, rev.Status)
		}
		if dense.Status != Optimal {
			return
		}
		scale := 1 + math.Abs(dense.Objective)
		if math.Abs(dense.Objective-rev.Objective) > 1e-7*scale {
			t.Fatalf("objective mismatch: dense %v revised %v", dense.Objective, rev.Objective)
		}
	})
}
