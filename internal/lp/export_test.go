// Test-only exports: hooks the external differential battery (package
// lp_test) uses to steer internals that ordinary callers never touch.
package lp

import (
	"math"

	"cpsguard/internal/rng"
)

// SetRevisedFinishMaxRows overrides the dense crossover and returns the
// previous value. Tests pass -1 to force the sparse solver on instances of
// every size (otherwise small problems are delegated to the dense bounded
// solver), and must restore the old value when done.
func SetRevisedFinishMaxRows(n int) int {
	old := revisedFinishMaxRows
	revisedFinishMaxRows = n
	return old
}

// GenRandomProblem builds seeded random LP #seed for the differential
// battery: 1–16 variables (a mix of boxed and free-above), 0–12 rows across
// all three senses with both RHS signs, occasional duplicate coefficients
// (exercising the builder's aggregation) and occasional zero upper bounds
// (exercising the fixed-at-zero pricing skip).
func GenRandomProblem(seed uint64) *Problem {
	rs := rng.New(seed)
	nv := 1 + rs.Intn(16)
	nc := rs.Intn(13)
	p := NewProblem()
	for j := 0; j < nv; j++ {
		u := math.Inf(1)
		switch rs.Intn(16) {
		case 0:
			// Unbounded above (rare: with a negative cost this makes the
			// whole LP unbounded unless a row caps it).
		case 1, 2:
			if rs.Intn(4) == 0 {
				u = 0 // fixed at zero
			} else {
				u = rs.Float64() * 3
			}
		default:
			u = rs.Float64() * 15
		}
		p.AddVariable("v", (rs.Float64()-0.5)*10, u)
	}
	for i := 0; i < nc; i++ {
		var coefs []Coef
		for j := 0; j < nv; j++ {
			if rs.Intn(3) == 0 {
				coefs = append(coefs, Coef{j, (rs.Float64() - 0.5) * 8})
				if rs.Intn(10) == 0 {
					// Duplicate (row, var) entry: must aggregate.
					coefs = append(coefs, Coef{j, (rs.Float64() - 0.5) * 2})
				}
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{rs.Intn(nv), 1 + rs.Float64()})
		}
		// Senses drawn with a bias toward LE; the RHS is drawn inside the
		// row's individually-achievable range so most instances are
		// feasible and bounded — the interesting differential cases —
		// while joint conflicts still produce some infeasible ones and
		// rare unbounded-above variables some unbounded ones, keeping
		// taxonomy coverage.
		lo, hi := 0.0, 0.0
		for _, co := range coefs {
			reach := p.upper[co.Var]
			if math.IsInf(reach, 1) {
				reach = 15
			}
			if v := co.Value * reach; v > 0 {
				hi += v
			} else {
				lo += v
			}
		}
		var sense Sense
		switch r := rs.Intn(10); {
		case r < 6:
			sense = LE
		case r < 8:
			sense = GE
		default:
			sense = EQ
		}
		rhs := lo + (0.05+0.9*rs.Float64())*(hi-lo)
		p.AddConstraint(Constraint{Coefs: coefs, Sense: sense, RHS: rhs})
	}
	return p
}
