// Solver fallback chain: Dantzig-rule solve first, then a restart under
// Bland's rule with an enlarged pivot budget when the first attempt cycles
// out (iteration limit) or dies numerically (singular basis, recovered
// panic). Cancellation and structurally invalid problems are never retried.
package lp

import (
	"errors"
	"fmt"
)

// SolveResilient solves the problem with the fallback chain. The first
// attempt uses opts verbatim; when it exhausts its iteration limit or fails
// with a retryable error, the solve restarts from scratch under Bland's rule
// (cycling-proof) with a doubled pivot budget. Every degradation is recorded
// in Solution.Fallbacks so callers can account for it.
//
// Not retried: cancellation (Canceled / DeadlineExceeded statuses or context
// errors — the caller asked to stop), ErrBadProblem (retrying cannot fix an
// invalid model), and clean Infeasible/Unbounded terminations (they are
// answers, not failures).
func SolveResilient(p *Problem, opts Options) (*Solution, error) {
	sol, err := p.SolveOpts(opts)
	reason, retry := retryable(sol, err)
	if !retry {
		return sol, err
	}

	mBlandRestarts.Inc()
	retryOpts := opts
	retryOpts.ForceBland = true
	// Budget the restart from the problem-size default, not the caller's
	// (possibly exhausted) MaxIter — the point is to outlast the failure.
	retryOpts.MaxIter = 2 * (Options{}).maxIter(len(p.rows)+p.bounds, len(p.obj)+2*(len(p.rows)+p.bounds))
	sol2, err2 := p.SolveOpts(retryOpts)
	if err2 != nil {
		return nil, p.solveErr("fallback", Optimal, 0,
			fmt.Errorf("bland restart after %s also failed: %w", reason, err2))
	}
	sol2.Fallbacks = append(sol2.Fallbacks, "bland-restart: "+reason)
	mFallbacks.Add(int64(len(sol2.Fallbacks)))
	return sol2, nil
}

// retryable decides whether a first-attempt outcome warrants the Bland
// restart, and names the reason for the degradation record.
func retryable(sol *Solution, err error) (string, bool) {
	if err != nil {
		if errors.Is(err, ErrBadProblem) {
			return "", false
		}
		var se *SolveError
		if errors.As(err, &se) && IsCancellation(se.Status) {
			return "", false
		}
		return err.Error(), true
	}
	if sol.Status == IterationLimit {
		return "iteration limit after " + fmt.Sprint(sol.Iterations) + " pivots", true
	}
	return "", false
}
