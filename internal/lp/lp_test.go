package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-6

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestTrivialUnconstrainedAtZero(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 1, math.Inf(1))
	sol := solveOrDie(t, p)
	if sol.X[0] != 0 || sol.Objective != 0 {
		t.Fatalf("got x=%v obj=%v, want 0,0", sol.X[0], sol.Objective)
	}
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6  → x=4, y=0, obj=12.
	p := NewProblem()
	x := p.AddVariable("x", -3, math.Inf(1))
	y := p.AddVariable("y", -2, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: LE, RHS: 4})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 3}}, Sense: LE, RHS: 6})
	sol := solveOrDie(t, p)
	if !approx(sol.Objective, -12, eps) {
		t.Fatalf("objective = %v, want -12", sol.Objective)
	}
	if !approx(sol.X[x], 4, eps) || !approx(sol.X[y], 0, eps) {
		t.Fatalf("x=%v y=%v, want 4,0", sol.X[x], sol.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3, y ≥ 1 → x=2, y=1, obj=4.
	p := NewProblem()
	x := p.AddVariable("x", 1, math.Inf(1))
	y := p.AddVariable("y", 2, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 3})
	p.AddConstraint(Constraint{Coefs: []Coef{{y, 1}}, Sense: GE, RHS: 1})
	sol := solveOrDie(t, p)
	if !approx(sol.Objective, 4, eps) {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

func TestUpperBounds(t *testing.T) {
	// min -x - y s.t. x ≤ 2, y ≤ 3, x + y ≤ 4 → obj = -4.
	p := NewProblem()
	x := p.AddVariable("x", -1, 2)
	y := p.AddVariable("y", -1, 3)
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: LE, RHS: 4})
	sol := solveOrDie(t, p)
	if !approx(sol.Objective, -4, eps) {
		t.Fatalf("objective = %v, want -4", sol.Objective)
	}
	if sol.X[x] > 2+eps || sol.X[y] > 3+eps {
		t.Fatalf("bounds violated: x=%v y=%v", sol.X[x], sol.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: LE, RHS: 1})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: GE, RHS: 2})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1)
	y := p.AddVariable("y", 0, 1)
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 5})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: GE, RHS: 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x ≥ -1 written as -x ≤ 1; min x s.t. -x ≤ 1 → x=0 (x≥0 anyway).
	// More meaningful: min -x s.t. -x ≥ -5 (i.e. x ≤ 5) → x=5.
	p := NewProblem()
	x := p.AddVariable("x", -1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, -1}}, Sense: GE, RHS: -5})
	sol := solveOrDie(t, p)
	if !approx(sol.X[x], 5, eps) {
		t.Fatalf("x = %v, want 5", sol.X[x])
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classically degenerate LP (multiple constraints active at the
	// optimum) must still terminate and find the optimum.
	p := NewProblem()
	x := p.AddVariable("x", -0.75, math.Inf(1))
	y := p.AddVariable("y", 150, math.Inf(1))
	z := p.AddVariable("z", -0.02, math.Inf(1))
	w := p.AddVariable("w", 6, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, Sense: LE, RHS: 0})
	p.AddConstraint(Constraint{Coefs: []Coef{{z, 1}}, Sense: LE, RHS: 1})
	sol := solveOrDie(t, p)
	if !approx(sol.Objective, -0.05, eps) {
		t.Fatalf("objective = %v, want -0.05 (Beale's example)", sol.Objective)
	}
}

func TestDualsTransportation(t *testing.T) {
	// min 2a + 3b s.t. a + b ≥ 10, a ≤ 6.
	// Optimum: a=6, b=4, obj=24. Duals: demand row y=3, bound on a = -1
	// (relaxing a's bound by 1 saves cost 1: swap a unit of b for a).
	p := NewProblem()
	a := p.AddVariable("a", 2, 6)
	b := p.AddVariable("b", 3, math.Inf(1))
	demand := p.AddConstraint(Constraint{Coefs: []Coef{{a, 1}, {b, 1}}, Sense: GE, RHS: 10})
	sol := solveOrDie(t, p)
	if !approx(sol.Objective, 24, eps) {
		t.Fatalf("objective = %v, want 24", sol.Objective)
	}
	if !approx(sol.Duals[demand], 3, eps) {
		t.Fatalf("demand dual = %v, want 3", sol.Duals[demand])
	}
	if !approx(sol.BoundDuals[a], -1, eps) {
		t.Fatalf("bound dual of a = %v, want -1", sol.BoundDuals[a])
	}
}

func TestDualObjectiveMatchesPrimal(t *testing.T) {
	// Strong duality: cᵀx* = yᵀb (+ bound rents) for a fixed problem.
	p := NewProblem()
	x := p.AddVariable("x", 4, 10)
	y := p.AddVariable("y", 3, math.Inf(1))
	z := p.AddVariable("z", 7, 5)
	r1 := p.AddConstraint(Constraint{Coefs: []Coef{{x, 2}, {y, 1}, {z, 1}}, Sense: GE, RHS: 8})
	r2 := p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 3}}, Sense: GE, RHS: 6})
	sol := solveOrDie(t, p)
	dualObj := sol.Duals[r1]*8 + sol.Duals[r2]*6 + sol.BoundDuals[x]*10 + sol.BoundDuals[z]*5
	if !approx(sol.Objective, dualObj, 1e-6) {
		t.Fatalf("strong duality violated: primal %v dual %v", sol.Objective, dualObj)
	}
}

// TestDualPerturbationProperty checks the defining property of duals on
// random feasible bounded problems: perturbing a binding RHS by δ changes
// the optimum by ≈ y·δ.
func TestDualPerturbationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nv := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			p.AddVariable("v", 0.5+rng.Float64()*4, 1+rng.Float64()*9)
		}
		type rowSpec struct {
			idx int
			rhs float64
		}
		var rows []rowSpec
		for i := 0; i < nc; i++ {
			coefs := make([]Coef, 0, nv)
			for j := 0; j < nv; j++ {
				coefs = append(coefs, Coef{j, 0.2 + rng.Float64()})
			}
			rhs := 1 + rng.Float64()*3
			idx := p.AddConstraint(Constraint{Coefs: coefs, Sense: GE, RHS: rhs})
			rows = append(rows, rowSpec{idx, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue // random instance infeasible within bounds; skip
		}
		// Perturb each constraint RHS by a small δ and compare.
		const delta = 1e-4
		for _, rs := range rows {
			p2 := NewProblem()
			for j := 0; j < nv; j++ {
				p2.AddVariable("v", p.obj[j], p.upper[j])
			}
			for i, row := range p.rows {
				r := row
				if i == rs.idx {
					r.RHS += delta
				}
				p2.AddConstraint(r)
			}
			sol2, err := p2.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol2.Status != Optimal {
				continue
			}
			pred := sol.Duals[rs.idx] * delta
			got := sol2.Objective - sol.Objective
			if math.Abs(got-pred) > 1e-6+1e-3*math.Abs(pred) {
				t.Errorf("trial %d row %d: Δobj=%.3e, dual prediction %.3e (dual=%v)",
					trial, rs.idx, got, pred, sol.Duals[rs.idx])
			}
		}
	}
}

// TestQuickFeasibilityInvariant: any Optimal solution must satisfy every
// constraint and bound within tolerance, on randomized instances.
func TestQuickFeasibilityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(6)
		nc := rng.Intn(6)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			u := math.Inf(1)
			if rng.Intn(2) == 0 {
				u = rng.Float64() * 10
			}
			p.AddVariable("v", rng.NormFloat64()*3, u)
		}
		for i := 0; i < nc; i++ {
			coefs := make([]Coef, 0, nv)
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, rng.NormFloat64() * 2})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			p.AddConstraint(Constraint{
				Coefs: coefs,
				Sense: Sense(rng.Intn(3)),
				RHS:   rng.NormFloat64() * 5,
			})
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			return true // nothing to check
		}
		const tol = 1e-6
		for j, x := range sol.X {
			if x < -tol || x > p.upper[j]+tol {
				return false
			}
		}
		for _, row := range p.rows {
			lhs := 0.0
			for _, co := range row.Coefs {
				lhs += co.Value * sol.X[co.Var]
			}
			switch row.Sense {
			case LE:
				if lhs > row.RHS+tol*(1+math.Abs(row.RHS)) {
					return false
				}
			case GE:
				if lhs < row.RHS-tol*(1+math.Abs(row.RHS)) {
					return false
				}
			case EQ:
				if math.Abs(lhs-row.RHS) > tol*(1+math.Abs(row.RHS)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOptimalityAgainstVertexEnumeration cross-checks the simplex
// optimum against brute-force vertex enumeration on tiny 2-variable
// box+one-constraint problems where the optimum is easily characterized.
func TestQuickOptimalityAgainstVertexEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// min c1 x + c2 y s.t. x ≤ u1, y ≤ u2, a1 x + a2 y ≤ b with
		// a1,a2 > 0, b > 0: candidate optima are vertices of the
		// polytope; enumerate them.
		c1, c2 := rng.NormFloat64()*2, rng.NormFloat64()*2
		u1, u2 := 0.5+rng.Float64()*5, 0.5+rng.Float64()*5
		a1, a2 := 0.1+rng.Float64(), 0.1+rng.Float64()
		b := 0.5 + rng.Float64()*5
		p := NewProblem()
		x := p.AddVariable("x", c1, u1)
		y := p.AddVariable("y", c2, u2)
		p.AddConstraint(Constraint{Coefs: []Coef{{x, a1}, {y, a2}}, Sense: LE, RHS: b})
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		feasible := func(px, py float64) bool {
			return px >= -1e-9 && py >= -1e-9 && px <= u1+1e-9 && py <= u2+1e-9 &&
				a1*px+a2*py <= b+1e-9
		}
		best := math.Inf(1)
		cand := [][2]float64{
			{0, 0}, {u1, 0}, {0, u2}, {u1, u2},
			{b / a1, 0}, {0, b / a2},
			{u1, (b - a1*u1) / a2}, {(b - a2*u2) / a1, u2},
		}
		for _, c := range cand {
			if feasible(c[0], c[1]) {
				v := c1*c[0] + c2*c[1]
				if v < best {
					best = v
				}
			}
		}
		return approx(sol.Objective, best, 1e-6*(1+math.Abs(best)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", math.NaN(), math.Inf(1))
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for NaN cost")
	}
	p = NewProblem()
	x = p.AddVariable("x", 1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x + 5, 1}}, Sense: LE, RHS: 1})
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for out-of-range variable index")
	}
	p = NewProblem()
	x = p.AddVariable("x", 1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}}, Sense: LE, RHS: math.NaN()})
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for NaN RHS")
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows create a singular-looking phase-1 but must
	// still solve: min x s.t. x + y = 2 (twice), y ≤ 1.
	p := NewProblem()
	x := p.AddVariable("x", 1, math.Inf(1))
	y := p.AddVariable("y", 0, 1)
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 2})
	p.AddConstraint(Constraint{Coefs: []Coef{{x, 1}, {y, 1}}, Sense: EQ, RHS: 2})
	sol, err := p.Solve()
	if err != nil {
		// Redundant rows may make the dual basis singular; accept a
		// clean error but not a wrong answer.
		t.Skipf("redundant rows rejected at dual extraction: %v", err)
	}
	if sol.Status != Optimal || !approx(sol.X[x], 1, eps) {
		t.Fatalf("status=%v x=%v, want optimal x=1", sol.Status, sol.X[x])
	}
}

func TestSetCostAndUpperAccessors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, math.Inf(1))
	p.SetCost(x, -2)
	p.SetUpper(x, 3)
	sol := solveOrDie(t, p)
	if !approx(sol.X[x], 3, eps) || !approx(sol.Objective, -6, eps) {
		t.Fatalf("x=%v obj=%v, want 3,-6", sol.X[x], sol.Objective)
	}
	p.SetUpper(x, math.Inf(1))
	sol2, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded after removing bound", sol2.Status)
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Fatalf("accessors wrong: %d vars %d cons", p.NumVariables(), p.NumConstraints())
	}
	if p.VariableName(x) != "x" {
		t.Fatalf("name = %q", p.VariableName(x))
	}
}

func TestStatusAndSenseStrings(t *testing.T) {
	for s, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", IterationLimit: "iteration-limit"} {
		if s.String() != want {
			t.Errorf("Status %d → %q, want %q", s, s.String(), want)
		}
	}
	for s, want := range map[Sense]string{LE: "<=", EQ: "==", GE: ">="} {
		if s.String() != want {
			t.Errorf("Sense %d → %q, want %q", s, s.String(), want)
		}
	}
	if Status(42).String() == "" || Sense(42).String() == "" {
		t.Error("unknown enum values must still render")
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem()
	for j := 0; j < 8; j++ {
		p.AddVariable("v", -1, 10)
	}
	for i := 0; i < 8; i++ {
		coefs := make([]Coef, 8)
		for j := range coefs {
			coefs[j] = Coef{j, float64(1 + (i+j)%3)}
		}
		p.AddConstraint(Constraint{Coefs: coefs, Sense: LE, RHS: 20})
	}
	sol, err := p.SolveOpts(Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit {
		t.Fatalf("status=%v, want iteration-limit", sol.Status)
	}
}

func TestSkipDuals(t *testing.T) {
	// A free variable split as x = x⁺ − x⁻ leaves the dual basis
	// singular when both halves go basic; SkipDuals must still deliver
	// the primal optimum for both methods.
	build := func() *Problem {
		p := NewProblem()
		xp := p.AddVariable("x+", 0, 10)
		xn := p.AddVariable("x-", 0, 10)
		y := p.AddVariable("y", -1, 5)
		// x⁺ − x⁻ = y − 2 (ties the split pair to y).
		p.AddConstraint(Constraint{
			Coefs: []Coef{{xp, 1}, {xn, -1}, {y, -1}},
			Sense: EQ, RHS: -2,
		})
		return p
	}
	for _, m := range []Method{MethodRows, MethodBounded} {
		sol, err := build().SolveOpts(Options{Method: m, SkipDuals: true})
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if sol.Status != Optimal || !approx(sol.Objective, -5, eps) {
			t.Fatalf("method %v: status=%v obj=%v", m, sol.Status, sol.Objective)
		}
		if sol.Duals != nil && len(sol.Duals) > 0 && sol.Duals[0] != 0 {
			// Duals untouched (zero-valued) when skipped.
			t.Fatalf("method %v: duals filled despite SkipDuals", m)
		}
	}
}
