// Failure semantics of the solve pipeline: structured errors, cancellation
// checkpoints, and fault-injection hooks shared by both simplex
// implementations. See DESIGN.md "Failure semantics".
package lp

import (
	"context"
	"errors"
	"fmt"
)

// ErrSingularBasis is returned (wrapped in a *SolveError carrying the
// problem name and pivot count) when dual extraction meets a numerically
// singular basis — typically redundant equality rows or split free
// variables. Match with errors.Is.
var ErrSingularBasis = errors.New("lp: singular basis during dual extraction")

// errSingularBasis is the historical unexported alias.
var errSingularBasis = ErrSingularBasis

// SolveError is the structured error taxonomy of the solve pipeline. Every
// failure escaping a solver carries the problem name, the stage that failed,
// the last known status, and the iteration count at failure, so that a
// single bad solve inside a million-trial Monte-Carlo run is attributable.
type SolveError struct {
	// Problem is the Problem.Name of the failing problem (may be empty).
	Problem string
	// Stage names where the failure occurred: "lp.enter", "lp.pivot",
	// "pivot-loop" (recovered panic), "dual-extraction", "milp.node",
	// "fallback", ...
	Stage string
	// Status is the last status observed before the failure.
	Status Status
	// Iterations counts pivots (or nodes, for MILP stages) performed
	// before the failure.
	Iterations int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *SolveError) Error() string {
	name := e.Problem
	if name == "" {
		name = "<unnamed>"
	}
	return fmt.Sprintf("solve %s: stage %s (status %v, %d iterations): %v",
		name, e.Stage, e.Status, e.Iterations, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *SolveError) Unwrap() error { return e.Err }

// Hook is a fault-injection / instrumentation checkpoint. When set on
// Options, the solver invokes it at named sites ("lp.enter", "lp.pivot",
// "lp.extract"). A returned error aborts the solve: errors wrapping
// context.Canceled or context.DeadlineExceeded surface as the matching
// cancellation Status; any other error is wrapped in a *SolveError. A
// panicking hook exercises the solver's panic recovery (the panic is
// converted to a *SolveError too).
type Hook func(site string) error

// statusAborted is the internal marker for "a hook asked the solve to stop
// with an error" (never escapes the package: run() converts it).
const statusAborted Status = -1

// guard bundles the cancellation context and fault-injection hook checked
// every CheckEvery pivots by both simplex implementations.
type guard struct {
	ctx   context.Context
	hook  Hook
	every int
	err   error // first non-context hook error
}

func newGuard(opts Options) *guard {
	return &guard{ctx: opts.Ctx, hook: opts.Hook, every: opts.checkEvery()}
}

// due reports whether a checkpoint is due at this iteration count.
func (g *guard) due(iters int) bool {
	return (g.ctx != nil || g.hook != nil) && iters%g.every == 0
}

// at runs the checkpoint at a named site. It returns (status, true) when the
// solve must stop: Canceled / DeadlineExceeded for context-style aborts, or
// statusAborted with g.err set for hook errors.
func (g *guard) at(site string) (Status, bool) {
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return cancelStatus(err), true
		}
	}
	if g.hook != nil {
		if err := g.hook(site); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return cancelStatus(err), true
			}
			g.err = err
			return statusAborted, true
		}
	}
	return Optimal, false
}

// cancelStatus maps a context error to the corresponding Status.
func cancelStatus(err error) Status {
	if errors.Is(err, context.DeadlineExceeded) {
		return DeadlineExceeded
	}
	return Canceled
}

// IsCancellation reports whether st is one of the cancellation statuses.
func IsCancellation(st Status) bool {
	return st == Canceled || st == DeadlineExceeded
}
