package lp

import (
	"math"
	"testing"

	"cpsguard/internal/rng"
)

// FuzzSolveAgreement decodes a byte string into a small random LP, solves
// it with both simplex methods, and checks: no panics, statuses agree, and
// optimal objectives match — an adversarial extension of TestMethodsAgree
// driven by the fuzzer's corpus evolution.
func FuzzSolveAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2))
	f.Add(uint64(42), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(6), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nvRaw, ncRaw uint8) {
		nv := 1 + int(nvRaw)%7
		nc := int(ncRaw) % 6
		rs := rng.New(seed)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			u := math.Inf(1)
			if rs.Intn(2) == 0 {
				u = rs.Float64() * 12
			}
			p.AddVariable("v", (rs.Float64()-0.5)*8, u)
		}
		for i := 0; i < nc; i++ {
			var coefs []Coef
			for j := 0; j < nv; j++ {
				if rs.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, (rs.Float64() - 0.5) * 6})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			p.AddConstraint(Constraint{
				Coefs: coefs,
				Sense: Sense(rs.Intn(3)),
				RHS:   (rs.Float64() - 0.5) * 10,
			})
		}
		r1, err1 := p.SolveOpts(Options{Method: MethodRows})
		r2, err2 := p.SolveOpts(Options{Method: MethodBounded})
		if err1 != nil || err2 != nil {
			// Dual-extraction failures on degenerate bases are
			// reported errors, never panics; asymmetry is tolerated.
			return
		}
		if r1.Status != r2.Status {
			t.Fatalf("status mismatch: %v vs %v", r1.Status, r2.Status)
		}
		if r1.Status != Optimal {
			return
		}
		scale := 1 + math.Abs(r1.Objective)
		if math.Abs(r1.Objective-r2.Objective) > 1e-5*scale {
			t.Fatalf("objective mismatch: %v vs %v", r1.Objective, r2.Objective)
		}
	})
}
