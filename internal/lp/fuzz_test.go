package lp

import (
	"errors"
	"math"
	"testing"

	"cpsguard/internal/rng"
)

// FuzzSolveAgreement decodes a byte string into a small random LP, solves
// it with both simplex methods, and checks: no panics, statuses agree, and
// optimal objectives match — an adversarial extension of TestMethodsAgree
// driven by the fuzzer's corpus evolution.
func FuzzSolveAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2))
	f.Add(uint64(42), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(6), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nvRaw, ncRaw uint8) {
		nv := 1 + int(nvRaw)%7
		nc := int(ncRaw) % 6
		rs := rng.New(seed)
		p := NewProblem()
		for j := 0; j < nv; j++ {
			u := math.Inf(1)
			if rs.Intn(2) == 0 {
				u = rs.Float64() * 12
			}
			p.AddVariable("v", (rs.Float64()-0.5)*8, u)
		}
		for i := 0; i < nc; i++ {
			var coefs []Coef
			for j := 0; j < nv; j++ {
				if rs.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, (rs.Float64() - 0.5) * 6})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			p.AddConstraint(Constraint{
				Coefs: coefs,
				Sense: Sense(rs.Intn(3)),
				RHS:   (rs.Float64() - 0.5) * 10,
			})
		}
		r1, err1 := p.SolveOpts(Options{Method: MethodRows})
		r2, err2 := p.SolveOpts(Options{Method: MethodBounded})
		if err1 != nil || err2 != nil {
			// Dual-extraction failures on degenerate bases are
			// reported errors, never panics; asymmetry is tolerated.
			return
		}
		if r1.Status != r2.Status {
			t.Fatalf("status mismatch: %v vs %v", r1.Status, r2.Status)
		}
		if r1.Status != Optimal {
			return
		}
		scale := 1 + math.Abs(r1.Objective)
		if math.Abs(r1.Objective-r2.Objective) > 1e-5*scale {
			t.Fatalf("objective mismatch: %v vs %v", r1.Objective, r2.Objective)
		}
	})
}

// FuzzHostileInputs builds LPs whose numeric fields are corrupted with
// NaN/±Inf at fuzzer-chosen positions and checks the failure semantics:
// no panic escapes, corrupted problems are rejected with ErrBadProblem,
// and accepted problems terminate with a well-defined status.
func FuzzHostileInputs(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2), uint8(0b101))
	f.Add(uint64(9), uint8(5), uint8(4), uint8(0xFF))
	f.Add(uint64(3), uint8(2), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nvRaw, ncRaw, poison uint8) {
		nv := 1 + int(nvRaw)%6
		nc := int(ncRaw) % 5
		rs := rng.New(seed)
		hostile := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
		pick := func(bit uint8, v float64) float64 {
			if poison&bit != 0 && rs.Intn(3) == 0 {
				return hostile[rs.Intn(3)]
			}
			return v
		}
		p := NewProblem()
		corrupted := false
		for j := 0; j < nv; j++ {
			c := pick(1, (rs.Float64()-0.5)*8)
			u := pick(2, rs.Float64()*12)
			if math.IsNaN(c) || math.IsInf(c, 0) || math.IsNaN(u) || u < 0 {
				corrupted = true
			}
			p.AddVariable("v", c, u)
		}
		for i := 0; i < nc; i++ {
			var coefs []Coef
			for j := 0; j < nv; j++ {
				v := pick(4, (rs.Float64()-0.5)*6)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					corrupted = true
				}
				coefs = append(coefs, Coef{j, v})
			}
			rhs := pick(8, (rs.Float64()-0.5)*10)
			if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
				corrupted = true
			}
			p.AddConstraint(Constraint{Coefs: coefs, Sense: Sense(rs.Intn(3)), RHS: rhs})
		}
		for _, m := range [2]Method{MethodRows, MethodBounded} {
			sol, err := p.SolveOpts(Options{Method: m})
			if corrupted {
				if err == nil || !errors.Is(err, ErrBadProblem) {
					t.Fatalf("method %v: corrupted problem accepted (err=%v)", m, err)
				}
				continue
			}
			if err != nil {
				continue // reported error (e.g. singular basis), never a panic
			}
			switch sol.Status {
			case Optimal, Infeasible, Unbounded, IterationLimit:
			default:
				t.Fatalf("method %v: unexpected status %v", m, sol.Status)
			}
		}
	})
}
