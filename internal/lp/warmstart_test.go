package lp

import (
	"math"
	"testing"

	"cpsguard/internal/rng"
)

// dispatchLikeProblem builds a small bounded LP shaped like the flow
// dispatch problems (cost minimization over capacity-bounded variables with
// coupling rows) for warm-start tests.
func dispatchLikeProblem() *Problem {
	p := NewProblem()
	p.AddVariable("f0", 1.0, 4)  // cheap line
	p.AddVariable("f1", 2.5, 3)  // expensive line
	p.AddVariable("g", -6.0, 10) // generation surplus value
	p.AddConstraint(Constraint{Coefs: []Coef{{0, 1}, {1, 1}, {2, -1}}, Sense: EQ, RHS: 0})
	p.AddConstraint(Constraint{Coefs: []Coef{{0, 1}, {1, 1}}, Sense: LE, RHS: 5})
	return p
}

func solveBoth(t *testing.T, p *Problem, b *Basis) (warm, cold *Solution) {
	t.Helper()
	warm, err := p.SolveOpts(Options{Method: MethodBounded, WarmStart: b})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	cold, err = p.SolveOpts(Options{Method: MethodBounded})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	return warm, cold
}

// TestWarmStartResolve re-solves an unchanged problem from its own optimal
// basis: the warm path must accept the basis, perform zero pivots, and
// reproduce the optimum.
func TestWarmStartResolve(t *testing.T) {
	p := dispatchLikeProblem()
	base, err := p.SolveOpts(Options{Method: MethodBounded})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != Optimal {
		t.Fatalf("base status %v", base.Status)
	}
	if base.Basis() == nil {
		t.Fatal("optimal bounded solve exported no basis")
	}
	re, err := p.SolveOpts(Options{Method: MethodBounded, WarmStart: base.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if !re.WarmStarted {
		t.Fatal("re-solve from own basis fell back to cold")
	}
	if re.Iterations != 0 {
		t.Fatalf("re-solve from optimal basis pivoted %d times", re.Iterations)
	}
	if math.Abs(re.Objective-base.Objective) > 1e-9 {
		t.Fatalf("objective drifted: warm %v cold %v", re.Objective, base.Objective)
	}
	for j := range base.X {
		if math.Abs(re.X[j]-base.X[j]) > 1e-9 {
			t.Fatalf("x[%d] drifted: warm %v cold %v", j, re.X[j], base.X[j])
		}
	}
}

// TestWarmStartPerturbations applies outage-shaped perturbations (cost
// bumps, capacity cuts including to zero, RHS shifts) and checks the warm
// solve agrees with cold within 1e-9 on objective and primals.
func TestWarmStartPerturbations(t *testing.T) {
	base, err := dispatchLikeProblem().SolveOpts(Options{Method: MethodBounded})
	if err != nil {
		t.Fatal(err)
	}
	b := base.Basis()

	cases := []struct {
		name    string
		perturb func(p *Problem)
	}{
		{"cost-bump", func(p *Problem) { p.SetCost(0, 2.9) }},
		{"capacity-cut", func(p *Problem) { p.SetUpper(0, 1.5) }},
		{"full-outage", func(p *Problem) { p.SetUpper(0, 0) }},
		{"both-lines-out", func(p *Problem) { p.SetUpper(0, 0); p.SetUpper(1, 0) }},
		{"cheaper-alt", func(p *Problem) { p.SetCost(1, 0.5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := dispatchLikeProblem()
			tc.perturb(p)
			warm, cold := solveBoth(t, p, b)
			if warm.Status != cold.Status {
				t.Fatalf("status: warm %v cold %v", warm.Status, cold.Status)
			}
			if warm.Status != Optimal {
				return
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
				t.Fatalf("objective: warm %v cold %v", warm.Objective, cold.Objective)
			}
			for j := range cold.X {
				if math.Abs(warm.X[j]-cold.X[j]) > 1e-9 {
					t.Fatalf("x[%d]: warm %v cold %v", j, warm.X[j], cold.X[j])
				}
			}
		})
	}
}

// TestWarmStartStaleBasisFallsBack feeds deliberately unusable bases and
// requires a silent cold fallback with correct results.
func TestWarmStartStaleBasisFallsBack(t *testing.T) {
	base, err := dispatchLikeProblem().SolveOpts(Options{Method: MethodBounded})
	if err != nil {
		t.Fatal(err)
	}
	good := base.Basis()

	t.Run("dimension-mismatch", func(t *testing.T) {
		other := NewProblem()
		other.AddVariable("x", -1, 1)
		sol, err := other.SolveOpts(Options{Method: MethodBounded, WarmStart: good})
		if err != nil {
			t.Fatal(err)
		}
		if sol.WarmStarted {
			t.Fatal("accepted a basis from a differently shaped problem")
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-(-1)) > 1e-9 {
			t.Fatalf("fallback solve wrong: %v obj %v", sol.Status, sol.Objective)
		}
	})

	t.Run("corrupt-rows", func(t *testing.T) {
		bad := &Basis{method: good.method, n: good.n, m: good.m, nTotal: good.nTotal,
			rows:   make([]int, len(good.rows)),
			status: append([]int8(nil), good.status...)}
		for i := range bad.rows {
			bad.rows[i] = -7
		}
		p := dispatchLikeProblem()
		sol, err := p.SolveOpts(Options{Method: MethodBounded, WarmStart: bad})
		if err != nil {
			t.Fatal(err)
		}
		if sol.WarmStarted {
			t.Fatal("accepted corrupt basis rows")
		}
		if sol.Status != Optimal {
			t.Fatalf("fallback status %v", sol.Status)
		}
	})

	t.Run("rows-method-basis-rejected", func(t *testing.T) {
		rows := &Basis{method: MethodRows, n: good.n, m: good.m, nTotal: good.nTotal,
			rows: good.rows, status: good.status}
		sol, err := dispatchLikeProblem().SolveOpts(Options{Method: MethodBounded, WarmStart: rows})
		if err != nil {
			t.Fatal(err)
		}
		if sol.WarmStarted {
			t.Fatal("accepted a rows-method basis on the bounded path")
		}
	})
}

// TestRowsMethodExportsNoBasis pins the contract that only the bounded
// method exports a reusable basis.
func TestRowsMethodExportsNoBasis(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", -1, math.Inf(1))
	p.AddConstraint(Constraint{Coefs: []Coef{{0, 1}}, Sense: LE, RHS: 3})
	sol, err := p.SolveOpts(Options{Method: MethodRows})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Basis() != nil {
		t.Fatal("rows method exported a basis")
	}
}

// TestWarmStartRandomAgreement sweeps seeded random problems and
// perturbations: warm-started objectives and primal feasibility must agree
// with cold within 1e-9 scaled, across accepted and fallback paths alike.
func TestWarmStartRandomAgreement(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rs := rng.New(seed)
		p := randomBoundedProblem(rs)
		base, err := p.SolveOpts(Options{Method: MethodBounded})
		if err != nil || base.Status != Optimal {
			continue
		}
		q := perturbProblem(p, rs)
		warm, err := q.SolveOpts(Options{Method: MethodBounded, WarmStart: base.Basis()})
		if err != nil {
			continue // reported error (e.g. singular dual basis) is acceptable
		}
		cold, err := q.SolveOpts(Options{Method: MethodBounded})
		if err != nil || cold.Status != Optimal || warm.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*scale {
			t.Fatalf("seed %d: warm %v cold %v (warmstarted=%v)",
				seed, warm.Objective, cold.Objective, warm.WarmStarted)
		}
	}
}

// randomBoundedProblem builds a small random LP with finite bounds on most
// variables, biased toward feasible minimization problems.
func randomBoundedProblem(rs *rng.Stream) *Problem {
	nv := 2 + rs.Intn(6)
	nc := 1 + rs.Intn(4)
	p := NewProblem()
	for j := 0; j < nv; j++ {
		u := math.Inf(1)
		if rs.Intn(4) > 0 {
			u = rs.Float64() * 10
		}
		p.AddVariable("v", (rs.Float64()-0.5)*8, u)
	}
	for i := 0; i < nc; i++ {
		var coefs []Coef
		for j := 0; j < nv; j++ {
			if rs.Intn(2) == 0 {
				coefs = append(coefs, Coef{j, (rs.Float64() - 0.5) * 6})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{0, 1})
		}
		p.AddConstraint(Constraint{Coefs: coefs, Sense: Sense(rs.Intn(3)), RHS: (rs.Float64() - 0.5) * 10})
	}
	return p
}

// perturbProblem returns a structurally identical copy with small changes
// to costs, bounds, and row data — the shape of change warm starting is for.
func perturbProblem(p *Problem, rs *rng.Stream) *Problem {
	q := NewProblem()
	for j := 0; j < p.NumVariables(); j++ {
		c, u := p.Cost(j), p.Upper(j)
		if rs.Intn(3) == 0 {
			c += (rs.Float64() - 0.5) * 2
		}
		if !math.IsInf(u, 1) && rs.Intn(3) == 0 {
			u *= rs.Float64() * 1.5 // includes cuts to (near) zero
		}
		q.AddVariable(p.VariableName(j), c, u)
	}
	for i := 0; i < p.NumConstraints(); i++ {
		row := p.ConstraintAt(i)
		if rs.Intn(3) == 0 {
			row.RHS += (rs.Float64() - 0.5) * 3
		}
		if len(row.Coefs) > 0 && rs.Intn(3) == 0 {
			k := rs.Intn(len(row.Coefs))
			row.Coefs[k].Value += (rs.Float64() - 0.5)
		}
		q.AddConstraint(row)
	}
	return q
}

// FuzzWarmStart pairs a random problem (whose optimal basis seeds the warm
// start) with a fuzzer-mutated problem and requires the safety contract: a
// warm start from any basis — matching, stale, or from an unrelated problem
// — never panics, never loops (iteration caps hold), and never reports
// Optimal with an objective that disagrees with the cold solve.
func FuzzWarmStart(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(0))
	f.Add(uint64(7), uint64(7), uint8(1))
	f.Add(uint64(42), uint64(9), uint8(2))
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, mode uint8) {
		rsA := rng.New(seedA)
		donor := randomBoundedProblem(rsA)
		base, err := donor.SolveOpts(Options{Method: MethodBounded})
		if err != nil {
			return
		}
		var target *Problem
		switch mode % 3 {
		case 0: // same structure, perturbed numbers
			target = perturbProblem(donor, rng.New(seedB))
		case 1: // unrelated problem: dimensions usually mismatch
			target = randomBoundedProblem(rng.New(seedB))
		default: // identical problem
			target = donor
		}
		warm, errW := target.SolveOpts(Options{Method: MethodBounded, WarmStart: base.Basis()})
		cold, errC := target.SolveOpts(Options{Method: MethodBounded})
		if errW != nil || errC != nil {
			return // reported errors are within contract; panics are not
		}
		if warm.Status == Optimal && cold.Status == Optimal {
			scale := 1 + math.Abs(cold.Objective)
			if math.Abs(warm.Objective-cold.Objective) > 1e-5*scale {
				t.Fatalf("warm Optimal diverged: warm %v cold %v (warmstarted=%v)",
					warm.Objective, cold.Objective, warm.WarmStarted)
			}
		}
	})
}
