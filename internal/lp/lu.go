// Sparse LU factorization of the simplex basis, with product-form eta
// updates.
//
// The basis matrix B (column k = the constraint column basic in tableau row
// k) is factored as P·B·Q = L·U by a left-looking Gilbert–Peierls
// elimination: columns are processed in ascending-fill order (fewest
// nonzeros first — a static approximation of Markowitz ordering), each
// column is lower-solved against the L built so far with a reachability
// worklist so the work is proportional to nonzeros touched, and the pivot
// row is chosen by threshold partial pivoting — among rows within
// luPivotThreshold of the largest eligible magnitude, the row with the
// fewest nonzeros in the basis (the Markowitz-style fill-in control), ties
// to the smaller row index so factorization is deterministic.
//
// Between refactorizations, basis changes are absorbed as product-form eta
// matrices: replacing the basic variable in tableau slot r by a column
// whose FTRAN image is w appends the eta (r, w), and B_new = B_old·E. FTRAN
// (solve B·x = a) runs the LU solve then applies eta inverses in creation
// order; BTRAN (solve Bᵀ·y = c) applies eta-transpose inverses in reverse
// order then the LU transpose solve. Forrest–Tomlin would update U in place
// instead; the product form was chosen because it leaves the factors
// immutable (simpler invariants, trivially deterministic) at the cost of
// one extra sparse vector per pivot — which the refactorization cadence
// (luRefactorEvery) caps.
package lp

import "math"

const (
	// luRefactorEvery caps accumulated etas before the basis is refactored
	// from scratch: FTRAN/BTRAN cost grows linearly with the eta count,
	// and so does accumulated rounding.
	luRefactorEvery = 64
	// luPivotThreshold is the relative magnitude a pivot candidate must
	// reach (vs the column's largest eligible entry) to be chosen on
	// fill-in merit rather than magnitude.
	luPivotThreshold = 0.1
	// luSingularTol is the absolute magnitude below which a pivot (or an
	// eta pivot element) is treated as numerically singular.
	luSingularTol = 1e-11
)

// luFactor is one factorization P·B·Q = L·U.
//
// Index spaces: "row" means original constraint row (0..m-1); "slot" means
// tableau row / basis position (0..m-1; slot i holds basis[i]); "pos" means
// pivot order within this factorization. L entries carry original row
// indices; U entries carry pivot positions.
type luFactor struct {
	m int

	lPtr []int32
	lIdx []int32 // original row
	lVal []float64

	uPtr  []int32
	uIdx  []int32 // pivot position (< column's own position)
	uVal  []float64
	uDiag []float64

	perm    []int32 // pos → original row pivoted there
	pos     []int32 // original row → pos
	slotAt  []int32 // pos → basis slot factored at that step
	posSlot []int32 // basis slot → pos
}

// luScratch holds the dense work vectors shared across factorizations and
// solves of one revised-simplex run (never shared across goroutines).
type luScratch struct {
	x       []float64
	mark    []bool
	heap    []int32
	touched []int32
	rowCnt  []int32
}

func newLUScratch(m int) *luScratch {
	return &luScratch{
		x:       make([]float64, m),
		mark:    make([]bool, m),
		heap:    make([]int32, 0, m),
		touched: make([]int32, 0, m),
		rowCnt:  make([]int32, m),
	}
}

// factorBasis factors the basis given by slot → column assignment. Returns
// nil when the basis is numerically singular.
func factorBasis(sf *standardForm, basis []int, ws *luScratch) *luFactor {
	m := sf.m
	f := &luFactor{
		m:       m,
		lPtr:    make([]int32, 1, m+1),
		uPtr:    make([]int32, 1, m+1),
		uDiag:   make([]float64, m),
		perm:    make([]int32, m),
		pos:     make([]int32, m),
		slotAt:  make([]int32, m),
		posSlot: make([]int32, m),
	}
	for i := range f.pos {
		f.pos[i] = -1
	}

	// Static Markowitz surrogates: per-row nonzero counts over the basis
	// columns (pivot merit), and a column order of ascending nonzero count.
	rowCnt := ws.rowCnt
	for i := range rowCnt {
		rowCnt[i] = 0
	}
	for _, col := range basis {
		rows, _ := sf.a.col(col)
		for _, r := range rows {
			rowCnt[r]++
		}
	}
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	// Counting-sort slots by column nonzero count (stable, so equal-count
	// slots keep ascending slot order — deterministic).
	maxCnt := 0
	for _, col := range basis {
		if c := sf.a.colNNZ(col); c > maxCnt {
			maxCnt = c
		}
	}
	buckets := make([]int32, maxCnt+2)
	for _, col := range basis {
		buckets[sf.a.colNNZ(col)+1]++
	}
	for c := 1; c < len(buckets); c++ {
		buckets[c] += buckets[c-1]
	}
	for slot := 0; slot < m; slot++ {
		c := sf.a.colNNZ(basis[slot])
		order[buckets[c]] = int32(slot)
		buckets[c]++
	}

	x := ws.x
	for k := 0; k < m; k++ {
		slot := order[k]
		f.slotAt[k] = slot
		rows, vals := sf.a.col(basis[slot])

		// Scatter the column and seed the elimination worklist with the
		// already-pivotal positions it touches.
		touched := ws.touched[:0]
		heap := ws.heap[:0]
		for t, r := range rows {
			x[r] = vals[t]
			ws.mark[r] = true
			touched = append(touched, r)
			if p := f.pos[r]; p >= 0 {
				heap = pushPos(heap, p)
			}
		}

		// Left-looking elimination in ascending pivot-position order.
		// Applying L column t only creates fill at rows below position t,
		// so a min-heap pops positions in a valid topological order.
		for len(heap) > 0 {
			var t int32
			t, heap = popPos(heap)
			pr := f.perm[t]
			y := x[pr]
			if y != 0 {
				f.uIdx = append(f.uIdx, t)
				f.uVal = append(f.uVal, y)
				for e := f.lPtr[t]; e < f.lPtr[t+1]; e++ {
					r := f.lIdx[e]
					if !ws.mark[r] {
						ws.mark[r] = true
						touched = append(touched, r)
						if p := f.pos[r]; p >= 0 {
							heap = pushPos(heap, p)
						}
					}
					x[r] -= f.lVal[e] * y
				}
			}
		}

		// Pivot choice among non-pivotal touched rows: threshold partial
		// pivoting with static-Markowitz row merit.
		var pivRow int32 = -1
		maxAbs := 0.0
		for _, r := range touched {
			if f.pos[r] >= 0 {
				continue
			}
			if a := math.Abs(x[r]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < luSingularTol {
			clearTouched(x, ws.mark, touched)
			return nil
		}
		bestCnt := int32(math.MaxInt32)
		for _, r := range touched {
			if f.pos[r] >= 0 {
				continue
			}
			if math.Abs(x[r]) < luPivotThreshold*maxAbs {
				continue
			}
			if rowCnt[r] < bestCnt || (rowCnt[r] == bestCnt && (pivRow < 0 || r < pivRow)) {
				bestCnt = rowCnt[r]
				pivRow = r
			}
		}
		piv := x[pivRow]
		f.perm[k] = pivRow
		f.pos[pivRow] = int32(k)
		f.posSlot[slot] = int32(k)
		f.uDiag[k] = piv

		// L column k: remaining sub-diagonal entries, ascending row order
		// for a deterministic layout (touched order is scatter order, so
		// sort the small slice of survivors).
		lRows := touched[:0:0]
		for _, r := range touched {
			if f.pos[r] >= 0 || r == pivRow || x[r] == 0 {
				continue
			}
			lRows = append(lRows, r)
		}
		insertionSortInt32(lRows)
		inv := 1 / piv
		for _, r := range lRows {
			f.lIdx = append(f.lIdx, r)
			f.lVal = append(f.lVal, x[r]*inv)
		}
		f.lPtr = append(f.lPtr, int32(len(f.lIdx)))
		f.uPtr = append(f.uPtr, int32(len(f.uIdx)))

		clearTouched(x, ws.mark, touched)
	}
	return f
}

func clearTouched(x []float64, mark []bool, touched []int32) {
	for _, r := range touched {
		x[r] = 0
		mark[r] = false
	}
}

// pushPos / popPos maintain a binary min-heap of pivot positions.
func pushPos(h []int32, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popPos(h []int32) (int32, []int32) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l] < h[s] {
			s = l
		}
		if r < len(h) && h[r] < h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	// Skip duplicates pushed by multiple fill events.
	for len(h) > 0 && h[0] == top {
		_, h = popPos(h)
	}
	return top, h
}

func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// eta is one product-form basis update: the column whose FTRAN image was w
// became basic in tableau slot `slot`. Entries exclude the pivot slot.
type eta struct {
	slot   int32
	pivVal float64
	idx    []int32 // tableau slots, ascending
	val    []float64
}

// luState is the factorization plus accumulated etas — the invertible
// representation of the current basis.
type luState struct {
	f    *luFactor
	etas []eta
	ws   *luScratch
	// work vectors for solves (slot space / pos space).
	w1 []float64
	w2 []float64
}

func newLUState(m int) *luState {
	return &luState{ws: newLUScratch(m), w1: make([]float64, m), w2: make([]float64, m)}
}

// refactor rebuilds the factorization at the given basis, dropping all
// etas. Reports false when the basis is numerically singular.
func (s *luState) refactor(sf *standardForm, basis []int) bool {
	f := factorBasis(sf, basis, s.ws)
	if f == nil {
		return false
	}
	s.f = f
	s.etas = s.etas[:0]
	return true
}

// ftranInto solves B·x = v. v is in original-row space; out (len m) receives
// the solution in tableau-slot space. v is left unmodified; v and out must
// not alias.
func (s *luState) ftranInto(out, v []float64) {
	f := s.f
	m := f.m
	w := s.w1
	copy(w, v)
	// L solve in pivot order (w stays row-indexed; w[perm[t]] is y_t).
	for t := 0; t < m; t++ {
		y := w[f.perm[t]]
		if y != 0 {
			for e := f.lPtr[t]; e < f.lPtr[t+1]; e++ {
				w[f.lIdx[e]] -= f.lVal[e] * y
			}
		}
	}
	// U back-substitution, column-oriented.
	for k := m - 1; k >= 0; k-- {
		pr := f.perm[k]
		t := w[pr] / f.uDiag[k]
		w[pr] = t
		if t != 0 {
			for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
				w[f.perm[f.uIdx[e]]] -= f.uVal[e] * t
			}
		}
	}
	// Permute pos space → slot space.
	for k := 0; k < m; k++ {
		out[f.slotAt[k]] = w[f.perm[k]]
	}
	// Eta inverses in creation order.
	for i := range s.etas {
		e := &s.etas[i]
		t := out[e.slot] / e.pivVal
		if t != 0 {
			for j, sl := range e.idx {
				out[sl] -= e.val[j] * t
			}
		}
		out[e.slot] = t
	}
}

// btranInto solves Bᵀ·y = c. c is in tableau-slot space (cost of the basic
// variable in each slot); out (len m) receives y in original-row space.
// c is left unmodified; c and out must not alias.
func (s *luState) btranInto(out, c []float64) {
	f := s.f
	m := f.m
	w := s.w1
	copy(w, c)
	// Eta-transpose inverses in reverse creation order.
	for i := len(s.etas) - 1; i >= 0; i-- {
		e := &s.etas[i]
		dot := 0.0
		for j, sl := range e.idx {
			dot += e.val[j] * w[sl]
		}
		w[e.slot] = (w[e.slot] - dot) / e.pivVal
	}
	// Uᵀ forward solve in pos space: v_k = (ĉ_k − Σ U[t,k]·v_t)/u_kk.
	v := s.w2
	for k := 0; k < m; k++ {
		acc := w[f.slotAt[k]]
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			acc -= f.uVal[e] * v[f.uIdx[e]]
		}
		v[k] = acc / f.uDiag[k]
	}
	// Lᵀ backward solve: ŷ_t = v_t − Σ L[p,t]·ŷ_p, then y[perm[t]] = ŷ_t.
	for t := m - 1; t >= 0; t-- {
		acc := v[t]
		for e := f.lPtr[t]; e < f.lPtr[t+1]; e++ {
			acc -= f.lVal[e] * v[f.pos[f.lIdx[e]]]
		}
		v[t] = acc
	}
	for t := 0; t < m; t++ {
		out[f.perm[t]] = v[t]
	}
}

// update absorbs a basis change: the column whose FTRAN image is w (slot
// space) becomes basic in slot r. Reports false when the pivot element is
// too small to absorb stably — the caller must refactor instead.
func (s *luState) update(r int, w []float64) bool {
	if math.Abs(w[r]) < luSingularTol {
		return false
	}
	e := eta{slot: int32(r), pivVal: w[r]}
	for i, v := range w {
		if v != 0 && i != r {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, v)
		}
	}
	s.etas = append(s.etas, e)
	return true
}

// needsRefactor reports whether the accumulated eta count has reached the
// refactorization trigger.
func (s *luState) needsRefactor() bool { return len(s.etas) >= luRefactorEvery }
