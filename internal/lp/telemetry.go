// Telemetry instruments for the simplex layer. Counters are registered once
// at init and updated with single atomic adds at solve exit, so the pivot
// loops themselves stay untouched; only cycling-rule switches are counted
// in-loop (they fire at most once per simplex call).
package lp

import (
	"strings"

	"cpsguard/internal/telemetry"
)

var (
	mSolves        = telemetry.NewCounter("lp.solves")
	mErrors        = telemetry.NewCounter("lp.errors")
	mPivots        = telemetry.NewCounter("lp.pivots")
	mPhase1        = telemetry.NewCounter("lp.phase1_solves")
	mBlandSwitch   = telemetry.NewCounter("lp.bland_switches")
	mBlandRestarts = telemetry.NewCounter("lp.bland_restarts")
	mFallbacks     = telemetry.NewCounter("lp.fallbacks")
	mPivotsHist    = telemetry.NewHistogram("lp.pivots_per_solve", telemetry.WorkEdges)

	// Warm-start attribution: attempts = solves entered with a basis,
	// solves = attempts that finished on the warm path, fallbacks =
	// attempts rejected into the cold two-phase path. warm/cold pivot
	// totals split lp.pivots by which path performed them (wasted pivots
	// from abandoned warm attempts are booked under warm_pivots).
	mWarmAttempts  = telemetry.NewCounter("lp.warm_attempts")
	mWarmSolves    = telemetry.NewCounter("lp.warm_solves")
	mWarmFallbacks = telemetry.NewCounter("lp.warm_fallbacks")
	mWarmPivots    = telemetry.NewCounter("lp.warm_pivots")
	mColdPivots    = telemetry.NewCounter("lp.cold_pivots")

	// Revised-method attribution: sparse solves entered through
	// MethodRevised, the factorization/eta/solve work they performed, and
	// the two dense hand-offs — dense finishes (below-crossover solves
	// delegated wholesale to the dense bounded solver, the byte-identity
	// path) and dense fallbacks (numerical failure mid-sparse-solve handed
	// to the dense method).
	mRevSolves           = telemetry.NewCounter("lp.revised.solves")
	mRevFactorizations   = telemetry.NewCounter("lp.revised.factorizations")
	mRevEtaUpdates       = telemetry.NewCounter("lp.revised.eta_updates")
	mRevRefactorTriggers = telemetry.NewCounter("lp.revised.refactor_triggers")
	mRevFtranSolves      = telemetry.NewCounter("lp.revised.ftran_solves")
	mRevBtranSolves      = telemetry.NewCounter("lp.revised.btran_solves")
	mRevDenseFinishes    = telemetry.NewCounter("lp.revised.dense_finishes")
	mRevDenseFallbacks   = telemetry.NewCounter("lp.revised.dense_fallbacks")

	mStatus = func() map[Status]*telemetry.Counter {
		out := map[Status]*telemetry.Counter{}
		for _, st := range []Status{Optimal, Infeasible, Unbounded, IterationLimit,
			Canceled, DeadlineExceeded, NodeLimit} {
			// Status.String spells multi-word statuses with hyphens
			// ("iteration-limit"); metric names stay in the [a-z0-9_.]
			// charset so the Prometheus mangling is injective.
			name := strings.ReplaceAll(st.String(), "-", "_")
			out[st] = telemetry.NewCounter("lp.status." + name)
		}
		return out
	}()
)

// recordSolve books one SolveOpts outcome: solve/error/status counters, the
// pivot total and per-solve histogram, and the span (when tracing).
func recordSolve(sp *telemetry.Span, sol *Solution, err error) {
	mSolves.Inc()
	if err != nil {
		mErrors.Inc()
		sp.AddDegradations("error: " + err.Error())
		sp.End()
		return
	}
	if sol != nil {
		mStatus[sol.Status].Inc()
		mPivots.Add(int64(sol.Iterations))
		mPivotsHist.Observe(int64(sol.Iterations))
		if sol.WarmStarted {
			mWarmPivots.Add(int64(sol.Iterations))
		} else {
			mColdPivots.Add(int64(sol.Iterations))
		}
		sp.SetWork(int64(sol.Iterations))
	}
	sp.End()
}
