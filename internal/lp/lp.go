// Package lp implements a dense two-phase primal simplex solver for small to
// medium linear programs, with dual-value extraction.
//
// The solver targets the problem sizes that arise in energy-dispatch models
// (hundreds of variables and constraints). It favors numerical robustness
// and auditability over asymptotic speed: the tableau is dense, pivoting is
// Dantzig-rule with an automatic switch to Bland's rule to break cycling,
// and dual values are recovered by solving Bᵀy = c_B against the original
// constraint matrix rather than read out of the (sign-fragile) tableau.
//
// Problems are stated as
//
//	minimize  cᵀx
//	subject to aᵢᵀx {≤,=,≥} bᵢ   for each constraint i
//	           0 ≤ xⱼ ≤ uⱼ       for each variable j (uⱼ may be +Inf)
//
// Upper bounds are lowered onto explicit ≤ rows internally, which keeps the
// pivot logic to the textbook standard form and makes every bound visible to
// the dual extraction (the duals of bound rows are the reduced-cost rents
// used by the marginal-cost profit division in package actors).
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cpsguard/internal/telemetry"
)

// Sense is the direction of a linear constraint.
type Sense int8

const (
	// LE is aᵀx ≤ b.
	LE Sense = iota
	// EQ is aᵀx = b.
	EQ
	// GE is aᵀx ≥ b.
	GE
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int8(s))
	}
}

// Status describes the outcome of a Solve call.
type Status int8

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints.
	Infeasible
	// Unbounded means the objective can decrease without limit.
	Unbounded
	// IterationLimit means the pivot limit was exhausted before optimality.
	IterationLimit
	// Canceled means Options.Ctx was canceled mid-solve.
	Canceled
	// DeadlineExceeded means Options.Ctx's deadline expired mid-solve.
	DeadlineExceeded
	// NodeLimit means a branch-and-bound node budget was exhausted before
	// any integer-feasible incumbent was found (MILP only).
	NodeLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline-exceeded"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int8(s))
	}
}

// ErrBadProblem reports a structurally invalid problem (e.g. a coefficient
// referencing an unknown variable, or a NaN entry).
var ErrBadProblem = errors.New("lp: invalid problem")

// Coef is one nonzero entry of a constraint row.
type Coef struct {
	Var   int     // variable index
	Value float64 // coefficient
}

// Constraint is one linear constraint in a Problem.
type Constraint struct {
	Coefs []Coef
	Sense Sense
	RHS   float64
	// Name is an optional label used in error messages and debugging dumps.
	Name string
}

// Problem is a linear program under construction. The zero value is an empty
// minimization problem; add variables first, then constraints.
type Problem struct {
	name   string    // problem label for error attribution
	obj    []float64 // cost per variable
	upper  []float64 // upper bound per variable (may be +Inf)
	names  []string  // variable names (debugging)
	rows   []Constraint
	bounds int // number of finite upper bounds (for sizing)
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// SetName labels the problem; the label is carried on every *SolveError so
// failures in multi-actor runs are attributable to a specific solve.
func (p *Problem) SetName(name string) { p.name = name }

// Name returns the label set by SetName (empty by default).
func (p *Problem) Name() string { return p.name }

// AddVariable appends a variable with the given objective cost and upper
// bound (use math.Inf(1) for none) and returns its index. Lower bounds are
// always zero; shift the variable at modeling time if a different lower
// bound is needed.
func (p *Problem) AddVariable(name string, cost, upper float64) int {
	p.obj = append(p.obj, cost)
	p.upper = append(p.upper, upper)
	p.names = append(p.names, name)
	if !math.IsInf(upper, 1) {
		p.bounds++
	}
	return len(p.obj) - 1
}

// SetCost replaces the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.obj[v] = cost }

// SetUpper replaces the upper bound of variable v.
func (p *Problem) SetUpper(v int, upper float64) {
	if math.IsInf(p.upper[v], 1) != math.IsInf(upper, 1) {
		if math.IsInf(upper, 1) {
			p.bounds--
		} else {
			p.bounds++
		}
	}
	p.upper[v] = upper
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumConstraints reports the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddConstraint appends a constraint row and returns its index. The index
// identifies the row's dual value in Solution.Duals.
func (p *Problem) AddConstraint(c Constraint) int {
	p.rows = append(p.rows, c)
	return len(p.rows) - 1
}

// VariableName returns the name given to variable v at AddVariable time.
func (p *Problem) VariableName(v int) string { return p.names[v] }

// Cost returns the objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.obj[v] }

// Upper returns the upper bound of variable v (possibly +Inf).
func (p *Problem) Upper(v int) float64 { return p.upper[v] }

// ConstraintAt returns a copy of constraint row i. The coefficient slice is
// copied so callers cannot alias the problem's internals.
func (p *Problem) ConstraintAt(i int) Constraint {
	c := p.rows[i]
	c.Coefs = append([]Coef(nil), c.Coefs...)
	return c
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the primal values, indexed by variable.
	X []float64
	// Duals holds one dual value per constraint row (by AddConstraint
	// index). Sign convention: for the minimization primal, a dual y_i
	// satisfies c ≥ Aᵀy on all variables, so a binding ≤ row has y ≤ 0
	// impact on cost reduction... concretely: relaxing b_i by +δ changes
	// the optimal objective by approximately y_i·δ.
	Duals []float64
	// BoundDuals holds the dual of each variable's upper-bound row
	// (zero when the bound is infinite or slack). Relaxing the bound u_j
	// by +δ changes the objective by approximately BoundDuals[j]·δ.
	BoundDuals []float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
	// Fallbacks records resilience degradations applied by SolveResilient
	// ("bland-restart: ...", ...). Empty for a clean first-attempt solve.
	Fallbacks []string
	// WarmStarted reports that this solution was produced by the warm path
	// (phase 2 re-entered from Options.WarmStart). False when no basis was
	// supplied or the basis was rejected and the solver fell back to cold.
	WarmStarted bool

	// basis is the optimal basis (bounded method only); see Basis().
	basis *Basis
}

// Options tunes the solver. The zero value selects defaults.
type Options struct {
	// Tol is the feasibility/optimality tolerance (default 1e-9).
	Tol float64
	// MaxIter caps total pivots (default 50·(m+n), at least 10_000).
	MaxIter int
	// Method selects the simplex implementation (default MethodRows).
	Method Method
	// SkipDuals skips dual extraction. Use for formulations with split
	// free variables (x = x⁺ − x⁻), where both halves can legitimately
	// end up basic and the basis matrix is singular even though the
	// primal optimum is exact.
	SkipDuals bool
	// Ctx, when non-nil, is checked on entry and every CheckEvery pivots;
	// cancellation stops the solve with status Canceled or
	// DeadlineExceeded (an already-expired context returns before any
	// pivoting).
	Ctx context.Context
	// CheckEvery is the pivot interval between Ctx/Hook checkpoints
	// (default 64).
	CheckEvery int
	// ForceBland starts pivoting under Bland's rule immediately instead
	// of Dantzig's rule — slower but cycling-proof; used by the
	// SolveResilient fallback chain.
	ForceBland bool
	// Hook is an optional fault-injection / instrumentation checkpoint;
	// see the Hook type.
	Hook Hook
	// WarmStart, when non-nil, re-enters phase 2 from the supplied basis
	// (typically Solution.Basis() of a structurally identical problem),
	// skipping phase 1. A basis that is stale — wrong dimensions, wrong
	// method, singular or primal infeasible for this problem — is rejected
	// and the solve falls back to the cold two-phase path, so results are
	// never affected, only cost. See warmstart.go.
	WarmStart *Basis
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-9
}

func (o Options) maxIter(m, n int) int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	it := 50 * (m + n)
	if it < 10000 {
		it = 10000
	}
	return it
}

func (o Options) checkEvery() int {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return 64
}

// Solve solves the problem with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveOpts(Options{}) }

// SolveOpts solves the problem with explicit options. Panics inside the
// pivot loops are recovered and returned as a *SolveError; an expired
// Options.Ctx returns a Canceled/DeadlineExceeded solution without pivoting.
func (p *Problem) SolveOpts(opts Options) (sol *Solution, err error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sp, _ := telemetry.Default().StartSpanCtx(opts.Ctx, "lp.solve", p.name)
	defer func() { recordSolve(sp, sol, err) }()
	g := newGuard(opts)
	if st, stop := g.at("lp.enter"); stop {
		if st == statusAborted {
			return nil, p.solveErr("lp.enter", Optimal, 0, g.err)
		}
		return &Solution{Status: st}, nil
	}
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, p.solveErr("pivot-loop", Optimal, 0, fmt.Errorf("recovered panic: %v", r))
		}
	}()
	switch opts.Method.resolve(p) {
	case MethodBounded:
		return solveBounded(p, opts, g)
	case MethodRevised:
		return solveRevised(p, opts, g)
	}
	t, err := newTableau(p, opts)
	if err != nil {
		return nil, err
	}
	t.g = g
	return t.run()
}

// solveErr builds the structured error for a failed solve of p.
func (p *Problem) solveErr(stage string, st Status, iters int, cause error) error {
	return &SolveError{Problem: p.name, Stage: stage, Status: st, Iterations: iters, Err: cause}
}

func (p *Problem) validate() error {
	n := len(p.obj)
	for j, c := range p.obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: objective coefficient of %q is %v", ErrBadProblem, p.names[j], c)
		}
	}
	for j, u := range p.upper {
		if math.IsNaN(u) || u < 0 {
			return fmt.Errorf("%w: upper bound of %q is %v", ErrBadProblem, p.names[j], u)
		}
	}
	for i, row := range p.rows {
		if math.IsNaN(row.RHS) || math.IsInf(row.RHS, 0) {
			return fmt.Errorf("%w: RHS of row %d (%s) is %v", ErrBadProblem, i, row.Name, row.RHS)
		}
		for _, co := range row.Coefs {
			if co.Var < 0 || co.Var >= n {
				return fmt.Errorf("%w: row %d (%s) references variable %d of %d", ErrBadProblem, i, row.Name, co.Var, n)
			}
			if math.IsNaN(co.Value) || math.IsInf(co.Value, 0) {
				return fmt.Errorf("%w: row %d (%s) has coefficient %v", ErrBadProblem, i, row.Name, co.Value)
			}
		}
	}
	return nil
}

// tableau is the working state of the two-phase simplex.
type tableau struct {
	p    *Problem
	opts Options
	tol  float64

	n      int // structural variables
	mUser  int // user constraint rows
	mBound int // bound rows
	m      int // total rows = mUser + mBound

	// a is the m×(n+extra) dense constraint matrix in standard form with
	// slack/surplus/artificial columns appended; b is the (nonnegative)
	// RHS. rowSense records the original sense after RHS normalization.
	a [][]float64
	b []float64

	nTotal  int   // columns in a
	basis   []int // basic variable (column) per row
	artCols []int // artificial column index per row, or -1
	// slackCols[i] is the slack/surplus column of row i, or -1 for EQ rows.
	slackCols []int

	cost  []float64 // phase-2 cost per column (0 for slack/art)
	iters int
	max   int
	g     *guard
}

func newTableau(p *Problem, opts Options) (*tableau, error) {
	t := &tableau{p: p, opts: opts, tol: opts.tol()}
	t.n = len(p.obj)
	t.mUser = len(p.rows)
	t.mBound = p.bounds
	t.m = t.mUser + t.mBound

	// Column layout: [structural | one slack/surplus per non-EQ row |
	// one artificial per row that needs one]. We allocate generously and
	// trim by tracking nTotal.
	maxCols := t.n + t.m /*slack*/ + t.m /*artificial*/
	t.a = make([][]float64, t.m)
	rowsBacking := make([]float64, t.m*maxCols)
	for i := range t.a {
		t.a[i] = rowsBacking[i*maxCols : (i+1)*maxCols]
	}
	t.b = make([]float64, t.m)
	t.basis = make([]int, t.m)
	t.artCols = make([]int, t.m)
	t.slackCols = make([]int, t.m)

	// Fill user rows. Normalize so b ≥ 0 (flip sense when negating).
	senses := make([]Sense, t.m)
	for i, row := range p.rows {
		s := row.Sense
		rhs := row.RHS
		flip := rhs < 0
		if flip {
			rhs = -rhs
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		for _, co := range row.Coefs {
			v := co.Value
			if flip {
				v = -v
			}
			t.a[i][co.Var] += v
		}
		t.b[i] = rhs
		senses[i] = s
	}
	// Bound rows: x_j ≤ u_j.
	bi := t.mUser
	for j, u := range p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		t.a[bi][j] = 1
		t.b[bi] = u
		senses[bi] = LE
		bi++
	}

	// Slack / surplus columns.
	col := t.n
	for i := 0; i < t.m; i++ {
		switch senses[i] {
		case LE:
			t.a[i][col] = 1
			t.slackCols[i] = col
			col++
		case GE:
			t.a[i][col] = -1
			t.slackCols[i] = col
			col++
		default:
			t.slackCols[i] = -1
		}
	}
	// Artificial columns: needed for GE and EQ rows; LE rows start with
	// their slack basic (b ≥ 0 already).
	for i := 0; i < t.m; i++ {
		switch senses[i] {
		case LE:
			t.basis[i] = t.slackCols[i]
			t.artCols[i] = -1
		default:
			t.a[i][col] = 1
			t.basis[i] = col
			t.artCols[i] = col
			col++
		}
	}
	t.nTotal = col

	// Phase-2 costs.
	t.cost = make([]float64, t.nTotal)
	copy(t.cost, p.obj)

	t.max = opts.maxIter(t.m, t.nTotal)
	return t, nil
}

// run executes phase 1 (if artificials exist) and phase 2, then extracts the
// solution and dual values.
func (t *tableau) run() (*Solution, error) {
	hasArt := false
	for _, c := range t.artCols {
		if c >= 0 {
			hasArt = true
			break
		}
	}
	if hasArt {
		mPhase1.Inc()
		// Phase-1 cost: sum of artificials.
		c1 := make([]float64, t.nTotal)
		for _, c := range t.artCols {
			if c >= 0 {
				c1[c] = 1
			}
		}
		st := t.simplex(c1, true)
		if st != Optimal {
			return t.stopped("lp.phase1", st)
		}
		// Feasible iff artificial sum is ~0.
		sum := 0.0
		for i, bc := range t.basis {
			if c1[bc] != 0 {
				sum += t.b[i]
			}
		}
		if sum > t.feasTol() {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		t.evictArtificials()
	}
	st := t.simplex(t.cost, false)
	if st != Optimal {
		return t.stopped("lp.phase2", st)
	}
	return t.extract()
}

// stopped converts a non-optimal simplex exit status into the caller-facing
// (Solution, error) pair: degradation statuses travel on the Solution,
// hook-abort errors travel as a *SolveError.
func (t *tableau) stopped(stage string, st Status) (*Solution, error) {
	if st == statusAborted {
		return nil, t.p.solveErr(stage, Optimal, t.iters, t.g.err)
	}
	return &Solution{Status: st, Iterations: t.iters}, nil
}

// feasTol is the (scale-aware) phase-1 feasibility threshold.
func (t *tableau) feasTol() float64 {
	scale := 1.0
	for _, v := range t.b {
		if v > scale {
			scale = v
		}
	}
	return t.tol * scale * float64(t.m+1) * 100
}

// evictArtificials pivots basic artificial variables out of the basis (or
// leaves them at zero in degenerate redundant rows, where every structural
// coefficient is zero).
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		bc := t.basis[i]
		if t.artCols[i] != bc && !t.isArtificial(bc) {
			continue
		}
		if !t.isArtificial(bc) {
			continue
		}
		// Find any non-artificial column with a nonzero entry in row i.
		pivotCol := -1
		for j := 0; j < t.nTotal; j++ {
			if t.isArtificial(j) {
				continue
			}
			if math.Abs(t.a[i][j]) > t.tol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
		// Otherwise the row is redundant; the artificial stays basic at
		// value ~0 and never re-enters because phase 2 ignores it (see
		// simplex: artificial columns are barred from entering).
	}
}

func (t *tableau) isArtificial(col int) bool {
	for _, c := range t.artCols {
		if c == col {
			return true
		}
	}
	return false
}

// simplex runs primal simplex pivots minimizing cᵀx over the current
// tableau. When phase1 is false, artificial columns may not enter the basis.
func (t *tableau) simplex(c []float64, phase1 bool) Status {
	// Reduced costs are computed on demand: r_j = c_j − c_Bᵀ(B⁻¹A)_j,
	// where the tableau columns already store B⁻¹A.
	bland := t.opts.ForceBland
	noProgress := 0
	lastObj := math.Inf(1)
	for t.iters < t.max {
		if t.g.due(t.iters) {
			if st, stop := t.g.at("lp.pivot"); stop {
				return st
			}
		}
		// Current basic costs.
		obj := 0.0
		for i, bc := range t.basis {
			obj += c[bc] * t.b[i]
		}
		if obj < lastObj-t.tol {
			lastObj = obj
			noProgress = 0
		} else {
			noProgress++
			if noProgress > 2*(t.m+10) {
				if !bland {
					mBlandSwitch.Inc()
				}
				bland = true // suspected cycling: switch to Bland's rule
			}
		}

		enter := -1
		best := -t.tol
		for j := 0; j < t.nTotal; j++ {
			if !phase1 && t.isArtificial(j) {
				continue
			}
			r := c[j]
			for i, bc := range t.basis {
				if cb := c[bc]; cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			if r < best {
				if bland {
					enter = j
					break
				}
				best = r
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > t.tol {
				ratio := t.b[i] / aij
				if ratio < bestRatio-t.tol ||
					(ratio < bestRatio+t.tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		t.iters++
	}
	return IterationLimit
}

// pivot performs a Gauss-Jordan pivot making column `col` basic in row `row`.
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	ar := t.a[row]
	for j := 0; j < t.nTotal; j++ {
		ar[j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			ai[j] -= f * ar[j]
		}
		t.b[i] -= f * t.b[row]
		if math.Abs(t.b[i]) < 1e-13 {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}

// extract reads the primal solution off the tableau and recovers duals by
// solving Bᵀy = c_B against the *original* standard-form matrix.
func (t *tableau) extract() (*Solution, error) {
	sol := &Solution{
		Status:     Optimal,
		X:          make([]float64, t.n),
		Duals:      make([]float64, t.mUser),
		BoundDuals: make([]float64, t.n),
		Iterations: t.iters,
	}
	for i, bc := range t.basis {
		if bc < t.n {
			sol.X[bc] = t.b[i]
		}
	}
	for j := range sol.X {
		if math.Abs(sol.X[j]) < 1e-12 {
			sol.X[j] = 0
		}
	}
	obj := 0.0
	for j, x := range sol.X {
		obj += t.p.obj[j] * x
	}
	sol.Objective = obj

	if t.opts.SkipDuals {
		return sol, nil
	}
	if st, stop := t.g.at("lp.extract"); stop {
		if st == statusAborted {
			return nil, t.p.solveErr("lp.extract", Optimal, t.iters, t.g.err)
		}
		return &Solution{Status: st, Iterations: t.iters}, nil
	}
	y, err := t.duals()
	if err != nil {
		// Attribute the failure: multi-actor runs solve hundreds of
		// near-identical LPs, and an unlabeled singular basis is
		// undiagnosable.
		return nil, t.p.solveErr("dual-extraction", Optimal, t.iters, err)
	}
	// Map standard-form duals back to user rows, undoing RHS normalization
	// (rows whose RHS was negated have negated duals).
	for i, row := range t.p.rows {
		d := y[i]
		if row.RHS < 0 {
			d = -d
		}
		sol.Duals[i] = d
	}
	bi := t.mUser
	for j, u := range t.p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		sol.BoundDuals[j] = y[bi]
		bi++
	}
	return sol, nil
}

// duals rebuilds the original standard-form matrix (pre-pivoting) and solves
// Bᵀy = c_B with partial-pivot Gaussian elimination.
func (t *tableau) duals() ([]float64, error) {
	m := t.m
	// Rebuild original columns for the basis.
	orig := t.originalMatrix()
	bt := make([][]float64, m) // Bᵀ
	for i := range bt {
		bt[i] = make([]float64, m+1)
	}
	for k, bc := range t.basis { // column k of B is orig column basis[k]
		for i := 0; i < m; i++ {
			bt[k][i] = orig[i][bc] // (Bᵀ)[k][i] = B[i][k]
		}
		cb := 0.0
		if bc < len(t.cost) {
			cb = t.cost[bc]
		}
		bt[k][m] = cb
	}
	y, ok := solveDense(bt)
	if !ok {
		return nil, errSingularBasis
	}
	return y, nil
}

// originalMatrix reconstructs the standard-form constraint matrix as it was
// before any pivoting.
func (t *tableau) originalMatrix() [][]float64 {
	m := t.m
	orig := make([][]float64, m)
	backing := make([]float64, m*t.nTotal)
	for i := range orig {
		orig[i] = backing[i*t.nTotal : (i+1)*t.nTotal]
	}
	for i, row := range t.p.rows {
		flip := row.RHS < 0
		for _, co := range row.Coefs {
			v := co.Value
			if flip {
				v = -v
			}
			orig[i][co.Var] += v
		}
	}
	bi := t.mUser
	for j, u := range t.p.upper {
		if math.IsInf(u, 1) {
			continue
		}
		orig[bi][j] = 1
		bi++
	}
	for i := 0; i < m; i++ {
		if sc := t.slackCols[i]; sc >= 0 {
			// Sense after normalization decides the sign; recover it
			// from the stored slack sign convention: we must re-derive.
			orig[i][sc] = t.slackSign(i)
		}
		if ac := t.artCols[i]; ac >= 0 {
			orig[i][ac] = 1
		}
	}
	return orig
}

// slackSign reports +1 for a LE row's slack and −1 for a GE row's surplus,
// using the normalized sense.
func (t *tableau) slackSign(i int) float64 {
	if i >= t.mUser {
		return 1 // bound rows are always ≤
	}
	row := t.p.rows[i]
	s := row.Sense
	if row.RHS < 0 { // normalization flipped the sense
		switch s {
		case LE:
			s = GE
		case GE:
			s = LE
		}
	}
	if s == GE {
		return -1
	}
	return 1
}

// solveDense solves the square augmented system rows[i] = [A | b] in place
// via Gaussian elimination with partial pivoting. Returns the solution and
// whether the matrix was nonsingular.
func solveDense(rows [][]float64) ([]float64, bool) {
	n := len(rows)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(rows[r][col]) > math.Abs(rows[p][col]) {
				p = r
			}
		}
		if math.Abs(rows[p][col]) < 1e-12 {
			return nil, false
		}
		rows[col], rows[p] = rows[p], rows[col]
		pivRow := rows[col]
		inv := 1 / pivRow[col]
		for j := col; j <= n; j++ {
			pivRow[j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := rows[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				rows[r][j] -= f * pivRow[j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rows[i][n]
	}
	return x, true
}
