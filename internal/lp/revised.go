// Sparse revised simplex with bounded variables.
//
// MethodRevised solves the same bounded-variable standard form as
// MethodBounded (bounded.go) but never materializes the dense B⁻¹A tableau.
// It keeps the constraint matrix in CSC form (sparse.go), represents B⁻¹ as
// a sparse LU factorization plus product-form eta updates (lu.go), prices
// with a BTRAN solve per iteration (partial pricing above a size threshold),
// and runs the ratio test on the FTRAN image of the entering column. Per
// pivot the work is O(nnz) instead of O(m·nTotal), which is what makes the
// national-scale gridgen tier tractable (BenchmarkRevisedNationalGrid).
//
// Determinism contract vs the dense oracle (DESIGN.md §15): the pivot rules
// — Dantzig entering with first-lowest-index ties, the Bland anti-cycling
// switch, the ratio-test tolerances and tie-breaks, the bound-flip and
// clamping behavior — are copied from boundedTableau.simplex line for line,
// so both methods walk equivalent vertex paths; only the floating-point
// route to each number differs (reduced costs come from y = B⁻ᵀc_B instead
// of the accumulated tableau). Sparse arithmetic therefore agrees with the
// oracle to 1e-9 but not to the last ulp — refactorization rounds
// differently than accumulated pivoting, the same reason §12 calls warm
// starts tolerance-pure. Byte-identity on small instances is achieved the
// only way it can be: problems at or below revisedFinishMaxRows are routed
// to the dense bounded solver outright (the sparse machinery has nothing
// to win there anyway), which is what lets -lp-method=revised reproduce
// the golden fixture bit for bit (TestGoldenFig5Revised). Above the
// crossover the solve and its extraction are fully sparse and agreement is
// 1e-9-differential, proven by TestRevisedVsDenseDifferential.
package lp

import "math"

// revisedFinishMaxRows is the dense crossover: at or below this many
// constraint rows MethodRevised delegates the whole solve to the dense
// bounded solver (byte-identical results to MethodBounded by construction;
// dense is at least as fast at these sizes); above it, the sparse solver
// runs end to end. A package variable so the differential battery can force
// the sparse path on instances of every size.
var revisedFinishMaxRows = 512

const (
	// revisedPartialPricingMin is the column count above which pricing
	// scans cyclic blocks instead of every column per iteration.
	revisedPartialPricingMin = 4096
	// revisedPricingBlock is the partial-pricing block width.
	revisedPricingBlock = 1024
)

// statusNumerical is an internal status: the LU refactorization found the
// basis numerically singular mid-solve. The caller falls back to the dense
// method, which pivots through near-singularity instead of factoring.
const statusNumerical Status = -2

type revisedSolver struct {
	tol        float64
	forceBland bool
	skipDuals  bool
	g          *guard
	p          *Problem
	sf         *standardForm
	lu         *luState

	basis  []int     // slot → basic column
	status []int8    // per column
	upper  []float64 // per column (artificials clamped to 0 after phase 1)
	xb     []float64 // slot → basic value (the dense method's rhs)

	iters int
	max   int

	priceCursor int

	// Counter deltas, flushed to the lp.revised.* telemetry at solver exit.
	cFactor, cEta, cRefactor, cFtran, cBtran int64

	cb     []float64 // slot space: costs of basic columns
	w      []float64 // slot space: FTRAN image of the entering column
	y      []float64 // row space: pricing duals
	colBuf []float64 // row space scatter buffer, kept all-zero between uses
}

// solveRevised is the entry point used by Problem.SolveOpts for
// MethodRevised.
func solveRevised(p *Problem, opts Options, g *guard) (*Solution, error) {
	// Below the dense crossover the dense bounded solver is at least as
	// fast and is the byte-identity oracle; hand it the whole solve (warm
	// basis and all — the column layouts match by construction).
	if len(p.rows) <= revisedFinishMaxRows {
		mRevDenseFinishes.Inc()
		return solveBounded(p, opts, g)
	}
	mRevSolves.Inc()
	if opts.WarmStart != nil {
		if sol, err, ok := solveRevisedWarm(p, opts, g); ok {
			return sol, err
		}
		mWarmFallbacks.Inc()
	}
	rs := newRevisedSolver(p, opts, g)
	defer rs.flush()
	st := rs.run()
	switch st {
	case statusAborted:
		return nil, p.solveErr("lp.pivot", Optimal, rs.iters, g.err)
	case statusNumerical:
		return rs.denseFallback(p, opts)
	case Infeasible, Unbounded, IterationLimit, Canceled, DeadlineExceeded:
		return &Solution{Status: st, Iterations: rs.iters}, nil
	}
	return rs.extractSparse(p)
}

// solveRevisedWarm attempts a phase-2-only revised solve from the supplied
// basis — warm-start basis reuse carried over as factorization reuse. The
// boolean reports whether the warm attempt produced a usable outcome.
func solveRevisedWarm(p *Problem, opts Options, g *guard) (*Solution, error, bool) {
	mWarmAttempts.Inc()
	rs := newRevisedSolver(p, opts, g)
	defer rs.flush()
	if !rs.applyWarmBasis(opts.WarmStart) {
		return nil, nil, false
	}
	st := rs.simplex(rs.sf.cost)
	switch st {
	case statusAborted:
		return nil, p.solveErr("lp.pivot", Optimal, rs.iters, g.err), true
	case Canceled, DeadlineExceeded:
		sol := &Solution{Status: st, Iterations: rs.iters, WarmStarted: true}
		return sol, nil, true
	case Optimal:
		// Proceed to extraction below.
	default:
		// Unbounded, IterationLimit or numerical failure from a stale
		// basis: distrust it and re-derive from a cold start.
		mWarmPivots.Add(int64(rs.iters))
		return nil, nil, false
	}
	sol, err := rs.extractSparse(p)
	if err != nil {
		mWarmPivots.Add(int64(rs.iters))
		return nil, nil, false
	}
	mWarmSolves.Inc()
	sol.WarmStarted = true
	return sol, nil, true
}

func newRevisedSolver(p *Problem, opts Options, g *guard) *revisedSolver {
	sf := newStandardForm(p)
	rs := &revisedSolver{
		tol:        opts.tol(),
		forceBland: opts.ForceBland,
		skipDuals:  opts.SkipDuals,
		g:          g,
		p:          p,
		sf:         sf,
		lu:         newLUState(sf.m),
		basis:      append([]int(nil), sf.startBasis...),
		status:     make([]int8, sf.nTotal),
		upper:      append([]float64(nil), sf.upper...),
		xb:         append([]float64(nil), sf.rhs...),
		cb:         make([]float64, sf.m),
		w:          make([]float64, sf.m),
		y:          make([]float64, sf.m),
		colBuf:     make([]float64, sf.m),
	}
	for _, c := range rs.basis {
		rs.status[c] = inBasis
	}
	rs.max = opts.maxIter(sf.m, sf.nTotal)
	// The starting basis is all slack/artificial unit columns — never
	// singular.
	rs.refactorNow()
	return rs
}

func (rs *revisedSolver) flush() {
	mRevFactorizations.Add(rs.cFactor)
	mRevEtaUpdates.Add(rs.cEta)
	mRevRefactorTriggers.Add(rs.cRefactor)
	mRevFtranSolves.Add(rs.cFtran)
	mRevBtranSolves.Add(rs.cBtran)
}

func (rs *revisedSolver) refactorNow() bool {
	if !rs.lu.refactor(rs.sf, rs.basis) {
		return false
	}
	rs.cFactor++
	return true
}

// run executes both phases, mirroring boundedTableau.run.
func (rs *revisedSolver) run() Status {
	sf := rs.sf
	hasArt := false
	for _, isArt := range sf.art {
		if isArt {
			hasArt = true
			break
		}
	}
	if hasArt {
		c1 := make([]float64, sf.nTotal)
		for j, isArt := range sf.art {
			if isArt {
				c1[j] = 1
			}
		}
		if st := rs.simplex(c1); st != Optimal {
			return st
		}
		artSum := 0.0
		for i, bc := range rs.basis {
			if sf.art[bc] {
				artSum += rs.xb[i]
			}
		}
		scale := 1.0
		for _, v := range rs.xb {
			if v > scale {
				scale = v
			}
		}
		if artSum > rs.tol*scale*float64(sf.m+1)*100 {
			return Infeasible
		}
		for j, isArt := range sf.art {
			if isArt {
				rs.upper[j] = 0
			}
		}
	}
	return rs.simplex(sf.cost)
}

// simplex runs bounded-variable pivots minimizing c. The control flow —
// progress tracking, Bland switch, entering/leaving rules, flips, clamps —
// mirrors boundedTableau.simplex; only the linear algebra is factored.
func (rs *revisedSolver) simplex(c []float64) Status {
	m, nTotal := rs.sf.m, rs.sf.nTotal
	bland := rs.forceBland
	noProgress := 0
	lastObj := math.Inf(1)
	for rs.iters < rs.max {
		if rs.g.due(rs.iters) {
			if st, stop := rs.g.at("lp.pivot"); stop {
				return st
			}
		}
		obj := 0.0
		for j := 0; j < nTotal; j++ {
			if rs.status[j] == atUpper {
				obj += c[j] * rs.upper[j]
			}
		}
		for i, bc := range rs.basis {
			obj += c[bc] * rs.xb[i]
		}
		if obj < lastObj-rs.tol {
			lastObj = obj
			noProgress = 0
		} else if noProgress++; noProgress > 2*(m+10) {
			if !bland {
				mBlandSwitch.Inc()
			}
			bland = true
		}

		// Pricing duals y = B⁻ᵀ c_B, then reduced costs per column as a
		// sparse dot against the original matrix.
		for i, bc := range rs.basis {
			rs.cb[i] = c[bc]
		}
		rs.lu.btranInto(rs.y, rs.cb)
		rs.cBtran++

		enter, enterDir := rs.price(c, bland)
		if enter < 0 {
			return Optimal
		}

		// Entering column image w = B⁻¹ A_enter (the dense tableau column).
		rs.ftranCol(enter)

		// Ratio test: identical limits and tie-breaks to the dense method.
		limit := math.Inf(1)
		if u := rs.upper[enter]; !math.IsInf(u, 1) {
			limit = u // full bound-flip distance
		}
		leave := -1
		leaveToUpper := false
		for i := 0; i < m; i++ {
			coef := enterDir * rs.w[i]
			bc := rs.basis[i]
			if coef > rs.tol {
				ratio := rs.xb[i] / coef
				if ratio < limit-rs.tol ||
					(ratio < limit+rs.tol && leave >= 0 && bc < rs.basis[leave]) {
					limit = ratio
					leave = i
					leaveToUpper = false
				}
			} else if coef < -rs.tol {
				if ub := rs.upper[bc]; !math.IsInf(ub, 1) {
					ratio := (ub - rs.xb[i]) / -coef
					if ratio < limit-rs.tol ||
						(ratio < limit+rs.tol && leave >= 0 && bc < rs.basis[leave]) {
						limit = ratio
						leave = i
						leaveToUpper = true
					}
				}
			}
		}
		if math.IsInf(limit, 1) {
			return Unbounded
		}
		rs.iters++
		if leave < 0 {
			// Bound flip: x_enter runs to its opposite bound.
			rs.move(enterDir, limit)
			if enterDir > 0 {
				rs.status[enter] = atUpper
			} else {
				rs.status[enter] = atLower
			}
			continue
		}
		rs.move(enterDir, limit)
		var enterValue float64
		if enterDir > 0 {
			enterValue = limit
		} else {
			enterValue = rs.upper[enter] - limit
		}
		outCol := rs.basis[leave]
		if leaveToUpper {
			rs.status[outCol] = atUpper
		} else {
			rs.status[outCol] = atLower
		}
		rs.basis[leave] = enter
		rs.xb[leave] = enterValue
		rs.status[enter] = inBasis

		// Absorb the basis change as an eta, refactoring on the update-count
		// trigger or when the pivot element is too small to absorb stably.
		if rs.lu.update(leave, rs.w) {
			rs.cEta++
			if rs.lu.needsRefactor() {
				rs.cRefactor++
				if !rs.refactorNow() {
					return statusNumerical
				}
			}
		} else {
			rs.cRefactor++
			if !rs.refactorNow() {
				return statusNumerical
			}
		}
	}
	return IterationLimit
}

// price selects the entering column: Dantzig with first-lowest-index ties
// (first candidate under Bland), over all columns or — above the partial
// pricing threshold — cyclic blocks starting at the pricing cursor.
func (rs *revisedSolver) price(c []float64, bland bool) (int, float64) {
	nTotal := rs.sf.nTotal
	if bland || nTotal < revisedPartialPricingMin {
		return rs.priceRange(c, 0, nTotal, bland)
	}
	start := rs.priceCursor % nTotal
	for scanned := 0; scanned < nTotal; {
		hi := start + revisedPricingBlock
		if hi > nTotal {
			hi = nTotal
		}
		if j, dir := rs.priceRange(c, start, hi, false); j >= 0 {
			rs.priceCursor = hi % nTotal
			return j, dir
		}
		scanned += hi - start
		start = hi % nTotal
	}
	return -1, 0
}

func (rs *revisedSolver) priceRange(c []float64, lo, hi int, bland bool) (int, float64) {
	enter := -1
	enterDir := 1.0
	best := rs.tol
	for j := lo; j < hi; j++ {
		if rs.status[j] == inBasis {
			continue
		}
		if rs.upper[j] == 0 && rs.status[j] == atLower {
			continue // fixed at zero (clamped artificials)
		}
		r := c[j] - rs.priceDot(j)
		var imp float64
		var dir float64
		if rs.status[j] == atLower && r < 0 {
			imp, dir = -r, 1
		} else if rs.status[j] == atUpper && r > 0 {
			imp, dir = r, -1
		} else {
			continue
		}
		if imp > best {
			best = imp
			enter = j
			enterDir = dir
			if bland {
				break
			}
		}
	}
	return enter, enterDir
}

// priceDot is yᵀA_j over the sparse column.
func (rs *revisedSolver) priceDot(j int) float64 {
	rows, vals := rs.sf.a.col(j)
	s := 0.0
	for k, r := range rows {
		s += rs.y[r] * vals[k]
	}
	return s
}

// ftranCol computes w = B⁻¹ A_j via the scatter buffer (restored to zero
// before returning).
func (rs *revisedSolver) ftranCol(j int) {
	rows, vals := rs.sf.a.col(j)
	for k, r := range rows {
		rs.colBuf[r] = vals[k]
	}
	rs.lu.ftranInto(rs.w, rs.colBuf)
	rs.cFtran++
	for _, r := range rows {
		rs.colBuf[r] = 0
	}
}

// move shifts the entering column by delta in direction dir, updating basic
// values from its FTRAN image in rs.w — the revised counterpart of
// boundedTableau.move, including its tiny-negative clamp.
func (rs *revisedSolver) move(dir, delta float64) {
	if delta == 0 {
		return
	}
	for i := 0; i < rs.sf.m; i++ {
		rs.xb[i] -= dir * delta * rs.w[i]
		if rs.xb[i] < 0 && rs.xb[i] > -1e-11 {
			rs.xb[i] = 0
		}
	}
}

// applyWarmBasis reconstitutes the solver at the supplied basis: statuses
// restored, the basis refactorized (LU instead of the dense Gauss-Jordan),
// basic values recomputed as xb = B⁻¹(b − Σ u_j A_j over nonbasic-at-upper
// columns) and checked for primal feasibility — the revised counterpart of
// boundedTableau.applyWarmBasis, accepting bases from either method (the
// column layouts are identical by construction).
func (rs *revisedSolver) applyWarmBasis(b *Basis) bool {
	sf := rs.sf
	if b == nil || (b.method != MethodBounded && b.method != MethodRevised) ||
		b.n != sf.n || b.m != sf.m || b.nTotal != sf.nTotal ||
		len(b.rows) != sf.m || len(b.status) != sf.nTotal {
		return false
	}
	inBasisCount := 0
	for j, st := range b.status {
		switch st {
		case inBasis:
			inBasisCount++
		case atUpper:
			if math.IsInf(rs.upper[j], 1) {
				return false // bound vanished; the status is meaningless
			}
		case atLower:
			// Always valid.
		default:
			return false
		}
	}
	if inBasisCount != sf.m {
		return false
	}
	seen := make([]bool, sf.nTotal)
	for _, col := range b.rows {
		if col < 0 || col >= sf.nTotal || b.status[col] != inBasis || seen[col] {
			return false
		}
		seen[col] = true
	}
	copy(rs.basis, b.rows)
	copy(rs.status, b.status)
	if !rs.refactorNow() {
		return false // singular for the perturbed matrix
	}
	// Artificials never re-enter a warm phase 2.
	for j, isArt := range sf.art {
		if isArt {
			rs.upper[j] = 0
		}
	}
	// Basic values: accumulate the at-upper offsets in row space, then one
	// FTRAN. rs.y doubles as the row-space scratch here (pricing overwrites
	// it before first use).
	copy(rs.y, sf.rhs)
	for j, st := range rs.status {
		if st != atUpper {
			continue
		}
		u := rs.upper[j]
		if u == 0 {
			continue
		}
		rows, vals := sf.a.col(j)
		for k, r := range rows {
			rs.y[r] -= u * vals[k]
		}
	}
	rs.lu.ftranInto(rs.xb, rs.y)
	rs.cFtran++

	// Primal feasibility under the current bounds, with the same
	// scale-aware tolerance the dense warm path uses.
	scale := 1.0
	for _, v := range rs.xb {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	eps := rs.tol * scale * float64(sf.m+1) * 100
	for i := 0; i < sf.m; i++ {
		v := rs.xb[i]
		if v < -eps {
			return false
		}
		u := rs.upper[rs.basis[i]]
		if !math.IsInf(u, 1) && v > u+eps {
			return false
		}
		if v < 0 {
			rs.xb[i] = 0
		} else if v > u {
			rs.xb[i] = u
		}
	}
	return true
}

// captureBasis snapshots the solver's final basis for reuse. The layout is
// identical to the dense bounded tableau's, so either warm path accepts it.
func (rs *revisedSolver) captureBasis() *Basis {
	return &Basis{
		method: MethodRevised,
		n:      rs.sf.n,
		m:      rs.sf.m,
		nTotal: rs.sf.nTotal,
		rows:   append([]int(nil), rs.basis...),
		status: append([]int8(nil), rs.status...),
	}
}

// denseFallback hands the whole solve to the dense bounded method (cold).
// Correctness is never affected — only cost — and the event is counted.
func (rs *revisedSolver) denseFallback(p *Problem, opts Options) (*Solution, error) {
	mRevDenseFallbacks.Inc()
	opts.WarmStart = nil
	sol, err := solveBounded(p, opts, rs.g)
	if sol != nil {
		sol.Iterations += rs.iters
	}
	return sol, err
}

// extractSparse reads the solution directly from the solver state: primal
// values from xb, duals from a BTRAN against a fresh factorization of the
// final basis (the sparse analogue of the dense extractor's Bᵀy = c_B
// solve).
func (rs *revisedSolver) extractSparse(p *Problem) (*Solution, error) {
	sf := rs.sf
	sol := &Solution{
		Status:     Optimal,
		X:          make([]float64, sf.n),
		Duals:      make([]float64, sf.m),
		BoundDuals: make([]float64, sf.n),
		Iterations: rs.iters,
	}
	for j := 0; j < sf.n; j++ {
		if rs.status[j] == atUpper {
			sol.X[j] = rs.upper[j]
		}
	}
	for i, bc := range rs.basis {
		if bc < sf.n {
			sol.X[bc] = rs.xb[i]
		}
	}
	for j := range sol.X {
		if math.Abs(sol.X[j]) < 1e-12 {
			sol.X[j] = 0
		}
	}
	obj := 0.0
	for j, x := range sol.X {
		obj += p.obj[j] * x
	}
	sol.Objective = obj
	sol.basis = rs.captureBasis()

	if rs.skipDuals {
		return sol, nil
	}
	// Fresh factorization at the final basis (drops eta roundoff), then one
	// BTRAN for the row duals.
	if !rs.refactorNow() {
		return nil, p.solveErr("dual-extraction", Optimal, rs.iters, ErrSingularBasis)
	}
	for i, bc := range rs.basis {
		rs.cb[i] = sf.cost[bc]
	}
	rs.lu.btranInto(rs.y, rs.cb)
	rs.cBtran++
	for i, row := range p.rows {
		d := rs.y[i]
		if row.RHS < 0 {
			d = -d
		}
		sol.Duals[i] = d
	}
	// Bound duals: reduced cost of structural variables nonbasic at their
	// upper bound.
	for j := 0; j < sf.n; j++ {
		if rs.status[j] != atUpper {
			continue
		}
		sol.BoundDuals[j] = sf.cost[j] - rs.priceDot(j)
	}
	return sol, nil
}
