// Package flow implements the social-welfare dispatch of Section II-D1:
// given an energy flow graph it chooses edge flows, generator injections and
// load deliveries that maximize system-wide profit (social welfare), subject
// to the paper's Eqs. 2–7 (capacity limits, supply/demand caps, and
// loss-aware conservation of energy at every hub).
//
// The LP it builds is:
//
//	maximize  Σ_v price(v)·x_v − Σ_v supplyCost(v)·g_v − Σ_e cost(e)·f_e
//	subject to, at every vertex v:
//	    Σ_in f_(u,v) + g_v  =  Σ_out f_(v,w)/(1−loss(v,w)) + x_v
//	and 0 ≤ f_e ≤ cap(e),  0 ≤ g_v ≤ supply(v),  0 ≤ x_v ≤ demand(v).
//
// Flows are measured at the delivery end: pushing f across a lossy edge
// draws f/(1−l) at the sending hub, which is exactly the 1/(1−l) grossing-up
// of the paper's Eq. 7.
//
// The vertex conservation duals λ(v) are the marginal value of one extra
// unit of energy appearing at v — the "price of the alternative" the paper
// uses for competitive profit division (Section II-D2). They are returned in
// Result.Price.
package flow

import (
	"fmt"

	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
)

// Result is a solved dispatch.
type Result struct {
	// Welfare is the maximized social welfare (total system profit).
	Welfare float64
	// Flow maps edge ID to the delivered flow on that edge.
	Flow map[string]float64
	// Gen maps vertex ID to the generator injection at that vertex.
	Gen map[string]float64
	// Load maps vertex ID to the demand actually served there.
	Load map[string]float64
	// Price maps vertex ID to the marginal value λ(v) of energy at that
	// vertex (the dual of its conservation constraint). By LP duality,
	// injecting one marginal unit of free energy at v would raise welfare
	// by λ(v).
	Price map[string]float64
	// CapacityRent maps edge ID to the shadow price of its capacity
	// constraint: the welfare gain from one more unit of capacity.
	CapacityRent map[string]float64
	// Iterations counts simplex pivots (for performance diagnostics).
	Iterations int
	// Basis is the optimal simplex basis (nil for solver methods that do
	// not export one). Feed it to Options.LP.WarmStart on a structurally
	// identical dispatch — e.g. the same grid with an edge knocked out —
	// to skip phase 1.
	Basis *lp.Basis
	// WarmStarted reports whether this dispatch was solved on the LP
	// warm path.
	WarmStarted bool
}

// Infeasible reports whether a dispatch failed because no feasible flow
// exists (typically after validation was skipped on a broken model — the
// base LP with zero lower bounds is always feasible at f=g=x=0, so this only
// occurs with user-added side constraints).
type InfeasibleError struct{ Status lp.Status }

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("flow: dispatch LP terminated with status %v", e.Status)
}

// Dispatch solves the social-welfare optimum for g.
func Dispatch(g *graph.Graph) (*Result, error) {
	return DispatchOpts(g, Options{})
}

// Options tunes dispatch.
type Options struct {
	// LP forwards solver options.
	LP lp.Options
	// FixedFlow pins specific edges to exact flow values (used by the
	// iterative profit-division algorithm to hold an actor's outflows
	// fixed while competitors re-optimize).
	FixedFlow map[string]float64
}

// DispatchOpts solves the social-welfare optimum with explicit options.
func DispatchOpts(g *graph.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	b := newBuilder(g)
	p := b.build(opts.FixedFlow)
	sol, err := p.SolveOpts(opts.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, &InfeasibleError{Status: sol.Status}
	}
	return b.result(sol), nil
}

// builder maps graph entities to LP variable/constraint indices.
type builder struct {
	g *graph.Graph
	// variable indices
	fVar []int // per edge
	gVar []int // per vertex, -1 if no supply
	xVar []int // per vertex, -1 if no demand
	// constraint indices
	consRow []int // conservation row per vertex
}

func newBuilder(g *graph.Graph) *builder {
	return &builder{
		g:       g,
		fVar:    make([]int, len(g.Edges)),
		gVar:    make([]int, len(g.Vertices)),
		xVar:    make([]int, len(g.Vertices)),
		consRow: make([]int, len(g.Vertices)),
	}
}

func (b *builder) build(fixed map[string]float64) *lp.Problem {
	g := b.g
	p := lp.NewProblem()
	// Edge flow variables. The LP minimizes, so welfare terms enter
	// negated: minimize Σ a·f + Σ gc·g − Σ price·x.
	for i, e := range g.Edges {
		b.fVar[i] = p.AddVariable("f:"+e.ID, e.Cost, e.Capacity)
	}
	for i, v := range g.Vertices {
		if v.Supply > 0 {
			b.gVar[i] = p.AddVariable("g:"+v.ID, v.SupplyCost, v.Supply)
		} else {
			b.gVar[i] = -1
		}
		if v.Demand > 0 {
			b.xVar[i] = p.AddVariable("x:"+v.ID, -v.Price, v.Demand)
		} else {
			b.xVar[i] = -1
		}
	}
	// Conservation rows: inflow + gen − Σ out f/(1−l) − load = 0.
	for i, v := range g.Vertices {
		var coefs []lp.Coef
		for j, e := range g.Edges {
			if e.To == v.ID {
				coefs = append(coefs, lp.Coef{Var: b.fVar[j], Value: 1})
			}
			if e.From == v.ID {
				coefs = append(coefs, lp.Coef{Var: b.fVar[j], Value: -1 / (1 - e.Loss)})
			}
		}
		if b.gVar[i] >= 0 {
			coefs = append(coefs, lp.Coef{Var: b.gVar[i], Value: 1})
		}
		if b.xVar[i] >= 0 {
			coefs = append(coefs, lp.Coef{Var: b.xVar[i], Value: -1})
		}
		if len(coefs) == 0 {
			// Isolated vertex: no constraint needed; mark row absent.
			b.consRow[i] = -1
			continue
		}
		b.consRow[i] = p.AddConstraint(lp.Constraint{
			Coefs: coefs, Sense: lp.EQ, RHS: 0, Name: "cons:" + v.ID,
		})
	}
	// Fixed flows (equality pins).
	for id, fx := range fixed {
		idx := g.EdgeIndex(id)
		if idx < 0 {
			continue
		}
		p.AddConstraint(lp.Constraint{
			Coefs: []lp.Coef{{Var: b.fVar[idx], Value: 1}},
			Sense: lp.EQ, RHS: fx, Name: "fix:" + id,
		})
	}
	return p
}

func (b *builder) result(sol *lp.Solution) *Result {
	g := b.g
	r := &Result{
		Welfare:      -sol.Objective,
		Flow:         make(map[string]float64, len(g.Edges)),
		Gen:          make(map[string]float64),
		Load:         make(map[string]float64),
		Price:        make(map[string]float64, len(g.Vertices)),
		CapacityRent: make(map[string]float64, len(g.Edges)),
		Iterations:   sol.Iterations,
		Basis:        sol.Basis(),
		WarmStarted:  sol.WarmStarted,
	}
	for i, e := range g.Edges {
		r.Flow[e.ID] = sol.X[b.fVar[i]]
		// The LP minimizes; a binding capacity bound has BoundDual ≤ 0
		// (relaxing it lowers cost, i.e. raises welfare). Report the
		// rent as a welfare gain: −dual ≥ 0.
		if bd := sol.BoundDuals[b.fVar[i]]; bd != 0 {
			r.CapacityRent[e.ID] = -bd
		} else {
			r.CapacityRent[e.ID] = 0
		}
	}
	for i, v := range g.Vertices {
		if b.gVar[i] >= 0 {
			r.Gen[v.ID] = sol.X[b.gVar[i]]
		}
		if b.xVar[i] >= 0 {
			r.Load[v.ID] = sol.X[b.xVar[i]]
		}
		if b.consRow[i] >= 0 {
			// The conservation row is (inflow + gen − outdrawn − load
			// = 0) and the LP minimizes −welfare. One free unit
			// *appearing* at v shifts the RHS to −1, changing minimal
			// cost by −dual, i.e. changing welfare by +dual. Hence
			// λ(v) = dual directly.
			r.Price[v.ID] = sol.Duals[b.consRow[i]]
		}
	}
	return r
}

// Balance returns the conservation residual at vertex id under result r:
// inflow + gen − Σ out f/(1−l) − load. A correct dispatch keeps this ~0 for
// every vertex; tests use it as an invariant.
func Balance(g *graph.Graph, r *Result, id string) float64 {
	sum := 0.0
	for _, i := range g.InEdges(id) {
		sum += r.Flow[g.Edges[i].ID]
	}
	for _, i := range g.OutEdges(id) {
		e := g.Edges[i]
		sum -= r.Flow[e.ID] / (1 - e.Loss)
	}
	sum += r.Gen[id]
	sum -= r.Load[id]
	return sum
}

// WelfareFromParts recomputes welfare from the primal values (revenues −
// generation costs − transport costs); tests compare it to Result.Welfare.
func WelfareFromParts(g *graph.Graph, r *Result) float64 {
	w := 0.0
	for _, v := range g.Vertices {
		w += v.Price * r.Load[v.ID]
		w -= v.SupplyCost * r.Gen[v.ID]
	}
	for _, e := range g.Edges {
		w -= e.Cost * r.Flow[e.ID]
	}
	return w
}

// Served reports the total demand served across all sinks.
func (r *Result) Served() float64 {
	t := 0.0
	for _, x := range r.Load {
		t += x
	}
	return t
}

// SpareCapacityFraction estimates the system's spare generating headroom:
// 1 − (total injection / total supply). The paper tunes its model to ~15%.
func SpareCapacityFraction(g *graph.Graph, r *Result) float64 {
	supply := g.TotalSupply()
	if supply == 0 {
		return 0
	}
	used := 0.0
	for _, gen := range r.Gen {
		used += gen
	}
	return 1 - used/supply
}
