package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cpsguard/internal/graph"
)

const eps = 1e-6

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// simpleChain builds gen →(cap 100)→ hub →(cap 90, loss 5%)→ load.
func simpleChain() *graph.Graph {
	g := graph.New("chain")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "hub"})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 80, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "g-h", From: "gen", To: "hub", Capacity: 100, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "h-l", From: "hub", To: "load", Capacity: 90, Loss: 0.05, Cost: 0.2})
	return g
}

func dispatch(t *testing.T, g *graph.Graph) *Result {
	t.Helper()
	r, err := Dispatch(g)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	return r
}

func TestChainDispatch(t *testing.T) {
	g := simpleChain()
	r := dispatch(t, g)
	// Serving the full 80 units of demand is profitable:
	// revenue 800; delivered 80 requires 80/0.95 ≈ 84.21 at hub.
	if !approx(r.Load["load"], 80, eps) {
		t.Fatalf("load = %v, want 80", r.Load["load"])
	}
	wantDraw := 80 / 0.95
	if !approx(r.Flow["h-l"], 80, eps) {
		t.Fatalf("flow h-l = %v, want 80 (delivered)", r.Flow["h-l"])
	}
	if !approx(r.Flow["g-h"], wantDraw, eps) {
		t.Fatalf("flow g-h = %v, want %v", r.Flow["g-h"], wantDraw)
	}
	if !approx(r.Gen["gen"], wantDraw, eps) {
		t.Fatalf("gen = %v, want %v", r.Gen["gen"], wantDraw)
	}
	wantW := 80*10 - wantDraw*2 - wantDraw*0.1 - 80*0.2
	if !approx(r.Welfare, wantW, 1e-6) {
		t.Fatalf("welfare = %v, want %v", r.Welfare, wantW)
	}
	if !approx(WelfareFromParts(g, r), r.Welfare, 1e-6) {
		t.Fatalf("welfare parts mismatch: %v vs %v", WelfareFromParts(g, r), r.Welfare)
	}
}

func TestConservationInvariant(t *testing.T) {
	g := simpleChain()
	r := dispatch(t, g)
	for _, v := range g.Vertices {
		if bal := Balance(g, r, v.ID); math.Abs(bal) > 1e-8 {
			t.Errorf("balance at %s = %v", v.ID, bal)
		}
	}
}

func TestNodalPrices(t *testing.T) {
	g := simpleChain()
	r := dispatch(t, g)
	// Uncongested: λ(gen) = marginal production cost at the margin = 2.
	// λ(hub) = (2+0.1) (one more unit at hub saves that much drawing).
	// λ(load) = (λ(hub)+0.2... careful with loss: a unit appearing at
	// load substitutes delivery of 1 unit, which saves drawing 1/0.95 at
	// hub plus the edge cost: λ(load) = λ(hub)/0.95 + 0.2.
	if !approx(r.Price["gen"], 2, 1e-6) {
		t.Errorf("λ(gen) = %v, want 2", r.Price["gen"])
	}
	if !approx(r.Price["hub"], 2.1, 1e-6) {
		t.Errorf("λ(hub) = %v, want 2.1", r.Price["hub"])
	}
	wantLoad := 2.1/0.95 + 0.2
	if !approx(r.Price["load"], wantLoad, 1e-6) {
		t.Errorf("λ(load) = %v, want %v", r.Price["load"], wantLoad)
	}
}

func TestCongestionRent(t *testing.T) {
	// Two generators, cheap one behind a congested line.
	g := graph.New("cong")
	g.MustAddVertex(graph.Vertex{ID: "cheap", Supply: 100, SupplyCost: 1})
	g.MustAddVertex(graph.Vertex{ID: "dear", Supply: 100, SupplyCost: 5})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 60, Price: 20})
	g.MustAddEdge(graph.Edge{ID: "c1", From: "cheap", To: "city", Capacity: 30})
	g.MustAddEdge(graph.Edge{ID: "c2", From: "dear", To: "city", Capacity: 100})
	r := dispatch(t, g)
	if !approx(r.Flow["c1"], 30, eps) || !approx(r.Flow["c2"], 30, eps) {
		t.Fatalf("flows = %v / %v, want 30/30", r.Flow["c1"], r.Flow["c2"])
	}
	// Congested line c1 earns rent = λ(city) − λ(cheap) = 5 − 1 = 4.
	if !approx(r.CapacityRent["c1"], 4, 1e-6) {
		t.Errorf("rent(c1) = %v, want 4", r.CapacityRent["c1"])
	}
	if !approx(r.Price["city"], 5, 1e-6) {
		t.Errorf("λ(city) = %v, want 5 (marginal generator)", r.Price["city"])
	}
}

func TestUnprofitableDemandUnserved(t *testing.T) {
	// Production cost above consumer price → dispatch nothing.
	g := graph.New("unprofitable")
	g.MustAddVertex(graph.Vertex{ID: "g", Supply: 50, SupplyCost: 30})
	g.MustAddVertex(graph.Vertex{ID: "l", Demand: 50, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "e", From: "g", To: "l", Capacity: 50})
	r := dispatch(t, g)
	if r.Welfare != 0 || r.Served() != 0 {
		t.Fatalf("welfare=%v served=%v, want 0,0", r.Welfare, r.Served())
	}
}

func TestZeroCapacityEdgeBlocksFlow(t *testing.T) {
	g := simpleChain()
	g.Edge("h-l").Capacity = 0
	r := dispatch(t, g)
	if r.Flow["h-l"] != 0 || r.Served() != 0 {
		t.Fatalf("outaged edge still flows: %v served %v", r.Flow["h-l"], r.Served())
	}
}

func TestFixedFlowPins(t *testing.T) {
	g := simpleChain()
	r, err := DispatchOpts(g, Options{FixedFlow: map[string]float64{"h-l": 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Flow["h-l"], 40, eps) {
		t.Fatalf("pinned flow = %v, want 40", r.Flow["h-l"])
	}
	// Pinning an unknown edge is ignored.
	if _, err := DispatchOpts(g, Options{FixedFlow: map[string]float64{"nope": 1}}); err != nil {
		t.Fatalf("unknown pin should be ignored: %v", err)
	}
	// Pinning above capacity is infeasible.
	_, err = DispatchOpts(g, Options{FixedFlow: map[string]float64{"h-l": 1000}})
	if _, ok := err.(*InfeasibleError); !ok {
		t.Fatalf("over-capacity pin: err = %v, want InfeasibleError", err)
	}
}

func TestValidationPropagates(t *testing.T) {
	g := simpleChain()
	g.Edges[0].Loss = 1.5
	if _, err := Dispatch(g); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestParallelPathsPreferCheaper(t *testing.T) {
	g := graph.New("par")
	g.MustAddVertex(graph.Vertex{ID: "s", Supply: 100, SupplyCost: 1})
	g.MustAddVertex(graph.Vertex{ID: "d", Demand: 50, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "cheap", From: "s", To: "d", Capacity: 40, Cost: 0.5})
	g.MustAddEdge(graph.Edge{ID: "dear", From: "s", To: "d", Capacity: 40, Cost: 2})
	r := dispatch(t, g)
	if !approx(r.Flow["cheap"], 40, eps) {
		t.Errorf("cheap path flow = %v, want 40 (saturated first)", r.Flow["cheap"])
	}
	if !approx(r.Flow["dear"], 10, eps) {
		t.Errorf("dear path flow = %v, want 10 (remainder)", r.Flow["dear"])
	}
}

func TestLossyCycleNoFreeEnergy(t *testing.T) {
	// A cycle of lossy edges with negative cost must not create energy or
	// spin flow (welfare from spinning would be negative; LP keeps 0).
	g := graph.New("cycle")
	g.MustAddVertex(graph.Vertex{ID: "a"})
	g.MustAddVertex(graph.Vertex{ID: "b"})
	g.MustAddEdge(graph.Edge{ID: "ab", From: "a", To: "b", Capacity: 10, Loss: 0.1, Cost: -0.01})
	g.MustAddEdge(graph.Edge{ID: "ba", From: "b", To: "a", Capacity: 10, Loss: 0.1, Cost: -0.01})
	r := dispatch(t, g)
	if r.Flow["ab"] != 0 || r.Flow["ba"] != 0 {
		t.Fatalf("lossy cycle spun: %v %v", r.Flow["ab"], r.Flow["ba"])
	}
}

func TestSpareCapacityFraction(t *testing.T) {
	g := simpleChain()
	r := dispatch(t, g)
	want := 1 - (80/0.95)/100
	if got := SpareCapacityFraction(g, r); !approx(got, want, 1e-9) {
		t.Fatalf("spare = %v, want %v", got, want)
	}
	empty := graph.New("none")
	empty.MustAddVertex(graph.Vertex{ID: "x"})
	r2 := dispatch(t, empty)
	if SpareCapacityFraction(empty, r2) != 0 {
		t.Fatal("zero-supply spare capacity should be 0")
	}
}

// Property: on random two-level star networks, (1) dispatch conserves energy
// at every vertex, (2) welfare is nonnegative (zero flow is always allowed),
// (3) welfare equals its recomputation from parts, and (4) λ decomposition
// of welfare holds: Σ_v λ(v)·(load−gen) + Σ producer/consumer/transport
// surpluses is consistent (checked via WelfareFromParts identity).
func TestQuickDispatchInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New("rand")
		nGen := 1 + rng.Intn(3)
		nLoad := 1 + rng.Intn(3)
		g.MustAddVertex(graph.Vertex{ID: "hub"})
		for i := 0; i < nGen; i++ {
			id := "g" + string(rune('0'+i))
			g.MustAddVertex(graph.Vertex{ID: id, Supply: 10 + rng.Float64()*90, SupplyCost: 1 + rng.Float64()*5})
			g.MustAddEdge(graph.Edge{ID: "e" + id, From: id, To: "hub",
				Capacity: rng.Float64() * 100, Loss: rng.Float64() * 0.2, Cost: rng.Float64()})
		}
		for i := 0; i < nLoad; i++ {
			id := "l" + string(rune('0'+i))
			g.MustAddVertex(graph.Vertex{ID: id, Demand: 10 + rng.Float64()*90, Price: 2 + rng.Float64()*10})
			g.MustAddEdge(graph.Edge{ID: "e" + id, From: "hub", To: id,
				Capacity: rng.Float64() * 100, Loss: rng.Float64() * 0.2, Cost: rng.Float64()})
		}
		r, err := Dispatch(g)
		if err != nil {
			return false
		}
		if r.Welfare < -1e-7 {
			return false
		}
		for _, v := range g.Vertices {
			if math.Abs(Balance(g, r, v.ID)) > 1e-7 {
				return false
			}
		}
		if math.Abs(WelfareFromParts(g, r)-r.Welfare) > 1e-6*(1+math.Abs(r.Welfare)) {
			return false
		}
		// Flows within capacity.
		for _, e := range g.Edges {
			if r.Flow[e.ID] < -1e-9 || r.Flow[e.ID] > e.Capacity+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
