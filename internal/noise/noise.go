// Package noise implements the paper's knowledge-perturbation model
// (Section II-D4): to represent an agent's imperfect knowledge of the
// system, every structural parameter p is replaced by a draw from
// N(p, (σ·p)²), i.e. the standard deviation scales with the parameter so a
// single σ acts as a dimensionless "ignorance level" across quantities with
// different units. Draws are clamped to the parameter's legal domain
// (capacities, supplies, demands ≥ 0; losses ∈ [0, 0.95]).
//
// σ = 0 reproduces the ground truth exactly; the paper sweeps σ to trade
// knowledge for decision quality in Figures 3–6.
package noise

import (
	"sort"

	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

// Model selects which parameter families are perturbed. The zero value
// perturbs everything (the paper's default).
type Model struct {
	// Sigma is the relative standard deviation of the knowledge noise.
	Sigma float64
	// SkipCosts leaves unit costs and prices exact (perturb only the
	// physical quantities). The paper perturbs "each parameter"; this
	// switch exists for ablations.
	SkipCosts bool
}

// Perturb returns a noisy deep copy of g under the model, drawing from rs.
// The input graph is never modified. With Sigma == 0 the copy equals the
// ground truth.
func Perturb(g *graph.Graph, m Model, rs *rng.Stream) *graph.Graph {
	out := g.Clone()
	if m.Sigma == 0 {
		return out
	}
	jitter := func(v float64) float64 {
		return v * (1 + m.Sigma*rs.NormFloat64())
	}
	for i := range out.Vertices {
		v := &out.Vertices[i]
		v.Supply = clampMin(jitter(v.Supply), 0)
		v.Demand = clampMin(jitter(v.Demand), 0)
		if !m.SkipCosts {
			v.SupplyCost = clampMin(jitter(v.SupplyCost), 0)
			v.Price = clampMin(jitter(v.Price), 0)
		}
	}
	for i := range out.Edges {
		e := &out.Edges[i]
		e.Capacity = clampMin(jitter(e.Capacity), 0)
		e.Loss = clamp(jitter(e.Loss), 0, 0.95)
		if !m.SkipCosts {
			// Costs may legitimately be negative (revenues); jitter
			// around the value without a sign clamp.
			e.Cost = jitter(e.Cost)
		}
	}
	return out
}

// PerturbMatrix returns a noisy copy of an impact-matrix-like map:
// values[actor][target] → jittered. Used when an agent estimates another
// agent's view without re-solving the physical model (Section II-F2's I″).
// Entries are visited in sorted key order so a given stream always produces
// the same noise regardless of map iteration order.
func PerturbMatrix(values map[string]map[string]float64, sigma float64, rs *rng.Stream) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(values))
	actorKeys := make([]string, 0, len(values))
	for a := range values {
		actorKeys = append(actorKeys, a)
	}
	sort.Strings(actorKeys)
	for _, a := range actorKeys {
		row := values[a]
		targetKeys := make([]string, 0, len(row))
		for t := range row {
			targetKeys = append(targetKeys, t)
		}
		sort.Strings(targetKeys)
		o := make(map[string]float64, len(row))
		for _, t := range targetKeys {
			v := row[t]
			if sigma == 0 {
				o[t] = v
			} else {
				o[t] = v * (1 + sigma*rs.NormFloat64())
			}
		}
		out[a] = o
	}
	return out
}

func clampMin(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
