package noise

import (
	"math"
	"testing"

	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

func testGraph() *graph.Graph {
	g := graph.New("n")
	g.MustAddVertex(graph.Vertex{ID: "s", Supply: 100, SupplyCost: 3})
	g.MustAddVertex(graph.Vertex{ID: "d", Demand: 80, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "e", From: "s", To: "d", Capacity: 90, Loss: 0.05, Cost: 0.5})
	return g
}

func TestZeroSigmaIsIdentity(t *testing.T) {
	g := testGraph()
	out := Perturb(g, Model{Sigma: 0}, rng.New(1))
	if out.Edges[0] != g.Edges[0] || out.Vertices[0] != g.Vertices[0] {
		t.Fatal("σ=0 must reproduce ground truth")
	}
}

func TestInputNeverModified(t *testing.T) {
	g := testGraph()
	before := *g.Edge("e")
	_ = Perturb(g, Model{Sigma: 0.5}, rng.New(2))
	if *g.Edge("e") != before {
		t.Fatal("Perturb mutated its input")
	}
}

func TestPerturbationScale(t *testing.T) {
	g := testGraph()
	const sigma = 0.1
	const trials = 2000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		out := Perturb(g, Model{Sigma: sigma}, rng.Derive(3, uint64(i)))
		rel := out.Edges[0].Capacity/g.Edges[0].Capacity - 1
		sum += rel
		sumSq += rel * rel
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("perturbation biased: mean rel change %v", mean)
	}
	if math.Abs(sd-sigma) > 0.01 {
		t.Fatalf("relative stddev = %v, want ≈%v", sd, sigma)
	}
}

func TestDomainsRespected(t *testing.T) {
	g := testGraph()
	for i := 0; i < 500; i++ {
		out := Perturb(g, Model{Sigma: 2.0}, rng.Derive(4, uint64(i))) // violent noise
		for _, v := range out.Vertices {
			if v.Supply < 0 || v.Demand < 0 || v.SupplyCost < 0 || v.Price < 0 {
				t.Fatalf("negative vertex parameter after clamp: %+v", v)
			}
		}
		for _, e := range out.Edges {
			if e.Capacity < 0 {
				t.Fatalf("negative capacity: %v", e.Capacity)
			}
			if e.Loss < 0 || e.Loss > 0.95 {
				t.Fatalf("loss %v outside [0,0.95]", e.Loss)
			}
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("perturbed graph invalid: %v", err)
		}
	}
}

func TestSkipCosts(t *testing.T) {
	g := testGraph()
	out := Perturb(g, Model{Sigma: 0.5, SkipCosts: true}, rng.New(5))
	if out.Edges[0].Cost != g.Edges[0].Cost ||
		out.Vertices[0].SupplyCost != g.Vertices[0].SupplyCost ||
		out.Vertices[1].Price != g.Vertices[1].Price {
		t.Fatal("SkipCosts did not preserve costs")
	}
	if out.Edges[0].Capacity == g.Edges[0].Capacity {
		t.Fatal("SkipCosts should still perturb capacity")
	}
}

func TestDeterministicGivenStream(t *testing.T) {
	g := testGraph()
	a := Perturb(g, Model{Sigma: 0.2}, rng.New(9))
	b := Perturb(g, Model{Sigma: 0.2}, rng.New(9))
	if a.Edges[0].Capacity != b.Edges[0].Capacity {
		t.Fatal("same stream produced different noise")
	}
}

func TestPerturbMatrix(t *testing.T) {
	m := map[string]map[string]float64{
		"a1": {"t1": 10, "t2": -5},
		"a2": {"t1": 0},
	}
	out := PerturbMatrix(m, 0, rng.New(1))
	if out["a1"]["t1"] != 10 || out["a1"]["t2"] != -5 || out["a2"]["t1"] != 0 {
		t.Fatal("σ=0 matrix must be exact")
	}
	out2 := PerturbMatrix(m, 0.3, rng.New(1))
	if out2["a1"]["t1"] == 10 {
		t.Fatal("σ>0 left value unperturbed")
	}
	// Zero values stay zero under multiplicative noise.
	if out2["a2"]["t1"] != 0 {
		t.Fatal("zero entry must stay zero")
	}
	// Input untouched.
	if m["a1"]["t1"] != 10 {
		t.Fatal("input matrix mutated")
	}
}
