// Telemetry instruments for the branch-and-bound layer. Node, prune, and
// incumbent counts are pure functions of the seeded inputs (best-first order
// is deterministic), so they land in the deterministic snapshot sections.
package milp

import (
	"cpsguard/internal/lp"
	"cpsguard/internal/telemetry"
)

var (
	mSolves     = telemetry.NewCounter("milp.solves")
	mErrors     = telemetry.NewCounter("milp.errors")
	mNodes      = telemetry.NewCounter("milp.nodes_expanded")
	mPruned     = telemetry.NewCounter("milp.nodes_pruned")
	mIncumbents = telemetry.NewCounter("milp.incumbent_updates")
	mUnproven   = telemetry.NewCounter("milp.unproven_exits")
	mNodesHist  = telemetry.NewHistogram("milp.nodes_per_solve", telemetry.WorkEdges)
)

// recordSolve books one Solve outcome and closes its span.
func recordSolve(sp *telemetry.Span, sol *Solution, err error) {
	mSolves.Inc()
	if err != nil {
		mErrors.Inc()
		sp.AddDegradations("error: " + err.Error())
	}
	if sol != nil {
		mNodes.Add(int64(sol.Nodes))
		mNodesHist.Observe(int64(sol.Nodes))
		sp.SetWork(int64(sol.Nodes))
		if sol.Status == lp.Optimal && !sol.Proven {
			mUnproven.Inc()
		}
	}
	sp.End()
}
