// Package milp solves small mixed-integer linear programs with binary
// variables by best-first branch and bound over the lp package's simplex.
//
// The paper solves both the strategic adversary's target selection (Eq. 8)
// and the defenders' investment problems (Eqs. 12 and 16) "using MILP"; this
// package is the generic engine. The adversary and defense packages also
// ship specialized combinatorial solvers that exploit their problems'
// closed-form structure — this generic solver is their correctness oracle
// in tests and the fallback for user-defined variants.
package milp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"cpsguard/internal/lp"
)

// Problem is a linear program plus a set of variables restricted to {0,1}.
type Problem struct {
	// LP is the relaxation. Binary variables must have upper bound ≤ 1.
	LP *lp.Problem
	// Binary lists the variable indices restricted to {0,1}.
	Binary []int
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps explored branch-and-bound nodes (default 200_000).
	MaxNodes int
	// Tol is the integrality tolerance (default 1e-6).
	Tol float64
	// LP forwards options to the relaxation solver.
	LP lp.Options
}

func (o Options) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 200_000
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-6
}

// Solution is an optimal (or best-found) integer solution.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven reports whether optimality was proven (false when MaxNodes
	// was exhausted with an incumbent in hand).
	Proven bool
}

// ErrNoIncumbent is returned when the node limit is hit before any integer
// feasible solution was found.
var ErrNoIncumbent = errors.New("milp: node limit reached with no incumbent")

type node struct {
	bound float64 // LP relaxation objective (lower bound for minimization)
	fixed map[int]float64
}

type nodePQ []*node

func (q nodePQ) Len() int           { return len(q) }
func (q nodePQ) Less(i, j int) bool { return q[i].bound < q[j].bound }
func (q nodePQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)        { *q = append(*q, x.(*node)) }
func (q *nodePQ) Pop() any          { old := *q; n := old[len(old)-1]; *q = old[:len(old)-1]; return n }
func (q nodePQ) Peek() *node        { return q[0] }

// Solve minimizes the problem's objective over the mixed-binary domain.
func Solve(p Problem, opts Options) (*Solution, error) {
	tol := opts.tol()

	solveRelax := func(fixed map[int]float64) (*lp.Solution, error) {
		// Fix variables by equality rows appended to a scratch copy.
		scratch := cloneProblem(p.LP)
		for v, val := range fixed {
			scratch.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{{Var: v, Value: 1}},
				Sense: lp.EQ, RHS: val,
				Name: fmt.Sprintf("fix:%d", v),
			})
		}
		return scratch.SolveOpts(opts.LP)
	}

	root := &node{fixed: map[int]float64{}}
	rootSol, err := solveRelax(root.fixed)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Solution{Status: lp.Infeasible, Nodes: 1}, nil
	case lp.Unbounded:
		return &Solution{Status: lp.Unbounded, Nodes: 1}, nil
	case lp.IterationLimit:
		return &Solution{Status: lp.IterationLimit, Nodes: 1}, nil
	}
	root.bound = rootSol.Objective

	pq := nodePQ{root}
	heap.Init(&pq)

	var best *Solution
	nodes := 0
	relaxCache := map[*node]*lp.Solution{root: rootSol}

	for pq.Len() > 0 && nodes < opts.maxNodes() {
		n := heap.Pop(&pq).(*node)
		nodes++
		if best != nil && n.bound >= best.Objective-1e-12 {
			continue // pruned by incumbent
		}
		sol := relaxCache[n]
		delete(relaxCache, n)
		if sol == nil {
			sol, err = solveRelax(n.fixed)
			if err != nil {
				return nil, err
			}
			if sol.Status != lp.Optimal {
				continue
			}
			if best != nil && sol.Objective >= best.Objective-1e-12 {
				continue
			}
		}
		// Find the most fractional binary variable.
		branchVar := -1
		worst := tol
		for _, v := range p.Binary {
			frac := math.Abs(sol.X[v] - math.Round(sol.X[v]))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible: candidate incumbent.
			if best == nil || sol.Objective < best.Objective {
				x := append([]float64(nil), sol.X...)
				for _, v := range p.Binary {
					x[v] = math.Round(x[v])
				}
				best = &Solution{Status: lp.Optimal, Objective: sol.Objective, X: x}
			}
			continue
		}
		for _, val := range [2]float64{0, 1} {
			child := &node{fixed: make(map[int]float64, len(n.fixed)+1)}
			for k, v := range n.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = val
			cs, err := solveRelax(child.fixed)
			if err != nil {
				return nil, err
			}
			if cs.Status != lp.Optimal {
				continue
			}
			if best != nil && cs.Objective >= best.Objective-1e-12 {
				continue
			}
			child.bound = cs.Objective
			relaxCache[child] = cs
			heap.Push(&pq, child)
		}
	}

	if best == nil {
		if nodes >= opts.maxNodes() {
			return nil, ErrNoIncumbent
		}
		return &Solution{Status: lp.Infeasible, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	best.Proven = pq.Len() == 0 || pq.Peek().bound >= best.Objective-1e-12
	return best, nil
}

// cloneProblem deep-copies an lp.Problem through its public API.
func cloneProblem(src *lp.Problem) *lp.Problem {
	dst := lp.NewProblem()
	for v := 0; v < src.NumVariables(); v++ {
		dst.AddVariable(src.VariableName(v), src.Cost(v), src.Upper(v))
	}
	for i := 0; i < src.NumConstraints(); i++ {
		dst.AddConstraint(src.ConstraintAt(i))
	}
	return dst
}
