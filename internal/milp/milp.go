// Package milp solves small mixed-integer linear programs with binary
// variables by best-first branch and bound over the lp package's simplex.
//
// The paper solves both the strategic adversary's target selection (Eq. 8)
// and the defenders' investment problems (Eqs. 12 and 16) "using MILP"; this
// package is the generic engine. The adversary and defense packages also
// ship specialized combinatorial solvers that exploit their problems'
// closed-form structure — this generic solver is their correctness oracle
// in tests and the fallback for user-defined variants.
package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"cpsguard/internal/lp"
	"cpsguard/internal/telemetry"
)

// Problem is a linear program plus a set of variables restricted to {0,1}.
type Problem struct {
	// LP is the relaxation. Binary variables must have upper bound ≤ 1.
	LP *lp.Problem
	// Binary lists the variable indices restricted to {0,1}.
	Binary []int
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps explored branch-and-bound nodes (default 200_000).
	MaxNodes int
	// Tol is the integrality tolerance (default 1e-6).
	Tol float64
	// LP forwards options to the relaxation solver.
	LP lp.Options
	// Ctx, when non-nil, is checked before the root solve and every
	// CheckEvery nodes; cancellation stops the search with status
	// Canceled or DeadlineExceeded, carrying the best incumbent found so
	// far. It is also forwarded to relaxation solves when LP.Ctx is nil.
	Ctx context.Context
	// CheckEvery is the node interval between Ctx/Hook checkpoints
	// (default 16).
	CheckEvery int
	// Hook is an optional fault-injection checkpoint invoked at site
	// "milp.node"; semantics match lp.Hook.
	Hook lp.Hook
}

func (o Options) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 200_000
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-6
}

func (o Options) checkEvery() int {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return 16
}

// Solution is an optimal (or best-found) integer solution. Degraded
// terminations keep partial results: on lp.NodeLimit or a cancellation
// status (lp.Canceled / lp.DeadlineExceeded) the X/Objective fields carry
// the best incumbent found so far when one exists, with Proven=false.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven reports whether optimality was proven (false when MaxNodes
	// was exhausted with an incumbent in hand).
	Proven bool
}

// ErrNoIncumbent is returned when the node limit is hit before any integer
// feasible solution was found. The accompanying Solution is non-nil and
// carries Status lp.NodeLimit and the node count.
var ErrNoIncumbent = errors.New("milp: node limit reached with no incumbent")

// validate rejects structurally invalid MILP ingestion before it can poison
// the branch-and-bound: a nil relaxation, binary indices referencing unknown
// variables, or binary variables whose bounds leave {0,1} unreachable. All
// failures wrap lp.ErrBadProblem.
func validate(p Problem) error {
	if p.LP == nil {
		return fmt.Errorf("%w: milp: nil LP relaxation", lp.ErrBadProblem)
	}
	n := p.LP.NumVariables()
	for _, v := range p.Binary {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: milp: binary variable %d of %d", lp.ErrBadProblem, v, n)
		}
		if u := p.LP.Upper(v); math.IsNaN(u) || u > 1 {
			return fmt.Errorf("%w: milp: binary variable %d (%s) has upper bound %v > 1",
				lp.ErrBadProblem, v, p.LP.VariableName(v), u)
		}
	}
	return nil
}

type node struct {
	bound float64 // LP relaxation objective (lower bound for minimization)
	fixed map[int]float64
}

type nodePQ []*node

func (q nodePQ) Len() int           { return len(q) }
func (q nodePQ) Less(i, j int) bool { return q[i].bound < q[j].bound }
func (q nodePQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)        { *q = append(*q, x.(*node)) }
func (q *nodePQ) Pop() any          { old := *q; n := old[len(old)-1]; *q = old[:len(old)-1]; return n }
func (q nodePQ) Peek() *node        { return q[0] }

// Solve minimizes the problem's objective over the mixed-binary domain.
// Cancellation (via Options.Ctx) aborts between nodes, returning the best
// incumbent found so far under a cancellation status; an already-expired
// context returns before the root relaxation is solved.
func Solve(p Problem, opts Options) (sol *Solution, err error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	sp, _ := telemetry.Default().StartSpanCtx(opts.Ctx, "milp.solve", p.LP.Name())
	defer func() { recordSolve(sp, sol, err) }()
	tol := opts.tol()
	lpOpts := opts.LP
	if lpOpts.Ctx == nil {
		lpOpts.Ctx = opts.Ctx
	}
	// Relaxation solves parent under this MILP span in the trace tree.
	lpOpts.Ctx = telemetry.ContextWithSpan(lpOpts.Ctx, sp)
	// Branch and bound consumes only primal values and objectives; skip
	// dual extraction (an O(m³) solve per relaxation) and with it the
	// spurious singular-basis failures degenerate fixings can produce.
	lpOpts.SkipDuals = true

	// partial assembles the degraded-termination solution around the best
	// incumbent found so far (if any).
	partial := func(st lp.Status, best *Solution, nodes int) *Solution {
		if best == nil {
			return &Solution{Status: st, Nodes: nodes}
		}
		out := *best
		out.Status = st
		out.Nodes = nodes
		out.Proven = false
		return &out
	}

	// checkpoint consults Ctx and Hook; a non-nil Status means stop.
	name := p.LP.Name()
	checkpoint := func(nodes int, best *Solution) (*Solution, error) {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return partial(cancelStatus(err), best, nodes), nil
			}
		}
		if opts.Hook != nil {
			if err := opts.Hook("milp.node"); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return partial(cancelStatus(err), best, nodes), nil
				}
				return nil, &lp.SolveError{Problem: name, Stage: "milp.node",
					Status: lp.Optimal, Iterations: nodes, Err: err}
			}
		}
		return nil, nil
	}
	if sol, err := checkpoint(0, nil); sol != nil || err != nil {
		return sol, err
	}

	solveRelax := func(fixed map[int]float64) (*lp.Solution, error) {
		// Fix variables by equality rows appended to a scratch copy.
		scratch := cloneProblem(p.LP)
		for v, val := range fixed {
			scratch.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{{Var: v, Value: 1}},
				Sense: lp.EQ, RHS: val,
				Name: fmt.Sprintf("fix:%d", v),
			})
		}
		return scratch.SolveOpts(lpOpts)
	}

	root := &node{fixed: map[int]float64{}}
	rootSol, err := solveRelax(root.fixed)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Solution{Status: lp.Infeasible, Nodes: 1}, nil
	case lp.Unbounded:
		return &Solution{Status: lp.Unbounded, Nodes: 1}, nil
	case lp.IterationLimit:
		return &Solution{Status: lp.IterationLimit, Nodes: 1}, nil
	case lp.Canceled, lp.DeadlineExceeded:
		return &Solution{Status: rootSol.Status, Nodes: 1}, nil
	}
	root.bound = rootSol.Objective

	pq := nodePQ{root}
	heap.Init(&pq)

	var best *Solution
	nodes := 0
	relaxCache := map[*node]*lp.Solution{root: rootSol}

	for pq.Len() > 0 && nodes < opts.maxNodes() {
		if nodes%opts.checkEvery() == 0 {
			if sol, err := checkpoint(nodes, best); sol != nil || err != nil {
				return sol, err
			}
		}
		n := heap.Pop(&pq).(*node)
		nodes++
		if best != nil && n.bound >= best.Objective-1e-12 {
			mPruned.Inc()
			continue // pruned by incumbent
		}
		sol := relaxCache[n]
		delete(relaxCache, n)
		if sol == nil {
			sol, err = solveRelax(n.fixed)
			if err != nil {
				return nil, err
			}
			if lp.IsCancellation(sol.Status) {
				return partial(sol.Status, best, nodes), nil
			}
			if sol.Status != lp.Optimal {
				continue
			}
			if best != nil && sol.Objective >= best.Objective-1e-12 {
				mPruned.Inc()
				continue
			}
		}
		// Find the most fractional binary variable.
		branchVar := -1
		worst := tol
		for _, v := range p.Binary {
			frac := math.Abs(sol.X[v] - math.Round(sol.X[v]))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible: candidate incumbent.
			if best == nil || sol.Objective < best.Objective {
				mIncumbents.Inc()
				x := append([]float64(nil), sol.X...)
				for _, v := range p.Binary {
					x[v] = math.Round(x[v])
				}
				best = &Solution{Status: lp.Optimal, Objective: sol.Objective, X: x}
			}
			continue
		}
		for _, val := range [2]float64{0, 1} {
			child := &node{fixed: make(map[int]float64, len(n.fixed)+1)}
			for k, v := range n.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = val
			cs, err := solveRelax(child.fixed)
			if err != nil {
				return nil, err
			}
			if lp.IsCancellation(cs.Status) {
				return partial(cs.Status, best, nodes), nil
			}
			if cs.Status != lp.Optimal {
				continue
			}
			if best != nil && cs.Objective >= best.Objective-1e-12 {
				mPruned.Inc()
				continue
			}
			child.bound = cs.Objective
			relaxCache[child] = cs
			heap.Push(&pq, child)
		}
	}

	if best == nil {
		if nodes >= opts.maxNodes() {
			// Degraded, not fatal: callers get the node count and a
			// NodeLimit status alongside the sentinel error.
			return &Solution{Status: lp.NodeLimit, Nodes: nodes}, ErrNoIncumbent
		}
		return &Solution{Status: lp.Infeasible, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	best.Proven = pq.Len() == 0 || pq.Peek().bound >= best.Objective-1e-12
	return best, nil
}

// cancelStatus maps a context error to the matching lp cancellation status.
func cancelStatus(err error) lp.Status {
	if errors.Is(err, context.DeadlineExceeded) {
		return lp.DeadlineExceeded
	}
	return lp.Canceled
}

// cloneProblem deep-copies an lp.Problem through its public API.
func cloneProblem(src *lp.Problem) *lp.Problem {
	dst := lp.NewProblem()
	for v := 0; v < src.NumVariables(); v++ {
		dst.AddVariable(src.VariableName(v), src.Cost(v), src.Upper(v))
	}
	for i := 0; i < src.NumConstraints(); i++ {
		dst.AddConstraint(src.ConstraintAt(i))
	}
	return dst
}
