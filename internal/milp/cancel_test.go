package milp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cpsguard/internal/lp"
)

// knapsackMILP builds a small 0/1 knapsack whose relaxation is fractional,
// forcing real branching.
func knapsackMILP(n int) Problem {
	p := lp.NewProblem()
	p.SetName("knapsack-test")
	var coefs []lp.Coef
	binary := make([]int, n)
	for i := 0; i < n; i++ {
		// Values chosen so no greedy prefix is integral at the relaxation.
		v := p.AddVariable("x", -(3.0 + float64(i%4)), 1)
		binary[i] = v
		coefs = append(coefs, lp.Coef{Var: v, Value: 2 + float64(i%3)})
	}
	// Fractional budget keeps every relaxation from landing integral.
	p.AddConstraint(lp.Constraint{Coefs: coefs, Sense: lp.LE, RHS: float64(n) - 0.5})
	return Problem{LP: p, Binary: binary}
}

func TestExpiredContextReturnsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sol, err := Solve(knapsackMILP(10), Options{Ctx: ctx})
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("expired-context solve took %v, want <100ms", elapsed)
	}
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if sol.Status != lp.Canceled {
		t.Fatalf("status = %v, want Canceled", sol.Status)
	}
}

func TestMidSearchCancellationKeepsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	nodesSeen := 0
	hook := func(site string) error {
		if site == "milp.node" {
			nodesSeen++
			if nodesSeen >= 2 {
				cancel()
			}
		}
		return nil
	}
	sol, err := Solve(knapsackMILP(12), Options{Ctx: ctx, Hook: hook, CheckEvery: 1})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if sol.Status != lp.Canceled && sol.Status != lp.Optimal {
		t.Fatalf("status = %v, want Canceled (mid-search) or Optimal (finished first)", sol.Status)
	}
	if sol.Status == lp.Canceled {
		if sol.Proven {
			t.Fatal("canceled solution claims proven optimality")
		}
		if sol.Nodes < 1 {
			t.Fatalf("Nodes = %d, want ≥1", sol.Nodes)
		}
	}
}

func TestMaxNodesNoIncumbent(t *testing.T) {
	// One node is never enough to find an integer incumbent here.
	sol, err := Solve(knapsackMILP(12), Options{MaxNodes: 1})
	if err != ErrNoIncumbent {
		t.Fatalf("err = %v, want ErrNoIncumbent (exact sentinel)", err)
	}
	if sol == nil {
		t.Fatal("solution is nil alongside ErrNoIncumbent; want partial state")
	}
	if sol.Status != lp.NodeLimit {
		t.Fatalf("status = %v, want NodeLimit", sol.Status)
	}
	if sol.Nodes < 1 {
		t.Fatalf("Nodes = %d, want ≥1", sol.Nodes)
	}
}

func TestMaxNodesWithIncumbentIsUnproven(t *testing.T) {
	// Find the true optimum first, then rerun with a node budget large
	// enough to find some incumbent but too small to prove it.
	full, err := Solve(knapsackMILP(12), Options{})
	if err != nil || full.Status != lp.Optimal || !full.Proven {
		t.Fatalf("reference solve: %+v, %v", full, err)
	}
	for budget := 2; budget < full.Nodes; budget++ {
		sol, err := Solve(knapsackMILP(12), Options{MaxNodes: budget})
		if err == ErrNoIncumbent {
			continue
		}
		if err != nil {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
		if sol.Proven {
			continue // pq drained early or bound closed: legitimately proven
		}
		// Degraded result: incumbent in hand, optimality not proven.
		if sol.X == nil {
			t.Fatalf("budget %d: unproven incumbent with nil X", budget)
		}
		if sol.Objective < full.Objective-1e-9 {
			t.Fatalf("budget %d: incumbent %v better than optimum %v", budget, sol.Objective, full.Objective)
		}
		return
	}
	t.Skip("no budget produced an unproven incumbent for this instance")
}

func TestHookErrorAbortsWithSolveError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Solve(knapsackMILP(10), Options{
		Hook: func(string) error { return boom }, CheckEvery: 1,
	})
	var se *lp.SolveError
	if !errors.As(err, &se) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want *lp.SolveError wrapping boom", err)
	}
	if se.Problem != "knapsack-test" || se.Stage != "milp.node" {
		t.Fatalf("SolveError = %+v, want Problem=knapsack-test Stage=milp.node", se)
	}
}

func TestValidateRejectsBadIngestion(t *testing.T) {
	good := knapsackMILP(3)
	cases := map[string]Problem{
		"nil-lp":            {LP: nil, Binary: []int{0}},
		"out-of-range":      {LP: good.LP, Binary: []int{99}},
		"negative-index":    {LP: good.LP, Binary: []int{-1}},
		"binary-upper-gt-1": binaryUpperTwo(),
	}
	for name, p := range cases {
		if _, err := Solve(p, Options{}); !errors.Is(err, lp.ErrBadProblem) {
			t.Errorf("%s: err = %v, want ErrBadProblem", name, err)
		}
	}
}

func binaryUpperTwo() Problem {
	p := lp.NewProblem()
	v := p.AddVariable("x", -1, 2)
	p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: v, Value: 1}}, Sense: lp.LE, RHS: 2})
	return Problem{LP: p, Binary: []int{v}}
}

func TestValidateRejectsNaNUpper(t *testing.T) {
	p := lp.NewProblem()
	v := p.AddVariable("x", -1, math.NaN())
	prob := Problem{LP: p, Binary: []int{v}}
	if _, err := Solve(prob, Options{}); !errors.Is(err, lp.ErrBadProblem) {
		t.Fatalf("err = %v, want ErrBadProblem", err)
	}
}
