package milp

import (
	"math"
	"testing"
	"testing/quick"

	"cpsguard/internal/lp"
	"cpsguard/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// knapsack builds max Σ v_i x_i s.t. Σ w_i x_i ≤ budget, x ∈ {0,1}ⁿ as a
// minimization MILP.
func knapsack(values, weights []float64, budget float64) Problem {
	p := lp.NewProblem()
	coefs := make([]lp.Coef, len(values))
	binary := make([]int, len(values))
	for i := range values {
		v := p.AddVariable("x", -values[i], 1)
		binary[i] = v
		coefs[i] = lp.Coef{Var: v, Value: weights[i]}
	}
	p.AddConstraint(lp.Constraint{Coefs: coefs, Sense: lp.LE, RHS: budget})
	return Problem{LP: p, Binary: binary}
}

// bruteKnapsack enumerates all subsets.
func bruteKnapsack(values, weights []float64, budget float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
				v += values[i]
			}
		}
		if w <= budget && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	sol, err := Solve(knapsack(values, weights, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || !sol.Proven {
		t.Fatalf("status=%v proven=%v", sol.Status, sol.Proven)
	}
	if !approx(-sol.Objective, 220, 1e-6) {
		t.Fatalf("value = %v, want 220", -sol.Objective)
	}
}

func TestIntegralityEnforced(t *testing.T) {
	// LP relaxation would take fractional x: v=10,w=7,budget=5 → x=5/7.
	sol, err := Solve(knapsack([]float64{10}, []float64{7}, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 0 {
		t.Fatalf("x = %v, want 0 (item does not fit)", sol.X[0])
	}
	if !approx(sol.Objective, 0, 1e-9) {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable("x", 1, 1)
	p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: x, Value: 1}}, Sense: lp.GE, RHS: 2})
	sol, err := Solve(Problem{LP: p, Binary: []int{x}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestBinaryGapInfeasibility(t *testing.T) {
	// 2x = 1 has the LP solution x=0.5 but no binary solution.
	p := lp.NewProblem()
	x := p.AddVariable("x", 0, 1)
	p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: x, Value: 2}}, Sense: lp.EQ, RHS: 1})
	sol, err := Solve(Problem{LP: p, Binary: []int{x}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible (no binary point)", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 3b + y s.t. b ∈ {0,1}, 0 ≤ y ≤ 2, b + y ≤ 2.4 → b=1, y=1.4.
	p := lp.NewProblem()
	b := p.AddVariable("b", -3, 1)
	y := p.AddVariable("y", -1, 2)
	p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: b, Value: 1}, {Var: y, Value: 1}}, Sense: lp.LE, RHS: 2.4})
	sol, err := Solve(Problem{LP: p, Binary: []int{b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[b], 1, 1e-9) || !approx(sol.X[y], 1.4, 1e-6) {
		t.Fatalf("b=%v y=%v, want 1, 1.4", sol.X[b], sol.X[y])
	}
}

func TestAgainstBruteForce(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rs := rng.Derive(99, uint64(trial))
		n := 2 + rs.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rs.Float64()*20
			weights[i] = 1 + rs.Float64()*10
		}
		budget := 5 + rs.Float64()*25
		sol, err := Solve(knapsack(values, weights, budget), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKnapsack(values, weights, budget)
		if !approx(-sol.Objective, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d: milp %v, brute %v", trial, -sol.Objective, want)
		}
		if !sol.Proven {
			t.Fatalf("trial %d: optimality not proven", trial)
		}
	}
}

// Property: solutions respect binary domains and the knapsack constraint.
func TestQuickSolutionsAreFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		rs := rng.New(seed)
		n := 1 + rs.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = rs.Float64() * 10
			weights[i] = rs.Float64() * 10
		}
		budget := rs.Float64() * 20
		sol, err := Solve(knapsack(values, weights, budget), Options{})
		if err != nil || sol.Status != lp.Optimal {
			return err == nil // infeasible/unbounded acceptable, error not
		}
		w := 0.0
		for i := 0; i < n; i++ {
			x := sol.X[i]
			if x != 0 && x != 1 {
				return false
			}
			w += weights[i] * x
		}
		return w <= budget+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLimit(t *testing.T) {
	values := make([]float64, 14)
	weights := make([]float64, 14)
	rs := rng.New(5)
	for i := range values {
		values[i] = 1 + rs.Float64()
		weights[i] = 1 + rs.Float64()
	}
	_, err := Solve(knapsack(values, weights, 7), Options{MaxNodes: 1})
	// With MaxNodes=1 only the root is popped; the root relaxation is
	// fractional so no incumbent exists.
	if err != ErrNoIncumbent {
		t.Fatalf("err = %v, want ErrNoIncumbent", err)
	}
}

func TestCustomToleranceAndUnprovenIncumbent(t *testing.T) {
	// A knapsack large enough that MaxNodes stops the search after an
	// incumbent exists: Proven must be false and the incumbent valid.
	values := make([]float64, 16)
	weights := make([]float64, 16)
	rs := rng.New(12)
	for i := range values {
		values[i] = 1 + rs.Float64()*5
		weights[i] = 1 + rs.Float64()*3
	}
	sol, err := Solve(knapsack(values, weights, 12), Options{MaxNodes: 40, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	w := 0.0
	for i := 0; i < 16; i++ {
		if sol.X[i] != 0 && sol.X[i] != 1 {
			t.Fatalf("non-binary solution: %v", sol.X[i])
		}
		w += weights[i] * sol.X[i]
	}
	if w > 12+1e-6 {
		t.Fatalf("budget violated: %v", w)
	}
}
