package milp

import (
	"testing"

	"cpsguard/internal/lp"
)

// fuzzProblem decodes a byte stream into a small pure-binary MILP with
// integer data: n ≤ 12 binary variables, m ≤ 4 constraints, coefficients in
// [−5,5] and RHS in [−10,10]. Integer data keeps the brute-force oracle
// exact (binary-point sums are integers, exact in float64), and the unit
// upper bounds make the relaxation a bounded box — never unbounded.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) intIn(lo, hi int) int {
	span := hi - lo + 1
	return lo + int(r.next())%span
}

type fuzzLP struct {
	n, m   int
	obj    []int
	coefs  [][]int // m × n
	senses []lp.Sense
	rhs    []int
}

func decodeFuzzLP(data []byte) fuzzLP {
	r := &byteReader{data: data}
	p := fuzzLP{
		n: r.intIn(1, 12),
		m: r.intIn(0, 4),
	}
	p.obj = make([]int, p.n)
	for j := range p.obj {
		p.obj[j] = r.intIn(-5, 5)
	}
	p.coefs = make([][]int, p.m)
	p.senses = make([]lp.Sense, p.m)
	p.rhs = make([]int, p.m)
	for i := 0; i < p.m; i++ {
		row := make([]int, p.n)
		for j := range row {
			row[j] = r.intIn(-5, 5)
		}
		p.coefs[i] = row
		p.senses[i] = []lp.Sense{lp.LE, lp.GE, lp.EQ}[r.intIn(0, 2)]
		p.rhs[i] = r.intIn(-10, 10)
	}
	return p
}

func (p fuzzLP) build() Problem {
	prob := lp.NewProblem()
	binary := make([]int, p.n)
	for j := 0; j < p.n; j++ {
		binary[j] = prob.AddVariable("x", float64(p.obj[j]), 1)
	}
	for i := 0; i < p.m; i++ {
		coefs := make([]lp.Coef, 0, p.n)
		for j, c := range p.coefs[i] {
			if c != 0 {
				coefs = append(coefs, lp.Coef{Var: binary[j], Value: float64(c)})
			}
		}
		prob.AddConstraint(lp.Constraint{Coefs: coefs, Sense: p.senses[i], RHS: float64(p.rhs[i])})
	}
	return Problem{LP: prob, Binary: binary}
}

// bruteForce enumerates all 2^n binary assignments with exact integer
// arithmetic and returns the minimum objective, or feasible=false.
func (p fuzzLP) bruteForce() (best int, feasible bool) {
	for mask := 0; mask < 1<<p.n; mask++ {
		ok := true
		for i := 0; i < p.m && ok; i++ {
			sum := 0
			for j := 0; j < p.n; j++ {
				if mask&(1<<j) != 0 {
					sum += p.coefs[i][j]
				}
			}
			switch p.senses[i] {
			case lp.LE:
				ok = sum <= p.rhs[i]
			case lp.GE:
				ok = sum >= p.rhs[i]
			default:
				ok = sum == p.rhs[i]
			}
		}
		if !ok {
			continue
		}
		obj := 0
		for j := 0; j < p.n; j++ {
			if mask&(1<<j) != 0 {
				obj += p.obj[j]
			}
		}
		if !feasible || obj < best {
			best, feasible = obj, true
		}
	}
	return best, feasible
}

// FuzzBranchAndBound cross-checks the branch-and-bound solver against
// exhaustive enumeration on random small pure-binary problems: agreement on
// feasibility and (for feasible problems) on the optimal objective, and a
// returned X that is genuinely binary, feasible, and achieves the objective.
func FuzzBranchAndBound(f *testing.F) {
	f.Add([]byte{3, 1, 250, 2, 3, 1, 1, 1, 0, 2})
	f.Add([]byte{})
	f.Add([]byte{12, 4, 5, 5, 5, 5})
	f.Add([]byte{5, 2, 1, 255, 3, 254, 0, 2, 2, 2, 2, 2, 2, 5, 1, 1, 1, 1, 1, 1, 253})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := decodeFuzzLP(data)
		sol, err := Solve(fz.build(), Options{})
		if err != nil {
			t.Fatalf("solver error on valid problem %+v: %v", fz, err)
		}
		want, feasible := fz.bruteForce()
		if !feasible {
			if sol.Status != lp.Infeasible {
				t.Fatalf("brute force infeasible, solver says %v (obj %v) for %+v",
					sol.Status, sol.Objective, fz)
			}
			return
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("brute force optimum %d, solver status %v for %+v", want, sol.Status, fz)
		}
		if !sol.Proven {
			t.Fatalf("tiny problem not proven optimal: %+v", fz)
		}
		if diff := sol.Objective - float64(want); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("objective %v, brute force %d for %+v", sol.Objective, want, fz)
		}
		// The returned assignment must be binary, feasible, and achieve the
		// reported objective (checked exactly in integers).
		obj := 0
		xs := make([]int, fz.n)
		for j := 0; j < fz.n; j++ {
			v := sol.X[j]
			if v != 0 && v != 1 {
				t.Fatalf("X[%d] = %v not binary for %+v", j, v, fz)
			}
			xs[j] = int(v)
			obj += xs[j] * fz.obj[j]
		}
		if obj != want {
			t.Fatalf("returned X scores %d, optimum %d for %+v", obj, want, fz)
		}
		for i := 0; i < fz.m; i++ {
			sum := 0
			for j := 0; j < fz.n; j++ {
				sum += xs[j] * fz.coefs[i][j]
			}
			violated := false
			switch fz.senses[i] {
			case lp.LE:
				violated = sum > fz.rhs[i]
			case lp.GE:
				violated = sum < fz.rhs[i]
			default:
				violated = sum != fz.rhs[i]
			}
			if violated {
				t.Fatalf("returned X violates row %d (%v %v %d) for %+v",
					i, sum, fz.senses[i], fz.rhs[i], fz)
			}
		}
	})
}
