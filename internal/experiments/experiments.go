// Package experiments regenerates every figure of the paper's evaluation
// (Section III) as a stats.Table: Figure 2 (gains and losses vs number of
// actors), Figure 3 (SA profit vs knowledge noise across actor counts),
// Figure 4 (anticipated vs observed SA profit), Figure 5 (defense
// effectiveness vs defender noise across actor counts), Figure 6
// (collaborative vs independent defense for 4 actors), and Figure 7
// (collaboration benefit across actor counts).
//
// Every point is a mean over Config.Trials random ownership draws (the
// paper's "multiple random sets of actors ... results taken as means"),
// with trials fanned out across cores; the reported error bars are standard
// errors over trials. All randomness derives from Config.Seed, so runs are
// reproducible.
package experiments

import (
	"context"
	"fmt"

	"cpsguard/internal/adversary"
	"cpsguard/internal/checkpoint"
	"cpsguard/internal/core"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/shard"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/stats"
	"cpsguard/internal/westgrid"
)

// Config parameterizes all experiment runners.
type Config struct {
	// Graph is the system under study (default: stressed westgrid).
	Graph *graph.Graph
	// Trials is the number of random ownership draws per point
	// (default 5).
	Trials int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Parallel fans trials out across cores.
	Parallel parallel.Options
	// NoiseMode selects how noisy views are derived (default
	// core.GraphNoise, the paper-faithful formulation; use
	// core.MatrixNoise for fast sweeps).
	NoiseMode core.NoiseMode
	// ActorGrid overrides the actor-count axis where applicable.
	ActorGrid []int
	// SigmaGrid overrides the knowledge-noise axis where applicable.
	SigmaGrid []float64
	// AttackBudget is the SA's budget MA with unit costs (default 6,
	// the paper's "maximum of six targets" in Experiment 2; Experiments
	// 3's fixed attack uses 1 internally).
	AttackBudget float64
	// SystemDefenseBudget is the fixed system-wide defense budget that
	// is split evenly among actors (default 12 — the paper's "12
	// assets").
	SystemDefenseBudget float64
	// PaSamples is the number of speculated-SA samples for Pa
	// estimation (default 16).
	PaSamples int
	// Faults governs per-trial failure tolerance (default: strict — any
	// trial failure fails the experiment). See FaultPolicy.
	Faults FaultPolicy
	// Shard, when non-nil, restricts execution to the slice of trials
	// this shard owns (trial index mod Shard.Count == Shard.Index).
	// Unowned trials are skipped entirely — not run, not journaled, not
	// counted against the fault policy — so n shard processes given the
	// same seed and grids partition the sweep exactly, and the union of
	// their journals replays (internal/shard.Merge) to output
	// byte-identical to an unsharded run. Tables produced by a sharded
	// run aggregate only the owned trials and are not meaningful; the
	// shard's product is its journal.
	Shard *shard.Assignment
	// Sweep, when non-nil, makes the sweep crash-safe: every trial
	// outcome streams to the sweep's journal as it settles, trials
	// journaled by a previous (interrupted) run are replayed instead of
	// re-run, transient failures are retried with capped backoff, and
	// overlong trials are flagged/requeued by the watchdog. Because each
	// trial's randomness derives from its (seed, point, trial) key, a
	// resumed figure is byte-identical to an uninterrupted one.
	Sweep *checkpoint.Sweep
	// Log, when non-nil, receives structured progress events: point
	// start/finish at debug, tolerated trial failures at warn, point
	// failures at error, each stamped with the point as its stage and
	// failed trials with their durable trial ID. A nil logger is silent;
	// logging is an observer only and never changes results.
	Log *obs.Logger
	// Cache, when non-nil, is shared by every trial's scenario, so
	// figures that revisit the same (graph, ownership) point — the trial
	// seeding makes the same scenario recur across figures and resumed
	// runs — reuse its solved dispatches instead of re-solving. Safe
	// under trial parallelism (solvecache is concurrency-safe) and
	// result-neutral: entries are keyed by full scenario fingerprints.
	Cache *solvecache.Cache
	// WarmStart makes every scenario warm-start perturbed dispatches
	// from its baseline basis.
	WarmStart bool
	// LPMethod selects the dispatch simplex implementation for every
	// trial's scenario (zero value lp.MethodAuto keeps the solver's own
	// choice; lp.MethodRevised selects the sparse revised simplex).
	LPMethod lp.Method
	// ScreenK, when > 0, runs an N-k vulnerability screen of this depth
	// per scenario and threads the ranking into every adversary solve as
	// a pruning front-end. Purely an accelerator: screened figures are
	// byte-identical to unscreened ones (DESIGN.md §17).
	ScreenK int
	// InterventionBudget is the capital budget of the Interventions sweep
	// (default: half the candidate menu's total cost).
	InterventionBudget float64
	// InterventionMax caps the candidate menu of the Interventions sweep
	// (default 12).
	InterventionMax int
	// TrialIndices, when non-nil, restricts the Interventions sweep to
	// these trial (candidate) indices. Trial identity follows the absolute
	// index, so sparse pieces journal exactly what a dense run would and
	// merge losslessly (see runTrialsAt).
	TrialIndices []int
}

func (c Config) graph() *graph.Graph {
	if c.Graph != nil {
		return c.Graph
	}
	return westgrid.Build(westgrid.Options{Stress: true})
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return 5
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) actorGrid(def []int) []int {
	if len(c.ActorGrid) > 0 {
		return c.ActorGrid
	}
	return def
}

func (c Config) sigmaGrid() []float64 {
	if len(c.SigmaGrid) > 0 {
		return c.SigmaGrid
	}
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
}

func (c Config) attackBudget() float64 {
	if c.AttackBudget > 0 {
		return c.AttackBudget
	}
	return 6
}

func (c Config) systemDefenseBudget() float64 {
	if c.SystemDefenseBudget > 0 {
		return c.SystemDefenseBudget
	}
	return 12
}

// scenarioFor builds the trial'th scenario with n actors.
func (c Config) scenarioFor(n int, trial int) *core.Scenario {
	g := c.graph()
	seed := c.seed() ^ (uint64(n) << 32) ^ uint64(trial)*0x9E37
	s := core.NewScenario(g, n, seed)
	s.Parallel = parallel.Options{Workers: 1} // trials already parallel
	s.Cache = c.Cache
	s.WarmStart = c.WarmStart
	s.LPMethod = c.LPMethod
	s.ScreenK = c.ScreenK
	return s
}

// Fig2 measures the total gain and total loss across all single-asset
// attacks as the number of actors grows (paper Figure 2): gains rise with
// competition and saturate near the system's 12 points of competition,
// while gain + loss tracks the (constant) total welfare damage.
func Fig2(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 2: system gain/loss vs number of actors",
		XLabel: "actors",
		YLabel: "sum of per-actor impact ($k/day)",
	}
	gainS := t.AddSeries("gain")
	lossS := t.AddSeries("-loss")
	netS := t.AddSeries("gain+loss")
	for _, n := range cfg.actorGrid([]int{2, 4, 6, 8, 10, 12, 14, 16}) {
		// Exported fields: trial values must survive the JSON round-trip
		// through the checkpoint journal.
		type gl struct{ Gain, Loss float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("fig2 n=%d", n),
			func(ctx context.Context, trial int) (gl, error) {
				s := cfg.scenarioFor(n, trial)
				m, err := s.Truth()
				if err != nil {
					return gl{}, err
				}
				g, l := m.GainLoss()
				return gl{g, l}, nil
			})
		if err != nil {
			return nil, err
		}
		var ga, la, na stats.Accumulator
		for _, v := range vals {
			ga.Add(v.Gain)
			la.Add(-v.Loss)
			na.Add(v.Gain + v.Loss)
		}
		gainS.Add(float64(n), ga.Mean(), ga.StdErr())
		lossS.Add(float64(n), la.Mean(), la.StdErr())
		netS.Add(float64(n), na.Mean(), na.StdErr())
	}
	return t, nil
}

// Fig3 measures the SA's realized profit versus her knowledge noise, one
// series per actor count (paper Figure 3): profit decays with noise and
// grows with the number of actors.
func Fig3(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 3: SA profitability vs knowledge noise",
		XLabel: "sigma",
		YLabel: "SA realized profit ($k/day)",
	}
	for _, n := range cfg.actorGrid([]int{2, 4, 6, 12}) {
		series := t.AddSeries(fmt.Sprintf("%d actors", n))
		// One scenario (with cached truth) per trial, reused across σ.
		scens := make([]*core.Scenario, cfg.trials())
		for i := range scens {
			scens[i] = cfg.scenarioFor(n, i)
		}
		for _, sigma := range cfg.sigmaGrid() {
			mean, se, err := meanOfTrials(cfg, fmt.Sprintf("fig3 n=%d σ=%v", n, sigma),
				func(ctx context.Context, trial int) (float64, error) {
					s := scens[trial]
					truth, err := s.Truth()
					if err != nil {
						return 0, err
					}
					view, err := s.View(sigma, cfg.NoiseMode,
						rng.Derive(cfg.seed()^0xF13, uint64(trial)<<16|uint64(sigma*1000)))
					if err != nil {
						return 0, err
					}
					rank, err := s.ScreenRanking()
					if err != nil {
						return 0, err
					}
					plan, err := adversary.SolveResilient(adversary.Config{
						Matrix: view, Targets: s.Targets, Budget: cfg.attackBudget(),
						Ctx: ctx, LPMethod: cfg.LPMethod, Screen: rank,
					})
					if err != nil {
						return 0, err
					}
					return adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{}), nil
				})
			if err != nil {
				return nil, err
			}
			series.Add(sigma, mean, se)
		}
	}
	return t, nil
}

// Fig4 compares the SA's anticipated profit (under her noisy model) to the
// observed ground-truth profit for a 6-actor system (paper Figure 4):
// anticipation stays flat while observation decays — the overconfidence
// that motivates deception defenses.
func Fig4(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 4: SA anticipated vs observed profit (6 actors)",
		XLabel: "sigma",
		YLabel: "SA profit ($k/day)",
	}
	const n = 6
	antS := t.AddSeries("anticipated")
	obsS := t.AddSeries("observed")
	scens := make([]*core.Scenario, cfg.trials())
	for i := range scens {
		scens[i] = cfg.scenarioFor(n, i)
	}
	for _, sigma := range cfg.sigmaGrid() {
		type pair struct{ Ant, Obs float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("fig4 σ=%v", sigma),
			func(ctx context.Context, trial int) (pair, error) {
				s := scens[trial]
				truth, err := s.Truth()
				if err != nil {
					return pair{}, err
				}
				view, err := s.View(sigma, cfg.NoiseMode,
					rng.Derive(cfg.seed()^0xF14, uint64(trial)<<16|uint64(sigma*1000)))
				if err != nil {
					return pair{}, err
				}
				rank, err := s.ScreenRanking()
				if err != nil {
					return pair{}, err
				}
				plan, err := adversary.SolveResilient(adversary.Config{
					Matrix: view, Targets: s.Targets, Budget: cfg.attackBudget(),
					Ctx: ctx, LPMethod: cfg.LPMethod, Screen: rank,
				})
				if err != nil {
					return pair{}, err
				}
				obs := adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{})
				return pair{plan.Anticipated, obs}, nil
			})
		if err != nil {
			return nil, err
		}
		var aa, oa stats.Accumulator
		for _, v := range vals {
			aa.Add(v.Ant)
			oa.Add(v.Obs)
		}
		antS.Add(sigma, aa.Mean(), aa.StdErr())
		obsS.Add(sigma, oa.Mean(), oa.StdErr())
	}
	return t, nil
}

// defenseEffectiveness runs one full game round and returns the paper's
// Fig. 5 metric. The trial context is threaded into the round so
// cancellation stops in-flight solves.
func defenseEffectiveness(ctx context.Context, s *core.Scenario, cfg Config, sigma float64,
	nActors int, collaborative bool, seed uint64) (float64, error) {
	res, err := core.PlayRound(s, core.GameConfig{
		Ctx:                   ctx,
		AttackBudget:          1, // the paper's "fixed attack (single asset)"
		AttackerSigma:         0,
		DefenderSigma:         sigma,
		SpeculatedSigma:       sigma,
		DefenseBudgetPerActor: cfg.systemDefenseBudget() / float64(nActors),
		Collaborative:         collaborative,
		PaSamples:             cfg.PaSamples,
		NoiseMode:             cfg.NoiseMode,
		Seed:                  seed,
	})
	if err != nil {
		return 0, err
	}
	return res.Effectiveness, nil
}

// Fig5 measures independent-defense effectiveness versus defender noise,
// one series per actor count (paper Figure 5): effectiveness decays with
// noise and with actor count (shrinking per-actor budgets + misaligned
// ownership).
func Fig5(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 5: defense effectiveness vs defender noise",
		XLabel: "sigma",
		YLabel: "impact reduction ($k/day)",
	}
	for _, n := range cfg.actorGrid([]int{2, 4, 6, 12}) {
		series := t.AddSeries(fmt.Sprintf("%d actors", n))
		scens := make([]*core.Scenario, cfg.trials())
		for i := range scens {
			scens[i] = cfg.scenarioFor(n, i)
		}
		for _, sigma := range cfg.sigmaGrid() {
			mean, se, err := meanOfTrials(cfg, fmt.Sprintf("fig5 n=%d σ=%v", n, sigma),
				func(ctx context.Context, trial int) (float64, error) {
					return defenseEffectiveness(ctx, scens[trial], cfg, sigma, n, false,
						cfg.seed()^0xF15^uint64(trial)<<20^uint64(sigma*1000))
				})
			if err != nil {
				return nil, err
			}
			series.Add(sigma, mean, se)
		}
	}
	return t, nil
}

// Fig6 compares collaborative and independent defense for a 4-actor system
// across defender noise (paper Figure 6).
func Fig6(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 6: collaboration vs independent defense (4 actors)",
		XLabel: "sigma",
		YLabel: "impact reduction ($k/day)",
	}
	const n = 4
	indep := t.AddSeries("independent")
	collab := t.AddSeries("collaborative")
	scens := make([]*core.Scenario, cfg.trials())
	for i := range scens {
		scens[i] = cfg.scenarioFor(n, i)
	}
	for _, sigma := range cfg.sigmaGrid() {
		type pair struct{ Ind, Col float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("fig6 σ=%v", sigma),
			func(ctx context.Context, trial int) (pair, error) {
				seed := cfg.seed() ^ 0xF16 ^ uint64(trial)<<20 ^ uint64(sigma*1000)
				ind, err := defenseEffectiveness(ctx, scens[trial], cfg, sigma, n, false, seed)
				if err != nil {
					return pair{}, err
				}
				col, err := defenseEffectiveness(ctx, scens[trial], cfg, sigma, n, true, seed)
				if err != nil {
					return pair{}, err
				}
				return pair{ind, col}, nil
			})
		if err != nil {
			return nil, err
		}
		var ia, ca stats.Accumulator
		for _, v := range vals {
			ia.Add(v.Ind)
			ca.Add(v.Col)
		}
		indep.Add(sigma, ia.Mean(), ia.StdErr())
		collab.Add(sigma, ca.Mean(), ca.StdErr())
	}
	return t, nil
}

// Fig7 compares the collaboration benefit across actor counts at a fixed
// moderate noise level (paper Figure 7): the benefit grows with actor count
// as incentives fragment, then is counteracted by dwindling per-actor
// budgets at high counts.
func Fig7(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig 7: collaboration benefit vs number of actors",
		XLabel: "actors",
		YLabel: "impact reduction ($k/day)",
	}
	const sigma = 0.1
	indep := t.AddSeries("independent")
	collab := t.AddSeries("collaborative")
	benefit := t.AddSeries("benefit")
	for _, n := range cfg.actorGrid([]int{2, 4, 6, 12}) {
		scens := make([]*core.Scenario, cfg.trials())
		for i := range scens {
			scens[i] = cfg.scenarioFor(n, i)
		}
		type pair struct{ Ind, Col float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("fig7 n=%d", n),
			func(ctx context.Context, trial int) (pair, error) {
				seed := cfg.seed() ^ 0xF17 ^ uint64(trial)<<20 ^ uint64(n)
				ind, err := defenseEffectiveness(ctx, scens[trial], cfg, sigma, n, false, seed)
				if err != nil {
					return pair{}, err
				}
				col, err := defenseEffectiveness(ctx, scens[trial], cfg, sigma, n, true, seed)
				if err != nil {
					return pair{}, err
				}
				return pair{ind, col}, nil
			})
		if err != nil {
			return nil, err
		}
		var ia, ca, ba stats.Accumulator
		for _, v := range vals {
			ia.Add(v.Ind)
			ca.Add(v.Col)
			ba.Add(v.Col - v.Ind)
		}
		indep.Add(float64(n), ia.Mean(), ia.StdErr())
		collab.Add(float64(n), ca.Mean(), ca.StdErr())
		benefit.Add(float64(n), ba.Mean(), ba.StdErr())
	}
	return t, nil
}

// All runs every figure and returns them keyed by "fig2".."fig7".
func All(cfg Config) (map[string]*stats.Table, error) {
	runners := map[string]func(Config) (*stats.Table, error){
		"fig2": Fig2, "fig3": Fig3, "fig4": Fig4,
		"fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
	}
	out := map[string]*stats.Table{}
	for name, run := range runners {
		tb, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out[name] = tb
	}
	return out, nil
}
