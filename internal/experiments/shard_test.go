// Acceptance tests for sharded sweeps: the union of n shard journals,
// replayed in strict mode, must render CSV output byte-identical to a
// single-process run — including when a shard crashed mid-sweep and was
// resumed from its journal before the merge.
package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/parallel"
	"cpsguard/internal/shard"
)

// runShard executes one shard of the resumeConfig Fig2 sweep into its own
// directory, journaling only its owned trials, and stamps a completed
// manifest — the in-process equivalent of `cpsexp -shard i/n`.
func runShard(t *testing.T, parent string, a shard.Assignment) {
	t.Helper()
	dir := filepath.Join(parent, a.DirName())
	j, rep, err := checkpoint.Resume(filepath.Join(dir, shard.JournalName), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	sweep := &checkpoint.Sweep{Journal: j, Replay: rep}
	cfg.Sweep = sweep
	cfg.Shard = &a
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	m := shard.NewManifest(a, cfg.Seed, "testkey")
	m.JournalRecords = int(j.Seq())
	m.Executed = sweep.Executed()
	m.Replayed = sweep.Replayed()
	m.Completed = true
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m.StampJournal(dir)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
}

// mergedCSV merges the shard directories under parent and re-renders Fig2
// in strict replay mode — every trial must come from a shard journal.
func mergedCSV(t *testing.T, parent string) string {
	t.Helper()
	dirs, err := shard.DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: "testkey"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	sweep := &checkpoint.Sweep{Replay: res.Replay, RequireReplay: true}
	cfg.Sweep = sweep
	tb, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Executed() != 0 {
		t.Fatalf("merged run executed %d trials; strict replay must execute none", sweep.Executed())
	}
	return tb.CSV()
}

// TestShardedSweepByteIdentical is the tentpole acceptance check: a 3-way
// sharded run of the Fig2 sweep, merged, renders the exact bytes of the
// single-process run.
func TestShardedSweepByteIdentical(t *testing.T) {
	baseline, err := Fig2(resumeConfig())
	if err != nil {
		t.Fatal(err)
	}
	parent := t.TempDir()
	for i := 0; i < 3; i++ {
		runShard(t, parent, shard.Assignment{Index: i, Count: 3})
	}
	if got := mergedCSV(t, parent); got != baseline.CSV() {
		t.Fatalf("merged CSV differs from single-process run:\n--- want\n%s\n--- got\n%s",
			baseline.CSV(), got)
	}
}

// TestShardSkipsUnownedTrials: a shard journals exactly its owned trials —
// no more (overlap) and no less (gap) — and the fault log never hears about
// the trials it skipped.
func TestShardSkipsUnownedTrials(t *testing.T) {
	parent := t.TempDir()
	a := shard.Assignment{Index: 1, Count: 3}
	log := &FaultLog{}
	dir := filepath.Join(parent, a.DirName())
	j, err := checkpoint.Create(filepath.Join(dir, shard.JournalName), checkpoint.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	cfg.Shard = &a
	cfg.Faults = FaultPolicy{Log: log}
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep, err := checkpoint.Load(filepath.Join(dir, shard.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	// resumeConfig is 2 points x 6 trials; shard 1/3 owns trials 1 and 4 of
	// each point.
	if rep.Len() != 4 {
		t.Fatalf("shard journaled %d trials, want 4", rep.Len())
	}
	for _, id := range rep.IDs() {
		idx, err := checkpoint.TrialIndex(id)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Owns(idx) {
			t.Fatalf("shard journaled unowned trial %s", id)
		}
	}
	if got := log.Trials(); got != 4 {
		t.Fatalf("fault log saw %d trials, want 4 (unowned trials must not be counted)", got)
	}
}

// TestShardCrashResumeMergeByteIdentical is the fault-injected acceptance
// check: shard 0 is killed mid-sweep (pool canceled after two of its trials
// settle), resumed from its journal, and the merge must still render the
// single-process bytes.
func TestShardCrashResumeMergeByteIdentical(t *testing.T) {
	baseline, err := Fig2(resumeConfig())
	if err != nil {
		t.Fatal(err)
	}
	parent := t.TempDir()

	// --- Shard 0, first attempt: crash after two settled trials.
	a0 := shard.Assignment{Index: 0, Count: 2}
	dir0 := filepath.Join(parent, a0.DirName())
	jpath := filepath.Join(dir0, shard.JournalName)
	j, err := checkpoint.Create(jpath, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	settled := 0
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	cfg.Shard = &a0
	cfg.Parallel = parallel.Options{
		Context: ctx,
		Workers: 2,
		OnSettle: func(i int, err error) {
			if errors.Is(err, errTrialNotAssigned) {
				return
			}
			mu.Lock()
			settled++
			if settled == 2 {
				cancel()
			}
			mu.Unlock()
		},
	}
	if _, err := Fig2(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted shard err = %v, want Canceled", err)
	}
	j.Close()
	partial, err := checkpoint.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Len() == 0 || partial.Len() >= 6 {
		t.Fatalf("crash left %d of 6 records — timing made the test vacuous", partial.Len())
	}

	// --- Shard 0, restart: resume replays the prefix, executes the rest.
	runShard(t, parent, a0)
	// --- Shard 1: clean single run.
	runShard(t, parent, shard.Assignment{Index: 1, Count: 2})

	if got := mergedCSV(t, parent); got != baseline.CSV() {
		t.Fatalf("merged CSV after crash+resume differs from single-process run:\n--- want\n%s\n--- got\n%s",
			baseline.CSV(), got)
	}
}

// TestStrictReplayFailsOnMissingTrial: handing the experiment runners a
// replay that covers only half the sweep under RequireReplay must fail with
// MissingTrialError — never silently recompute the gap.
func TestStrictReplayFailsOnMissingTrial(t *testing.T) {
	parent := t.TempDir()
	a0 := shard.Assignment{Index: 0, Count: 2}
	runShard(t, parent, a0)
	rep, err := checkpoint.Load(filepath.Join(parent, a0.DirName(), shard.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Replay: rep, RequireReplay: true}
	_, err = Fig2(cfg)
	var missing *checkpoint.MissingTrialError
	if !errors.As(err, &missing) {
		t.Fatalf("err = %v, want MissingTrialError", err)
	}
}

// TestShardDefersFaultPolicyToMerge: a shard whose only owned trial of a
// point fails must not hard-fail the point — it cannot see its siblings'
// trials, so the failure is journaled and the rate policy is enforced at the
// merge, which replays the whole point.
func TestShardDefersFaultPolicyToMerge(t *testing.T) {
	parent := t.TempDir()
	a := shard.Assignment{Index: 0, Count: 6} // owns exactly trial 0 of each point
	dir := filepath.Join(parent, a.DirName())
	j, err := checkpoint.Create(filepath.Join(dir, shard.JournalName), checkpoint.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	kill := func(site string) error { return errors.New("injected") }
	log := &FaultLog{}
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	cfg.Shard = &a
	cfg.Faults = FaultPolicy{Hook: kill, Log: log} // strict policy, every owned trial fails
	if _, err := Fig2(cfg); err != nil {
		t.Fatalf("shard hard-failed instead of deferring the fault policy: %v", err)
	}
	j.Close()
	if len(log.Failures()) != 2 {
		t.Fatalf("fault log has %d failures, want 2 (one owned trial per point)", len(log.Failures()))
	}
	rep, err := checkpoint.Load(filepath.Join(dir, shard.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 2 {
		t.Fatalf("journal has %d records, want 2 — failures must be journaled for the merge", rep.Len())
	}

	// The merge-side run sees the whole point and must enforce the policy.
	cfg2 := resumeConfig()
	cfg2.Sweep = &checkpoint.Sweep{Replay: rep} // non-strict: other trials execute
	if _, err := Fig2(cfg2); err == nil {
		t.Fatal("merge-side run tolerated a failure the strict policy forbids")
	}
}
