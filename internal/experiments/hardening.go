package experiments

import (
	"fmt"

	"cpsguard/internal/adversary"
	"cpsguard/internal/core"
	"cpsguard/internal/defense"
	"cpsguard/internal/parallel"
	"cpsguard/internal/stats"
)

// HardeningComparison (Ext E) compares the paper's binary defense with the
// graduated hardening of Section II-E4 across system defense budgets: both
// defenders face the same perfectly-informed strategic adversary (budget 3,
// uniform unit costs), and the metric is the reduction of the SA's realized
// profit versus the undefended system. Binary defense nullifies a few
// assets outright; hardening thins success probability (and raises attack
// cost) across many.
func HardeningComparison(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ext E: binary defense vs graduated hardening (6 actors)",
		XLabel: "system defense budget",
		YLabel: "SA profit reduction ($k/day)",
	}
	const n = 6
	const atkBudget = 3
	binS := t.AddSeries("binary")
	hardS := t.AddSeries("hardening")

	budgets := []float64{2, 4, 8, 16}
	scens := make([]*core.Scenario, cfg.trials())
	for i := range scens {
		scens[i] = cfg.scenarioFor(n, i)
	}
	for _, budget := range budgets {
		type pair struct{ bin, hard float64 }
		vals, err := parallel.Map(cfg.trials(), cfg.Parallel, func(trial int) (pair, error) {
			s := scens[trial]
			truth, err := s.Truth()
			if err != nil {
				return pair{}, err
			}
			targets := s.Targets
			basePlan, err := adversary.Solve(adversary.Config{
				Matrix: truth, Targets: targets, Budget: atkBudget,
			})
			if err != nil {
				return pair{}, err
			}
			baseProfit := adversary.Evaluate(basePlan, truth, targets, adversary.EvaluateOptions{})

			// Both defenders believe the SA will hit the base plan's
			// targets.
			pa := map[string]float64{}
			for _, tg := range basePlan.Targets {
				pa[tg] = 1
			}

			// Binary: collaborative defense with per-actor share of the
			// budget.
			perActor := budget / float64(len(truth.Actors))
			bb := map[string]float64{}
			for _, a := range truth.Actors {
				bb[a] = perActor
			}
			cinv, err := defense.PlanCollaborative(defense.CollaborativeConfig{
				Matrix: truth, Ownership: s.Ownership,
				AttackProb: defense.SharedAttackProb(truth, pa),
				Costs:      defense.UniformCosts(truth.Targets, 1),
				Budget:     bb,
			})
			if err != nil {
				return pair{}, err
			}
			// The SA re-plans knowing the defended set is worthless.
			binTargets := make([]adversary.Target, len(targets))
			for i, tg := range targets {
				binTargets[i] = tg
				if cinv.Defended[tg.ID] {
					binTargets[i].SuccessProb = 0
				}
			}
			binPlan, err := adversary.Solve(adversary.Config{
				Matrix: truth, Targets: binTargets, Budget: atkBudget,
			})
			if err != nil {
				return pair{}, err
			}
			binProfit := adversary.Evaluate(binPlan, truth, binTargets, adversary.EvaluateOptions{})

			// Hardening: pooled system hardening with the same budget.
			h, err := defense.PlanHardening(defense.HardeningConfig{
				Matrix: truth, Targets: targets,
				AttackProb: pa, Budget: budget, DecayScale: 2,
			})
			if err != nil {
				return pair{}, err
			}
			hardTargets := defense.ApplyHardening(targets, h, 1)
			hardPlan, err := adversary.Solve(adversary.Config{
				Matrix: truth, Targets: hardTargets, Budget: atkBudget,
			})
			if err != nil {
				return pair{}, err
			}
			hardProfit := adversary.Evaluate(hardPlan, truth, hardTargets, adversary.EvaluateOptions{})

			return pair{bin: baseProfit - binProfit, hard: baseProfit - hardProfit}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: hardening budget=%v: %w", budget, err)
		}
		var ba, ha stats.Accumulator
		for _, v := range vals {
			ba.Add(v.bin)
			ha.Add(v.hard)
		}
		binS.Add(budget, ba.Mean(), ba.StdErr())
		hardS.Add(budget, ha.Mean(), ha.StdErr())
	}
	return t, nil
}
