// Trial-fault tolerance for the Monte-Carlo experiment runners: failed
// trials are counted, logged, and excluded from aggregates instead of
// aborting a whole figure, and an experiment only fails when the failure
// rate exceeds the configured threshold. Cancellation is never absorbed —
// a canceled context always aborts the experiment with the context error.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
	"cpsguard/internal/telemetry"
)

// FaultPolicy governs how experiment runners treat per-trial failures.
// The zero value is strict: any trial failure fails the experiment.
type FaultPolicy struct {
	// MaxFailureRate is the tolerated fraction of failed trials per point
	// in [0,1). With the default 0, a single trial failure aborts the
	// experiment (the pre-resilience behaviour).
	MaxFailureRate float64
	// Hook, when non-nil, is consulted at site "experiments.trial" before
	// each trial; a non-nil return fails that trial without running it.
	// Fault-injection tests arm this to simulate flaky trials.
	Hook func(site string) error
	// Log, when non-nil, collects every trial failure for post-run
	// inspection.
	Log *FaultLog
}

// TrialError records one failed trial.
type TrialError struct {
	// Point labels the experiment point ("fig5 n=4 σ=0.2").
	Point string
	// Trial is the trial index within the point.
	Trial int
	// Err is the failure.
	Err error
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("%s trial %d: %v", e.Point, e.Trial, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *TrialError) Unwrap() error { return e.Err }

// FaultLog accumulates trial failures across an experiment run. Safe for
// concurrent use.
type FaultLog struct {
	mu       sync.Mutex
	failures []TrialError
	trials   int // total trials attempted
}

// record is called once per trial (failed or not) so rates are computable.
func (l *FaultLog) record(point string, trial int, err error) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trials++
	if err != nil {
		l.failures = append(l.failures, TrialError{Point: point, Trial: trial, Err: err})
	}
}

// Failures returns a copy of the logged trial failures.
func (l *FaultLog) Failures() []TrialError {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TrialError(nil), l.failures...)
}

// Trials returns the total number of trials attempted.
func (l *FaultLog) Trials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trials
}

// FailureRate returns len(Failures)/Trials (0 when no trials ran).
func (l *FaultLog) FailureRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.trials == 0 {
		return 0
	}
	return float64(len(l.failures)) / float64(l.trials)
}

// runTrials runs fn for cfg.trials() trials under the fault policy and
// returns the results of the trials that succeeded (order-preserving within
// survivors). A canceled pool context aborts with the context error;
// otherwise failures are counted against the policy's threshold and the
// call errors only when the per-point failure rate exceeds it or every
// trial failed.
//
// When cfg.Sweep is set, every trial is durable: its outcome streams to the
// sweep's journal the moment it settles (so a killed process loses at most
// in-flight trials), journaled trials replay instead of re-running,
// transient errors are retried with backoff, and overlong trials are
// flagged/requeued by the watchdog. Trial values must round-trip through
// JSON (exported fields) for replay to be exact.
// errTrialNotAssigned marks a trial skipped under a shard assignment:
// another shard owns it. It is internal bookkeeping, never surfaced —
// skipped trials are excluded from results, fault accounting, and journals.
var errTrialNotAssigned = errors.New("experiments: trial owned by another shard")

func runTrials[T any](cfg Config, point string,
	fn func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	n := cfg.trials()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return runTrialsAt(cfg, point, idxs, fn)
}

// runTrialsAt is runTrials over an explicit, possibly sparse, set of trial
// indices. Trial identity (journal IDs, shard ownership, per-trial seeds
// derived from the index) follows the absolute index, not the position in
// idxs, so a sweep evaluated in sparse pieces — different index subsets per
// process — journals exactly the trials a dense run would, and the merged
// journals replay byte-identical to one dense pass. This is what lets
// intervention sweeps, whose trial axis is a candidate menu rather than a
// 0..n-1 ownership draw, shard and resume safely.
func runTrialsAt[T any](cfg Config, point string, idxs []int,
	fn func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	pol := cfg.Faults
	seed := cfg.seed()
	owns := func(i int) bool { return cfg.Shard == nil || cfg.Shard.Owns(i) }
	planned := 0
	for _, i := range idxs {
		if owns(i) {
			planned++
		}
	}
	mPoints.Inc()
	mTrials.Add(int64(planned))
	mTrialsHist.Observe(int64(planned))
	par := cfg.Parallel
	sp, pointCtx := telemetry.Default().StartSpanCtx(par.Context, "experiments.point", point)
	if sp != nil {
		sp.SetWork(int64(planned))
		par.Context = pointCtx // trial spans nest under the point
		defer sp.End()
	}
	log := cfg.Log.WithStage(point)
	log.Debug("point started", obs.F("trials", planned))
	// The pool maps over positions in idxs; everything identity-bearing
	// uses the absolute trial index idxs[p].
	wrapped := func(ctx context.Context, p int) (T, error) {
		i := idxs[p]
		if !owns(i) {
			var zero T
			return zero, errTrialNotAssigned
		}
		id := checkpoint.TrialID(seed, point, i)
		tsp, ctx := telemetry.Default().StartSpanCtx(ctx, "experiments.trial", id)
		defer tsp.End()
		return checkpoint.RunTrial(cfg.Sweep, ctx, id, func(ctx context.Context) (T, error) {
			if pol.Hook != nil {
				if err := pol.Hook("experiments.trial"); err != nil {
					var zero T
					return zero, err
				}
			}
			return fn(ctx, i)
		})
	}
	// Per-trial accounting streams as each trial settles (it used to be
	// batched after the whole point), chaining any caller-provided hook.
	chained := par.OnSettle
	par.OnSettle = func(p int, err error) {
		i := idxs[p]
		if errors.Is(err, errTrialNotAssigned) {
			return // another shard's trial: no accounting at all
		}
		if err != nil {
			mTrialFailures.Inc()
			log.WithTrial(checkpoint.TrialID(seed, point, i)).Warn("trial failed",
				obs.F("trial_index", i), obs.F("err", err))
		}
		pol.Log.record(point, i, err)
		if chained != nil {
			chained(p, err)
		}
	}
	results, errs, ctxErr := parallel.MapSettle(len(idxs), par, wrapped)
	if ctxErr != nil {
		log.Error("point canceled", obs.F("err", ctxErr))
		return nil, fmt.Errorf("experiments: %s: %w", point, ctxErr)
	}
	ok := results[:0:0]
	failed := 0
	var firstErr error
	for p, err := range errs {
		if errors.Is(err, errTrialNotAssigned) {
			continue
		}
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = append(ok, results[p])
	}
	if failed == 0 {
		log.Debug("point finished", obs.F("trials", planned))
		return ok, nil
	}
	sp.AddDegradations(fmt.Sprintf("%d/%d trials failed", failed, planned))
	rate := float64(failed) / float64(planned)
	if cfg.Shard != nil {
		// A shard sees only its slice of each point, so the per-point
		// failure-rate policy cannot be judged here: one owned trial failing
		// would read as a 100% point failure even when the fleet-wide rate is
		// tiny. The failures are journaled; the merge, which replays every
		// shard's trials, enforces the policy over the whole point.
		mTolerated.Add(int64(failed))
		log.Warn("shard deferring fault policy to merge", obs.F("failed", failed),
			obs.F("trials", planned), obs.F("rate", rate))
		return ok, nil
	}
	if rate > pol.MaxFailureRate || len(ok) == 0 {
		mPointFailures.Inc()
		log.Error("point failed", obs.F("failed", failed), obs.F("trials", planned),
			obs.F("rate", rate), obs.F("tolerated", pol.MaxFailureRate))
		return nil, fmt.Errorf("experiments: %s: %d/%d trials failed (rate %.2f > tolerated %.2f), first: %w",
			point, failed, planned, rate, pol.MaxFailureRate, firstErr)
	}
	mTolerated.Add(int64(failed))
	log.Warn("tolerated trial failures", obs.F("failed", failed), obs.F("trials", planned),
		obs.F("rate", rate))
	return ok, nil
}

// meanOfTrials is runTrials followed by mean/standard-error aggregation
// over the surviving trials — the fault-tolerant analogue of
// parallel.MeanOf.
func meanOfTrials(cfg Config, point string,
	fn func(ctx context.Context, trial int) (float64, error)) (mean, stderr float64, err error) {
	vals, err := runTrials(cfg, point, fn)
	if err != nil {
		return 0, 0, err
	}
	var sum, sumSq float64
	for _, v := range vals {
		sum += v
		sumSq += v * v
	}
	m := float64(len(vals))
	mean = sum / m
	if len(vals) > 1 {
		variance := (sumSq - sum*sum/m) / (m - 1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / m)
	}
	return mean, stderr, nil
}
