package experiments

import (
	"testing"

	"cpsguard/internal/impact"
)

func TestBaselineComparisonShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 3
	cfg.SigmaGrid = []float64{0, 0.5}
	tb, err := BaselineComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"economic-independent", "economic-collaborative", "betweenness", "capacity-betweenness"} {
		s := tb.FindSeries(name)
		if s == nil || len(s.Points) != 2 {
			t.Fatalf("series %q missing or wrong size", name)
		}
		for _, p := range s.Points {
			if p.Y < -1e-9 {
				t.Fatalf("%s: negative effectiveness %v", name, p.Y)
			}
		}
	}
	// Topological strategies ignore σ: their two points must match.
	topo := tb.FindSeries("betweenness").Ys()
	if topo[0] != topo[1] {
		t.Fatalf("topological defense should be σ-independent: %v", topo)
	}
	// At σ=0 the economic collaborative defender (which sees the true
	// impacts) must be at least as effective as blind topology.
	col := tb.FindSeries("economic-collaborative").Ys()
	if col[0] < topo[0]-1e-6 {
		t.Fatalf("economic defense (%v) worse than topological (%v) at σ=0", col[0], topo[0])
	}
}

func TestDeceptionShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 4
	cfg.AttackBudget = 2
	cfg.SigmaGrid = []float64{0, 1.0}
	tb, err := Deception(cfg)
	if err != nil {
		t.Fatal(err)
	}
	val := tb.FindSeries("deception value").Ys()
	if val[0] != 0 {
		t.Fatalf("deception value at σ=0 must be 0, got %v", val[0])
	}
	if val[1] < -1e-9 {
		t.Fatalf("heavy deception should not help the adversary: %v", val[1])
	}
	obs := tb.FindSeries("realized").Ys()
	if obs[1] > obs[0]+1e-9 {
		t.Fatalf("deceived adversary out-performed informed one: %v", obs)
	}
}

func TestAttackVectorsShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 2
	cfg.AttackBudget = 2
	tb, err := AttackVectors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profit := tb.FindSeries("SA profit").Ys()
	damage := tb.FindSeries("worst-case system damage").Ys()
	if len(profit) != 3 || len(damage) != 3 {
		t.Fatalf("want 3 vector families, got %d/%d", len(profit), len(damage))
	}
	// The outage dominates: it is the most violent perturbation.
	if damage[0] < damage[1]-1e-6 || damage[0] < damage[2]-1e-6 {
		t.Fatalf("outage should cause the most damage: %v", damage)
	}
	for i, p := range profit {
		if p < -1e-9 {
			t.Fatalf("vector %d: negative SA profit %v (empty attack is free)", i, p)
		}
	}
}

func TestStandardVectorsLegal(t *testing.T) {
	g := miniGrid()
	for _, vec := range StandardVectors() {
		for _, e := range g.Edges {
			ps := vec.Make(e.ID, e.Capacity)
			if len(ps) == 0 {
				t.Fatalf("%s produced no perturbations", vec.Name)
			}
			for _, p := range ps {
				if p.EdgeID != e.ID {
					t.Fatalf("%s perturbs wrong edge", vec.Name)
				}
			}
		}
	}
}

func TestComputeMatrixOfSubtleAttack(t *testing.T) {
	// Integration check: loss attacks through the generalized matrix.
	g := miniGrid()
	an := &impact.Analysis{Graph: g, Ownership: map[string]string{"s1": "A", "s2": "B", "s3": "C", "dA": "A", "dB": "B", "bypass": "C"}}
	m, err := an.ComputeMatrixOf([]string{"s1", "dA"}, func(id string) []impact.Perturbation {
		return []impact.Perturbation{{EdgeID: id, Field: impact.Loss, Value: 0.3}}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range m.Targets {
		if m.WelfareDelta[tg] > 1e-6 {
			t.Fatalf("loss attack on %s increased welfare: %v", tg, m.WelfareDelta[tg])
		}
	}
}

func TestSecurityPremiumShape(t *testing.T) {
	cfg := fastCfg()
	tb, err := SecurityPremium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prem := tb.FindSeries("security premium").Ys()
	sec := tb.FindSeries("secured: worst post-attack service %").Ys()
	unsec := tb.FindSeries("unsecured: worst post-attack service %").Ys()
	if len(prem) < 2 {
		t.Fatalf("premium points = %d", len(prem))
	}
	for i := range prem {
		if prem[i] < -1e-6 {
			t.Fatalf("negative premium at k=%d: %v", i, prem[i])
		}
		if sec[i] < -1e-6 || sec[i] > 100+1e-6 || unsec[i] < -1e-6 || unsec[i] > 100+1e-6 {
			t.Fatalf("service %% out of range at k=%d: %v / %v", i, sec[i], unsec[i])
		}
		// The secured dispatch guarantees ≥90% service on its protected
		// corridors; the unsecured one guarantees nothing.
		if i > 0 && sec[i] < 90-1e-6 {
			t.Fatalf("secured service below guarantee at k=%d: %v", i, sec[i])
		}
		if sec[i] < unsec[i]-1e-6 {
			t.Fatalf("secured service below unsecured at k=%d: %v < %v", i, sec[i], unsec[i])
		}
	}
	// Premium weakly increases with the number of secured corridors.
	for i := 1; i < len(prem); i++ {
		if prem[i] < prem[i-1]-1e-6 {
			t.Fatalf("premium not monotone: %v", prem)
		}
	}
}

func TestHardeningComparisonShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 3
	tb, err := HardeningComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bin := tb.FindSeries("binary").Ys()
	hard := tb.FindSeries("hardening").Ys()
	if len(bin) != 4 || len(hard) != 4 {
		t.Fatalf("points = %d/%d, want 4", len(bin), len(hard))
	}
	for i := range bin {
		// Reductions are nonnegative: defense never helps the SA, who
		// can always fall back to an unhardened plan.
		if bin[i] < -1e-6 || hard[i] < -1e-6 {
			t.Fatalf("negative reduction at %d: bin=%v hard=%v", i, bin[i], hard[i])
		}
	}
	// Hardening value weakly grows with budget.
	if !monotoneUp(hard, 1e-6+0.05*(1+hard[0])) {
		t.Fatalf("hardening not improving with budget: %v", hard)
	}
}

func monotoneUp(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-slack {
			return false
		}
	}
	return true
}
