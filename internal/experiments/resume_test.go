package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/core"
	"cpsguard/internal/faultinject"
	"cpsguard/internal/parallel"
)

// resumeConfig is a quick Fig-2-scale configuration (12 trials over two
// actor counts).
func resumeConfig() Config {
	return Config{
		Trials:    6,
		Seed:      21,
		NoiseMode: core.MatrixNoise,
		ActorGrid: []int{2, 4},
		SigmaGrid: []float64{0, 0.2},
		PaSamples: 4,
	}
}

// TestResumeByteIdenticalAfterMidRunCancel is the acceptance check for the
// crash-safe sweep: a Fig-2 run canceled mid-sweep leaves a journal of the
// trials that settled; resuming from it replays those trials, executes only
// the remainder, and renders CSV output byte-identical to an uninterrupted
// run.
func TestResumeByteIdenticalAfterMidRunCancel(t *testing.T) {
	baseline, err := Fig2(resumeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.CSV()

	// --- Interrupted run: cancel the pool after three trials settle.
	path := filepath.Join(t.TempDir(), "fig2.journal")
	j, err := checkpoint.Create(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	settled := 0
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	cfg.Parallel = parallel.Options{
		Context: ctx,
		Workers: 2,
		OnSettle: func(i int, err error) {
			mu.Lock()
			settled++
			if settled == 3 {
				cancel()
			}
			mu.Unlock()
		},
	}
	if _, err := Fig2(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want Canceled", err)
	}
	j.Close()

	// --- Resume: replay the journal, run the remainder.
	j2, rep, err := checkpoint.Resume(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.Len() == 0 {
		t.Fatal("interrupted run journaled nothing; resume test is vacuous")
	}
	if rep.Len() >= 12 {
		t.Fatalf("journal has %d records — the cancel fired too late to test resume", rep.Len())
	}
	cfg2 := resumeConfig()
	sweep := &checkpoint.Sweep{Journal: j2, Replay: rep}
	cfg2.Sweep = sweep
	resumed, err := Fig2(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.CSV(); got != want {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if sweep.Replayed() != rep.Len() {
		t.Fatalf("replayed %d trials, journal had %d", sweep.Replayed(), rep.Len())
	}
	if sweep.Executed() != 12-rep.Len() {
		t.Fatalf("executed %d trials, want %d", sweep.Executed(), 12-rep.Len())
	}
}

// TestResumeTornJournalTail injects a torn final record (a crash mid-append)
// into the journal of an interrupted run: Resume must truncate it, never
// error, and the finished sweep must still match the uninterrupted CSV.
func TestResumeTornJournalTail(t *testing.T) {
	baseline, err := Fig2(resumeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.CSV()

	// Complete run with a journal, then tear its final record.
	path := filepath.Join(t.TempDir(), "fig2.journal")
	j, err := checkpoint.Create(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(77)
	torn := in.Tear("journal-tail", data) // keep only a deterministic prefix
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep, err := checkpoint.Resume(path, checkpoint.Options{})
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	defer j2.Close()
	cfg2 := resumeConfig()
	sweep := &checkpoint.Sweep{Journal: j2, Replay: rep}
	cfg2.Sweep = sweep
	resumed, err := Fig2(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.CSV(); got != want {
		t.Fatal("CSV after torn-tail resume differs from uninterrupted run")
	}
	if sweep.Executed() == 0 {
		t.Fatal("torn tail dropped nothing; the tear was vacuous")
	}
}

// TestResumeReplaysRecordedFailures: trials that failed (post-retry) in the
// first run are journaled as failures and replayed as failures — the
// injector is armed to fail *everything* in the resumed run, which must not
// matter because no trial re-executes.
func TestResumeReplaysRecordedFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig2.journal")
	j, err := checkpoint.Create(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(13).Arm("experiments.trial", faultinject.Error, 0.2)
	log := &FaultLog{}
	cfg := resumeConfig()
	cfg.Faults = FaultPolicy{MaxFailureRate: 0.9, Hook: in.Hook, Log: log}
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	first, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(log.Failures()) == 0 {
		t.Fatal("no injected failures; failure-replay test is vacuous")
	}

	j2, rep, err := checkpoint.Resume(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	log2 := &FaultLog{}
	kill := faultinject.New(1).Arm("experiments.trial", faultinject.Error, 1)
	cfg2 := resumeConfig()
	cfg2.Faults = FaultPolicy{MaxFailureRate: 0.9, Hook: kill.Hook, Log: log2}
	sweep := &checkpoint.Sweep{Journal: j2, Replay: rep}
	cfg2.Sweep = sweep
	second, err := Fig2(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if second.CSV() != first.CSV() {
		t.Fatal("resumed CSV differs despite full replay")
	}
	if sweep.Executed() != 0 {
		t.Fatalf("%d trials re-executed; recorded failures were not replayed", sweep.Executed())
	}
	if kill.Calls("experiments.trial") != 0 {
		t.Fatal("replayed trials consulted the injection hook")
	}
	if len(log2.Failures()) != len(log.Failures()) {
		t.Fatalf("replayed failure count %d != original %d", len(log2.Failures()), len(log.Failures()))
	}
}

// TestRetriesAbsorbTransientFaults: with per-trial retries armed, a hook
// that fails the first two attempts no longer fails the sweep even under
// the strict (zero-tolerance) fault policy.
func TestRetriesAbsorbTransientFaults(t *testing.T) {
	calls := 0
	flaky := func(site string) error {
		calls++
		if calls <= 2 {
			return faultinject.ErrInjected
		}
		return nil
	}
	cfg := resumeConfig()
	cfg.Trials = 3
	cfg.ActorGrid = []int{2}
	cfg.Parallel = parallel.Options{Workers: 1} // deterministic call order
	cfg.Faults = FaultPolicy{Hook: flaky}       // strict: any failure aborts

	if _, err := Fig2(cfg); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("without retries err = %v, want injected failure", err)
	}

	calls = 0
	cfg.Sweep = &checkpoint.Sweep{Retry: checkpoint.Retrier{
		MaxRetries: 2,
		Sleep:      func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}}
	if _, err := Fig2(cfg); err != nil {
		t.Fatalf("with retries: %v", err)
	}
}
