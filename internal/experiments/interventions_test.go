// Regression tests for the defense-as-redesign sweep, centred on the
// dense-trial-index assumption the figure sweeps used to bake in: the
// interventions trial axis is a candidate menu, evaluated here in sparse
// pieces (Config.TrialIndices) that must journal exactly what a dense run
// would, merge losslessly, and refuse to merge across different menus.
package experiments

import (
	"errors"
	"path/filepath"
	"testing"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/shard"
)

func interventionConfig(t *testing.T) Config {
	t.Helper()
	g, err := gridgen.Build(gridgen.Config{Regions: 2, Seed: 4, Stress: true})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:           g,
		Seed:            33,
		ScreenK:         1,
		InterventionMax: 4,
	}
}

// runInterventionPiece evaluates one sparse piece of the candidate menu into
// its own shard directory with a stamped manifest — the in-process
// equivalent of `cpsexp -interventions -shard i/n`.
func runInterventionPiece(t *testing.T, parent string, a shard.Assignment, idxs []int) {
	t.Helper()
	dir := filepath.Join(parent, a.DirName())
	j, rep, err := checkpoint.Resume(filepath.Join(dir, shard.JournalName), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := interventionConfig(t)
	sweep := &checkpoint.Sweep{Journal: j, Replay: rep}
	cfg.Sweep = sweep
	cfg.TrialIndices = idxs
	if _, err := Interventions(cfg); err != nil {
		t.Fatal(err)
	}
	m := shard.NewManifest(a, cfg.Seed, "ivkey")
	m.JournalRecords = int(j.Seq())
	m.Executed = sweep.Executed()
	m.Replayed = sweep.Replayed()
	m.Completed = true
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m.StampJournal(dir)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
}

// TestInterventionSweepSparseMergeByteIdentical: the menu evaluated as two
// sparse pieces (even and odd candidate indices), merged, replays in strict
// mode to the exact bytes of the dense single-process run — including the
// "chosen" knapsack series, which only a complete value set can produce.
func TestInterventionSweepSparseMergeByteIdentical(t *testing.T) {
	baseline, err := Interventions(interventionConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	cands := gridgen.CandidateInterventions(interventionConfig(t).Graph,
		gridgen.InterventionOptions{Max: 4})
	var evens, odds []int
	for i := range cands {
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	if len(evens) == 0 || len(odds) == 0 {
		t.Fatalf("menu of %d candidates cannot split into two pieces", len(cands))
	}

	parent := t.TempDir()
	runInterventionPiece(t, parent, shard.Assignment{Index: 0, Count: 2}, evens)
	runInterventionPiece(t, parent, shard.Assignment{Index: 1, Count: 2}, odds)

	dirs, err := shard.DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: "ivkey"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := interventionConfig(t)
	sweep := &checkpoint.Sweep{Replay: res.Replay, RequireReplay: true}
	cfg.Sweep = sweep
	tb, err := Interventions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Executed() != 0 {
		t.Fatalf("merged run executed %d trials; strict replay must execute none", sweep.Executed())
	}
	if got := tb.CSV(); got != baseline.CSV() {
		t.Fatalf("merged sparse pieces differ from dense run:\n--- want\n%s\n--- got\n%s",
			baseline.CSV(), got)
	}
	foundChosen := false
	for _, s := range tb.Series {
		if s.Name == "chosen" {
			foundChosen = true
		}
	}
	if !foundChosen {
		t.Fatal("merged dense replay missing the knapsack 'chosen' series")
	}
}

// TestInterventionSweepRejectsForeignMenu: a journal recorded against one
// candidate menu must not replay into a sweep over a different menu — the
// menu digest is part of every trial's durable identity, so strict replay
// fails with MissingTrialError instead of silently mixing values.
func TestInterventionSweepRejectsForeignMenu(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "iv.journal")
	j, err := checkpoint.Create(jpath, checkpoint.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := interventionConfig(t)
	cfg.Sweep = &checkpoint.Sweep{Journal: j}
	if _, err := Interventions(cfg); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep, err := checkpoint.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}

	foreign := interventionConfig(t)
	foreign.InterventionMax = 3 // different menu → different digest
	foreign.Sweep = &checkpoint.Sweep{Replay: rep, RequireReplay: true}
	_, err = Interventions(foreign)
	var missing *checkpoint.MissingTrialError
	if !errors.As(err, &missing) {
		t.Fatalf("foreign-menu replay err = %v, want MissingTrialError", err)
	}
}

// TestInterventionSweepOutOfRangeIndex locks the sparse-index validation.
func TestInterventionSweepOutOfRangeIndex(t *testing.T) {
	cfg := interventionConfig(t)
	cfg.TrialIndices = []int{0, 99}
	if _, err := Interventions(cfg); err == nil {
		t.Fatal("out-of-range trial index accepted")
	}
}
