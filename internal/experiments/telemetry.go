// Telemetry instruments for the experiment runners: per-point and per-trial
// rollups. Trials and points are fixed by the configuration, so on a clean
// run every counter here is deterministic; failures only appear under fault
// injection or real solver trouble.
package experiments

import "cpsguard/internal/telemetry"

var (
	mPoints        = telemetry.NewCounter("experiments.points")
	mPointFailures = telemetry.NewCounter("experiments.point_failures")
	mTrials        = telemetry.NewCounter("experiments.trials")
	mTrialFailures = telemetry.NewCounter("experiments.trial_failures")
	mTolerated     = telemetry.NewCounter("experiments.trials_excluded")
	mTrialsHist    = telemetry.NewHistogram("experiments.trials_per_point", telemetry.WorkEdges)
)
