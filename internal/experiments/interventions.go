// The defense-as-redesign sweep: value every candidate intervention of the
// system's redesign menu by the screened worst-case damage it averts, then
// select a build plan under the capital budget. Unlike the figure sweeps,
// the trial axis here is the candidate menu, not ownership draws — trial i
// evaluates candidate i — so sparse runs (Config.TrialIndices) and shards
// partition the menu, and the candidate-set digest is baked into every
// trial's durable identity so journals from different menus can never be
// merged into one sweep.
package experiments

import (
	"context"
	"fmt"

	"cpsguard/internal/actors"
	"cpsguard/internal/graph"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/knapsack"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/stats"
)

func (c Config) interventionMax() int {
	if c.InterventionMax > 0 {
		return c.InterventionMax
	}
	return 12
}

func (c Config) screenK() int {
	if c.ScreenK > 0 {
		return c.ScreenK
	}
	return 2
}

// interventionScreen screens g at the configured depth over the base
// threat set and returns the worst-case damage (≥ 0).
func (c Config) interventionScreen(g *graph.Graph, targets []string) (float64, error) {
	an := &impact.Analysis{
		Graph:     g,
		Ownership: actors.RandomOwnership(g, 4, rng.Derive(c.seed(), 0x1F)),
		Cache:     solvecache.New(8192),
		Parallel:  parallel.Options{Workers: 1}, // trials already parallel
		LPMethod:  c.LPMethod,
	}
	r, err := screen.Run(screen.Config{Analysis: an, Targets: targets, K: c.screenK()})
	if err != nil {
		return 0, err
	}
	if d := -r.Worst.Delta; d > 0 {
		return d, nil
	}
	return 0, nil
}

// InterventionMenu returns the candidate menu the Interventions sweep will
// evaluate for cfg — exported so callers can fingerprint the menu (e.g. for
// sweep keys) without duplicating the generation parameters.
func (c Config) InterventionMenu() []graph.Intervention {
	return gridgen.CandidateInterventions(c.graph(), gridgen.InterventionOptions{Max: c.interventionMax()})
}

// Interventions runs the redesign sweep over cfg's graph. The table has one
// row per candidate: x = candidate index, series "averted" (standalone
// worst-case damage reduction), "cost" (capital cost), and — only when the
// run is dense and unsharded, so every value is present — "chosen" (1 if
// the budget-constrained knapsack selection builds the candidate).
func Interventions(cfg Config) (*stats.Table, error) {
	g := cfg.graph()
	cands := cfg.InterventionMenu()
	if len(cands) == 0 {
		return nil, fmt.Errorf("experiments: graph %s yields no intervention candidates", g.Name)
	}
	digest := gridgen.InterventionSetDigest(cands)
	// The base threat set is fixed to the *base* graph's assets so every
	// candidate's residual screen ranges over the same outages.
	threats := g.AssetIDs()

	base, err := cfg.interventionScreen(g, threats)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline screen: %w", err)
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Interventions: averted worst-case damage per candidate (%s)", digest),
		XLabel: "candidate",
		YLabel: "averted worst-case damage ($k/day)",
	}
	avertS := t.AddSeries("averted")
	costS := t.AddSeries("cost")

	// Index rides in the outcome so rows key correctly even when tolerated
	// trial failures leave holes in the survivor list.
	type outcome struct {
		Index         int
		Averted, Cost float64
	}
	// One trial per candidate; the menu digest is part of the point label,
	// hence of every checkpoint.TrialID, so a journal recorded against a
	// different menu can never replay into this sweep.
	point := fmt.Sprintf("interventions k=%d %s", cfg.screenK(), digest)
	idxs := cfg.TrialIndices
	sparse := idxs != nil
	if idxs == nil {
		idxs = make([]int, len(cands))
		for i := range idxs {
			idxs[i] = i
		}
	}
	for _, i := range idxs {
		if i < 0 || i >= len(cands) {
			return nil, fmt.Errorf("experiments: trial index %d outside candidate menu [0,%d)", i, len(cands))
		}
	}
	trialCfg := cfg
	trialCfg.Trials = len(cands)
	vals, err := runTrialsAt(trialCfg, point, idxs,
		func(ctx context.Context, trial int) (outcome, error) {
			iv := cands[trial]
			gi, err := graph.ApplyInterventions(g, iv)
			if err != nil {
				return outcome{}, err
			}
			residual, err := cfg.interventionScreen(gi, threats)
			if err != nil {
				return outcome{}, err
			}
			return outcome{Index: trial, Averted: base - residual, Cost: iv.Cost}, nil
		})
	if err != nil {
		return nil, err
	}
	values := make([]float64, len(cands))
	costs := make([]float64, len(cands))
	for _, v := range vals {
		avertS.Add(float64(v.Index), v.Averted, 0)
		costS.Add(float64(v.Index), v.Cost, 0)
		values[v.Index], costs[v.Index] = v.Averted, v.Cost
	}
	// The knapsack selection needs every candidate valued: a sparse or
	// sharded run, or one with tolerated failures, reports values only.
	complete := !sparse && cfg.Shard == nil && len(vals) == len(cands)

	if complete {
		budget := cfg.InterventionBudget
		if budget <= 0 {
			total := 0.0
			for _, c := range costs {
				total += c
			}
			budget = total / 2
		}
		chosen, _ := knapsack.Solve(values, costs, budget)
		chosenS := t.AddSeries("chosen")
		inPlan := make(map[int]bool, len(chosen))
		for _, i := range chosen {
			inPlan[i] = true
		}
		for i := range cands {
			y := 0.0
			if inPlan[i] {
				y = 1
			}
			chosenS.Add(float64(i), y, 0)
		}
	}
	return t, nil
}
