package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cpsguard/internal/core"
	"cpsguard/internal/faultinject"
	"cpsguard/internal/parallel"
)

// chaosConfig is a quick Fig-2/Fig-5-scale configuration.
func chaosConfig(pol FaultPolicy) Config {
	return Config{
		Trials:    10,
		Seed:      7,
		NoiseMode: core.MatrixNoise,
		ActorGrid: []int{2, 4},
		SigmaGrid: []float64{0, 0.2},
		PaSamples: 4,
		Faults:    pol,
	}
}

// TestChaosFig2WithInjectedFaults is the acceptance check: a Fig-2-style
// experiment with ~10% of trials failing by injection completes, excludes
// the failed trials, and accounts for every one of them.
func TestChaosFig2WithInjectedFaults(t *testing.T) {
	in := faultinject.New(99).Arm("experiments.trial", faultinject.Error, 0.10)
	log := &FaultLog{}
	cfg := chaosConfig(FaultPolicy{MaxFailureRate: 0.5, Hook: in.Hook, Log: log})

	tb, err := Fig2(cfg)
	if err != nil {
		t.Fatalf("Fig2 under 10%% faults: %v", err)
	}
	if len(tb.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(tb.Series))
	}

	fired := in.FiredAt("experiments.trial")
	if fired == 0 {
		t.Fatal("10% rate over 20 trials fired nothing; chaos test is vacuous")
	}
	failures := log.Failures()
	if len(failures) != fired {
		t.Fatalf("log has %d failures, injector fired %d", len(failures), fired)
	}
	for _, f := range failures {
		if !errors.Is(f.Err, faultinject.ErrInjected) {
			t.Fatalf("failure %v not attributed to injection", f)
		}
		if !strings.HasPrefix(f.Point, "fig2 ") {
			t.Fatalf("failure point %q, want fig2 label", f.Point)
		}
	}
	if log.Trials() != 20 { // 2 actor counts × 10 trials
		t.Fatalf("log counted %d trials, want 20", log.Trials())
	}
	if got, want := log.FailureRate(), float64(fired)/20.0; got != want {
		t.Fatalf("FailureRate = %v, want %v", got, want)
	}
}

// TestChaosStrictPolicyAborts checks the zero-value policy keeps the
// pre-resilience behaviour: one failed trial fails the experiment.
func TestChaosStrictPolicyAborts(t *testing.T) {
	in := faultinject.New(99).Arm("experiments.trial", faultinject.Error, 1)
	cfg := chaosConfig(FaultPolicy{Hook: in.Hook})
	if _, err := Fig2(cfg); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure to surface", err)
	}
}

// TestChaosThresholdExceeded checks the experiment fails when the failure
// rate exceeds the tolerance.
func TestChaosThresholdExceeded(t *testing.T) {
	in := faultinject.New(99).Arm("experiments.trial", faultinject.Error, 1)
	cfg := chaosConfig(FaultPolicy{MaxFailureRate: 0.5, Hook: in.Hook})
	_, err := Fig2(cfg)
	if err == nil || !strings.Contains(err.Error(), "trials failed") {
		t.Fatalf("err = %v, want failure-rate report", err)
	}
}

// TestChaosFig5EndToEnd injects faults into the full game-round pipeline
// (Pa estimation, knapsacks, settlements) and checks the figure completes
// with per-point accounting.
func TestChaosFig5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-round chaos is slow")
	}
	in := faultinject.New(3).Arm("experiments.trial", faultinject.Error, 0.10)
	log := &FaultLog{}
	cfg := chaosConfig(FaultPolicy{MaxFailureRate: 0.6, Hook: in.Hook, Log: log})
	cfg.Trials = 5

	tb, err := Fig5(cfg)
	if err != nil {
		t.Fatalf("Fig5 under faults: %v", err)
	}
	if len(tb.Series) != 2 {
		t.Fatalf("series = %d, want 2 actor counts", len(tb.Series))
	}
	if log.Trials() != 2*2*5 { // actors × sigmas × trials
		t.Fatalf("trials counted %d, want 20", log.Trials())
	}
}

// TestChaosCancellationAborts checks injection never masks cancellation:
// an expired context fails the experiment with the context error even
// under a tolerant policy.
func TestChaosCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := chaosConfig(FaultPolicy{MaxFailureRate: 1})
	cfg.Parallel = parallel.Options{Context: ctx}
	_, err := Fig2(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
