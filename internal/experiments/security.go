package experiments

import (
	"fmt"
	"sort"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/secure"
	"cpsguard/internal/stats"
	"cpsguard/internal/westgrid"
)

// SecurityPremium quantifies the SCUC-style trade-off the paper's market
// model omits (Section IV-A): securing the k most damaging corridors with
// a preventive N-1 dispatch costs base-case welfare (the "security
// premium") but preserves service when those corridors are attacked.
//
// The served-fraction series use a short-term response model: immediately
// after an outage, generators can curtail but cannot increase output, and
// flows re-route freely; the metric is the fraction of the pre-attack load
// still servable. The secured dispatch pre-positions generation so that at
// least MinService (90%) survives by construction; the unsecured
// welfare-optimal dispatch holds no such margin.
func SecurityPremium(cfg Config) (*stats.Table, error) {
	g := cfg.graph()
	base, err := flow.Dispatch(g)
	if err != nil {
		return nil, err
	}
	// Rank long-haul corridors by re-dispatch attack damage.
	corridors := westgrid.LongHaulAssets(g)
	if len(corridors) == 0 {
		corridors = g.AssetIDs()
	}
	type dmg struct {
		id     string
		damage float64
	}
	var ranked []dmg
	for _, id := range corridors {
		attacked, err := impact.Apply(g, impact.Outage(id))
		if err != nil {
			return nil, err
		}
		r, err := flow.Dispatch(attacked)
		if err != nil {
			return nil, err
		}
		ranked = append(ranked, dmg{id, base.Welfare - r.Welfare})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].damage != ranked[j].damage {
			return ranked[i].damage > ranked[j].damage
		}
		return ranked[i].id < ranked[j].id
	})

	t := &stats.Table{
		Title:  "Ext D: N-1 security premium vs post-attack service",
		XLabel: "secured corridors k",
		YLabel: "premium in $k/day; service in %",
	}
	premium := t.AddSeries("security premium")
	securedSvc := t.AddSeries("secured: worst post-attack service %")
	unsecuredSvc := t.AddSeries("unsecured: worst post-attack service %")

	for _, k := range []int{0, 1, 2, 4} {
		if k > len(ranked) {
			break
		}
		if k == 0 {
			premium.Add(0, 0, 0)
			securedSvc.Add(0, 100, 0)
			unsecuredSvc.Add(0, 100, 0)
			continue
		}
		ids := make([]string, 0, k)
		for _, d := range ranked[:k] {
			ids = append(ids, d.id)
		}
		res, err := secure.Dispatch(secure.Config{
			Graph:         g,
			Contingencies: ids,
			MinService:    0.9,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: securing %v: %w", ids, err)
		}
		worstSec, worstUnsec := 100.0, 100.0
		for _, id := range ids {
			if s := servedFraction(g, res.Gen, sumLoad(res.Load), id); s < worstSec {
				worstSec = s
			}
			if s := servedFraction(g, base.Gen, base.Served(), id); s < worstUnsec {
				worstUnsec = s
			}
		}
		premium.Add(float64(k), res.SecurityPremium, 0)
		securedSvc.Add(float64(k), worstSec, 0)
		unsecuredSvc.Add(float64(k), worstUnsec, 0)
	}
	return t, nil
}

func sumLoad(load map[string]float64) float64 {
	t := 0.0
	for _, v := range load {
		t += v
	}
	return t
}

// servedFraction measures short-term service continuity after an outage:
// generation may only curtail from baseGen, the attacked edge is dead, and
// the system maximizes delivered load. Returns percent of baseServed.
func servedFraction(g *graph.Graph, baseGen map[string]float64, baseServed float64, outageID string) float64 {
	if baseServed <= 0 {
		return 100
	}
	c := g.Clone()
	for i := range c.Vertices {
		v := &c.Vertices[i]
		if v.Supply > 0 {
			v.Supply = baseGen[v.ID] // curtail-only
		}
		v.SupplyCost = 0
		if v.Demand > 0 {
			v.Price = 1 // maximize raw service
		}
	}
	for i := range c.Edges {
		c.Edges[i].Cost = 0
		if c.Edges[i].ID == outageID {
			c.Edges[i].Capacity = 0
		}
	}
	r, err := flow.Dispatch(c)
	if err != nil {
		return 0
	}
	return 100 * r.Served() / baseServed
}
