package experiments

import (
	"strings"
	"testing"

	"cpsguard/internal/core"
	"cpsguard/internal/graph"
	"cpsguard/internal/stats"
)

// miniGrid is a small competitive system so experiment tests run quickly:
// three generators of different costs feeding two cities through a shared
// hub, with a bypass line.
func miniGrid() *graph.Graph {
	g := graph.New("mini")
	g.MustAddVertex(graph.Vertex{ID: "g1", Supply: 120, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "g2", Supply: 120, SupplyCost: 3})
	g.MustAddVertex(graph.Vertex{ID: "g3", Supply: 120, SupplyCost: 5})
	g.MustAddVertex(graph.Vertex{ID: "hub"})
	g.MustAddVertex(graph.Vertex{ID: "cityA", Demand: 120, Price: 12})
	g.MustAddVertex(graph.Vertex{ID: "cityB", Demand: 80, Price: 11})
	g.MustAddEdge(graph.Edge{ID: "s1", From: "g1", To: "hub", Capacity: 90, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "s2", From: "g2", To: "hub", Capacity: 90, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "s3", From: "g3", To: "hub", Capacity: 90, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "dA", From: "hub", To: "cityA", Capacity: 130, Cost: 0.2})
	g.MustAddEdge(graph.Edge{ID: "dB", From: "hub", To: "cityB", Capacity: 90, Cost: 0.2})
	g.MustAddEdge(graph.Edge{ID: "bypass", From: "g1", To: "cityA", Capacity: 40, Cost: 0.4})
	return g
}

func fastCfg() Config {
	return Config{
		Graph:     miniGrid(),
		Trials:    4,
		Seed:      3,
		NoiseMode: core.MatrixNoise,
		ActorGrid: []int{2, 4, 6},
		SigmaGrid: []float64{0, 0.3, 0.8},
		PaSamples: 6,
	}
}

func seriesYs(t *testing.T, tb *stats.Table, name string) []float64 {
	t.Helper()
	s := tb.FindSeries(name)
	if s == nil {
		t.Fatalf("missing series %q in %q", name, tb.Title)
	}
	return s.Ys()
}

func TestFig2Shape(t *testing.T) {
	tb, err := Fig2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	gain := seriesYs(t, tb, "gain")
	loss := seriesYs(t, tb, "-loss")
	if len(gain) != 3 {
		t.Fatalf("gain points = %d", len(gain))
	}
	// Paper: gains grow with the number of actors (before saturation).
	if !stats.MonotoneIncreasing(gain, 0.05*(1+gain[0])) {
		t.Errorf("gain not increasing with actors: %v", gain)
	}
	// Gains are met with losses: −loss ≥ gain pointwise (an attack
	// destroys welfare, so losses outweigh gains).
	for i := range gain {
		if loss[i] < gain[i]-1e-6 {
			t.Errorf("point %d: -loss %v < gain %v", i, loss[i], gain[i])
		}
	}
	// gain+loss (= Σ welfare deltas) must not depend on the actor split.
	net := seriesYs(t, tb, "gain+loss")
	for i := 1; i < len(net); i++ {
		if rel := (net[i] - net[0]) / (1 + abs(net[0])); abs(rel) > 0.05 {
			t.Errorf("gain+loss varies with actors: %v", net)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig3Shape(t *testing.T) {
	cfg := fastCfg()
	cfg.AttackBudget = 2
	tb, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cfg.ActorGrid {
		ys := seriesYs(t, tb, seriesName(n))
		if len(ys) != len(cfg.SigmaGrid) {
			t.Fatalf("%d actors: %d points", n, len(ys))
		}
		// Profit at zero noise must be ≥ profit at heavy noise.
		if ys[0] < ys[len(ys)-1]-1e-9 {
			t.Errorf("%d actors: profit rose with noise: %v", n, ys)
		}
	}
	// More actors → more SA profit at σ=0 (more granular opportunities).
	y2 := seriesYs(t, tb, "2 actors")[0]
	y6 := seriesYs(t, tb, "6 actors")[0]
	if y6 < y2-1e-9 {
		t.Errorf("6-actor profit (%v) below 2-actor (%v) at σ=0", y6, y2)
	}
}

func seriesName(n int) string {
	switch n {
	case 2:
		return "2 actors"
	case 4:
		return "4 actors"
	case 6:
		return "6 actors"
	case 12:
		return "12 actors"
	}
	return ""
}

func TestFig4Shape(t *testing.T) {
	cfg := fastCfg()
	cfg.AttackBudget = 2
	tb, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ant := seriesYs(t, tb, "anticipated")
	obs := seriesYs(t, tb, "observed")
	// At σ=0 they coincide; at high σ anticipated ≥ observed.
	if abs(ant[0]-obs[0]) > 1e-6*(1+abs(ant[0])) {
		t.Errorf("σ=0: anticipated %v ≠ observed %v", ant[0], obs[0])
	}
	last := len(ant) - 1
	if ant[last] < obs[last]-1e-9 {
		t.Errorf("high σ: anticipated %v < observed %v (no overconfidence)", ant[last], obs[last])
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := fastCfg()
	tb, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cfg.ActorGrid {
		ys := seriesYs(t, tb, seriesName(n))
		for _, y := range ys {
			if y < -1e-9 {
				t.Errorf("%d actors: negative effectiveness %v", n, y)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	cfg := fastCfg()
	tb, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ind := seriesYs(t, tb, "independent")
	col := seriesYs(t, tb, "collaborative")
	if len(ind) != len(col) || len(ind) != len(cfg.SigmaGrid) {
		t.Fatalf("series sizes wrong: %d/%d", len(ind), len(col))
	}
	// Collaboration never hurts on average at zero noise (cost sharing
	// only adds options). Allow tiny numerical slack.
	if col[0] < ind[0]-1e-6*(1+abs(ind[0])) {
		t.Errorf("collaboration worse at σ=0: %v vs %v", col[0], ind[0])
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := fastCfg()
	tb, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ben := seriesYs(t, tb, "benefit")
	if len(ben) != len(cfg.ActorGrid) {
		t.Fatalf("benefit points = %d", len(ben))
	}
	for i, b := range ben {
		if b < -1e-6 {
			t.Errorf("point %d: negative collaboration benefit %v", i, b)
		}
	}
}

func TestAllRunsEverything(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 2
	cfg.ActorGrid = []int{2, 4}
	cfg.SigmaGrid = []float64{0, 0.5}
	out, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		tb, ok := out[name]
		if !ok || tb == nil {
			t.Fatalf("missing %s", name)
		}
		if !strings.Contains(strings.ToLower(tb.Title), "fig") {
			t.Fatalf("%s has unexpected title %q", name, tb.Title)
		}
		if len(tb.Series) == 0 {
			t.Fatalf("%s has no series", name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.trials() != 5 || c.seed() != 1 || c.attackBudget() != 6 ||
		c.systemDefenseBudget() != 12 {
		t.Fatal("defaults wrong")
	}
	if len(c.sigmaGrid()) == 0 || len(c.actorGrid([]int{2})) != 1 {
		t.Fatal("grids wrong")
	}
	if c.graph() == nil {
		t.Fatal("default graph nil")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 3
	t1, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range t1.Series {
		ys1, ys2 := s.Ys(), t2.Series[i].Ys()
		for j := range ys1 {
			if ys1[j] != ys2[j] {
				t.Fatalf("nondeterministic experiment: %v vs %v", ys1[j], ys2[j])
			}
		}
	}
}
