// Extension experiments beyond the paper's six figures, covering the
// directions its discussion sections open:
//
//   - BaselineComparison quantifies the related-work contrast (Section
//     IV-B): economic defense (this paper) versus purely topological
//     asset ranking (electrical betweenness, [32]) on the same attacks.
//   - Deception measures the defense policy Figure 4 suggests: feeding the
//     adversary a degraded model makes her overpay for attacks she then
//     can't monetize.
//   - AttackVectors compares the paper's abrupt outage against the "more
//     subtle" perturbations of Section II-D3 (stealthy loss increases and
//     cost manipulations).
package experiments

import (
	"context"
	"fmt"

	"cpsguard/internal/adversary"
	"cpsguard/internal/baseline"
	"cpsguard/internal/core"
	"cpsguard/internal/impact"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/stats"
)

// BaselineComparison measures defense effectiveness (the Fig. 5 metric)
// for four strategies across defender noise: the paper's independent and
// collaborative economic defenders, and noise-independent topological
// defenders ranking by edge betweenness and capacity-weighted betweenness.
// Topological strategies ignore both economics and ownership, so their
// curves are flat — the question is where they sit relative to the
// economic ones.
func BaselineComparison(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ext A: economic vs topological defense (4 actors)",
		XLabel: "sigma",
		YLabel: "impact reduction ($k/day)",
	}
	const n = 4
	indep := t.AddSeries("economic-independent")
	collab := t.AddSeries("economic-collaborative")
	topo := t.AddSeries("betweenness")
	wtopo := t.AddSeries("capacity-betweenness")

	scens := make([]*core.Scenario, cfg.trials())
	for i := range scens {
		scens[i] = cfg.scenarioFor(n, i)
	}
	for _, sigma := range cfg.sigmaGrid() {
		type row struct{ Ind, Col, Top, Wtop float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("baseline σ=%v", sigma),
			func(ctx context.Context, trial int) (row, error) {
				s := scens[trial]
				seed := cfg.seed() ^ 0xE41 ^ uint64(trial)<<20 ^ uint64(sigma*1000)
				ind, err := defenseEffectiveness(ctx, s, cfg, sigma, n, false, seed)
				if err != nil {
					return row{}, err
				}
				col, err := defenseEffectiveness(ctx, s, cfg, sigma, n, true, seed)
				if err != nil {
					return row{}, err
				}
				top, err := topologicalEffectiveness(s, cfg, false, seed)
				if err != nil {
					return row{}, err
				}
				wtop, err := topologicalEffectiveness(s, cfg, true, seed)
				if err != nil {
					return row{}, err
				}
				return row{ind, col, top, wtop}, nil
			})
		if err != nil {
			return nil, err
		}
		var ia, ca, ta, wa stats.Accumulator
		for _, v := range vals {
			ia.Add(v.Ind)
			ca.Add(v.Col)
			ta.Add(v.Top)
			wa.Add(v.Wtop)
		}
		indep.Add(sigma, ia.Mean(), ia.StdErr())
		collab.Add(sigma, ca.Mean(), ca.StdErr())
		topo.Add(sigma, ta.Mean(), ta.StdErr())
		wtopo.Add(sigma, wa.Mean(), wa.StdErr())
	}
	return t, nil
}

// topologicalEffectiveness evaluates a betweenness-ranked defense against
// the same σ=0 single-asset SA attack the economic defenders face.
func topologicalEffectiveness(s *core.Scenario, cfg Config, capacityWeighted bool, seed uint64) (float64, error) {
	truth, err := s.Truth()
	if err != nil {
		return 0, err
	}
	plan, err := adversary.Solve(adversary.Config{
		Matrix: truth, Targets: s.Targets, Budget: 1,
	})
	if err != nil {
		return 0, err
	}
	var scores map[string]float64
	if capacityWeighted {
		scores = baseline.CapacityWeightedBetweenness(s.Graph)
	} else {
		scores = baseline.EdgeBetweenness(s.Graph)
	}
	costs := map[string]float64{}
	for t, c := range defenseCostsOf(s) {
		costs[t] = c
	}
	defended := baseline.Rank(scores).Defend(costs, cfg.systemDefenseBudget())
	undef := adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{})
	def := adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{Defended: defended})
	_ = seed
	return undef - def, nil
}

// defenseCostsOf exposes the scenario's defense costs as a plain map.
func defenseCostsOf(s *core.Scenario) map[string]float64 {
	out := map[string]float64{}
	ids := make([]string, 0, len(s.Targets))
	for _, t := range s.Targets {
		ids = append(ids, t.ID)
	}
	if s.DefenseCosts != nil {
		for t, c := range s.DefenseCosts {
			out[t] = c
		}
		return out
	}
	for _, id := range ids {
		out[id] = 1
	}
	return out
}

// Deception measures the Figure 4 defense policy: the defender cannot stop
// attacks, but feeds the adversary a model degraded by σ_dec. Reported
// series: the SA's anticipated spend-justifying profit, her realized
// profit, and the deception value (realized at σ=0 minus realized at σ).
func Deception(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ext B: deception defense (6 actors)",
		XLabel: "injected sigma",
		YLabel: "SA profit ($k/day)",
	}
	const n = 6
	antS := t.AddSeries("anticipated")
	obsS := t.AddSeries("realized")
	valS := t.AddSeries("deception value")
	scens := make([]*core.Scenario, cfg.trials())
	for i := range scens {
		scens[i] = cfg.scenarioFor(n, i)
	}
	// Realized profit at σ=0 per trial (the undeceived reference).
	ref := make([]float64, cfg.trials())
	for i, s := range scens {
		truth, err := s.Truth()
		if err != nil {
			return nil, err
		}
		plan, err := adversary.Solve(adversary.Config{
			Matrix: truth, Targets: s.Targets, Budget: cfg.attackBudget(),
		})
		if err != nil {
			return nil, err
		}
		ref[i] = adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{})
	}
	for _, sigma := range cfg.sigmaGrid() {
		type row struct{ Ant, Obs, Val float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("deception σ=%v", sigma),
			func(ctx context.Context, trial int) (row, error) {
				s := scens[trial]
				truth, err := s.Truth()
				if err != nil {
					return row{}, err
				}
				view, err := s.View(sigma, cfg.NoiseMode,
					rng.Derive(cfg.seed()^0xE42, uint64(trial)<<16|uint64(sigma*1000)))
				if err != nil {
					return row{}, err
				}
				plan, err := adversary.SolveResilient(adversary.Config{
					Matrix: view, Targets: s.Targets, Budget: cfg.attackBudget(),
					Ctx: ctx,
				})
				if err != nil {
					return row{}, err
				}
				obs := adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{})
				return row{plan.Anticipated, obs, ref[trial] - obs}, nil
			})
		if err != nil {
			return nil, err
		}
		var aa, oa, va stats.Accumulator
		for _, v := range vals {
			aa.Add(v.Ant)
			oa.Add(v.Obs)
			va.Add(v.Val)
		}
		antS.Add(sigma, aa.Mean(), aa.StdErr())
		obsS.Add(sigma, oa.Mean(), oa.StdErr())
		valS.Add(sigma, va.Mean(), va.StdErr())
	}
	return t, nil
}

// AttackVector is a named family of per-asset perturbations.
type AttackVector struct {
	Name string
	// Make maps an asset to the perturbations its attack applies; the
	// current edge is provided for relative perturbations.
	Make func(id string, current float64) []impact.Perturbation
}

// StandardVectors returns the paper-motivated attack families: the abrupt
// outage (Section III-A3) and two subtle manipulations (Section II-D3).
func StandardVectors() []AttackVector {
	return []AttackVector{
		{
			Name: "outage",
			Make: func(id string, _ float64) []impact.Perturbation {
				return []impact.Perturbation{impact.Outage(id)}
			},
		},
		{
			Name: "half-capacity",
			Make: func(id string, cap float64) []impact.Perturbation {
				return []impact.Perturbation{{EdgeID: id, Field: impact.Capacity, Value: cap / 2}}
			},
		},
		{
			Name: "loss+10pt",
			Make: func(id string, _ float64) []impact.Perturbation {
				return []impact.Perturbation{{EdgeID: id, Field: impact.Loss, Value: 0.10}}
			},
		},
	}
}

// AttackVectors compares the SA's optimal profit and the system damage
// across attack families on a 6-actor system. The x axis indexes the
// vector family (0 = outage, 1 = half-capacity, 2 = loss+10pt).
func AttackVectors(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ext C: attack-vector families (6 actors)",
		XLabel: "vector (0=outage 1=half-capacity 2=loss+10pt)",
		YLabel: "$k/day",
	}
	const n = 6
	profitS := t.AddSeries("SA profit")
	damageS := t.AddSeries("worst-case system damage")
	vectors := StandardVectors()
	for vi, vec := range vectors {
		type row struct{ Profit, Damage float64 }
		vals, err := runTrials(cfg, fmt.Sprintf("vectors %s", vec.Name),
			func(ctx context.Context, trial int) (row, error) {
				s := cfg.scenarioFor(n, trial)
				an := &impact.Analysis{
					Graph: s.Graph, Ownership: s.Ownership,
					Parallel: parallel.Options{Workers: 1},
				}
				g := s.Graph
				m, err := an.ComputeMatrixOf(nil, func(id string) []impact.Perturbation {
					e := g.Edge(id)
					cur := 0.0
					switch {
					case e == nil:
					default:
						cur = e.Capacity
					}
					// Loss attacks must stay legal: never lower a loss.
					ps := vec.Make(id, cur)
					for i := range ps {
						if ps[i].Field == impact.Loss && e != nil && e.Loss > ps[i].Value {
							ps[i].Value = e.Loss
						}
					}
					return ps
				})
				if err != nil {
					return row{}, err
				}
				plan, err := adversary.SolveResilient(adversary.Config{
					Matrix: m, Targets: s.Targets, Budget: cfg.attackBudget(),
					Ctx: ctx,
				})
				if err != nil {
					return row{}, err
				}
				worst := 0.0
				for _, tg := range m.Targets {
					if d := -m.WelfareDelta[tg]; d > worst {
						worst = d
					}
				}
				return row{plan.Anticipated, worst}, nil
			})
		if err != nil {
			return nil, err
		}
		var pa, da stats.Accumulator
		for _, v := range vals {
			pa.Add(v.Profit)
			da.Add(v.Damage)
		}
		profitS.Add(float64(vi), pa.Mean(), pa.StdErr())
		damageS.Add(float64(vi), da.Mean(), da.StdErr())
	}
	return t, nil
}
