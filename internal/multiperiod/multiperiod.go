// Package multiperiod implements the time-domain extension the paper
// sketches in Section II-D5: "a time-domain component can be added to the
// model by integrating several instances of the utility function to
// represent varying demands and generating constraints."
//
// A Horizon is a weighted sequence of demand/supply snapshots of one graph;
// the dispatch couples consecutive periods through generator ramp limits
// (the paper's "it may take several minutes (or hours) for generating
// facilities to achieve maximum output") and maximizes the duration-
// weighted sum of per-period social welfare in a single LP.
//
// Attacks gain a duration dimension: a perturbation applied to a subset of
// periods measures an outage that starts and ends within the horizon, with
// ramp limits making recovery gradual rather than instantaneous.
package multiperiod

import (
	"errors"
	"fmt"
	"math"

	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
)

// Period is one snapshot of operating conditions.
type Period struct {
	// Name labels the period ("night", "peak", …).
	Name string
	// Weight is the period's duration share; welfare contributions are
	// scaled by it. Must be positive.
	Weight float64
	// DemandScale multiplies every vertex demand (default 1 when zero).
	DemandScale float64
	// SupplyScale multiplies every vertex supply (default 1 when zero).
	SupplyScale float64
}

func (p Period) demandScale() float64 {
	if p.DemandScale == 0 {
		return 1
	}
	return p.DemandScale
}

func (p Period) supplyScale() float64 {
	if p.SupplyScale == 0 {
		return 1
	}
	return p.SupplyScale
}

// Config states a multi-period dispatch.
type Config struct {
	// Graph is the base system; per-period scales derive from it.
	Graph *graph.Graph
	// Periods is the horizon, in order. At least one.
	Periods []Period
	// Ramp maps generator vertex IDs to the maximum absolute change of
	// injection between consecutive periods. Vertices absent from the
	// map ramp freely.
	Ramp map[string]float64
	// Attacks lists perturbations and the period range they span.
	Attacks []TimedAttack
	// LP forwards solver options.
	LP lp.Options
}

// TimedAttack is a perturbation active during [From, To] (inclusive period
// indices).
type TimedAttack struct {
	Perturbation impact.Perturbation
	From, To     int
}

// PeriodResult is one period's dispatch outcome.
type PeriodResult struct {
	Name    string
	Welfare float64 // unweighted, this period's snapshot welfare
	Flow    map[string]float64
	Gen     map[string]float64
	Load    map[string]float64
}

// Result is a solved horizon.
type Result struct {
	// Total is the duration-weighted welfare Σ weight_t · welfare_t.
	Total float64
	// Periods holds per-period outcomes in order.
	Periods []PeriodResult
	// Iterations counts simplex pivots.
	Iterations int
}

// ErrBadHorizon reports an invalid configuration.
var ErrBadHorizon = errors.New("multiperiod: invalid horizon")

// Dispatch solves the coupled multi-period welfare optimum.
func Dispatch(cfg Config) (*Result, error) {
	if cfg.Graph == nil || len(cfg.Periods) == 0 {
		return nil, fmt.Errorf("%w: nil graph or empty horizon", ErrBadHorizon)
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}
	for i, p := range cfg.Periods {
		// NaN fails every comparison, so test weight validity positively.
		if !(p.Weight > 0) || math.IsInf(p.Weight, 0) {
			return nil, fmt.Errorf("%w: period %d weight %v", ErrBadHorizon, i, p.Weight)
		}
		for _, s := range [2]float64{p.demandScale(), p.supplyScale()} {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				return nil, fmt.Errorf("%w: period %d scale %v", ErrBadHorizon, i, s)
			}
		}
	}
	for _, a := range cfg.Attacks {
		if a.From < 0 || a.To >= len(cfg.Periods) || a.From > a.To {
			return nil, fmt.Errorf("%w: attack range [%d,%d]", ErrBadHorizon, a.From, a.To)
		}
		if v := a.Perturbation.Value; math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: attack on %q with value %v", ErrBadHorizon, a.Perturbation.EdgeID, v)
		}
	}
	for id, r := range cfg.Ramp {
		if math.IsNaN(r) || math.IsInf(r, -1) || r < 0 {
			return nil, fmt.Errorf("%w: ramp for %q is %v", ErrBadHorizon, id, r)
		}
	}

	// Materialize the per-period graphs (scales + active attacks).
	graphs := make([]*graph.Graph, len(cfg.Periods))
	for t, p := range cfg.Periods {
		gt := cfg.Graph.Clone()
		for i := range gt.Vertices {
			gt.Vertices[i].Demand *= p.demandScale()
			gt.Vertices[i].Supply *= p.supplyScale()
		}
		for _, a := range cfg.Attacks {
			if t < a.From || t > a.To {
				continue
			}
			e := gt.Edge(a.Perturbation.EdgeID)
			if e == nil {
				return nil, fmt.Errorf("multiperiod: unknown attacked edge %q", a.Perturbation.EdgeID)
			}
			switch a.Perturbation.Field {
			case impact.Capacity:
				e.Capacity = a.Perturbation.Value
			case impact.Cost:
				e.Cost = a.Perturbation.Value
			case impact.Loss:
				e.Loss = a.Perturbation.Value
			default:
				return nil, fmt.Errorf("multiperiod: unknown field %v", a.Perturbation.Field)
			}
		}
		if err := gt.Validate(); err != nil {
			return nil, err
		}
		graphs[t] = gt
	}

	// Build the coupled LP: per-period flow/gen/load variables plus ramp
	// rows between consecutive periods.
	prob := lp.NewProblem()
	prob.SetName(fmt.Sprintf("multiperiod[%d]", len(cfg.Periods)))
	nT := len(cfg.Periods)
	base := cfg.Graph
	nE, nV := len(base.Edges), len(base.Vertices)
	fVar := make([][]int, nT)
	gVar := make([][]int, nT)
	xVar := make([][]int, nT)
	for t := 0; t < nT; t++ {
		gt := graphs[t]
		w := cfg.Periods[t].Weight
		fVar[t] = make([]int, nE)
		gVar[t] = make([]int, nV)
		xVar[t] = make([]int, nV)
		for j, e := range gt.Edges {
			fVar[t][j] = prob.AddVariable(fmt.Sprintf("f%d:%s", t, e.ID), w*e.Cost, e.Capacity)
		}
		for i, v := range gt.Vertices {
			if v.Supply > 0 {
				gVar[t][i] = prob.AddVariable(fmt.Sprintf("g%d:%s", t, v.ID), w*v.SupplyCost, v.Supply)
			} else {
				gVar[t][i] = -1
			}
			if v.Demand > 0 {
				xVar[t][i] = prob.AddVariable(fmt.Sprintf("x%d:%s", t, v.ID), -w*v.Price, v.Demand)
			} else {
				xVar[t][i] = -1
			}
		}
		// Conservation rows.
		for i, v := range gt.Vertices {
			var coefs []lp.Coef
			for j, e := range gt.Edges {
				if e.To == v.ID {
					coefs = append(coefs, lp.Coef{Var: fVar[t][j], Value: 1})
				}
				if e.From == v.ID {
					coefs = append(coefs, lp.Coef{Var: fVar[t][j], Value: -1 / (1 - e.Loss)})
				}
			}
			if gVar[t][i] >= 0 {
				coefs = append(coefs, lp.Coef{Var: gVar[t][i], Value: 1})
			}
			if xVar[t][i] >= 0 {
				coefs = append(coefs, lp.Coef{Var: xVar[t][i], Value: -1})
			}
			if len(coefs) == 0 {
				continue
			}
			prob.AddConstraint(lp.Constraint{
				Coefs: coefs, Sense: lp.EQ, RHS: 0,
				Name: fmt.Sprintf("cons%d:%s", t, v.ID),
			})
		}
	}
	// Ramp rows: |g_t − g_{t−1}| ≤ ramp.
	for id, ramp := range cfg.Ramp {
		vi := base.VertexIndex(id)
		if vi < 0 {
			return nil, fmt.Errorf("multiperiod: ramp for unknown vertex %q", id)
		}
		for t := 1; t < nT; t++ {
			cur, prev := gVar[t][vi], gVar[t-1][vi]
			if cur < 0 || prev < 0 {
				continue
			}
			prob.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{{Var: cur, Value: 1}, {Var: prev, Value: -1}},
				Sense: lp.LE, RHS: ramp,
				Name: fmt.Sprintf("rampup%d:%s", t, id),
			})
			prob.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{{Var: cur, Value: -1}, {Var: prev, Value: 1}},
				Sense: lp.LE, RHS: ramp,
				Name: fmt.Sprintf("rampdn%d:%s", t, id),
			})
		}
	}

	sol, err := lp.SolveResilient(prob, cfg.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("multiperiod: LP status %v", sol.Status)
	}

	res := &Result{Iterations: sol.Iterations, Periods: make([]PeriodResult, nT)}
	for t := 0; t < nT; t++ {
		gt := graphs[t]
		pr := PeriodResult{
			Name: cfg.Periods[t].Name,
			Flow: make(map[string]float64, nE),
			Gen:  map[string]float64{},
			Load: map[string]float64{},
		}
		for j, e := range gt.Edges {
			pr.Flow[e.ID] = sol.X[fVar[t][j]]
			pr.Welfare -= e.Cost * pr.Flow[e.ID]
		}
		for i, v := range gt.Vertices {
			if gVar[t][i] >= 0 {
				pr.Gen[v.ID] = sol.X[gVar[t][i]]
				pr.Welfare -= v.SupplyCost * pr.Gen[v.ID]
			}
			if xVar[t][i] >= 0 {
				pr.Load[v.ID] = sol.X[xVar[t][i]]
				pr.Welfare += v.Price * pr.Load[v.ID]
			}
		}
		res.Periods[t] = pr
		res.Total += cfg.Periods[t].Weight * pr.Welfare
	}
	return res, nil
}

// ImpactOf measures a timed attack's duration-weighted welfare impact:
// Dispatch(with attacks) − Dispatch(without).
func ImpactOf(cfg Config, attacks ...TimedAttack) (float64, error) {
	clean := cfg
	clean.Attacks = nil
	baseRes, err := Dispatch(clean)
	if err != nil {
		return 0, err
	}
	attacked := cfg
	attacked.Attacks = append(append([]TimedAttack(nil), cfg.Attacks...), attacks...)
	attRes, err := Dispatch(attacked)
	if err != nil {
		return 0, err
	}
	return attRes.Total - baseRes.Total, nil
}
