package multiperiod

import (
	"errors"
	"math"
	"testing"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// system: a cheap slow generator and an expensive fast peaker serve one
// city whose demand doubles at peak.
func system() *graph.Graph {
	g := graph.New("mp")
	g.MustAddVertex(graph.Vertex{ID: "slow", Supply: 100, SupplyCost: 10})
	g.MustAddVertex(graph.Vertex{ID: "peaker", Supply: 100, SupplyCost: 50})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 60, Price: 100})
	g.MustAddEdge(graph.Edge{ID: "ls", From: "slow", To: "city", Capacity: 100})
	g.MustAddEdge(graph.Edge{ID: "lp", From: "peaker", To: "city", Capacity: 100})
	return g
}

func TestSinglePeriodMatchesFlowDispatch(t *testing.T) {
	g := system()
	mp, err := Dispatch(Config{Graph: g, Periods: []Period{{Name: "only", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := flow.Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mp.Total, fr.Welfare, 1e-6*(1+fr.Welfare)) {
		t.Fatalf("single-period total %v ≠ flow welfare %v", mp.Total, fr.Welfare)
	}
}

func TestWeightsScaleWelfare(t *testing.T) {
	g := system()
	r, err := Dispatch(Config{Graph: g, Periods: []Period{
		{Name: "a", Weight: 2},
		{Name: "b", Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Identical periods, no coupling: total = 2·w + 1·w.
	if !approx(r.Total, 2*r.Periods[0].Welfare+r.Periods[1].Welfare, 1e-6*(1+r.Total)) {
		t.Fatalf("weighted total wrong: %v vs periods %v", r.Total, r.Periods)
	}
	if !approx(r.Periods[0].Welfare, r.Periods[1].Welfare, 1e-6*(1+r.Periods[0].Welfare)) {
		t.Fatal("identical periods must have identical welfare")
	}
}

func TestDemandScaleChangesDispatch(t *testing.T) {
	g := system()
	r, err := Dispatch(Config{Graph: g, Periods: []Period{
		{Name: "night", Weight: 1, DemandScale: 0.5},
		{Name: "peak", Weight: 1, DemandScale: 2.0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Periods[0].Load["city"], 30, 1e-6) {
		t.Fatalf("night load = %v, want 30", r.Periods[0].Load["city"])
	}
	if !approx(r.Periods[1].Load["city"], 120, 1e-6) {
		t.Fatalf("peak load = %v, want 120", r.Periods[1].Load["city"])
	}
	// Peak needs the expensive peaker for the 20 units beyond the slow
	// generator's 100.
	if r.Periods[1].Gen["peaker"] < 20-1e-6 {
		t.Fatalf("peaker output = %v, want ≥20", r.Periods[1].Gen["peaker"])
	}
}

func TestRampConstraintBinds(t *testing.T) {
	g := system()
	cfg := Config{
		Graph: g,
		Periods: []Period{
			{Name: "night", Weight: 1, DemandScale: 0.5}, // slow serves 30
			{Name: "peak", Weight: 1, DemandScale: 2.0},  // wants slow at 100
		},
		Ramp: map[string]float64{"slow": 20}, // slow can add only 20/period
	}
	r, err := Dispatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	night, peak := r.Periods[0].Gen["slow"], r.Periods[1].Gen["slow"]
	if peak-night > 20+1e-6 {
		t.Fatalf("ramp violated: %v → %v", night, peak)
	}
	// The optimizer should pre-position the slow unit above the myopic
	// 30 at night (spilling cheap energy is impossible, so it balances
	// cost of night overgeneration vs peak peaker usage — here night
	// load is capped at 30, so slow can't exceed 30 at night; peak slow
	// ≤ 50, peaker covers the rest).
	if peak > 50+1e-6 {
		t.Fatalf("peak slow output %v exceeds ramp-feasible 50", peak)
	}
	if r.Periods[1].Gen["peaker"] < 70-1e-6 {
		t.Fatalf("peaker must cover %v, got %v", 120-peak, r.Periods[1].Gen["peaker"])
	}
	// Unconstrained comparison: total welfare must be weakly higher.
	free, err := Dispatch(Config{Graph: g, Periods: cfg.Periods})
	if err != nil {
		t.Fatal(err)
	}
	if r.Total > free.Total+1e-6 {
		t.Fatal("ramp constraint increased welfare")
	}
	if free.Total-r.Total < 1 {
		t.Fatalf("ramp should cost welfare here: free %v vs ramped %v", free.Total, r.Total)
	}
}

func TestTimedAttackOnlyAffectsItsPeriods(t *testing.T) {
	g := system()
	cfg := Config{
		Graph: g,
		Periods: []Period{
			{Name: "t0", Weight: 1},
			{Name: "t1", Weight: 1},
			{Name: "t2", Weight: 1},
		},
		Attacks: []TimedAttack{{
			Perturbation: impact.Outage("ls"),
			From:         1, To: 1,
		}},
	}
	r, err := Dispatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Periods[1].Flow["ls"] != 0 {
		t.Fatalf("attacked period still flows: %v", r.Periods[1].Flow["ls"])
	}
	if r.Periods[0].Flow["ls"] <= 0 || r.Periods[2].Flow["ls"] <= 0 {
		t.Fatal("unattacked periods should use the cheap line")
	}
	if r.Periods[1].Welfare >= r.Periods[0].Welfare {
		t.Fatal("attacked period should lose welfare")
	}
}

func TestImpactOfIsNegative(t *testing.T) {
	g := system()
	cfg := Config{Graph: g, Periods: []Period{
		{Name: "a", Weight: 1}, {Name: "b", Weight: 1},
	}}
	delta, err := ImpactOf(cfg, TimedAttack{Perturbation: impact.Outage("ls"), From: 0, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	if delta >= 0 {
		t.Fatalf("attack impact = %v, want negative", delta)
	}
	// Longer attacks hurt at least as much.
	short, err := ImpactOf(cfg, TimedAttack{Perturbation: impact.Outage("ls"), From: 0, To: 0})
	if err != nil {
		t.Fatal(err)
	}
	if delta > short+1e-9 {
		t.Fatalf("2-period attack (%v) hurts less than 1-period (%v)", delta, short)
	}
}

func TestRampSlowsAttackRecovery(t *testing.T) {
	// With a ramp limit, an outage's damage persists after the attack
	// ends: the slow generator cannot jump back to full output.
	g := system()
	base := Config{
		Graph: g,
		Periods: []Period{
			{Name: "t0", Weight: 1}, {Name: "t1", Weight: 1}, {Name: "t2", Weight: 1},
		},
	}
	withRamp := base
	withRamp.Ramp = map[string]float64{"slow": 15}
	attack := TimedAttack{Perturbation: impact.Outage("ls"), From: 1, To: 1}
	freeDelta, err := ImpactOf(base, attack)
	if err != nil {
		t.Fatal(err)
	}
	rampDelta, err := ImpactOf(withRamp, attack)
	if err != nil {
		t.Fatal(err)
	}
	if rampDelta > freeDelta+1e-9 {
		t.Fatalf("ramped recovery should hurt at least as much: %v vs %v", rampDelta, freeDelta)
	}
}

func TestConfigValidation(t *testing.T) {
	g := system()
	if _, err := Dispatch(Config{}); !errors.Is(err, ErrBadHorizon) {
		t.Fatalf("nil config: %v", err)
	}
	if _, err := Dispatch(Config{Graph: g}); !errors.Is(err, ErrBadHorizon) {
		t.Fatalf("no periods: %v", err)
	}
	if _, err := Dispatch(Config{Graph: g, Periods: []Period{{Weight: 0}}}); !errors.Is(err, ErrBadHorizon) {
		t.Fatalf("zero weight: %v", err)
	}
	if _, err := Dispatch(Config{Graph: g,
		Periods: []Period{{Weight: 1}},
		Attacks: []TimedAttack{{Perturbation: impact.Outage("ls"), From: 0, To: 5}},
	}); !errors.Is(err, ErrBadHorizon) {
		t.Fatalf("bad attack range: %v", err)
	}
	if _, err := Dispatch(Config{Graph: g,
		Periods: []Period{{Weight: 1}},
		Attacks: []TimedAttack{{Perturbation: impact.Outage("zzz"), From: 0, To: 0}},
	}); err == nil {
		t.Fatal("unknown edge accepted")
	}
	if _, err := Dispatch(Config{Graph: g,
		Periods: []Period{{Weight: 1}, {Weight: 1}},
		Ramp:    map[string]float64{"nope": 1},
	}); err == nil {
		t.Fatal("unknown ramp vertex accepted")
	}
}
