// Package solvecache memoizes perturbation-set solve results. The
// evaluation pipeline (impact matrices, adversary branch-and-bound,
// experiment grids) repeatedly prices the same attack sets against the same
// baseline grid; the cache keys each solved set by a canonical hash
// (impact.CanonicalKey, salted by the scenario fingerprint) and stores the
// per-actor profits, welfare, and the optimal LP basis for warm-starting
// neighbours.
//
// The cache is a pure memo: entries hold exactly what a fresh solve would
// produce, so enabling it never changes results — the golden-figure CSVs
// stay byte-identical with the cache on. Entries are immutable once
// inserted and eviction only unlinks them, so a reader holding an Entry is
// never affected by concurrent eviction.
//
// All methods are safe for concurrent use and nil-safe: a nil *Cache is a
// valid always-miss cache, which lets callers thread an optional cache
// without guarding every call site.
package solvecache

import (
	"container/list"
	"sync"

	"cpsguard/internal/lp"
	"cpsguard/internal/telemetry"
)

var (
	mHits      = telemetry.NewCounter("solvecache.hits")
	mMisses    = telemetry.NewCounter("solvecache.misses")
	mEvictions = telemetry.NewCounter("solvecache.evictions")
)

// Entry is one memoized solve result. Entries are stored by value at Put
// and must not be mutated afterward; the Profits map and Basis are shared
// with every Get caller.
type Entry struct {
	// Profits holds the absolute per-actor profits of the perturbed solve
	// (not deltas — deltas are reconstructed against whichever baseline the
	// caller holds, keeping the memo baseline-independent).
	Profits map[string]float64
	// Welfare is the perturbed dispatch welfare.
	Welfare float64
	// Basis is the optimal LP basis of the perturbed dispatch, for
	// warm-starting structurally identical neighbours. May be nil.
	Basis *lp.Basis
	// Support lists the edges carrying nonzero flow in the perturbed
	// dispatch, in graph edge-index order. It is the dominance certificate
	// the N-k screen consumes (internal/screen): a perturbation touching
	// only zero-flow edges cannot change this optimum. Nil when the entry
	// predates support recording; consumers must treat nil as "no
	// certificate", never as "empty support".
	Support []string
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits, Misses, Evictions int64
	Size, Capacity          int
}

type cacheItem struct {
	key   string
	entry Entry
}

// Cache is a size-bounded LRU memo from canonical perturbation-set keys to
// solve results. The zero value is unusable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*list.Element // value: *cacheItem
	order    *list.List               // front = most recently used
	hits     int64
	misses   int64
	evicts   int64
}

// New returns a cache bounded to capacity entries. A capacity ≤ 0 returns
// nil — the always-miss cache — so flag plumbing can pass sizes straight
// through.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		items:    make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// Get returns the memoized entry for key, marking it most recently used.
func (c *Cache) Get(key string) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		mMisses.Inc()
		return Entry{}, false
	}
	c.order.MoveToFront(el)
	c.hits++
	mHits.Inc()
	return el.Value.(*cacheItem).entry, true
}

// Put memoizes entry under key, evicting the least recently used entry when
// at capacity. Re-putting an existing key refreshes its recency but keeps
// the stored entry (entries are deterministic, so both writes hold the same
// values).
func (c *Cache) Put(key string, entry Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheItem).key)
			c.evicts++
			mEvictions.Inc()
		}
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, entry: entry})
}

// Len reports the current number of memoized entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots hit/miss/eviction totals and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicts,
		Size: c.order.Len(), Capacity: c.capacity,
	}
}

// Keys returns the memoized keys from most to least recently used. Intended
// for tests asserting LRU order.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheItem).key)
	}
	return out
}
