package solvecache

import (
	"fmt"
	"sync"
	"testing"
)

func entryFor(i int) Entry {
	return Entry{
		Profits: map[string]float64{"a0": float64(i), "a1": float64(2 * i)},
		Welfare: float64(100 + i),
	}
}

// TestCapacityBounds drives insert sequences through caches of several
// capacities and checks the size never exceeds the bound and the eviction
// count accounts exactly for the overflow.
func TestCapacityBounds(t *testing.T) {
	cases := []struct {
		capacity int
		inserts  int
	}{
		{1, 1},
		{1, 10},
		{2, 2},
		{2, 7},
		{8, 3},
		{8, 100},
		{64, 200},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("cap%d_ins%d", tc.capacity, tc.inserts), func(t *testing.T) {
			c := New(tc.capacity)
			for i := 0; i < tc.inserts; i++ {
				c.Put(fmt.Sprintf("k%d", i), entryFor(i))
				if got := c.Len(); got > tc.capacity {
					t.Fatalf("size %d exceeds capacity %d", got, tc.capacity)
				}
			}
			st := c.Stats()
			wantSize := tc.inserts
			if wantSize > tc.capacity {
				wantSize = tc.capacity
			}
			if st.Size != wantSize {
				t.Fatalf("size %d, want %d", st.Size, wantSize)
			}
			wantEvicts := int64(tc.inserts - wantSize)
			if st.Evictions != wantEvicts {
				t.Fatalf("evictions %d, want %d", st.Evictions, wantEvicts)
			}
		})
	}
}

// TestLRUOrdering pins the recency contract: Get refreshes an entry, Put of
// an existing key refreshes it, and eviction always takes the least
// recently used key.
func TestLRUOrdering(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), entryFor(i))
	}
	// Recency now k2 > k1 > k0. Touch k0 via Get, k1 via re-Put.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k1", entryFor(1))
	got := c.Keys()
	want := []string{"k1", "k0", "k2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recency order %v, want %v", got, want)
		}
	}
	// Next insert must evict k2 (least recently used).
	c.Put("k3", entryFor(3))
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived eviction but was least recently used")
	}
	for _, k := range []string{"k0", "k1", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
}

// TestRePutKeepsEntry documents that re-putting an existing key refreshes
// recency without replacing the stored entry.
func TestRePutKeepsEntry(t *testing.T) {
	c := New(2)
	c.Put("k", entryFor(1))
	c.Put("k", entryFor(99))
	e, ok := c.Get("k")
	if !ok || e.Welfare != entryFor(1).Welfare {
		t.Fatalf("entry replaced on re-put: %+v", e)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate key occupies %d slots", c.Len())
	}
}

// TestNilCache checks every method is a safe no-op on the nil (always-miss)
// cache, including the New(0) spelling flag plumbing produces.
func TestNilCache(t *testing.T) {
	for _, c := range []*Cache{nil, New(0), New(-3)} {
		if c != nil {
			t.Fatal("non-positive capacity must yield the nil cache")
		}
		c.Put("k", entryFor(1))
		if _, ok := c.Get("k"); ok {
			t.Fatal("nil cache returned a hit")
		}
		if c.Len() != 0 || c.Stats() != (Stats{}) || c.Keys() != nil {
			t.Fatal("nil cache reported state")
		}
	}
}

// TestConcurrentAccess hammers a small cache from many goroutines (forcing
// constant eviction) and verifies under the race detector that concurrent
// Get/Put/Stats/Keys are safe and that every hit returns an uncorrupted
// entry even when its key is being evicted concurrently.
func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	const (
		workers = 16
		keys    = 32 // 4x capacity: evictions happen continuously
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r) % keys
				key := fmt.Sprintf("k%d", i)
				if e, ok := c.Get(key); ok {
					// Entry integrity: values must be the exact ones
					// inserted for this key, never a torn mix.
					if e.Welfare != float64(100+i) || e.Profits["a0"] != float64(i) || e.Profits["a1"] != float64(2*i) {
						t.Errorf("corrupt entry for %s: %+v", key, e)
						return
					}
				} else {
					c.Put(key, entryFor(i))
				}
				if r%64 == 0 {
					c.Stats()
					c.Keys()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Fatalf("size %d exceeds capacity after concurrent churn", got)
	}
	// The cycling pattern above guarantees misses and evictions but — being
	// LRU's sequential-scan worst case — hits only on lucky interleavings.
	// A serial hot-key pass makes the hit counter deterministic.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("hot%d", i)
		c.Put(key, entryFor(i))
		if _, ok := c.Get(key); !ok {
			t.Fatalf("hot key %s missing immediately after Put", key)
		}
	}
	st := c.Stats()
	if st.Hits < 4 || st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("churn should exercise hits, misses and evictions: %+v", st)
	}
}

// TestEvictedEntryStaysReadable holds a reference to an entry across the
// eviction of its key and checks the held value is untouched — eviction
// unlinks, it never scrubs.
func TestEvictedEntryStaysReadable(t *testing.T) {
	c := New(1)
	c.Put("old", entryFor(7))
	held, ok := c.Get("old")
	if !ok {
		t.Fatal("old missing")
	}
	c.Put("new", entryFor(8)) // evicts "old"
	if _, ok := c.Get("old"); ok {
		t.Fatal("old not evicted")
	}
	if held.Welfare != 107 || held.Profits["a0"] != 7 {
		t.Fatalf("held entry mutated by eviction: %+v", held)
	}
}
