package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the table as a fixed-size ASCII line chart, one mark
// character per series — a terminal-friendly rendition of the paper's
// figures. Width and height are in character cells (defaults 60×16 when
// non-positive). Series are assigned marks '*', 'o', '+', 'x', '#', '@' in
// order.
func (t *Table) Chart(width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Bounds across all points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	nPoints := 0
	for _, s := range t.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			nPoints++
		}
	}
	if nPoints == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		return clampInt(r, 0, height-1)
	}
	for si, s := range t.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			grid[row(p.Y)][col(p.X)] = mark
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	yLo, yHi := trimFloat(minY), trimFloat(maxY)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = pad(yHi, labelW)
		} else if r == height-1 {
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW),
		trimFloat(minX),
		strings.Repeat(" ", maxInt(1, width-len(trimFloat(minX))-len(trimFloat(maxX)))),
		trimFloat(maxX))
	for si, s := range t.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
