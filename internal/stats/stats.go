// Package stats provides the small statistical and tabulation toolkit used
// by the experiment harness: streaming mean/variance accumulators, labelled
// series, and rendering to aligned text tables and CSV.
package stats

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"
)

// Accumulator computes streaming count/mean/variance (Welford's algorithm).
// The zero value is an empty accumulator.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr reports the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Merge folds another accumulator in (parallel reduction; Chan et al.).
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// Point is one (x, mean, stderr) sample of a Series.
type Point struct {
	X      float64
	Y      float64
	StdErr float64
}

// Series is a named sequence of points, e.g. one line of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, stderr float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, StdErr: stderr})
}

// Ys returns the Y values in order.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// Table is a figure-shaped result: several series over a shared X axis.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends and returns a new named series.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// FindSeries returns the series with the given name, or nil.
func (t *Table) FindSeries(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// xs returns the sorted union of X values across all series.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render produces an aligned, human-readable text table. Every series
// becomes a "mean±stderr" column over the shared X axis.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	xs := t.xs()
	header := []string{t.xlabel()}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.StdErr > 0 {
						cell = fmt.Sprintf("%.4g ±%.2g", p.Y, p.StdErr)
					} else {
						cell = fmt.Sprintf("%.4g", p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString(strings.Repeat("-", sum(widths)+2*len(widths)))
			b.WriteByte('\n')
		}
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", t.YLabel)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV with mean and stderr columns
// per series.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.xlabel()))
	for _, s := range t.Series {
		fmt.Fprintf(&b, ",%s,%s", csvEscape(s.Name), csvEscape(s.Name+"_stderr"))
	}
	b.WriteByte('\n')
	for _, x := range t.xs() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, ",%g,%g", p.Y, p.StdErr)
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",,")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Checksum returns the CRC-32 (IEEE) of the table's CSV rendering — a
// cheap fingerprint for "did this resumed sweep reproduce the
// uninterrupted run byte-for-byte?" checks and for logging next to each
// written figure.
func (t *Table) Checksum() uint32 {
	return crc32.ChecksumIEEE([]byte(t.CSV()))
}

func (t *Table) xlabel() string {
	if t.XLabel != "" {
		return t.XLabel
	}
	return "x"
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func trimFloat(x float64) string {
	return fmt.Sprintf("%.5g", x)
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// MonotoneDecreasing reports whether ys is non-increasing within slack
// (absolute tolerance). Experiment shape-tests use it.
func MonotoneDecreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+slack {
			return false
		}
	}
	return true
}

// MonotoneIncreasing reports whether ys is non-decreasing within slack.
func MonotoneIncreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-slack {
			return false
		}
	}
	return true
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
