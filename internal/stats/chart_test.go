package stats

import (
	"strings"
	"testing"
)

func chartTable() *Table {
	t := &Table{Title: "demo"}
	s1 := t.AddSeries("up")
	s2 := t.AddSeries("down")
	for i := 0; i < 5; i++ {
		s1.Add(float64(i), float64(i), 0)
		s2.Add(float64(i), float64(4-i), 0)
	}
	return t
}

func TestChartBasics(t *testing.T) {
	out := chartTable().Chart(40, 10)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
	// Axis labels: min and max Y.
	if !strings.Contains(out, "0") || !strings.Contains(out, "4") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Title + 10 rows + axis + xlabels + 2 legend + trailing.
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartMonotoneSeriesOrientation(t *testing.T) {
	// The increasing series must place its max at the top-right: find
	// the row containing '*' in the rightmost columns and verify it is
	// above the row containing '*' in the leftmost columns.
	out := chartTable().Chart(40, 10)
	lines := strings.Split(out, "\n")[1:11] // grid rows
	topRight, bottomLeft := -1, -1
	for r, line := range lines {
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			continue
		}
		row := line[bar+1:]
		if idx := strings.LastIndexByte(row, '*'); idx > len(row)/2 && topRight < 0 {
			topRight = r
		}
		if idx := strings.IndexByte(row, '*'); idx >= 0 && idx < len(row)/2 {
			bottomLeft = r
		}
	}
	if topRight < 0 || bottomLeft < 0 || topRight >= bottomLeft {
		t.Fatalf("increasing series not oriented up-right (top %d bottom %d):\n%s",
			topRight, bottomLeft, out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	empty := &Table{}
	if out := empty.Chart(0, 0); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	flat := &Table{}
	s := flat.AddSeries("const")
	s.Add(1, 5, 0)
	out := flat.Chart(20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single-point chart missing mark:\n%s", out)
	}
}

func TestChartDefaultSize(t *testing.T) {
	out := chartTable().Chart(0, 0)
	lines := strings.Split(out, "\n")
	if len(lines) < 18 { // 16 rows + furniture
		t.Fatalf("default chart too short: %d", len(lines))
	}
}
