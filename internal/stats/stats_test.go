package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if math.Abs(a.StdErr()-a.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Fatal("stderr inconsistent with stddev")
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator must be all zeros")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 {
		t.Fatal("single observation: mean 3, variance 0")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var whole, left, right Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-9*(1+math.Abs(whole.Mean())) &&
			math.Abs(left.Variance()-whole.Variance()) < 1e-6*(1+whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Merge(b)
	if a.N() != 0 {
		t.Fatal("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty lost data")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "Fig X", XLabel: "noise", YLabel: "profit"}
	s1 := tb.AddSeries("2 actors")
	s1.Add(0, 10, 0.5)
	s1.Add(0.1, 8, 0.4)
	s2 := tb.AddSeries("4 actors")
	s2.Add(0, 14, 0)
	s2.Add(0.1, 11, 0.6)

	out := tb.Render()
	for _, want := range []string{"Fig X", "noise", "2 actors", "4 actors", "10 ±0.5", "14", "(y: profit)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "noise,2 actors,2 actors_stderr,4 actors,4 actors_stderr" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,10,0.5,14,0") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := &Table{}
	s1 := tb.AddSeries("a")
	s1.Add(1, 5, 0)
	s2 := tb.AddSeries("b")
	s2.Add(2, 7, 0)
	csv := tb.CSV()
	if !strings.Contains(csv, "1,5,0,,") {
		t.Fatalf("missing-cell CSV wrong:\n%s", csv)
	}
	if tb.FindSeries("a") != s1 || tb.FindSeries("zzz") != nil {
		t.Fatal("FindSeries wrong")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{XLabel: `x,with"comma`}
	tb.AddSeries("s").Add(1, 2, 0)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, `"x,with""comma"`) {
		t.Fatalf("escaping failed: %q", csv)
	}
}

func TestMonotoneHelpers(t *testing.T) {
	if !MonotoneDecreasing([]float64{5, 4, 4.05, 3}, 0.1) {
		t.Fatal("slack not honored")
	}
	if MonotoneDecreasing([]float64{5, 6}, 0.1) {
		t.Fatal("increase not caught")
	}
	if !MonotoneIncreasing([]float64{1, 2, 1.95, 3}, 0.1) {
		t.Fatal("slack not honored (inc)")
	}
	if MonotoneIncreasing([]float64{3, 1}, 0.1) {
		t.Fatal("decrease not caught")
	}
	if !MonotoneDecreasing(nil, 0) || !MonotoneIncreasing(nil, 0) {
		t.Fatal("empty series are trivially monotone")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestSeriesYs(t *testing.T) {
	s := &Series{}
	s.Add(0, 1, 0)
	s.Add(1, 2, 0)
	ys := s.Ys()
	if len(ys) != 2 || ys[0] != 1 || ys[1] != 2 {
		t.Fatalf("Ys = %v", ys)
	}
}

func TestChecksumFingerprintsCSV(t *testing.T) {
	tb := &Table{Title: "t", XLabel: "x"}
	s := tb.AddSeries("a")
	s.Add(1, 2.5, 0.1)
	s.Add(2, 3.5, 0.2)
	c1 := tb.Checksum()
	if c2 := tb.Checksum(); c2 != c1 {
		t.Fatalf("Checksum not stable: %08x vs %08x", c1, c2)
	}
	s.Add(3, 4.5, 0.3)
	if tb.Checksum() == c1 {
		t.Fatal("Checksum did not change with the table contents")
	}
}
