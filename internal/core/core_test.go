package core

import (
	"math"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

// testSystem is a small but strategically interesting network: two supply
// chains into one city plus a side market, owned by distinct actors.
func testSystem() *graph.Graph {
	g := graph.New("core-test")
	g.MustAddVertex(graph.Vertex{ID: "gen1", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "gen2", Supply: 100, SupplyCost: 3})
	g.MustAddVertex(graph.Vertex{ID: "hub"})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 120, Price: 10})
	g.MustAddVertex(graph.Vertex{ID: "town", Demand: 30, Price: 8})
	g.MustAddEdge(graph.Edge{ID: "e1", From: "gen1", To: "hub", Capacity: 80, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "e2", From: "gen2", To: "hub", Capacity: 80, Cost: 0.1})
	g.MustAddEdge(graph.Edge{ID: "ecity", From: "hub", To: "city", Capacity: 130, Cost: 0.2})
	g.MustAddEdge(graph.Edge{ID: "etown", From: "hub", To: "town", Capacity: 40, Cost: 0.2})
	return g
}

func scenario(n int) *Scenario {
	s := NewScenario(testSystem(), n, 7)
	return s
}

func TestNewScenarioDefaults(t *testing.T) {
	s := scenario(2)
	if len(s.Ownership) != 4 {
		t.Fatalf("ownership covers %d assets, want 4", len(s.Ownership))
	}
	if len(s.targets()) != 4 {
		t.Fatalf("targets = %d, want 4", len(s.targets()))
	}
	costs := s.defenseCosts()
	if len(costs) != 4 || costs["e1"] != 1 {
		t.Fatalf("defense costs = %v", costs)
	}
}

func TestTruthCached(t *testing.T) {
	s := scenario(2)
	m1, err := s.Truth()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Truth()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("Truth not cached")
	}
}

func TestViewZeroSigmaIsTruth(t *testing.T) {
	s := scenario(3)
	truth, _ := s.Truth()
	v, err := s.View(0, GraphNoise, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if v != truth {
		t.Fatal("σ=0 view should be the truth matrix itself")
	}
}

func TestViewModes(t *testing.T) {
	s := scenario(3)
	truth, _ := s.Truth()
	vm, err := s.View(0.3, MatrixNoise, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	vg, err := s.View(0.3, GraphNoise, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Both must differ from truth somewhere (noise applied).
	diffM, diffG := false, false
	for _, a := range truth.Actors {
		for _, tg := range truth.Targets {
			if vm.Get(a, tg) != truth.Get(a, tg) {
				diffM = true
			}
			if vg.Get(a, tg) != truth.Get(a, tg) {
				diffG = true
			}
		}
	}
	if !diffM || !diffG {
		t.Fatalf("noise not applied: matrix=%v graph=%v", diffM, diffG)
	}
	if _, err := s.View(0.3, NoiseMode(9), rng.New(3)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestPlayRoundPerfectKnowledge(t *testing.T) {
	s := scenario(2)
	res, err := PlayRound(s, GameConfig{
		AttackBudget:          1,
		DefenseBudgetPerActor: 2,
		Seed:                  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With σ=0 everywhere the SA's anticipated and undefended realized
	// profits coincide.
	if math.Abs(res.Anticipated-res.RealizedUndefended) > 1e-9 {
		t.Fatalf("perfect knowledge: anticipated %v ≠ realized %v",
			res.Anticipated, res.RealizedUndefended)
	}
	if res.Effectiveness < 0 {
		t.Fatalf("defense effectiveness negative: %v", res.Effectiveness)
	}
	if res.RealizedDefended > res.RealizedUndefended {
		t.Fatal("defense increased the adversary's profit")
	}
}

func TestPlayRoundNoisyAttackerUnderperforms(t *testing.T) {
	s := scenario(3)
	agg := 0.0
	const rounds = 8
	for i := 0; i < rounds; i++ {
		res, err := PlayRound(s, GameConfig{
			AttackBudget:          2,
			AttackerSigma:         1.2,
			NoiseMode:             MatrixNoise,
			DefenseBudgetPerActor: 0, // isolate the attacker effect
			Seed:                  uint64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		agg += res.Anticipated - res.RealizedUndefended
	}
	// On average the noisy attacker anticipates more than it realizes.
	if agg/rounds <= 0 {
		t.Fatalf("noisy attacker not overconfident on average: %v", agg/rounds)
	}
}

func TestPlayRoundDefenseReducesProfit(t *testing.T) {
	s := scenario(2)
	res, err := PlayRound(s, GameConfig{
		AttackBudget:          2,
		DefenseBudgetPerActor: 4,
		PaSamples:             8,
		Seed:                  21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Targets) > 0 && len(res.Defended) == 0 {
		t.Log("no defense chosen; acceptable if attacks are harmless, checking")
	}
	if res.RealizedDefended > res.RealizedUndefended+1e-9 {
		t.Fatal("defended profit exceeds undefended")
	}
}

func TestPlayRoundCollaborative(t *testing.T) {
	s := scenario(3)
	res, err := PlayRound(s, GameConfig{
		AttackBudget:          2,
		DefenseBudgetPerActor: 1,
		Collaborative:         true,
		PaSamples:             8,
		Seed:                  31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Effectiveness < 0 {
		t.Fatalf("collaborative effectiveness negative: %v", res.Effectiveness)
	}
}

func TestPlayRoundDeterministic(t *testing.T) {
	cfg := GameConfig{
		AttackBudget: 2, AttackerSigma: 0.4, DefenderSigma: 0.3,
		SpeculatedSigma: 0.2, DefenseBudgetPerActor: 2,
		NoiseMode: MatrixNoise, PaSamples: 8, Seed: 77,
	}
	r1, err := PlayRound(scenario(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PlayRound(scenario(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Anticipated != r2.Anticipated ||
		r1.RealizedUndefended != r2.RealizedUndefended ||
		r1.RealizedDefended != r2.RealizedDefended {
		t.Fatalf("rounds differ: %+v vs %+v", r1, r2)
	}
}

// TestPlayRoundScreenedBitIdentical locks the accelerator contract at the
// round level: enabling ScreenK changes nothing about a round's outcome, in
// both noise modes and with defense in play.
func TestPlayRoundScreenedBitIdentical(t *testing.T) {
	for _, mode := range []NoiseMode{MatrixNoise, GraphNoise} {
		cfg := GameConfig{
			AttackBudget: 2, AttackerSigma: 0.4, DefenderSigma: 0.3,
			SpeculatedSigma: 0.2, DefenseBudgetPerActor: 2,
			NoiseMode: mode, PaSamples: 8, Seed: 77,
		}
		base, err := PlayRound(scenario(3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ss := scenario(3)
		ss.ScreenK = 2
		scr, err := PlayRound(ss, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rank, _ := ss.ScreenRanking(); rank == nil {
			t.Fatalf("%v: screening enabled but no ranking cached", mode)
		}
		if base.Anticipated != scr.Anticipated ||
			base.RealizedUndefended != scr.RealizedUndefended ||
			base.RealizedDefended != scr.RealizedDefended ||
			base.DefenseSpent != scr.DefenseSpent {
			t.Fatalf("%v: screened round differs from unscreened:\n%+v\n%+v", mode, base, scr)
		}
	}
}

func TestPlayRoundNilScenario(t *testing.T) {
	if _, err := PlayRound(nil, GameConfig{}); err != ErrNilScenario {
		t.Fatalf("err = %v, want ErrNilScenario", err)
	}
	if _, err := PlayRound(&Scenario{}, GameConfig{}); err != ErrNilScenario {
		t.Fatalf("err = %v, want ErrNilScenario", err)
	}
}

func TestScenarioWithExplicitEconomics(t *testing.T) {
	s := scenario(2)
	s.Targets = adversary.UniformTargets([]string{"e1", "e2"}, 2, 0.5)
	s.DefenseCosts = nil // derive from targets
	costs := s.defenseCosts()
	if len(costs) != 2 {
		t.Fatalf("costs = %v, want 2 entries", costs)
	}
	s.ProfitModel = actors.LMPDivision{}
	if _, err := s.Truth(); err != nil {
		t.Fatal(err)
	}
	if len(s.truth.Targets) != 2 {
		t.Fatalf("truth targets = %v", s.truth.Targets)
	}
}

func TestNoiseModeString(t *testing.T) {
	if GraphNoise.String() != "graph" || MatrixNoise.String() != "matrix" {
		t.Fatal("mode strings wrong")
	}
	if NoiseMode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestScenarioDefaultTargetsWhenUnset(t *testing.T) {
	// A hand-built scenario without Targets derives uniform economics
	// from the graph's assets.
	s := &Scenario{Graph: testSystem(), Ownership: actors.Ownership{"e1": "A"}}
	if got := len(s.targets()); got != 4 {
		t.Fatalf("derived targets = %d, want 4", got)
	}
	if got := len(s.targetIDs()); got != 4 {
		t.Fatalf("derived target IDs = %d, want 4", got)
	}
	if _, err := s.Truth(); err != nil {
		t.Fatal(err)
	}
}
