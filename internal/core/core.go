// Package core wires the paper's three components together end to end:
// the interdependent impact model (Section II-D), the strategic adversary
// (Section II-E), and the defenders (Section II-F). A Scenario fixes the
// physical system, the actor ownership, and the attack/defense economics; a
// GameConfig fixes the two sides' knowledge levels and budgets; PlayRound
// runs one full round:
//
//  1. Ground truth: compute the true impact matrix IM*.
//  2. Adversary: build the SA's noisy view (σ_attacker), compute her impact
//     matrix, and solve her target/actor selection (Eq. 8–11).
//  3. Defenders: build the defenders' noisy view (σ_defender), estimate
//     attack probabilities by simulating the SA over speculated-knowledge
//     samples (σ_speculated, Section II-F2), and invest independently
//     (Eq. 12–14) or collaboratively (Eq. 15–18).
//  4. Settlement: evaluate the SA's plan against ground truth, with and
//     without the chosen defense; the difference is the paper's defense
//     effectiveness metric (Section III-D).
package core

import (
	"context"
	"errors"
	"fmt"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/defense"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
	"cpsguard/internal/noise"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
)

// NoiseMode selects how an agent's noisy view is produced.
type NoiseMode int8

const (
	// GraphNoise perturbs the physical model's parameters and re-derives
	// the impact matrix by re-dispatching every attack — the paper's
	// faithful formulation (σ on c, a, l, s, d). Costs one LP per target.
	GraphNoise NoiseMode = iota
	// MatrixNoise perturbs the ground-truth impact matrix entries
	// directly — a fast approximation useful for large Monte-Carlo
	// sweeps; equivalent first-order behaviour (decision quality decays
	// with σ) at a fraction of the cost.
	MatrixNoise
)

// String implements fmt.Stringer.
func (m NoiseMode) String() string {
	switch m {
	case GraphNoise:
		return "graph"
	case MatrixNoise:
		return "matrix"
	default:
		return fmt.Sprintf("NoiseMode(%d)", int8(m))
	}
}

// Scenario fixes the system under study.
type Scenario struct {
	// Graph is the ground-truth physical model.
	Graph *graph.Graph
	// Ownership assigns assets to actors.
	Ownership actors.Ownership
	// ProfitModel divides welfare (default actors.LMPDivision).
	ProfitModel actors.ProfitModel
	// Targets lists the attackable assets with Catk and Ps. Defaults to
	// every edge at cost 1, Ps 1 (the paper's uniform-cost setting).
	Targets []adversary.Target
	// DefenseCosts is Cd per asset (default: 1 per attackable target).
	DefenseCosts defense.Costs
	// Parallel configures intra-round fan-out.
	Parallel parallel.Options
	// Cache, when non-nil, memoizes dispatch solves across impact
	// computations (and, via salted keys, safely across scenarios sharing
	// one cache — see impact/cache.go). Purely an accelerator: results
	// are unchanged.
	Cache *solvecache.Cache
	// WarmStart re-enters dispatch solves from the baseline basis.
	WarmStart bool
	// LPMethod selects the dispatch simplex implementation
	// (lp.MethodAuto, the zero value, keeps the solver's own choice;
	// lp.MethodRevised selects the sparse revised simplex).
	LPMethod lp.Method
	// ScreenK, when > 0, runs an N-k vulnerability screen of this depth
	// over the ground-truth system and threads the resulting ranking into
	// every adversary solve (plan search and Pa sampling alike) as a
	// candidate-pruning front-end. Purely an accelerator: screened solves
	// are bit-identical to unscreened ones (DESIGN.md §17), so enabling
	// screening never changes a round's result.
	ScreenK int

	truth      *impact.Matrix  // cached ground-truth matrix
	screenRank *screen.Ranking // cached vulnerability ranking (ScreenK > 0)
}

// NewScenario builds a scenario over g with n uniformly-random actors
// (seeded) and the paper's uniform economics.
func NewScenario(g *graph.Graph, numActors int, seed uint64) *Scenario {
	o := actors.RandomOwnership(g, numActors, rng.Derive(seed, 0))
	return &Scenario{
		Graph:     g,
		Ownership: o,
		Targets:   adversary.UniformTargets(g.AssetIDs(), 1, 1),
	}
}

func (s *Scenario) targets() []adversary.Target {
	if s.Targets != nil {
		return s.Targets
	}
	return adversary.UniformTargets(s.Graph.AssetIDs(), 1, 1)
}

func (s *Scenario) defenseCosts() defense.Costs {
	if s.DefenseCosts != nil {
		return s.DefenseCosts
	}
	ids := make([]string, 0, len(s.targets()))
	for _, t := range s.targets() {
		ids = append(ids, t.ID)
	}
	return defense.UniformCosts(ids, 1)
}

func (s *Scenario) targetIDs() []string {
	ids := make([]string, 0, len(s.targets()))
	for _, t := range s.targets() {
		ids = append(ids, t.ID)
	}
	return ids
}

// Truth computes (and caches) the ground-truth impact matrix for the
// scenario's target set.
func (s *Scenario) Truth() (*impact.Matrix, error) {
	if s.truth != nil {
		return s.truth, nil
	}
	an := &impact.Analysis{
		Graph: s.Graph, Ownership: s.Ownership,
		Model: s.ProfitModel, Parallel: s.Parallel,
		Cache: s.Cache, WarmStart: s.WarmStart, LPMethod: s.LPMethod,
	}
	m, err := an.ComputeMatrix(s.targetIDs())
	if err != nil {
		return nil, err
	}
	s.truth = m
	return m, nil
}

// ScreenRanking computes (and caches) the scenario's N-k vulnerability
// ranking at depth ScreenK over the ground-truth system. Returns nil when
// screening is disabled (ScreenK ≤ 0). The ranking shares the scenario's
// solve cache, so its dispatches are reused by Truth and vice versa.
func (s *Scenario) ScreenRanking() (*screen.Ranking, error) {
	if s.ScreenK <= 0 {
		return nil, nil
	}
	if s.screenRank != nil {
		return s.screenRank, nil
	}
	an := &impact.Analysis{
		Graph: s.Graph, Ownership: s.Ownership,
		Model: s.ProfitModel, Parallel: s.Parallel,
		Cache: s.Cache, WarmStart: s.WarmStart, LPMethod: s.LPMethod,
	}
	r, err := screen.Run(screen.Config{Analysis: an, Targets: s.targetIDs(), K: s.ScreenK})
	if err != nil {
		return nil, fmt.Errorf("core: vulnerability screen: %w", err)
	}
	s.screenRank = r
	return r, nil
}

// View produces an agent's noisy impact matrix at knowledge noise sigma.
func (s *Scenario) View(sigma float64, mode NoiseMode, rs *rng.Stream) (*impact.Matrix, error) {
	truth, err := s.Truth()
	if err != nil {
		return nil, err
	}
	if sigma == 0 {
		return truth, nil
	}
	switch mode {
	case MatrixNoise:
		v := *truth
		v.IM = noise.PerturbMatrix(truth.IM, sigma, rs)
		return &v, nil
	case GraphNoise:
		ng := noise.Perturb(s.Graph, noise.Model{Sigma: sigma}, rs)
		an := &impact.Analysis{
			Graph: ng, Ownership: s.Ownership,
			Model: s.ProfitModel, Parallel: s.Parallel,
			Cache: s.Cache, WarmStart: s.WarmStart, LPMethod: s.LPMethod,
		}
		return an.ComputeMatrix(s.targetIDs())
	default:
		return nil, fmt.Errorf("core: unknown noise mode %v", mode)
	}
}

// GameConfig fixes one round's knowledge and budget parameters.
type GameConfig struct {
	// AttackBudget is MA (with unit target costs: max #targets).
	AttackBudget float64
	// AttackerSigma is the SA's knowledge noise.
	AttackerSigma float64
	// DefenderSigma is the defenders' knowledge noise.
	DefenderSigma float64
	// SpeculatedSigma is the defenders' estimate of the SA's knowledge
	// noise, used when sampling the SA to estimate Pa (Section II-F2).
	SpeculatedSigma float64
	// DefenseBudgetPerActor is MD(a), identical across actors (the
	// paper's fixed system budget divided evenly, Section III-D).
	DefenseBudgetPerActor float64
	// Collaborative selects cost-shared defense (Eq. 15–18).
	Collaborative bool
	// PaSamples is the number of speculated-SA samples for estimating
	// attack probabilities (default 16).
	PaSamples int
	// NoiseMode selects the view mechanism (default GraphNoise).
	NoiseMode NoiseMode
	// Seed drives all randomness in the round.
	Seed uint64
	// Ctx, when non-nil, cancels the round: it is threaded into the
	// adversary search and the attack-probability sampling pool so
	// in-flight solves stop promptly.
	Ctx context.Context
}

func (c GameConfig) paSamples() int {
	if c.PaSamples > 0 {
		return c.PaSamples
	}
	return 16
}

// GameResult reports one settled round.
type GameResult struct {
	// Plan is the SA's chosen attack.
	Plan *adversary.Plan
	// Anticipated is the SA's expected profit under her own view.
	Anticipated float64
	// RealizedUndefended is the SA's ground-truth profit with no defense.
	RealizedUndefended float64
	// RealizedDefended is the SA's ground-truth profit against the
	// chosen defense.
	RealizedDefended float64
	// Defended is the union of protected assets.
	Defended map[string]bool
	// DefenseSpent is the total defensive expenditure.
	DefenseSpent float64
	// Effectiveness is the paper's Fig. 5 metric:
	// RealizedUndefended − RealizedDefended.
	Effectiveness float64
}

// ErrNilScenario guards PlayRound.
var ErrNilScenario = errors.New("core: nil scenario or graph")

// PlayRound runs one full adversary-vs-defenders round. The adversary
// search uses the resilient fallback chain (exact → greedy → MILP oracle)
// so a numerically hostile view degrades rather than kills the round;
// cfg.Ctx cancellation aborts the round with the context error.
func PlayRound(s *Scenario, cfg GameConfig) (*GameResult, error) {
	if s == nil || s.Graph == nil {
		return nil, ErrNilScenario
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	sp, roundCtx := telemetry.Default().StartSpanCtx(cfg.Ctx, "core.round", cfg.NoiseMode.String())
	if sp != nil {
		cfg.Ctx = roundCtx // adversary + defender solves nest under the round
		defer sp.End()
	}
	truth, err := s.Truth()
	if err != nil {
		return nil, err
	}
	rank, err := s.ScreenRanking()
	if err != nil {
		return nil, err
	}
	targets := s.targets()

	// --- Adversary side.
	atkView, err := s.View(cfg.AttackerSigma, cfg.NoiseMode, rng.Derive(cfg.Seed, 1))
	if err != nil {
		return nil, fmt.Errorf("core: adversary view: %w", err)
	}
	plan, err := adversary.SolveResilient(adversary.Config{
		Matrix: atkView, Targets: targets, Budget: cfg.AttackBudget,
		Ctx: cfg.Ctx, LPMethod: s.LPMethod, Screen: rank,
	})
	if err != nil {
		return nil, fmt.Errorf("core: adversary: %w", err)
	}

	// --- Defender side.
	defView, err := s.View(cfg.DefenderSigma, cfg.NoiseMode, rng.Derive(cfg.Seed, 2))
	if err != nil {
		return nil, fmt.Errorf("core: defender view: %w", err)
	}
	par := s.Parallel
	if cfg.Ctx != nil {
		par.Context = cfg.Ctx
	}
	pa, err := defense.EstimateAttackProbOpts(defView, targets, cfg.AttackBudget,
		cfg.SpeculatedSigma, cfg.paSamples(), cfg.Seed^0xD1FA, par,
		defense.PaOptions{Screen: rank})
	if err != nil {
		return nil, fmt.Errorf("core: attack probability: %w", err)
	}

	var defended map[string]bool
	spent := 0.0
	if cfg.Collaborative {
		budgets := map[string]float64{}
		for _, a := range defView.Actors {
			budgets[a] = cfg.DefenseBudgetPerActor
		}
		cinv, err := defense.PlanCollaborative(defense.CollaborativeConfig{
			Matrix: defView, Ownership: s.Ownership,
			AttackProb: defense.SharedAttackProb(defView, pa),
			Costs:      s.defenseCosts(),
			Budget:     budgets,
		})
		if err != nil {
			return nil, fmt.Errorf("core: collaborative defense: %w", err)
		}
		defended = cinv.Defended
		for _, shares := range cinv.Share {
			for _, v := range shares {
				spent += v
			}
		}
	} else {
		invs, err := defense.PlanAllIndependent(defView, s.Ownership, pa,
			s.defenseCosts(), cfg.DefenseBudgetPerActor)
		if err != nil {
			return nil, fmt.Errorf("core: independent defense: %w", err)
		}
		defended = defense.Union(invs)
		for _, inv := range invs {
			spent += inv.Spent
		}
	}

	// --- Settlement against ground truth.
	undef := adversary.Evaluate(plan, truth, targets, adversary.EvaluateOptions{})
	def := adversary.Evaluate(plan, truth, targets, adversary.EvaluateOptions{Defended: defended})

	return &GameResult{
		Plan:               plan,
		Anticipated:        plan.Anticipated,
		RealizedUndefended: undef,
		RealizedDefended:   def,
		Defended:           defended,
		DefenseSpent:       spent,
		Effectiveness:      undef - def,
	}, nil
}
