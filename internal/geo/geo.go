// Package geo provides the small geographic toolkit the westgrid model uses
// to derive transmission losses from distance: state centroids, great-circle
// (haversine) distances, and the paper's 1%-per-400-km gas pipeline loss
// rule (Section III-A2, citing FERC).
package geo

import "math"

// Point is a latitude/longitude pair in degrees.
type Point struct {
	Lat float64
	Lon float64
}

// EarthRadiusKm is the mean Earth radius used by Distance.
const EarthRadiusKm = 6371.0

// Distance returns the great-circle distance between two points in km.
func Distance(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1, lon1 := a.Lat*degToRad, a.Lon*degToRad
	lat2, lon2 := b.Lat*degToRad, b.Lon*degToRad
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// GasLossPer400Km is the typical fractional pipeline loss per 400 km the
// paper takes from FERC data.
const GasLossPer400Km = 0.01

// PipelineLoss returns the fractional loss for a gas pipeline of the given
// length using the paper's 1%/400 km rule, capped below 1.
func PipelineLoss(km float64) float64 {
	l := GasLossPer400Km * km / 400
	if l >= 0.99 {
		return 0.99
	}
	if l < 0 {
		return 0
	}
	return l
}

// LineLossPerKm is the per-km fractional loss we use for long-haul electric
// transmission (≈5% per 1000 km, a standard HVAC planning figure; the paper
// computes electric losses "similarly" to gas from centroid distances).
const LineLossPerKm = 0.05 / 1000

// TransmissionLoss returns the fractional loss for an electric line of the
// given length.
func TransmissionLoss(km float64) float64 {
	l := LineLossPerKm * km
	if l >= 0.99 {
		return 0.99
	}
	if l < 0 {
		return 0
	}
	return l
}

// StateCentroids holds approximate geographic centroids for the six western
// US states of the paper's experimental model (Figure 1).
var StateCentroids = map[string]Point{
	"WA": {47.38, -120.45},
	"OR": {43.93, -120.56},
	"CA": {37.18, -119.47},
	"NV": {39.33, -116.63},
	"AZ": {34.27, -111.66},
	"UT": {39.31, -111.67},
}

// States lists the modelled states in a stable order.
var States = []string{"WA", "OR", "CA", "NV", "AZ", "UT"}
