package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Seattle ↔ Los Angeles ≈ 1545 km.
	sea := Point{47.61, -122.33}
	la := Point{34.05, -118.24}
	d := Distance(sea, la)
	if d < 1500 || d > 1600 {
		t.Fatalf("SEA-LA distance = %v km, want ≈1545", d)
	}
	if Distance(sea, sea) != 0 {
		t.Fatal("zero distance to self")
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		wrap := func(x, lim float64) float64 { return math.Mod(math.Abs(x), lim) }
		a := Point{wrap(lat1, 89), wrap(lon1, 179)}
		b := Point{wrap(lat2, 89), wrap(lon2, 179)}
		d1, d2 := Distance(a, b), Distance(b, a)
		if math.IsNaN(d1) || d1 < 0 {
			return false
		}
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineLoss(t *testing.T) {
	if got := PipelineLoss(400); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("loss(400km) = %v, want 0.01", got)
	}
	if got := PipelineLoss(1000); math.Abs(got-0.025) > 1e-12 {
		t.Fatalf("loss(1000km) = %v, want 0.025", got)
	}
	if PipelineLoss(1e9) != 0.99 {
		t.Fatal("loss must cap at 0.99")
	}
	if PipelineLoss(-5) != 0 {
		t.Fatal("negative distance clamps to 0")
	}
}

func TestTransmissionLoss(t *testing.T) {
	if got := TransmissionLoss(1000); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("electric loss(1000km) = %v, want 0.05", got)
	}
	if TransmissionLoss(1e9) != 0.99 || TransmissionLoss(-1) != 0 {
		t.Fatal("clamps wrong")
	}
}

func TestStateCentroidsComplete(t *testing.T) {
	if len(States) != 6 {
		t.Fatalf("want 6 states, got %d", len(States))
	}
	for _, s := range States {
		p, ok := StateCentroids[s]
		if !ok {
			t.Fatalf("missing centroid for %s", s)
		}
		if p.Lat < 30 || p.Lat > 50 || p.Lon > -105 || p.Lon < -125 {
			t.Fatalf("%s centroid %v outside the western US", s, p)
		}
	}
}

func TestInterstateDistancesPlausible(t *testing.T) {
	// WA↔AZ is the longest modelled hop (~1600 km); WA↔OR the shortest
	// (~380 km). Sanity-check the centroid table produces sane hops.
	d := Distance(StateCentroids["WA"], StateCentroids["AZ"])
	if d < 1200 || d > 1900 {
		t.Fatalf("WA-AZ = %v km, implausible", d)
	}
	d = Distance(StateCentroids["WA"], StateCentroids["OR"])
	if d < 250 || d > 550 {
		t.Fatalf("WA-OR = %v km, implausible", d)
	}
}
