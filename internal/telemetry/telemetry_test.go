package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.events")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if r.Counter("test.events") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter not inert")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Name() != "" {
		t.Fatal("nil histogram not inert")
	}
	var s *Span
	s.SetWork(1)
	s.AddDegradations("x")
	s.SetRetries(1)
	s.End()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.work", []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	// v ≤ 1: {0, 1}; 1 < v ≤ 10: {2, 10}; 10 < v ≤ 100: {11, 100}; > 100: {1000}.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 7 || s.Sum != 1124 {
		t.Fatalf("count/sum = %d/%d, want 7/1124", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
}

func TestHistogramConcurrentDeterministicSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.sum", WorkEdges)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	n := int64(workers * per)
	if h.Count() != n || h.Sum() != n*(n-1)/2 {
		t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count(), h.Sum(), n, n*(n-1)/2)
	}
}

func TestBadEdgesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending edges did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 1})
}

// fakeClock is an injectable deterministic clock advancing a fixed step per
// reading.
func fakeClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t0 = t0.Add(step)
		return t0
	}
}

func TestSpansDeterministicWithInjectedClock(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	if sp := r.StartSpan("lp.solve", "x"); sp != nil {
		t.Fatal("tracing disabled but StartSpan returned a span")
	}
	r.EnableTracing(true)
	sp := r.StartSpan("lp.solve", "dispatch")
	sp.SetWork(42)
	sp.AddDegradations("bland-restart: test")
	sp.SetRetries(1)
	sp.End()
	got := r.Snapshot(SnapshotOptions{Spans: true})
	if len(got.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(got.Spans))
	}
	s := got.Spans[0]
	if s.Stage != "lp.solve" || s.Problem != "dispatch" || s.Work != 42 ||
		s.Retries != 1 || len(s.Degradations) != 1 {
		t.Fatalf("span = %+v", s)
	}
	// Start and End each read the clock once: exactly one step.
	if s.DurationNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("duration = %dns, want %dns", s.DurationNS, time.Millisecond.Nanoseconds())
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(true)
	for i := 0; i < spanCap+10; i++ {
		sp := r.StartSpan("s", "")
		sp.SetWork(int64(i))
		sp.End()
	}
	got := r.Snapshot(SnapshotOptions{Spans: true})
	if len(got.Spans) != spanCap {
		t.Fatalf("retained %d spans, want %d", len(got.Spans), spanCap)
	}
	if got.SpansDropped != 10 {
		t.Fatalf("dropped = %d, want 10", got.SpansDropped)
	}
	// Oldest-first: the first retained span is the 11th recorded.
	if got.Spans[0].Work != 10 || got.Spans[spanCap-1].Work != spanCap+9 {
		t.Fatalf("ring order wrong: first=%d last=%d", got.Spans[0].Work, got.Spans[spanCap-1].Work)
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("b.second").Add(2)
		r.Counter("a.first").Add(1)
		r.Histogram("h.work", WorkEdges).Observe(7)
		r.Timing("t.ns").Observe(12345) // must NOT appear in default snapshot
		return r
	}
	s1, err1 := mk().Snapshot(SnapshotOptions{}).MarshalIndented()
	s2, err2 := mk().Snapshot(SnapshotOptions{}).MarshalIndented()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", s1, s2)
	}
	if bytes.Contains(s1, []byte("t.ns")) || bytes.Contains(s1, []byte("timings")) {
		t.Fatalf("default snapshot leaked timing data:\n%s", s1)
	}
	full := mk().Snapshot(SnapshotOptions{Timings: true})
	if full.Timings["t.ns"].Count != 1 {
		t.Fatalf("timings section missing: %+v", full.Timings)
	}
}

func TestResetZeroesEverything(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(true)
	c := r.Counter("c")
	h := r.Histogram("h", WorkEdges)
	c.Add(3)
	h.Observe(5)
	sp := r.StartSpan("s", "")
	sp.End()
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset left counter/histogram state")
	}
	if got := r.Snapshot(SnapshotOptions{Spans: true}); len(got.Spans) != 0 {
		t.Fatal("reset left spans")
	}
	// Instruments remain registered and usable after Reset.
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("counter identity lost across Reset")
	}
}

func TestWriteSnapshotAtomic(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(9)
	path := filepath.Join(t.TempDir(), "sub", "metrics.json")
	if err := r.WriteSnapshot(path, SnapshotOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["x"] != 9 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("snapshot missing trailing newline")
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add(4)
	srv, addr, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["served"] != 4 {
		t.Fatalf("/metrics counters = %v", snap.Counters)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	c := NewCounter("telemetry_test.default")
	h := NewHistogram("telemetry_test.hist", WorkEdges)
	tm := NewTiming("telemetry_test.timing")
	c.Inc()
	h.Observe(1)
	tm.Observe(1)
	snap := Default().Snapshot(SnapshotOptions{Timings: true})
	if snap.Counters["telemetry_test.default"] < 1 {
		t.Fatal("default counter not registered")
	}
	if snap.Histograms["telemetry_test.hist"].Count < 1 {
		t.Fatal("default histogram not registered")
	}
	if snap.Timings["telemetry_test.timing"].Count < 1 {
		t.Fatal("default timing not registered")
	}
}

func TestMergeHistogramSnapshots(t *testing.T) {
	mk := func(obs ...int64) HistogramSnapshot {
		r := NewRegistry()
		h := r.Histogram("h", []int64{10, 100})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot(SnapshotOptions{}).Histograms["h"]
	}
	m, ok := MergeHistogramSnapshots(mk(5, 50), mk(500, 7))
	if !ok {
		t.Fatal("same-layout merge refused")
	}
	if m.Count != 4 || m.Sum != 562 || m.Min != 5 || m.Max != 500 {
		t.Fatalf("merged = %+v", m)
	}
	if m.Buckets[0] != 2 || m.Buckets[1] != 1 || m.Buckets[2] != 1 {
		t.Fatalf("merged buckets = %v", m.Buckets)
	}

	// Min/Max from an empty side must not poison the merge (an empty
	// snapshot's Min/Max are zero values, not observations).
	m, ok = MergeHistogramSnapshots(mk(), mk(50))
	if !ok || m.Count != 1 || m.Min != 50 || m.Max != 50 {
		t.Fatalf("empty-left merge = %+v ok=%v", m, ok)
	}
	m, ok = MergeHistogramSnapshots(mk(50), mk())
	if !ok || m.Count != 1 || m.Min != 50 || m.Max != 50 {
		t.Fatalf("empty-right merge = %+v ok=%v", m, ok)
	}

	// Differing edge vectors refuse to merge.
	other := NewRegistry()
	other.Histogram("h", []int64{1, 2, 3}).Observe(1)
	if _, ok := MergeHistogramSnapshots(mk(5), other.Snapshot(SnapshotOptions{}).Histograms["h"]); ok {
		t.Fatal("cross-layout merge accepted")
	}
}
