// Cross-process trace propagation: a serializable trace context in the W3C
// traceparent wire format, carried over an environment variable to child
// cpsexp shards and over an HTTP header to cpsservd, so spans recorded in
// different processes stitch into one fleet-wide tree.
//
// Identity model: every process owns a random 64-bit span base; a span's
// *global* ID is the 16-hex rendering of base XOR its registry-local ID.
// Local parent links (ParentID) stay small integers; cross-process links are
// carried as a RemoteParent global ID on the child process's root spans. The
// Chrome trace export renders both as "gid"/"pgid" args, which is what
// MergeChromeTraces resolves when stitching per-process trace files.
//
// Trace IDs and span bases are drawn from crypto/rand. They live only in the
// nondeterministic sections of a snapshot (spans, trace identity), never in
// the deterministic counters/histograms sections, so the two-run
// byte-identity contract is untouched.
package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
)

// TraceParentEnv is the environment variable the shard supervisor sets on
// child cpsexp processes. A child that finds it at startup (cli.StartRun)
// adopts the trace ID, remote-parents its root spans to the supervisor's
// per-shard span, and enables tracing.
const TraceParentEnv = "CPSGUARD_TRACEPARENT"

// TraceContext is a serializable point in a distributed trace: which trace,
// and which span is the parent of whatever the receiver does next.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, not all zero.
	TraceID string
	// SpanID is the parent span's global ID: 16 lowercase hex characters,
	// not all zero.
	SpanID string
}

// Valid reports whether both fields are well-formed per the W3C rules.
func (tc TraceContext) Valid() bool {
	return isLowerHex(tc.TraceID, 32) && !allZero(tc.TraceID) &&
		isLowerHex(tc.SpanID, 16) && !allZero(tc.SpanID)
}

// TraceParent renders the context in the W3C traceparent wire format,
// version 00 with the sampled flag set:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-01
func (tc TraceContext) TraceParent() string {
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceParent parses a W3C traceparent header value. Only version 00 is
// accepted; trace and parent IDs must be lowercase hex and not all zero.
func ParseTraceParent(s string) (TraceContext, error) {
	// 00-{32}-{16}-{2} = 2+1+32+1+16+1+2 = 55 bytes.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, fmt.Errorf("telemetry: malformed traceparent %q", s)
	}
	if s[:2] != "00" {
		return TraceContext{}, fmt.Errorf("telemetry: unsupported traceparent version %q", s[:2])
	}
	tc := TraceContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !isLowerHex(s[53:55], 2) {
		return TraceContext{}, fmt.Errorf("telemetry: malformed traceparent flags %q", s[53:55])
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("telemetry: invalid traceparent ids in %q", s)
	}
	return tc, nil
}

// TraceContextFromEnv reads and parses TraceParentEnv. The second return is
// false when the variable is unset or malformed — a malformed value is
// ignored rather than fatal, because trace propagation is best-effort
// observability, never control flow.
func TraceContextFromEnv() (TraceContext, bool) {
	v := os.Getenv(TraceParentEnv)
	if v == "" {
		return TraceContext{}, false
	}
	tc, err := ParseTraceParent(v)
	if err != nil {
		return TraceContext{}, false
	}
	return tc, true
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randUint64 draws 8 random bytes. crypto/rand failure is vanishingly rare;
// the fallback mixes the PID so two shards still get distinct bases.
func randUint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15 * uint64(os.Getpid()+1)
	}
	return binary.BigEndian.Uint64(b[:])
}

// newTraceID renders 16 random bytes as a 32-hex trace ID.
func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x%016x", randUint64(), randUint64())
	}
	return fmt.Sprintf("%x", b)
}

// TraceID returns the registry's trace identity, generating one on first
// use. Every span recorded by this process belongs to this trace unless
// SetTraceContext adopted an inherited one first.
func (r *Registry) TraceID() string {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceID == "" {
		r.traceID = newTraceID()
	}
	return r.traceID
}

// SetTraceContext adopts an inherited trace context: subsequent spans carry
// tc.TraceID, and root spans (no local parent) remote-parent to tc.SpanID so
// they nest under the launching process's span after a fleet merge. Invalid
// contexts are ignored.
func (r *Registry) SetTraceContext(tc TraceContext) {
	if !tc.Valid() {
		return
	}
	r.traceMu.Lock()
	r.traceID = tc.TraceID
	r.remoteParent = tc.SpanID
	r.traceMu.Unlock()
}

// remoteParentID reads the inherited parent global span ID ("" when this
// process is a trace root).
func (r *Registry) remoteParentID() string {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return r.remoteParent
}

// SetLabel names this process in trace exports ("cpsexp", "cpsexp shard
// 0/2", "cpsservd"); the Chrome export emits it as the process_name.
func (r *Registry) SetLabel(label string) {
	r.traceMu.Lock()
	r.label = label
	r.traceMu.Unlock()
}

// Label returns the process label set by SetLabel.
func (r *Registry) Label() string {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return r.label
}

// spanBaseID returns the process's random span base, seeding it on first
// use. Base 0 is reserved for "no base" (legacy snapshots).
func (r *Registry) spanBaseID() uint64 {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	for r.spanBase == 0 {
		r.spanBase = randUint64()
	}
	return r.spanBase
}

// GlobalSpanID renders a registry-local span ID as its process-unique
// 16-hex global form (span base XOR local ID). id 0 (a nil span) yields "".
func (r *Registry) GlobalSpanID(id uint64) string {
	if r == nil || id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", r.spanBaseID()^id)
}

// ChildTraceContext builds the context to hand a child process (or emit on
// an HTTP response) so the child's spans parent under sp. With tracing off
// or a nil span it returns false and nothing is propagated.
func (r *Registry) ChildTraceContext(sp *Span) (TraceContext, bool) {
	if r == nil || sp == nil || !r.Tracing() {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: r.TraceID(), SpanID: r.GlobalSpanID(sp.ID())}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}
