// Opt-in debug HTTP endpoint: JSON metrics, expvar, and pprof on one mux.
// Exposed by `cpsexp -debug-addr` (and cpsattack) so a long sweep can be
// profiled and watched live without touching its output files.
package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the registry's full snapshot (timings and spans
// included) as indented JSON.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		data, err := r.Snapshot(SnapshotOptions{Timings: true, Spans: true}).MarshalIndented()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}

// DebugMux builds the debug mux: /metrics (JSON snapshot), /metrics/prom
// (Prometheus text exposition), /debug/vars (expvar, including the published
// telemetry snapshot), and the standard
// /debug/pprof endpoints. Handlers are wired explicitly instead of importing
// net/http/pprof for its DefaultServeMux side effect, so binaries that never
// opt in expose nothing.
func (r *Registry) DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/metrics/prom", r.PromHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060") in a
// background goroutine and returns the server plus the bound address (useful
// with ":0"). The caller owns shutdown via srv.Close.
func (r *Registry) ServeDebug(addr string) (*http.Server, string, error) {
	return r.ServeDebugWith(addr, nil)
}

// ServeDebugWith is ServeDebug with a hook to mount extra handlers on the
// same mux before it starts serving — how cpsexp's shard-aggregation
// endpoints ride the existing -debug-addr listener instead of needing a
// second port.
func (r *Registry) ServeDebugWith(addr string, register func(mux *http.ServeMux)) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := r.DebugMux()
	if register != nil {
		register(mux)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
