// Per-solve span traces: one record per instrumented solve or trial, kept in
// a bounded ring so a million-solve sweep holds the most recent window
// rather than growing without bound. Durations come from the registry clock,
// so tests with a fake clock get deterministic traces.
//
// Spans form trees: StartSpanCtx reads the active parent span out of a
// context.Context and threads the child back in, so a trial's span parents
// the round it plays, which parents the adversary search, which parents the
// MILP relaxations, which parent the simplex solves. The committed records
// carry (ID, ParentID, StartNS), which is exactly what the Chrome
// trace_event export (trace.go) needs to render the run as nested tracks.
package telemetry

import (
	"context"
	"sync"
	"time"
)

// spanCap bounds the ring by default. At ~150 bytes a record this caps
// trace memory near 75 KiB regardless of sweep length; observability runs
// that want the full tree raise it with SetSpanCapacity.
const spanCap = 512

// SpanRecord is one completed span as exported in snapshots.
type SpanRecord struct {
	// ID is the span's registry-unique identifier (1-based; assigned in
	// start order).
	ID uint64 `json:"id"`
	// ParentID is the ID of the enclosing span, or 0 for a root span.
	// Parents are threaded through context.Context by StartSpanCtx.
	ParentID uint64 `json:"parent_id,omitempty"`
	// RemoteParent is the 16-hex *global* ID of a parent span in another
	// process (inherited via SetTraceContext or set per span), recorded on
	// root spans so a fleet merge can stitch process trees together. Empty
	// when the span has a local parent or the process is a trace root.
	RemoteParent string `json:"remote_parent,omitempty"`
	// Stage names the instrumented operation ("lp.solve", "milp.solve",
	// "adversary.solve", "experiments.trial", "experiments.point").
	Stage string `json:"stage"`
	// Problem is the solve's problem or trial label (may be empty).
	Problem string `json:"problem,omitempty"`
	// Work is the solve's logical work: simplex pivots, branch-and-bound
	// nodes, or trials, depending on Stage.
	Work int64 `json:"work"`
	// Degradations lists resilience fallbacks applied during the span
	// ("bland-restart: ...", "greedy: ...", "watchdog: ...").
	Degradations []string `json:"degradations,omitempty"`
	// Retries counts retry/requeue attempts consumed by the span.
	Retries int `json:"retries,omitempty"`
	// StartNS is the span's start instant on the registry clock
	// (UnixNano), so exported spans order and nest without reference to
	// the ring's insertion order.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span's wall-clock duration on the registry clock.
	DurationNS int64 `json:"duration_ns"`
}

// A Span is an in-flight trace record. A nil *Span (tracing disabled) is
// valid: every method is a no-op, so instrumentation sites never branch.
type Span struct {
	r     *Registry
	start time.Time

	// mu guards rec: a span threaded through a context can receive
	// degradations/retries from code running in worker goroutines.
	mu  sync.Mutex
	rec SpanRecord
}

// newSpan allocates an in-flight span with a fresh ID.
func (r *Registry) newSpan(stage, problem string) *Span {
	start := r.Now()
	return &Span{
		r:     r,
		start: start,
		rec: SpanRecord{
			ID:      r.spanID.Add(1),
			Stage:   stage,
			Problem: problem,
			StartNS: start.UnixNano(),
		},
	}
}

// StartSpan opens a root span when tracing is enabled, else returns nil.
// Root spans inherit the registry's remote parent (if a trace context was
// adopted from a supervisor or an HTTP caller), so they nest under the
// launching process's span after a fleet merge.
func (r *Registry) StartSpan(stage, problem string) *Span {
	if r == nil || !r.tracing.Load() {
		return nil
	}
	sp := r.newSpan(stage, problem)
	sp.rec.RemoteParent = r.remoteParentID()
	return sp
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active parent span. A nil
// span returns ctx unchanged; a nil ctx is promoted to context.Background.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil. Nil-safe
// on a nil context.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpanCtx opens a span parented to the active span in ctx (if any) and
// returns the span plus a derived context carrying it, so solves started
// under the returned context become its children. With tracing disabled it
// returns (nil, ctx) — the instrumentation-site cost is one atomic load.
func (r *Registry) StartSpanCtx(ctx context.Context, stage, problem string) (*Span, context.Context) {
	if r == nil || !r.tracing.Load() {
		return nil, ctx
	}
	sp := r.newSpan(stage, problem)
	if parent := SpanFromContext(ctx); parent != nil {
		sp.rec.ParentID = parent.rec.ID
	} else {
		sp.rec.RemoteParent = r.remoteParentID()
	}
	return sp, ContextWithSpan(ctx, sp)
}

// SetWork records the span's logical work (pivots, nodes, trials).
func (s *Span) SetWork(n int64) {
	if s != nil {
		s.mu.Lock()
		s.rec.Work = n
		s.mu.Unlock()
	}
}

// AddDegradations appends resilience-fallback records.
func (s *Span) AddDegradations(d ...string) {
	if s != nil && len(d) > 0 {
		s.mu.Lock()
		s.rec.Degradations = append(s.rec.Degradations, d...)
		s.mu.Unlock()
	}
}

// SetRetries records how many retries/requeues the span consumed.
func (s *Span) SetRetries(n int) {
	if s != nil {
		s.mu.Lock()
		s.rec.Retries = n
		s.mu.Unlock()
	}
}

// AddRetries adds n to the span's retry count (used by the checkpoint layer,
// which learns about retries one at a time).
func (s *Span) AddRetries(n int) {
	if s != nil {
		s.mu.Lock()
		s.rec.Retries += n
		s.mu.Unlock()
	}
}

// SetRemoteParent overrides the span's cross-process parent with a 16-hex
// global span ID — how cpsservd parents a request span under the calling
// client's span from its traceparent header, per request rather than per
// process. A local parent link, when present, takes precedence in exports.
func (s *Span) SetRemoteParent(gid string) {
	if s != nil && gid != "" {
		s.mu.Lock()
		s.rec.RemoteParent = gid
		s.mu.Unlock()
	}
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// End stamps the duration and commits the record to the registry's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec.DurationNS = s.r.Now().Sub(s.start).Nanoseconds()
	rec := s.rec
	s.mu.Unlock()
	s.r.spans.add(rec)
}

// spanRing is a bounded FIFO of completed spans. Appends are rare relative
// to counter updates (one per solve, not per pivot), so a mutex suffices.
type spanRing struct {
	mu      sync.Mutex
	cap     int // 0 means spanCap
	buf     []SpanRecord
	next    int // insertion cursor once the ring is full
	dropped int64
}

func (r *spanRing) capacity() int {
	if r.cap > 0 {
		return r.cap
	}
	return spanCap
}

func (r *spanRing) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.capacity() {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % r.capacity()
	r.dropped++
}

// records returns the retained spans oldest-first plus the overwrite count.
func (r *spanRing) records() ([]SpanRecord, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, r.dropped
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = nil
	r.next = 0
	r.dropped = 0
}

func (r *spanRing) setCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cap = n
	r.buf = nil
	r.next = 0
	r.dropped = 0
}

// SetSpanCapacity resizes the span ring (dropping retained spans) so
// observability runs can keep a full trace tree instead of the default
// 512-span window. n ≤ 0 restores the default.
func (r *Registry) SetSpanCapacity(n int) {
	if n <= 0 {
		n = 0
	}
	r.spans.setCap(n)
}
