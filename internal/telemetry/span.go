// Per-solve span traces: one record per instrumented solve or trial, kept in
// a bounded ring so a million-solve sweep holds the most recent window
// rather than growing without bound. Durations come from the registry clock,
// so tests with a fake clock get deterministic traces.
package telemetry

import (
	"sync"
	"time"
)

// spanCap bounds the ring. At ~100 bytes a record this caps trace memory
// near 64 KiB regardless of sweep length.
const spanCap = 512

// SpanRecord is one completed span as exported in snapshots.
type SpanRecord struct {
	// Stage names the instrumented operation ("lp.solve", "milp.solve",
	// "adversary.solve", "checkpoint.trial", "experiments.point").
	Stage string `json:"stage"`
	// Problem is the solve's problem or trial label (may be empty).
	Problem string `json:"problem,omitempty"`
	// Work is the solve's logical work: simplex pivots, branch-and-bound
	// nodes, or trials, depending on Stage.
	Work int64 `json:"work"`
	// Degradations lists resilience fallbacks applied during the span
	// ("bland-restart: ...", "greedy: ...").
	Degradations []string `json:"degradations,omitempty"`
	// Retries counts retry/requeue attempts consumed by the span.
	Retries int `json:"retries,omitempty"`
	// DurationNS is the span's wall-clock duration on the registry clock.
	DurationNS int64 `json:"duration_ns"`
}

// A Span is an in-flight trace record. A nil *Span (tracing disabled) is
// valid: every method is a no-op, so instrumentation sites never branch.
type Span struct {
	r     *Registry
	rec   SpanRecord
	start time.Time
}

// StartSpan opens a span when tracing is enabled, else returns nil.
func (r *Registry) StartSpan(stage, problem string) *Span {
	if r == nil || !r.tracing.Load() {
		return nil
	}
	return &Span{r: r, rec: SpanRecord{Stage: stage, Problem: problem}, start: r.Now()}
}

// SetWork records the span's logical work (pivots, nodes, trials).
func (s *Span) SetWork(n int64) {
	if s != nil {
		s.rec.Work = n
	}
}

// AddDegradations appends resilience-fallback records.
func (s *Span) AddDegradations(d ...string) {
	if s != nil && len(d) > 0 {
		s.rec.Degradations = append(s.rec.Degradations, d...)
	}
}

// SetRetries records how many retries/requeues the span consumed.
func (s *Span) SetRetries(n int) {
	if s != nil {
		s.rec.Retries = n
	}
}

// End stamps the duration and commits the record to the registry's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.DurationNS = s.r.Now().Sub(s.start).Nanoseconds()
	s.r.spans.add(s.rec)
}

// spanRing is a bounded FIFO of completed spans. Appends are rare relative
// to counter updates (one per solve, not per pivot), so a mutex suffices.
type spanRing struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int // insertion cursor once the ring is full
	dropped int64
}

func (r *spanRing) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < spanCap {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % spanCap
	r.dropped++
}

// records returns the retained spans oldest-first plus the overwrite count.
func (r *spanRing) records() ([]SpanRecord, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, r.dropped
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = nil
	r.next = 0
	r.dropped = 0
}
