// Fixed-edge histograms over integer-valued observations. Values are int64
// (pivots, nodes, nanoseconds) so the running sum is exact and commutative —
// the snapshot is byte-identical regardless of the order concurrent workers
// observed in, which float accumulation could not guarantee.
package telemetry

import "sync/atomic"

// Standard bucket edges. Documented in DESIGN.md §10; changing them is a
// schema change.
var (
	// WorkEdges buckets logical work per solve (pivots, nodes,
	// evaluations): 1, 2, 5, 10, ... decade steps up to 10^6.
	WorkEdges = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 1_000_000}
	// TimingEdges buckets wall-clock nanoseconds: 1µs, 10µs, 100µs, 1ms,
	// 10ms, 100ms, 1s, 10s.
	TimingEdges = []int64{1_000, 10_000, 100_000, 1_000_000,
		10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000}
	// DepthEdges buckets small structural quantities (fallback depth,
	// retries, requeues).
	DepthEdges = []int64{0, 1, 2, 3, 5, 10}
)

// A Histogram counts integer observations into fixed buckets. Observe is
// lock-free: one atomic add for the bucket, one for the count, one for the
// sum. Nil-safe like Counter.
type Histogram struct {
	name  string
	edges []int64
	// buckets[i] counts observations v ≤ edges[i] (and > edges[i-1]);
	// buckets[len(edges)] counts v > edges[len(edges)-1].
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
}

func newHistogram(name string, edges []int64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("telemetry: histogram edges must be strictly ascending: " + name)
		}
	}
	h := &Histogram{name: name, edges: edges, buckets: make([]atomic.Int64, len(edges)+1)}
	h.reset()
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first edge ≥ v.
	lo, hi := 0, len(h.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.edges[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	updateMin(&h.min, v)
	updateMax(&h.max, v)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the exact sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name reports the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	h.max.Store(-int64(^uint64(0)>>1) - 1)
}

// snapshot copies the histogram state. Concurrent Observes may land between
// field reads; each field read is individually atomic, so the snapshot is
// only guaranteed exact when taken after the instrumented work settles
// (which is when sweeps take it).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Edges:   h.edges,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// HistogramSnapshot is the JSON form of a histogram: Buckets[i] counts
// observations ≤ Edges[i], with one final overflow bucket.
type HistogramSnapshot struct {
	Edges   []int64 `json:"edges"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min,omitempty"`
	Max     int64   `json:"max,omitempty"`
}

func updateMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func updateMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MergeHistogramSnapshots combines two snapshots of histograms that share a
// bucket layout: elementwise bucket sums, summed count and sum, and the
// tighter min/max (respecting that Min/Max are only meaningful when the
// side's Count is positive). It returns false when the edge vectors differ —
// merging distributions binned on different scales would silently corrupt
// both, so the caller must surface the conflict instead.
func MergeHistogramSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(a.Edges) != len(b.Edges) || len(a.Buckets) != len(b.Buckets) {
		return HistogramSnapshot{}, false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return HistogramSnapshot{}, false
		}
	}
	m := HistogramSnapshot{
		Edges:   a.Edges,
		Buckets: make([]int64, len(a.Buckets)),
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
	}
	for i := range a.Buckets {
		m.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	switch {
	case a.Count > 0 && b.Count > 0:
		m.Min, m.Max = min(a.Min, b.Min), max(a.Max, b.Max)
	case a.Count > 0:
		m.Min, m.Max = a.Min, a.Max
	case b.Count > 0:
		m.Min, m.Max = b.Min, b.Max
	}
	return m, true
}
