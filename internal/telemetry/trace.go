// Chrome trace_event export: the retained span tree rendered as a JSON file
// that chrome://tracing and Perfetto open directly. Each root span (a trial,
// a standalone solve) gets its own track; children nest inside parents by
// time containment, which the "X" (complete-event) phase renders as stacked
// slices.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"cpsguard/internal/atomicio"
)

// TraceEvent is one Chrome trace_event record. Only the fields this export
// uses are declared; see the Trace Event Format spec for the full set.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" (complete, with Dur) for spans, "M"
	// (metadata) for track names.
	Ph string `json:"ph"`
	// TS is the start timestamp in microseconds (fractional for
	// sub-microsecond precision), relative to the earliest span.
	TS float64 `json:"ts"`
	// Dur is the duration in microseconds (complete events only).
	Dur float64 `json:"dur,omitempty"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// Args carries the span payload: id, parent, problem, work, retries,
	// degradations.
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the trace-file envelope (JSON Object Format). The
// cpsguard-prefixed fields are extensions — viewers ignore unknown envelope
// keys — that carry what MergeChromeTraces needs to stitch per-process
// files onto one timeline.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// TraceID is the 32-hex distributed-trace ID shared by every process
	// that inherited the same trace context (empty on legacy files).
	TraceID string `json:"cpsguardTraceId,omitempty"`
	// BaseNS is the registry-clock UnixNano instant of ts=0, so traces
	// from different processes can be rebased onto one fleet timeline.
	BaseNS int64 `json:"cpsguardBaseNs,omitempty"`
}

// ChromeTrace renders the snapshot's span window as a Chrome trace. Spans
// are grouped into tracks by root ancestor: every root span (ParentID 0, or
// an orphan whose parent was evicted from the ring) opens a track, and its
// descendants draw nested inside it. Timestamps are rebased to the earliest
// retained span so the trace starts at t=0 regardless of wall-clock origin;
// the rebase origin is preserved in the envelope's BaseNS so a fleet merge
// can restore relative timing across processes. Events carry the recording
// process's real PID (from the snapshot's trace identity; 1 for legacy
// snapshots) and "gid"/"pgid" args — global span IDs — which is what makes
// parent links resolvable after per-process files are merged.
func (s *Snapshot) ChromeTrace() *ChromeTrace {
	ct := &ChromeTrace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms", TraceID: s.TraceID}
	if len(s.Spans) == 0 {
		return ct
	}
	pid := s.PID
	if pid == 0 {
		pid = 1
	}
	var base uint64
	if s.SpanBase != "" {
		if b, err := strconv.ParseUint(s.SpanBase, 16, 64); err == nil {
			base = b
		}
	}
	gid := func(id uint64) string { return fmt.Sprintf("%016x", base^id) }
	procName := s.Label
	if procName == "" {
		procName = fmt.Sprintf("pid %d", pid)
	}
	ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": procName},
	})
	byID := make(map[uint64]*SpanRecord, len(s.Spans))
	for i := range s.Spans {
		byID[s.Spans[i].ID] = &s.Spans[i]
	}
	// rootOf follows parent links until a root or a missing (evicted)
	// parent; the depth guard breaks pathological cycles that a corrupted
	// snapshot file could carry.
	rootOf := func(rec *SpanRecord) *SpanRecord {
		cur := rec
		for depth := 0; depth < 1024; depth++ {
			p, ok := byID[cur.ParentID]
			if cur.ParentID == 0 || !ok || p == cur {
				return cur
			}
			cur = p
		}
		return cur
	}

	// Stable processing order: by start time, ID breaking ties.
	order := make([]*SpanRecord, 0, len(s.Spans))
	minStart := s.Spans[0].StartNS
	for i := range s.Spans {
		order = append(order, &s.Spans[i])
		if s.Spans[i].StartNS < minStart {
			minStart = s.Spans[i].StartNS
		}
	}
	ct.BaseNS = minStart
	sort.Slice(order, func(a, b int) bool {
		if order[a].StartNS != order[b].StartNS {
			return order[a].StartNS < order[b].StartNS
		}
		return order[a].ID < order[b].ID
	})

	// Assign track IDs per root in first-appearance order and emit a
	// thread_name metadata event per track so the viewer labels lanes.
	tids := map[uint64]int{}
	for _, rec := range order {
		root := rootOf(rec)
		tid, ok := tids[root.ID]
		if !ok {
			tid = len(tids) + 1
			tids[root.ID] = tid
			label := root.Stage
			if root.Problem != "" {
				label += " " + root.Problem
			}
			ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": label},
			})
		}
		args := map[string]any{
			"id":   rec.ID,
			"work": rec.Work,
			"gid":  gid(rec.ID),
		}
		if rec.ParentID != 0 {
			args["parent"] = rec.ParentID
			args["pgid"] = gid(rec.ParentID)
		} else if rec.RemoteParent != "" {
			args["pgid"] = rec.RemoteParent
		}
		if rec.Problem != "" {
			args["problem"] = rec.Problem
		}
		if rec.Retries != 0 {
			args["retries"] = rec.Retries
		}
		if len(rec.Degradations) > 0 {
			args["degradations"] = rec.Degradations
		}
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: rec.Stage,
			Cat:  stageCategory(rec.Stage),
			Ph:   "X",
			TS:   float64(rec.StartNS-minStart) / 1e3,
			Dur:  float64(rec.DurationNS) / 1e3,
			PID:  pid,
			TID:  tid,
			Args: args,
		})
	}
	return ct
}

// stageCategory maps "lp.solve" → "lp" so the viewer can color by layer.
func stageCategory(stage string) string {
	for i := 0; i < len(stage); i++ {
		if stage[i] == '.' {
			return stage[:i]
		}
	}
	return stage
}

// MarshalIndented renders the trace as stable, human-diffable JSON with a
// trailing newline.
func (t *ChromeTrace) MarshalIndented() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode trace: %w", err)
	}
	return append(b, '\n'), nil
}

// ReadChromeTrace parses a trace file written by WriteChromeTrace.
func ReadChromeTrace(data []byte) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("telemetry: decode trace: %w", err)
	}
	return &t, nil
}

// WriteChromeTrace dumps the registry's retained span window to path as a
// Chrome trace, atomically (temp + fsync + rename via internal/atomicio).
func (r *Registry) WriteChromeTrace(path string) error {
	data, err := r.Snapshot(SnapshotOptions{Spans: true}).ChromeTrace().MarshalIndented()
	if err != nil {
		return err
	}
	return atomicio.MkdirAllAndWrite(path, data, 0o644)
}
