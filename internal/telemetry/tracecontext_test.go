package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tc := TraceContext{
		TraceID: "0123456789abcdef0123456789abcdef",
		SpanID:  "00f067aa0ba902b7",
	}
	if !tc.Valid() {
		t.Fatal("well-formed context reported invalid")
	}
	wire := tc.TraceParent()
	if wire != "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01" {
		t.Fatalf("wire = %q", wire)
	}
	got, err := ParseTraceParent(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		// Wrong version.
		"01-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
		// Uppercase hex.
		"00-0123456789ABCDEF0123456789abcdef-00f067aa0ba902b7-01",
		// All-zero trace id.
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		// All-zero span id.
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",
		// Non-hex flags.
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-zz",
		// Truncated.
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-",
		// Separators in the wrong place.
		"00x0123456789abcdef0123456789abcdefx00f067aa0ba902b7x01",
	}
	for _, s := range bad {
		if _, err := ParseTraceParent(s); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted", s)
		}
	}
}

func TestTraceContextFromEnv(t *testing.T) {
	t.Setenv(TraceParentEnv, "")
	if _, ok := TraceContextFromEnv(); ok {
		t.Fatal("empty env var parsed")
	}
	t.Setenv(TraceParentEnv, "garbage")
	if _, ok := TraceContextFromEnv(); ok {
		t.Fatal("malformed env var parsed")
	}
	t.Setenv(TraceParentEnv, "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	tc, ok := TraceContextFromEnv()
	if !ok || tc.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("env parse: ok=%v tc=%+v", ok, tc)
	}
}

func TestRegistryTraceIdentity(t *testing.T) {
	r := NewRegistry()
	id := r.TraceID()
	if !isLowerHex(id, 32) || allZero(id) {
		t.Fatalf("generated trace id %q not well-formed", id)
	}
	if r.TraceID() != id {
		t.Fatal("trace id not stable across calls")
	}
	// Adopting an inherited context replaces the identity and remote-parents
	// root spans.
	tc := TraceContext{TraceID: strings.Repeat("ab", 16), SpanID: "00f067aa0ba902b7"}
	r.SetTraceContext(tc)
	if r.TraceID() != tc.TraceID {
		t.Fatalf("trace id = %q after adopt, want %q", r.TraceID(), tc.TraceID)
	}
	r.EnableTracing(true)
	root, ctx := r.StartSpanCtx(context.Background(), "experiments.trial", "t0")
	child, _ := r.StartSpanCtx(ctx, "lp.solve", "d")
	child.End()
	root.End()
	spans, _ := r.spans.records()
	byStage := map[string]SpanRecord{}
	for _, s := range spans {
		byStage[s.Stage] = s
	}
	if got := byStage["experiments.trial"].RemoteParent; got != tc.SpanID {
		t.Fatalf("root remote parent = %q, want %q", got, tc.SpanID)
	}
	if got := byStage["lp.solve"].RemoteParent; got != "" {
		t.Fatalf("locally-parented span carries remote parent %q", got)
	}

	// Invalid contexts are ignored, not adopted.
	r.SetTraceContext(TraceContext{TraceID: "short", SpanID: "also-bad"})
	if r.TraceID() != tc.TraceID {
		t.Fatal("invalid context overwrote the trace id")
	}
}

func TestGlobalSpanIDs(t *testing.T) {
	r := NewRegistry()
	if got := r.GlobalSpanID(0); got != "" {
		t.Fatalf("GlobalSpanID(0) = %q, want empty", got)
	}
	a, b := r.GlobalSpanID(1), r.GlobalSpanID(2)
	if !isLowerHex(a, 16) || !isLowerHex(b, 16) || a == b {
		t.Fatalf("global ids %q / %q malformed or colliding", a, b)
	}
	if r.GlobalSpanID(1) != a {
		t.Fatal("global id not stable")
	}
	// Two registries (two processes) produce distinct global ids for the
	// same local id, which is the whole point of the span base.
	if NewRegistry().GlobalSpanID(1) == a {
		t.Fatal("distinct registries share a span base")
	}
}

func TestChildTraceContext(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	if _, ok := r.ChildTraceContext(nil); ok {
		t.Fatal("nil span produced a child context")
	}
	r.EnableTracing(true)
	sp := r.StartSpan("shard.child", "0/2")
	tc, ok := r.ChildTraceContext(sp)
	if !ok || !tc.Valid() {
		t.Fatalf("child context: ok=%v tc=%+v", ok, tc)
	}
	if tc.TraceID != r.TraceID() {
		t.Fatal("child context carries a foreign trace id")
	}
	if tc.SpanID != r.GlobalSpanID(sp.ID()) {
		t.Fatal("child context span id is not the span's global id")
	}
	// The wire form round-trips, so what the supervisor puts in the env is
	// exactly what the child adopts.
	got, err := ParseTraceParent(tc.TraceParent())
	if err != nil || got != tc {
		t.Fatalf("wire round trip: %v, %+v", err, got)
	}
	r.EnableTracing(false)
	if _, ok := r.ChildTraceContext(sp); ok {
		t.Fatal("tracing off but child context produced")
	}
}

func TestSnapshotCarriesTraceIdentity(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	r.EnableTracing(true)
	r.SetLabel("unit-test")
	sp := r.StartSpan("lp.solve", "d")
	sp.End()

	s := r.Snapshot(SnapshotOptions{Spans: true})
	if s.TraceID == "" || s.SpanBase == "" || s.PID == 0 || s.Label != "unit-test" {
		t.Fatalf("identity missing from snapshot: %+v", s)
	}
	if !isLowerHex(s.SpanBase, 16) {
		t.Fatalf("span base %q not 16-hex", s.SpanBase)
	}
	// Deterministic snapshots never carry identity.
	if d := r.Snapshot(SnapshotOptions{}); d.TraceID != "" || d.SpanBase != "" || d.PID != 0 || d.Label != "" {
		t.Fatalf("deterministic snapshot leaked identity: %+v", d)
	}
	// Spans requested with tracing off (a post-run export after disabling)
	// also omits identity.
	r.EnableTracing(false)
	if d := r.Snapshot(SnapshotOptions{Spans: true}); d.TraceID != "" {
		t.Fatalf("tracing-off snapshot leaked identity: %+v", d)
	}
}
