// Package telemetry is the solver pipeline's quantitative flight recorder:
// lock-free counters, fixed-edge histograms, and per-solve span traces that
// every solver layer (lp, milp, adversary, defense, parallel, checkpoint,
// experiments, repeated) feeds as it works.
//
// The design contract is determinism first: counters and histograms record
// *logical* work — pivots, nodes, evaluations, retries, trials — whose totals
// are pure functions of the seeded inputs, so two identical runs produce
// byte-identical snapshots of the "counters" and "histograms" sections no
// matter how trials interleave across workers (atomic integer addition is
// commutative; nothing order-dependent is stored). Wall-clock measurements
// (queue waits, task durations) live in a separate "timings" section, and
// span durations come from an injectable clock, so tests pin them too.
//
// Exports, cheapest to richest:
//
//   - Snapshot / WriteSnapshot: a JSON dump, written atomically through
//     internal/atomicio at sweep end (cpsexp -metrics).
//   - expvar: PublishExpvar registers the full snapshot under
//     "cpsguard.telemetry" for any expvar scraper.
//   - ServeDebug: an opt-in HTTP endpoint (cpsexp -debug-addr) serving
//     /metrics alongside the standard /debug/pprof and /debug/vars.
//
// Hot-path cost is one atomic add per event. Instrumented packages declare
// their instruments once at init (NewCounter / NewHistogram / NewTiming) and
// never pay a map lookup per event. Span tracing is off by default
// (StartSpan returns a nil, no-op span) and enabled explicitly.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing, lock-free event counter. All
// methods are nil-safe so call sites never need guards.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name reports the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Registry holds a process's instruments. Most code uses the package-level
// Default registry through NewCounter / NewHistogram / NewTiming; separate
// registries exist so tests can isolate themselves completely.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	timings  map[string]*Histogram
	spans    spanRing
	spanID   atomic.Uint64
	tracing  atomic.Bool
	clock    atomic.Pointer[func() time.Time]

	// Trace identity (tracecontext.go): which distributed trace this
	// process's spans belong to, the inherited cross-process parent for
	// root spans, the random base that makes local span IDs globally
	// unique, and the process label for trace exports. Guarded by its own
	// mutex so span creation never contends with instrument registration.
	traceMu      sync.Mutex
	traceID      string
	remoteParent string
	spanBase     uint64
	label        string
}

// NewRegistry returns an empty registry using the real clock.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		timings:  map[string]*Histogram{},
	}
}

var def = NewRegistry()

// Default returns the process-wide registry every instrumented package
// records into.
func Default() *Registry { return def }

// Counter returns the registry's counter with the given name, creating it on
// first use. Registration is locked; subsequent Add calls are lock-free.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the registry's histogram with the given name and bucket
// edges, creating it on first use. Edges must be ascending; re-registration
// with different edges keeps the original (first writer wins — edges are part
// of the documented schema, not per-call-site configuration).
func (r *Registry) Histogram(name string, edges []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(name, edges)
	r.hists[name] = h
	return h
}

// Timing returns the registry's wall-clock histogram (nanosecond values on
// the standard latency edges), creating it on first use. Timings are
// reported in the snapshot's separate "timings" section because their
// contents depend on the machine and scheduling, not just the inputs.
func (r *Registry) Timing(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.timings[name]; ok {
		return h
	}
	h := newHistogram(name, TimingEdges)
	r.timings[name] = h
	return h
}

// SetClock replaces the registry's time source (nil restores time.Now).
// Tests install a fake clock so span durations — the only time-derived
// values on the deterministic path — are reproducible.
func (r *Registry) SetClock(now func() time.Time) {
	if now == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&now)
}

// Now reads the registry's clock.
func (r *Registry) Now() time.Time {
	if p := r.clock.Load(); p != nil {
		return (*p)()
	}
	return time.Now()
}

// EnableTracing switches span collection on or off (default off). With
// tracing off, StartSpan returns a nil span whose methods are no-ops, so
// call sites stay unconditional.
func (r *Registry) EnableTracing(on bool) { r.tracing.Store(on) }

// Tracing reports whether span collection is enabled.
func (r *Registry) Tracing() bool { return r.tracing.Load() }

// Reset zeroes every counter and histogram and drops collected spans. The
// instruments themselves survive (package-level instrument variables stay
// valid); only their state clears. Benchmarks use this to measure per-stage
// deltas.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, h := range r.timings {
		h.reset()
	}
	r.spans.reset()
	r.spanID.Store(0)
}

// counterNames returns the registered counter names, sorted.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstrumentNames returns every registered counter, histogram, and timing
// name, each list sorted. This is the surface the metric-name lint walks:
// any name an instrumented package registers shows up here, so the lint can
// enforce the exposition-safe charset over the whole fleet of instruments.
func (r *Registry) InstrumentNames() (counters, histograms, timings []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = r.counterNames()
	histograms = make([]string, 0, len(r.hists))
	for n := range r.hists {
		histograms = append(histograms, n)
	}
	sort.Strings(histograms)
	timings = make([]string, 0, len(r.timings))
	for n := range r.timings {
		timings = append(timings, n)
	}
	sort.Strings(timings)
	return counters, histograms, timings
}

// NewCounter registers (or fetches) a counter in the Default registry.
// Instrumented packages call this once per instrument at init.
func NewCounter(name string) *Counter { return def.Counter(name) }

// NewHistogram registers (or fetches) a histogram in the Default registry.
func NewHistogram(name string, edges []int64) *Histogram { return def.Histogram(name, edges) }

// NewTiming registers (or fetches) a wall-clock histogram in the Default
// registry.
func NewTiming(name string) *Histogram { return def.Timing(name) }
