// A strict parser for the Prometheus text exposition format — deliberately
// narrower than a scraper's: it accepts exactly what prom.go emits (plus
// HELP lines for generality) and errors on everything else. Tests round-trip
// /metrics/prom output through it, so any drift in the exposition — a
// non-cumulative bucket, a missing +Inf, a duplicate family, an unsorted
// mangle collision — fails loudly instead of producing a dashboard that
// silently lies.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name (including _bucket/_sum/_count).
	Name string
	// Labels holds the label set ({le="..."} for buckets; empty otherwise).
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// PromFamily is one parsed metric family: a # TYPE line and its samples.
type PromFamily struct {
	Name    string
	Type    string // "counter" or "histogram"
	Samples []PromSample
}

var promNameRe = func(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return false
	}
	return true
}

// ParsePrometheus parses exposition text into families, strictly:
//
//   - every sample must follow a # TYPE line declaring its family, and TYPE
//     must be counter or histogram;
//   - counter families carry exactly one unlabeled sample named after the
//     family;
//   - histogram families carry cumulative _bucket samples with strictly
//     ascending le values ending at +Inf, plus _sum and _count, with
//     _count equal to the +Inf bucket;
//   - no family or sample may repeat.
//
// It returns the families keyed by name plus their order of appearance.
func ParsePrometheus(data []byte) (map[string]*PromFamily, []string, error) {
	families := map[string]*PromFamily{}
	var order []string
	var cur *PromFamily
	finish := func() error {
		if cur == nil {
			return nil
		}
		if err := validatePromFamily(cur); err != nil {
			return err
		}
		cur = nil
		return nil
	}
	for lineNo, line := range strings.Split(string(data), "\n") {
		n := lineNo + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return nil, nil, fmt.Errorf("prom parse: line %d: unsupported comment %q", n, line)
			}
			name, typ := fields[2], fields[3]
			if !promNameRe(name) {
				return nil, nil, fmt.Errorf("prom parse: line %d: bad metric name %q", n, name)
			}
			if typ != "counter" && typ != "histogram" {
				return nil, nil, fmt.Errorf("prom parse: line %d: unsupported type %q", n, typ)
			}
			if _, dup := families[name]; dup {
				return nil, nil, fmt.Errorf("prom parse: line %d: duplicate family %q", n, name)
			}
			if err := finish(); err != nil {
				return nil, nil, err
			}
			cur = &PromFamily{Name: name, Type: typ}
			families[name] = cur
			order = append(order, name)
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, nil, fmt.Errorf("prom parse: line %d: %w", n, err)
		}
		if cur == nil {
			return nil, nil, fmt.Errorf("prom parse: line %d: sample %q before any # TYPE", n, sample.Name)
		}
		if !sampleInFamily(sample.Name, cur) {
			return nil, nil, fmt.Errorf("prom parse: line %d: sample %q outside family %q", n, sample.Name, cur.Name)
		}
		for _, prev := range cur.Samples {
			if prev.Name == sample.Name && labelsEqual(prev.Labels, sample.Labels) {
				return nil, nil, fmt.Errorf("prom parse: line %d: duplicate sample %q", n, sample.Name)
			}
		}
		cur.Samples = append(cur.Samples, sample)
	}
	if err := finish(); err != nil {
		return nil, nil, err
	}
	return families, order, nil
}

func sampleInFamily(name string, f *PromFamily) bool {
	if f.Type == "counter" {
		return name == f.Name
	}
	return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			if pair == "" {
				continue
			}
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			k, v := pair[:eq], pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("unquoted label value %q", v)
			}
			v = v[1 : len(v)-1]
			if strings.ContainsAny(v, `"\`) {
				return s, fmt.Errorf("escapes not supported in label value %q", v)
			}
			s.Labels[k] = v
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if !promNameRe(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func validatePromFamily(f *PromFamily) error {
	if f.Type == "counter" {
		if len(f.Samples) != 1 {
			return fmt.Errorf("prom parse: counter %q has %d samples, want 1", f.Name, len(f.Samples))
		}
		if len(f.Samples[0].Labels) != 0 {
			return fmt.Errorf("prom parse: counter %q sample has labels", f.Name)
		}
		if f.Samples[0].Value < 0 {
			return fmt.Errorf("prom parse: counter %q is negative", f.Name)
		}
		return nil
	}
	// Histogram: cumulative ascending buckets ending at +Inf, _sum, _count.
	var (
		les       []float64
		counts    []float64
		sawSum    bool
		sawCount  bool
		countVal  float64
		lastIsInf bool
	)
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			raw, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("prom parse: histogram %q bucket without le", f.Name)
			}
			le := math.Inf(1)
			if raw != "+Inf" {
				v, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return fmt.Errorf("prom parse: histogram %q bad le %q", f.Name, raw)
				}
				le = v
			}
			les = append(les, le)
			counts = append(counts, s.Value)
			lastIsInf = math.IsInf(le, 1)
		case f.Name + "_sum":
			sawSum = true
		case f.Name + "_count":
			sawCount = true
			countVal = s.Value
		}
	}
	if len(les) == 0 {
		return fmt.Errorf("prom parse: histogram %q has no buckets", f.Name)
	}
	if !sort.Float64sAreSorted(les) || !strictlyAscending(les) {
		return fmt.Errorf("prom parse: histogram %q buckets not strictly ascending", f.Name)
	}
	if !lastIsInf {
		return fmt.Errorf("prom parse: histogram %q missing terminal +Inf bucket", f.Name)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			return fmt.Errorf("prom parse: histogram %q buckets not cumulative", f.Name)
		}
	}
	if !sawSum {
		return fmt.Errorf("prom parse: histogram %q missing _sum", f.Name)
	}
	if !sawCount {
		return fmt.Errorf("prom parse: histogram %q missing _count", f.Name)
	}
	if countVal != counts[len(counts)-1] {
		return fmt.Errorf("prom parse: histogram %q _count %g != +Inf bucket %g",
			f.Name, countVal, counts[len(counts)-1])
	}
	return nil
}

func strictlyAscending(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			return false
		}
	}
	return true
}
