package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getBody fetches path from the test server and returns status + body.
func getBody(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestMetricsHandlerJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.test_counter").Add(3)
	r.Histogram("http.test_hist", WorkEdges).Observe(7)
	r.Timing("http.test_timing").Observe(1000)
	r.EnableTracing(true)
	sp := r.StartSpan("http.test_span", "p")
	sp.End()

	srv := httptest.NewServer(r.DebugMux())
	defer srv.Close()

	code, body := getBody(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", got)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not a Snapshot: %v", err)
	}
	if snap.Counters["http.test_counter"] != 3 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["http.test_hist"].Count != 1 {
		t.Fatalf("histograms = %v", snap.Histograms)
	}
	// The live endpoint always includes the nondeterministic sections.
	if snap.Timings["http.test_timing"].Count != 1 {
		t.Fatalf("timings missing: %v", snap.Timings)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Stage != "http.test_span" {
		t.Fatalf("spans = %v", snap.Spans)
	}
	// The raw body exposes every documented top-level section key.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "histograms", "timings", "spans"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/metrics missing section %q (have %v)", key, raw)
		}
	}
}

func TestDebugVarsRegistersTelemetryExpvar(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.DebugMux()) // DebugMux calls PublishExpvar
	defer srv.Close()

	code, body := getBody(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["cpsguard.telemetry"]
	if !ok {
		t.Fatal("/debug/vars missing cpsguard.telemetry")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("cpsguard.telemetry expvar not a Snapshot: %v", err)
	}
}

func TestDebugMuxUnknownPathsAre404(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.DebugMux())
	defer srv.Close()

	for _, path := range []string{"/", "/unknown", "/metricsx", "/debug", "/debug/unknown"} {
		if code, _ := getBody(t, srv, path); code != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, code)
		}
	}
	// The wired endpoints keep working alongside the 404s.
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		if code, _ := getBody(t, srv, path); code != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, code)
		}
	}
}
