package telemetry

import (
	"testing"
	"time"
)

// The artifact readers feed on files that crashes, partial copies, and
// foreign tools can mangle; these tests pin the error paths the happy-path
// battery never reaches.

func TestReadSnapshotErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad json":       "{not json",
		"wrong type":     `{"counters": "nope"}`,
		"truncated":      `{"counters": {"lp.pivots": 4`,
		"non-object":     `[1,2,3]`,
		"number counter": `{"counters": {"lp.pivots": "many"}}`,
	}
	for name, data := range cases {
		if _, err := ReadSnapshot([]byte(data)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted %q", name, data)
		}
	}
}

func TestReadSnapshotTruncatedRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("lp.pivots").Add(42)
	r.Histogram("lp.work_per_solve", WorkEdges).Observe(17)
	data, err := r.Snapshot(SnapshotOptions{Timings: true}).MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	// The intact dump parses; every strict prefix of it (a torn write that
	// bypassed atomicio, or a partial download) must error, never silently
	// yield a half-read snapshot.
	if _, err := ReadSnapshot(data); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
	for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 2} {
		if _, err := ReadSnapshot(data[:cut]); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
}

func TestReadChromeTraceErrors(t *testing.T) {
	for name, data := range map[string]string{
		"empty":     "",
		"bad json":  "{not json",
		"truncated": `{"traceEvents": [{"name": "x"`,
		"wrong":     `{"traceEvents": 7}`,
	} {
		if _, err := ReadChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: ReadChromeTrace accepted %q", name, data)
		}
	}
}

func TestReadChromeTraceTruncatedRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	r.EnableTracing(true)
	sp := r.StartSpan("lp.solve", "d")
	sp.End()
	data, err := r.Snapshot(SnapshotOptions{Spans: true}).ChromeTrace().MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChromeTrace(data); err != nil {
		t.Fatalf("intact trace rejected: %v", err)
	}
	for _, cut := range []int{1, len(data) / 2, len(data) - 2} {
		if _, err := ReadChromeTrace(data[:cut]); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
}
