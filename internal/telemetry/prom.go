// Prometheus text exposition (format version 0.0.4) for the registry, served
// as GET /metrics/prom on the debug mux. The rendering is deterministic:
// families are emitted counters → histograms → timings, each section sorted
// by name, histogram buckets cumulative with a terminal +Inf — so two
// identical seeded runs (or two scrapes of a settled registry) produce
// byte-identical output, which promparse.go's strict parser enforces in
// tests.
//
// Name mangling: instrument names are dot-separated ("lp.pivots"); the
// exposition name is "cpsguard_" + the name with every non-[a-z0-9_] byte
// replaced by '_' ("cpsguard_lp_pivots"). The metric-name lint (enforcing
// ^[a-z0-9_.]+$ at registration) makes this mangle injective: '.' is the
// only byte ever rewritten, so two distinct registered names can never
// collide after mangling.
//
// Unit contract: timing histograms are exposed in their native nanosecond
// buckets (names already carry a _ns suffix by convention). Exact integer
// bucket edges keep the output byte-stable; consumers that want seconds
// divide by 1e9.
package telemetry

import (
	"net/http"
	"sort"
	"strconv"
)

// promPrefix namespaces every exposed metric.
const promPrefix = "cpsguard_"

// PromName mangles a registry instrument name into its exposition-format
// metric name.
func PromName(name string) string {
	b := make([]byte, 0, len(promPrefix)+len(name))
	b = append(b, promPrefix...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			b = append(b, c)
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

// AppendPrometheus renders the snapshot in exposition format, appending to b.
func (s *Snapshot) AppendPrometheus(b []byte) []byte {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " counter\n"...)
		b = append(b, pn...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, s.Counters[n], 10)
		b = append(b, '\n')
	}
	b = appendPromHistograms(b, s.Histograms)
	b = appendPromHistograms(b, s.Timings)
	return b
}

func appendPromHistograms(b []byte, hists map[string]HistogramSnapshot) []byte {
	names := make([]string, 0, len(hists))
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		pn := PromName(n)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " histogram\n"...)
		cum := int64(0)
		for i, edge := range h.Edges {
			cum += h.Buckets[i]
			b = append(b, pn...)
			b = append(b, `_bucket{le="`...)
			b = strconv.AppendInt(b, edge, 10)
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		// The +Inf bucket and _count are the bucket total, not h.Count:
		// on a snapshot taken mid-observation they could differ by an
		// in-flight increment, and the exposition invariant
		// (+Inf == _count ≥ every bucket) must hold unconditionally.
		if len(h.Buckets) > len(h.Edges) {
			cum += h.Buckets[len(h.Edges)]
		}
		b = append(b, pn...)
		b = append(b, `_bucket{le="+Inf"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_sum "...)
		b = strconv.AppendInt(b, h.Sum, 10)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	return b
}

// Prometheus renders the snapshot in exposition format.
func (s *Snapshot) Prometheus() []byte { return s.AppendPrometheus(nil) }

// PrometheusText renders the registry's current state — counters,
// histograms, and timings; spans are a trace concern, not a metric one — in
// exposition format.
func (r *Registry) PrometheusText() []byte {
	return r.Snapshot(SnapshotOptions{Timings: true}).Prometheus()
}

// PromHandler serves PrometheusText with the exposition content type; the
// debug mux mounts it at /metrics/prom.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.PrometheusText())
	})
}
