package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStartSpanCtxBuildsTree(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	r.EnableTracing(true)

	root, ctx := r.StartSpanCtx(context.Background(), "experiments.trial", "t0")
	if root == nil {
		t.Fatal("tracing enabled but StartSpanCtx returned nil")
	}
	mid, mctx := r.StartSpanCtx(ctx, "milp.solve", "relax")
	leaf, _ := r.StartSpanCtx(mctx, "lp.solve", "relax")
	leaf.End()
	mid.End()
	root.End()

	spans, _ := r.spans.records()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byStage := map[string]SpanRecord{}
	for _, s := range spans {
		byStage[s.Stage] = s
	}
	if byStage["experiments.trial"].ParentID != 0 {
		t.Fatalf("root has parent %d", byStage["experiments.trial"].ParentID)
	}
	if got, want := byStage["milp.solve"].ParentID, byStage["experiments.trial"].ID; got != want {
		t.Fatalf("milp parent = %d, want %d", got, want)
	}
	if got, want := byStage["lp.solve"].ParentID, byStage["milp.solve"].ID; got != want {
		t.Fatalf("lp parent = %d, want %d", got, want)
	}
	if byStage["lp.solve"].StartNS < byStage["experiments.trial"].StartNS {
		t.Fatal("child starts before its root")
	}
}

func TestStartSpanCtxDisabledIsFree(t *testing.T) {
	r := NewRegistry()
	ctx := context.Background()
	sp, out := r.StartSpanCtx(ctx, "lp.solve", "x")
	if sp != nil {
		t.Fatal("tracing disabled but StartSpanCtx returned a span")
	}
	if out != ctx {
		t.Fatal("disabled StartSpanCtx rewrapped the context")
	}
	// Nil contexts and nil spans are tolerated end to end.
	sp2, out2 := r.StartSpanCtx(nil, "lp.solve", "x")
	if sp2 != nil || out2 != nil {
		t.Fatal("nil ctx with tracing off should pass through")
	}
	if SpanFromContext(nil) != nil {
		t.Fatal("SpanFromContext(nil) != nil")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan with nil span rewrapped the context")
	}
	var s *Span
	s.AddRetries(1)
	if s.ID() != 0 {
		t.Fatal("nil span ID != 0")
	}
}

func TestSetSpanCapacity(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(true)
	r.SetSpanCapacity(4)
	for i := 0; i < 10; i++ {
		sp := r.StartSpan("s", "")
		sp.End()
	}
	got := r.Snapshot(SnapshotOptions{Spans: true})
	if len(got.Spans) != 4 || got.SpansDropped != 6 {
		t.Fatalf("retained/dropped = %d/%d, want 4/6", len(got.Spans), got.SpansDropped)
	}
	r.SetSpanCapacity(0) // restore default
	for i := 0; i < spanCap+1; i++ {
		sp := r.StartSpan("s", "")
		sp.End()
	}
	got = r.Snapshot(SnapshotOptions{Spans: true})
	if len(got.Spans) != spanCap {
		t.Fatalf("default capacity not restored: retained %d", len(got.Spans))
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRegistry()
	r.SetClock(fakeClock(time.Millisecond))
	r.EnableTracing(true)

	root, ctx := r.StartSpanCtx(context.Background(), "experiments.trial", "t0")
	child, _ := r.StartSpanCtx(ctx, "lp.solve", "dispatch")
	child.SetWork(42)
	child.AddDegradations("bland-restart: test")
	child.End()
	root.SetRetries(1)
	root.End()
	lone := r.StartSpan("adversary.solve", "")
	lone.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := r.WriteChromeTrace(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	var meta, complete []TraceEvent
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta = append(meta, ev)
		case "X":
			complete = append(complete, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// Two roots (trial tree + lone adversary solve) → two named tracks,
	// plus one process_name event naming the recording process.
	if len(meta) != 3 {
		t.Fatalf("metadata events = %d, want 3", len(meta))
	}
	procNames := 0
	for _, ev := range meta {
		if ev.Name == "process_name" {
			procNames++
		}
	}
	if procNames != 1 {
		t.Fatalf("process_name events = %d, want 1", procNames)
	}
	if len(complete) != 3 {
		t.Fatalf("complete events = %d, want 3", len(complete))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range complete {
		byName[ev.Name] = ev
	}
	trial, lp := byName["experiments.trial"], byName["lp.solve"]
	if trial.TID != lp.TID {
		t.Fatalf("child on different track: trial tid %d, lp tid %d", trial.TID, lp.TID)
	}
	if byName["adversary.solve"].TID == trial.TID {
		t.Fatal("independent root shares the trial's track")
	}
	if lp.Cat != "lp" {
		t.Fatalf("category = %q, want lp", lp.Cat)
	}
	// Child nests within the parent on the timeline.
	if lp.TS < trial.TS || lp.TS+lp.Dur > trial.TS+trial.Dur+1e-9 {
		t.Fatalf("child [%v,%v] escapes parent [%v,%v]", lp.TS, lp.TS+lp.Dur, trial.TS, trial.TS+trial.Dur)
	}
	if w, ok := lp.Args["work"].(float64); !ok || w != 42 {
		t.Fatalf("lp args work = %v", lp.Args["work"])
	}
	if _, ok := lp.Args["parent"]; !ok {
		t.Fatal("child event missing parent arg")
	}
	// The file is a valid JSON object with the envelope fields Perfetto
	// expects.
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if _, ok := env["traceEvents"]; !ok {
		t.Fatal("missing traceEvents key")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	s := &Snapshot{}
	ct := s.ChromeTrace()
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty snapshot produced %d events", len(ct.TraceEvents))
	}
	if _, err := ct.MarshalIndented(); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceOrphanIsOwnTrack(t *testing.T) {
	// A child whose parent was evicted from the ring becomes its own root
	// track instead of vanishing.
	s := &Snapshot{Spans: []SpanRecord{
		{ID: 7, ParentID: 3, Stage: "lp.solve", StartNS: 10, DurationNS: 5},
	}}
	ct := s.ChromeTrace()
	if len(ct.TraceEvents) != 3 {
		t.Fatalf("events = %d, want process_name + thread_name + span", len(ct.TraceEvents))
	}
}
