package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// offsetClock is a fakeClock whose origin is shifted, so two "processes"
// record spans on overlapping but distinct wall-clock windows.
func offsetClock(origin time.Duration, step time.Duration) func() time.Time {
	base := fakeClock(step)
	return func() time.Time { return base().Add(origin) }
}

// buildFleetTraces simulates a supervised 2-shard run inside one test
// process: a parent registry supervises, hands each child registry a trace
// context exactly as the env-var propagation would, and every registry
// exports its own trace file.
func buildFleetTraces(t *testing.T) []*ChromeTrace {
	t.Helper()
	parent := NewRegistry()
	parent.SetClock(offsetClock(0, time.Millisecond))
	parent.EnableTracing(true)
	parent.SetLabel("cpsexp supervise")

	sup, ctx := parent.StartSpanCtx(context.Background(), "shard.supervise", "2 shards")
	traces := make([]*ChromeTrace, 0, 3)
	for i := 0; i < 2; i++ {
		childSpan, _ := parent.StartSpanCtx(ctx, "shard.child", fmt.Sprintf("%d/2", i))
		tc, ok := parent.ChildTraceContext(childSpan)
		if !ok {
			t.Fatal("no child trace context")
		}
		// The "child process": adopts the context exactly as cli.StartRun
		// does when it finds CPSGUARD_TRACEPARENT.
		child := NewRegistry()
		child.SetClock(offsetClock(time.Duration(i+1)*time.Second, time.Millisecond))
		child.SetTraceContext(tc)
		child.EnableTracing(true)
		child.SetLabel(fmt.Sprintf("cpsexp shard %d/2", i))
		root, cctx := child.StartSpanCtx(context.Background(), "experiments.trial", "t0")
		solve, _ := child.StartSpanCtx(cctx, "lp.solve", "dispatch")
		solve.End()
		root.End()
		childSpan.End()

		snap := child.Snapshot(SnapshotOptions{Spans: true})
		// Distinct fake PIDs: in production each process reports its real
		// PID; in-process simulation must fake the distinction.
		snap.PID = 1000 + i
		traces = append(traces, snap.ChromeTrace())
	}
	sup.End()
	psnap := parent.Snapshot(SnapshotOptions{Spans: true})
	psnap.PID = 999
	traces = append(traces, psnap.ChromeTrace())
	return traces
}

func TestMergeChromeTracesStitchesFleet(t *testing.T) {
	traces := buildFleetTraces(t)
	merged, stats, err := MergeChromeTraces(traces)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 3 || stats.Spans != 7 {
		t.Fatalf("files/spans = %d/%d, want 3/7", stats.Files, stats.Spans)
	}
	if len(stats.PIDs) != 3 {
		t.Fatalf("pids = %v, want 3 distinct", stats.PIDs)
	}
	// Each child's trial root links to the parent's shard.child span: two
	// cross-process edges, nothing dangling.
	if stats.CrossProcessLinks != 2 {
		t.Fatalf("cross-process links = %d, want 2", stats.CrossProcessLinks)
	}
	if stats.UnresolvedParents != 0 {
		t.Fatalf("unresolved parents = %d, want 0", stats.UnresolvedParents)
	}
	// One inherited trace id across the whole fleet.
	if len(stats.TraceIDs) != 1 || merged.TraceID != stats.TraceIDs[0] {
		t.Fatalf("trace ids = %v, merged id %q", stats.TraceIDs, merged.TraceID)
	}
	// The merged timeline is rebased onto the earliest file's origin.
	if merged.BaseNS == 0 {
		t.Fatal("merged trace lost its base instant")
	}
	for _, ev := range merged.TraceEvents {
		if ev.Ph == "X" && ev.TS < 0 {
			t.Fatalf("event %q starts before the merged origin: ts %v", ev.Name, ev.TS)
		}
	}
}

func TestMergeChromeTracesDeterministic(t *testing.T) {
	traces := buildFleetTraces(t)
	a, _, err := MergeChromeTraces(traces)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MergeChromeTraces(traces)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("merging the same traces twice produced different bytes")
	}
}

func TestMergeChromeTracesSurvivesJSONRoundTrip(t *testing.T) {
	// In production the merge reads files off disk; args come back as
	// map[string]any with JSON types. The gid/pgid resolution must still
	// work.
	traces := buildFleetTraces(t)
	reread := make([]*ChromeTrace, len(traces))
	for i, tr := range traces {
		data, err := tr.MarshalIndented()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := ReadChromeTrace(data)
		if err != nil {
			t.Fatal(err)
		}
		reread[i] = rt
	}
	_, stats, err := MergeChromeTraces(reread)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrossProcessLinks != 2 || stats.UnresolvedParents != 0 {
		t.Fatalf("after round trip: cross=%d unresolved=%d, want 2/0",
			stats.CrossProcessLinks, stats.UnresolvedParents)
	}
}

func TestMergeChromeTracesRemapsCollidingPIDs(t *testing.T) {
	// Two legacy files both claiming PID 1 (or OS PID reuse) must not be
	// flattened into one process.
	mk := func(label string) *ChromeTrace {
		r := NewRegistry()
		r.SetClock(fakeClock(time.Millisecond))
		r.EnableTracing(true)
		r.SetLabel(label)
		sp := r.StartSpan("experiments.trial", label)
		sp.End()
		snap := r.Snapshot(SnapshotOptions{Spans: true})
		snap.PID = 1
		return snap.ChromeTrace()
	}
	merged, stats, err := MergeChromeTraces([]*ChromeTrace{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PIDs) != 2 || stats.PIDRemaps != 1 {
		t.Fatalf("pids = %v remaps = %d, want 2 distinct / 1 remap", stats.PIDs, stats.PIDRemaps)
	}
	if merged.TraceID != "" {
		t.Fatalf("distinct trace ids must not elect a merged id, got %q", merged.TraceID)
	}
}

func TestMergeChromeTracesRejectsEmptyAndNil(t *testing.T) {
	if _, _, err := MergeChromeTraces(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, _, err := MergeChromeTraces([]*ChromeTrace{nil}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestValidateTraceLinksUnresolvedAndDuplicates(t *testing.T) {
	ct := &ChromeTrace{TraceEvents: []TraceEvent{
		{Name: "a", Ph: "X", PID: 1, Args: map[string]any{"gid": "aaaaaaaaaaaaaaaa"}},
		{Name: "b", Ph: "X", PID: 1, Args: map[string]any{"gid": "bbbbbbbbbbbbbbbb", "pgid": "missing0000000ff"}},
	}}
	stats, err := ValidateTraceLinks(ct)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnresolvedParents != 1 || stats.Links != 1 {
		t.Fatalf("unresolved/links = %d/%d, want 1/1", stats.UnresolvedParents, stats.Links)
	}
	dup := &ChromeTrace{TraceEvents: []TraceEvent{
		{Name: "a", Ph: "X", PID: 1, Args: map[string]any{"gid": "aaaaaaaaaaaaaaaa"}},
		{Name: "b", Ph: "X", PID: 2, Args: map[string]any{"gid": "aaaaaaaaaaaaaaaa"}},
	}}
	if _, err := ValidateTraceLinks(dup); err == nil {
		t.Fatal("duplicate gid accepted")
	}
}
