package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// populate fills a registry with one of every instrument kind, with a fixed
// observation sequence so two populated registries render identical bytes.
func populate(r *Registry) {
	r.Counter("lp.pivots").Add(42)
	r.Counter("servd.requests").Add(7)
	h := r.Histogram("lp.work_per_solve", WorkEdges)
	for _, v := range []int64{1, 3, 250, 1_000_000, 5_000_000} {
		h.Observe(v)
	}
	d := r.Histogram("checkpoint.retry_depth", DepthEdges)
	d.Observe(0)
	d.Observe(2)
	tm := r.Timing("servd.request_latency_ns")
	tm.Observe(1_500)
	tm.Observe(2_000_000)
}

func TestPromExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	populate(r)
	out := r.PrometheusText()
	fams, order, err := ParsePrometheus(out)
	if err != nil {
		t.Fatalf("own exposition failed the strict parser: %v\n%s", err, out)
	}
	if len(fams) != 5 {
		t.Fatalf("families = %d (%v), want 5", len(fams), order)
	}
	c := fams["cpsguard_lp_pivots"]
	if c == nil || c.Type != "counter" || c.Samples[0].Value != 42 {
		t.Fatalf("lp.pivots family: %+v", c)
	}
	h := fams["cpsguard_lp_work_per_solve"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("work histogram: %+v", h)
	}
	// Spot-check cumulation: values 1,3,250,1e6,5e6 → le="500" holds 3,
	// +Inf holds 5.
	var le500, leInf, count, sum float64
	for _, s := range h.Samples {
		switch {
		case s.Name == "cpsguard_lp_work_per_solve_bucket" && s.Labels["le"] == "500":
			le500 = s.Value
		case s.Name == "cpsguard_lp_work_per_solve_bucket" && s.Labels["le"] == "+Inf":
			leInf = s.Value
		case s.Name == "cpsguard_lp_work_per_solve_count":
			count = s.Value
		case s.Name == "cpsguard_lp_work_per_solve_sum":
			sum = s.Value
		}
	}
	if le500 != 3 || leInf != 5 || count != 5 || sum != 6000254 {
		t.Fatalf("le500=%g leInf=%g count=%g sum=%g", le500, leInf, count, sum)
	}
	// Timings render as histogram families too.
	if tm := fams["cpsguard_servd_request_latency_ns"]; tm == nil || tm.Type != "histogram" {
		t.Fatalf("timing family: %+v", tm)
	}
}

func TestPromExpositionByteStable(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a)
	populate(b)
	if !bytes.Equal(a.PrometheusText(), b.PrometheusText()) {
		t.Fatal("identical registry states rendered different exposition bytes")
	}
	// And rendering the same registry twice is stable.
	if !bytes.Equal(a.PrometheusText(), a.PrometheusText()) {
		t.Fatal("re-rendering one registry produced different bytes")
	}
}

func TestPromExpositionSortedAndPrefixed(t *testing.T) {
	r := NewRegistry()
	populate(r)
	_, order, err := ParsePrometheus(r.PrometheusText())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range order {
		if !strings.HasPrefix(n, "cpsguard_") {
			t.Fatalf("family %q missing namespace prefix", n)
		}
	}
	// Counters come first (sorted), then histograms, then timings.
	want := []string{
		"cpsguard_lp_pivots",
		"cpsguard_servd_requests",
		"cpsguard_checkpoint_retry_depth",
		"cpsguard_lp_work_per_solve",
		"cpsguard_servd_request_latency_ns",
	}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"lp.pivots":                "cpsguard_lp_pivots",
		"servd.route.run.requests": "cpsguard_servd_route_run_requests",
		"parallel.queue_wait_ns":   "cpsguard_parallel_queue_wait_ns",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromHandlerOnDebugMux(t *testing.T) {
	r := NewRegistry()
	populate(r)
	srv := httptest.NewServer(r.DebugMux())
	defer srv.Close()
	get := func() ([]byte, string) {
		resp, err := http.Get(srv.URL + "/metrics/prom")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, resp.Header.Get("Content-Type")
	}
	body, ctype := get()
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	if _, _, err := ParsePrometheus(body); err != nil {
		t.Fatalf("served exposition unparseable: %v", err)
	}
	// Byte-stable across scrapes of a settled registry.
	again, _ := get()
	if !bytes.Equal(body, again) {
		t.Fatal("two scrapes of a settled registry differ")
	}
}

func TestPromInfBucketAbsorbsOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Timing("x.latency_ns")
	h.Observe(time.Hour.Nanoseconds()) // beyond the last 10s edge
	fams, _, err := ParsePrometheus(r.PrometheusText())
	if err != nil {
		t.Fatal(err)
	}
	f := fams["cpsguard_x_latency_ns"]
	for _, s := range f.Samples {
		if s.Name == "cpsguard_x_latency_ns_bucket" && s.Labels["le"] != "+Inf" && s.Value != 0 {
			t.Fatalf("finite bucket le=%s holds overflow observation", s.Labels["le"])
		}
		if s.Name == "cpsguard_x_latency_ns_bucket" && s.Labels["le"] == "+Inf" && s.Value != 1 {
			t.Fatalf("+Inf bucket = %g, want 1", s.Value)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"sample before TYPE":   "cpsguard_x 1\n",
		"unsupported type":     "# TYPE cpsguard_x gauge\ncpsguard_x 1\n",
		"duplicate family":     "# TYPE cpsguard_x counter\ncpsguard_x 1\n# TYPE cpsguard_x counter\ncpsguard_x 2\n",
		"duplicate sample":     "# TYPE cpsguard_x counter\ncpsguard_x 1\ncpsguard_x 2\n",
		"foreign sample":       "# TYPE cpsguard_x counter\ncpsguard_y 1\n",
		"uppercase name":       "# TYPE cpsguard_X counter\ncpsguard_X 1\n",
		"negative counter":     "# TYPE cpsguard_x counter\ncpsguard_x -1\n",
		"labeled counter":      "# TYPE cpsguard_x counter\ncpsguard_x{a=\"b\"} 1\n",
		"bad value":            "# TYPE cpsguard_x counter\ncpsguard_x banana\n",
		"stray comment":        "# smuggled\n",
		"histogram no buckets": "# TYPE cpsguard_h histogram\ncpsguard_h_sum 1\ncpsguard_h_count 1\n",
		"histogram no +Inf": "# TYPE cpsguard_h histogram\n" +
			"cpsguard_h_bucket{le=\"1\"} 1\ncpsguard_h_sum 1\ncpsguard_h_count 1\n",
		"histogram not cumulative": "# TYPE cpsguard_h histogram\n" +
			"cpsguard_h_bucket{le=\"1\"} 2\ncpsguard_h_bucket{le=\"+Inf\"} 1\n" +
			"cpsguard_h_sum 1\ncpsguard_h_count 1\n",
		"histogram count mismatch": "# TYPE cpsguard_h histogram\n" +
			"cpsguard_h_bucket{le=\"1\"} 1\ncpsguard_h_bucket{le=\"+Inf\"} 2\n" +
			"cpsguard_h_sum 1\ncpsguard_h_count 3\n",
		"histogram missing sum": "# TYPE cpsguard_h histogram\n" +
			"cpsguard_h_bucket{le=\"+Inf\"} 1\ncpsguard_h_count 1\n",
		"descending les": "# TYPE cpsguard_h histogram\n" +
			"cpsguard_h_bucket{le=\"2\"} 1\ncpsguard_h_bucket{le=\"1\"} 1\n" +
			"cpsguard_h_bucket{le=\"+Inf\"} 1\ncpsguard_h_sum 1\ncpsguard_h_count 1\n",
	}
	for name, text := range bad {
		if _, _, err := ParsePrometheus([]byte(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
	// HELP lines are tolerated (other emitters include them).
	ok := "# HELP cpsguard_x something\n# TYPE cpsguard_x counter\ncpsguard_x 1\n"
	if _, _, err := ParsePrometheus([]byte(ok)); err != nil {
		t.Errorf("HELP line rejected: %v", err)
	}
}
