// Fleet trace stitching: merge the per-process trace.json files a supervised
// sharded sweep (or a cpsservd client plus its service) produced into one
// Chrome trace on a shared timeline, and validate that the cross-process
// parent links (gid/pgid args) actually resolve. cmd/cpsreport exposes this
// as -trace-merge.
package telemetry

import (
	"fmt"
	"sort"
)

// TraceStats summarizes the link structure of a (merged) trace — the
// acceptance surface for "spans from N processes with valid parent links".
type TraceStats struct {
	// Files is the number of input traces merged (1 for ValidateTraceLinks
	// on a single file).
	Files int `json:"files"`
	// Spans counts complete ("X") span events.
	Spans int `json:"spans"`
	// PIDs lists the distinct process IDs carrying spans, ascending.
	PIDs []int `json:"pids"`
	// TraceIDs lists the distinct distributed-trace IDs seen, sorted
	// (ideally one: the whole fleet inherited one context).
	TraceIDs []string `json:"trace_ids,omitempty"`
	// Links counts spans that declare a parent (local or remote).
	Links int `json:"links"`
	// CrossProcessLinks counts links whose parent span lives in a
	// different PID — the supervisor→shard and client→service edges.
	CrossProcessLinks int `json:"cross_process_links"`
	// UnresolvedParents counts links whose parent global ID matches no
	// span in the trace (e.g. the parent was evicted from its ring).
	UnresolvedParents int `json:"unresolved_parents"`
	// PIDRemaps counts input processes whose PID collided with another
	// file's and was rewritten during the merge.
	PIDRemaps int `json:"pid_remaps,omitempty"`
}

// MergeChromeTraces stitches per-process traces onto one timeline. Each
// input's timestamps are rebased against the earliest BaseNS across all
// inputs (files without a BaseNS — legacy traces — keep their own zero);
// PID collisions between files (OS PID reuse, or two legacy files both
// claiming PID 1) are resolved by rewriting the later file's PIDs to fresh
// values. Events are ordered deterministically, so merging the same files
// always yields identical bytes. The returned stats are computed on the
// merged trace via ValidateTraceLinks.
func MergeChromeTraces(traces []*ChromeTrace) (*ChromeTrace, *TraceStats, error) {
	if len(traces) == 0 {
		return nil, nil, fmt.Errorf("telemetry: no traces to merge")
	}
	var baseNS int64
	haveBase := false
	for i, t := range traces {
		if t == nil {
			return nil, nil, fmt.Errorf("telemetry: nil trace at index %d", i)
		}
		if t.BaseNS != 0 && (!haveBase || t.BaseNS < baseNS) {
			baseNS = t.BaseNS
			haveBase = true
		}
	}

	merged := &ChromeTrace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms", BaseNS: baseNS}
	usedPIDs := map[int]bool{}
	maxPID := 0
	traceIDs := map[string]bool{}
	remaps := 0
	for _, t := range traces {
		if t.TraceID != "" {
			traceIDs[t.TraceID] = true
		}
		var shiftUS float64
		if haveBase && t.BaseNS != 0 {
			shiftUS = float64(t.BaseNS-baseNS) / 1e3
		}
		// Remap this file's PIDs into unclaimed output PIDs. One pass to
		// learn the file's PIDs (almost always exactly one), then assign.
		filePIDs := map[int]int{}
		for _, ev := range t.TraceEvents {
			if _, ok := filePIDs[ev.PID]; !ok {
				filePIDs[ev.PID] = ev.PID
			}
		}
		inOrder := make([]int, 0, len(filePIDs))
		for p := range filePIDs {
			inOrder = append(inOrder, p)
		}
		sort.Ints(inOrder)
		for _, p := range inOrder {
			out := p
			if usedPIDs[out] {
				out = maxPID + 1
				remaps++
			}
			filePIDs[p] = out
			usedPIDs[out] = true
			if out > maxPID {
				maxPID = out
			}
		}
		for _, ev := range t.TraceEvents {
			ev.PID = filePIDs[ev.PID]
			if ev.Ph == "X" {
				ev.TS += shiftUS
			}
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
	}
	if len(traceIDs) == 1 {
		for id := range traceIDs {
			merged.TraceID = id
		}
	}

	// Deterministic event order: metadata first within each process (so
	// viewers see names before slices), then spans by time.
	sort.SliceStable(merged.TraceEvents, func(a, b int) bool {
		ea, eb := &merged.TraceEvents[a], &merged.TraceEvents[b]
		if ea.PID != eb.PID {
			return ea.PID < eb.PID
		}
		if (ea.Ph == "M") != (eb.Ph == "M") {
			return ea.Ph == "M"
		}
		if ea.TS != eb.TS {
			return ea.TS < eb.TS
		}
		if ea.TID != eb.TID {
			return ea.TID < eb.TID
		}
		return ea.Name < eb.Name
	})

	stats, err := ValidateTraceLinks(merged)
	if err != nil {
		return nil, nil, err
	}
	stats.Files = len(traces)
	stats.PIDRemaps = remaps
	if len(traceIDs) > 0 {
		stats.TraceIDs = make([]string, 0, len(traceIDs))
		for id := range traceIDs {
			stats.TraceIDs = append(stats.TraceIDs, id)
		}
		sort.Strings(stats.TraceIDs)
	}
	return merged, stats, nil
}

// ValidateTraceLinks resolves every span's declared parent ("pgid" arg)
// against the global span IDs ("gid" arg) present in the trace and reports
// the link structure. It errors on a duplicate gid — two spans claiming one
// global identity would make parent links ambiguous.
func ValidateTraceLinks(t *ChromeTrace) (*TraceStats, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: nil trace")
	}
	stats := &TraceStats{Files: 1}
	if t.TraceID != "" {
		stats.TraceIDs = []string{t.TraceID}
	}
	gidPID := map[string]int{}
	pids := map[int]bool{}
	for i := range t.TraceEvents {
		ev := &t.TraceEvents[i]
		if ev.Ph != "X" {
			continue
		}
		stats.Spans++
		pids[ev.PID] = true
		if g := argString(ev.Args, "gid"); g != "" {
			if _, dup := gidPID[g]; dup {
				return nil, fmt.Errorf("telemetry: duplicate global span id %s", g)
			}
			gidPID[g] = ev.PID
		}
	}
	for i := range t.TraceEvents {
		ev := &t.TraceEvents[i]
		if ev.Ph != "X" {
			continue
		}
		pg := argString(ev.Args, "pgid")
		if pg == "" {
			continue
		}
		stats.Links++
		parentPID, ok := gidPID[pg]
		switch {
		case !ok:
			stats.UnresolvedParents++
		case parentPID != ev.PID:
			stats.CrossProcessLinks++
		}
	}
	stats.PIDs = make([]int, 0, len(pids))
	for p := range pids {
		stats.PIDs = append(stats.PIDs, p)
	}
	sort.Ints(stats.PIDs)
	return stats, nil
}

// argString reads a string arg from a trace event's args map (which, after
// a JSON round trip, holds any-typed values).
func argString(args map[string]any, key string) string {
	if args == nil {
		return ""
	}
	s, _ := args[key].(string)
	return s
}
