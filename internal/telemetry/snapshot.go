// Snapshot export: the JSON dump written at sweep end, and the expvar
// registration. The default snapshot carries only the deterministic sections
// (counters, histograms); timings and spans are opt-in because their
// contents depend on the machine, not the model.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"os"
	"sync"

	"cpsguard/internal/atomicio"
)

// Snapshot is the exported state of a registry. encoding/json marshals maps
// with sorted keys, so identical registry states marshal to identical bytes.
type Snapshot struct {
	// Counters holds every registered counter. Deterministic: two runs of
	// the same seeded sweep produce byte-identical values.
	Counters map[string]int64 `json:"counters"`
	// Histograms holds the logical-work histograms. Deterministic.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Timings holds the wall-clock histograms (nanoseconds). Machine- and
	// scheduling-dependent; omitted unless requested.
	Timings map[string]HistogramSnapshot `json:"timings,omitempty"`
	// Spans holds the retained trace window, oldest first. Only present
	// when tracing was enabled and spans were requested.
	Spans []SpanRecord `json:"spans,omitempty"`
	// SpansDropped counts spans overwritten after the ring filled.
	SpansDropped int64 `json:"spans_dropped,omitempty"`

	// Trace identity, present only when spans were requested and tracing
	// is on (it is nondeterministic by construction, like the spans it
	// describes). TraceID is the 32-hex distributed-trace ID; SpanBase is
	// the 16-hex XOR base that turns local span IDs into global ones; PID
	// and Label identify the recording process in fleet merges.
	TraceID  string `json:"trace_id,omitempty"`
	SpanBase string `json:"span_base,omitempty"`
	PID      int    `json:"pid,omitempty"`
	Label    string `json:"label,omitempty"`
}

// SnapshotOptions selects the nondeterministic sections.
type SnapshotOptions struct {
	// Timings includes the wall-clock histograms.
	Timings bool
	// Spans includes the retained trace window.
	Spans bool
}

// Snapshot copies the registry state. Counters still being written
// concurrently are read atomically one by one; take the snapshot after the
// instrumented work settles for an exact cut.
func (r *Registry) Snapshot(opts SnapshotOptions) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	if opts.Timings {
		s.Timings = make(map[string]HistogramSnapshot, len(r.timings))
		for name, h := range r.timings {
			s.Timings[name] = h.snapshot()
		}
	}
	if opts.Spans {
		s.Spans, s.SpansDropped = r.spans.records()
		if r.Tracing() {
			s.TraceID = r.TraceID()
			s.SpanBase = fmt.Sprintf("%016x", r.spanBaseID())
			s.PID = os.Getpid()
			s.Label = r.Label()
		}
	}
	return s
}

// MarshalIndented renders the snapshot as stable, human-diffable JSON with a
// trailing newline.
func (s *Snapshot) MarshalIndented() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode snapshot: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteSnapshot dumps the registry to path atomically (temp + fsync +
// rename via internal/atomicio), so a crash mid-dump never leaves a torn
// metrics file for a dashboard to ingest.
func (r *Registry) WriteSnapshot(path string, opts SnapshotOptions) error {
	data, err := r.Snapshot(opts).MarshalIndented()
	if err != nil {
		return err
	}
	return atomicio.MkdirAllAndWrite(path, data, 0o644)
}

// ReadSnapshot parses a snapshot previously written by WriteSnapshot —
// the read half of the metrics.json artifact, used by cmd/cpsreport.
func ReadSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return &s, nil
}

var expvarOnce sync.Once

// PublishExpvar registers the Default registry under the expvar name
// "cpsguard.telemetry" (full snapshot, timings and spans included — expvar
// is a live debugging surface, not the deterministic artifact). Safe to call
// any number of times; expvar registration happens once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("cpsguard.telemetry", expvar.Func(func() any {
			return def.Snapshot(SnapshotOptions{Timings: true, Spans: true})
		}))
	})
}
