// Divide-and-conquer target selection (Section II-E4).
//
// The paper notes the SA model "can become computationally difficult to
// solve as the system grows in both the number of actors and targets" and
// that "this problem can be alleviated to some extent by partitioning the
// system and actors into a divide-and-conquer algorithm." SolvePartitioned
// implements that idea: the target set is split into caller-chosen groups
// (e.g. per state, per subsystem), each group's profit-vs-budget curve is
// solved exactly in isolation, and a final dynamic program allocates the
// global budget across groups.
//
// The decomposition is exact when groups do not share profitable actors;
// otherwise it is a documented approximation (an actor profiting from two
// groups is counted per group when curves are built), which is the price of
// the paper's "alleviated to some extent". The merged plan's Anticipated
// value is always re-evaluated exactly on the full instance, so the
// returned number is never optimistic.
package adversary

import (
	"fmt"
	"math"
	"sort"
)

// PartitionOptions tunes SolvePartitioned.
type PartitionOptions struct {
	// BudgetStep is the budget granularity of the per-group curves
	// (default: the smallest positive target cost, or 1 when all
	// targets are free).
	BudgetStep float64
	// MaxNodesPerGroup caps each group's exact search (default 200_000).
	MaxNodesPerGroup int
}

// SolvePartitioned solves the SA problem by exact per-group curves plus a
// budget-allocation DP. groups must partition (a subset of) the configured
// target IDs; targets not covered by any group are ignored.
func SolvePartitioned(cfg Config, groups [][]string, opts PartitionOptions) (*Plan, error) {
	in, err := newInstance(cfg)
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("adversary: no partition groups")
	}
	byID := map[string]Target{}
	for _, t := range cfg.Targets {
		byID[t.ID] = t
	}

	step := opts.BudgetStep
	if step <= 0 {
		step = math.Inf(1)
		for _, t := range cfg.Targets {
			if t.Cost > 0 && t.Cost < step {
				step = t.Cost
			}
		}
		if math.IsInf(step, 1) {
			step = 1
		}
	}
	levels := int(cfg.Budget/step) + 1
	if levels < 1 {
		levels = 1
	}
	maxNodes := opts.MaxNodesPerGroup
	if maxNodes <= 0 {
		maxNodes = 200_000
	}

	// Per-group profit curves: curve[g][k] = best value with budget k·step,
	// sets[g][k] = the achieving target set.
	curves := make([][]float64, len(groups))
	sets := make([][][]string, len(groups))
	for gi, group := range groups {
		var targets []Target
		for _, id := range group {
			if t, ok := byID[id]; ok {
				targets = append(targets, t)
			}
		}
		curves[gi] = make([]float64, levels)
		sets[gi] = make([][]string, levels)
		if len(targets) == 0 {
			continue
		}
		for k := 0; k < levels; k++ {
			sub := Config{
				Matrix:   cfg.Matrix,
				Targets:  targets,
				Budget:   float64(k) * step,
				MaxNodes: maxNodes,
			}
			plan, err := Solve(sub)
			if err != nil {
				return nil, fmt.Errorf("adversary: group %d level %d: %w", gi, k, err)
			}
			curves[gi][k] = plan.Anticipated
			sets[gi][k] = plan.Targets
		}
	}

	// DP over groups: best[k] = max value using budget k·step across the
	// first g groups; choice tracking for reconstruction.
	best := make([]float64, levels)
	choice := make([][]int, len(groups))
	for gi := range groups {
		choice[gi] = make([]int, levels)
		next := make([]float64, levels)
		for k := 0; k < levels; k++ {
			next[k] = math.Inf(-1)
			for alloc := 0; alloc <= k; alloc++ {
				v := best[k-alloc] + curves[gi][alloc]
				if v > next[k] {
					next[k] = v
					choice[gi][k] = alloc
				}
			}
		}
		best = next
	}

	// Reconstruct the merged target set from the top budget level.
	k := levels - 1
	merged := map[string]bool{}
	for gi := len(groups) - 1; gi >= 0; gi-- {
		alloc := choice[gi][k]
		for _, id := range sets[gi][alloc] {
			merged[id] = true
		}
		k -= alloc
	}
	var set []int
	for i, id := range in.ids {
		if merged[id] {
			set = append(set, i)
		}
	}
	sort.Ints(set)
	// Re-evaluate exactly on the full instance (never optimistic).
	return in.plan(set, levels*len(groups), false), nil
}

// PartitionByPrefix groups target IDs by the prefix before the first
// occurrence of sep's last ':'-delimited component — concretely, for
// westgrid-style IDs like "tx:WA-OR" and "gen:CA:solar" it groups by the
// leading kind token, and GroupBySuffixState groups by state. Provided as
// convenient default partitioners.
func PartitionByPrefix(ids []string) [][]string {
	buckets := map[string][]string{}
	var keys []string
	for _, id := range ids {
		key := id
		for i := 0; i < len(id); i++ {
			if id[i] == ':' {
				key = id[:i]
				break
			}
		}
		if _, ok := buckets[key]; !ok {
			keys = append(keys, key)
		}
		buckets[key] = append(buckets[key], id)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, buckets[k])
	}
	return out
}

// PartitionChunks splits ids into contiguous chunks of at most size
// elements (a topology-agnostic fallback partitioner).
func PartitionChunks(ids []string, size int) [][]string {
	if size <= 0 {
		size = 1
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	var out [][]string
	for len(sorted) > 0 {
		n := size
		if n > len(sorted) {
			n = len(sorted)
		}
		out = append(out, sorted[:n])
		sorted = sorted[n:]
	}
	return out
}
