package adversary

import (
	"math"
	"testing"

	"cpsguard/internal/rng"
)

func TestPartitionedNeverBeatsExact(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rs := rng.Derive(61, uint64(trial))
		im := map[string]map[string]float64{}
		var tids []string
		nT := 6 + rs.Intn(6)
		for i := 0; i < nT; i++ {
			tids = append(tids, "t"+string(rune('a'+i)))
		}
		for j := 0; j < 4; j++ {
			row := map[string]float64{}
			for _, tid := range tids {
				row[tid] = (rs.Float64() - 0.5) * 20
			}
			im["A"+string(rune('0'+j))] = row
		}
		m := matrixOf(im)
		cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: 3}
		exact, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		part, err := SolvePartitioned(cfg, PartitionChunks(m.Targets, 3), PartitionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if part.Anticipated > exact.Anticipated+1e-9 {
			t.Fatalf("trial %d: partitioned %v beat exact %v", trial,
				part.Anticipated, exact.Anticipated)
		}
		// Budget respected.
		if len(part.Targets) > 3 {
			t.Fatalf("trial %d: partitioned overspent: %v", trial, part.Targets)
		}
	}
}

func TestPartitionedExactOnIndependentGroups(t *testing.T) {
	// Two groups with disjoint actors: decomposition is lossless.
	m := matrixOf(map[string]map[string]float64{
		"A": {"g1a": 10, "g1b": 4, "g2a": 0, "g2b": 0},
		"B": {"g1a": 0, "g1b": 0, "g2a": 8, "g2b": 6},
	})
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: 3}
	exact, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := SolvePartitioned(cfg,
		[][]string{{"g1a", "g1b"}, {"g2a", "g2b"}}, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(part.Anticipated, exact.Anticipated, 1e-9) {
		t.Fatalf("independent groups should be lossless: %v vs %v",
			part.Anticipated, exact.Anticipated)
	}
}

func TestPartitionedBudgetAllocation(t *testing.T) {
	// Group 1 holds the two best targets; the DP must allocate both
	// budget units there rather than one per group.
	m := matrixOf(map[string]map[string]float64{
		"A": {"big1": 10, "big2": 9, "small": 1},
	})
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: 2}
	part, err := SolvePartitioned(cfg,
		[][]string{{"big1", "big2"}, {"small"}}, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(part.Anticipated, 17, 1e-9) { // 10+9 − 2
		t.Fatalf("anticipated = %v (targets %v), want 17", part.Anticipated, part.Targets)
	}
}

func TestPartitionedValidation(t *testing.T) {
	m := simpleMatrix()
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: 2}
	if _, err := SolvePartitioned(cfg, nil, PartitionOptions{}); err == nil {
		t.Fatal("empty partition accepted")
	}
	// Unknown IDs in groups are ignored, not fatal.
	p, err := SolvePartitioned(cfg, [][]string{{"t1", "zzz"}}, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Anticipated < 0 {
		t.Fatalf("anticipated = %v", p.Anticipated)
	}
}

func TestPartitionByPrefix(t *testing.T) {
	ids := []string{"tx:WA-OR", "tx:OR-CA", "gen:CA:solar", "pipe:WA-OR"}
	groups := PartitionByPrefix(ids)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	// Sorted by key: gen, pipe, tx.
	if groups[0][0] != "gen:CA:solar" || len(groups[2]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	// IDs without a separator form their own key.
	g2 := PartitionByPrefix([]string{"plain"})
	if len(g2) != 1 || g2[0][0] != "plain" {
		t.Fatalf("plain grouping = %v", g2)
	}
}

func TestPartitionChunks(t *testing.T) {
	ids := []string{"d", "a", "c", "b", "e"}
	chunks := PartitionChunks(ids, 2)
	if len(chunks) != 3 || chunks[0][0] != "a" || len(chunks[2]) != 1 {
		t.Fatalf("chunks = %v", chunks)
	}
	if got := PartitionChunks(ids, 0); len(got) != 5 {
		t.Fatalf("size 0 should clamp to 1: %v", got)
	}
}

func TestPartitionedBudgetStepFree(t *testing.T) {
	// All-free targets: step defaults to 1, one level, empty-or-all plans
	// must still be well-formed.
	m := simpleMatrix()
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 0, 1), Budget: 0}
	p, err := SolvePartitioned(cfg, [][]string{m.Targets}, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := Solve(cfg)
	if math.Abs(p.Anticipated-exact.Anticipated) > 1e-9 {
		t.Fatalf("free-target partition %v ≠ exact %v", p.Anticipated, exact.Anticipated)
	}
}
