// Package adversary implements the strategic adversary (SA) of Section
// II-E: a profit-seeking attacker who selects a budget-limited set of
// targets T and a set of actors A whose profit changes she captures
// (via stock or futures positions), maximizing
//
//	max_{T,A}  Σ_{t∈T} −Catk(t)  +  Σ_{j∈A} Σ_{t∈T} IM[j,t]·Ps(t)
//	s.t.       Σ_{t∈T} Catk(t) ≤ MA,  T(i),A(j) ∈ {0,1}
//
// (the paper's Eq. 8–11). For any fixed T the optimal A is closed-form —
// include actor j iff its captured sum is positive — so target selection
// reduces to a set search, which Plan solves exactly by depth-first branch
// and bound with a subadditive upper bound, falling back to the greedy
// incumbent if the node budget is exhausted. PlanGreedy exposes the greedy
// heuristic directly, and PlanMILP solves the textbook linearization on the
// generic MILP engine as a correctness oracle.
package adversary

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
	"cpsguard/internal/milp"
	"cpsguard/internal/screen"
	"cpsguard/internal/telemetry"
)

// Target describes one attackable asset from the SA's point of view.
type Target struct {
	ID string
	// Cost is Catk(t), the expense of mounting the attack.
	Cost float64
	// SuccessProb is Ps(t) ∈ [0,1], the probability the attack succeeds
	// given it is attempted.
	SuccessProb float64
}

// UniformTargets builds a Target list with identical cost and success
// probability for every ID — the configuration used throughout the paper's
// experiments ("the costs are uniform across targets", Section III-C).
func UniformTargets(ids []string, cost, successProb float64) []Target {
	out := make([]Target, len(ids))
	for i, id := range ids {
		out[i] = Target{ID: id, Cost: cost, SuccessProb: successProb}
	}
	return out
}

// Config states one SA instance.
type Config struct {
	// Matrix is the SA's (possibly noise-perturbed) impact matrix.
	Matrix *impact.Matrix
	// Targets lists attack costs/success probabilities. Targets absent
	// from the matrix contribute no profit but still cost money; targets
	// absent from this list are not attackable.
	Targets []Target
	// Budget is MA, the maximum total attack expenditure.
	Budget float64
	// MaxNodes caps the exact search (default 2_000_000 nodes); on
	// exhaustion the best incumbent found so far (at least as good as
	// greedy) is returned with Proven=false.
	MaxNodes int
	// Ctx, when non-nil, is checked every CheckEvery search nodes;
	// cancellation aborts the search and Solve returns the context error
	// (the incumbent is discarded — cancellation is a caller decision,
	// not a degradation).
	Ctx context.Context
	// CheckEvery is the node interval between Ctx/Hook checks
	// (default 4096).
	CheckEvery int
	// Hook is an optional fault-injection checkpoint invoked at site
	// "adversary.node" alongside the Ctx check; a returned error aborts
	// the search, a panic exercises SolveResilient's recovery.
	Hook func(site string) error
	// LPMethod selects the simplex implementation for the MILP oracle's
	// relaxations (SolveMILP and the SolveResilient fallback chain). The
	// exact and greedy searches are combinatorial and unaffected.
	LPMethod lp.Method
	// Screen, when non-nil, is an N-k vulnerability ranking used as a
	// candidate-pruning front-end: targets the screen certified as unable
	// to change the dispatch optimum AND whose optimistic net value is
	// strictly negative are dropped from the search order. The plan is
	// bit-identical to the unscreened search (see DESIGN.md §17) — the
	// filter runs after the optimistic-value sort, so survivors keep their
	// exact relative order, and a dropped target strictly decreases every
	// set's value, so it can never appear in the final argmax.
	Screen *screen.Ranking
}

func (c Config) checkEvery() int {
	if c.CheckEvery > 0 {
		return c.CheckEvery
	}
	return 4096
}

// Plan is a chosen attack.
type Plan struct {
	// Targets is the sorted set T of attacked asset IDs.
	Targets []string
	// Actors is the sorted set A of actors whose profit the SA captures.
	Actors []string
	// Anticipated is the SA's expected return under her own model
	// (Eq. 8's objective value).
	Anticipated float64
	// Proven reports whether the exact search completed.
	Proven bool
	// Nodes counts search nodes explored.
	Nodes int
	// Fallbacks records resilience degradations applied by SolveResilient
	// while producing this plan ("greedy: ...", "milp-oracle: ...").
	// Empty for a clean exact solve.
	Fallbacks []string
}

// ErrNoTargets is returned when the configuration lists no targets.
var ErrNoTargets = errors.New("adversary: no targets configured")

// instance is the preprocessed search state.
type instance struct {
	ids    []string
	cost   []float64
	ps     []float64
	actors []string
	// im[j][i] = IM[actor j][target i] · Ps(i)
	im [][]float64
	// opt[i] = Σ_j max(0, im[j][i]) − cost[i], the subadditive
	// optimistic net value of target i.
	opt    []float64
	budget float64
}

func newInstance(cfg Config) (*instance, error) {
	if len(cfg.Targets) == 0 {
		return nil, ErrNoTargets
	}
	if cfg.Matrix == nil {
		return nil, errors.New("adversary: nil impact matrix")
	}
	in := &instance{budget: cfg.Budget, actors: cfg.Matrix.Actors}
	for _, t := range cfg.Targets {
		if t.Cost < 0 || t.SuccessProb < 0 || t.SuccessProb > 1 ||
			math.IsNaN(t.Cost) || math.IsNaN(t.SuccessProb) {
			return nil, fmt.Errorf("adversary: bad target %+v", t)
		}
		in.ids = append(in.ids, t.ID)
		in.cost = append(in.cost, t.Cost)
		in.ps = append(in.ps, t.SuccessProb)
	}
	in.im = make([][]float64, len(in.actors))
	for j, a := range in.actors {
		row := make([]float64, len(in.ids))
		for i, id := range in.ids {
			row[i] = cfg.Matrix.Get(a, id) * in.ps[i]
		}
		in.im[j] = row
	}
	in.opt = make([]float64, len(in.ids))
	for i := range in.ids {
		v := -in.cost[i]
		for j := range in.actors {
			if x := in.im[j][i]; x > 0 {
				v += x
			}
		}
		in.opt[i] = v
	}
	return in, nil
}

// searchOrder returns the target indices to search, best optimistic value
// first, optionally filtered through the screen. The filter runs on the
// *sorted* order — never on the instance arrays or the pre-sort index set —
// so the relative order of surviving targets is exactly the one the
// unscreened sort produced (sort.Slice is unstable; sorting a different
// slice could reorder equal-opt survivors and change tie resolution in the
// DFS). A target is dropped only when both hold:
//
//   - opt[i] < −1e-9: its optimistic net value is strictly negative, so by
//     subadditivity adding it strictly decreases any set's value — it can
//     never be in the final argmax (soundness rests on this alone);
//   - the screen certified it as zero-impact: the relevance gate that keeps
//     the filter scoped to what the N-k screen actually proved.
func (in *instance) searchOrder(cfg Config) []int {
	order := make([]int, len(in.ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.opt[order[a]] > in.opt[order[b]] })
	if cfg.Screen == nil {
		return order
	}
	kept := order[:0]
	for _, i := range order {
		if in.opt[i] < -1e-9 && cfg.Screen.CertifiedZero(in.ids[i]) {
			mScreenPruned.Inc()
			continue
		}
		kept = append(kept, i)
	}
	mScreenKept.Add(int64(len(kept)))
	return kept
}

// value computes the exact objective of a target set (indices) with the
// closed-form optimal actor choice, returning the value and chosen actors.
func (in *instance) value(set []int) (float64, []int) {
	mEvaluations.Inc()
	obj := 0.0
	for _, i := range set {
		obj -= in.cost[i]
	}
	var actorIdx []int
	for j := range in.actors {
		sum := 0.0
		for _, i := range set {
			sum += in.im[j][i]
		}
		if sum > 0 {
			obj += sum
			actorIdx = append(actorIdx, j)
		}
	}
	return obj, actorIdx
}

func (in *instance) plan(set []int, nodes int, proven bool) *Plan {
	val, actorIdx := in.value(set)
	p := &Plan{Anticipated: val, Proven: proven, Nodes: nodes}
	for _, i := range set {
		p.Targets = append(p.Targets, in.ids[i])
	}
	for _, j := range actorIdx {
		p.Actors = append(p.Actors, in.actors[j])
	}
	sort.Strings(p.Targets)
	sort.Strings(p.Actors)
	return p
}

// Solve finds the optimal attack by branch and bound. The empty attack
// (value 0) is always feasible, so Anticipated ≥ 0.
func Solve(cfg Config) (plan *Plan, err error) {
	sp, _ := telemetry.Default().StartSpanCtx(cfg.Ctx, "adversary.solve", "")
	defer func() { recordSolve(sp, plan, err) }()
	in, err := newInstance(cfg)
	if err != nil {
		return nil, err
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 2_000_000
	}

	// Order targets by optimistic value, best first (improves both the
	// greedy incumbent and pruning), screen-filtered when configured.
	order := in.searchOrder(cfg)

	// Greedy incumbent.
	greedySet := in.greedy(order)
	bestVal, _ := in.value(greedySet)
	bestSet := append([]int(nil), greedySet...)
	if bestVal < 0 {
		bestVal, bestSet = 0, nil
	}

	// Suffix sums of positive optimistic values for bounding: ubTail[k]
	// bounds the value addable by targets order[k:] ignoring budget.
	ubTail := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		v := in.opt[order[k]]
		if v < 0 {
			v = 0
		}
		ubTail[k] = ubTail[k+1] + v
	}

	nodes := 0
	exhausted := false
	var abortErr error
	every := cfg.checkEvery()
	var cur []int

	// Incremental node evaluation: a child set differs from its parent by
	// one appended target, so instead of re-summing captured-actor profits
	// over the whole set at every node (O(actors·depth)), keep per-depth
	// snapshots of the running per-actor sums and the running cost total
	// and extend them by one target on push (O(actors)). The snapshots
	// replay the exact left-to-right additions instance.value performs, so
	// node values — and therefore pruning decisions and the chosen plan —
	// are bit-identical to full re-evaluation (regression-tested against
	// in.value in the solver tests).
	nA := len(in.actors)
	depth := 0
	sums := [][]float64{make([]float64, nA)}
	negCost := []float64{0}
	push := func(i int) {
		prev := sums[depth]
		depth++
		if depth >= len(sums) {
			sums = append(sums, make([]float64, nA))
			negCost = append(negCost, 0)
		}
		next := sums[depth]
		row := prev
		for j := 0; j < nA; j++ {
			next[j] = row[j] + in.im[j][i]
		}
		negCost[depth] = negCost[depth-1] - in.cost[i]
	}
	pop := func() { depth-- }
	nodeValue := func() float64 {
		obj := negCost[depth]
		s := sums[depth]
		for j := 0; j < nA; j++ {
			if s[j] > 0 {
				obj += s[j]
			}
		}
		return obj
	}

	var dfs func(k int, spent float64, curOpt float64)
	dfs = func(k int, spent float64, curOpt float64) {
		if exhausted {
			return
		}
		nodes++
		if nodes > maxNodes {
			exhausted = true
			return
		}
		if nodes%every == 0 {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					exhausted, abortErr = true, err
					return
				}
			}
			if cfg.Hook != nil {
				if err := cfg.Hook("adversary.node"); err != nil {
					exhausted, abortErr = true, fmt.Errorf("adversary: injected at node %d: %w", nodes, err)
					return
				}
			}
		}
		// Evaluate the current set exactly; it is always feasible.
		if val := nodeValue(); val > bestVal+1e-12 {
			bestVal = val
			bestSet = append(bestSet[:0], cur...)
		}
		if k >= len(order) {
			return
		}
		// Bound: optimistic value of chosen ∪ best possible tail.
		if curOpt+ubTail[k] <= bestVal+1e-12 {
			return
		}
		i := order[k]
		// Branch 1: include target i (if affordable).
		if spent+in.cost[i] <= in.budget+1e-12 {
			cur = append(cur, i)
			push(i)
			dfs(k+1, spent+in.cost[i], curOpt+math.Max(in.opt[i], 0)+math.Min(in.opt[i], 0))
			pop()
			cur = cur[:len(cur)-1]
		}
		// Branch 2: exclude target i.
		dfs(k+1, spent, curOpt)
	}
	dfs(0, 0, 0)
	if abortErr != nil {
		return nil, abortErr
	}

	return in.plan(bestSet, nodes, !exhausted), nil
}

// SolveResilient is Solve with the fallback chain of the resilience layer:
// exact branch and bound first; on failure (error or panic, but never
// cancellation) the greedy heuristic; and finally the generic MILP oracle.
// Each degradation is recorded in Plan.Fallbacks so experiment accounting
// can report how a plan was produced.
func SolveResilient(cfg Config) (*Plan, error) {
	plan, err := recovering("exact", func() (*Plan, error) { return Solve(cfg) })
	if err == nil {
		mFallbackDepth.Observe(0)
		return plan, nil
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return nil, err // canceled: stop, don't degrade
	}
	chain := []string{fmt.Sprintf("greedy: exact solver failed (%v)", err)}

	// The greedy heuristic shares newInstance's validation, so invalid
	// configurations still fail here rather than degrade forever.
	plan, gerr := recovering("greedy", func() (*Plan, error) { return SolveGreedy(cfg) })
	if gerr == nil {
		plan.Fallbacks = chain
		mFallbacks.Add(int64(len(chain)))
		mFallbackDepth.Observe(1)
		return plan, nil
	}
	chain = append(chain, fmt.Sprintf("milp-oracle: greedy failed (%v)", gerr))

	plan, merr := recovering("milp-oracle", func() (*Plan, error) { return SolveMILP(cfg) })
	if merr == nil {
		plan.Fallbacks = chain
		mFallbacks.Add(int64(len(chain)))
		mFallbackDepth.Observe(2)
		return plan, nil
	}
	return nil, fmt.Errorf("adversary: all solvers failed: exact (%v); greedy (%v); milp (%w)",
		err, gerr, merr)
}

// recovering converts a panicking solver into an error so the fallback
// chain can degrade instead of crashing the trial.
func recovering(stage string, fn func() (*Plan, error)) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("adversary: %s solver panicked: %v", stage, r)
		}
	}()
	return fn()
}

// greedy grows the target set by best exact marginal value.
func (in *instance) greedy(order []int) []int {
	var set []int
	spent := 0.0
	curVal := 0.0
	used := make([]bool, len(in.ids))
	for {
		bestGain := 1e-12
		bestIdx := -1
		for _, i := range order {
			if used[i] || spent+in.cost[i] > in.budget+1e-12 {
				continue
			}
			v, _ := in.value(append(set, i))
			if g := v - curVal; g > bestGain {
				bestGain = g
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			return set
		}
		set = append(set, bestIdx)
		used[bestIdx] = true
		spent += in.cost[bestIdx]
		curVal += bestGain
	}
}

// SolveGreedy returns the greedy heuristic's plan (used in ablations).
func SolveGreedy(cfg Config) (*Plan, error) {
	in, err := newInstance(cfg)
	if err != nil {
		return nil, err
	}
	set := in.greedy(in.searchOrder(cfg))
	return in.plan(set, len(set), false), nil
}

// SolveMILP solves the standard linearization (y_{ij} = T_i·A_j with
// y ≥ T_i + A_j − 1, y ≤ T_i, y ≤ A_j) on the generic MILP engine. It is
// exponentially slower than Solve and exists as a cross-check oracle for
// tests and for users who add bespoke side constraints.
func SolveMILP(cfg Config) (*Plan, error) {
	in, err := newInstance(cfg)
	if err != nil {
		return nil, err
	}
	nT, nA := len(in.ids), len(in.actors)
	p := lp.NewProblem()
	tVar := make([]int, nT)
	aVar := make([]int, nA)
	for i := range tVar {
		tVar[i] = p.AddVariable("T", in.cost[i], 1) // minimize: +cost when attacked
	}
	for j := range aVar {
		aVar[j] = p.AddVariable("A", 0, 1)
	}
	binary := append(append([]int(nil), tVar...), aVar...)
	for i := 0; i < nT; i++ {
		for j := 0; j < nA; j++ {
			w := in.im[j][i]
			if w == 0 {
				continue
			}
			y := p.AddVariable("y", -w, 1)
			// y ≤ T_i, y ≤ A_j, y ≥ T_i + A_j − 1. For positive w the
			// objective (−w·y, minimized) pushes y up, so the ≤ rows
			// bind; for negative w it pushes y down, so the ≥ row
			// binds. All three keep y = T·A at binary points.
			p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: y, Value: 1}, {Var: tVar[i], Value: -1}}, Sense: lp.LE, RHS: 0})
			p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: y, Value: 1}, {Var: aVar[j], Value: -1}}, Sense: lp.LE, RHS: 0})
			p.AddConstraint(lp.Constraint{Coefs: []lp.Coef{{Var: y, Value: 1}, {Var: tVar[i], Value: -1}, {Var: aVar[j], Value: -1}}, Sense: lp.GE, RHS: -1})
		}
	}
	budgetCoefs := make([]lp.Coef, nT)
	for i := range tVar {
		budgetCoefs[i] = lp.Coef{Var: tVar[i], Value: in.cost[i]}
	}
	p.AddConstraint(lp.Constraint{Coefs: budgetCoefs, Sense: lp.LE, RHS: in.budget})

	sol, err := milp.Solve(milp.Problem{LP: p, Binary: binary},
		milp.Options{Ctx: cfg.Ctx, LP: lp.Options{Method: cfg.LPMethod}})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("adversary: MILP status %v", sol.Status)
	}
	var set []int
	for i, v := range tVar {
		if sol.X[v] > 0.5 {
			set = append(set, i)
		}
	}
	return in.plan(set, sol.Nodes, sol.Proven), nil
}

// EvaluateOptions controls realized-profit evaluation.
type EvaluateOptions struct {
	// Defended marks assets whose attacks fail (the defender's
	// investment nullifies the perturbation); the SA still pays Catk.
	Defended map[string]bool
}

// Evaluate computes the profit a plan actually realizes against the ground
// truth impact matrix: the SA keeps her chosen positions (Actors) and target
// expenditures, but the impacts come from truth rather than from her model
// (Section III-C: "the actual impact comes from what the ground truth model
// experiences"). Defended targets contribute cost but no impact.
func Evaluate(p *Plan, truth *impact.Matrix, targets []Target, opts EvaluateOptions) float64 {
	cost := map[string]float64{}
	ps := map[string]float64{}
	for _, t := range targets {
		cost[t.ID] = t.Cost
		ps[t.ID] = t.SuccessProb
	}
	total := 0.0
	for _, t := range p.Targets {
		total -= cost[t]
		if opts.Defended[t] {
			continue
		}
		for _, a := range p.Actors {
			total += truth.Get(a, t) * ps[t]
		}
	}
	return total
}
