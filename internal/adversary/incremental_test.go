package adversary

import (
	"fmt"
	"testing"

	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
)

// incrementalFixture builds a dense adversarial instance with mixed-sign
// impacts so the branch and bound explores a nontrivial tree.
func incrementalFixture(nTargets, nActors int, seed uint64) Config {
	rs := rng.New(seed)
	m := &impact.Matrix{IM: map[string]map[string]float64{}, WelfareDelta: map[string]float64{}}
	for j := 0; j < nActors; j++ {
		a := fmt.Sprintf("a%d", j)
		m.Actors = append(m.Actors, a)
		m.IM[a] = map[string]float64{}
	}
	var ids []string
	for i := 0; i < nTargets; i++ {
		t := fmt.Sprintf("e%d", i)
		ids = append(ids, t)
		m.Targets = append(m.Targets, t)
		for _, a := range m.Actors {
			m.IM[a][t] = (rs.Float64() - 0.4) * 10
		}
	}
	return Config{
		Matrix:  m,
		Targets: UniformTargets(ids, 1, 0.9),
		Budget:  float64(nTargets) / 2,
	}
}

// TestIncrementalEvaluationCounters is the regression test for the hoisted
// per-node evaluation: the DFS must price nodes from the parent's running
// sums, not by re-evaluating the whole target set, so the evaluation counter
// stays bounded by the greedy warm-up while the node counter scales with the
// search tree.
func TestIncrementalEvaluationCounters(t *testing.T) {
	cfg := incrementalFixture(14, 5, 3)
	evals0, nodes0 := mEvaluations.Value(), mNodes.Value()
	plan, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evals, nodes := mEvaluations.Value()-evals0, mNodes.Value()-nodes0
	if nodes != int64(plan.Nodes) {
		t.Fatalf("node counter delta %d != plan.Nodes %d", nodes, plan.Nodes)
	}
	if plan.Nodes < 100 {
		t.Fatalf("fixture too easy to regression-test search cost (%d nodes)", plan.Nodes)
	}
	// Full evaluations happen only in the greedy warm-up (≤ n² probes) and
	// the final plan rendering — never per search node.
	n := int64(len(cfg.Targets))
	if budget := n*n + n + 2; evals > budget {
		t.Fatalf("evaluations delta %d exceeds non-search budget %d — per-node re-evaluation is back (nodes=%d)",
			evals, budget, nodes)
	}
	if evals >= nodes {
		t.Fatalf("evaluations (%d) should be far below nodes (%d)", evals, nodes)
	}
}

// TestIncrementalMatchesExhaustive checks the incremental node values drive
// the search to the same optimum as exhaustive enumeration with the full
// evaluator — exact equality, because the running sums replay instance.value's
// addition order bit for bit.
func TestIncrementalMatchesExhaustive(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := incrementalFixture(11, 4, seed)
		plan, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Proven {
			t.Fatalf("seed %d: search not proven", seed)
		}
		in, err := newInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		n := len(in.ids)
		for mask := 1; mask < 1<<n; mask++ {
			var set []int
			spent := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					set = append(set, i)
					spent += in.cost[i]
				}
			}
			if spent > in.budget+1e-12 {
				continue
			}
			if v, _ := in.value(set); v > best {
				best = v
			}
		}
		if plan.Anticipated != best {
			t.Fatalf("seed %d: search value %v != exhaustive optimum %v", seed, plan.Anticipated, best)
		}
	}
}
