package adversary

import (
	"math"
	"sort"
	"testing"

	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// matrixOf builds an impact.Matrix from a dense map for testing.
func matrixOf(im map[string]map[string]float64) *impact.Matrix {
	m := &impact.Matrix{IM: map[string]map[string]float64{}, WelfareDelta: map[string]float64{}}
	targetSet := map[string]bool{}
	for a, row := range im {
		m.Actors = append(m.Actors, a)
		m.IM[a] = map[string]float64{}
		for t, v := range row {
			m.IM[a][t] = v
			targetSet[t] = true
		}
	}
	sort.Strings(m.Actors)
	for t := range targetSet {
		m.Targets = append(m.Targets, t)
	}
	sort.Strings(m.Targets)
	return m
}

func simpleMatrix() *impact.Matrix {
	return matrixOf(map[string]map[string]float64{
		"A": {"t1": +10, "t2": -4, "t3": +1},
		"B": {"t1": -12, "t2": +6, "t3": +1},
		"C": {"t1": +1, "t2": -1, "t3": -5},
	})
}

func TestSolvePicksProfitableTargetsAndActors(t *testing.T) {
	m := simpleMatrix()
	cfg := Config{
		Matrix:  m,
		Targets: UniformTargets(m.Targets, 1, 1),
		Budget:  2,
	}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Proven {
		t.Fatal("small instance must be proven optimal")
	}
	// Best 2-target attack: {t1,t2} with A = {A,B}? Capture per actor:
	// A: 10−4=6>0 include; B: −12+6=−6 exclude; C: 1−1=0 exclude.
	// value = 6 − 2 = 4.
	// Alternative {t1,t3}: A: 11, B: −11, C: −4 → 11−2 = 9. Better!
	// {t2,t3}: A:−3, B:7, C:−6 → 7−2=5. {t1}: A=10,C=1 → 11−1=10. Best!
	// Wait {t1} alone: A:+10 → include; C:+1 → include → 11−1=10.
	// {t1,t3}: A:11, B:−11, C:−4 → 11−2=9. So optimum is {t1} = 10.
	if !approx(p.Anticipated, 10, 1e-9) {
		t.Fatalf("anticipated = %v (targets %v actors %v), want 10", p.Anticipated, p.Targets, p.Actors)
	}
	if len(p.Targets) != 1 || p.Targets[0] != "t1" {
		t.Fatalf("targets = %v, want [t1]", p.Targets)
	}
	wantActors := []string{"A", "C"}
	if len(p.Actors) != 2 || p.Actors[0] != wantActors[0] || p.Actors[1] != wantActors[1] {
		t.Fatalf("actors = %v, want %v", p.Actors, wantActors)
	}
}

func TestBudgetConstrains(t *testing.T) {
	m := simpleMatrix()
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 5, 1), Budget: 4.9}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Targets) != 0 || p.Anticipated != 0 {
		t.Fatalf("unaffordable attack should be empty: %+v", p)
	}
}

func TestSuccessProbabilityScalesProfit(t *testing.T) {
	m := simpleMatrix()
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 0.5), Budget: 1}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// {t1} at Ps=0.5: capture A 5, C 0.5 → 5.5 − 1 = 4.5.
	if !approx(p.Anticipated, 4.5, 1e-9) {
		t.Fatalf("anticipated = %v, want 4.5", p.Anticipated)
	}
}

func TestAllActorsMeansNoAttack(t *testing.T) {
	// Paper: "if A is every actor, the target set T will be empty because
	// the underlying system is operating at a maximal social welfare."
	// Equivalent check: a matrix whose columns are all ≤ 0 in sum and
	// individually non-positive for every actor → empty attack.
	m := matrixOf(map[string]map[string]float64{
		"A": {"t1": -3, "t2": -1},
		"B": {"t1": -2, "t2": -2},
	})
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 0, 1), Budget: 10}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Targets) != 0 || p.Anticipated != 0 {
		t.Fatalf("no-gain matrix should yield empty attack, got %+v", p)
	}
}

func TestZeroCostTargetsAllProfitableChosen(t *testing.T) {
	m := simpleMatrix()
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 0, 1), Budget: 0}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Free attacks: optimum is the subset maximizing Σ_j max(0, capture).
	// Enumerate: {t1,t2,t3}: A:7,B:−5,C:−5 → 7. {t1,t3}: A:11 → 11.
	// {t1}: 11. {t1,t2}: 6. {t3}: A1+B1 → 2. {t1,t3} vs {t1}: equal 11.
	if !approx(p.Anticipated, 11, 1e-9) {
		t.Fatalf("anticipated = %v, want 11", p.Anticipated)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rs := rng.Derive(7, uint64(trial))
		im := map[string]map[string]float64{}
		nA, nT := 2+rs.Intn(4), 3+rs.Intn(8)
		var tids []string
		for i := 0; i < nT; i++ {
			tids = append(tids, "t"+string(rune('a'+i)))
		}
		for j := 0; j < nA; j++ {
			row := map[string]float64{}
			for _, tid := range tids {
				row[tid] = (rs.Float64() - 0.5) * 20
			}
			im["A"+string(rune('0'+j))] = row
		}
		m := matrixOf(im)
		cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: float64(1 + rs.Intn(4))}
		exact, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := SolveGreedy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Anticipated > exact.Anticipated+1e-9 {
			t.Fatalf("greedy %v beat exact %v", greedy.Anticipated, exact.Anticipated)
		}
		if !exact.Proven {
			t.Fatal("exact search should prove optimality on tiny instances")
		}
	}
}

func TestExactMatchesMILPOracle(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rs := rng.Derive(13, uint64(trial))
		im := map[string]map[string]float64{}
		for j := 0; j < 3; j++ {
			row := map[string]float64{}
			for i := 0; i < 4; i++ {
				row["t"+string(rune('0'+i))] = (rs.Float64() - 0.5) * 10
			}
			im["A"+string(rune('0'+j))] = row
		}
		m := matrixOf(im)
		cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 0.8), Budget: 2}
		exact, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := SolveMILP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(exact.Anticipated, oracle.Anticipated, 1e-6*(1+math.Abs(oracle.Anticipated))) {
			t.Fatalf("trial %d: exact %v ≠ MILP %v", trial, exact.Anticipated, oracle.Anticipated)
		}
	}
}

func TestEvaluateRealizedVsAnticipated(t *testing.T) {
	believed := simpleMatrix()
	truth := matrixOf(map[string]map[string]float64{
		"A": {"t1": +2, "t2": -4, "t3": +1}, // t1 is much less valuable in truth
		"B": {"t1": -12, "t2": +6, "t3": +1},
		"C": {"t1": +1, "t2": -1, "t3": -5},
	})
	targets := UniformTargets(believed.Targets, 1, 1)
	p, err := Solve(Config{Matrix: believed, Targets: targets, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	realized := Evaluate(p, truth, targets, EvaluateOptions{})
	// Plan was {t1} with actors {A,C}: realized = 2+1−1 = 2 < 10.
	if !approx(realized, 2, 1e-9) {
		t.Fatalf("realized = %v, want 2", realized)
	}
	if realized >= p.Anticipated {
		t.Fatal("overconfident SA should realize less than anticipated")
	}
}

func TestEvaluateDefendedTargets(t *testing.T) {
	m := simpleMatrix()
	targets := UniformTargets(m.Targets, 1, 1)
	p, err := Solve(Config{Matrix: m, Targets: targets, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	realized := Evaluate(p, m, targets, EvaluateOptions{Defended: map[string]bool{"t1": true}})
	// Attack on t1 fails; SA still pays 1.
	if !approx(realized, -1, 1e-9) {
		t.Fatalf("defended realized = %v, want -1", realized)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Solve(Config{Matrix: simpleMatrix()}); err != ErrNoTargets {
		t.Fatalf("err = %v, want ErrNoTargets", err)
	}
	if _, err := Solve(Config{Targets: UniformTargets([]string{"t"}, 1, 1)}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	bad := Config{Matrix: simpleMatrix(), Targets: []Target{{ID: "t1", Cost: -1, SuccessProb: 1}}}
	if _, err := Solve(bad); err == nil {
		t.Fatal("negative cost accepted")
	}
	bad2 := Config{Matrix: simpleMatrix(), Targets: []Target{{ID: "t1", Cost: 1, SuccessProb: 2}}}
	if _, err := Solve(bad2); err == nil {
		t.Fatal("Ps > 1 accepted")
	}
}

func TestNodeLimitFallsBackToIncumbent(t *testing.T) {
	rs := rng.New(3)
	im := map[string]map[string]float64{}
	var tids []string
	for i := 0; i < 20; i++ {
		tids = append(tids, "t"+string(rune('a'+i)))
	}
	for j := 0; j < 6; j++ {
		row := map[string]float64{}
		for _, tid := range tids {
			row[tid] = (rs.Float64() - 0.5) * 20
		}
		im["A"+string(rune('0'+j))] = row
	}
	m := matrixOf(im)
	cfg := Config{Matrix: m, Targets: UniformTargets(m.Targets, 1, 1), Budget: 6, MaxNodes: 5}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Proven {
		t.Fatal("node-limited search cannot be proven")
	}
	greedy, _ := SolveGreedy(cfg)
	if p.Anticipated < greedy.Anticipated-1e-9 {
		t.Fatalf("fallback (%v) worse than greedy (%v)", p.Anticipated, greedy.Anticipated)
	}
}

func TestUniformTargets(t *testing.T) {
	ts := UniformTargets([]string{"a", "b"}, 2, 0.7)
	if len(ts) != 2 || ts[0].Cost != 2 || ts[1].SuccessProb != 0.7 || ts[0].ID != "a" {
		t.Fatalf("UniformTargets = %+v", ts)
	}
}
