package adversary

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cpsguard/internal/impact"
)

func resilientMatrix() *impact.Matrix {
	m := &impact.Matrix{
		Actors:  []string{"a1", "a2"},
		Targets: []string{"t1", "t2", "t3"},
		IM: map[string]map[string]float64{
			"a1": {"t1": 5, "t2": -2, "t3": 1},
			"a2": {"t1": -1, "t2": 4, "t3": 2},
		},
		WelfareDelta: map[string]float64{"t1": -4, "t2": -3, "t3": -2},
	}
	return m
}

func resilientConfig() Config {
	return Config{
		Matrix:  resilientMatrix(),
		Targets: UniformTargets([]string{"t1", "t2", "t3"}, 1, 1),
		Budget:  2,
	}
}

func TestSolveResilientCleanPathHasNoFallbacks(t *testing.T) {
	plan, err := SolveResilient(resilientConfig())
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(plan.Fallbacks) != 0 {
		t.Fatalf("clean solve recorded fallbacks: %v", plan.Fallbacks)
	}
	exact, err := Solve(resilientConfig())
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if plan.Anticipated != exact.Anticipated {
		t.Fatalf("resilient %v != exact %v", plan.Anticipated, exact.Anticipated)
	}
}

func TestSolveResilientFallsBackToGreedyOnHookError(t *testing.T) {
	cfg := resilientConfig()
	cfg.CheckEvery = 1
	cfg.Hook = func(site string) error { return errors.New("injected") }
	plan, err := SolveResilient(cfg)
	if err != nil {
		t.Fatalf("err = %v, want greedy fallback to succeed", err)
	}
	if len(plan.Fallbacks) != 1 || !strings.HasPrefix(plan.Fallbacks[0], "greedy:") {
		t.Fatalf("Fallbacks = %v, want one greedy record", plan.Fallbacks)
	}
	if plan.Proven {
		t.Fatal("greedy fallback claims proven optimality")
	}
	if plan.Anticipated <= 0 {
		t.Fatalf("greedy plan anticipated %v, want > 0", plan.Anticipated)
	}
}

func TestSolveResilientRecoversHookPanic(t *testing.T) {
	cfg := resilientConfig()
	cfg.CheckEvery = 1
	cfg.Hook = func(site string) error { panic("injected panic") }
	plan, err := SolveResilient(cfg)
	if err != nil {
		t.Fatalf("err = %v, want panic recovered into greedy fallback", err)
	}
	if len(plan.Fallbacks) != 1 || !strings.Contains(plan.Fallbacks[0], "panicked") {
		t.Fatalf("Fallbacks = %v, want record naming the panic", plan.Fallbacks)
	}
}

func TestSolveResilientNeverMasksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := resilientConfig()
	cfg.Ctx = ctx
	cfg.CheckEvery = 1
	_, err := SolveResilient(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (no silent degradation)", err)
	}
}

func TestSolveResilientInvalidConfigFailsEverywhere(t *testing.T) {
	cfg := resilientConfig()
	cfg.Targets = nil
	_, err := SolveResilient(cfg)
	if !errors.Is(err, ErrNoTargets) {
		t.Fatalf("err = %v, want ErrNoTargets from all stages", err)
	}
}
