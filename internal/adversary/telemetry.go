// Telemetry instruments for the strategic-adversary layer. The DFS is
// sequential and seeded, so node and evaluation counts are deterministic;
// fallback depth records how far down the exact→greedy→MILP chain
// SolveResilient had to degrade (0 = clean exact solve).
package adversary

import "cpsguard/internal/telemetry"

var (
	mSolves        = telemetry.NewCounter("adversary.solves")
	mErrors        = telemetry.NewCounter("adversary.errors")
	mNodes         = telemetry.NewCounter("adversary.nodes")
	mEvaluations   = telemetry.NewCounter("adversary.evaluations")
	mUnproven      = telemetry.NewCounter("adversary.unproven_exits")
	mFallbacks     = telemetry.NewCounter("adversary.fallbacks")
	mNodesHist     = telemetry.NewHistogram("adversary.nodes_per_solve", telemetry.WorkEdges)
	mFallbackDepth = telemetry.NewHistogram("adversary.fallback_depth", telemetry.DepthEdges)
	// Screen front-end: candidates dropped from vs kept in the search
	// order when a vulnerability ranking is attached (Config.Screen).
	mScreenPruned = telemetry.NewCounter("adversary.screen_pruned")
	mScreenKept   = telemetry.NewCounter("adversary.screen_kept")
)

// recordSolve books one exact Solve outcome and closes its span.
func recordSolve(sp *telemetry.Span, plan *Plan, err error) {
	mSolves.Inc()
	if err != nil {
		mErrors.Inc()
		sp.AddDegradations("error: " + err.Error())
	}
	if plan != nil {
		mNodes.Add(int64(plan.Nodes))
		mNodesHist.Observe(int64(plan.Nodes))
		sp.SetWork(int64(plan.Nodes))
		if !plan.Proven {
			mUnproven.Inc()
		}
	}
	sp.End()
}
