package impact

import (
	"math"
	"strings"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/graph"
	"cpsguard/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// duopoly: two parallel supply chains serving one city. Attacking one chain
// benefits the other's owner — the paper's competitor-elimination scenario.
func duopoly() (*graph.Graph, actors.Ownership) {
	g := graph.New("duopoly")
	g.MustAddVertex(graph.Vertex{ID: "gen1", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "gen2", Supply: 100, SupplyCost: 3})
	g.MustAddVertex(graph.Vertex{ID: "city", Demand: 120, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "chain1", From: "gen1", To: "city", Capacity: 80})
	g.MustAddEdge(graph.Edge{ID: "chain2", From: "gen2", To: "city", Capacity: 80})
	o := actors.Ownership{"chain1": "A", "chain2": "B"}
	return g, o
}

func TestFieldString(t *testing.T) {
	if Capacity.String() != "capacity" || Cost.String() != "cost" || Loss.String() != "loss" {
		t.Fatal("Field strings wrong")
	}
	if !strings.Contains(Field(9).String(), "9") {
		t.Fatal("unknown field should render its number")
	}
}

func TestApply(t *testing.T) {
	g, _ := duopoly()
	gp, err := Apply(g, Outage("chain1"))
	if err != nil {
		t.Fatal(err)
	}
	if gp.Edge("chain1").Capacity != 0 {
		t.Fatal("outage not applied")
	}
	if g.Edge("chain1").Capacity != 80 {
		t.Fatal("Apply mutated input")
	}
	if _, err := Apply(g, Perturbation{EdgeID: "nope", Field: Capacity}); err == nil {
		t.Fatal("unknown edge accepted")
	}
	if _, err := Apply(g, Perturbation{EdgeID: "chain1", Field: Field(99), Value: 1}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Apply(g, Perturbation{EdgeID: "chain1", Field: Loss, Value: 2}); err == nil {
		t.Fatal("invalid loss accepted")
	}
	gp2, err := Apply(g, Perturbation{EdgeID: "chain2", Field: Cost, Value: 1.5},
		Perturbation{EdgeID: "chain1", Field: Loss, Value: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if gp2.Edge("chain2").Cost != 1.5 || gp2.Edge("chain1").Loss != 0.25 {
		t.Fatal("multi-perturbation failed")
	}
}

func TestCompetitorElimination(t *testing.T) {
	g, o := duopoly()
	an := &Analysis{Graph: g, Ownership: o}
	deltas, dw, err := an.Of(Outage("chain1"))
	if err != nil {
		t.Fatal(err)
	}
	// System as a whole loses (welfare drop).
	if dw >= -1e-6 {
		t.Fatalf("welfare delta = %v, want negative", dw)
	}
	// A (attacked owner) loses, B gains (monopoly at the margin):
	// pre-attack λ(city)=3 (marginal gen2); post-attack demand exceeds
	// remaining capacity → λ(city)=10, B pockets the scarcity rent.
	if deltas["A"] >= 0 {
		t.Fatalf("attacked owner gained: %v", deltas)
	}
	if deltas["B"] <= 0 {
		t.Fatalf("competitor did not gain: %v", deltas)
	}
	// Zero-sum against welfare: Σ_a IM[a,t] = Δwelfare.
	sum := 0.0
	for _, v := range deltas {
		sum += v
	}
	if !approx(sum, dw, 1e-6*(1+math.Abs(dw))) {
		t.Fatalf("Σ impacts %v ≠ Δwelfare %v", sum, dw)
	}
}

func TestBaselineProfits(t *testing.T) {
	g, o := duopoly()
	an := &Analysis{Graph: g, Ownership: o}
	p, r, err := an.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Total(), r.Welfare, 1e-6*(1+r.Welfare)) {
		t.Fatalf("baseline profits %v don't sum to welfare %v", p.Total(), r.Welfare)
	}
}

func TestComputeMatrixAllTargets(t *testing.T) {
	g, o := duopoly()
	an := &Analysis{Graph: g, Ownership: o}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Targets) != 2 {
		t.Fatalf("targets = %v", m.Targets)
	}
	if m.BaselineWelfare <= 0 {
		t.Fatal("baseline welfare should be positive")
	}
	// Each column must be zero-sum against its welfare delta.
	for _, target := range m.Targets {
		sum := 0.0
		for _, a := range m.Actors {
			sum += m.Get(a, target)
		}
		if !approx(sum, m.WelfareDelta[target], 1e-6*(1+math.Abs(m.WelfareDelta[target]))) {
			t.Errorf("target %s: Σ=%v Δw=%v", target, sum, m.WelfareDelta[target])
		}
		if m.WelfareDelta[target] > 1e-6 {
			t.Errorf("target %s: welfare increased under attack (%v)", target, m.WelfareDelta[target])
		}
	}
	gain, loss := m.GainLoss()
	if gain < 0 || loss > 0 {
		t.Fatalf("gain=%v loss=%v signs wrong", gain, loss)
	}
	if gain == 0 {
		t.Fatal("duopoly attack should produce a gainer")
	}
}

func TestMatrixAccessors(t *testing.T) {
	g, o := duopoly()
	an := &Analysis{Graph: g, Ownership: o}
	m, err := an.ComputeMatrix([]string{"chain1"})
	if err != nil {
		t.Fatal(err)
	}
	col := m.Column("chain1")
	if len(col) != len(m.Actors) {
		t.Fatalf("column size %d, actors %d", len(col), len(m.Actors))
	}
	if m.Get("A", "chain1") != col["A"] {
		t.Fatal("Get/Column disagree")
	}
	if m.Get("unknown-actor", "chain1") != 0 {
		t.Fatal("unknown actor should read 0")
	}
}

func TestMatrixWithMoreActorsProducesMoreGain(t *testing.T) {
	// Sanity version of Fig. 2's driving intuition on a richer model:
	// with a single actor there is no gainer (all impacts ≤ 0); with
	// competing actors some positive impacts appear.
	g, _ := duopoly()
	mono := actors.Ownership{"chain1": "A", "chain2": "A"}
	an := &Analysis{Graph: g, Ownership: mono}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	gain, _ := m.GainLoss()
	if gain > 1e-6 {
		t.Fatalf("monopoly ownership should never gain from attacks, gain=%v", gain)
	}
	duo := actors.Ownership{"chain1": "A", "chain2": "B"}
	an2 := &Analysis{Graph: g, Ownership: duo}
	m2, err := an2.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	gain2, _ := m2.GainLoss()
	if gain2 <= gain {
		t.Fatalf("competition should raise attack gains: %v vs %v", gain2, gain)
	}
}

func TestAnalysisWithIterativeModel(t *testing.T) {
	g, o := duopoly()
	an := &Analysis{Graph: g, Ownership: o, Model: actors.IterativeDivision{}}
	_, dw, err := an.Of(Outage("chain2"))
	if err != nil {
		t.Fatal(err)
	}
	if dw >= 0 {
		t.Fatalf("welfare delta %v, want negative", dw)
	}
}

func TestMatrixDeterministic(t *testing.T) {
	// Random ownership + parallel matrix computation must be reproducible.
	g, _ := duopoly()
	o := actors.RandomOwnership(g, 2, rng.New(11))
	an := &Analysis{Graph: g, Ownership: o}
	m1, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m1.Actors {
		for _, tg := range m1.Targets {
			if m1.Get(a, tg) != m2.Get(a, tg) {
				t.Fatalf("nondeterministic IM[%s][%s]", a, tg)
			}
		}
	}
}
