// Solve memoization and warm starting for impact analyses.
//
// Cache keys canonicalize the perturbation set — duplicates collapse
// last-wins per (edge, field), order is normalized — and are salted with a
// fingerprint of everything else the result depends on: the graph bytes,
// the ownership assignment, the profit model, and whether warm starting is
// in effect. Two Analyses over identical scenarios therefore share entries,
// and any difference in scenario content changes the salt rather than
// silently aliasing.
//
// The memo stores absolute per-actor profits, not deltas, so hits replay
// the exact delta arithmetic of a fresh solve against the caller's
// baseline; with warm starting off, cached results are bit-identical to
// uncached ones.
package impact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"cpsguard/internal/actors"
	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
	"cpsguard/internal/solvecache"
)

// CanonicalKey returns a canonical hex digest of a perturbation set: the
// same attack always yields the same key regardless of perturbation order
// or redundant entries. Matching Apply's semantics, a later perturbation of
// the same (edge, field) overrides an earlier one before normalization.
func CanonicalKey(ps ...Perturbation) string {
	type slot struct {
		edge  string
		field Field
	}
	last := make(map[slot]float64, len(ps))
	for _, p := range ps {
		last[slot{p.EdgeID, p.Field}] = p.Value
	}
	keys := make([]slot, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].edge != keys[j].edge {
			return keys[i].edge < keys[j].edge
		}
		return keys[i].field < keys[j].field
	})
	h := sha256.New()
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(k.edge)))
		h.Write(buf[:])
		h.Write([]byte(k.edge))
		h.Write([]byte{byte(k.field)})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(last[k]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// salt fingerprints everything a memoized result depends on besides the
// perturbation set. Empty when no cache is attached (callers use "" as the
// cache-off sentinel).
func (a *Analysis) salt() string {
	if a.Cache == nil {
		return ""
	}
	h := sha256.New()
	h.Write([]byte(a.Graph.Fingerprint()))
	assets := make([]string, 0, len(a.Ownership))
	for asset := range a.Ownership {
		assets = append(assets, asset)
	}
	sort.Strings(assets)
	for _, asset := range assets {
		h.Write([]byte(asset))
		h.Write([]byte{0})
		h.Write([]byte(a.Ownership[asset]))
		h.Write([]byte{1})
	}
	h.Write([]byte(a.model().Name()))
	if a.WarmStart {
		// Warm-started optima agree with cold within tolerance but not
		// necessarily in the last ulp; keep the entry families apart so a
		// cache shared across differently configured Analyses stays exact.
		h.Write([]byte{2})
	}
	if a.LPMethod != lp.MethodAuto {
		// Same reasoning per simplex implementation: methods agree within
		// tolerance, not bit for bit, so each gets its own entry family.
		// MethodAuto writes nothing, keeping pre-existing cache keys (and
		// the stores built on them) byte-identical.
		h.Write([]byte{3, byte(a.LPMethod)})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// baselineState is the slice of the baseline dispatch that perturbation
// deltas are measured against.
type baselineState struct {
	profits actors.Profits
	welfare float64
	basis   *lp.Basis
	support []string
}

// baseline resolves the baseline state, memoized in the cache when one is
// attached (the baseline is by far the most repeated solve: every Of and
// every matrix column needs it).
func (a *Analysis) baseline(salt string) (baselineState, error) {
	key := salt + "|baseline"
	if a.Cache != nil {
		if e, ok := a.Cache.Get(key); ok {
			return baselineState{profits: e.Profits, welfare: e.Welfare, basis: e.Basis, support: e.Support}, nil
		}
	}
	p, r, err := a.Baseline()
	if err != nil {
		return baselineState{}, err
	}
	st := baselineState{profits: p, welfare: r.Welfare, basis: r.Basis, support: supportOf(a.Graph, r)}
	if a.Cache != nil {
		a.Cache.Put(key, solvecache.Entry{Profits: p, Welfare: r.Welfare, Basis: r.Basis, Support: st.support})
	}
	return st, nil
}

// supportOf lists the edges carrying nonzero flow in r, in g.Edges index
// order — a deterministic dominance certificate for the N-k screen. The
// exact-zero test is intentional: nonbasic flow variables sit exactly at
// their zero lower bound, and the screen's soundness argument needs "zero
// flow", not "small flow".
func supportOf(g *graph.Graph, r *flow.Result) []string {
	support := make([]string, 0, len(g.Edges))
	for i := range g.Edges {
		if r.Flow[g.Edges[i].ID] != 0 {
			support = append(support, g.Edges[i].ID)
		}
	}
	return support
}

// ofCached prices one perturbation set against the baseline, consulting the
// memo first and warm-starting the dispatch from the baseline basis when
// enabled. The delta arithmetic is shared between hit and miss paths so a
// hit reproduces a fresh solve bit for bit.
func (a *Analysis) ofCached(salt string, base baselineState, ps []Perturbation) (actors.Profits, float64, error) {
	e, err := a.ofCachedEntry(salt, base, ps)
	if err != nil {
		return nil, 0, err
	}
	return deltaProfits(e.Profits, base.profits), e.Welfare - base.welfare, nil
}

// ofCachedEntry is ofCached in absolute form: it returns the full memo
// entry (absolute profits, welfare, basis, flow support) for one
// perturbation set, solving and memoizing on a miss. Entries read from a
// cache populated before support recording carry a nil Support; callers
// needing the certificate must treat nil as "none", not "empty".
func (a *Analysis) ofCachedEntry(salt string, base baselineState, ps []Perturbation) (solvecache.Entry, error) {
	var key string
	if a.Cache != nil {
		key = salt + "|" + CanonicalKey(ps...)
		if e, ok := a.Cache.Get(key); ok {
			return e, nil
		}
	}
	gp, err := Apply(a.Graph, ps...)
	if err != nil {
		return solvecache.Entry{}, err
	}
	var opts flow.Options
	opts.LP.Method = a.LPMethod
	if a.WarmStart {
		opts.LP.WarmStart = base.basis
	}
	r, err := flow.DispatchOpts(gp, opts)
	if err != nil {
		return solvecache.Entry{}, err
	}
	p, err := a.model().Divide(gp, r, a.Ownership)
	if err != nil {
		return solvecache.Entry{}, err
	}
	e := solvecache.Entry{Profits: p, Welfare: r.Welfare, Basis: r.Basis, Support: supportOf(a.Graph, r)}
	if a.Cache != nil {
		a.Cache.Put(key, e)
	}
	return e, nil
}

// deltaProfits computes perturbed − base per actor, including actors that
// vanish from the perturbed division (their entire profit is lost). Each
// entry is a single subtraction, so map iteration order cannot affect bits.
func deltaProfits(p, base actors.Profits) actors.Profits {
	delta := actors.Profits{}
	for actor, v := range p {
		delta[actor] = v - base[actor]
	}
	for actor, v := range base {
		if _, ok := p[actor]; !ok {
			delta[actor] = -v
		}
	}
	return delta
}
