// Package impact implements Section II-D3: attacks are represented as
// perturbations of the flow-graph parameters (capacity, cost, loss), and
// their impact is the change they induce in each actor's profit,
// Impact = Utility′ − Utility.
//
// The central artifact is the impact matrix IM[a,t] — the profit delta for
// actor a when target (asset/edge) t is attacked — which drives both the
// strategic adversary (package adversary) and the defenders (package
// defense). Because profits are divided by a model that sums exactly to
// social welfare, Σ_a IM[a,t] equals the welfare change of the attack: the
// "gains are met with losses" zero-sum property behind the paper's Fig. 2.
package impact

import (
	"fmt"
	"sort"

	"cpsguard/internal/actors"
	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
	"cpsguard/internal/parallel"
	"cpsguard/internal/solvecache"
)

// Field names a perturbable edge parameter.
type Field int8

const (
	// Capacity perturbs c(u,v).
	Capacity Field = iota
	// Cost perturbs a(u,v).
	Cost
	// Loss perturbs l(u,v).
	Loss
)

// String implements fmt.Stringer.
func (f Field) String() string {
	switch f {
	case Capacity:
		return "capacity"
	case Cost:
		return "cost"
	case Loss:
		return "loss"
	default:
		return fmt.Sprintf("Field(%d)", int8(f))
	}
}

// Perturbation is one parameter override on one edge.
type Perturbation struct {
	EdgeID string
	Field  Field
	// Value is the new absolute value of the field.
	Value float64
}

// Outage returns the paper's experimental attack: reduce the target's
// capacity to zero ("crashing a PLC", Section III-A3).
func Outage(edgeID string) Perturbation {
	return Perturbation{EdgeID: edgeID, Field: Capacity, Value: 0}
}

// Apply returns a clone of g with the perturbations applied. Unknown edge
// IDs return an error (attacking a non-existent asset is a modeling bug).
func Apply(g *graph.Graph, ps ...Perturbation) (*graph.Graph, error) {
	c := g.Clone()
	for _, p := range ps {
		e := c.Edge(p.EdgeID)
		if e == nil {
			return nil, fmt.Errorf("impact: unknown edge %q", p.EdgeID)
		}
		switch p.Field {
		case Capacity:
			e.Capacity = p.Value
		case Cost:
			e.Cost = p.Value
		case Loss:
			e.Loss = p.Value
		default:
			return nil, fmt.Errorf("impact: unknown field %v", p.Field)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("impact: perturbed graph invalid: %w", err)
	}
	return c, nil
}

// Analysis bundles the pieces needed to measure impacts on one scenario.
type Analysis struct {
	// Graph is the ground-truth (or believed) model.
	Graph *graph.Graph
	// Ownership maps assets to actors.
	Ownership actors.Ownership
	// Model divides welfare among actors (default LMPDivision).
	Model actors.ProfitModel
	// Parallel configures fan-out across targets (default: all cores).
	Parallel parallel.Options
	// Cache, when non-nil, memoizes perturbed solves (and the baseline) so
	// repeated evaluations of the same attack set — across matrix builds,
	// adversary searches, and experiment trials on the same scenario —
	// skip the dispatch entirely. The cache is a pure memo: results are
	// bit-identical with and without it. See cache.go for the key scheme.
	Cache *solvecache.Cache
	// WarmStart re-enters the dispatch simplex from the baseline optimal
	// basis instead of solving two-phase from scratch. Results agree with
	// cold solves within solver tolerance.
	WarmStart bool
	// LPMethod selects the simplex implementation for every dispatch this
	// analysis performs (lp.MethodAuto lets the solver pick, as before).
	// lp.MethodRevised switches to the sparse revised simplex; results
	// agree with the dense method within solver tolerance, and cache
	// entries are salted per method so differently configured Analyses
	// sharing one cache never alias.
	LPMethod lp.Method
}

func (a *Analysis) model() actors.ProfitModel {
	if a.Model != nil {
		return a.Model
	}
	return actors.LMPDivision{}
}

// Baseline dispatches the unperturbed system and returns its per-actor
// profits and welfare.
func (a *Analysis) Baseline() (actors.Profits, *flow.Result, error) {
	r, err := flow.DispatchOpts(a.Graph, flow.Options{LP: lp.Options{Method: a.LPMethod}})
	if err != nil {
		return nil, nil, err
	}
	p, err := a.model().Divide(a.Graph, r, a.Ownership)
	if err != nil {
		return nil, nil, err
	}
	return p, r, nil
}

// Of measures the impact of a single attack (set of perturbations): the
// per-actor profit deltas and the system welfare delta.
func (a *Analysis) Of(ps ...Perturbation) (actors.Profits, float64, error) {
	salt := a.salt()
	base, err := a.baseline(salt)
	if err != nil {
		return nil, 0, err
	}
	return a.ofCached(salt, base, ps)
}

// Evaluator amortizes the per-call salt hashing and baseline resolution of
// Of across many evaluations on one fixed scenario. The N-k screen prices
// thousands of perturbation sets against one baseline; paying the SHA-256
// salt and the baseline lookup once makes each subsequent evaluation a
// single cache probe or dispatch.
type Evaluator struct {
	a    *Analysis
	salt string
	base baselineState
}

// NewEvaluator resolves (and memoizes) the baseline and returns an
// evaluator bound to this analysis. The underlying Analysis must not be
// reconfigured while the evaluator is in use.
func (a *Analysis) NewEvaluator() (*Evaluator, error) {
	salt := a.salt()
	base, err := a.baseline(salt)
	if err != nil {
		return nil, err
	}
	return &Evaluator{a: a, salt: salt, base: base}, nil
}

// BaselineWelfare is the unattacked system welfare.
func (e *Evaluator) BaselineWelfare() float64 { return e.base.welfare }

// BaselineSupport lists the edges with nonzero flow in the baseline
// dispatch (graph edge-index order), or nil when the baseline entry came
// from a cache that predates support recording. Callers must not mutate it.
func (e *Evaluator) BaselineSupport() []string { return e.base.support }

// Of measures one attack exactly like Analysis.Of, without re-resolving the
// baseline.
func (e *Evaluator) Of(ps ...Perturbation) (actors.Profits, float64, error) {
	return e.a.ofCached(e.salt, e.base, ps)
}

// OfSupport prices one perturbation set and additionally returns the flow
// support of the perturbed optimum — the dominance certificate consumed by
// internal/screen. A nil support means the result was served from an entry
// without a recorded certificate; the welfare delta is still exact.
func (e *Evaluator) OfSupport(ps ...Perturbation) (dw float64, support []string, err error) {
	entry, err := e.a.ofCachedEntry(e.salt, e.base, ps)
	if err != nil {
		return 0, nil, err
	}
	return entry.Welfare - e.base.welfare, entry.Support, nil
}

// Matrix is the impact matrix IM[a][t] plus bookkeeping.
type Matrix struct {
	// IM maps actor → target → profit delta.
	IM map[string]map[string]float64
	// WelfareDelta maps target → system welfare change (≤ 0 up to LP
	// tolerance, since the baseline is the welfare optimum).
	WelfareDelta map[string]float64
	// Targets lists the attacked asset IDs in sorted order.
	Targets []string
	// Actors lists all actor IDs appearing in the ownership, sorted.
	Actors []string
	// BaselineWelfare is the unattacked system welfare.
	BaselineWelfare float64
}

// Get returns IM[actor][target] (0 when absent).
func (m *Matrix) Get(actor, target string) float64 {
	if row, ok := m.IM[actor]; ok {
		return row[target]
	}
	return 0
}

// Column returns the per-actor impacts of one target as a map (never nil).
func (m *Matrix) Column(target string) map[string]float64 {
	col := make(map[string]float64, len(m.Actors))
	for _, a := range m.Actors {
		col[a] = m.Get(a, target)
	}
	return col
}

// GainLoss sums the positive entries and the negative entries of the whole
// matrix — the quantities plotted in the paper's Figure 2. Iteration is in
// sorted (actor, target) order, not map order: float addition is not
// associative, so a map-order sum varies in the last ulp between runs,
// which would break the bit-identical determinism the experiment harness
// (and crash-safe resume) guarantees.
func (m *Matrix) GainLoss() (gain, loss float64) {
	for _, a := range m.Actors {
		row := m.IM[a]
		for _, t := range m.Targets {
			v := row[t]
			if v > 0 {
				gain += v
			} else {
				loss += v
			}
		}
	}
	return gain, loss
}

// ComputeMatrix builds the impact matrix for single-asset outage attacks on
// every listed target (nil targets = every edge). Targets are processed in
// parallel; each target costs one dispatch + one profit division.
func (a *Analysis) ComputeMatrix(targets []string) (*Matrix, error) {
	return a.ComputeMatrixOf(targets, func(id string) []Perturbation {
		return []Perturbation{Outage(id)}
	})
}

// ComputeMatrixOf builds an impact matrix for an arbitrary attack vector:
// mk maps each target asset to the perturbations its attack applies. This
// supports the paper's "more subtle" attacks (Section II-D3) — e.g. a
// stealthy loss increase or a cost manipulation — alongside the outage.
func (a *Analysis) ComputeMatrixOf(targets []string, mk func(id string) []Perturbation) (*Matrix, error) {
	if targets == nil {
		targets = a.Graph.AssetIDs()
	}
	salt := a.salt()
	base, err := a.baseline(salt)
	if err != nil {
		return nil, err
	}
	type col struct {
		deltas actors.Profits
		dw     float64
	}
	cols, err := parallel.Map(len(targets), a.Parallel, func(i int) (col, error) {
		deltas, dw, err := a.ofCached(salt, base, mk(targets[i]))
		if err != nil {
			return col{}, fmt.Errorf("target %s: %w", targets[i], err)
		}
		return col{deltas, dw}, nil
	})
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		IM:              map[string]map[string]float64{},
		WelfareDelta:    map[string]float64{},
		Targets:         append([]string(nil), targets...),
		Actors:          a.Ownership.Actors(),
		BaselineWelfare: base.welfare,
	}
	// Ensure every owning actor has a row even if all its deltas are 0.
	for _, actor := range m.Actors {
		m.IM[actor] = map[string]float64{}
	}
	for i, t := range targets {
		m.WelfareDelta[t] = cols[i].dw
		for actor, v := range cols[i].deltas {
			row, ok := m.IM[actor]
			if !ok {
				row = map[string]float64{}
				m.IM[actor] = row
				m.Actors = append(m.Actors, actor)
			}
			row[t] = v
		}
	}
	sort.Strings(m.Actors)
	return m, nil
}
