package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	s1 := Derive(7, 0)
	s2 := Derive(7, 1)
	collisions := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d collisions between derived streams", collisions)
	}
	// Re-derivation reproduces the stream.
	a, b := Derive(7, 5), Derive(7, 5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("re-derived stream diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Fatalf("digit %d: count %d, want ≈%d", d, c, n/10)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(4)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermShuffles(t *testing.T) {
	// With n=6 the identity permutation has probability 1/720; over 100
	// draws seeing identity more than a handful of times indicates a bug.
	s := New(5)
	identity := 0
	for trial := 0; trial < 100; trial++ {
		p := s.Perm(6)
		id := true
		for i, v := range p {
			if v != i {
				id = false
				break
			}
		}
		if id {
			identity++
		}
	}
	if identity > 3 {
		t.Fatalf("identity permutation appeared %d/100 times", identity)
	}
}
