// Package rng provides deterministic, splittable random streams for
// reproducible parallel Monte-Carlo experiments.
//
// Every experiment in this repository derives all of its randomness from a
// single uint64 seed. Trials run concurrently, so handing each trial its own
// independent stream — derived deterministically from (seed, trial index) —
// makes results bit-identical regardless of scheduling or GOMAXPROCS.
//
// The generator is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), which passes BigCrush and
// whose trivially computed disjoint streams make it the standard choice for
// seeding parallel simulations.
package rng

import "math"

// Stream is a deterministic SplitMix64 pseudorandom stream. The zero value
// is a valid stream seeded with 0; prefer New or Derive.
type Stream struct {
	state     uint64
	spare     float64
	haveSpare bool
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Derive returns an independent child stream for the given index. The child
// is decorrelated from the parent and from siblings by hashing (seed, index)
// through one SplitMix64 round each.
func Derive(seed uint64, index uint64) *Stream {
	s := New(seed)
	base := s.Uint64()
	child := New(base ^ (index+1)*0x9E3779B97F4A7C15)
	// Burn one output so adjacent indices diverge immediately.
	child.Uint64()
	return child
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n ≤ 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Rejection sampling to remove modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box–Muller; the second
// variate of each pair is cached).
func (s *Stream) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		s.spare = r * math.Sin(theta)
		s.haveSpare = true
		return r * math.Cos(theta)
	}
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
