package dcopf

import (
	"math"
	"testing"

	"cpsguard/internal/graph"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// twoLine: one generator, one load, two parallel lossless lines of equal
// capacity but different susceptance.
func twoLine(b1, b2 float64) (*graph.Graph, Options) {
	g := graph.New("dc")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 60, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "l1", From: "gen", To: "load", Capacity: 100})
	g.MustAddEdge(graph.Edge{ID: "l2", From: "gen", To: "load", Capacity: 100})
	sus := map[string]float64{"l1": b1, "l2": b2}
	return g, Options{Susceptance: func(e *graph.Edge) float64 { return sus[e.ID] }}
}

func TestFlowsSplitBySusceptance(t *testing.T) {
	g, opts := twoLine(30, 10) // l1 is 3× stiffer → carries 3/4
	r, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.Load["load"], 60, 1e-6) {
		t.Fatalf("load = %v", r.Load["load"])
	}
	if !approx(r.Flow["l1"], 45, 1e-6) || !approx(r.Flow["l2"], 15, 1e-6) {
		t.Fatalf("flows = %v / %v, want 45 / 15 (susceptance split)", r.Flow["l1"], r.Flow["l2"])
	}
	// Angles consistent: f = B·Δθ.
	dth := r.Angle["gen"] - r.Angle["load"]
	if !approx(30*dth, 45, 1e-6) {
		t.Fatalf("Kirchhoff violated: B·Δθ = %v, f = 45", 30*dth)
	}
}

func TestKirchhoffCongestionCascades(t *testing.T) {
	// Physics makes congestion worse than transport routing: if the
	// stiff line is small, flow cannot simply be diverted to the big
	// one — the angle difference that pushes the big line also overloads
	// the small one.
	g := graph.New("cascade")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 80, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "stiff", From: "gen", To: "load", Capacity: 10})
	g.MustAddEdge(graph.Edge{ID: "slack", From: "gen", To: "load", Capacity: 100})
	sus := map[string]float64{"stiff": 30, "slack": 10}
	opts := Options{Susceptance: func(e *graph.Edge) float64 { return sus[e.ID] }}
	r, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The stiff line saturates at 10; the slack line then carries
	// 10·(10/30) = 3.33 — total service is 13.33, not 80.
	if !approx(r.Flow["stiff"], 10, 1e-6) {
		t.Fatalf("stiff flow = %v, want 10 (binding)", r.Flow["stiff"])
	}
	if !approx(r.Flow["slack"], 10.0/3, 1e-6) {
		t.Fatalf("slack flow = %v, want 3.33 (angle-limited)", r.Flow["slack"])
	}
	if r.Load["load"] > 14 {
		t.Fatalf("DC service = %v, physics should cap it at 13.33", r.Load["load"])
	}
}

func TestTransportDominatesDC(t *testing.T) {
	// On the same (lossless) network, freely-routed transport welfare is
	// an upper bound on the Kirchhoff-constrained welfare.
	g := graph.New("cmp")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(graph.Vertex{ID: "mid"})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 80, Price: 10})
	g.MustAddEdge(graph.Edge{ID: "a", From: "gen", To: "mid", Capacity: 50})
	g.MustAddEdge(graph.Edge{ID: "b", From: "mid", To: "load", Capacity: 50})
	g.MustAddEdge(graph.Edge{ID: "c", From: "gen", To: "load", Capacity: 40})
	tr, dc, gap, err := Compare(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gap < -1e-6 {
		t.Fatalf("DC welfare (%v) exceeded transport welfare (%v)", dc, tr)
	}
	if tr <= 0 || dc <= 0 {
		t.Fatalf("welfare degenerate: tr=%v dc=%v", tr, dc)
	}
}

func TestDeadLineCarriesNothing(t *testing.T) {
	g, opts := twoLine(30, 0) // l2 outaged (zero susceptance)
	r, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flow["l2"] != 0 {
		t.Fatalf("dead line flows: %v", r.Flow["l2"])
	}
	if !approx(r.Flow["l1"], 60, 1e-6) {
		t.Fatalf("live line = %v, want 60", r.Flow["l1"])
	}
}

func TestReferenceAngleZero(t *testing.T) {
	g, opts := twoLine(10, 10)
	r, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := g.Vertices[0].ID
	if !approx(r.Angle[first], 0, 1e-9) {
		t.Fatalf("reference angle = %v", r.Angle[first])
	}
}

func TestDefaultSusceptance(t *testing.T) {
	e := &graph.Edge{Capacity: 50}
	if DefaultSusceptance(e) != 50 {
		t.Fatal("default susceptance should scale with capacity")
	}
	if DefaultSusceptance(&graph.Edge{}) != 0 {
		t.Fatal("zero-capacity line must have zero susceptance")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := twoLine(1, 1)
	g.Edges[0].Loss = 2
	if _, err := Solve(g, Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestUnprofitableStaysDark(t *testing.T) {
	g := graph.New("dark")
	g.MustAddVertex(graph.Vertex{ID: "gen", Supply: 10, SupplyCost: 50})
	g.MustAddVertex(graph.Vertex{ID: "load", Demand: 10, Price: 5})
	g.MustAddEdge(graph.Edge{ID: "l", From: "gen", To: "load", Capacity: 10})
	r, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Welfare != 0 || r.Flow["l"] != 0 {
		t.Fatalf("uneconomic dispatch ran: %+v", r)
	}
}
