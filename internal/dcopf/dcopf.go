// Package dcopf implements a classical DC optimal power flow — the
// "traditional power system optimization" the paper explicitly simplifies
// away (Section II-D1: its constraints "do not consider the stability of
// the grid … New technologies (specifically D-FACTS) allow for a more
// simplified view of grid planning", citing Dommel & Tinney's OPF [16]).
//
// In the DC approximation every bus has a voltage angle θ and each line's
// flow is dictated by physics rather than chosen freely:
//
//	f(u,v) = B(u,v) · (θ_u − θ_v),  |f| ≤ capacity
//
// so flows follow Kirchhoff's laws and cannot be routed at will. The
// package provides this substrate so users can quantify how much the
// paper's transport-style dispatch overstates the system's flexibility:
// Compare returns the welfare of both dispatches on the same network; the
// DC welfare is never higher, and the gap is the value of the D-FACTS-style
// controllability the paper assumes.
//
// Angles are free-signed; since the LP substrate uses x ≥ 0 variables,
// each θ is modeled as θ⁺ − θ⁻, and each line flow as f⁺ − f⁻ coupled to
// the angle difference by an equality row.
package dcopf

import (
	"errors"
	"fmt"

	"cpsguard/internal/flow"
	"cpsguard/internal/graph"
	"cpsguard/internal/lp"
)

// Susceptance assigns each edge a B(u,v); the default derives it from
// capacity and loss (stiffer lines carry more).
type Susceptance func(e *graph.Edge) float64

// DefaultSusceptance is proportional to capacity: a line rated for more
// power is assumed electrically stiffer. Any positive scale works — only
// relative values shape the flow split.
func DefaultSusceptance(e *graph.Edge) float64 {
	if e.Capacity <= 0 {
		return 0
	}
	return e.Capacity
}

// Result is a solved DC-OPF.
type Result struct {
	Welfare float64
	// Flow holds signed line flows (positive in the edge's direction).
	Flow map[string]float64
	// Angle holds bus voltage angles (radians, reference bus 0).
	Angle map[string]float64
	Gen   map[string]float64
	Load  map[string]float64
	// Iterations counts simplex pivots.
	Iterations int
}

// Options configures Solve.
type Options struct {
	// Susceptance overrides DefaultSusceptance.
	Susceptance Susceptance
	// MaxAngle bounds |θ| per bus (default 10 rad — loose; it exists to
	// keep the LP bounded).
	MaxAngle float64
	// LP forwards solver options.
	LP lp.Options
}

func (o Options) susceptance() Susceptance {
	if o.Susceptance != nil {
		return o.Susceptance
	}
	return DefaultSusceptance
}

func (o Options) maxAngle() float64 {
	if o.MaxAngle > 0 {
		return o.MaxAngle
	}
	return 10
}

// Solve computes the DC-OPF welfare optimum of g. Losses are ignored (the
// DC approximation is lossless); edge costs apply to |f| via the f⁺/f⁻
// split.
func Solve(g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("dcopf: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	sus := opts.susceptance()
	maxA := opts.maxAngle()

	p := lp.NewProblem()
	nV := len(g.Vertices)
	thP := make([]int, nV)
	thN := make([]int, nV)
	gVar := make([]int, nV)
	xVar := make([]int, nV)
	for i, v := range g.Vertices {
		thP[i] = p.AddVariable("th+:"+v.ID, 0, maxA)
		thN[i] = p.AddVariable("th-:"+v.ID, 0, maxA)
		if v.Supply > 0 {
			gVar[i] = p.AddVariable("g:"+v.ID, v.SupplyCost, v.Supply)
		} else {
			gVar[i] = -1
		}
		if v.Demand > 0 {
			xVar[i] = p.AddVariable("x:"+v.ID, -v.Price, v.Demand)
		} else {
			xVar[i] = -1
		}
	}
	// Reference bus: θ_0 = 0.
	if nV > 0 {
		p.AddConstraint(lp.Constraint{
			Coefs: []lp.Coef{{Var: thP[0], Value: 1}, {Var: thN[0], Value: -1}},
			Sense: lp.EQ, RHS: 0, Name: "ref",
		})
	}
	// Line flows: f = f⁺ − f⁻, f = B(θ_u − θ_v), |f| ≤ cap.
	fP := make([]int, len(g.Edges))
	fN := make([]int, len(g.Edges))
	for j, e := range g.Edges {
		b := sus(&g.Edges[j])
		fP[j] = p.AddVariable("f+:"+e.ID, e.Cost, e.Capacity)
		fN[j] = p.AddVariable("f-:"+e.ID, e.Cost, e.Capacity)
		if b <= 0 {
			// Zero-susceptance (outaged) line: force f = 0.
			p.AddConstraint(lp.Constraint{
				Coefs: []lp.Coef{{Var: fP[j], Value: 1}, {Var: fN[j], Value: 1}},
				Sense: lp.EQ, RHS: 0, Name: "dead:" + e.ID,
			})
			continue
		}
		u, v := g.VertexIndex(e.From), g.VertexIndex(e.To)
		p.AddConstraint(lp.Constraint{
			Coefs: []lp.Coef{
				{Var: fP[j], Value: 1}, {Var: fN[j], Value: -1},
				{Var: thP[u], Value: -b}, {Var: thN[u], Value: b},
				{Var: thP[v], Value: b}, {Var: thN[v], Value: -b},
			},
			Sense: lp.EQ, RHS: 0, Name: "kirchhoff:" + e.ID,
		})
	}
	// Nodal balance: gen + Σ inflow − Σ outflow − load = 0 (signed flows).
	for i, v := range g.Vertices {
		var coefs []lp.Coef
		for j, e := range g.Edges {
			if e.To == v.ID {
				coefs = append(coefs, lp.Coef{Var: fP[j], Value: 1}, lp.Coef{Var: fN[j], Value: -1})
			}
			if e.From == v.ID {
				coefs = append(coefs, lp.Coef{Var: fP[j], Value: -1}, lp.Coef{Var: fN[j], Value: 1})
			}
		}
		if gVar[i] >= 0 {
			coefs = append(coefs, lp.Coef{Var: gVar[i], Value: 1})
		}
		if xVar[i] >= 0 {
			coefs = append(coefs, lp.Coef{Var: xVar[i], Value: -1})
		}
		if len(coefs) == 0 {
			continue
		}
		p.AddConstraint(lp.Constraint{
			Coefs: coefs, Sense: lp.EQ, RHS: 0, Name: "bal:" + v.ID,
		})
	}

	lpOpts := opts.LP
	lpOpts.SkipDuals = true // split θ variables make the dual basis singular
	sol, err := p.SolveOpts(lpOpts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("dcopf: LP status %v", sol.Status)
	}
	res := &Result{
		Flow:       map[string]float64{},
		Angle:      map[string]float64{},
		Gen:        map[string]float64{},
		Load:       map[string]float64{},
		Iterations: sol.Iterations,
	}
	for j, e := range g.Edges {
		f := sol.X[fP[j]] - sol.X[fN[j]]
		res.Flow[e.ID] = f
		res.Welfare -= e.Cost * (sol.X[fP[j]] + sol.X[fN[j]])
	}
	for i, v := range g.Vertices {
		res.Angle[v.ID] = sol.X[thP[i]] - sol.X[thN[i]]
		if gVar[i] >= 0 {
			res.Gen[v.ID] = sol.X[gVar[i]]
			res.Welfare -= v.SupplyCost * res.Gen[v.ID]
		}
		if xVar[i] >= 0 {
			res.Load[v.ID] = sol.X[xVar[i]]
			res.Welfare += v.Price * res.Load[v.ID]
		}
	}
	return res, nil
}

// Compare dispatches g under both models and returns the transport welfare,
// the DC welfare, and the controllability gap (transport − DC ≥ 0 on
// loss-free graphs: Kirchhoff flows are a subset of transport flows).
func Compare(g *graph.Graph, opts Options) (transport, dc, gap float64, err error) {
	tr, err := flow.Dispatch(g)
	if err != nil {
		return 0, 0, 0, err
	}
	dcr, err := Solve(g, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	return tr.Welfare, dcr.Welfare, tr.Welfare - dcr.Welfare, nil
}
