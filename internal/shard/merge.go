// Merge: the lossless recombination of shard journals. The validation here
// is deliberately paranoid — every failure mode a fleet produces (torn
// tails, half-finished shards, mis-partitioned or duplicated trials, shards
// from a different sweep) must be rejected or repaired *before* the replay
// run, because after it the merged CSV looks exactly like a healthy
// single-process run.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
)

// MergeOptions configures Merge.
type MergeOptions struct {
	// ExpectKey, when non-empty, is the sweep key the merging process
	// computed from its own flags; shards whose key differs were produced
	// by a different sweep configuration and are rejected.
	ExpectKey string
	// Log, when non-nil, receives one info event per shard and warn
	// events for repaired torn tails.
	Log *obs.Logger
}

// ShardInfo is one shard's contribution to a merge, as recorded in the
// merged manifest.
type ShardInfo struct {
	// Dir is the shard directory.
	Dir string
	// Assignment is the shard's slice of the partition.
	Assignment Assignment
	// Records is the number of valid journal records merged.
	Records int
	// TruncatedBytes is the torn tail dropped during the merge read
	// (0 for a cleanly closed journal).
	TruncatedBytes int
	// JournalSHA256 digests the journal as merged.
	JournalSHA256 string
	// Manifest is the shard's own manifest (fault history included).
	Manifest *Manifest
}

// MergeResult is a validated union of shard journals.
type MergeResult struct {
	// Replay is the merged replay, ready for a strict-replay sweep.
	Replay *checkpoint.Replay
	// Shards describes each contributing shard, in index order.
	Shards []ShardInfo
	// Count is the partition width n.
	Count int
	// Trials is the total number of merged trial records.
	Trials int
}

// DiscoverShards lists the shard directories under parent (the layout
// written by the shard runner), sorted by shard index. It is an error to
// find none — merging an empty directory must not silently produce an
// empty sweep.
func DiscoverShards(parent string) ([]string, error) {
	entries, err := os.ReadDir(parent)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := ParseDirName(e.Name()); ok {
			dirs = append(dirs, filepath.Join(parent, e.Name()))
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("shard: no shard-NNN-of-NNN directories under %s", parent)
	}
	sort.Strings(dirs) // fixed-width names: lexical order == shard order
	return dirs, nil
}

// Merge reads, audits, and unions the shard directories:
//
//   - each directory must hold a shard.json and a journal; the journal's
//     CRC and sequence continuity are validated record by record, and a
//     torn tail (partial final line) is repaired by dropping it;
//   - a journal holding fewer valid records than its manifest recorded has
//     lost data (a tear destroyed whole records) and is rejected with a
//     pointer to the shard that must be resumed;
//   - an incomplete shard (crashed before finishing its sweep) is rejected
//     the same way;
//   - every record is audited against the partition: a trial owned by a
//     different shard means overlapping seed ranges and rejects the merge,
//     as does the same trial appearing in two journals;
//   - all shards must agree on (count, seed, sweep key), and the shard
//     indices must cover 0..n-1 exactly once — a missing index is a
//     missing seed range.
//
// The caller proves losslessness by running the sweep over Result.Replay
// in strict replay mode (checkpoint.Sweep.RequireReplay): any trial the
// union does not cover fails loudly instead of being recomputed.
func Merge(dirs []string, opts MergeOptions) (*MergeResult, error) {
	if len(dirs) == 0 {
		return nil, errors.New("shard: nothing to merge")
	}
	// Every validation failure below is a rejected merge; count them all.
	reject := func(format string, args ...any) error {
		mMergeRejects.Inc()
		return fmt.Errorf(format, args...)
	}
	res := &MergeResult{}
	reps := make([]*checkpoint.Replay, 0, len(dirs))
	seen := map[int]string{} // shard index -> dir
	var count int
	var seed uint64
	var key string

	for i, dir := range dirs {
		man, err := LoadManifest(dir)
		if errors.Is(err, os.ErrNotExist) {
			// A crash before the first manifest write leaves only a journal.
			a, _ := ParseDirName(filepath.Base(dir))
			return nil, reject("shard: %s has no %s — the shard crashed before finishing; resume it with -shard %s",
				dir, ManifestName, a.Spec())
		}
		if err != nil {
			return nil, reject("shard: %s: %w", dir, err)
		}
		a := man.Assignment()
		if err := a.Validate(); err != nil {
			return nil, reject("shard: %s: %w", dir, err)
		}
		if i == 0 {
			count, seed, key = man.Count, man.Seed, man.SweepKey
		}
		if man.Count != count {
			return nil, reject("shard: %s is shard %s but %s declared a %d-way partition", dir, a.Spec(), dirs[0], count)
		}
		if man.Seed != seed || man.SweepKey != key {
			return nil, reject("shard: %s was produced by a different sweep (seed %d key %.12s, want seed %d key %.12s)",
				dir, man.Seed, man.SweepKey, seed, key)
		}
		if opts.ExpectKey != "" && man.SweepKey != opts.ExpectKey {
			return nil, reject("shard: %s sweep key %.12s does not match this invocation's configuration %.12s — rerun the merge with the flags the shards used",
				dir, man.SweepKey, opts.ExpectKey)
		}
		if prev, dup := seen[a.Index]; dup {
			return nil, reject("shard: index %d appears in both %s and %s", a.Index, prev, dir)
		}
		seen[a.Index] = dir
		if !man.Completed {
			return nil, reject("shard: %s is incomplete (crashed before finishing); resume it with -shard %s", dir, a.Spec())
		}

		jpath := filepath.Join(dir, JournalName)
		rep, err := checkpoint.Load(jpath)
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", dir, err)
		}
		if rep.TruncatedBytes > 0 {
			mMergeTornTails.Inc()
			opts.Log.Warn("repaired torn shard journal tail",
				obs.F("shard", a.Spec()), obs.F("bytes", rep.TruncatedBytes))
		}
		if rep.Len() < man.JournalRecords {
			return nil, reject("shard: %s journal holds %d valid records but its manifest recorded %d — a tear destroyed records; resume the shard with -shard %s",
				dir, rep.Len(), man.JournalRecords, a.Spec())
		}
		wantPrefix := fmt.Sprintf("s%x|", seed)
		for _, id := range rep.IDs() {
			if !strings.HasPrefix(id, wantPrefix) {
				return nil, reject("shard: %s record %s carries a foreign seed (want prefix %s)", dir, id, wantPrefix)
			}
			idx, err := checkpoint.TrialIndex(id)
			if err != nil {
				return nil, fmt.Errorf("shard: %s: %w", dir, err)
			}
			if !a.Owns(idx) {
				return nil, reject("shard: %s journaled trial %s, which the partition assigns to shard %d/%d — overlapping seed ranges",
					dir, id, idx%a.Count, a.Count)
			}
		}
		reps = append(reps, rep)
		res.Shards = append(res.Shards, ShardInfo{
			Dir: dir, Assignment: a, Records: rep.Len(),
			TruncatedBytes: rep.TruncatedBytes,
			JournalSHA256:  manifest.HashFile(jpath).SHA256,
			Manifest:       man,
		})
		opts.Log.Info("shard validated", obs.F("shard", a.Spec()),
			obs.F("records", rep.Len()), obs.F("faults", len(man.Faults)))
	}

	for i := 0; i < count; i++ {
		if _, ok := seen[i]; !ok {
			return nil, reject("shard: missing shard %d/%d — its seed range was never run", i, count)
		}
	}
	sort.Slice(res.Shards, func(i, j int) bool {
		return res.Shards[i].Assignment.Index < res.Shards[j].Assignment.Index
	})
	merged, err := checkpoint.MergeReplays(reps...)
	if err != nil {
		mMergeRejects.Inc()
		return nil, err
	}
	res.Replay = merged
	res.Count = count
	res.Trials = merged.Len()
	mMerges.Inc()
	mMergedRecords.Add(int64(res.Trials))
	return res, nil
}

// Stamp records the merge's provenance on a run manifest: every shard's
// journal and manifest as digested inputs, plus one note per shard and per
// fault — the "merged manifest.json" that lets an auditor reconstruct which
// shard contributed what and what went wrong on the way.
func (r *MergeResult) Stamp(m *manifest.Manifest) {
	m.Note("merged %d trials from %d shards", r.Trials, r.Count)
	for _, s := range r.Shards {
		m.AddInput(filepath.Join(s.Dir, JournalName))
		m.AddInput(filepath.Join(s.Dir, ManifestName))
		m.Note("shard %s: %d records (executed %d, replayed %d), journal sha256:%.12s",
			s.Assignment.Spec(), s.Records, s.Manifest.Executed, s.Manifest.Replayed, s.JournalSHA256)
		if s.TruncatedBytes > 0 {
			m.Note("shard %s: torn tail repaired in merge (%d bytes dropped)", s.Assignment.Spec(), s.TruncatedBytes)
		}
		for _, f := range s.Manifest.Faults {
			m.Note("shard %s fault [%s]: %s", s.Assignment.Spec(), f.Kind, f.Detail)
		}
	}
}
