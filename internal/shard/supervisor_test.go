package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeHandle is an injectable shard attempt: Wait blocks on the result
// channel; Kill resolves it with a kill error if nothing else has.
type fakeHandle struct {
	result chan error
}

func (h *fakeHandle) Wait() error { return <-h.result }
func (h *fakeHandle) Kill() {
	select {
	case h.result <- errors.New("killed"):
	default:
	}
}

// resolved returns a handle whose Wait immediately yields err.
func resolved(err error) *fakeHandle {
	h := &fakeHandle{result: make(chan error, 1)}
	h.result <- err
	return h
}

// hung returns a handle that never finishes on its own (only Kill resolves
// it) — the stalled-child simulation.
func hung() *fakeHandle { return &fakeHandle{result: make(chan error, 1)} }

// noSleep removes restart backoff from tests.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestSupervisorAllSucceed(t *testing.T) {
	s := &Supervisor{
		Count:  3,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) { return resolved(nil), nil },
		sleep:  noSleep,
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Abandoned != 0 {
		t.Fatalf("abandoned = %d", rep.Abandoned)
	}
	for i, sr := range rep.Shards {
		if !sr.Done || sr.Restarts != 0 {
			t.Fatalf("shard %d: %+v", i, sr)
		}
	}
}

// TestSupervisorRestartsCrashedShard: shard 1 crashes twice and succeeds on
// the third attempt — within the default restart budget.
func TestSupervisorRestartsCrashedShard(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	s := &Supervisor{
		Count: 2,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) {
			mu.Lock()
			attempts[index]++
			mu.Unlock()
			if index == 1 && attempt < 2 {
				return resolved(errors.New("simulated crash")), nil
			}
			return resolved(nil), nil
		},
		sleep: noSleep,
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Shards[1].Done || rep.Shards[1].Restarts != 2 {
		t.Fatalf("shard 1: %+v", rep.Shards[1])
	}
	if len(rep.Shards[1].Faults) != 2 {
		t.Fatalf("shard 1 faults: %v", rep.Shards[1].Faults)
	}
	if attempts[1] != 3 {
		t.Fatalf("shard 1 launched %d times, want 3", attempts[1])
	}
}

// TestSupervisorAbandonsAfterRetries: a shard that crashes on every attempt
// is abandoned once the restart budget is spent, and Run reports failure.
func TestSupervisorAbandonsAfterRetries(t *testing.T) {
	s := &Supervisor{
		Count:       2,
		MaxRestarts: 1,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) {
			if index == 0 {
				return resolved(errors.New("always crashes")), nil
			}
			return resolved(nil), nil
		},
		sleep: noSleep,
	}
	rep, err := s.Run(context.Background())
	if err == nil {
		t.Fatal("abandoned shard reported as success")
	}
	if rep.Abandoned != 1 || rep.Shards[0].Done || rep.Shards[0].Err == "" {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Shards[0].Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (MaxRestarts)", rep.Shards[0].Restarts)
	}
	if !rep.Shards[1].Done {
		t.Fatal("healthy shard dragged down by its sibling")
	}
}

// TestSupervisorKillsStalledShard: attempt 0 hangs with a frozen progress
// probe; the watchdog must kill it and the restart must succeed.
func TestSupervisorKillsStalledShard(t *testing.T) {
	s := &Supervisor{
		Count: 1,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) {
			if attempt == 0 {
				return hung(), nil
			}
			return resolved(nil), nil
		},
		Progress:     func(index int) int64 { return 42 }, // never advances
		StallTimeout: 40 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
		sleep:        noSleep,
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Shards[0]
	if !sr.Done || sr.Stalls != 1 || sr.Restarts != 1 {
		t.Fatalf("shard 0: %+v", sr)
	}
}

// TestSupervisorProgressPreventsStallKill: a shard whose probe keeps
// advancing is never killed, however slow it is relative to StallTimeout.
func TestSupervisorProgressPreventsStallKill(t *testing.T) {
	var progress int64
	var mu sync.Mutex
	h := hung()
	go func() {
		// Advance the probe every 10ms for ~15 stall windows, then finish.
		for i := 0; i < 60; i++ {
			time.Sleep(10 * time.Millisecond)
			mu.Lock()
			progress++
			mu.Unlock()
		}
		h.result <- nil
	}()
	s := &Supervisor{
		Count:  1,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) { return h, nil },
		Progress: func(index int) int64 {
			mu.Lock()
			defer mu.Unlock()
			return progress
		},
		StallTimeout: 40 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
		sleep:        noSleep,
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sr := rep.Shards[0]; !sr.Done || sr.Stalls != 0 || sr.Restarts != 0 {
		t.Fatalf("slow-but-progressing shard was disturbed: %+v", sr)
	}
}

// TestSupervisorHonorsCancellation: canceling the context kills hung
// children and surfaces the context error without abandon-looping.
func TestSupervisorHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	launched := make(chan struct{}, 2)
	s := &Supervisor{
		Count: 2,
		Launch: func(ctx context.Context, index, attempt int) (Handle, error) {
			launched <- struct{}{}
			return hung(), nil
		},
		sleep: noSleep,
	}
	go func() {
		<-launched
		<-launched
		cancel()
	}()
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() { rep, err = s.Run(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if rep == nil {
		t.Fatal("no report on cancellation")
	}
}
