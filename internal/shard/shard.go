// Package shard scales a one-process Monte-Carlo sweep out to a fleet. A
// sweep's trials are partitioned deterministically by trial index into n
// independent shards; each shard runs the same seeded sweep but executes
// (and journals) only the trials it owns, writing a crash-safe
// internal/checkpoint journal plus a shard manifest (shard.json) and a
// telemetry snapshot into its own directory:
//
//	<dir>/shard-003-of-008/journal.jsonl   per-trial outcomes (CRC + seq)
//	<dir>/shard-003-of-008/shard.json      assignment, digests, fault history
//	<dir>/shard-003-of-008/metrics.json    deterministic telemetry snapshot
//
// Because trial randomness derives only from (seed, point, trial) — never
// from which process ran it — the union of the shard journals replays to
// output byte-identical to a single-process run. Merge proves it: it
// repairs torn journal tails, validates CRC and sequence continuity per
// shard, rejects overlapping or missing seed ranges, and hands back a
// replay that the experiment runners consume in strict replay mode, so a
// lost trial is a hard error, never a silent re-computation.
//
// The Supervisor runs shards as restartable children (real processes in
// cpsexp, injected workers in tests) under a progress watchdog with
// capped-backoff restarts — a crashed or stalled shard resumes from its own
// journal — and the Aggregator serves fleet-wide counter rollups on the
// debug mux.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/manifest"
)

// Schema identifies the shard.json format for forward compatibility.
const Schema = "cpsguard-shard/v1"

// ManifestName is the shard manifest file name inside a shard directory.
const ManifestName = "shard.json"

// JournalName is the trial journal file name inside a shard directory.
const JournalName = "journal.jsonl"

// MetricsName is the telemetry snapshot file name inside a shard directory.
const MetricsName = "metrics.json"

// Assignment names one shard of an n-way partition: shard Index owns every
// trial whose index i satisfies i mod Count == Index. The partition is a
// pure function of the trial coordinates — no coordination, no state — so
// any two processes given the same spec agree on ownership, and the merge
// can audit each journal record against the assignment its shard claimed.
type Assignment struct {
	// Index is the 0-based shard number.
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseSpec parses an "i/n" shard spec (0-based index, e.g. "0/4" … "3/4").
func ParseSpec(s string) (Assignment, error) {
	var a Assignment
	if _, err := fmt.Sscanf(s, "%d/%d", &a.Index, &a.Count); err != nil {
		return a, fmt.Errorf("shard: spec %q is not i/n (e.g. 0/4)", s)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// Validate checks 0 <= Index < Count.
func (a Assignment) Validate() error {
	if a.Count < 1 {
		return fmt.Errorf("shard: count %d < 1", a.Count)
	}
	if a.Index < 0 || a.Index >= a.Count {
		return fmt.Errorf("shard: index %d outside [0,%d)", a.Index, a.Count)
	}
	return nil
}

// Owns reports whether this shard owns the trial with the given index.
func (a Assignment) Owns(trial int) bool {
	return a.Count > 0 && trial%a.Count == a.Index
}

// Spec renders the assignment back as "i/n".
func (a Assignment) Spec() string { return fmt.Sprintf("%d/%d", a.Index, a.Count) }

// DirName is the canonical shard directory name ("shard-003-of-008"). The
// fixed-width rendering keeps lexical order equal to shard order.
func (a Assignment) DirName() string {
	return fmt.Sprintf("shard-%03d-of-%03d", a.Index, a.Count)
}

// ParseDirName inverts DirName; ok is false for non-shard names.
func ParseDirName(name string) (Assignment, bool) {
	var a Assignment
	if _, err := fmt.Sscanf(name, "shard-%d-of-%d", &a.Index, &a.Count); err != nil {
		return a, false
	}
	return a, a.Validate() == nil
}

// A Fault is one entry in a shard's persisted fault history: restarts,
// torn-tail repairs, abandoned trials — anything the merge proof should
// surface months later from the directory alone.
type Fault struct {
	// Time stamps the fault in UTC (zero when the recorder had no clock).
	Time time.Time `json:"time,omitzero"`
	// Kind classifies the fault ("resumed", "torn_tail", "crashed",
	// "stalled", "abandoned_trials").
	Kind string `json:"kind"`
	// Detail is the human-readable story.
	Detail string `json:"detail"`
}

// Manifest is the shard.json record: which slice of the sweep this
// directory holds, under what configuration it was produced, and what went
// wrong along the way. Merge refuses shards whose SweepKey, Seed, or Count
// disagree — mixing shards of different sweeps must be impossible.
type Manifest struct {
	Schema string `json:"schema"`
	// Index and Count are the assignment.
	Index int `json:"index"`
	Count int `json:"count"`
	// Seed is the sweep's top-level seed (baked into every trial ID).
	Seed uint64 `json:"seed"`
	// SweepKey is the checksum of the result-affecting sweep configuration
	// (figure set, trials, seed, noise mode, …). Equal keys mean the
	// shards ran the same sweep and their journals may be merged.
	SweepKey string `json:"sweep_key"`
	// JournalSHA256 and JournalRecords digest the journal at the moment
	// the manifest was written, so the merge can tell a cleanly finished
	// shard from one that kept (or lost) records afterwards.
	JournalSHA256  string `json:"journal_sha256,omitempty"`
	JournalRecords int    `json:"journal_records"`
	// Executed and Replayed count this shard's trials across all its runs.
	Executed int `json:"executed"`
	Replayed int `json:"replayed"`
	// Completed marks a shard whose sweep ran to the end. A false value
	// means the shard needs another (resuming) run before a merge can
	// succeed.
	Completed bool `json:"completed"`
	// Faults is the append-only fault history, oldest first, accumulated
	// across restarts.
	Faults []Fault `json:"faults,omitempty"`
}

// NewManifest starts a manifest for one shard of a sweep.
func NewManifest(a Assignment, seed uint64, sweepKey string) *Manifest {
	return &Manifest{
		Schema: Schema, Index: a.Index, Count: a.Count,
		Seed: seed, SweepKey: sweepKey,
	}
}

// Assignment returns the manifest's shard coordinates.
func (m *Manifest) Assignment() Assignment {
	return Assignment{Index: m.Index, Count: m.Count}
}

// AddFault appends one fault to the history.
func (m *Manifest) AddFault(kind, format string, args ...any) {
	m.Faults = append(m.Faults, Fault{
		Time: time.Now().UTC(), Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

// StampJournal digests the shard's journal into the manifest.
func (m *Manifest) StampJournal(dir string) {
	d := manifest.HashFile(filepath.Join(dir, JournalName))
	m.JournalSHA256 = d.SHA256
}

// Write persists the manifest to dir/shard.json atomically.
func (m *Manifest) Write(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	return atomicio.MkdirAllAndWrite(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// LoadManifest reads dir/shard.json. A missing file returns os.ErrNotExist
// (callers distinguish "fresh shard" from "corrupt shard"); a wrong schema
// is an error — guessing at an unknown layout corrupts merges.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: decode %s: %w", filepath.Join(dir, ManifestName), err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("shard: %s has schema %q, want %q", filepath.Join(dir, ManifestName), m.Schema, Schema)
	}
	return &m, nil
}
