package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpsguard/internal/checkpoint"
)

// writeShard builds one shard directory under parent: a journal holding the
// given trial indices (value 10*i) and a completed manifest. mutate, when
// non-nil, edits the manifest before it is written — the fault-injection
// hook for the rejection tests.
func writeShard(t *testing.T, parent string, a Assignment, seed uint64, key string,
	trials []int, mutate func(*Manifest)) string {
	t.Helper()
	dir := filepath.Join(parent, a.DirName())
	j, err := checkpoint.Create(filepath.Join(dir, JournalName), checkpoint.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range trials {
		if err := j.Append(checkpoint.TrialID(seed, "p", i), true, 10*i, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m := NewManifest(a, seed, key)
	m.JournalRecords = len(trials)
	m.Executed = len(trials)
	m.Completed = true
	m.StampJournal(dir)
	if mutate != nil {
		mutate(m)
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestMergeTwoShards(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)

	dirs, err := DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 || dirs[0] != d0 || dirs[1] != d1 {
		t.Fatalf("DiscoverShards = %v", dirs)
	}
	res, err := Merge(dirs, MergeOptions{ExpectKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4 || res.Count != 2 || len(res.Shards) != 2 {
		t.Fatalf("merge result: %+v", res)
	}
	for i := 0; i < 4; i++ {
		if _, ok := res.Replay.Lookup(checkpoint.TrialID(7, "p", i)); !ok {
			t.Fatalf("merged replay missing trial %d", i)
		}
	}
}

func TestDiscoverShardsEmpty(t *testing.T) {
	if _, err := DiscoverShards(t.TempDir()); err == nil {
		t.Fatal("empty parent accepted")
	}
}

// TestMergeRepairsTornTail: a crash mid-append leaves a partial final line;
// the merge must drop it and carry on — provided the manifest did not claim
// the destroyed record.
func TestMergeRepairsTornTail(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)

	jpath := filepath.Join(d0, JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, append(data, []byte(`{"seq":99,"torn`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Merge([]string{d0, filepath.Join(parent, "shard-001-of-002")}, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4 {
		t.Fatalf("trials = %d, want 4", res.Trials)
	}
	if res.Shards[0].TruncatedBytes == 0 {
		t.Fatal("torn tail not recorded in shard info")
	}
}

// TestMergeRejectsDestroyedRecords: when a tear eats a whole journaled
// record (journal now shorter than the manifest recorded), the merge must
// refuse — silently losing a trial would still render a plausible CSV.
func TestMergeRejectsDestroyedRecords(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)

	jpath := filepath.Join(d0, JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.Index(string(data), "\n") + 1 // keep only the first record
	if err := os.WriteFile(jpath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Merge([]string{d0, d1}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "tear destroyed records") {
		t.Fatalf("err = %v, want destroyed-records rejection", err)
	}
}

// TestMergeRejectsOverlap: a journal holding a trial the partition assigns
// to a different shard means two shards ran overlapping seed ranges.
func TestMergeRejectsOverlap(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 1, 2}, nil) // trial 1 belongs to shard 1
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)
	_, err := Merge([]string{d0, d1}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "overlapping seed ranges") {
		t.Fatalf("err = %v, want overlap rejection", err)
	}
}

func TestMergeRejectsMissingShard(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	_, err := Merge([]string{d0}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "never run") {
		t.Fatalf("err = %v, want missing-range rejection", err)
	}
}

func TestMergeRejectsIncompleteShard(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2},
		func(m *Manifest) { m.Completed = false })
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)
	_, err := Merge([]string{d0, d1}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "-shard 0/2") {
		t.Fatalf("err = %v, want incomplete rejection pointing at the resume command", err)
	}
}

func TestMergeRejectsMissingManifest(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "k", []int{1, 3}, nil)
	if err := os.Remove(filepath.Join(d0, ManifestName)); err != nil {
		t.Fatal(err)
	}
	_, err := Merge([]string{d0, d1}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "crashed before finishing") {
		t.Fatalf("err = %v, want missing-manifest rejection", err)
	}
}

func TestMergeRejectsForeignSweep(t *testing.T) {
	parent := t.TempDir()
	d0 := writeShard(t, parent, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	d1 := writeShard(t, parent, Assignment{1, 2}, 7, "OTHER", []int{1, 3}, nil)
	if _, err := Merge([]string{d0, d1}, MergeOptions{}); err == nil {
		t.Fatal("shards from different sweeps merged")
	}
	// And against the merging invocation's own configuration:
	d1b := writeShard(t, t.TempDir(), Assignment{1, 2}, 7, "k", []int{1, 3}, nil)
	_, err := Merge([]string{d0, d1b}, MergeOptions{ExpectKey: "not-k"})
	if err == nil || !strings.Contains(err.Error(), "does not match this invocation") {
		t.Fatalf("err = %v, want expect-key rejection", err)
	}
}

func TestMergeRejectsDuplicateIndex(t *testing.T) {
	p1, p2 := t.TempDir(), t.TempDir()
	d0 := writeShard(t, p1, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	d0b := writeShard(t, p2, Assignment{0, 2}, 7, "k", []int{0, 2}, nil)
	_, err := Merge([]string{d0, d0b}, MergeOptions{})
	if err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Fatalf("err = %v, want duplicate-index rejection", err)
	}
}

func TestMergeReplaysRejectDuplicateTrial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := checkpoint.Create(path, checkpoint.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(checkpoint.TrialID(7, "p", 0), true, 1, ""); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.MergeReplays(rep, rep); err == nil {
		t.Fatal("duplicate trial across replays accepted")
	}
}
