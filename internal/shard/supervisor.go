// Supervisor: runs the n shards of a partition as restartable children and
// refuses to report success unless every one of them finished. The failure
// model is the fleet's: a shard may crash (process exit, panic, OOM kill)
// or stall (wedged solver, lost NFS mount), and either way its journal is
// intact up to the last fsynced record — so the remedy is always the same,
// restart it and let checkpoint.Resume replay the prefix.
//
// Liveness is judged by *progress*, not by heartbeat RPCs: the supervisor
// polls a monotonic progress probe (in cpsexp, the shard's journal size —
// every completed trial grows it) and declares a stall only when the probe
// stops advancing for StallTimeout. A slow shard that is still finishing
// trials is never killed.
package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/obs"
)

// A Handle controls one running shard attempt.
type Handle interface {
	// Wait blocks until the shard attempt exits; nil means it finished
	// its sweep successfully.
	Wait() error
	// Kill force-stops the attempt (used on stall). Wait must then
	// return.
	Kill()
}

// A Launcher starts one attempt of shard index. attempt counts from 0 and
// lets launchers (and tests) distinguish fresh starts from restarts.
type Launcher func(ctx context.Context, index, attempt int) (Handle, error)

// Supervisor runs every shard of a partition to completion, restarting
// crashed or stalled shards with capped backoff. The zero value is not
// usable: Count and Launch are required.
type Supervisor struct {
	// Count is the partition width n.
	Count int
	// Launch starts one shard attempt.
	Launch Launcher
	// Progress, when non-nil, probes shard liveness: a monotonically
	// non-decreasing value (journal bytes) that advances whenever the
	// shard completes work. Required for stall detection.
	Progress func(index int) int64
	// StallTimeout kills an attempt whose progress probe has not advanced
	// for this long (0 = no stall watchdog).
	StallTimeout time.Duration
	// PollInterval is the probe cadence (default StallTimeout/4, floor
	// 50ms).
	PollInterval time.Duration
	// MaxRestarts caps restarts per shard (default 2); the next failure
	// abandons the shard.
	MaxRestarts int
	// Backoff schedules the pause before each restart; its zero value
	// means capped exponential backoff with the checkpoint defaults.
	Backoff checkpoint.Retrier
	// Log, when non-nil, receives the shard lifecycle as structured
	// events: started, heartbeat (debug), retried, degraded, abandoned.
	Log *obs.Logger

	// sleep is injectable for tests (default: timer honoring ctx).
	sleep func(ctx context.Context, d time.Duration) error
}

// ShardReport is one shard's fate under supervision.
type ShardReport struct {
	// Index is the shard number.
	Index int `json:"index"`
	// Restarts counts how many times the shard was relaunched.
	Restarts int `json:"restarts,omitempty"`
	// Stalls counts watchdog kills among those restarts.
	Stalls int `json:"stalls,omitempty"`
	// Done marks a shard that finished its sweep.
	Done bool `json:"done"`
	// Err is the final error of an abandoned shard ("" when done).
	Err string `json:"err,omitempty"`
	// Faults narrates every crash/stall, oldest first.
	Faults []string `json:"faults,omitempty"`
}

// Report is the supervision outcome for the whole partition.
type Report struct {
	// Shards is indexed by shard number.
	Shards []ShardReport `json:"shards"`
	// Abandoned counts shards that exhausted their restarts.
	Abandoned int `json:"abandoned"`
}

func (s *Supervisor) maxRestarts() int {
	if s.MaxRestarts > 0 {
		return s.MaxRestarts
	}
	return 2
}

func (s *Supervisor) pollInterval() time.Duration {
	if s.PollInterval > 0 {
		return s.PollInterval
	}
	if s.StallTimeout > 0 {
		if p := s.StallTimeout / 4; p >= 50*time.Millisecond {
			return p
		}
	}
	return 50 * time.Millisecond
}

func (s *Supervisor) doSleep(ctx context.Context, d time.Duration) error {
	if s.sleep != nil {
		return s.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run supervises all shards concurrently until every shard is done or
// abandoned, or ctx fires (children are killed via the per-attempt context,
// and the context error is returned). A non-nil *Report is returned even on
// error so the caller can tell survivors from casualties.
func (s *Supervisor) Run(ctx context.Context) (*Report, error) {
	if s.Count < 1 {
		return nil, fmt.Errorf("shard: supervisor count %d < 1", s.Count)
	}
	if s.Launch == nil {
		return nil, fmt.Errorf("shard: supervisor has no launcher")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &Report{Shards: make([]ShardReport, s.Count)}
	var wg sync.WaitGroup
	for i := 0; i < s.Count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep.Shards[i] = s.superviseOne(ctx, i)
		}(i)
	}
	wg.Wait()
	for i := range rep.Shards {
		if !rep.Shards[i].Done {
			rep.Abandoned++
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if rep.Abandoned > 0 {
		return rep, fmt.Errorf("shard: %d/%d shards abandoned after retries", rep.Abandoned, s.Count)
	}
	return rep, nil
}

// superviseOne runs one shard's restart loop to a terminal state.
func (s *Supervisor) superviseOne(ctx context.Context, index int) ShardReport {
	r := ShardReport{Index: index}
	log := s.Log.WithStage(fmt.Sprintf("shard %d/%d", index, s.Count))
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			r.Err = ctx.Err().Error()
			return r
		}
		mShardStarts.Inc()
		log.Info("shard started", obs.F("attempt", attempt))
		stalled, err := s.runAttempt(ctx, index, attempt, log)
		if err == nil && !stalled {
			log.Info("shard done", obs.F("attempt", attempt), obs.F("restarts", r.Restarts))
			r.Done = true
			return r
		}
		kind := "crashed"
		if stalled {
			kind = "stalled"
			mShardStalls.Inc()
			r.Stalls++
		} else {
			mShardCrashes.Inc()
		}
		fault := fmt.Sprintf("attempt %d %s: %v", attempt, kind, err)
		r.Faults = append(r.Faults, fault)
		log.Warn("shard degraded", obs.F("kind", kind), obs.F("attempt", attempt), obs.F("err", err))
		if ctx.Err() != nil {
			r.Err = ctx.Err().Error()
			return r
		}
		if attempt >= s.maxRestarts() {
			mShardAbandoned.Inc()
			r.Err = fmt.Sprintf("abandoned after %d attempts, last %s: %v", attempt+1, kind, err)
			log.Error("shard abandoned", obs.F("attempts", attempt+1), obs.F("err", err))
			return r
		}
		backoff := s.Backoff.Backoff(fmt.Sprintf("shard-%d", index), attempt)
		log.Warn("shard retried", obs.F("attempt", attempt+1), obs.F("backoff", backoff))
		if s.doSleep(ctx, backoff) != nil {
			r.Err = ctx.Err().Error()
			return r
		}
		mShardRestarts.Inc()
		r.Restarts++
	}
}

// runAttempt launches one attempt and babysits it: when a progress probe
// and StallTimeout are configured, the probe is polled and the attempt
// killed once it stops advancing for StallTimeout. Returns whether the
// watchdog fired and the attempt error.
func (s *Supervisor) runAttempt(ctx context.Context, index, attempt int, log *obs.Logger) (stalled bool, err error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	h, err := s.Launch(actx, index, attempt)
	if err != nil {
		return false, fmt.Errorf("launch: %w", err)
	}

	done := make(chan error, 1)
	go func() { done <- h.Wait() }()

	if s.StallTimeout > 0 && s.Progress != nil {
		last := s.Progress(index)
		lastAdvance := time.Now()
		tick := time.NewTicker(s.pollInterval())
		defer tick.Stop()
		for {
			select {
			case werr := <-done:
				return false, werr
			case <-ctx.Done():
				h.Kill()
				<-done
				return false, ctx.Err()
			case <-tick.C:
				if cur := s.Progress(index); cur > last {
					last = cur
					lastAdvance = time.Now()
					log.Debug("shard heartbeat", obs.F("progress", cur))
				} else if time.Since(lastAdvance) > s.StallTimeout {
					h.Kill()
					werr := <-done
					if werr == nil {
						werr = fmt.Errorf("no progress for %s", s.StallTimeout)
					}
					return true, werr
				}
			}
		}
	}

	select {
	case werr := <-done:
		return false, werr
	case <-ctx.Done():
		h.Kill()
		<-done
		return false, ctx.Err()
	}
}
