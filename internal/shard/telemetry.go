// Telemetry instruments for the shard layer. Merge counters are
// deterministic for a fixed shard set; supervisor counters (restarts,
// stalls) depend on real fault timing and are diagnostic only.
package shard

import "cpsguard/internal/telemetry"

var (
	mMerges         = telemetry.NewCounter("shard.merges")
	mMergedRecords  = telemetry.NewCounter("shard.merged_records")
	mMergeRejects   = telemetry.NewCounter("shard.merge_rejects")
	mMergeTornTails = telemetry.NewCounter("shard.merge_torn_tails")

	mShardStarts    = telemetry.NewCounter("shard.starts")
	mShardRestarts  = telemetry.NewCounter("shard.restarts")
	mShardStalls    = telemetry.NewCounter("shard.stalls")
	mShardCrashes   = telemetry.NewCounter("shard.crashes")
	mShardAbandoned = telemetry.NewCounter("shard.abandoned")

	mIngests = telemetry.NewCounter("shard.snapshot_ingests")
)
