// Fleet-wide telemetry aggregation. Each shard's counters live in its own
// process; the Aggregator gives the operator one place to watch the whole
// sweep: shards POST their telemetry snapshots (periodically and at exit)
// to /shards/ingest on the supervisor's debug mux, and /shards/rollup
// serves the latest per-shard snapshots plus their fleet-wide counter sums.
//
// Ingest is last-write-wins per shard ID — counters are cumulative within a
// shard process, so the newest snapshot supersedes older ones, and a
// restarted shard simply starts a new cumulative series (its journal
// replays keep the logical work honest).
//
// Shards that stop reporting go stale: a shard whose last ingest is older
// than the staleness cutoff (default 5 minutes; see SetStaleAfter) is
// excluded from the fleet sums and listed under "stale" in the rollup with
// its age. Without the cutoff, a supervisor-restarted shard would leave its
// dead predecessor's final snapshot in the rollup forever, double-counting
// that shard's work against the restarted series.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"cpsguard/internal/telemetry"
)

// ingestMaxBytes bounds one snapshot POST (4 MiB — a full snapshot with
// spans is well under 1 MiB; anything bigger is abuse, not telemetry).
const ingestMaxBytes = 4 << 20

// IngestPayload is the body of a POST /shards/ingest.
type IngestPayload struct {
	// Shard identifies the sender ("2/8").
	Shard string `json:"shard"`
	// Snapshot is the sender's telemetry snapshot.
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// DefaultStaleAfter is the staleness cutoff applied by NewAggregator: a
// shard silent for longer drops out of the fleet sums. Shards report every
// few seconds while alive, so five minutes of silence means the process is
// gone (crashed, restarted under a new series, or finished long ago).
const DefaultStaleAfter = 5 * time.Minute

// Rollup is the GET /shards/rollup response.
type Rollup struct {
	// Shards maps shard ID to its latest ingested counters — fresh shards
	// only; stale ones are listed under Stale instead of summed.
	Shards map[string]map[string]int64 `json:"shards"`
	// Fleet sums every counter across the fresh shards.
	Fleet map[string]int64 `json:"fleet"`
	// FleetHistograms merges every deterministic histogram across the fresh
	// shards (elementwise bucket sums; see telemetry.MergeHistogramSnapshots).
	FleetHistograms map[string]telemetry.HistogramSnapshot `json:"fleet_histograms,omitempty"`
	// FleetTimings merges the nondeterministic timing distributions the same
	// way — shards report with Timings enabled, so fleet latency percentiles
	// come from real merged buckets, not averages of averages.
	FleetTimings map[string]telemetry.HistogramSnapshot `json:"fleet_timings,omitempty"`
	// HistogramConflicts lists (sorted, deduplicated) histogram names that
	// could not be merged because two shards reported different bucket
	// layouts — a version skew signal, surfaced rather than silently summed.
	HistogramConflicts []string `json:"histogram_conflicts,omitempty"`
	// Count is the number of fresh shards contributing to Fleet.
	Count int `json:"count"`
	// AgeSeconds maps every shard ID (fresh and stale) to the seconds
	// since its last ingest.
	AgeSeconds map[string]float64 `json:"age_seconds,omitempty"`
	// Stale lists (sorted) the shard IDs excluded from Fleet because their
	// last ingest is older than the cutoff.
	Stale []string `json:"stale,omitempty"`
	// StaleCount is len(Stale), kept explicit for dashboards.
	StaleCount int `json:"stale_count,omitempty"`
}

// Aggregator collects per-shard telemetry snapshots. Safe for concurrent
// use; the zero value is not usable — use NewAggregator.
type Aggregator struct {
	mu         sync.Mutex
	snaps      map[string]*telemetry.Snapshot
	lastIngest map[string]time.Time
	staleAfter time.Duration
	now        func() time.Time
}

// NewAggregator returns an empty aggregator with the default staleness
// cutoff.
func NewAggregator() *Aggregator {
	return &Aggregator{
		snaps:      map[string]*telemetry.Snapshot{},
		lastIngest: map[string]time.Time{},
		staleAfter: DefaultStaleAfter,
		now:        time.Now,
	}
}

// SetStaleAfter changes the staleness cutoff; d <= 0 disables staleness
// entirely (every shard ever heard from stays in the fleet sums).
func (a *Aggregator) SetStaleAfter(d time.Duration) {
	a.mu.Lock()
	a.staleAfter = d
	a.mu.Unlock()
}

// SetClock injects a time source (tests).
func (a *Aggregator) SetClock(now func() time.Time) {
	a.mu.Lock()
	a.now = now
	a.mu.Unlock()
}

// Ingest records (or replaces) one shard's snapshot and refreshes its
// last-ingest timestamp.
func (a *Aggregator) Ingest(shardID string, snap *telemetry.Snapshot) {
	if snap == nil {
		return
	}
	mIngests.Inc()
	a.mu.Lock()
	a.snaps[shardID] = snap
	a.lastIngest[shardID] = a.now()
	a.mu.Unlock()
}

// Rollup sums the latest counters across every fresh shard. Shards whose
// last ingest is older than the staleness cutoff are flagged in Stale and
// excluded from Shards/Fleet/Count, so a restarted shard's new series is
// never double-counted against its dead predecessor's.
func (a *Aggregator) Rollup() Rollup {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	r := Rollup{
		Shards:     make(map[string]map[string]int64, len(a.snaps)),
		Fleet:      map[string]int64{},
		AgeSeconds: make(map[string]float64, len(a.snaps)),
	}
	for id, snap := range a.snaps {
		age := now.Sub(a.lastIngest[id])
		r.AgeSeconds[id] = age.Seconds()
		if a.staleAfter > 0 && age > a.staleAfter {
			r.Stale = append(r.Stale, id)
			continue
		}
		r.Shards[id] = snap.Counters
		r.Count++
		for name, v := range snap.Counters {
			r.Fleet[name] += v
		}
		conflicts := mergeHistogramsInto(&r.FleetHistograms, snap.Histograms)
		conflicts = append(conflicts, mergeHistogramsInto(&r.FleetTimings, snap.Timings)...)
		r.HistogramConflicts = append(r.HistogramConflicts, conflicts...)
	}
	sort.Strings(r.Stale)
	r.StaleCount = len(r.Stale)
	r.HistogramConflicts = dedupeSorted(r.HistogramConflicts)
	return r
}

// mergeHistogramsInto folds one shard's histogram map into the fleet map,
// returning the names whose bucket layouts conflicted (those names keep the
// first layout seen; the conflicting shard's data is dropped from the merge
// so neither series is corrupted).
func mergeHistogramsInto(dst *map[string]telemetry.HistogramSnapshot,
	src map[string]telemetry.HistogramSnapshot) []string {
	if len(src) == 0 {
		return nil
	}
	if *dst == nil {
		*dst = make(map[string]telemetry.HistogramSnapshot, len(src))
	}
	var conflicts []string
	for name, hs := range src {
		cur, ok := (*dst)[name]
		if !ok {
			// Copy the buckets so later merges never alias the ingested
			// snapshot's slice.
			cp := hs
			cp.Buckets = append([]int64(nil), hs.Buckets...)
			(*dst)[name] = cp
			continue
		}
		merged, ok := telemetry.MergeHistogramSnapshots(cur, hs)
		if !ok {
			conflicts = append(conflicts, name)
			continue
		}
		(*dst)[name] = merged
	}
	return conflicts
}

func dedupeSorted(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	out := names[:1]
	for _, n := range names[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// ServeHTTP routes the /shards/ endpoints:
//
//	POST /shards/ingest  body: IngestPayload JSON
//	GET  /shards/rollup  response: Rollup JSON (sorted, indented)
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch {
	case strings.HasSuffix(req.URL.Path, "/ingest"):
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, ingestMaxBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var p IngestPayload
		if err := json.Unmarshal(body, &p); err != nil {
			http.Error(w, fmt.Sprintf("bad ingest payload: %v", err), http.StatusBadRequest)
			return
		}
		if p.Shard == "" || p.Snapshot == nil {
			http.Error(w, "ingest payload needs shard and snapshot", http.StatusBadRequest)
			return
		}
		a.Ingest(p.Shard, p.Snapshot)
		w.WriteHeader(http.StatusNoContent)
	case strings.HasSuffix(req.URL.Path, "/rollup"):
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		data, err := json.MarshalIndent(a.Rollup(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	default:
		http.Error(w, "unknown shard endpoint (want /shards/ingest or /shards/rollup)", http.StatusNotFound)
	}
}

// CounterNames returns the sorted union of counter names in a rollup, for
// deterministic rendering.
func (r Rollup) CounterNames() []string {
	names := make([]string, 0, len(r.Fleet))
	for n := range r.Fleet {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PostSnapshot POSTs one shard's snapshot to a supervisor's ingest URL
// (".../shards/ingest"). Best-effort by design: the caller decides whether
// a dead aggregator is fatal (it never should be — telemetry must not take
// down the work it observes).
func PostSnapshot(url, shardID string, snap *telemetry.Snapshot) error {
	body, err := json.Marshal(IngestPayload{Shard: shardID, Snapshot: snap})
	if err != nil {
		return fmt.Errorf("shard: encode snapshot: %w", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("shard: post snapshot: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("shard: post snapshot: %s", resp.Status)
	}
	return nil
}
